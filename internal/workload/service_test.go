package workload

import (
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/scripts"
)

// demoCluster is a deliberately tight cluster (2 nodes x 2 GB) so a
// 16-tenant workload produces admission contention: degraded admissions,
// queueing, and mid-run growth re-optimizations.
func demoCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 2 * conf.GB
	cc.MaxAlloc = 2 * conf.GB
	return cc
}

// demoJobs is the 16-tenant demo workload.
func demoJobs() []JobSpec {
	return Generate(42, 16, 3)
}

// demoOptions adds one node failure mid-workload.
func demoOptions() Options {
	o := DefaultOptions()
	o.NodeFailures = []fault.NodeFailure{{Node: 1, At: 25}}
	return o
}

// TestSixteenTenantDemo is the acceptance demo: sixteen tenants over a
// small cluster with one node failure must exhibit plan-cache hits,
// at least one mid-run re-optimization, and failure-driven re-admissions,
// while still serving every tenant.
func TestSixteenTenantDemo(t *testing.T) {
	rep, err := Run(demoCluster(), demoJobs(), demoOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 16 {
		t.Fatalf("want 16 tenant results, got %d", len(rep.Tenants))
	}
	if rep.Unserved != 0 {
		t.Errorf("want all tenants served, got %d unserved", rep.Unserved)
	}
	if rep.Cache.Hits < 1 {
		t.Errorf("want at least one plan-cache hit, got %+v", rep.Cache)
	}
	if rep.ReoptChecks < 1 {
		t.Errorf("want re-optimization checks, got %d", rep.ReoptChecks)
	}
	if rep.ReoptChanges < 1 {
		t.Errorf("want at least one mid-run re-optimization change, got %d", rep.ReoptChanges)
	}
	if rep.NodeFailures != 1 {
		t.Errorf("want 1 node failure, got %d", rep.NodeFailures)
	}
	if rep.Requeues < 1 {
		t.Errorf("want at least one failure-driven requeue, got %d", rep.Requeues)
	}
	if rep.MaxConcurrent < 2 {
		t.Errorf("want overlapping tenants, peak concurrency %d", rep.MaxConcurrent)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %v outside (0,1]", rep.Utilization)
	}

	// Per-tenant timing invariants.
	degraded, hits := 0, 0
	for _, tn := range rep.Tenants {
		if !tn.Served {
			continue
		}
		if tn.Admitted < tn.Arrival {
			t.Errorf("%s admitted %g before arrival %g", tn.Tenant, tn.Admitted, tn.Arrival)
		}
		if got, want := tn.QueueDelay, tn.Admitted-tn.Arrival; tn.Requeues == 0 && got != want {
			t.Errorf("%s queue delay %g, want %g", tn.Tenant, got, want)
		}
		if tn.Requeues > 0 && tn.QueueDelay > tn.Admitted-tn.Arrival {
			t.Errorf("%s first-admission delay %g exceeds final admission wait %g",
				tn.Tenant, tn.QueueDelay, tn.Admitted-tn.Arrival)
		}
		if got, want := tn.Latency, tn.Finished-tn.Arrival; got != want {
			t.Errorf("%s latency %g, want %g", tn.Tenant, got, want)
		}
		if tn.Finished > rep.Makespan {
			t.Errorf("%s finished %g after makespan %g", tn.Tenant, tn.Finished, rep.Makespan)
		}
		if tn.Config == "" {
			t.Errorf("%s has no final configuration", tn.Tenant)
		}
		if tn.OutputHash == "" {
			t.Errorf("%s has no output hash", tn.Tenant)
		}
		if tn.Degraded {
			degraded++
		}
		if tn.CacheHit {
			hits++
		}
	}
	if degraded == 0 {
		t.Error("want at least one degraded (free-slice-clamped) admission")
	}
	if hits == 0 {
		t.Error("want at least one tenant admitted via a cache hit")
	}
	if rep.P50Latency > rep.P95Latency {
		t.Errorf("p50 %g > p95 %g", rep.P50Latency, rep.P95Latency)
	}
}

// TestReportTableRenders smoke-checks the human-readable rendering.
func TestReportTableRenders(t *testing.T) {
	rep, err := Run(demoCluster(), demoJobs(), demoOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tenant-00", "plan cache:", "makespan", "degraded", "requeue:"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestCacheDisabledSameSchedule: with the cache disabled every admission
// pays a cold grid search, but the chosen configurations and the schedule
// structure must match the cached run — hits are byte-identical to fresh
// optimization by construction.
func TestCacheDisabledSameSchedule(t *testing.T) {
	cached, err := Run(demoCluster(), demoJobs(), demoOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := demoOptions()
	o.CacheEntries = -1
	cold, err := Run(demoCluster(), demoJobs(), o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Hits != 0 || cold.Cache.Misses != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", cold.Cache)
	}
	for i := range cached.Tenants {
		a, b := cached.Tenants[i], cold.Tenants[i]
		if a.Config != b.Config {
			t.Errorf("%s config diverged: cached %s vs cold %s", a.Tenant, a.Config, b.Config)
		}
		if a.OutputHash != b.OutputHash {
			t.Errorf("%s output hash diverged", a.Tenant)
		}
		if a.Served != b.Served {
			t.Errorf("%s served diverged", a.Tenant)
		}
	}
}

// TestClusterDeathLeavesUnserved: when every node fails, running jobs are
// requeued and everything still waiting is reported unserved instead of
// hanging the event loop.
func TestClusterDeathLeavesUnserved(t *testing.T) {
	cc := demoCluster()
	cc.Nodes = 1
	jobs := []JobSpec{
		{Tenant: "a", Script: scripts.LinregCG(), Scenario: datagen.New("XS", 1000, 1.0), Arrival: 0},
		{Tenant: "b", Script: scripts.LinregCG(), Scenario: datagen.New("XS", 1000, 1.0), Arrival: 100},
	}
	o := DefaultOptions()
	o.NodeFailures = []fault.NodeFailure{{Node: 0, At: 1}}
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unserved != 2 {
		t.Fatalf("want 2 unserved tenants after total cluster loss, got %d", rep.Unserved)
	}
	for _, tn := range rep.Tenants {
		if tn.Served {
			t.Errorf("%s served on a dead cluster", tn.Tenant)
		}
	}
	if rep.Requeues != 1 {
		t.Errorf("want the running tenant requeued once, got %d", rep.Requeues)
	}
}

// TestValidation rejects degenerate inputs.
func TestValidation(t *testing.T) {
	cc := demoCluster()
	ok := JobSpec{Script: scripts.L2SVM(), Scenario: datagen.New("XS", 1000, 1.0)}
	cases := []struct {
		name string
		jobs []JobSpec
		o    Options
	}{
		{"empty", nil, DefaultOptions()},
		{"negative arrival", []JobSpec{{Script: scripts.L2SVM(), Scenario: datagen.New("XS", 1000, 1.0), Arrival: -1}}, DefaultOptions()},
		{"no program", []JobSpec{{Tenant: "x"}}, DefaultOptions()},
		{"failure out of range", []JobSpec{ok}, Options{NodeFailures: []fault.NodeFailure{{Node: 9, At: 1}}}},
		{"failure negative time", []JobSpec{ok}, Options{NodeFailures: []fault.NodeFailure{{Node: 0, At: -1}}}},
		{"duplicate failure", []JobSpec{ok}, Options{NodeFailures: []fault.NodeFailure{{Node: 0, At: 1}, {Node: 0, At: 2}}}},
	}
	for _, c := range cases {
		if _, err := Run(cc, c.jobs, c.o); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	if _, err := New(conf.Cluster{}, DefaultOptions()); err == nil {
		t.Error("invalid cluster: want error, got nil")
	}
}

// TestGenerateDeterministic: the seeded generator is a pure function of
// its arguments.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 12, 5)
	b := Generate(7, 12, 5)
	if len(a) != 12 {
		t.Fatalf("want 12 jobs, got %d", len(a))
	}
	for i := range a {
		if a[i].Tenant != b[i].Tenant || a[i].Script.Name != b[i].Script.Name ||
			a[i].Scenario != b[i].Scenario || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d diverged between identical seeds", i)
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not monotone at job %d", i)
		}
	}
	c := Generate(8, 12, 5)
	same := true
	for i := range a {
		if a[i].Script.Name != c[i].Script.Name || a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

// TestLoadScenario parses the JSON workload format.
func TestLoadScenario(t *testing.T) {
	src := `{"jobs":[
		{"tenant":"acme","script":"LinregDS","size":"XS","cols":100,"sparsity":0.01,"arrival":3.5},
		{"script":"L2SVM"}
	]}`
	jobs, err := LoadScenario(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(jobs))
	}
	if jobs[0].Tenant != "acme" || jobs[0].Script.Name != "LinregDS" || jobs[0].Arrival != 3.5 {
		t.Errorf("job 0 parsed wrong: %+v", jobs[0])
	}
	if jobs[0].Scenario.Size != "XS" || jobs[0].Scenario.Cols != 100 || jobs[0].Scenario.Sparsity != 0.01 {
		t.Errorf("job 0 scenario parsed wrong: %+v", jobs[0].Scenario)
	}
	// Defaults: tenant name, S/1000/dense.
	if jobs[1].Tenant != "tenant-01" || jobs[1].Scenario.Size != "S" || jobs[1].Scenario.Cols != 1000 || jobs[1].Scenario.Sparsity != 1.0 {
		t.Errorf("job 1 defaults wrong: %+v", jobs[1])
	}

	for name, bad := range map[string]string{
		"unknown script": `{"jobs":[{"script":"Nope"}]}`,
		"no jobs":        `{"jobs":[]}`,
		"bad size":       `{"jobs":[{"script":"GLM","size":"XXL"}]}`,
		"unknown field":  `{"jobs":[{"script":"GLM","nope":1}]}`,
	} {
		if _, err := LoadScenario(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
