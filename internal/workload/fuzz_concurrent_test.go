package workload

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/opt"
	"elasticml/internal/rt"
	"elasticml/internal/verify"
)

const fuzzSeed = 7

// fuzzJobs turns K generated fuzzer programs into overlapping value-mode
// tenant submissions.
func fuzzJobs(k int) []JobSpec {
	jobs := make([]JobSpec, k)
	for i := 0; i < k; i++ {
		p := verify.FuzzProgram(fuzzSeed, i)
		jobs[i] = JobSpec{
			Tenant:  fmt.Sprintf("fuzz-%02d", i),
			Source:  p.Source,
			Params:  p.Params,
			Setup:   p.Setup,
			Arrival: float64(i), // 1s apart — well inside each other's runtimes
		}
	}
	return jobs
}

// isolatedRun executes one fuzzer program alone: fresh file system,
// cold optimization, value-mode execution — the reference the concurrent
// service run must match bit for bit.
func isolatedRun(t *testing.T, p verify.Program, cc conf.Cluster) (map[string]*matrix.Matrix, string) {
	t.Helper()
	fs := hdfs.New()
	if p.Setup != nil {
		p.Setup(fs)
	}
	prog, err := dml.Parse(p.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", p.Name, err)
	}
	comp := hop.NewCompiler(fs, p.Params)
	hp, err := comp.Compile(prog, p.Source)
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	res := opt.New(cc).Optimize(hp).Res
	plan := lop.Select(hp, cc, res)
	ip := rt.New(rt.ModeValue, fs, cc, res)
	ip.Compiler = comp
	var out bytes.Buffer
	ip.Out = &out
	if err := ip.Run(plan); err != nil {
		t.Fatalf("%s: run: %v", p.Name, err)
	}
	outputs := map[string]*matrix.Matrix{}
	for _, name := range fs.List() {
		f, err := fs.Stat(name)
		if err != nil || f.Data == nil || len(name) < 4 || name[:4] != "/out" {
			continue
		}
		outputs[name] = f.Data
	}
	return outputs, out.String()
}

// sameMatrix demands bit-identical cells.
func sameMatrix(a, b *matrix.Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// TestFuzzConcurrentMatchesIsolated: K fuzzer programs pushed through the
// multi-tenant service — contending for memory, admitted under degraded
// clamped configurations, re-optimized on departures — must produce
// bit-identical outputs and print streams to sequential isolated runs.
// This leans on the repo's core invariant: resource configurations change
// the plan, never the result.
func TestFuzzConcurrentMatchesIsolated(t *testing.T) {
	const k = 6
	cc := demoCluster()
	jobs := fuzzJobs(k)
	o := DefaultOptions()
	o.Workers = 4
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unserved != 0 {
		t.Fatalf("want all fuzz tenants served, got %d unserved", rep.Unserved)
	}
	if rep.MaxConcurrent < 2 {
		t.Errorf("fuzz tenants did not overlap (peak %d); widen the runtimes", rep.MaxConcurrent)
	}

	for i := 0; i < k; i++ {
		p := verify.FuzzProgram(fuzzSeed, i)
		wantOut, wantPrints := isolatedRun(t, p, cc)
		got := rep.Tenants[i]
		if got.Prints != wantPrints {
			t.Errorf("fuzz-%02d print stream diverged:\n--- service ---\n%s--- isolated ---\n%s",
				i, got.Prints, wantPrints)
		}
		if len(got.Outputs) != len(wantOut) {
			t.Errorf("fuzz-%02d wrote %d outputs in service, %d isolated", i, len(got.Outputs), len(wantOut))
			continue
		}
		paths := make([]string, 0, len(wantOut))
		for path := range wantOut {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			g, ok := got.Outputs[path]
			if !ok {
				t.Errorf("fuzz-%02d missing output %s in service run", i, path)
				continue
			}
			if !sameMatrix(g, wantOut[path]) {
				t.Errorf("fuzz-%02d output %s not bit-identical between service and isolated run", i, path)
			}
		}
	}
}

// TestFuzzElasticChaos interleaves seeded grow/shrink with chaos flaps and
// a shed-mode circuit breaker: K malleable fuzzer programs (half pinned to
// MinContainers 2) under the regret policy with a fast elasticity tick.
// Invariants: no served job ever ran below its MinContainers, the report's
// WastedWork equals the per-tenant sum, served outputs still match the
// isolated reference bit for bit, and the service leaks no goroutines.
func TestFuzzElasticChaos(t *testing.T) {
	const k = 6
	cc := demoCluster()
	jobs := fuzzJobs(k)
	for i := range jobs {
		jobs[i].Elastic = ElasticSpec{MinContainers: 1, DesiredContainers: 2, MaxContainers: 4}
		if i%2 == 1 {
			jobs[i].Elastic.MinContainers = 2
		}
	}
	o := DefaultOptions()
	o.Workers = 4
	o.Policy = PolicyRegret
	o.Elastic.Tick = 1
	o.Breaker = BreakerPolicy{Enabled: true, Window: 30, FailureThreshold: 3,
		ChurnThreshold: 50, Cooldown: 10, HalfOpenProbes: 2}
	o.Chaos = fault.ChaosPlan{Flaps: []fault.Flap{
		{Node: 1, At: 3, RestoreAfter: 0.5},
		{Node: 0, At: 9, RestoreAfter: 0.5},
	}}

	before := runtime.NumGoroutine()
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}

	var wastedSum float64
	resized := 0
	for i, tn := range rep.Tenants {
		wastedSum += tn.WastedWork
		resized += tn.Grows + tn.Shrinks
		if !tn.Served {
			continue
		}
		min := jobs[i].Elastic.normalized().MinContainers
		if tn.MinWidth > 0 && tn.MinWidth < min {
			t.Errorf("%s ran at width %d below MinContainers %d", tn.Tenant, tn.MinWidth, min)
		}
		if tn.Width > jobs[i].Elastic.MaxContainers {
			t.Errorf("%s ended at width %d above MaxContainers %d", tn.Tenant, tn.Width, jobs[i].Elastic.MaxContainers)
		}
		p := verify.FuzzProgram(fuzzSeed, i)
		wantOut, wantPrints := isolatedRun(t, p, cc)
		if tn.Prints != wantPrints {
			t.Errorf("%s print stream diverged under elastic chaos", tn.Tenant)
		}
		for path, want := range wantOut {
			if g, ok := tn.Outputs[path]; !ok || !sameMatrix(g, want) {
				t.Errorf("%s output %s diverged under elastic chaos", tn.Tenant, path)
			}
		}
	}
	if resized == 0 {
		t.Error("no grow/shrink fired; the fuzz run is not exercising elasticity")
	}
	if math.Abs(rep.WastedWork-wastedSum) > 1e-9 {
		t.Errorf("report WastedWork %.6f != per-tenant sum %.6f", rep.WastedWork, wastedSum)
	}
	// The worker pool must drain when Run returns; give exiting goroutines
	// a moment to unwind before declaring a leak.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Errorf("goroutines grew from %d to %d after Run returned", before, got)
	}
}

// TestFuzzConcurrentWithFailures repeats the differential check under a
// node failure: requeued fuzz tenants re-execute from a fresh compile, so
// their outputs must still match the isolated reference exactly.
func TestFuzzConcurrentWithFailures(t *testing.T) {
	const k = 4
	cc := demoCluster()
	jobs := fuzzJobs(k)
	o := DefaultOptions()
	o.Workers = 4
	o.NodeFailures = []fault.NodeFailure{{Node: 0, At: 2.5}}
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unserved != 0 {
		t.Fatalf("want all fuzz tenants served, got %d unserved", rep.Unserved)
	}
	for i := 0; i < k; i++ {
		p := verify.FuzzProgram(fuzzSeed, i)
		wantOut, wantPrints := isolatedRun(t, p, cc)
		got := rep.Tenants[i]
		if got.Prints != wantPrints {
			t.Errorf("fuzz-%02d print stream diverged under failure", i)
		}
		for path, want := range wantOut {
			if g, ok := got.Outputs[path]; !ok || !sameMatrix(g, want) {
				t.Errorf("fuzz-%02d output %s diverged under failure", i, path)
			}
		}
	}
}
