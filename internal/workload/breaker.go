package workload

// Circuit-breaker admission guard: when the recent failure rate or
// re-optimization churn over a sliding simulated-time window crosses a
// threshold, the breaker opens and new admissions are shed or downgraded to
// the degraded-fallback plan. After a cooldown it half-opens
// deterministically (time-based, no randomness): admissions flow again and
// count as probes; enough successes close the breaker, while any failure
// during half-open re-opens it. All times are simulated seconds, so breaker
// decisions are byte-identical across runs and worker counts.

// BreakerPolicy configures the admission circuit breaker. The zero value
// (Enabled == false) disables it.
type BreakerPolicy struct {
	// Enabled turns the breaker on.
	Enabled bool
	// Window is the sliding window in simulated seconds over which failure
	// and churn events are counted (default 30).
	Window float64
	// FailureThreshold opens the breaker when this many node/container
	// failures land inside the window (default 3).
	FailureThreshold int
	// ChurnThreshold opens the breaker when this many mid-run
	// re-optimization changes land inside the window (default 10).
	ChurnThreshold int
	// Cooldown is the simulated seconds the breaker stays open before
	// half-opening (default 20).
	Cooldown float64
	// HalfOpenProbes is the number of successful admissions in half-open
	// state needed to close the breaker again (default 2).
	HalfOpenProbes int
	// Shed rejects new first-time admissions outright while open; the
	// default (false) downgrades them to the degraded-fallback plan
	// instead. Failure victims retrying under their budget are never shed.
	Shed bool
}

// DefaultBreakerPolicy returns the standard breaker configuration
// (disabled; set Enabled to use it).
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{
		Window:           30,
		FailureThreshold: 3,
		ChurnThreshold:   10,
		Cooldown:         20,
		HalfOpenProbes:   2,
	}
}

func (p BreakerPolicy) normalized() BreakerPolicy {
	d := DefaultBreakerPolicy()
	if p.Window <= 0 {
		p.Window = d.Window
	}
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = d.FailureThreshold
	}
	if p.ChurnThreshold <= 0 {
		p.ChurnThreshold = d.ChurnThreshold
	}
	if p.Cooldown <= 0 {
		p.Cooldown = d.Cooldown
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = d.HalfOpenProbes
	}
	return p
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	}
	return "closed"
}

// admissionGate is the breaker's verdict for one admission attempt.
type admissionGate int

const (
	gateAdmit admissionGate = iota
	gateDegrade
	gateShed
)

// breaker is the service-side state machine. A nil breaker admits
// everything (all methods are nil-safe).
type breaker struct {
	pol      BreakerPolicy
	state    breakerState
	failures []float64 // simulated times of recent failure events
	churn    []float64 // simulated times of recent reopt changes
	openedAt float64
	probes   int
	trips    int
}

func newBreaker(pol BreakerPolicy) *breaker {
	if !pol.Enabled {
		return nil
	}
	return &breaker{pol: pol.normalized()}
}

// prune drops window-expired events.
func (b *breaker) prune(now float64) {
	cut := now - b.pol.Window
	for len(b.failures) > 0 && b.failures[0] < cut {
		b.failures = b.failures[1:]
	}
	for len(b.churn) > 0 && b.churn[0] < cut {
		b.churn = b.churn[1:]
	}
}

// advance applies the time-based open → half-open transition.
func (b *breaker) advance(now float64) {
	if b.state == bkOpen && now >= b.openedAt+b.pol.Cooldown {
		b.state = bkHalfOpen
		b.probes = 0
	}
}

// trip opens the breaker if a window threshold is crossed.
func (b *breaker) trip(now float64) {
	if b.state == bkOpen {
		return
	}
	if len(b.failures) >= b.pol.FailureThreshold || len(b.churn) >= b.pol.ChurnThreshold {
		b.state = bkOpen
		b.openedAt = now
		b.trips++
	}
}

// recordFailure registers one node/container failure at the simulated time.
// A failure during half-open re-opens immediately — the probe failed.
func (b *breaker) recordFailure(now float64) {
	if b == nil {
		return
	}
	b.prune(now)
	b.failures = append(b.failures, now)
	if b.state == bkHalfOpen {
		b.state = bkOpen
		b.openedAt = now
		b.trips++
		return
	}
	b.trip(now)
}

// recordChurn registers one re-optimization configuration change.
func (b *breaker) recordChurn(now float64) {
	if b == nil {
		return
	}
	b.prune(now)
	b.churn = append(b.churn, now)
	b.trip(now)
}

// gate returns the verdict for an admission attempt at the simulated time.
func (b *breaker) gate(now float64) admissionGate {
	if b == nil {
		return gateAdmit
	}
	b.prune(now)
	b.advance(now)
	if b.state != bkOpen {
		return gateAdmit
	}
	if b.pol.Shed {
		return gateShed
	}
	return gateDegrade
}

// admitted registers a successful admission; in half-open state it counts
// as a probe, and enough probes close the breaker and clear the windows.
func (b *breaker) admitted(now float64) {
	if b == nil || b.state != bkHalfOpen {
		return
	}
	b.probes++
	if b.probes >= b.pol.HalfOpenProbes {
		b.state = bkClosed
		b.failures = b.failures[:0]
		b.churn = b.churn[:0]
	}
}

// tripCount returns how many times the breaker opened.
func (b *breaker) tripCount() int {
	if b == nil {
		return 0
	}
	return b.trips
}
