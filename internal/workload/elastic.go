// Malleable jobs and the scheduling policies that drive them.
//
// A job's ElasticSpec declares how many containers it can usefully hold
// (min/desired/max, resized in Step increments). The policy engine decides
// at every simulated-time event — admission, departure, failure, restore,
// and the optional periodic tick — which running jobs to grow into freed
// capacity and which to shrink, either voluntarily (a job trades width for
// queue priority at admission) or structurally (running jobs give up
// containers so the queue head can enter). Width changes take effect at
// block boundaries, the checkpoint granularity: partial-block progress
// since the last boundary is re-done, exactly like a checkpoint restart.
// Every applied change re-optimizes the job's plan through the shared
// cache + OptimizeMemo path under a width-clamped cluster view, so the
// plan always matches the current allocation.
package workload

import (
	"fmt"
	"math"
	"sort"

	"elasticml/internal/conf"
	"elasticml/internal/obs"
	"elasticml/internal/opt"
)

// ElasticSpec declares one job's malleability bounds. The zero value
// normalizes to a rigid single-container job (min = desired = max = 1),
// which behaves exactly like the pre-elasticity service.
type ElasticSpec struct {
	// MinContainers is the width floor the job needs to make progress.
	MinContainers int
	// DesiredContainers is the width the job asks for at admission.
	DesiredContainers int
	// MaxContainers bounds opportunistic growth.
	MaxContainers int
	// Step is the width increment of a single grow/shrink decision
	// (default 1).
	Step int
}

// normalized fills the zero value and repairs ordering so that
// 1 <= Min <= Desired <= Max and Step >= 1.
func (e ElasticSpec) normalized() ElasticSpec {
	if e.MinContainers < 1 {
		e.MinContainers = 1
	}
	if e.DesiredContainers < e.MinContainers {
		e.DesiredContainers = e.MinContainers
	}
	if e.MaxContainers < e.DesiredContainers {
		e.MaxContainers = e.DesiredContainers
	}
	if e.Step < 1 {
		e.Step = 1
	}
	return e
}

// validate rejects specs that are contradictions rather than omissions.
func (e ElasticSpec) validate() error {
	if e.MinContainers < 0 || e.DesiredContainers < 0 || e.MaxContainers < 0 || e.Step < 0 {
		return fmt.Errorf("elastic spec has a negative field: %+v", e)
	}
	if e.MaxContainers > 0 && e.MinContainers > e.MaxContainers {
		return fmt.Errorf("elastic spec min %d exceeds max %d", e.MinContainers, e.MaxContainers)
	}
	return nil
}

// rigid reports whether the normalized spec pins the job to one container.
func (e ElasticSpec) rigid() bool { return e.MaxContainers <= 1 }

// Policy selects the scheduling policy for admission widths and mid-run
// grow/shrink decisions.
type Policy int

const (
	// PolicyFIFO is the pre-elasticity behavior: jobs are admitted at their
	// desired width in arrival order, the queue head blocks the tail, and
	// running jobs are never resized.
	PolicyFIFO Policy = iota
	// PolicyFair keeps widths proportional to the number of active tenants:
	// admission targets the fair share (capacity / active jobs), jobs
	// voluntarily narrow down to their minimum to enter a full cluster, the
	// widest over-share job shrinks when the queue is blocked, and the
	// furthest-below-share job grows when capacity frees.
	PolicyFair
	// PolicyRegret is an Ease.ml-style regret-minimizing scheduler: queue
	// delay is pure regret, so jobs narrow to their minimum to start as
	// early as possible and the queue is never head-blocked (bypass
	// admission); freed capacity goes to the job with the highest marginal
	// speedup per container, and structural shrink takes from the job that
	// loses the least.
	PolicyRegret
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFair:
		return "fair"
	case PolicyRegret:
		return "regret"
	}
	return "fifo"
}

// ParsePolicy parses a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fifo":
		return PolicyFIFO, nil
	case "fair", "fair-share":
		return PolicyFair, nil
	case "regret", "regret-min", "easeml":
		return PolicyRegret, nil
	}
	return PolicyFIFO, fmt.Errorf("workload: unknown policy %q (want fifo, fair, or regret)", s)
}

// ElasticOptions tune the malleability machinery.
type ElasticOptions struct {
	// Alpha is the marginal speedup of each container beyond the first: a
	// w-wide job runs speedup(w) = 1 + Alpha*(w-1) times faster than at
	// width 1. Sub-linear (Alpha < 1) by default, so width has diminishing
	// returns and the policies face a real tradeoff. Default 0.7.
	Alpha float64
	// Tick, when positive, fires a periodic elasticity decision event every
	// Tick simulated seconds while jobs remain active, so grow/shrink
	// decisions are not tied solely to arrivals, departures, and failures.
	// 0 disables the tick (the default, and the pre-elasticity behavior).
	Tick float64
	// ResizeCharge is the simulated seconds charged to a job at every
	// applied width change — the §5 re-optimization plus container
	// negotiation overhead. Default 1 (like ReoptCharge).
	ResizeCharge float64
}

// normalized fills zero-valued fields with defaults.
func (o ElasticOptions) normalized() ElasticOptions {
	if o.Alpha <= 0 {
		o.Alpha = 0.7
	}
	if o.ResizeCharge <= 0 {
		o.ResizeCharge = 1
	}
	return o
}

// speedup maps a width onto its execution speedup over width 1.
func (o ElasticOptions) speedup(w int) float64 {
	if w <= 1 {
		return 1
	}
	return 1 + o.Alpha*float64(w-1)
}

// capacityWidth returns how many containers of the given size the live
// cluster could hold in total if it were empty — the width ceiling any
// admission may target. Requeued failure victims are clamped to this, so a
// job admitted wide on a healthy cluster cannot deadlock the queue asking
// for a width the shrunken cluster can never grant.
func (s *Service) capacityWidth(cs conf.Bytes) int {
	if cs <= 0 {
		return 0
	}
	if cs < s.cc.MinAlloc {
		cs = s.cc.MinAlloc
	}
	return int(s.cc.MemPerNode/cs) * s.rm.LiveNodes()
}

// targetWidth picks the admission width for a queued job whose per-container
// size is cs: the policy target clamped to the spec bounds and to what the
// live cluster could ever hold.
func (s *Service) targetWidth(j *job, cs conf.Bytes) int {
	e := j.espec
	w := e.DesiredContainers
	if cap := s.capacityWidth(cs); w > cap {
		// The cluster shrank below the desired width: ask for what can
		// actually exist. Never below the spec minimum — if even that does
		// not fit, allocation fails and the job waits like any other.
		w = cap
	}
	if w < e.MinContainers {
		w = e.MinContainers
	}
	if s.opts.Policy == PolicyFair {
		active := s.running + len(s.queue)
		if active < 1 {
			active = 1
		}
		fair := s.capacityWidth(cs) / active
		if fair < e.MinContainers {
			fair = e.MinContainers
		}
		if w > fair {
			w = fair
		}
	}
	return w
}

// stepDownAllowed reports whether the policy lets an admission voluntarily
// narrow below its target width to enter a full cluster. FIFO never does —
// it waits for the full target, the pre-elasticity behavior.
func (s *Service) stepDownAllowed() bool { return s.opts.Policy != PolicyFIFO }

// bypassAllowed reports whether a job that cannot be admitted right now may
// be skipped over instead of blocking the queue tail.
func (s *Service) bypassAllowed() bool { return s.opts.Policy == PolicyRegret }

// elasticPass runs the policy engine after every event batch: structural
// shrink while the queue is blocked, opportunistic growth once it drains.
// Freed capacity always reaches queued tenants before any running job
// widens.
func (s *Service) elasticPass() {
	if s.opts.Policy == PolicyFIFO {
		return
	}
	if len(s.queue) > 0 {
		s.planShrink()
		return
	}
	s.planGrow()
}

// resizeCand is one running job eligible for a width change.
type resizeCand struct {
	j     *job
	score float64
}

// growCandidates returns the running jobs that could widen by one step,
// with the policy's growth priority as score (higher grows first).
func (s *Service) growCandidates() []resizeCand {
	var out []resizeCand
	for _, j := range s.jobs {
		if j.state != jsRunning || j.pendingW != 0 || j.espec.rigid() {
			continue
		}
		w := len(j.conts)
		if w >= j.espec.MaxContainers {
			continue
		}
		if _, ok := s.resizePoint(j, +1); !ok {
			continue
		}
		switch s.opts.Policy {
		case PolicyFair:
			fair := s.fairShare(j)
			if w >= fair {
				continue
			}
			out = append(out, resizeCand{j: j, score: float64(fair - w)})
		default: // PolicyRegret: marginal seconds saved by one more step
			out = append(out, resizeCand{j: j, score: s.marginalGain(j, +1)})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].score != out[b].score {
			return out[a].score > out[b].score
		}
		return out[a].j.idx < out[b].j.idx
	})
	return out
}

// fairShare is the fair-share width target for one running job: total
// capacity in containers of its size, divided by the active tenants.
func (s *Service) fairShare(j *job) int {
	active := s.running + len(s.queue)
	if active < 1 {
		active = 1
	}
	fair := s.capacityWidth(j.conts[0].Mem) / active
	if fair < j.espec.MinContainers {
		fair = j.espec.MinContainers
	}
	if fair > j.espec.MaxContainers {
		fair = j.espec.MaxContainers
	}
	return fair
}

// marginalGain estimates the remaining-time change of one width step
// (dir = +1 grow, -1 shrink): remaining work divided by the speedups.
// Positive values are seconds saved (grow) or seconds lost (shrink).
func (s *Service) marginalGain(j *job, dir int) float64 {
	w := len(j.conts)
	target := w + dir*j.espec.Step
	if target < 1 {
		target = 1
	}
	rem := (1 - s.progressAt(j)) * j.total
	if rem < 0 {
		rem = 0
	}
	g := rem/s.opts.Elastic.speedup(w) - rem/s.opts.Elastic.speedup(target)
	if dir < 0 {
		g = -g
	}
	return g
}

// planGrow schedules opportunistic growth while the queue is empty: each
// candidate widens by one step at its next block boundary, as long as the
// free capacity not yet promised to an earlier candidate covers it.
func (s *Service) planGrow() {
	cands := s.growCandidates()
	if len(cands) == 0 {
		return
	}
	budget := float64(s.rm.AvailableMem())
	for _, c := range cands {
		j := c.j
		w := len(j.conts)
		target := w + j.espec.Step
		if target > j.espec.MaxContainers {
			target = j.espec.MaxContainers
		}
		if s.opts.Policy == PolicyFair {
			if fair := s.fairShare(j); target > fair {
				target = fair
			}
		}
		if target <= w {
			continue
		}
		need := float64(target-w) * float64(j.conts[0].Mem)
		if need > budget {
			continue
		}
		if s.scheduleResize(j, target) {
			budget -= need
		}
	}
}

// planShrink schedules one structural shrink while the queue is blocked:
// the policy's victim gives up one width step at its next block boundary,
// and the freed containers reach the queue at the resize event. One victim
// per pass — capacity frees, admission retries, and the next blocked pass
// shrinks further if needed.
func (s *Service) planShrink() {
	var best *job
	var bestScore float64
	for _, j := range s.jobs {
		if j.state != jsRunning || j.pendingW != 0 || j.espec.rigid() {
			continue
		}
		w := len(j.conts)
		if w <= j.espec.MinContainers {
			continue
		}
		if s.opts.Policy == PolicyFair && w <= s.fairShare(j) {
			continue // fair-share only takes from over-share jobs
		}
		if _, ok := s.resizePoint(j, -1); !ok {
			continue
		}
		var score float64
		if s.opts.Policy == PolicyFair {
			score = float64(w - s.fairShare(j)) // widest over share first
		} else {
			score = -s.marginalGain(j, -1) // least seconds lost first
		}
		if best == nil || score > bestScore {
			best, bestScore = j, score
		}
	}
	if best == nil {
		return
	}
	target := len(best.conts) - best.espec.Step
	if target < best.espec.MinContainers {
		target = best.espec.MinContainers
	}
	s.scheduleResize(best, target)
}

// nextBoundary returns the simulated time of the job's next width-change
// eligibility point: the end of its current admission/resize charge (no new
// work has run yet), or the next block boundary of its progress schedule.
// ok is false when the next boundary is completion itself.
func (s *Service) nextBoundary(j *job) (float64, bool) {
	return s.boundaryAfter(j, float64(j.blocks))
}

// boundaryAfter is the shared boundary clock: the next multiple of 1/bf of
// total progress that the job has not yet passed, mapped onto simulated
// time via the linear progress schedule.
func (s *Service) boundaryAfter(j *job, bf float64) (float64, bool) {
	if bf < 1 || j.ckpt >= 1 {
		return 0, false
	}
	if s.now <= j.execStart {
		// Inside the charge window: progress is still pinned to the last
		// boundary, so the width can change as soon as execution starts.
		return j.execStart, true
	}
	p := s.progressAt(j)
	b := math.Ceil(p*bf-1e-9) / bf
	if b >= 1-1e-12 {
		return 0, false
	}
	t := j.execStart + (b-j.ckpt)/(1-j.ckpt)*(j.finish-j.execStart)
	if t < s.now {
		t = s.now
	}
	return t, true
}

// resizePoint returns when a width change in the given direction (+1 grow,
// -1 shrink) may take effect. Epoch-structured jobs (detected from the
// compiled program's for-loop trip counts) treat epoch boundaries as
// first-class elasticity points: grows wait for the next epoch boundary,
// where the plan re-optimizes anyway and no in-flight batch exists, while
// shrinks fire immediately mid-epoch and snap progress back to the last
// completed batch (the partial batch is re-done and accounted as
// WastedWork). Jobs without epoch structure keep the block-boundary
// behavior.
func (s *Service) resizePoint(j *job, dir int) (float64, bool) {
	if j.epochs < 1 {
		return s.nextBoundary(j)
	}
	if dir > 0 {
		// Grow between epochs: j.blocks = epochs*batches, so every
		// epochs-th block boundary is an epoch boundary.
		return s.boundaryAfter(j, float64(j.epochs))
	}
	// Shrink mid-epoch: effective as soon as execution is under way.
	if j.ckpt >= 1 {
		return 0, false
	}
	if s.now <= j.execStart {
		return j.execStart, true
	}
	if s.progressAt(j) >= 1-1e-12 {
		return 0, false
	}
	return s.now, true
}

// scheduleResize books a width change for a running job at its next
// eligibility point (block boundary, epoch boundary for epoch-job grows,
// or immediately for epoch-job shrinks). The pending target keeps the
// planner from double-promising the same capacity; the event's generation
// check drops the plan if anything reschedules the job first.
func (s *Service) scheduleResize(j *job, target int) bool {
	if target == len(j.conts) {
		return false
	}
	dir := +1
	if target < len(j.conts) {
		dir = -1
	}
	at, ok := s.resizePoint(j, dir)
	if !ok {
		return false
	}
	j.pendingW = target
	s.push(event{at: at, kind: evResize, job: j.idx, gen: j.gen})
	return true
}

// applyResize delivers a scheduled width change: re-clamp the target to
// what the cluster can grant right now, claim or release containers, snap
// progress down to the last completed block boundary, and re-optimize the
// plan under the new allocation through the shared cache + OptimizeMemo
// path (§5 — the plan always matches the current allocation). The job is
// re-simulated under the re-optimized configuration, so its outputs remain
// exactly the plan-invariant results every fixed-width run produces.
func (s *Service) applyResize(ev event) {
	j := s.jobs[ev.job]
	if j.state != jsRunning || ev.gen != j.gen || j.pendingW == 0 {
		return
	}
	target := j.pendingW
	j.pendingW = 0
	w := len(j.conts)
	if target == w || target < 1 {
		return
	}
	cs := j.conts[0].Mem
	if target > w {
		got, err := s.rm.AllocateGroup(target-w, cs)
		if err != nil {
			// The capacity promised at planning time went elsewhere (an
			// admission or another grow won the race of events). Keep the
			// current width; the next pass re-plans against reality.
			return
		}
		j.conts = append(j.conts, got...)
	} else {
		for _, c := range j.conts[target:] {
			if err := s.rm.Release(c.ID); err != nil {
				s.tr.Complete(obs.LayerWorkload, "workload.release-error", s.now, 0,
					obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
			}
		}
		j.conts = j.conts[:target]
	}
	newW := len(j.conts)

	c, err := s.compileJob(j)
	if err == nil {
		res, cost, _ := s.optimizeUnder(c, opt.WidthClamped(s.live, cs), s.optOpts())
		sr := s.simulate(c, res)
		if sr.err != nil {
			err = sr.err
		} else {
			// Width changes commit at block boundaries: partial progress
			// since the last boundary is re-done, like a checkpoint restart.
			// Epoch jobs snap at batch granularity (j.blocks =
			// epochs*batches); a mid-epoch shrink loses the in-flight
			// partial batch, which is real re-done work and accounted as
			// WastedWork (grows land on epoch boundaries, losing nothing).
			done := s.progressAt(j)
			ck := math.Floor(done*float64(j.blocks)+1e-9) / float64(j.blocks)
			if ck < j.ckpt {
				ck = j.ckpt
			}
			if ck > 1 {
				ck = 1
			}
			if j.epochs > 0 && done-ck > 1e-9 {
				wasted := (done - ck) * j.total
				j.result.WastedWork += wasted
				s.rep.WastedWork += wasted
				s.tr.Metrics().Add("workload.resize_wasted", 1)
			}
			j.res, j.cost = res, cost
			if j.epochs > 0 {
				j.blocks = j.epochs * j.batches
			} else {
				j.blocks = c.hp.NumLeaf
			}
			if j.blocks < 1 {
				j.blocks = 1
			}
			j.total = sr.simSeconds
			j.ckpt = ck
			exec := sr.simSeconds * (1 - ck) / s.opts.Elastic.speedup(newW) * j.slow
			j.gen++
			j.execStart = s.now + s.opts.Elastic.ResizeCharge
			j.finish = j.execStart + exec
			s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
			j.result.Outputs = sr.outputs
			j.result.Prints = sr.prints
			j.result.OutputHash = outputHash(sr.paths, sr.outputs, sr.dims, sr.prints)
			j.result.Config = j.res.String()
		}
	}
	if err != nil {
		// The program compiled and ran at admission; a failure here is a
		// bookkeeping bug, not a tenant error — surface it and keep the old
		// schedule (the old depart event is still valid: gen unchanged).
		s.tr.Complete(obs.LayerWorkload, "workload.resize-error", s.now, 0,
			obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
	}
	j.result.Width = newW
	if newW < j.result.MinWidth {
		j.result.MinWidth = newW
	}
	if newW > w {
		j.result.Grows++
		s.rep.Grows++
		s.tr.Metrics().Add("workload.grows", 1)
	} else {
		j.result.Shrinks++
		s.rep.Shrinks++
		s.tr.Metrics().Add("workload.shrinks", 1)
	}
	s.brk.recordChurn(s.now)
	s.tr.Complete(obs.LayerWorkload, "workload.resize", s.now, s.opts.Elastic.ResizeCharge,
		obs.A("tenant", j.result.Tenant), obs.A("from", w), obs.A("to", newW),
		obs.A("config", j.res.String()))
	s.tr.Metrics().Add("workload.resizes", 1)
}
