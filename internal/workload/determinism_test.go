package workload

import (
	"bytes"
	"fmt"
	"testing"

	"elasticml/internal/obs"
)

// runDemo executes the 16-tenant demo workload (with a node failure) at
// the given service worker count and returns the marshalled report plus
// the Chrome trace bytes — the two artifacts the determinism gate pins.
func runDemo(t *testing.T, workers int) (reportJSON, trace []byte) {
	return runDemoWith(t, func(o *Options) { o.Workers = workers })
}

// runDemoWith runs the demo workload under mutated options.
func runDemoWith(t *testing.T, mutate func(*Options)) (reportJSON, trace []byte) {
	t.Helper()
	tr := obs.New(true)
	o := demoOptions()
	o.Trace = tr
	mutate(&o)
	rep, err := Run(demoCluster(), demoJobs(), o)
	if err != nil {
		t.Fatal(err)
	}
	var rj bytes.Buffer
	if err := rep.WriteJSON(&rj); err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tr.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return rj.Bytes(), tb.Bytes()
}

// diffLine locates the first differing line of two byte slices for a
// readable failure message.
func diffLine(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestSameSeedByteIdentical: two runs of the same workload produce
// byte-identical reports and traces — the workload determinism gate
// (wired in CI next to the trace-determinism gate).
func TestSameSeedByteIdentical(t *testing.T) {
	r1, t1 := runDemo(t, 1)
	r2, t2 := runDemo(t, 1)
	if !bytes.Equal(r1, r2) {
		t.Errorf("report JSON differs between identical runs:\n%s", diffLine(r1, r2))
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace differs between identical runs:\n%s", diffLine(t1, t2))
	}
}

// TestWorkerCountInvariance: the service's worker pool only fans out pure
// computations whose results are applied back in job order, so Workers=4
// must reproduce the Workers=1 schedule, costs, cache counters, and trace
// byte for byte.
func TestWorkerCountInvariance(t *testing.T) {
	r1, t1 := runDemo(t, 1)
	r4, t4 := runDemo(t, 4)
	if !bytes.Equal(r1, r4) {
		t.Errorf("report JSON differs between Workers=1 and Workers=4:\n%s", diffLine(r1, r4))
	}
	if !bytes.Equal(t1, t4) {
		t.Errorf("trace differs between Workers=1 and Workers=4:\n%s", diffLine(t1, t4))
	}
}

// TestCacheShardingInvariance: the lock-striped plan cache is a concurrency
// optimization, not a semantic change — with a working set that fits one
// shard's capacity the sharded and single-lock caches must produce
// byte-identical reports (including aggregated cache stats) and traces.
func TestCacheShardingInvariance(t *testing.T) {
	rs, ts := runDemoWith(t, func(o *Options) { o.CacheShards = 0 }) // default: sharded
	r1, t1 := runDemoWith(t, func(o *Options) { o.CacheShards = 1 }) // single-lock
	if !bytes.Equal(rs, r1) {
		t.Errorf("report JSON differs between sharded and single-lock cache:\n%s", diffLine(rs, r1))
	}
	if !bytes.Equal(ts, t1) {
		t.Errorf("trace differs between sharded and single-lock cache:\n%s", diffLine(ts, t1))
	}
}

// TestReoptMemoInvariance: the re-costing memo only replaces cost
// evaluations with their recorded values, so enabling it must not move a
// single byte of the report or trace relative to fresh searches.
func TestReoptMemoInvariance(t *testing.T) {
	rm, tm := runDemoWith(t, func(o *Options) { o.DisableReoptMemo = false })
	rf, tf := runDemoWith(t, func(o *Options) { o.DisableReoptMemo = true })
	if !bytes.Equal(rm, rf) {
		t.Errorf("report JSON differs with the re-costing memo enabled:\n%s", diffLine(rm, rf))
	}
	if !bytes.Equal(tm, tf) {
		t.Errorf("trace differs with the re-costing memo enabled:\n%s", diffLine(tm, tf))
	}
}

// TestReoptMemoInvarianceUnderChaos: the memo's cross-cluster validity
// rules get their hardest workout when node failures and restores keep
// changing the cluster mid-run; results must still match fresh searches.
func TestReoptMemoInvarianceUnderChaos(t *testing.T) {
	r1, _ := runDemoWith(t, func(o *Options) { o.Workers = 4 })
	r2, _ := runDemoWith(t, func(o *Options) { o.Workers = 4; o.DisableReoptMemo = true })
	if !bytes.Equal(r1, r2) {
		t.Errorf("memo changed a parallel chaos run:\n%s", diffLine(r1, r2))
	}
}
