package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"elasticml/internal/datagen"
	"elasticml/internal/scripts"
)

// genPrograms is the program pool of the seeded generator. It is kept
// deliberately small (three of the five evaluation programs) so realistic
// tenant mixes repeat programs and exercise the shared plan cache.
func genPrograms() []scripts.Spec {
	return []scripts.Spec{scripts.LinregDS(), scripts.LinregCG(), scripts.L2SVM()}
}

// genScenarios is the data-scenario pool of the seeded generator: small
// scenarios only, so per-tenant simulation stays cheap.
func genScenarios() []datagen.Scenario {
	return []datagen.Scenario{
		datagen.New("XS", 1000, 1.0),
		datagen.New("S", 1000, 1.0),
		datagen.New("XS", 100, 0.01),
	}
}

// Generate builds a deterministic n-tenant workload from a seed: programs
// and scenarios are drawn uniformly from small pools, and inter-arrival
// gaps are exponential with the given mean (seconds), rounded to
// milliseconds so reports print stably.
func Generate(seed int64, n int, meanGap float64) []JobSpec {
	if meanGap <= 0 {
		meanGap = 10
	}
	r := rand.New(rand.NewSource(seed))
	progs := genPrograms()
	scens := genScenarios()
	jobs := make([]JobSpec, n)
	arrival := 0.0
	for i := range jobs {
		gap := r.ExpFloat64() * meanGap
		arrival += math.Round(gap*1000) / 1000
		jobs[i] = JobSpec{
			Tenant:   fmt.Sprintf("tenant-%02d", i),
			Script:   progs[r.Intn(len(progs))],
			Scenario: scens[r.Intn(len(scens))],
			Arrival:  arrival,
		}
	}
	return jobs
}

// GenerateSkewedBurst builds a deterministic bursty, elasticity-annotated
// workload: jobs arrive in tight bursts (2-4 tenants a quarter second
// apart) separated by long idle gaps, and every job is malleable —
// MinContainers 1, DesiredContainers 2-3, MaxContainers 4. On a small
// cluster a rigid FIFO admission head-blocks each burst at full desired
// width, while width-flexible policies admit narrow during the burst and
// grow in the gaps — the trace the elastic bench sweep compares policies
// on.
func GenerateSkewedBurst(seed int64, n int) []JobSpec {
	r := rand.New(rand.NewSource(seed))
	progs := genPrograms()
	scens := genScenarios()
	jobs := make([]JobSpec, 0, n)
	arrival := 0.0
	for len(jobs) < n {
		burst := 2 + r.Intn(3)
		for k := 0; k < burst && len(jobs) < n; k++ {
			i := len(jobs)
			jobs = append(jobs, JobSpec{
				Tenant:   fmt.Sprintf("tenant-%02d", i),
				Script:   progs[r.Intn(len(progs))],
				Scenario: scens[r.Intn(len(scens))],
				Arrival:  arrival + float64(k)*0.25,
				Elastic: ElasticSpec{
					MinContainers:     1,
					DesiredContainers: 2 + r.Intn(2),
					MaxContainers:     4,
				},
			})
		}
		gap := 25 + r.ExpFloat64()*50
		arrival += math.Round(gap*1000) / 1000
	}
	return jobs
}

// scenarioFile is the on-disk workload description accepted by
// LoadScenario (and the elastic-serve -scenario flag).
type scenarioFile struct {
	Jobs []scenarioJob `json:"jobs"`
}

type scenarioJob struct {
	Tenant   string  `json:"tenant"`
	Script   string  `json:"script"`
	Size     string  `json:"size"`
	Cols     int64   `json:"cols"`
	Sparsity float64 `json:"sparsity"`
	Arrival  float64 `json:"arrival"`
	// Optional malleability bounds; all zero means a rigid one-container
	// job (see ElasticSpec).
	MinContainers     int `json:"min_containers,omitempty"`
	DesiredContainers int `json:"desired_containers,omitempty"`
	MaxContainers     int `json:"max_containers,omitempty"`
	WidthStep         int `json:"width_step,omitempty"`
}

// LoadScenario parses a JSON workload description: a list of jobs naming
// an evaluation script (LinregDS, LinregCG, L2SVM, MLogreg, GLM), a data
// scenario (size/cols/sparsity, defaults S/1000/dense), and an arrival
// time in simulated seconds.
func LoadScenario(rd io.Reader) ([]JobSpec, error) {
	var f scenarioFile
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("workload: scenario: %w", err)
	}
	if len(f.Jobs) == 0 {
		return nil, fmt.Errorf("workload: scenario: no jobs")
	}
	jobs := make([]JobSpec, len(f.Jobs))
	for i, sj := range f.Jobs {
		spec, ok := scripts.ByName(sj.Script)
		if !ok {
			return nil, fmt.Errorf("workload: scenario job %d: unknown script %q", i, sj.Script)
		}
		size := sj.Size
		if size == "" {
			size = "S"
		}
		cols := sj.Cols
		if cols == 0 {
			cols = 1000
		}
		sparsity := sj.Sparsity
		if sparsity == 0 {
			sparsity = 1.0
		}
		sc, err := datagen.Parse(size, cols, sparsity)
		if err != nil {
			return nil, fmt.Errorf("workload: scenario job %d: %w", i, err)
		}
		tenant := sj.Tenant
		if tenant == "" {
			tenant = fmt.Sprintf("tenant-%02d", i)
		}
		jobs[i] = JobSpec{
			Tenant: tenant, Script: spec, Scenario: sc, Arrival: sj.Arrival,
			Elastic: ElasticSpec{
				MinContainers:     sj.MinContainers,
				DesiredContainers: sj.DesiredContainers,
				MaxContainers:     sj.MaxContainers,
				Step:              sj.WidthStep,
			},
		}
	}
	return jobs, nil
}
