package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/scripts"
)

// genPrograms is the program pool of the seeded generator. It is kept
// deliberately small (three of the five evaluation programs) so realistic
// tenant mixes repeat programs and exercise the shared plan cache.
func genPrograms() []scripts.Spec {
	return []scripts.Spec{scripts.LinregDS(), scripts.LinregCG(), scripts.L2SVM()}
}

// genScenarios is the data-scenario pool of the seeded generator: small
// scenarios only, so per-tenant simulation stays cheap.
func genScenarios() []datagen.Scenario {
	return []datagen.Scenario{
		datagen.New("XS", 1000, 1.0),
		datagen.New("S", 1000, 1.0),
		datagen.New("XS", 100, 0.01),
	}
}

// Generate builds a deterministic n-tenant workload from a seed: programs
// and scenarios are drawn uniformly from small pools, and inter-arrival
// gaps are exponential with the given mean (seconds), rounded to
// milliseconds so reports print stably.
func Generate(seed int64, n int, meanGap float64) []JobSpec {
	if meanGap <= 0 {
		meanGap = 10
	}
	r := rand.New(rand.NewSource(seed))
	progs := genPrograms()
	scens := genScenarios()
	jobs := make([]JobSpec, n)
	arrival := 0.0
	for i := range jobs {
		gap := r.ExpFloat64() * meanGap
		arrival += math.Round(gap*1000) / 1000
		jobs[i] = JobSpec{
			Tenant:   fmt.Sprintf("tenant-%02d", i),
			Script:   progs[r.Intn(len(progs))],
			Scenario: scens[r.Intn(len(scens))],
			Arrival:  arrival,
		}
	}
	return jobs
}

// GenerateSkewedBurst builds a deterministic bursty, elasticity-annotated
// workload: jobs arrive in tight bursts (2-4 tenants a quarter second
// apart) separated by long idle gaps, and every job is malleable —
// MinContainers 1, DesiredContainers 2-3, MaxContainers 4. On a small
// cluster a rigid FIFO admission head-blocks each burst at full desired
// width, while width-flexible policies admit narrow during the burst and
// grow in the gaps — the trace the elastic bench sweep compares policies
// on.
func GenerateSkewedBurst(seed int64, n int) []JobSpec {
	r := rand.New(rand.NewSource(seed))
	progs := genPrograms()
	scens := genScenarios()
	jobs := make([]JobSpec, 0, n)
	arrival := 0.0
	for len(jobs) < n {
		burst := 2 + r.Intn(3)
		for k := 0; k < burst && len(jobs) < n; k++ {
			i := len(jobs)
			jobs = append(jobs, JobSpec{
				Tenant:   fmt.Sprintf("tenant-%02d", i),
				Script:   progs[r.Intn(len(progs))],
				Scenario: scens[r.Intn(len(scens))],
				Arrival:  arrival + float64(k)*0.25,
				Elastic: ElasticSpec{
					MinContainers:     1,
					DesiredContainers: 2 + r.Intn(2),
					MaxContainers:     4,
				},
			})
		}
		gap := 25 + r.ExpFloat64()*50
		arrival += math.Round(gap*1000) / 1000
	}
	return jobs
}

// GenerateMinibatch builds a deterministic bursty workload over the
// iterative mini-batch family (MinibatchLR, MinibatchLinreg, MLP2): every
// job is malleable and epoch-structured (4-6 epochs, 3-5 batches), so
// elasticity decisions land on epoch/batch boundaries — grows between
// epochs, shrinks snapping to the last completed batch. Paired with a
// straggler or correlated-failure chaos plan this is the trace the
// minibatch bench sweep compares policies on.
func GenerateMinibatch(seed int64, n int) []JobSpec {
	r := rand.New(rand.NewSource(seed))
	progs := scripts.Minibatch()
	scens := genScenarios()
	jobs := make([]JobSpec, 0, n)
	arrival := 0.0
	for len(jobs) < n {
		burst := 2 + r.Intn(3)
		for k := 0; k < burst && len(jobs) < n; k++ {
			i := len(jobs)
			spec := progs[r.Intn(len(progs))]
			params := make(map[string]interface{}, len(spec.Params))
			for pk, pv := range spec.Params {
				params[pk] = pv
			}
			params["epochs"] = float64(4 + r.Intn(3))
			params["batches"] = float64(3 + r.Intn(3))
			spec.Params = params
			jobs = append(jobs, JobSpec{
				Tenant:   fmt.Sprintf("tenant-%02d", i),
				Script:   spec,
				Scenario: scens[r.Intn(len(scens))],
				Arrival:  arrival + float64(k)*0.25,
				Elastic: ElasticSpec{
					MinContainers:     1,
					DesiredContainers: 2 + r.Intn(2),
					MaxContainers:     4,
				},
			})
		}
		gap := 25 + r.ExpFloat64()*50
		arrival += math.Round(gap*1000) / 1000
	}
	return jobs
}

// scenarioFile is the on-disk workload description accepted by
// LoadScenario (and the elastic-serve -scenario flag).
type scenarioFile struct {
	Jobs []scenarioJob `json:"jobs"`
	// Chaos optionally embeds a correlated-failure regime in the scenario
	// itself, so straggler-node and correlated-failure scenarios are
	// self-contained files rather than flag recipes.
	Chaos *scenarioChaos `json:"chaos,omitempty"`
}

type scenarioJob struct {
	Tenant   string  `json:"tenant"`
	Script   string  `json:"script"`
	Size     string  `json:"size"`
	Cols     int64   `json:"cols"`
	Sparsity float64 `json:"sparsity"`
	Arrival  float64 `json:"arrival"`
	// Optional malleability bounds; all zero means a rigid one-container
	// job (see ElasticSpec).
	MinContainers     int `json:"min_containers,omitempty"`
	DesiredContainers int `json:"desired_containers,omitempty"`
	MaxContainers     int `json:"max_containers,omitempty"`
	WidthStep         int `json:"width_step,omitempty"`
	// Optional epoch-structure overrides for the iterative mini-batch
	// scripts: they replace the script's $epochs / $batches parameters.
	Epochs  int `json:"epochs,omitempty"`
	Batches int `json:"batches,omitempty"`
}

// scenarioChaos mirrors fault.ChaosPlan with stable JSON field names.
type scenarioChaos struct {
	Seed   int64 `json:"seed,omitempty"`
	Groups []struct {
		Nodes        []int   `json:"nodes"`
		At           float64 `json:"at"`
		RestoreAfter float64 `json:"restore_after,omitempty"`
	} `json:"groups,omitempty"`
	Flaps []struct {
		Node         int     `json:"node"`
		At           float64 `json:"at"`
		RestoreAfter float64 `json:"restore_after"`
	} `json:"flaps,omitempty"`
	SlowNodes []struct {
		Node     int     `json:"node"`
		At       float64 `json:"at"`
		Factor   float64 `json:"factor"`
		Duration float64 `json:"duration,omitempty"`
	} `json:"slow_nodes,omitempty"`
	Storm *struct {
		Start    float64 `json:"start"`
		MeanGap  float64 `json:"mean_gap"`
		Failures int     `json:"failures"`
		Recover  float64 `json:"recover,omitempty"`
	} `json:"storm,omitempty"`
}

// plan converts the JSON shape into the fault package's ChaosPlan.
func (c *scenarioChaos) plan() *fault.ChaosPlan {
	if c == nil {
		return nil
	}
	p := &fault.ChaosPlan{Seed: c.Seed}
	for _, g := range c.Groups {
		p.Groups = append(p.Groups, fault.GroupFailure{Nodes: g.Nodes, At: g.At, RestoreAfter: g.RestoreAfter})
	}
	for _, f := range c.Flaps {
		p.Flaps = append(p.Flaps, fault.Flap{Node: f.Node, At: f.At, RestoreAfter: f.RestoreAfter})
	}
	for _, sn := range c.SlowNodes {
		p.SlowNodes = append(p.SlowNodes, fault.SlowNode{Node: sn.Node, At: sn.At, Factor: sn.Factor, Duration: sn.Duration})
	}
	if c.Storm != nil {
		p.Storm = &fault.Storm{Start: c.Storm.Start, MeanGap: c.Storm.MeanGap,
			Failures: c.Storm.Failures, Recover: c.Storm.Recover}
	}
	return p
}

// LoadScenario parses a JSON workload description: a list of jobs naming
// an evaluation script (LinregDS, LinregCG, L2SVM, MLogreg, GLM, or the
// mini-batch family MinibatchLR, MinibatchLinreg, MLP2), a data scenario
// (size/cols/sparsity, defaults S/1000/dense), and an arrival time in
// simulated seconds. Any embedded chaos section is ignored; use
// LoadScenarioFile to receive it.
func LoadScenario(rd io.Reader) ([]JobSpec, error) {
	jobs, _, err := LoadScenarioFile(rd)
	return jobs, err
}

// LoadScenarioFile parses a JSON workload description including its
// optional embedded chaos plan (nil when the file declares none).
func LoadScenarioFile(rd io.Reader) ([]JobSpec, *fault.ChaosPlan, error) {
	var f scenarioFile
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("workload: scenario: %w", err)
	}
	if len(f.Jobs) == 0 {
		return nil, nil, fmt.Errorf("workload: scenario: no jobs")
	}
	jobs := make([]JobSpec, len(f.Jobs))
	for i, sj := range f.Jobs {
		spec, ok := scripts.ByName(sj.Script)
		if !ok {
			return nil, nil, fmt.Errorf("workload: scenario job %d: unknown script %q", i, sj.Script)
		}
		if sj.Epochs < 0 || sj.Batches < 0 {
			return nil, nil, fmt.Errorf("workload: scenario job %d: negative epochs/batches", i)
		}
		if sj.Epochs > 0 || sj.Batches > 0 {
			// Override the script's epoch structure without mutating the
			// shared default parameter map.
			params := make(map[string]interface{}, len(spec.Params))
			for k, v := range spec.Params {
				params[k] = v
			}
			if sj.Epochs > 0 {
				params["epochs"] = float64(sj.Epochs)
			}
			if sj.Batches > 0 {
				params["batches"] = float64(sj.Batches)
			}
			spec.Params = params
		}
		size := sj.Size
		if size == "" {
			size = "S"
		}
		cols := sj.Cols
		if cols == 0 {
			cols = 1000
		}
		sparsity := sj.Sparsity
		if sparsity == 0 {
			sparsity = 1.0
		}
		sc, err := datagen.Parse(size, cols, sparsity)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: scenario job %d: %w", i, err)
		}
		tenant := sj.Tenant
		if tenant == "" {
			tenant = fmt.Sprintf("tenant-%02d", i)
		}
		jobs[i] = JobSpec{
			Tenant: tenant, Script: spec, Scenario: sc, Arrival: sj.Arrival,
			Elastic: ElasticSpec{
				MinContainers:     sj.MinContainers,
				DesiredContainers: sj.DesiredContainers,
				MaxContainers:     sj.MaxContainers,
				Step:              sj.WidthStep,
			},
		}
	}
	return jobs, f.Chaos.plan(), nil
}
