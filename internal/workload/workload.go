// Package workload composes the repo's ingredients — the per-program
// resource optimizer (§3), runtime re-optimization on cluster change (§5),
// the simulated YARN ResourceManager, and the deterministic observability
// subsystem — into a multi-tenant elastic job service: N DML programs with
// staggered arrival times contend for one simulated cluster.
//
// The service is a discrete-event simulation driven entirely by simulated
// time, so a workload is a pure function of its inputs: the same job list,
// cluster, and options produce byte-identical reports at any service
// worker count (the worker pool only fans out computations whose results
// are applied back in a fixed order). Per tenant it performs:
//
//  1. Admission: FIFO by arrival time. The head-of-queue job is optimized
//     against the live cluster; if the chosen AM container does not fit
//     the currently free slice, the job is re-optimized under a cluster
//     whose maximum allocation is clamped to the largest free chunk
//     (degraded admission), and queues if even that is infeasible.
//  2. Execution: the admitted program runs on the execution simulator
//     under its configuration; its simulated duration holds the AM
//     container until the departure event.
//  3. Elastic re-optimization: every tenant departure and node failure
//     re-evaluates the running jobs. A job whose clamped (degraded)
//     configuration is no longer optimal grows into the freed capacity; a
//     node failure shrinks the cluster view and can shrink configurations
//     or force re-admission of jobs whose AM container died.
//
// A shared plan cache (opt.Cache) memoizes grid searches across tenants:
// repeated programs over the same inputs under the same cluster view skip
// compile-time optimization entirely, with hit results byte-identical to a
// fresh search.
package workload

import (
	"fmt"

	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/mr"
	"elasticml/internal/obs"
	"elasticml/internal/scripts"
)

// JobSpec is one tenant's submission: an ML program plus its arrival time
// in simulated seconds.
//
// Two kinds of jobs are supported. Scenario jobs (Script + Scenario) run
// the paper's evaluation programs over descriptor inputs on the execution
// simulator. Custom jobs (Source + Setup) run arbitrary DML with real
// payloads in value mode, capturing written outputs and print streams —
// the differential-fuzzing entry point.
type JobSpec struct {
	// Tenant names the submitting tenant in reports and traces.
	Tenant string
	// Script + Scenario describe a scenario job (used when Source == "").
	Script   scripts.Spec
	Scenario datagen.Scenario
	// Arrival is the submission time in simulated seconds.
	Arrival float64
	// Source + Params + Setup describe a custom value-mode job. Setup must
	// be deterministic; it stages input matrices on a fresh file system.
	Source string
	Params map[string]interface{}
	Setup  func(fs *hdfs.FS)
	// Elastic declares the job's malleability bounds. The zero value
	// normalizes to a rigid single-container job, today's behavior.
	Elastic ElasticSpec
}

// name returns the program name for reports.
func (j JobSpec) name() string {
	if j.Source != "" {
		return "custom"
	}
	return j.Script.Name
}

// Options configure the service.
type Options struct {
	// Workers bounds the service's computation fan-out (parallel
	// re-optimization checks and simulations) and is forwarded to the
	// resource optimizer's task-parallel enumeration. 1 (or 0) is
	// sequential; any value yields byte-identical reports.
	Workers int
	// CacheEntries is the shared plan cache capacity (0 = default 64,
	// negative disables caching).
	CacheEntries int
	// CacheShards selects the plan cache's lock striping: 0 uses the
	// default sharded cache (16 stripes keyed by the digest's first byte),
	// 1 the legacy single-lock cache, and any other positive value that
	// many stripes. Reports are byte-identical across values whenever the
	// live working set fits one shard's capacity (each shard holds up to
	// CacheEntries entries).
	CacheShards int
	// DisableReoptMemo turns off the per-program re-costing memo that makes
	// repeated grid searches incremental: admission retries and §5
	// re-optimization after departures, failures, and restores normally
	// replay still-valid cost evaluations from earlier searches instead of
	// re-enumerating every grid point. The memo never changes results —
	// disabling it only costs time (ablation and benchmarking knob).
	DisableReoptMemo bool
	// Points is the optimizer's base grid resolution (0 = 7; the service
	// favours responsiveness over exhaustive grids).
	Points int
	// OptCharge is the simulated seconds charged for a cold optimization
	// at admission (default 5s, the order of Table 3's optimization
	// times). Plan-cache hits charge HitCharge instead (default 0.05s),
	// so caching shows up directly in tenant latency.
	OptCharge float64
	// HitCharge is the simulated seconds charged on a plan-cache hit.
	HitCharge float64
	// ReoptCharge is the simulated seconds charged to a running job when a
	// service-level re-optimization actually changes its configuration
	// (checks that keep the configuration are free — they are cache hits).
	ReoptCharge float64
	// RequeueCharge is the simulated seconds charged when a naive restart
	// re-admits a failure victim from scratch (full state restore, paper
	// §4.1). Checkpoint restarts charge Recovery.CheckpointCharge instead.
	RequeueCharge float64
	// NodeFailures injects permanent single-node losses at fixed simulated
	// times (the pre-chaos interface; merged into the chaos schedule).
	NodeFailures []fault.NodeFailure
	// Chaos injects correlated failure regimes: rack-scoped group
	// failures, transient flaps, straggler nodes, and seeded failure
	// storms. All expansion is deterministic.
	Chaos fault.ChaosPlan
	// Recovery governs checkpoint/restart, the per-job retry budget, and
	// backoff for failure victims. The zero value normalizes to
	// checkpoint/restart with 3 retries.
	Recovery RecoveryPolicy
	// Breaker configures the circuit-breaker admission guard (zero value:
	// disabled).
	Breaker BreakerPolicy
	// Policy selects the scheduling policy that decides admission widths and
	// mid-run grow/shrink of malleable jobs. The zero value is PolicyFIFO:
	// desired-width admission, head-of-queue blocking, no resizes — exactly
	// the pre-elasticity behavior.
	Policy Policy
	// Elastic tunes the malleability machinery: the width speedup model, the
	// periodic decision tick, and the per-resize charge.
	Elastic ElasticOptions
	// TaskPolicy governs straggler speculation: a slowed node's effective
	// slowdown is capped by speculative backups exactly like a straggling
	// task's. The zero value normalizes to Hadoop-like defaults.
	TaskPolicy mr.TaskPolicy
	// SimTableCols is the label cardinality for table() in sim mode.
	SimTableCols int64
	// Trace, when non-nil, receives workload-layer spans (tenant queue and
	// run spans, re-optimization and failure events) stamped with the
	// service's simulated clock, plus workload.* metrics. All events are
	// emitted by the event loop, never by pool workers, so traces are
	// deterministic at any worker count.
	Trace *obs.Tracer
}

// DefaultOptions returns the service defaults.
func DefaultOptions() Options {
	return Options{
		Workers:       1,
		Points:        7,
		OptCharge:     5,
		HitCharge:     0.05,
		ReoptCharge:   1,
		RequeueCharge: 2,
		SimTableCols:  2,
	}
}

// normalized fills zero-valued fields with defaults.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Workers < 1 {
		o.Workers = d.Workers
	}
	if o.Points <= 0 {
		o.Points = d.Points
	}
	if o.OptCharge <= 0 {
		o.OptCharge = d.OptCharge
	}
	if o.HitCharge <= 0 {
		o.HitCharge = d.HitCharge
	}
	if o.ReoptCharge <= 0 {
		o.ReoptCharge = d.ReoptCharge
	}
	if o.RequeueCharge <= 0 {
		o.RequeueCharge = d.RequeueCharge
	}
	if o.SimTableCols <= 0 {
		o.SimTableCols = d.SimTableCols
	}
	o.Recovery = o.Recovery.normalized()
	o.TaskPolicy = o.TaskPolicy.Normalized()
	o.Elastic = o.Elastic.normalized()
	return o
}

// validate rejects degenerate job lists before the event loop starts.
func validate(jobs []JobSpec, nodes int, failures []fault.NodeFailure, chaos fault.ChaosPlan) error {
	if err := chaos.Validate(nodes); err != nil {
		return err
	}
	return validateJobs(jobs, nodes, failures)
}

func validateJobs(jobs []JobSpec, nodes int, failures []fault.NodeFailure) error {
	if len(jobs) == 0 {
		return fmt.Errorf("workload: empty job list")
	}
	for i, j := range jobs {
		if j.Arrival < 0 {
			return fmt.Errorf("workload: job %d (%s) has negative arrival %g", i, j.Tenant, j.Arrival)
		}
		if j.Source == "" && j.Script.Source == "" {
			return fmt.Errorf("workload: job %d (%s) has neither a script nor a source", i, j.Tenant)
		}
		if err := j.Elastic.validate(); err != nil {
			return fmt.Errorf("workload: job %d (%s): %w", i, j.Tenant, err)
		}
	}
	seen := map[int]bool{}
	for _, nf := range failures {
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("workload: node failure targets node %d of %d", nf.Node, nodes)
		}
		if nf.At < 0 {
			return fmt.Errorf("workload: node failure at negative time %g", nf.At)
		}
		if seen[nf.Node] {
			return fmt.Errorf("workload: node %d fails twice", nf.Node)
		}
		seen[nf.Node] = true
	}
	return nil
}
