package workload

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/scripts"
	"elasticml/internal/verify"
)

// minibatchCorpusProgram fetches a mini-batch program from the verify
// corpus by name, so the workload tests run exactly the differentially
// verified sources and inputs.
func minibatchCorpusProgram(t *testing.T, name string) verify.Program {
	t.Helper()
	for _, p := range verify.Corpus() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("verify corpus has no program %q", name)
	return verify.Program{}
}

// TestEpochShrinkEquivalence: an epoch-structured job grown at an epoch
// boundary and shrunk mid-epoch — where progress snaps back to the last
// completed batch and the partial batch is re-done — produces byte-identical
// outputs and print streams to the uninterrupted fixed-width run, under
// cluster shapes derived from all six verify resource configurations.
// Epoch-boundary elasticity, like block-boundary elasticity, is a
// scheduling detail, never a semantic one.
func TestEpochShrinkEquivalence(t *testing.T) {
	prog := minibatchCorpusProgram(t, "MinibatchLR")
	rigid := []JobSpec{{
		Tenant: "epoch-equiv", Source: prog.Source, Params: prog.Params,
		Setup: prog.Setup, Arrival: 0,
	}}
	for _, vc := range verify.DefaultConfigs() {
		vc := vc
		t.Run(vc.Name, func(t *testing.T) {
			cc := demoCluster()
			if vc.Cores > 0 {
				cc.CoresPerNode = vc.Cores
			}
			if vc.HDFSBlock > 0 {
				cc.HDFSBlockSize = vc.HDFSBlock
			}
			if !vc.Optimize {
				ma := conf.Bytes(float64(vc.CP) * cc.ContainerOverhead)
				if ma < cc.MinAlloc {
					ma = cc.MinAlloc
				}
				if ma > cc.MemPerNode {
					ma = cc.MemPerNode
				}
				cc.MaxAlloc = ma
			}
			smooth, err := Run(cc, rigid, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			st := smooth.Tenants[0]
			if !st.Served {
				t.Fatalf("fixed-width run unserved: %+v", st)
			}

			s, err := New(cc, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			s.submit(JobSpec{
				Tenant: "epoch-equiv", Source: prog.Source, Params: prog.Params,
				Setup: prog.Setup, Arrival: 0,
				Elastic: ElasticSpec{MinContainers: 1, DesiredContainers: 1, MaxContainers: 2},
			})
			s.ScheduleChaos()
			j := s.jobs[0]
			for j.state != jsRunning && s.Step() {
			}
			if j.state != jsRunning {
				t.Fatal("job never started")
			}
			// The corpus MinibatchLR runs 3 epochs x 3 batches; admission must
			// have detected that structure and set batch-granular checkpoints.
			if j.epochs != 3 || j.batches != 3 || j.blocks != 9 {
				t.Fatalf("epoch structure not detected at admission: epochs %d batches %d blocks %d",
					j.epochs, j.batches, j.blocks)
			}
			if !s.scheduleResize(j, 2) {
				t.Fatal("could not schedule the grow")
			}
			for j.result.Grows == 0 && s.Step() {
			}
			if j.result.Grows != 1 || len(j.conts) != 2 {
				t.Fatalf("grow did not apply: grows %d width %d", j.result.Grows, len(j.conts))
			}
			// Stop the event loop strictly inside a batch: 0.37 of the
			// remaining span never lands on a multiple of 1/9 of progress.
			mid := j.execStart + 0.37*(j.finish-j.execStart)
			s.push(event{at: mid, kind: evTick})
			for s.now < mid && j.state == jsRunning && s.Step() {
			}
			if j.state != jsRunning {
				t.Fatalf("job left the running state before the mid-epoch point")
			}
			// Mid-epoch semantics: a grow would wait for the next epoch
			// boundary, while a shrink is legal immediately.
			if growAt, ok := s.resizePoint(j, +1); ok {
				if growAt <= s.now {
					t.Errorf("mid-epoch grow point %.3f not in the future (now %.3f)", growAt, s.now)
				}
				p := j.ckpt + (growAt-j.execStart)/(j.finish-j.execStart)*(1-j.ckpt)
				if frac := p * float64(j.epochs); math.Abs(frac-math.Round(frac)) > 1e-6 {
					t.Errorf("grow point progress %.6f is not an epoch boundary (x%d = %.6f)",
						p, j.epochs, frac)
				}
			}
			if at, ok := s.resizePoint(j, -1); !ok || at != s.now {
				t.Errorf("mid-epoch shrink point = %.3f, %v; want immediate (%.3f)", at, ok, s.now)
			}
			if !s.scheduleResize(j, 1) {
				t.Fatalf("could not schedule the mid-epoch shrink at %.2f", s.now)
			}
			for s.Step() {
			}
			rep := s.Finalize()
			bt := rep.Tenants[0]
			if !bt.Served {
				t.Fatalf("resized run unserved: %+v", bt)
			}
			if bt.Grows < 1 || bt.Shrinks < 1 {
				t.Fatalf("want at least one grow and one shrink, got %d/%d", bt.Grows, bt.Shrinks)
			}
			// The shrink landed strictly inside a batch, so the partial batch
			// was re-done and must be accounted as wasted work.
			if rep.WastedWork <= 0 {
				t.Errorf("mid-epoch shrink accounted no wasted work")
			}
			if bt.OutputHash != st.OutputHash {
				t.Errorf("output hash diverged: resized %s vs fixed %s", bt.OutputHash, st.OutputHash)
			}
			if bt.Prints != st.Prints {
				t.Errorf("print stream diverged:\nresized: %q\nfixed: %q", bt.Prints, st.Prints)
			}
			if len(bt.Outputs) != len(st.Outputs) {
				t.Errorf("output count diverged: %d vs %d", len(bt.Outputs), len(st.Outputs))
			}
		})
	}
}

// TestEpochShrinkWastedWork pins the WastedWork arithmetic of a mid-epoch
// shrink: the lost fraction is exactly the progress beyond the last
// completed batch, scaled by the job's total simulated work.
func TestEpochShrinkWastedWork(t *testing.T) {
	prog := minibatchCorpusProgram(t, "MinibatchLR")
	s, err := New(demoCluster(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.submit(JobSpec{
		Tenant: "epoch-waste", Source: prog.Source, Params: prog.Params,
		Setup: prog.Setup, Arrival: 0,
		Elastic: ElasticSpec{MinContainers: 1, DesiredContainers: 2, MaxContainers: 2},
	})
	s.ScheduleChaos()
	j := s.jobs[0]
	for j.state != jsRunning && s.Step() {
	}
	if j.state != jsRunning {
		t.Fatal("job never started")
	}
	if len(j.conts) != 2 {
		t.Fatalf("admitted at width %d, want desired width 2", len(j.conts))
	}
	if j.epochs != 3 || j.blocks != 9 {
		t.Fatalf("epoch structure not detected: epochs %d blocks %d", j.epochs, j.blocks)
	}
	// Run 0.4 into the execution span: progress 0.4 is strictly between
	// batch boundaries 3/9 and 4/9.
	mid := j.execStart + 0.4*(j.finish-j.execStart)
	s.push(event{at: mid, kind: evTick})
	for s.now < mid && j.state == jsRunning && s.Step() {
	}
	done := s.progressAt(j)
	total := j.total
	wantCk := math.Floor(done*float64(j.blocks)+1e-9) / float64(j.blocks)
	wantWaste := (done - wantCk) * total
	if wantWaste <= 0 {
		t.Fatalf("test landed on a batch boundary: progress %.6f", done)
	}
	if !s.scheduleResize(j, 1) {
		t.Fatal("could not schedule the shrink")
	}
	for j.result.Shrinks == 0 && s.Step() {
	}
	if j.result.Shrinks != 1 || len(j.conts) != 1 {
		t.Fatalf("shrink did not apply: shrinks %d width %d", j.result.Shrinks, len(j.conts))
	}
	if j.ckpt != wantCk {
		t.Errorf("checkpoint snapped to %.6f, want last completed batch %.6f", j.ckpt, wantCk)
	}
	if math.Abs(j.result.WastedWork-wantWaste) > 1e-9 {
		t.Errorf("tenant wasted work %.9f, want (%.6f - %.6f) * %.3f = %.9f",
			j.result.WastedWork, done, wantCk, total, wantWaste)
	}
	if math.Abs(s.rep.WastedWork-wantWaste) > 1e-9 {
		t.Errorf("report wasted work %.9f, want %.9f", s.rep.WastedWork, wantWaste)
	}
	for s.Step() {
	}
	rep := s.Finalize()
	if !rep.Tenants[0].Served {
		t.Fatalf("job unserved after shrink: %+v", rep.Tenants[0])
	}
}

// TestEpochDetectionScope: only programs with known for-loop trip counts
// get epoch-boundary semantics; the paper's closed-form and while-loop
// scripts keep the legacy block-boundary behavior (j.epochs == 0), which is
// what keeps the pre-epoch golden policy reports byte-identical.
func TestEpochDetectionScope(t *testing.T) {
	for _, c := range []struct {
		name       string
		wantEpochs int
	}{
		{"LinregDS", 0},
		{"LinregCG", 0},
		{"MinibatchLinreg", 3},
	} {
		prog := minibatchCorpusProgram(t, c.name)
		s, err := New(demoCluster(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s.submit(JobSpec{
			Tenant: "scope", Source: prog.Source, Params: prog.Params,
			Setup: prog.Setup, Arrival: 0,
		})
		s.ScheduleChaos()
		j := s.jobs[0]
		for j.state != jsRunning && s.Step() {
		}
		if j.state != jsRunning {
			t.Fatalf("%s never started", c.name)
		}
		if j.epochs != c.wantEpochs {
			t.Errorf("%s: epochs = %d, want %d", c.name, j.epochs, c.wantEpochs)
		}
		for s.Step() {
		}
	}
}

// minibatchDetScenario is the mini-batch determinism corpus: the bursty
// epoch-structured trace on a tight cluster with a straggler episode, so
// epoch-boundary grows, mid-epoch shrinks, and speculation all interleave.
func minibatchDetScenario(pol Policy, workers int) (conf.Cluster, []JobSpec, Options) {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 1 * conf.GB
	cc.MaxAlloc = 1 * conf.GB
	o := DefaultOptions()
	o.Policy = pol
	o.Elastic.Tick = 5
	o.Workers = workers
	o.Recovery.Kind = RecoveryCheckpoint
	o.Chaos = fault.ChaosPlan{Seed: 7, SlowNodes: []fault.SlowNode{
		{Node: 0, At: 15, Factor: 3, Duration: 40},
	}}
	return cc, GenerateMinibatch(42, 10), o
}

// TestMinibatchDeterminism: every policy's full report on the mini-batch
// trace is byte-identical at Workers=1 and Workers=4 — the epoch-window
// memo reuse and epoch-boundary resize planning stay on the deterministic
// event loop. This backs the CI mini-batch determinism gate.
func TestMinibatchDeterminism(t *testing.T) {
	run := func(pol Policy, workers int) []byte {
		cc, jobs, o := minibatchDetScenario(pol, workers)
		rep, err := Run(cc, jobs, o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, pol := range []Policy{PolicyFIFO, PolicyFair, PolicyRegret} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			r1 := run(pol, 1)
			r4 := run(pol, 4)
			if !bytes.Equal(r1, r4) {
				t.Errorf("report differs between Workers=1 and Workers=4:\n%s", diffLine(r1, r4))
			}
		})
	}
}

// TestGenerateMinibatch: the trace generator is deterministic and draws
// epoch structure and malleability bounds inside the documented ranges.
func TestGenerateMinibatch(t *testing.T) {
	a, b := GenerateMinibatch(42, 12), GenerateMinibatch(42, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if len(a) != 12 {
		t.Fatalf("got %d jobs, want 12", len(a))
	}
	prev := 0.0
	for i, j := range a {
		if j.Arrival < prev {
			t.Errorf("job %d arrival %.3f before predecessor %.3f", i, j.Arrival, prev)
		}
		prev = j.Arrival
		ep, _ := j.Script.Params["epochs"].(float64)
		nb, _ := j.Script.Params["batches"].(float64)
		if ep < 4 || ep > 6 || nb < 3 || nb > 5 {
			t.Errorf("job %d epochs/batches %v/%v outside 4..6 / 3..5", i, ep, nb)
		}
		e := j.Elastic
		if e.MinContainers != 1 || e.MaxContainers != 4 || e.DesiredContainers < 2 || e.DesiredContainers > 3 {
			t.Errorf("job %d elastic spec %+v outside the generator's bounds", i, e)
		}
	}
	if reflect.DeepEqual(GenerateMinibatch(43, 12), a) {
		t.Error("different seeds produced identical traces")
	}
}

// TestMinibatchScenarioFiles: the committed straggler and correlated-failure
// scenario files parse, embed a chaos plan valid for their documented
// cluster shapes, and carry per-job epoch overrides that clone rather than
// mutate the shared script parameter maps.
func TestMinibatchScenarioFiles(t *testing.T) {
	cases := []struct {
		path  string
		jobs  int
		nodes int
	}{
		{"../../scenarios/minibatch_straggler.json", 10, 2},
		{"../../scenarios/minibatch_corrfail.json", 8, 4},
	}
	for _, c := range cases {
		f, err := os.Open(c.path)
		if err != nil {
			t.Fatal(err)
		}
		jobs, chaos, err := LoadScenarioFile(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != c.jobs {
			t.Errorf("%s: %d jobs, want %d", c.path, len(jobs), c.jobs)
		}
		if chaos == nil {
			t.Fatalf("%s: no embedded chaos plan", c.path)
		}
		if err := chaos.Validate(c.nodes); err != nil {
			t.Errorf("%s: chaos plan invalid for %d nodes: %v", c.path, c.nodes, err)
		}
		for i, j := range jobs {
			if ep, ok := j.Script.Params["epochs"].(float64); !ok || ep < 4 {
				t.Errorf("%s job %d: epochs override %v not applied", c.path, i, j.Script.Params["epochs"])
			}
		}
	}
	// Overrides must not leak into the shared default parameter maps.
	base, _ := scripts.ByName("MinibatchLR")
	if ep := base.Params["epochs"].(float64); ep != 3 {
		t.Errorf("scenario override mutated the shared MinibatchLR params: epochs = %v", ep)
	}
}
