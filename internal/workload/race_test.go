package workload

import (
	"testing"

	"elasticml/internal/fault"
)

// TestStressOverlapChurn is the `make race-workload` centerpiece: many
// overlapping tenants on a tight cluster, two node failures, a tiny plan
// cache forcing constant eviction churn, and a wide worker pool. Run under
// -race -count=2 it exercises every fan-out/join path of the service while
// the sequential event loop mutates cluster and cache state between waves.
func TestStressOverlapChurn(t *testing.T) {
	cc := demoCluster()
	cc.Nodes = 4
	jobs := Generate(1234, 24, 1.5)
	o := DefaultOptions()
	o.Workers = 4
	o.CacheEntries = 3 // far below the distinct-key count: heavy eviction
	o.CacheShards = 1  // single-lock cache: sharding would loosen the global bound
	o.NodeFailures = []fault.NodeFailure{{Node: 3, At: 10}, {Node: 0, At: 40}}
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Tenants); got != 24 {
		t.Fatalf("want 24 tenant results, got %d", got)
	}
	served := 0
	for _, tn := range rep.Tenants {
		if tn.Served {
			served++
		}
	}
	if served+rep.Unserved != 24 {
		t.Errorf("tenant accounting broken: %d served + %d unserved != 24", served, rep.Unserved)
	}
	if served == 0 {
		t.Error("stress workload served nobody")
	}
	if rep.Cache.Evictions == 0 {
		t.Errorf("want cache eviction churn, got %+v", rep.Cache)
	}
	if rep.NodeFailures != 2 {
		t.Errorf("want 2 node failures, got %d", rep.NodeFailures)
	}
	if rep.Cache.Entries > 3 {
		t.Errorf("cache overflowed its capacity: %+v", rep.Cache)
	}

	// Determinism must survive the churn: a second identical run agrees.
	rep2, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cache != rep.Cache {
		t.Errorf("cache stats diverged across identical stress runs: %+v vs %+v", rep.Cache, rep2.Cache)
	}
	for i := range rep.Tenants {
		if rep.Tenants[i].OutputHash != rep2.Tenants[i].OutputHash ||
			rep.Tenants[i].Finished != rep2.Tenants[i].Finished {
			t.Errorf("tenant %d diverged across identical stress runs", i)
		}
	}
}
