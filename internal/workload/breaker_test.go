package workload

import "testing"

// TestBreakerLifecycle walks the full state machine: closed → open on the
// failure threshold → half-open after the cooldown → closed after enough
// probe successes, with the sliding window dropping stale events.
func TestBreakerLifecycle(t *testing.T) {
	pol := BreakerPolicy{Enabled: true, Window: 10, FailureThreshold: 2,
		ChurnThreshold: 3, Cooldown: 5, HalfOpenProbes: 2}
	b := newBreaker(pol)

	if g := b.gate(0); g != gateAdmit {
		t.Fatalf("fresh breaker gate = %v, want admit", g)
	}
	b.recordFailure(1)
	if b.state != bkClosed {
		t.Fatalf("one failure should not trip (threshold 2), state %v", b.state)
	}
	b.recordFailure(2)
	if b.state != bkOpen || b.trips != 1 {
		t.Fatalf("two failures in window should trip: state %v trips %d", b.state, b.trips)
	}
	if g := b.gate(3); g != gateDegrade {
		t.Errorf("open breaker (Shed=false) gate = %v, want degrade", g)
	}
	// Cooldown expires at openedAt+5 = 7.
	if g := b.gate(6.9); g != gateDegrade {
		t.Errorf("gate before cooldown = %v, want degrade", g)
	}
	if g := b.gate(7); g != gateAdmit || b.state != bkHalfOpen {
		t.Fatalf("cooldown should half-open: gate %v state %v", g, b.state)
	}
	b.admitted(7)
	if b.state != bkHalfOpen {
		t.Fatalf("one probe of two should stay half-open, state %v", b.state)
	}
	b.admitted(8)
	if b.state != bkClosed {
		t.Fatalf("two probes should close, state %v", b.state)
	}
	if len(b.failures) != 0 || len(b.churn) != 0 {
		t.Error("closing should clear the windows")
	}
}

// TestBreakerHalfOpenFailureReopens: a failure while half-open re-opens
// immediately and counts as a fresh trip.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	pol := BreakerPolicy{Enabled: true, Window: 10, FailureThreshold: 1,
		ChurnThreshold: 100, Cooldown: 5, HalfOpenProbes: 2}
	b := newBreaker(pol)
	b.recordFailure(0)
	if b.state != bkOpen {
		t.Fatal("threshold 1 should trip on the first failure")
	}
	b.gate(5) // half-opens
	if b.state != bkHalfOpen {
		t.Fatalf("state %v, want half-open", b.state)
	}
	b.recordFailure(6)
	if b.state != bkOpen || b.openedAt != 6 || b.trips != 2 {
		t.Errorf("half-open failure should re-open at 6: state %v openedAt %g trips %d",
			b.state, b.openedAt, b.trips)
	}
}

// TestBreakerChurnTrips: re-optimization churn alone opens the breaker,
// and window expiry forgets old churn.
func TestBreakerChurnTrips(t *testing.T) {
	pol := BreakerPolicy{Enabled: true, Window: 10, FailureThreshold: 100,
		ChurnThreshold: 2, Cooldown: 5, HalfOpenProbes: 1, Shed: true}
	b := newBreaker(pol)
	b.recordChurn(0)
	b.recordChurn(20) // the t=0 event left the window
	if b.state != bkClosed {
		t.Fatalf("stale churn should not count, state %v", b.state)
	}
	b.recordChurn(21)
	if b.state != bkOpen {
		t.Fatal("two churn events in window should trip")
	}
	if g := b.gate(22); g != gateShed {
		t.Errorf("open breaker (Shed=true) gate = %v, want shed", g)
	}
}

// TestBreakerNilSafe: a disabled policy yields a nil breaker whose methods
// all no-op.
func TestBreakerNilSafe(t *testing.T) {
	b := newBreaker(BreakerPolicy{})
	if b != nil {
		t.Fatal("disabled policy should yield a nil breaker")
	}
	b.recordFailure(1)
	b.recordChurn(1)
	b.admitted(1)
	if g := b.gate(1); g != gateAdmit {
		t.Errorf("nil breaker gate = %v, want admit", g)
	}
	if b.tripCount() != 0 {
		t.Error("nil breaker trip count != 0")
	}
}

// TestRecoveryBackoff: exponential growth in simulated time, capped.
func TestRecoveryBackoff(t *testing.T) {
	p := DefaultRecoveryPolicy() // 2s, x2, cap 30
	want := []float64{2, 4, 8, 16, 30, 30}
	for i, w := range want {
		if got := p.backoffDelay(i + 1); got != w {
			t.Errorf("backoffDelay(%d) = %g, want %g", i+1, got, w)
		}
	}
	if got := p.backoffDelay(0); got != 2 {
		t.Errorf("backoffDelay(0) = %g, want clamp to first retry", got)
	}
}

// TestCheckpointFrac: block-boundary flooring, monotonicity against the
// previous checkpoint, and the naive policy's hard zero.
func TestCheckpointFrac(t *testing.T) {
	ck := RecoveryPolicy{Kind: RecoveryCheckpoint}
	cases := []struct {
		done, prev float64
		blocks     int
		want       float64
	}{
		{0.37, 0, 10, 0.3},     // floor to the block boundary
		{0.37, 0.35, 10, 0.35}, // never regress below the previous checkpoint
		{0.99, 0, 4, 0.75},
		{1.0, 0, 4, 1.0},
		{0.5, 0, 0, 0},  // degenerate block count clamps to 1 block
		{1.5, 0, 10, 1}, // overshoot clamps to 1
	}
	for _, c := range cases {
		if got := ck.checkpointFrac(c.done, c.prev, c.blocks); got != c.want {
			t.Errorf("checkpointFrac(%g, %g, %d) = %g, want %g", c.done, c.prev, c.blocks, got, c.want)
		}
	}
	nv := RecoveryPolicy{Kind: RecoveryNaive}
	if got := nv.checkpointFrac(0.9, 0.5, 10); got != 0 {
		t.Errorf("naive checkpointFrac = %g, want 0", got)
	}
}
