package workload

import (
	"errors"
	"fmt"
	"math"
)

// Typed terminal conditions surfaced in TenantResult.Err. Callers test them
// with errors.Is; messages carry per-tenant context.
var (
	// ErrRetryBudgetExhausted marks a tenant whose job kept losing its
	// container until the recovery policy's retry budget ran out — the
	// typed terminal failure replacing the old unbounded front-requeue.
	ErrRetryBudgetExhausted = errors.New("workload: retry budget exhausted")
	// ErrAdmissionShed marks a tenant rejected by the circuit breaker:
	// the service was shedding new admissions when the job reached the
	// head of the queue.
	ErrAdmissionShed = errors.New("workload: admission shed by circuit breaker")
	// ErrCanceled marks a tenant whose job was terminated on client
	// request (the network frontend's CancelJob path).
	ErrCanceled = errors.New("workload: job canceled")
)

// RetryExhaustedError is the typed terminal failure attached to a tenant
// whose retry budget ran out. It unwraps to ErrRetryBudgetExhausted, so
// both errors.Is (against the sentinel) and errors.As (for the per-tenant
// detail) work on TenantResult.Err.
type RetryExhaustedError struct {
	Tenant  string
	Retries int
	Budget  int
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("workload: %s lost its container %d times (budget %d): retry budget exhausted",
		e.Tenant, e.Retries, e.Budget)
}

func (e *RetryExhaustedError) Unwrap() error { return ErrRetryBudgetExhausted }

// RecoveryKind selects how a failure victim's progress is treated.
type RecoveryKind int

const (
	// RecoveryCheckpoint snapshots completed-block progress at block
	// boundaries: a restart resumes from the last checkpoint, and only the
	// partially executed block is re-done. This is the default.
	RecoveryCheckpoint RecoveryKind = iota
	// RecoveryNaive restarts the victim from scratch — all progress since
	// admission is wasted. This is the baseline the chaos bench compares
	// checkpoint/restart against.
	RecoveryNaive
)

func (k RecoveryKind) String() string {
	if k == RecoveryNaive {
		return "naive"
	}
	return "checkpoint"
}

// RecoveryPolicy governs how the service handles jobs whose AM container
// died with a node. The zero value normalizes to checkpoint/restart with a
// budget of 3 retries and 2s/x2/30s exponential backoff in simulated time.
type RecoveryPolicy struct {
	// Kind selects checkpoint/restart (default) or naive from-scratch
	// restart.
	Kind RecoveryKind
	// MaxRetries bounds consecutive failed restarts per job; once exhausted
	// the job fails permanently with ErrRetryBudgetExhausted (default 3).
	// A restart that advanced the checkpoint resets the count — the job is
	// making progress, so the budget guards against futile churn, not
	// against long jobs in long storms. Naive restarts never advance, so
	// their budget depletes monotonically. Set StrictBudget to count every
	// restart regardless of progress.
	MaxRetries int
	// StrictBudget counts every container loss against MaxRetries even
	// when the job advanced its checkpoint since the previous failure.
	StrictBudget bool
	// Backoff is the simulated seconds a victim waits before its first
	// re-admission attempt (default 2).
	Backoff float64
	// BackoffMultiplier grows the wait per retry (default 2).
	BackoffMultiplier float64
	// MaxBackoff caps a single wait (default 30).
	MaxBackoff float64
	// CheckpointCharge is the simulated seconds charged to restore state
	// from the last checkpoint on re-admission (default 1). Naive restarts
	// charge Options.RequeueCharge instead.
	CheckpointCharge float64
}

// DefaultRecoveryPolicy returns the service's standard recovery behaviour.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		Kind:              RecoveryCheckpoint,
		MaxRetries:        3,
		Backoff:           2,
		BackoffMultiplier: 2,
		MaxBackoff:        30,
		CheckpointCharge:  1,
	}
}

func (p RecoveryPolicy) normalized() RecoveryPolicy {
	d := DefaultRecoveryPolicy()
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.BackoffMultiplier < 1 {
		p.BackoffMultiplier = d.BackoffMultiplier
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.CheckpointCharge <= 0 {
		p.CheckpointCharge = d.CheckpointCharge
	}
	return p
}

// backoffDelay returns the simulated wait before re-admission attempt k
// (k = 1 for the first retry): Backoff * Multiplier^(k-1), capped.
func (p RecoveryPolicy) backoffDelay(k int) float64 {
	if k < 1 {
		k = 1
	}
	d := p.Backoff * math.Pow(p.BackoffMultiplier, float64(k-1))
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// checkpointFrac maps an interrupted job's completed-work fraction onto the
// recovery policy: the last completed block boundary for checkpoint/restart
// (never regressing below the previous checkpoint), zero for naive restart.
func (p RecoveryPolicy) checkpointFrac(done, prev float64, blocks int) float64 {
	if p.Kind == RecoveryNaive {
		return 0
	}
	if blocks < 1 {
		blocks = 1
	}
	ck := math.Floor(done*float64(blocks)) / float64(blocks)
	if ck < prev {
		ck = prev
	}
	if ck > 1 {
		ck = 1
	}
	return ck
}
