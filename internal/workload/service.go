package workload

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/obs"
	"elasticml/internal/opt"
	"elasticml/internal/rt"
	"elasticml/internal/yarn"
)

// evKind orders same-time events: node failures are observed before the
// departures they might invalidate, and arrivals are admitted last, against
// the post-failure, post-departure cluster state.
type evKind int

const (
	evFail evKind = iota
	evDepart
	evArrive
)

// event is one discrete-event queue entry.
type event struct {
	at   float64
	kind evKind
	seq  int // insertion order, the final tie-break
	job  int // arrive/depart
	gen  int // depart: job generation this event was scheduled for
	node int // fail
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// jobState is a tenant job's lifecycle position.
type jobState int

const (
	jsPending jobState = iota // submitted, arrival event not yet fired
	jsQueued                  // arrived, waiting for admission
	jsRunning                 // holds an AM container until its departure
	jsDone                    // served to completion
	jsFailed                  // compile or execution error — never served
	jsUnserved                // still queued when the simulation drained
)

// job is the service-side state of one tenant submission.
type job struct {
	idx   int
	spec  JobSpec
	state jobState

	res  conf.Resources
	cost float64
	cont yarn.Container

	// gen invalidates stale departure events after re-optimization or
	// re-admission rescheduled the job.
	gen    int
	finish float64
	// fracRem is the fraction of the program's work still outstanding;
	// it drops below 1 when a node failure kills the job mid-run.
	fracRem float64
	// requeued marks the next admission as a post-failure re-admission.
	requeued bool

	result TenantResult
}

// compiled is one job's freshly compiled program plus everything the cache
// key derives from. Each admission and re-optimization check compiles from
// source: compiled plans are mutated by dynamic recompilation at runtime,
// so only optimization outcomes are shared, never plan structures.
type compiled struct {
	fs     *hdfs.FS
	comp   *hop.Compiler
	hp     *hop.Program
	mode   rt.Mode
	source string
	params map[string]interface{}
	inputs []opt.InputMeta
}

// simResult is one job's simulated execution outcome.
type simResult struct {
	simSeconds float64
	paths      []string
	outputs    map[string]*matrix.Matrix
	dims       map[string][3]int64
	prints     string
	err        error
}

// Service is the multi-tenant elastic job service. Create with New, drive
// with Run; a Service is single-use.
type Service struct {
	cc    conf.Cluster
	opts  Options
	rm    *yarn.ResourceManager
	live  conf.Cluster // cc with Nodes shrunk to the live node count
	cache *opt.Cache
	tr    *obs.Tracer

	jobs  []*job
	queue []int // FIFO of job indices awaiting admission
	evs   eventHeap
	seq   int

	now          float64
	lastT        float64
	usedIntegral float64 // ∫ allocated bytes dt
	capIntegral  float64 // ∫ live capacity bytes dt
	running      int

	rep Report
}

// New builds a service over a fresh simulated cluster. The shared plan
// cache is created here so successive Run batches (or an external test)
// could observe its stats; CacheEntries < 0 disables caching.
func New(cc conf.Cluster, o Options) (*Service, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	o = o.normalized()
	s := &Service{
		cc:   cc,
		opts: o,
		rm:   yarn.NewResourceManager(cc),
		live: cc,
		tr:   o.Trace,
	}
	if o.CacheEntries >= 0 {
		s.cache = opt.NewCache(o.CacheEntries)
	}
	return s, nil
}

// Run admits and executes the job list to completion and returns the
// report. The simulation is deterministic: identical inputs yield
// byte-identical reports at any Options.Workers value.
func Run(cc conf.Cluster, jobs []JobSpec, o Options) (*Report, error) {
	s, err := New(cc, o)
	if err != nil {
		return nil, err
	}
	return s.Run(jobs)
}

// Run executes one workload batch.
func (s *Service) Run(specs []JobSpec) (*Report, error) {
	if err := validate(specs, s.cc.Nodes, s.opts.NodeFailures); err != nil {
		return nil, err
	}
	s.jobs = make([]*job, len(specs))
	for i, spec := range specs {
		j := &job{idx: i, spec: spec, fracRem: 1}
		tenant := spec.Tenant
		if tenant == "" {
			tenant = fmt.Sprintf("tenant-%02d", i)
		}
		j.result = TenantResult{
			Tenant:  tenant,
			Program: spec.name(),
			Arrival: spec.Arrival,
		}
		if spec.Source == "" {
			j.result.Scenario = fmt.Sprintf("%s/%s", spec.Scenario.Size, spec.Scenario.ShapeName())
		}
		s.jobs[i] = j
		s.push(event{at: spec.Arrival, kind: evArrive, job: i})
	}
	for _, nf := range s.opts.NodeFailures {
		s.push(event{at: nf.At, kind: evFail, node: nf.Node})
	}

	for len(s.evs) > 0 {
		batch := s.popBatch()
		s.advanceTo(batch[0].at)
		failed, departed := false, false
		for _, ev := range batch {
			switch ev.kind {
			case evFail:
				s.applyFail(ev)
				failed = true
			case evDepart:
				if s.applyDepart(ev) {
					departed = true
				}
			case evArrive:
				s.applyArrive(ev)
			}
		}
		// §5-style elastic re-optimization: every departure and node
		// failure re-evaluates the running jobs against the new cluster
		// state before freed capacity is handed to the queue.
		if failed {
			s.reoptimize("failure")
		} else if departed {
			s.reoptimize("departure")
		}
		s.tryAdmit()
	}

	// The event queue drained; whatever is still waiting can never be
	// admitted (the shrunken cluster has no chunk for the FIFO head and no
	// further departures or failures will change that).
	for _, j := range s.jobs {
		if j.state == jsQueued || j.state == jsPending {
			j.state = jsUnserved
		}
	}

	rep := s.rep
	rep.Tenants = make([]TenantResult, len(s.jobs))
	for i, j := range s.jobs {
		rep.Tenants[i] = j.result
	}
	rep.Cache = s.cache.Stats()
	rep.finalize(s.usedIntegral, s.capIntegral)
	if m := s.tr.Metrics(); m != nil {
		m.SetGauge("workload.utilization", rep.Utilization)
		m.SetGauge("workload.cache_hit_rate", rep.Cache.HitRate())
		m.SetGauge("workload.p95_latency", rep.P95Latency)
	}
	return &rep, nil
}

// push enqueues an event with the next insertion sequence number.
func (s *Service) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.evs, ev)
}

// popBatch pops every event sharing the earliest timestamp, in kind/seq
// order: failures, then departures, then arrivals.
func (s *Service) popBatch() []event {
	first := heap.Pop(&s.evs).(event)
	batch := []event{first}
	for len(s.evs) > 0 && s.evs[0].at == first.at {
		batch = append(batch, heap.Pop(&s.evs).(event))
	}
	return batch
}

// advanceTo moves simulated time forward, accumulating the utilization
// integrals over the elapsed interval.
func (s *Service) advanceTo(t float64) {
	if t > s.lastT {
		dt := t - s.lastT
		capacity := float64(s.rm.LiveNodes()) * float64(s.cc.MemPerNode)
		used := capacity - float64(s.rm.AvailableMem())
		s.usedIntegral += used * dt
		s.capIntegral += capacity * dt
		s.lastT = t
	}
	s.now = t
}

// applyFail processes a node failure: the cluster view shrinks, and every
// running job whose AM container lived on the node is pushed back to the
// front of the admission queue with its remaining-work fraction preserved.
func (s *Service) applyFail(ev event) {
	lost, err := s.rm.FailNode(ev.node)
	if err != nil {
		return // validated upfront; defensive
	}
	s.live.Nodes = s.rm.LiveNodes()
	s.rep.NodeFailures++
	s.tr.Complete(obs.LayerWorkload, "workload.node-fail", s.now, 0,
		obs.A("node", ev.node), obs.A("lost_containers", len(lost)))
	s.tr.Metrics().Add("workload.node_failures", 1)

	lostIDs := make(map[yarn.ContainerID]bool, len(lost))
	for _, c := range lost {
		lostIDs[c.ID] = true
	}
	var requeued []int
	for _, j := range s.jobs {
		if j.state != jsRunning || !lostIDs[j.cont.ID] {
			continue
		}
		frac := 0.0
		if span := j.finish - j.result.Admitted; span > 0 {
			frac = (j.finish - s.now) / span
		}
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		j.fracRem *= frac
		j.gen++ // invalidate the scheduled departure
		j.state = jsQueued
		j.cont = yarn.Container{}
		j.requeued = true
		j.result.Requeues++
		s.rep.Requeues++
		s.running--
		requeued = append(requeued, j.idx)
		s.tr.Complete(obs.LayerWorkload, "workload.requeue", s.now, 0,
			obs.A("tenant", j.result.Tenant), obs.A("node", ev.node))
	}
	// Victims go to the queue front (they already waited their turn), in
	// job order among themselves.
	s.queue = append(requeued, s.queue...)
}

// applyDepart finalizes a finished tenant. Stale events — the job was
// rescheduled by a re-optimization or killed by a node failure since this
// event was pushed — are skipped via the generation check.
func (s *Service) applyDepart(ev event) bool {
	j := s.jobs[ev.job]
	if j.state != jsRunning || ev.gen != j.gen {
		return false
	}
	_ = s.rm.Release(j.cont.ID)
	j.cont = yarn.Container{}
	j.state = jsDone
	j.result.Served = true
	j.result.Finished = s.now
	j.result.Latency = s.now - j.result.Arrival
	j.result.Config = j.res.String()
	s.running--
	s.tr.Complete(obs.LayerWorkload, "tenant.run", j.result.Admitted, s.now-j.result.Admitted,
		obs.A("tenant", j.result.Tenant), obs.A("program", j.result.Program),
		obs.A("config", j.result.Config), obs.A("reopts", j.result.Reopts))
	s.tr.Metrics().Add("workload.departures", 1)
	s.tr.Metrics().Observe("workload.latency", j.result.Latency)
	return true
}

// applyArrive moves a submitted job into the admission queue.
func (s *Service) applyArrive(ev event) {
	j := s.jobs[ev.job]
	j.state = jsQueued
	s.queue = append(s.queue, ev.job)
	s.tr.Metrics().Add("workload.arrivals", 1)
}

// optOpts returns the optimizer options shared by every optimization the
// service performs. They are part of the cache key, so they must be
// identical for key-equal lookups to be semantically equal.
func (s *Service) optOpts() opt.Options {
	o := opt.DefaultOptions()
	o.Points = s.opts.Points
	o.Workers = s.opts.Workers
	return o
}

// compileJob compiles a job from source on a fresh file system and
// collects the input metadata the cache key covers.
func (s *Service) compileJob(j *job) (c *compiled, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, err = nil, fmt.Errorf("panic: %v", rec)
		}
	}()
	c = &compiled{fs: hdfs.New()}
	if j.spec.Source != "" {
		c.mode = rt.ModeValue
		c.source = j.spec.Source
		c.params = j.spec.Params
		if j.spec.Setup != nil {
			j.spec.Setup(c.fs)
		}
	} else {
		c.mode = rt.ModeSim
		c.source = j.spec.Script.Source
		c.params = j.spec.Script.Params
		datagen.Describe(c.fs, j.spec.Scenario)
	}
	prog, err := dml.Parse(c.source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	c.comp = hop.NewCompiler(c.fs, c.params)
	c.hp, err = c.comp.Compile(prog, c.source)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	for _, name := range c.fs.List() {
		f, statErr := c.fs.Stat(name)
		if statErr != nil {
			continue
		}
		c.inputs = append(c.inputs, opt.InputMeta{
			Path: name, Rows: f.Rows, Cols: f.Cols, NNZ: f.NNZ,
			Format: f.Format.String(),
		})
	}
	return c, nil
}

// optimizeUnder runs the cache-aware resource optimization of one compiled
// job under the given cluster view.
func (s *Service) optimizeUnder(c *compiled, cc conf.Cluster, opts opt.Options) (conf.Resources, float64, bool) {
	key := opt.CacheKey(c.source, c.params, c.inputs, cc, opts)
	o := &opt.Optimizer{CC: cc, Opts: opts}
	r, hit := o.OptimizeCached(c.hp, s.cache, key)
	return r.Res, r.Cost, hit
}

// tryAdmit drains the FIFO admission queue as far as capacity allows.
// Admission is two-phase: the job is first optimized under the *unclamped*
// live cluster (the stable cache key shared across cluster load states);
// only if that configuration's AM container does not fit the largest free
// chunk is it re-optimized under a clamped cluster (degraded admission).
// The head of the queue blocks the tail — FIFO, no bypass.
func (s *Service) tryAdmit() {
	type admission struct {
		j *job
		c *compiled
	}
	var adm []admission
	for len(s.queue) > 0 {
		j := s.jobs[s.queue[0]]
		chunk := s.rm.MaxFreeChunk()
		if chunk < s.cc.MinAlloc {
			break
		}
		c, err := s.compileJob(j)
		if err != nil {
			s.queue = s.queue[1:]
			j.state = jsFailed
			s.tr.Complete(obs.LayerWorkload, "tenant.error", s.now, 0,
				obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
			continue
		}
		opts := s.optOpts()
		res, cost, hit := s.optimizeUnder(c, s.live, opts)
		degraded := false
		if s.cc.ContainerSize(res.CP) > chunk {
			clamped := s.live
			clamped.MaxAlloc = chunk
			res2, cost2, hit2 := s.optimizeUnder(c, clamped, opts)
			if s.cc.ContainerSize(res2.CP) > chunk {
				break // not even the clamped optimum fits right now
			}
			res, cost = res2, cost2
			hit = hit && hit2
			degraded = true
		}
		cont, err := s.rm.Allocate(s.cc.ContainerSize(res.CP))
		if err != nil {
			break // defensive: retry at the next event
		}
		s.queue = s.queue[1:]
		j.state = jsRunning
		j.cont = cont
		j.res, j.cost = res, cost
		j.result.Admitted = s.now
		j.result.QueueDelay = s.now - j.result.Arrival
		j.result.CacheHit = hit
		j.result.Degraded = degraded
		s.running++
		if s.running > s.rep.MaxConcurrent {
			s.rep.MaxConcurrent = s.running
		}
		adm = append(adm, admission{j: j, c: c})
	}
	if len(adm) == 0 {
		return
	}

	// Simulate this round's admissions in parallel; results are applied in
	// admission order below, so the schedule is worker-count independent.
	sims := make([]simResult, len(adm))
	s.fanOut(len(adm), func(i int) {
		sims[i] = s.simulate(adm[i].c, adm[i].j.res)
	})
	for i, a := range adm {
		j := a.j
		sr := sims[i]
		if sr.err != nil {
			_ = s.rm.Release(j.cont.ID)
			j.cont = yarn.Container{}
			j.state = jsFailed
			s.running--
			s.tr.Complete(obs.LayerWorkload, "tenant.error", s.now, 0,
				obs.A("tenant", j.result.Tenant), obs.A("err", sr.err.Error()))
			continue
		}
		charge := s.opts.OptCharge
		if j.result.CacheHit {
			charge = s.opts.HitCharge
		}
		if j.requeued {
			charge += s.opts.RequeueCharge
			j.requeued = false
		}
		j.gen++
		j.finish = s.now + charge + sr.simSeconds*j.fracRem
		s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
		j.result.Outputs = sr.outputs
		j.result.Prints = sr.prints
		j.result.OutputHash = outputHash(sr.paths, sr.outputs, sr.dims, sr.prints)
		j.result.Config = j.res.String()
		s.tr.Complete(obs.LayerWorkload, "tenant.queue", j.result.Arrival, j.result.QueueDelay,
			obs.A("tenant", j.result.Tenant))
		s.tr.Metrics().Add("workload.admissions", 1)
		if j.result.CacheHit {
			s.tr.Metrics().Add("workload.admission_cache_hits", 1)
		}
		if j.result.Degraded {
			s.tr.Metrics().Add("workload.degraded_admissions", 1)
		}
	}
}

// simulate executes one compiled job under its configuration on the
// runtime, returning the simulated duration and (for value-mode jobs) the
// written outputs and print stream. It runs on pool workers: it touches no
// service state besides read-only fields, and emits no trace events.
func (s *Service) simulate(c *compiled, res conf.Resources) (r simResult) {
	defer func() {
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("panic: %v", rec)
		}
	}()
	plan := lop.Select(c.hp, s.live, res)
	ip := rt.New(c.mode, c.fs, s.live, res)
	ip.Compiler = c.comp
	ip.SimTableCols = s.opts.SimTableCols
	var out bytes.Buffer
	ip.Out = &out
	if err := ip.Run(plan); err != nil {
		r.err = err
		return r
	}
	r.simSeconds = ip.SimTime
	r.prints = out.String()
	r.outputs = map[string]*matrix.Matrix{}
	r.dims = map[string][3]int64{}
	for _, name := range c.fs.List() {
		if !strings.HasPrefix(name, "/out") {
			continue
		}
		f, err := c.fs.Stat(name)
		if err != nil {
			continue
		}
		r.paths = append(r.paths, name)
		r.dims[name] = [3]int64{f.Rows, f.Cols, f.NNZ}
		if f.Data != nil {
			r.outputs[name] = f.Data
		}
	}
	sort.Strings(r.paths)
	return r
}

// reoptimize re-evaluates every running job against the current cluster
// state (paper §5: re-optimization on cluster change). The cache pre-pass
// and post-pass run sequentially in job order so cache counters and LRU
// order are identical at any worker count; only cache misses fan out.
func (s *Service) reoptimize(trigger string) {
	var running []*job
	for _, j := range s.jobs {
		if j.state == jsRunning {
			running = append(running, j)
		}
	}
	if len(running) == 0 || s.live.Nodes == 0 {
		return
	}
	opts := s.optOpts()
	type cand struct {
		j    *job
		comp *compiled
		key  string
		res  conf.Resources
		cost float64
		hit  bool
		err  error
	}
	cands := make([]*cand, len(running))
	for i, j := range running {
		c := &cand{j: j}
		c.comp, c.err = s.compileJob(j)
		if c.err == nil {
			c.key = opt.CacheKey(c.comp.source, c.comp.params, c.comp.inputs, s.live, opts)
			if res, cost, ok := s.cache.Lookup(c.key); ok {
				c.res, c.cost, c.hit = res, cost, true
			}
		}
		s.rep.ReoptChecks++
		cands[i] = c
	}
	s.fanOut(len(cands), func(i int) {
		c := cands[i]
		if c.err != nil || c.hit {
			return
		}
		o := &opt.Optimizer{CC: s.live, Opts: opts}
		r := o.Optimize(c.comp.hp)
		c.res, c.cost = r.Res, r.Cost
	})
	for _, c := range cands {
		if c.err == nil && !c.hit {
			s.cache.Insert(c.key, c.res, c.cost)
		}
	}
	for _, c := range cands {
		if c.err != nil {
			continue
		}
		s.applyReopt(c.j, c.res, c.cost, trigger)
	}
	s.tr.Metrics().Add("workload.reopt_passes", 1)
}

// applyReopt installs a changed configuration on a running job: swap the
// AM container if the size changed, charge the re-optimization overhead,
// and rescale the remaining execution time by the cost ratio.
func (s *Service) applyReopt(j *job, res conf.Resources, cost float64, trigger string) {
	if resEqual(res, j.res) {
		return
	}
	need := s.cc.ContainerSize(res.CP)
	if need != j.cont.Mem {
		// The job's own container is released first, so its memory counts
		// toward the free slice it may grow into.
		freeSame, _ := s.rm.FreeOnNode(j.cont.Node)
		if need > j.cont.Mem+freeSame && need > s.rm.MaxFreeChunk() {
			return // no room to grow — keep the current configuration
		}
		oldMem := j.cont.Mem
		if err := s.rm.Release(j.cont.ID); err != nil {
			return
		}
		cont, err := s.rm.Allocate(need)
		if err != nil {
			// Defensive: reclaim the slot just freed and keep the old
			// configuration.
			cont, err = s.rm.Allocate(oldMem)
			if err != nil {
				// Cannot even re-take the old slot (impossible in the
				// sequential loop); re-queue the job.
				j.gen++
				j.state = jsQueued
				j.cont = yarn.Container{}
				j.requeued = true
				j.result.Requeues++
				s.rep.Requeues++
				s.running--
				s.queue = append([]int{j.idx}, s.queue...)
				return
			}
			j.cont = cont
			return
		}
		j.cont = cont
	}
	oldRes := j.res
	rem := j.finish - s.now
	if rem < 0 {
		rem = 0
	}
	if j.cost > 0 && cost > 0 {
		rem *= cost / j.cost
	}
	j.res = res
	j.cost = cost
	j.gen++
	j.finish = s.now + s.opts.ReoptCharge + rem
	s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
	j.result.Reopts++
	s.rep.ReoptChanges++
	if trigger == "failure" {
		s.rep.FailureReopts++
	} else {
		s.rep.DepartureReopts++
	}
	s.tr.Complete(obs.LayerWorkload, "workload.reopt", s.now, s.opts.ReoptCharge,
		obs.A("tenant", j.result.Tenant), obs.A("trigger", trigger),
		obs.A("from", oldRes.String()), obs.A("to", res.String()))
	s.tr.Metrics().Add("workload.reopt_changes", 1)
}

// resEqual compares two resource configurations field-wise.
func resEqual(a, b conf.Resources) bool {
	if a.CP != b.CP || a.CPCores != b.CPCores || len(a.MR) != len(b.MR) {
		return false
	}
	for i := range a.MR {
		if a.MR[i] != b.MR[i] {
			return false
		}
	}
	return true
}

// fanOut runs fn(0..n-1) on up to Options.Workers goroutines and joins.
// Callers must apply results in index order afterwards; fn must not touch
// shared mutable state. Workers <= 1 runs inline.
func (s *Service) fanOut(n int, fn func(int)) {
	w := s.opts.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
