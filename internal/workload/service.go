package workload

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/mr"
	"elasticml/internal/obs"
	"elasticml/internal/opt"
	"elasticml/internal/rt"
	"elasticml/internal/yarn"
)

// evKind orders same-time events: chaos (node loss, restore, slow episodes)
// is observed before the departures it might invalidate, width changes land
// after departures freed the capacity they were promised, retry
// re-admissions join the queue after resizes freed theirs, arrivals are
// admitted last against the settled cluster state, and the periodic
// elasticity tick observes everything that happened at its instant.
type evKind int

const (
	evChaos evKind = iota
	evDepart
	evResize
	evRetry
	evArrive
	evTick
)

// event is one discrete-event queue entry.
type event struct {
	at    float64
	kind  evKind
	seq   int // insertion order, the final tie-break
	job   int // arrive/depart/retry
	gen   int // depart/retry: job generation this event was scheduled for
	chaos int // chaos: index into Service.chaos
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// jobState is a tenant job's lifecycle position.
type jobState int

const (
	jsPending    jobState = iota // submitted, arrival event not yet fired
	jsQueued                     // arrived, waiting for admission
	jsRunning                    // holds an AM container until its departure
	jsBackoff                    // failure victim waiting out its retry backoff
	jsDone                       // served to completion
	jsFailed                     // compile or execution error — never served
	jsFailedPerm                 // retry budget exhausted — terminal failure
	jsShed                       // rejected by the circuit breaker
	jsUnserved                   // still queued when the simulation drained
	jsCanceled                   // terminated on client request
)

func (st jobState) String() string {
	switch st {
	case jsPending:
		return "pending"
	case jsQueued:
		return "queued"
	case jsRunning:
		return "running"
	case jsBackoff:
		return "backoff"
	case jsDone:
		return "done"
	case jsFailed:
		return "failed"
	case jsFailedPerm:
		return "failed-permanently"
	case jsShed:
		return "shed"
	case jsUnserved:
		return "unserved"
	case jsCanceled:
		return "canceled"
	}
	return "unknown"
}

// job is the service-side state of one tenant submission.
type job struct {
	idx   int
	spec  JobSpec
	state jobState

	res  conf.Resources
	cost float64
	// conts are the job's granted containers (the AM first); len(conts) is
	// the job's current width. Rigid jobs always hold exactly one.
	conts []yarn.Container
	// espec is the normalized elasticity spec from the submission.
	espec ElasticSpec
	// pendingW is a booked width change's target (0 = none): set when a
	// resize event is pushed, cleared when it fires or the job is
	// rescheduled out from under it.
	pendingW int

	// gen invalidates stale departure/retry events after re-optimization,
	// failure, or slow-node stretching rescheduled the job.
	gen    int
	finish float64
	// execStart is when execution (re)started after admission charges; the
	// progress model interpolates between execStart and finish.
	execStart float64
	// total is the job's full uninterrupted simulated execution time.
	total float64
	// ckpt is the completed-work fraction snapshotted at the last block
	// boundary; a restart resumes from here (always 0 under naive restart).
	ckpt float64
	// blocks is the checkpoint granularity: the program's leaf-block count,
	// or epochs*batches for epoch-structured iterative programs.
	blocks int
	// epochs/batches describe the program's epoch structure when the
	// compiled hop program carries statically-known epoch/batch for-loops
	// (opt.DetectEpochs); 0 for one-shot batch programs. Epoch jobs grow at
	// epoch boundaries and shrink mid-epoch snapping to the last completed
	// batch.
	epochs, batches int
	// retries counts container losses charged against the retry budget.
	retries int
	// requeued marks the next admission as a post-failure re-admission.
	requeued bool
	// slow is the effective slowdown of the job's current node (1 = full
	// speed), after the speculation cap.
	slow float64

	result TenantResult
}

// compiled is one job's freshly compiled program plus everything the cache
// key derives from. Each admission and re-optimization check compiles from
// source: compiled plans are mutated by dynamic recompilation at runtime,
// so only optimization outcomes are shared, never plan structures.
type compiled struct {
	fs     *hdfs.FS
	comp   *hop.Compiler
	hp     *hop.Program
	mode   rt.Mode
	source string
	params map[string]interface{}
	inputs []opt.InputMeta
}

// simResult is one job's simulated execution outcome.
type simResult struct {
	simSeconds float64
	paths      []string
	outputs    map[string]*matrix.Matrix
	dims       map[string][3]int64
	prints     string
	err        error
}

// Service is the multi-tenant elastic job service. Create with New, drive
// with Run; a Service is single-use.
type Service struct {
	cc    conf.Cluster
	opts  Options
	rm    *yarn.ResourceManager
	live  conf.Cluster // cc with Nodes shrunk to the live node count
	cache opt.PlanCache
	memos *opt.MemoStore
	tr    *obs.Tracer
	brk   *breaker

	jobs  []*job
	queue []int // FIFO of job indices awaiting admission
	evs   eventHeap
	seq   int
	chaos []fault.NodeEvent // expanded chaos schedule, indexed by event.chaos
	// chaosScheduled guards scheduleChaos against double expansion when a
	// live frontend schedules chaos at construction.
	chaosScheduled bool
	// finished accumulates job indices that reached a terminal state since
	// the last DrainFinished call — the live frontend's result stream.
	finished []int

	now          float64
	lastT        float64
	usedIntegral float64 // ∫ allocated bytes dt
	capIntegral  float64 // ∫ live capacity bytes dt
	running      int

	rep Report
}

// New builds a service over a fresh simulated cluster. The shared plan
// cache is created here so successive Run batches (or an external test)
// could observe its stats; CacheEntries < 0 disables caching.
func New(cc conf.Cluster, o Options) (*Service, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	o = o.normalized()
	s := &Service{
		cc:   cc,
		opts: o,
		rm:   yarn.NewResourceManager(cc),
		live: cc,
		tr:   o.Trace,
		brk:  newBreaker(o.Breaker),
	}
	switch {
	case o.CacheEntries < 0:
		s.cache = (*opt.Cache)(nil) // caching disabled: typed-nil no-op sink
	case o.CacheShards == 1:
		s.cache = opt.NewCache(o.CacheEntries)
	default:
		s.cache = opt.NewSharded(o.CacheEntries, o.CacheShards)
	}
	if !o.DisableReoptMemo {
		s.memos = opt.NewMemoStore(0)
	}
	return s, nil
}

// Run admits and executes the job list to completion and returns the
// report. The simulation is deterministic: identical inputs yield
// byte-identical reports at any Options.Workers value.
func Run(cc conf.Cluster, jobs []JobSpec, o Options) (*Report, error) {
	s, err := New(cc, o)
	if err != nil {
		return nil, err
	}
	return s.Run(jobs)
}

// Run executes one workload batch.
func (s *Service) Run(specs []JobSpec) (*Report, error) {
	if err := validate(specs, s.cc.Nodes, s.opts.NodeFailures, s.opts.Chaos); err != nil {
		return nil, err
	}
	for _, spec := range specs {
		s.submit(spec)
	}
	s.ScheduleChaos()
	for s.Step() {
	}
	return s.Finalize(), nil
}

// submit registers one job and pushes its arrival event, returning the
// job's index.
func (s *Service) submit(spec JobSpec) int {
	i := len(s.jobs)
	j := &job{idx: i, spec: spec, slow: 1, espec: spec.Elastic.normalized()}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = fmt.Sprintf("tenant-%02d", i)
	}
	j.result = TenantResult{
		Tenant:  tenant,
		Program: spec.name(),
		Arrival: spec.Arrival,
	}
	if spec.Source == "" {
		j.result.Scenario = fmt.Sprintf("%s/%s", spec.Scenario.Size, spec.Scenario.ShapeName())
	}
	s.jobs = append(s.jobs, j)
	s.push(event{at: spec.Arrival, kind: evArrive, job: i})
	return i
}

// Submit adds one job to a live service and returns its index. Unlike the
// batch Run entry point, arrivals stream in one at a time; the caller (the
// network sequencer) must assign monotone arrival times at or after the
// simulation frontier, so the discrete-event loop never travels backwards.
func (s *Service) Submit(spec JobSpec) (int, error) {
	if spec.Source == "" && spec.Script.Source == "" {
		return 0, fmt.Errorf("workload: submit %q: neither a script nor a source", spec.Tenant)
	}
	if spec.Arrival < 0 {
		return 0, fmt.Errorf("workload: submit %q: negative arrival %g", spec.Tenant, spec.Arrival)
	}
	if spec.Arrival < s.lastT {
		return 0, fmt.Errorf("workload: submit %q: arrival %g before frontier %g", spec.Tenant, spec.Arrival, s.lastT)
	}
	return s.submit(spec), nil
}

// scheduleChaos expands and enqueues the chaos schedule: the legacy
// single-node failures merged with the expanded chaos plan, both pure
// functions of the options. Run calls it after the batch submits; a live
// frontend calls it once at construction, before any submission.
func (s *Service) ScheduleChaos() {
	if s.chaosScheduled {
		return
	}
	s.chaosScheduled = true
	for _, nf := range s.opts.NodeFailures {
		s.chaos = append(s.chaos, fault.NodeEvent{
			Kind: fault.NodeDown, At: nf.At, Nodes: []int{nf.Node}, Cause: "fail",
		})
	}
	s.chaos = append(s.chaos, s.opts.Chaos.Events(s.cc.Nodes)...)
	for i, ne := range s.chaos {
		s.push(event{at: ne.At, kind: evChaos, chaos: i})
	}
	if s.opts.Elastic.Tick > 0 {
		s.push(event{at: s.opts.Elastic.Tick, kind: evTick})
	}
}

// Step processes the next event-time batch — chaos, departures, retries,
// arrivals, the §5 re-optimization pass, and queue admission — and reports
// whether any events remain. The event loop is the only mutator of service
// state, so the per-step outcome is a pure function of the submission and
// step history.
func (s *Service) Step() bool {
	if len(s.evs) == 0 {
		return false
	}
	batch := s.popBatch()
	s.advanceTo(batch[0].at)
	failed, restored, departed, ticked := false, false, false, false
	var retryJoins []int
	for _, ev := range batch {
		switch ev.kind {
		case evChaos:
			f, r := s.applyChaos(ev)
			failed = failed || f
			restored = restored || r
		case evDepart:
			if s.applyDepart(ev) {
				departed = true
			}
		case evResize:
			s.applyResize(ev)
		case evRetry:
			if idx, ok := s.applyRetry(ev); ok {
				retryJoins = append(retryJoins, idx)
			}
		case evArrive:
			s.applyArrive(ev)
		case evTick:
			ticked = true
		}
	}
	// Failure victims rejoin at the queue front (they already waited
	// their turn), in the order their retries were scheduled.
	if len(retryJoins) > 0 {
		s.queue = append(retryJoins, s.queue...)
	}
	// §5-style elastic re-optimization: every departure, node failure,
	// and capacity restore re-evaluates the running jobs against the
	// new cluster state before freed capacity is handed to the queue.
	if failed {
		s.reoptimize("failure")
	} else if restored {
		s.reoptimize("restore")
	} else if departed {
		s.reoptimize("departure")
	}
	s.tryAdmit()
	// The policy engine runs after admission, so freed capacity reaches
	// queued tenants before any running job widens into it.
	s.elasticPass()
	if ticked && s.opts.Elastic.Tick > 0 {
		for _, j := range s.jobs {
			if j.state == jsPending || j.state == jsQueued || j.state == jsRunning || j.state == jsBackoff {
				s.push(event{at: s.now + s.opts.Elastic.Tick, kind: evTick})
				break
			}
		}
	}
	return true
}

// Finalize marks every job the drained event queue can no longer serve and
// builds the report. After Finalize the service accepts no further work.
func (s *Service) Finalize() *Report {
	// The event queue drained; whatever is still waiting can never be
	// admitted (the shrunken cluster has no chunk for the FIFO head and no
	// further departures, failures, or restores will change that).
	for _, j := range s.jobs {
		if j.state == jsQueued || j.state == jsPending || j.state == jsBackoff {
			j.state = jsUnserved
			s.markTerminal(j)
		}
	}

	rep := s.rep
	rep.Tenants = make([]TenantResult, len(s.jobs))
	for i, j := range s.jobs {
		rep.Tenants[i] = j.result
	}
	rep.Cache = s.cache.Stats()
	rep.BreakerTrips = s.brk.tripCount()
	rep.finalize(s.usedIntegral, s.capIntegral)
	if m := s.tr.Metrics(); m != nil {
		m.SetGauge("workload.utilization", rep.Utilization)
		m.SetGauge("workload.cache_hit_rate", rep.Cache.HitRate())
		m.SetGauge("workload.p95_latency", rep.P95Latency)
	}
	return &rep
}

// Frontier returns the high-water mark of processed simulated time. Live
// submissions must arrive at or after it.
func (s *Service) Frontier() float64 { return s.lastT }

// JobCount returns how many jobs have been submitted.
func (s *Service) JobCount() int { return len(s.jobs) }

// Result returns a copy of one job's current result; ok is false for an
// out-of-range index.
func (s *Service) Result(idx int) (TenantResult, bool) {
	if idx < 0 || idx >= len(s.jobs) {
		return TenantResult{}, false
	}
	return s.jobs[idx].result, true
}

// State returns one job's lifecycle state name ("queued", "running",
// "done", ...); ok is false for an out-of-range index.
func (s *Service) State(idx int) (string, bool) {
	if idx < 0 || idx >= len(s.jobs) {
		return "", false
	}
	return s.jobs[idx].state.String(), true
}

// markTerminal queues a terminal-state transition for DrainFinished.
func (s *Service) markTerminal(j *job) {
	s.finished = append(s.finished, j.idx)
}

// DrainFinished returns the indices of jobs that reached a terminal state
// since the last call, in transition order — the live frontend's per-step
// result stream.
func (s *Service) DrainFinished() []int {
	f := s.finished
	s.finished = nil
	return f
}

// Cancel terminates a job on client request. Queued, backoff, and pending
// jobs are removed from the admission machinery; a running job releases its
// container, which immediately re-opens admission for the queue (like any
// departure, the freed capacity triggers a re-optimization pass). Returns
// false if the job is unknown or already terminal.
func (s *Service) Cancel(idx int) bool {
	if idx < 0 || idx >= len(s.jobs) {
		return false
	}
	j := s.jobs[idx]
	wasRunning := false
	switch j.state {
	case jsPending, jsQueued, jsBackoff:
		for k, q := range s.queue {
			if q == idx {
				s.queue = append(s.queue[:k], s.queue[k+1:]...)
				break
			}
		}
	case jsRunning:
		wasRunning = true
		s.releaseAll(j)
		s.running--
	default:
		return false // already terminal
	}
	j.gen++ // invalidate any scheduled departure, resize, or retry event
	j.pendingW = 0
	j.state = jsCanceled
	j.result.Canceled = true
	j.result.Err = fmt.Errorf("%w: %s", ErrCanceled, j.result.Tenant)
	j.result.Error = j.result.Err.Error()
	s.rep.Canceled++
	s.markTerminal(j)
	s.tr.Complete(obs.LayerWorkload, "workload.cancel", s.now, 0,
		obs.A("tenant", j.result.Tenant))
	s.tr.Metrics().Add("workload.canceled", 1)
	if wasRunning {
		s.reoptimize("departure")
	}
	s.tryAdmit()
	s.elasticPass()
	return true
}

// releaseAll returns every container a job still holds. Containers that
// died with their node are already unknown to the RM and are skipped.
func (s *Service) releaseAll(j *job) {
	for _, c := range j.conts {
		if err := s.rm.Release(c.ID); err != nil && !errors.Is(err, yarn.ErrUnknownContainer) {
			s.tr.Complete(obs.LayerWorkload, "workload.release-error", s.now, 0,
				obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
		}
	}
	j.conts = nil
}

// push enqueues an event with the next insertion sequence number.
func (s *Service) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.evs, ev)
}

// popBatch pops every event sharing the earliest timestamp, in kind/seq
// order: chaos, then departures, then retries, then arrivals.
func (s *Service) popBatch() []event {
	first := heap.Pop(&s.evs).(event)
	batch := []event{first}
	for len(s.evs) > 0 && s.evs[0].at == first.at {
		batch = append(batch, heap.Pop(&s.evs).(event))
	}
	return batch
}

// advanceTo moves simulated time forward, accumulating the utilization
// integrals over the elapsed interval.
func (s *Service) advanceTo(t float64) {
	if t > s.lastT {
		dt := t - s.lastT
		capacity := float64(s.rm.LiveNodes()) * float64(s.cc.MemPerNode)
		used := capacity - float64(s.rm.AvailableMem())
		s.usedIntegral += used * dt
		s.capIntegral += capacity * dt
		s.lastT = t
	}
	s.now = t
}

// applyChaos delivers one expanded chaos event. It reports whether the
// event removed capacity (failure) or returned it (restore).
func (s *Service) applyChaos(ev event) (failed, restored bool) {
	ne := s.chaos[ev.chaos]
	switch ne.Kind {
	case fault.NodeDown:
		return s.applyNodesDown(ne), false
	case fault.NodeUp:
		for _, node := range ne.Nodes {
			if err := s.rm.RestoreNode(node); err != nil {
				continue // node was never down (overlapping chaos); skip
			}
			restored = true
			s.rep.NodeRestores++
			s.tr.Complete(obs.LayerWorkload, "workload.node-restore", s.now, 0,
				obs.A("node", node), obs.A("cause", ne.Cause))
			s.tr.Metrics().Add("workload.node_restores", 1)
		}
		s.live.Nodes = s.rm.LiveNodes()
		return false, restored
	case fault.NodeSlow:
		s.applyNodeSpeed(ne.Nodes[0], ne.Factor, ne.Cause)
	case fault.NodeFast:
		s.applyNodeSpeed(ne.Nodes[0], 1, ne.Cause)
	}
	return false, false
}

// applyNodesDown processes a (possibly correlated) node-group loss: the
// cluster view shrinks atomically, and every running job whose AM container
// lived on a lost node goes through the recovery policy.
func (s *Service) applyNodesDown(ne fault.NodeEvent) bool {
	before := s.rm.LiveNodes()
	lost, err := s.rm.FailNodes(ne.Nodes)
	if err != nil {
		return false // validated upfront; defensive
	}
	downed := before - s.rm.LiveNodes()
	if downed == 0 {
		return false // every group member was already down
	}
	s.live.Nodes = s.rm.LiveNodes()
	s.rep.NodeFailures += downed
	s.tr.Complete(obs.LayerWorkload, "workload.node-fail", s.now, 0,
		obs.A("nodes", downed), obs.A("cause", ne.Cause),
		obs.A("lost_containers", len(lost)))
	s.tr.Metrics().Add("workload.node_failures", int64(downed))
	// Correlated losses hit the breaker once per lost node: a rack outage
	// is as many failure signals as it removed nodes.
	for i := 0; i < downed; i++ {
		s.brk.recordFailure(s.now)
	}

	lostIDs := make(map[yarn.ContainerID]bool, len(lost))
	for _, c := range lost {
		lostIDs[c.ID] = true
	}
	for _, j := range s.jobs {
		if j.state != jsRunning {
			continue
		}
		hit := false
		for _, c := range j.conts {
			if lostIDs[c.ID] {
				hit = true
				break
			}
		}
		if hit {
			// Any lost container kills the job's current attempt; survivors
			// on live nodes are returned inside the recovery path.
			s.failRunning(j, ne.Cause)
		}
	}
	return true
}

// failRunning applies the recovery policy to a running job whose container
// died: snapshot progress (checkpoint) or discard it (naive), charge the
// retry budget, and either schedule a backoff-delayed re-admission or fail
// the job permanently with a typed error.
func (s *Service) failRunning(j *job, cause string) {
	done := s.progressAt(j)
	ck := s.opts.Recovery.checkpointFrac(done, j.ckpt, j.blocks)
	wasted := (done - ck) * j.total
	if wasted < 0 {
		wasted = 0
	}
	if ck > j.ckpt && !s.opts.Recovery.StrictBudget {
		// The job advanced at least one block since its last loss: the
		// retry budget guards against futile churn, not progress, so the
		// consecutive-failure count starts over.
		j.retries = 0
	}
	j.ckpt = ck
	j.result.WastedWork += wasted
	s.rep.WastedWork += wasted

	j.gen++ // invalidate the scheduled departure and any booked resize
	j.pendingW = 0
	s.releaseAll(j) // survivors on live nodes go back to the pool
	j.slow = 1
	j.requeued = true
	j.retries++
	j.result.Requeues++
	s.rep.Requeues++
	s.running--

	if j.retries > s.opts.Recovery.MaxRetries {
		j.state = jsFailedPerm
		j.result.FailedPermanently = true
		j.result.Err = &RetryExhaustedError{
			Tenant: j.result.Tenant, Retries: j.retries, Budget: s.opts.Recovery.MaxRetries,
		}
		j.result.Error = j.result.Err.Error()
		s.rep.FailedPermanently++
		s.markTerminal(j)
		s.tr.Complete(obs.LayerWorkload, "workload.failed-permanently", s.now, 0,
			obs.A("tenant", j.result.Tenant), obs.A("retries", j.retries),
			obs.A("cause", cause))
		s.tr.Metrics().Add("workload.failed_permanently", 1)
		return
	}
	j.state = jsBackoff
	delay := s.opts.Recovery.backoffDelay(j.retries)
	s.push(event{at: s.now + delay, kind: evRetry, job: j.idx, gen: j.gen})
	s.tr.Complete(obs.LayerWorkload, "workload.requeue", s.now, 0,
		obs.A("tenant", j.result.Tenant), obs.A("cause", cause),
		obs.A("retry", j.retries), obs.A("backoff", delay),
		obs.A("checkpoint", j.ckpt))
	s.tr.Metrics().Add("workload.requeues", 1)
}

// progressAt maps simulated time onto the job's completed-work fraction:
// linear interpolation between the execution (re)start and the scheduled
// finish, on top of the last checkpoint. Re-optimization charges and
// slow-node stretches move the finish time, so the mapping follows the
// job's actual schedule.
func (s *Service) progressAt(j *job) float64 {
	if s.now <= j.execStart || j.finish <= j.execStart || j.total <= 0 {
		return j.ckpt // failed during restore charge: no new progress
	}
	frac := j.ckpt + (1-j.ckpt)*(s.now-j.execStart)/(j.finish-j.execStart)
	if frac < j.ckpt {
		frac = j.ckpt
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// applyNodeSpeed delivers a slow-node episode (factor > 1) or its end
// (factor == 1): resident running jobs stretch or recover by the effective
// slowdown, which the MR speculation model caps — straggler nodes and
// straggler tasks degrade through the same arithmetic.
func (s *Service) applyNodeSpeed(node int, factor float64, cause string) {
	if err := s.rm.SetNodeSpeed(node, factor); err != nil {
		return // node out of range: validated upfront; defensive
	}
	eff := 1.0
	if factor > 1 {
		eff, _ = mr.EffectiveSlowdown(factor, s.opts.TaskPolicy)
	}
	s.rep.SlowNodeEvents++
	s.tr.Complete(obs.LayerWorkload, "workload.node-speed", s.now, 0,
		obs.A("node", node), obs.A("factor", factor), obs.A("effective", eff),
		obs.A("cause", cause))
	s.tr.Metrics().Add("workload.slow_node_events", 1)
	for _, j := range s.jobs {
		// The AM container's node sets the job's effective speed — the
		// progress schedule follows the coordinating process.
		if j.state != jsRunning || j.conts[0].Node != node || j.slow == eff {
			continue
		}
		rem := j.finish - s.now
		if rem < 0 {
			rem = 0
		}
		rem *= eff / j.slow
		j.slow = eff
		j.gen++
		j.pendingW = 0 // the booked resize (if any) went stale with the gen
		j.finish = s.now + rem
		s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
		j.result.SlowEpisodes++
	}
}

// applyDepart finalizes a finished tenant. Stale events — the job was
// rescheduled by a re-optimization, killed by a node failure, or stretched
// by a slow-node episode since this event was pushed — are skipped via the
// generation check.
func (s *Service) applyDepart(ev event) bool {
	j := s.jobs[ev.job]
	if j.state != jsRunning || ev.gen != j.gen {
		return false
	}
	// ErrUnknownContainer inside releaseAll would mean a container died
	// with a node between events (impossible given the generation check);
	// real bookkeeping bugs surface in the trace.
	s.releaseAll(j)
	j.state = jsDone
	j.result.Served = true
	j.result.Finished = s.now
	j.result.Latency = s.now - j.result.Arrival
	j.result.Config = j.res.String()
	s.running--
	s.markTerminal(j)
	s.tr.Complete(obs.LayerWorkload, "tenant.run", j.result.Admitted, s.now-j.result.Admitted,
		obs.A("tenant", j.result.Tenant), obs.A("program", j.result.Program),
		obs.A("config", j.result.Config), obs.A("reopts", j.result.Reopts))
	s.tr.Metrics().Add("workload.departures", 1)
	s.tr.Metrics().Observe("workload.latency", j.result.Latency)
	return true
}

// applyRetry moves a backoff-expired failure victim back toward the
// admission queue; the caller collects the indices and prepends them in
// scheduling order.
func (s *Service) applyRetry(ev event) (int, bool) {
	j := s.jobs[ev.job]
	if j.state != jsBackoff || ev.gen != j.gen {
		return 0, false
	}
	j.state = jsQueued
	return j.idx, true
}

// applyArrive moves a submitted job into the admission queue. A job
// canceled before its arrival event fired stays terminal.
func (s *Service) applyArrive(ev event) {
	j := s.jobs[ev.job]
	if j.state != jsPending {
		return
	}
	j.state = jsQueued
	s.queue = append(s.queue, ev.job)
	s.tr.Metrics().Add("workload.arrivals", 1)
}

// optOpts returns the optimizer options shared by every optimization the
// service performs. They are part of the cache key, so they must be
// identical for key-equal lookups to be semantically equal.
func (s *Service) optOpts() opt.Options {
	o := opt.DefaultOptions()
	o.Points = s.opts.Points
	o.Workers = s.opts.Workers
	return o
}

// compileJob compiles a job from source on a fresh file system and
// collects the input metadata the cache key covers.
func (s *Service) compileJob(j *job) (c *compiled, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, err = nil, fmt.Errorf("panic: %v", rec)
		}
	}()
	c = &compiled{fs: hdfs.New()}
	if j.spec.Source != "" {
		c.mode = rt.ModeValue
		c.source = j.spec.Source
		c.params = j.spec.Params
		if j.spec.Setup != nil {
			j.spec.Setup(c.fs)
		}
	} else {
		c.mode = rt.ModeSim
		c.source = j.spec.Script.Source
		c.params = j.spec.Script.Params
		datagen.Describe(c.fs, j.spec.Scenario)
	}
	prog, err := dml.Parse(c.source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	c.comp = hop.NewCompiler(c.fs, c.params)
	c.hp, err = c.comp.Compile(prog, c.source)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	for _, name := range c.fs.List() {
		f, statErr := c.fs.Stat(name)
		if statErr != nil {
			continue
		}
		c.inputs = append(c.inputs, opt.InputMeta{
			Path: name, Rows: f.Rows, Cols: f.Cols, NNZ: f.NNZ,
			Format: f.Format.String(),
		})
	}
	return c, nil
}

// memoFor returns the re-costing memo for a compiled job's optimization
// problem (nil when memoization is disabled). The memo key excludes the
// cluster, so successive searches for the same program under shifting
// cluster states — degraded-admission clamps, departures, failures —
// share one cost table.
func (s *Service) memoFor(c *compiled, opts opt.Options) *opt.Memo {
	return s.memos.Get(opt.MemoKey(c.source, c.params, c.inputs, opts))
}

// optimizeUnder runs the cache-aware resource optimization of one compiled
// job under the given cluster view. Cache misses run through the job's
// re-costing memo, so a clamped re-optimization right after the unclamped
// one replays most of its evaluations instead of re-enumerating the grid.
func (s *Service) optimizeUnder(c *compiled, cc conf.Cluster, opts opt.Options) (conf.Resources, float64, bool) {
	key := opt.CacheKey(c.source, c.params, c.inputs, cc, opts)
	if res, cost, ok := s.cache.Lookup(key); ok {
		return res, cost, true
	}
	o := &opt.Optimizer{CC: cc, Opts: opts}
	r := o.OptimizeMemo(c.hp, s.memoFor(c, opts))
	s.cache.Insert(key, r.Res, r.Cost)
	return r.Res, r.Cost, false
}

// shedJob rejects the queue head on behalf of the open circuit breaker.
func (s *Service) shedJob(j *job) {
	j.state = jsShed
	j.result.Shed = true
	j.result.Err = fmt.Errorf("%w: %s arrived during an open breaker", ErrAdmissionShed, j.result.Tenant)
	j.result.Error = j.result.Err.Error()
	s.rep.Shed++
	s.markTerminal(j)
	s.tr.Complete(obs.LayerWorkload, "workload.shed", s.now, 0,
		obs.A("tenant", j.result.Tenant))
	s.tr.Metrics().Add("workload.shed", 1)
}

// tryAdmit drains the FIFO admission queue as far as capacity allows.
// Admission is two-phase: the job is first optimized under the *unclamped*
// live cluster (the stable cache key shared across cluster load states);
// only if that configuration's AM container does not fit the largest free
// chunk is it re-optimized under a clamped cluster (degraded admission).
// The circuit breaker gates every attempt: while open, first-time
// admissions are shed or forced onto the degraded-fallback plan.
//
// The admission width is the policy's target clamped to the spec bounds
// and to what the live cluster could ever hold (so requeued failure
// victims never wait forever for a width the shrunken cluster cannot
// grant). Under fair-share and regret the job steps its width down toward
// MinContainers when the full target does not fit — a voluntary shrink
// trading width for queue priority. Under FIFO and fair-share the head of
// the queue blocks the tail; the regret policy bypasses jobs it cannot
// place and re-queues them in order.
func (s *Service) tryAdmit() {
	type admission struct {
		j *job
		c *compiled
	}
	var adm []admission
	var skipped []int // bypassed entries, re-prepended in order below
	for len(s.queue) > 0 {
		j := s.jobs[s.queue[0]]
		gate := s.brk.gate(s.now)
		if gate == gateShed && j.result.Requeues == 0 {
			// Failure victims retrying under their budget are never shed:
			// they already hold service state worth finishing.
			s.queue = s.queue[1:]
			s.shedJob(j)
			continue
		}
		chunk := s.rm.MaxFreeChunk()
		if chunk < s.cc.MinAlloc {
			break
		}
		c, err := s.compileJob(j)
		if err != nil {
			s.queue = s.queue[1:]
			j.state = jsFailed
			j.result.Err = err
			j.result.Error = err.Error()
			s.markTerminal(j)
			s.tr.Complete(obs.LayerWorkload, "tenant.error", s.now, 0,
				obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
			continue
		}
		opts := s.optOpts()
		res, cost, hit := s.optimizeUnder(c, s.live, opts)
		degraded := false
		breakerDegraded := false
		if gate == gateDegrade {
			// Degraded-fallback plan: clamp the optimization to half the
			// free slice so a recovering cluster is not immediately
			// re-packed to the brim.
			fallback := chunk / 2
			if fallback < s.cc.MinAlloc {
				fallback = s.cc.MinAlloc
			}
			clamped := s.live
			clamped.MaxAlloc = fallback
			res2, cost2, hit2 := s.optimizeUnder(c, clamped, opts)
			if s.cc.ContainerSize(res2.CP) <= chunk {
				res, cost = res2, cost2
				hit = hit && hit2
				degraded = true
				breakerDegraded = true
			}
		}
		if s.cc.ContainerSize(res.CP) > chunk {
			clamped := s.live
			clamped.MaxAlloc = chunk
			res2, cost2, hit2 := s.optimizeUnder(c, clamped, opts)
			if s.cc.ContainerSize(res2.CP) > chunk {
				if s.bypassAllowed() {
					skipped = append(skipped, s.queue[0])
					s.queue = s.queue[1:]
					continue
				}
				break // not even the clamped optimum fits right now
			}
			res, cost = res2, cost2
			hit = hit && hit2
			degraded = true
		}
		cs := s.cc.ContainerSize(res.CP)
		w := s.targetWidth(j, cs)
		tgt := w
		conts, err := s.rm.AllocateGroup(w, cs)
		for err != nil && errors.Is(err, yarn.ErrNoCapacity) &&
			s.stepDownAllowed() && w > j.espec.MinContainers {
			// Voluntary shrink: narrow toward the spec minimum rather than
			// wait for the full target width.
			w -= j.espec.Step
			if w < j.espec.MinContainers {
				w = j.espec.MinContainers
			}
			conts, err = s.rm.AllocateGroup(w, cs)
		}
		if err != nil {
			if errors.Is(err, yarn.ErrOverMaxAllocation) {
				// The chosen plan can never be granted on this cluster —
				// a permanent, typed condition, not a transient shortage.
				s.queue = s.queue[1:]
				j.state = jsFailed
				j.result.Err = err
				j.result.Error = err.Error()
				s.markTerminal(j)
				s.tr.Complete(obs.LayerWorkload, "tenant.error", s.now, 0,
					obs.A("tenant", j.result.Tenant), obs.A("err", err.Error()))
				continue
			}
			if s.bypassAllowed() {
				skipped = append(skipped, s.queue[0])
				s.queue = s.queue[1:]
				continue
			}
			break // ErrNoCapacity: retry at the next event
		}
		s.queue = s.queue[1:]
		j.state = jsRunning
		j.conts = conts
		j.res, j.cost = res, cost
		j.result.Width = w
		if j.result.MinWidth == 0 || w < j.result.MinWidth {
			j.result.MinWidth = w
		}
		if w < tgt {
			j.result.Narrowed = true
			s.rep.VoluntaryShrinks++
			s.tr.Metrics().Add("workload.voluntary_shrinks", 1)
		}
		j.result.Admitted = s.now
		if j.result.Requeues == 0 {
			// Admission latency is the wait for the FIRST admission;
			// failure-driven re-admissions extend Latency, not QueueDelay.
			j.result.QueueDelay = s.now - j.result.Arrival
		}
		j.result.CacheHit = hit
		j.result.Degraded = degraded
		if breakerDegraded {
			j.result.BreakerDegraded = true
			s.rep.BreakerDegraded++
			s.tr.Metrics().Add("workload.breaker_degraded", 1)
		}
		s.brk.admitted(s.now)
		s.running++
		if s.running > s.rep.MaxConcurrent {
			s.rep.MaxConcurrent = s.running
		}
		adm = append(adm, admission{j: j, c: c})
	}
	if len(skipped) > 0 {
		s.queue = append(skipped, s.queue...)
	}
	if len(adm) == 0 {
		return
	}

	// Simulate this round's admissions in parallel; results are applied in
	// admission order below, so the schedule is worker-count independent.
	sims := make([]simResult, len(adm))
	s.fanOut(len(adm), func(i int) {
		sims[i] = s.simulate(adm[i].c, adm[i].j.res)
	})
	for i, a := range adm {
		j := a.j
		sr := sims[i]
		if sr.err != nil {
			s.releaseAll(j)
			j.state = jsFailed
			j.result.Err = sr.err
			j.result.Error = sr.err.Error()
			s.running--
			s.markTerminal(j)
			s.tr.Complete(obs.LayerWorkload, "tenant.error", s.now, 0,
				obs.A("tenant", j.result.Tenant), obs.A("err", sr.err.Error()))
			continue
		}
		charge := s.opts.OptCharge
		if j.result.CacheHit {
			charge = s.opts.HitCharge
		}
		if j.requeued {
			// State restore: from the last checkpoint (cheap) or from
			// scratch (the naive full re-load, paper §4.1).
			if s.opts.Recovery.Kind == RecoveryCheckpoint {
				charge += s.opts.Recovery.CheckpointCharge
			} else {
				charge += s.opts.RequeueCharge
			}
			j.requeued = false
		}
		// Checkpoint bookkeeping: block count and full execution time feed
		// the progress model; a slowed node stretches the remaining work by
		// the speculation-capped factor. Epoch-structured programs checkpoint
		// at batch granularity instead of leaf-block granularity, making
		// every batch boundary an elasticity point.
		if ep, ok := opt.DetectEpochs(a.c.hp); ok {
			j.epochs, j.batches = ep.Epochs, ep.Batches
			j.blocks = ep.Boundaries()
		} else {
			j.epochs, j.batches = 0, 0
			j.blocks = a.c.hp.NumLeaf
		}
		if j.blocks < 1 {
			j.blocks = 1
		}
		j.total = sr.simSeconds
		// A wider job divides its remaining work by the (sub-linear) width
		// speedup; width 1 is exactly the rigid schedule.
		exec := sr.simSeconds * (1 - j.ckpt) / s.opts.Elastic.speedup(len(j.conts))
		if speed := s.rm.NodeSpeed(j.conts[0].Node); speed > 1 {
			eff, _ := mr.EffectiveSlowdown(speed, s.opts.TaskPolicy)
			exec *= eff
			j.slow = eff
		} else {
			j.slow = 1
		}
		j.gen++
		j.execStart = s.now + charge
		j.finish = j.execStart + exec
		s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
		j.result.Outputs = sr.outputs
		j.result.Prints = sr.prints
		j.result.OutputHash = outputHash(sr.paths, sr.outputs, sr.dims, sr.prints)
		j.result.Config = j.res.String()
		s.tr.Complete(obs.LayerWorkload, "tenant.queue", j.result.Arrival, j.result.QueueDelay,
			obs.A("tenant", j.result.Tenant))
		s.tr.Metrics().Add("workload.admissions", 1)
		if j.result.CacheHit {
			s.tr.Metrics().Add("workload.admission_cache_hits", 1)
		}
		if j.result.Degraded {
			s.tr.Metrics().Add("workload.degraded_admissions", 1)
		}
	}
}

// simulate executes one compiled job under its configuration on the
// runtime, returning the simulated duration and (for value-mode jobs) the
// written outputs and print stream. It runs on pool workers: it touches no
// service state besides read-only fields, and emits no trace events.
func (s *Service) simulate(c *compiled, res conf.Resources) (r simResult) {
	defer func() {
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("panic: %v", rec)
		}
	}()
	plan := lop.Select(c.hp, s.live, res)
	ip := rt.New(c.mode, c.fs, s.live, res)
	ip.Compiler = c.comp
	ip.SimTableCols = s.opts.SimTableCols
	var out bytes.Buffer
	ip.Out = &out
	if err := ip.Run(plan); err != nil {
		r.err = err
		return r
	}
	r.simSeconds = ip.SimTime
	r.prints = out.String()
	r.outputs = map[string]*matrix.Matrix{}
	r.dims = map[string][3]int64{}
	for _, name := range c.fs.List() {
		if !strings.HasPrefix(name, "/out") {
			continue
		}
		f, err := c.fs.Stat(name)
		if err != nil {
			continue
		}
		r.paths = append(r.paths, name)
		r.dims[name] = [3]int64{f.Rows, f.Cols, f.NNZ}
		if f.Data != nil {
			r.outputs[name] = f.Data
		}
	}
	sort.Strings(r.paths)
	return r
}

// reoptimize re-evaluates every running job against the current cluster
// state (paper §5: re-optimization on cluster change). The cache pre-pass
// and post-pass run sequentially in job order so cache counters and LRU
// order are identical at any worker count; only cache misses fan out.
func (s *Service) reoptimize(trigger string) {
	var running []*job
	for _, j := range s.jobs {
		if j.state == jsRunning {
			running = append(running, j)
		}
	}
	if len(running) == 0 || s.live.Nodes == 0 {
		return
	}
	opts := s.optOpts()
	type cand struct {
		j    *job
		cc   conf.Cluster
		comp *compiled
		key  string
		memo *opt.Memo
		res  conf.Resources
		cost float64
		hit  bool
		err  error
	}
	cands := make([]*cand, len(running))
	for i, j := range running {
		c := &cand{j: j, cc: s.live}
		if len(j.conts) > 1 {
			// A multi-container job keeps its granted container size: the
			// re-optimization searches under a width-clamped view, so the
			// chosen plan always fits the containers it already holds.
			c.cc = opt.WidthClamped(s.live, j.conts[0].Mem)
		}
		c.comp, c.err = s.compileJob(j)
		if c.err == nil {
			c.key = opt.CacheKey(c.comp.source, c.comp.params, c.comp.inputs, c.cc, opts)
			if res, cost, ok := s.cache.Lookup(c.key); ok {
				c.res, c.cost, c.hit = res, cost, true
			} else {
				// Memos are fetched here, in job order, so the memo store's
				// LRU sequence is independent of the fan-out interleaving.
				c.memo = s.memoFor(c.comp, opts)
			}
		}
		s.rep.ReoptChecks++
		cands[i] = c
	}
	s.fanOut(len(cands), func(i int) {
		c := cands[i]
		if c.err != nil || c.hit {
			return
		}
		o := &opt.Optimizer{CC: c.cc, Opts: opts}
		r := o.OptimizeMemo(c.comp.hp, c.memo)
		c.res, c.cost = r.Res, r.Cost
	})
	for _, c := range cands {
		if c.err == nil && !c.hit {
			s.cache.Insert(c.key, c.res, c.cost)
		}
	}
	for _, c := range cands {
		if c.err != nil {
			continue
		}
		s.applyReopt(c.j, c.res, c.cost, trigger)
	}
	s.tr.Metrics().Add("workload.reopt_passes", 1)
}

// applyReopt installs a changed configuration on a running job: swap the
// AM container if the size changed, charge the re-optimization overhead,
// and rescale the remaining execution time by the cost ratio.
func (s *Service) applyReopt(j *job, res conf.Resources, cost float64, trigger string) {
	if resEqual(res, j.res) {
		return
	}
	need := s.cc.ContainerSize(res.CP)
	if len(j.conts) > 1 {
		// Multi-container jobs were optimized under a width-clamped view,
		// so the new plan fits the containers they already hold; only the
		// configuration and schedule change, never the allocation.
		if need > j.conts[0].Mem {
			return // defensive: never outgrow the granted containers
		}
	} else if need != j.conts[0].Mem {
		// The job's own container is released first, so its memory counts
		// toward the free slice it may grow into.
		freeSame, _ := s.rm.FreeOnNode(j.conts[0].Node)
		if need > j.conts[0].Mem+freeSame && need > s.rm.MaxFreeChunk() {
			return // no room to grow — keep the current configuration
		}
		oldMem := j.conts[0].Mem
		if err := s.rm.Release(j.conts[0].ID); err != nil {
			return
		}
		cont, err := s.rm.Allocate(need)
		if err != nil {
			// Defensive: reclaim the slot just freed and keep the old
			// configuration.
			cont, err = s.rm.Allocate(oldMem)
			if err != nil {
				// Cannot even re-take the old slot (impossible in the
				// sequential loop); route the job through the recovery
				// policy like any other container loss.
				j.conts = nil
				s.failRunning(j, "reopt")
				if j.state == jsBackoff {
					// Skip the backoff — the container was lost to
					// bookkeeping, not a node: rejoin the queue now.
					j.state = jsQueued
					s.queue = append([]int{j.idx}, s.queue...)
				}
				return
			}
			j.conts[0] = cont
			return
		}
		j.conts[0] = cont
	}
	oldRes := j.res
	rem := j.finish - s.now
	if rem < 0 {
		rem = 0
	}
	if j.cost > 0 && cost > 0 {
		rem *= cost / j.cost
	}
	j.res = res
	j.cost = cost
	j.gen++
	j.pendingW = 0 // the booked resize (if any) went stale with the gen
	j.finish = s.now + s.opts.ReoptCharge + rem
	s.push(event{at: j.finish, kind: evDepart, job: j.idx, gen: j.gen})
	j.result.Reopts++
	s.rep.ReoptChanges++
	s.brk.recordChurn(s.now)
	switch trigger {
	case "failure":
		s.rep.FailureReopts++
	case "restore":
		s.rep.RestoreReopts++
	default:
		s.rep.DepartureReopts++
	}
	s.tr.Complete(obs.LayerWorkload, "workload.reopt", s.now, s.opts.ReoptCharge,
		obs.A("tenant", j.result.Tenant), obs.A("trigger", trigger),
		obs.A("from", oldRes.String()), obs.A("to", res.String()))
	s.tr.Metrics().Add("workload.reopt_changes", 1)
}

// resEqual compares two resource configurations field-wise.
func resEqual(a, b conf.Resources) bool {
	if a.CP != b.CP || a.CPCores != b.CPCores || len(a.MR) != len(b.MR) {
		return false
	}
	for i := range a.MR {
		if a.MR[i] != b.MR[i] {
			return false
		}
	}
	return true
}

// fanOut runs fn(0..n-1) on up to Options.Workers goroutines and joins.
// Callers must apply results in index order afterwards; fn must not touch
// shared mutable state. Workers <= 1 runs inline.
func (s *Service) fanOut(n int, fn func(int)) {
	w := s.opts.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
