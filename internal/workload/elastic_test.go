package workload

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/verify"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden policy reports")

// TestElasticSpecNormalize: the zero spec is a rigid single-container job
// (the pre-elasticity behavior), and normalization repairs ordering.
func TestElasticSpecNormalize(t *testing.T) {
	z := ElasticSpec{}.normalized()
	if z.MinContainers != 1 || z.DesiredContainers != 1 || z.MaxContainers != 1 || z.Step != 1 {
		t.Errorf("zero spec normalized to %+v, want 1/1/1/1", z)
	}
	if !z.rigid() {
		t.Error("zero spec must be rigid")
	}
	n := ElasticSpec{DesiredContainers: 3}.normalized()
	if n.MinContainers != 1 || n.MaxContainers != 3 {
		t.Errorf("desired-only spec normalized to %+v", n)
	}
	if err := (ElasticSpec{MinContainers: 4, MaxContainers: 2}).validate(); err == nil {
		t.Error("min > max must not validate")
	}
	if err := (ElasticSpec{MinContainers: -1}).validate(); err == nil {
		t.Error("negative field must not validate")
	}
}

// TestGrowShrinkEquivalence: a job grown and then shrunk mid-run — with the
// §5 re-optimization and re-simulation at each width change — produces
// byte-identical outputs and print streams to the fixed-width run, under
// cluster shapes derived from all six verify resource configurations.
// Width, like interruption placement in TestChaosCheckpointEquivalence, is
// a scheduling detail, never a semantic one.
func TestGrowShrinkEquivalence(t *testing.T) {
	prog := verify.Corpus()[0]
	rigid := []JobSpec{{
		Tenant: "equiv", Source: prog.Source, Params: prog.Params,
		Setup: prog.Setup, Arrival: 0,
	}}
	for _, vc := range verify.DefaultConfigs() {
		vc := vc
		t.Run(vc.Name, func(t *testing.T) {
			cc := demoCluster()
			if vc.Cores > 0 {
				cc.CoresPerNode = vc.Cores
			}
			if vc.HDFSBlock > 0 {
				cc.HDFSBlockSize = vc.HDFSBlock
			}
			if !vc.Optimize {
				ma := conf.Bytes(float64(vc.CP) * cc.ContainerOverhead)
				if ma < cc.MinAlloc {
					ma = cc.MinAlloc
				}
				if ma > cc.MemPerNode {
					ma = cc.MemPerNode
				}
				cc.MaxAlloc = ma
			}
			smooth, err := Run(cc, rigid, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			st := smooth.Tenants[0]
			if !st.Served {
				t.Fatalf("fixed-width run unserved: %+v", st)
			}

			// Drive the malleable run by hand so grow and shrink both fire
			// deterministically regardless of the program's length: widen by
			// one step as soon as the job starts, let part of the schedule
			// commit, then give the step back at the next block boundary.
			s, err := New(cc, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			s.submit(JobSpec{
				Tenant: "equiv", Source: prog.Source, Params: prog.Params,
				Setup: prog.Setup, Arrival: 0,
				Elastic: ElasticSpec{MinContainers: 1, DesiredContainers: 1, MaxContainers: 2},
			})
			s.ScheduleChaos()
			j := s.jobs[0]
			for j.state != jsRunning && s.Step() {
			}
			if j.state != jsRunning {
				t.Fatal("job never started")
			}
			if !s.scheduleResize(j, 2) {
				t.Fatal("could not schedule the grow")
			}
			for j.result.Grows == 0 && s.Step() {
			}
			if j.result.Grows != 1 || len(j.conts) != 2 {
				t.Fatalf("grow did not apply: grows %d width %d", j.result.Grows, len(j.conts))
			}
			if j.blocks >= 2 {
				// Stop the event loop mid-run with a one-shot tick, then book
				// the shrink at the next interior block boundary — committed
				// width-2 work survives, partial-block work is re-done.
				mid := j.execStart + 0.5*(j.finish-j.execStart)
				s.push(event{at: mid, kind: evTick})
				for s.now < mid && j.state == jsRunning && s.Step() {
				}
			}
			// Single-block programs have no interior boundary; the charge
			// window right after the grow is the only legal shrink point.
			if j.state != jsRunning || !s.scheduleResize(j, 1) {
				t.Fatalf("could not schedule the shrink at %.2f (state %v, finish %.2f, blocks %d)",
					s.now, j.state, j.finish, j.blocks)
			}
			for s.Step() {
			}
			rep := s.Finalize()
			bt := rep.Tenants[0]
			if !bt.Served {
				t.Fatalf("resized run unserved: %+v", bt)
			}
			if bt.Grows < 1 || bt.Shrinks < 1 {
				t.Fatalf("want at least one grow and one shrink, got %d/%d", bt.Grows, bt.Shrinks)
			}
			if bt.OutputHash != st.OutputHash {
				t.Errorf("output hash diverged: resized %s vs fixed %s", bt.OutputHash, st.OutputHash)
			}
			if bt.Prints != st.Prints {
				t.Errorf("print stream diverged:\nresized: %q\nfixed: %q", bt.Prints, st.Prints)
			}
			if len(bt.Outputs) != len(st.Outputs) {
				t.Errorf("output count diverged: %d vs %d", len(bt.Outputs), len(st.Outputs))
			}
		})
	}
}

// elasticScenario is the policy test corpus: the skewed-burst malleable
// trace on a deliberately tight cluster, with a mid-run node flap so the
// elasticity machinery and the failure machinery interleave.
func elasticScenario(pol Policy, workers int) (conf.Cluster, []JobSpec, Options) {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 1 * conf.GB
	cc.MaxAlloc = 1 * conf.GB
	o := DefaultOptions()
	o.Policy = pol
	o.Elastic.Tick = 5
	o.Workers = workers
	o.Chaos = fault.ChaosPlan{Flaps: []fault.Flap{{Node: 1, At: 30, RestoreAfter: 2}}}
	return cc, GenerateSkewedBurst(42, 12), o
}

// runPolicy executes the policy corpus and returns the marshalled report.
func runPolicy(t *testing.T, pol Policy, workers int) []byte {
	t.Helper()
	cc, jobs, o := elasticScenario(pol, workers)
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPolicyDeterminism: every policy's full report is byte-identical at
// Workers=1 and Workers=4 on the elastic corpus — grow/shrink planning,
// bypass admission, and width-clamped re-optimization all stay on the
// deterministic event loop. This is the policy-determinism CI gate.
func TestPolicyDeterminism(t *testing.T) {
	for _, pol := range []Policy{PolicyFIFO, PolicyFair, PolicyRegret} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			r1 := runPolicy(t, pol, 1)
			r4 := runPolicy(t, pol, 4)
			if !bytes.Equal(r1, r4) {
				t.Errorf("report differs between Workers=1 and Workers=4:\n%s", diffLine(r1, r4))
			}
		})
	}
}

// policySummary is the golden-pinned digest of one policy run.
type policySummary struct {
	Policy           string  `json:"policy"`
	Served           int     `json:"served"`
	Shed             int     `json:"shed"`
	FailedPerm       int     `json:"failed_permanently"`
	Requeues         int     `json:"requeues"`
	P95QueueDelay    float64 `json:"p95_queue_delay"`
	P95Latency       float64 `json:"p95_latency"`
	Makespan         float64 `json:"makespan"`
	Grows            int     `json:"grows"`
	Shrinks          int     `json:"shrinks"`
	VoluntaryShrinks int     `json:"voluntary_shrinks"`
}

// TestPolicyGoldenReports pins each policy's scheduling outcome on the
// elastic corpus — served counts, queue delays, grow/shrink activity — as a
// golden file. Any change to admission order, width targets, or resize
// timing shows up as a diff; refresh intentionally with
//
//	go test ./internal/workload -run TestPolicyGoldenReports -update
func TestPolicyGoldenReports(t *testing.T) {
	var sums []policySummary
	for _, pol := range []Policy{PolicyFIFO, PolicyFair, PolicyRegret} {
		cc, jobs, o := elasticScenario(pol, 1)
		rep, err := Run(cc, jobs, o)
		if err != nil {
			t.Fatal(err)
		}
		sum := policySummary{
			Policy:           pol.String(),
			Shed:             rep.Shed,
			FailedPerm:       rep.FailedPermanently,
			P95QueueDelay:    rep.P95QueueDelay,
			P95Latency:       rep.P95Latency,
			Makespan:         rep.Makespan,
			Grows:            rep.Grows,
			Shrinks:          rep.Shrinks,
			VoluntaryShrinks: rep.VoluntaryShrinks,
		}
		for _, tn := range rep.Tenants {
			if tn.Served {
				sum.Served++
			}
			sum.Requeues += tn.Requeues
		}
		sums = append(sums, sum)
	}
	got, err := json.MarshalIndent(sums, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_policies.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("policy reports differ from %s (re-run with -update if intended):\n%s",
			path, diffLine(want, got))
	}
}

// TestRequeueClampsWidthToShrunkenCluster is the regression test for the
// requeue-width bug: a failure victim re-enters admission at the front of
// the queue, and before the fix it kept asking for its original desired
// width even when the cluster had permanently shrunk below it — under FIFO
// (no voluntary step-down) the head blocked forever. The clamp caps the
// request at what the live cluster could ever hold.
func TestRequeueClampsWidthToShrunkenCluster(t *testing.T) {
	cc := conf.DefaultCluster()
	cc.Nodes = 4
	cc.MemPerNode = 512 * conf.MB
	cc.MaxAlloc = 512 * conf.MB
	jobs := []JobSpec{{
		Tenant: "wide", Script: linregDSJob()[0].Script,
		Scenario: linregDSJob()[0].Scenario, Arrival: 0,
		Elastic: ElasticSpec{MinContainers: 1, DesiredContainers: 4, MaxContainers: 4},
	}}
	o := DefaultOptions()
	o.Recovery = fastRetry(RecoveryCheckpoint, 5)
	// Two nodes die for good mid-run: one of them necessarily holds a
	// container of the width-4 job (one per node), so the job requeues
	// against a cluster that can now hold only two containers.
	o.NodeFailures = []fault.NodeFailure{{Node: 2, At: 8}, {Node: 3, At: 8}}
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	tn := rep.Tenants[0]
	if tn.Requeues < 1 {
		t.Fatalf("failures missed the job: %+v", tn)
	}
	if !tn.Served {
		t.Fatalf("requeued job never served — width not clamped to the shrunken cluster: %+v", tn)
	}
	if tn.Width > 2 {
		t.Errorf("re-admitted at width %d on a 2-node cluster that holds 2 containers", tn.Width)
	}
	if tn.MinWidth > 2 {
		t.Errorf("min width %d, want <= 2 after the clamped re-admission", tn.MinWidth)
	}
}
