package workload

import (
	"bytes"
	"errors"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/mr"
	"elasticml/internal/obs"
	"elasticml/internal/scripts"
	"elasticml/internal/verify"
)

// oneNodeCluster is the smallest useful chaos target: every failure of
// node 0 necessarily hits whatever is running.
func oneNodeCluster() conf.Cluster {
	cc := demoCluster()
	cc.Nodes = 1
	return cc
}

// linregDSJob is a single ~55s scenario job — long enough that flaps
// spaced tens of seconds apart interrupt it repeatedly.
func linregDSJob() []JobSpec {
	return []JobSpec{{
		Tenant: "victim", Script: scripts.LinregDS(),
		Scenario: datagen.New("S", 1000, 1.0), Arrival: 0,
	}}
}

// fastRetry is a recovery policy with trivial backoff so chaos tests
// control timing through flap placement alone.
func fastRetry(kind RecoveryKind, budget int) RecoveryPolicy {
	return RecoveryPolicy{
		Kind: kind, MaxRetries: budget,
		Backoff: 1, BackoffMultiplier: 1, MaxBackoff: 1,
		CheckpointCharge: 1,
	}
}

// TestChaosRetryBudgetExhausted: flaps arriving faster than the job can
// restart burn the retry budget; the tenant fails permanently with the
// typed terminal error (errors.Is against the sentinel, errors.As for the
// per-tenant detail).
func TestChaosRetryBudgetExhausted(t *testing.T) {
	o := DefaultOptions()
	o.Recovery = fastRetry(RecoveryNaive, 2)
	o.Chaos = fault.ChaosPlan{Flaps: []fault.Flap{
		{Node: 0, At: 1, RestoreAfter: 0.5},
		{Node: 0, At: 4, RestoreAfter: 0.5},
		{Node: 0, At: 7, RestoreAfter: 0.5},
	}}
	rep, err := Run(oneNodeCluster(), linregDSJob(), o)
	if err != nil {
		t.Fatal(err)
	}
	tn := rep.Tenants[0]
	if !tn.FailedPermanently || tn.Served {
		t.Fatalf("want permanent failure, got %+v", tn)
	}
	if !errors.Is(tn.Err, ErrRetryBudgetExhausted) {
		t.Errorf("errors.Is(ErrRetryBudgetExhausted) false for %v", tn.Err)
	}
	var rex *RetryExhaustedError
	if !errors.As(tn.Err, &rex) {
		t.Fatalf("errors.As(*RetryExhaustedError) false for %v", tn.Err)
	}
	if rex.Tenant != "victim" || rex.Retries != 3 || rex.Budget != 2 {
		t.Errorf("typed detail = %+v, want victim/3/2", rex)
	}
	if tn.Error == "" {
		t.Error("terminal error message missing from the report")
	}
	if rep.FailedPermanently != 1 {
		t.Errorf("report FailedPermanently = %d, want 1", rep.FailedPermanently)
	}
	if rep.Unserved != 0 {
		t.Errorf("permanent failure double-counted as unserved: %d", rep.Unserved)
	}
}

// TestChaosCheckpointBeatsNaive is the tentpole comparison: under an
// identical flap schedule, checkpoint/restart resumes from block
// boundaries and finishes, while naive restart-from-scratch never
// completes a window and exhausts its budget — with strictly more wasted
// simulated work.
func TestChaosCheckpointBeatsNaive(t *testing.T) {
	chaos := fault.ChaosPlan{Flaps: []fault.Flap{
		{Node: 0, At: 20, RestoreAfter: 0.5},
		{Node: 0, At: 50, RestoreAfter: 0.5},
		{Node: 0, At: 80, RestoreAfter: 0.5},
		{Node: 0, At: 110, RestoreAfter: 0.5},
		{Node: 0, At: 140, RestoreAfter: 0.5},
		{Node: 0, At: 170, RestoreAfter: 0.5},
		{Node: 0, At: 200, RestoreAfter: 0.5},
		{Node: 0, At: 230, RestoreAfter: 0.5},
	}}
	run := func(kind RecoveryKind) *Report {
		o := DefaultOptions()
		o.Recovery = fastRetry(kind, 5)
		o.Chaos = chaos
		rep, err := Run(oneNodeCluster(), linregDSJob(), o)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ck := run(RecoveryCheckpoint)
	nv := run(RecoveryNaive)

	if !ck.Tenants[0].Served {
		t.Fatalf("checkpoint/restart did not finish the job: %+v", ck.Tenants[0])
	}
	if ck.Tenants[0].Requeues < 1 {
		t.Error("checkpoint run saw no interruption — chaos schedule missed the job")
	}
	if !nv.Tenants[0].FailedPermanently {
		t.Fatalf("naive restart should exhaust its budget: %+v", nv.Tenants[0])
	}
	served := func(r *Report) int {
		n := 0
		for _, tn := range r.Tenants {
			if tn.Served {
				n++
			}
		}
		return n
	}
	if served(ck) <= served(nv) {
		t.Errorf("checkpoint served %d, naive served %d — want strictly more", served(ck), served(nv))
	}
	if ck.WastedWork >= nv.WastedWork {
		t.Errorf("checkpoint wasted %.1fs, naive wasted %.1fs — want strictly less",
			ck.WastedWork, nv.WastedWork)
	}
	if ck.WastedWork <= 0 || nv.WastedWork <= 0 {
		t.Errorf("both runs should record wasted work: ck %.1f nv %.1f", ck.WastedWork, nv.WastedWork)
	}
}

// breakerCluster spreads four nodes so a correlated group loss can trip
// the breaker without touching the running tenant.
func breakerCluster() conf.Cluster {
	cc := demoCluster()
	cc.Nodes = 4
	return cc
}

func breakerJobs() []JobSpec {
	sc := datagen.New("XS", 1000, 1.0)
	return []JobSpec{
		{Tenant: "early", Script: scripts.LinregCG(), Scenario: sc, Arrival: 0},
		{Tenant: "storm-hit", Script: scripts.LinregCG(), Scenario: sc, Arrival: 12},
		{Tenant: "late", Script: scripts.LinregCG(), Scenario: sc, Arrival: 40},
		{Tenant: "later", Script: scripts.LinregCG(), Scenario: sc, Arrival: 45},
	}
}

func breakerOptions(shed bool) Options {
	o := DefaultOptions()
	// Group loss of nodes {2,3} at t=10 records two failures inside the
	// window — the breaker opens at 10 and half-opens at 30.
	o.Chaos = fault.ChaosPlan{Groups: []fault.GroupFailure{
		{Nodes: []int{2, 3}, At: 10, RestoreAfter: 5},
	}}
	o.Breaker = BreakerPolicy{
		Enabled: true, Window: 30, FailureThreshold: 2,
		ChurnThreshold: 100, Cooldown: 20, HalfOpenProbes: 1, Shed: shed,
	}
	return o
}

// TestChaosBreakerSheds: an open breaker in shed mode rejects the tenant
// arriving mid-outage with the typed error, then half-opens on schedule
// and serves the post-cooldown arrivals.
func TestChaosBreakerSheds(t *testing.T) {
	rep, err := Run(breakerCluster(), breakerJobs(), breakerOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	byTenant := map[string]TenantResult{}
	for _, tn := range rep.Tenants {
		byTenant[tn.Tenant] = tn
	}
	if !byTenant["early"].Served {
		t.Error("pre-outage tenant should be served")
	}
	hit := byTenant["storm-hit"]
	if !hit.Shed || hit.Served {
		t.Fatalf("mid-outage tenant should be shed, got %+v", hit)
	}
	if !errors.Is(hit.Err, ErrAdmissionShed) {
		t.Errorf("errors.Is(ErrAdmissionShed) false for %v", hit.Err)
	}
	if !byTenant["late"].Served || !byTenant["later"].Served {
		t.Error("post-cooldown tenants should be served through the half-open breaker")
	}
	if rep.Shed != 1 {
		t.Errorf("report Shed = %d, want 1", rep.Shed)
	}
	if rep.BreakerTrips < 1 {
		t.Error("breaker never tripped")
	}
	if rep.Unserved != 0 {
		t.Errorf("shed tenant double-counted as unserved: %d", rep.Unserved)
	}
}

// TestChaosBreakerDegrades: the default open-breaker behaviour downgrades
// mid-outage arrivals to the degraded-fallback plan instead of rejecting
// them — everyone is still served.
func TestChaosBreakerDegrades(t *testing.T) {
	rep, err := Run(breakerCluster(), breakerJobs(), breakerOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	var hit TenantResult
	for _, tn := range rep.Tenants {
		if tn.Tenant == "storm-hit" {
			hit = tn
		}
		if !tn.Served {
			t.Errorf("%s not served under degrade mode", tn.Tenant)
		}
	}
	if !hit.BreakerDegraded {
		t.Errorf("mid-outage tenant should carry the breaker-degraded flag: %+v", hit)
	}
	if rep.BreakerDegraded < 1 || rep.Shed != 0 {
		t.Errorf("report breaker counters wrong: degraded %d shed %d", rep.BreakerDegraded, rep.Shed)
	}
}

// TestChaosSlowNodeSpeculation: a straggler node stretches resident jobs
// by the speculation-capped factor — with backups on, a 4x straggler
// costs at most the 1.5x cap; with speculation off, the full factor.
func TestChaosSlowNodeSpeculation(t *testing.T) {
	run := func(chaos fault.ChaosPlan, pol mr.TaskPolicy) TenantResult {
		o := DefaultOptions()
		o.Chaos = chaos
		o.TaskPolicy = pol
		rep, err := Run(oneNodeCluster(), linregDSJob(), o)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Tenants[0]
	}
	slow := fault.ChaosPlan{SlowNodes: []fault.SlowNode{{Node: 0, At: 20, Factor: 4}}}
	specOff := mr.TaskPolicy{MaxAttempts: 4, Speculative: false, SpeculativeCap: 1.5}

	base := run(fault.ChaosPlan{}, mr.DefaultTaskPolicy())
	capped := run(slow, mr.DefaultTaskPolicy())
	uncapped := run(slow, specOff)

	if !base.Served || !capped.Served || !uncapped.Served {
		t.Fatal("slow nodes must stretch jobs, not kill them")
	}
	if capped.SlowEpisodes != 1 || uncapped.SlowEpisodes != 1 {
		t.Errorf("slow episodes = %d/%d, want 1/1", capped.SlowEpisodes, uncapped.SlowEpisodes)
	}
	if !(base.Latency < capped.Latency && capped.Latency < uncapped.Latency) {
		t.Errorf("latency order wrong: base %.1f, speculated %.1f, unspeculated %.1f",
			base.Latency, capped.Latency, uncapped.Latency)
	}
	// The stretch ratios over the post-episode remainder bound each other:
	// speculation caps 4x at 1.5x.
	if uncapped.Latency-base.Latency < 2*(capped.Latency-base.Latency) {
		t.Errorf("speculation cap too weak: added %.1fs capped vs %.1fs uncapped",
			capped.Latency-base.Latency, uncapped.Latency-base.Latency)
	}
}

// TestChaosFlapCacheReuse: a transient flap returns the cluster to its
// original shape, so the victim's re-admission hits the shared plan cache
// and lands on the identical configuration — the cache stays correct under
// oscillating capacity because cluster geometry is part of the key.
func TestChaosFlapCacheReuse(t *testing.T) {
	base, err := Run(oneNodeCluster(), linregDSJob(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Chaos = fault.ChaosPlan{Flaps: []fault.Flap{{Node: 0, At: 20, RestoreAfter: 0.5}}}
	rep, err := Run(oneNodeCluster(), linregDSJob(), o)
	if err != nil {
		t.Fatal(err)
	}
	tn := rep.Tenants[0]
	if tn.Requeues != 1 || !tn.Served {
		t.Fatalf("want one interrupted-but-served tenant, got %+v", tn)
	}
	if !tn.CacheHit {
		t.Error("re-admission after a restoring flap should hit the plan cache")
	}
	if tn.Config != base.Tenants[0].Config {
		t.Errorf("post-flap config %s differs from uninterrupted %s", tn.Config, base.Tenants[0].Config)
	}
	if tn.OutputHash != base.Tenants[0].OutputHash {
		t.Error("post-flap output hash differs from uninterrupted run")
	}
	if rep.NodeRestores != 1 {
		t.Errorf("node restores = %d, want 1", rep.NodeRestores)
	}
}

// TestChaosCheckpointEquivalence: a job killed mid-run and resumed from
// its checkpoint produces byte-identical outputs and print streams to the
// uninterrupted run, under cluster shapes derived from all six verify
// resource configurations — interruption placement is a scheduling detail,
// never a semantic one.
func TestChaosCheckpointEquivalence(t *testing.T) {
	prog := verify.Corpus()[0]
	jobs := []JobSpec{{
		Tenant: "equiv", Source: prog.Source, Params: prog.Params,
		Setup: prog.Setup, Arrival: 0,
	}}
	for _, vc := range verify.DefaultConfigs() {
		vc := vc
		t.Run(vc.Name, func(t *testing.T) {
			cc := demoCluster()
			if vc.Cores > 0 {
				cc.CoresPerNode = vc.Cores
			}
			if vc.HDFSBlock > 0 {
				cc.HDFSBlockSize = vc.HDFSBlock
			}
			if !vc.Optimize {
				ma := conf.Bytes(float64(vc.CP) * cc.ContainerOverhead)
				if ma < cc.MinAlloc {
					ma = cc.MinAlloc
				}
				if ma > cc.MemPerNode {
					ma = cc.MemPerNode
				}
				cc.MaxAlloc = ma
			}
			o := DefaultOptions()
			smooth, err := Run(cc, jobs, o)
			if err != nil {
				t.Fatal(err)
			}
			st := smooth.Tenants[0]
			if !st.Served {
				t.Fatalf("uninterrupted run unserved: %+v", st)
			}
			// Kill both nodes mid-run — wherever the container landed —
			// and restore them before the retry backoff expires.
			o.Chaos = fault.ChaosPlan{Groups: []fault.GroupFailure{
				{Nodes: []int{0, 1}, At: st.Finished / 2, RestoreAfter: 0.5},
			}}
			bumpy, err := Run(cc, jobs, o)
			if err != nil {
				t.Fatal(err)
			}
			bt := bumpy.Tenants[0]
			if bt.Requeues < 1 {
				t.Fatalf("the kill missed the job (requeues 0, finished %.2f)", st.Finished)
			}
			if !bt.Served {
				t.Fatalf("killed+resumed run unserved: %+v", bt)
			}
			if bt.OutputHash != st.OutputHash {
				t.Errorf("output hash diverged: interrupted %s vs uninterrupted %s", bt.OutputHash, st.OutputHash)
			}
			if bt.Prints != st.Prints {
				t.Errorf("print stream diverged:\ninterrupted: %q\nuninterrupted: %q", bt.Prints, st.Prints)
			}
			if len(bt.Outputs) != len(st.Outputs) {
				t.Errorf("output count diverged: %d vs %d", len(bt.Outputs), len(st.Outputs))
			}
		})
	}
}

// chaosDemo is the kitchen-sink chaos workload pinned by the determinism
// tests and the CI chaos gate: every regime at once (group loss, flaps,
// a straggler node, a recovering storm), breaker on, over sixteen tenants.
func chaosDemo(workers int) (conf.Cluster, []JobSpec, Options) {
	cc := demoCluster()
	cc.Nodes = 4
	o := DefaultOptions()
	o.Workers = workers
	o.TaskPolicy = mr.DefaultTaskPolicy()
	o.Breaker = BreakerPolicy{Enabled: true, Window: 30, FailureThreshold: 3,
		ChurnThreshold: 10, Cooldown: 20, HalfOpenProbes: 2}
	o.Chaos = fault.ChaosPlan{
		Seed:   42,
		Groups: []fault.GroupFailure{{Nodes: []int{2, 3}, At: 40, RestoreAfter: 15}},
		Flaps:  []fault.Flap{{Node: 1, At: 70, RestoreAfter: 5}},
		SlowNodes: []fault.SlowNode{
			{Node: 0, At: 25, Factor: 3, Duration: 30},
		},
		Storm: &fault.Storm{Start: 100, MeanGap: 8, Failures: 4, Recover: 10},
	}
	return cc, Generate(42, 16, 3), o
}

// runChaosDemo returns the marshalled report and Chrome trace of the
// kitchen-sink chaos workload.
func runChaosDemo(t *testing.T, workers int) (reportJSON, trace []byte) {
	t.Helper()
	tr := obs.New(true)
	cc, jobs, o := chaosDemo(workers)
	o.Trace = tr
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	var rj bytes.Buffer
	if err := rep.WriteJSON(&rj); err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tr.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return rj.Bytes(), tb.Bytes()
}

// TestChaosDeterminismByteIdentical: the full chaos stack — correlated
// groups, flaps, stragglers, storms, breaker, recovery backoff — is a pure
// function of its inputs: repeated runs are byte-identical.
func TestChaosDeterminismByteIdentical(t *testing.T) {
	r1, t1 := runChaosDemo(t, 1)
	r2, t2 := runChaosDemo(t, 1)
	if !bytes.Equal(r1, r2) {
		t.Errorf("chaos report differs between identical runs:\n%s", diffLine(r1, r2))
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("chaos trace differs between identical runs:\n%s", diffLine(t1, t2))
	}
}

// TestChaosWorkerInvariance: chaos handling lives entirely in the event
// loop, so the worker pool cannot perturb it — Workers=4 reproduces the
// Workers=1 bytes.
func TestChaosWorkerInvariance(t *testing.T) {
	r1, t1 := runChaosDemo(t, 1)
	r4, t4 := runChaosDemo(t, 4)
	if !bytes.Equal(r1, r4) {
		t.Errorf("chaos report differs between Workers=1 and Workers=4:\n%s", diffLine(r1, r4))
	}
	if !bytes.Equal(t1, t4) {
		t.Errorf("chaos trace differs between Workers=1 and Workers=4:\n%s", diffLine(t1, t4))
	}
}

// TestChaosKitchenSinkActivity pins that the determinism workload actually
// exercises every chaos path (otherwise the byte-identity above is vacuous).
func TestChaosKitchenSinkActivity(t *testing.T) {
	cc, jobs, o := chaosDemo(1)
	rep, err := Run(cc, jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeFailures < 3 {
		t.Errorf("node failures = %d, want >= 3 (group + flap + storm)", rep.NodeFailures)
	}
	if rep.NodeRestores < 3 {
		t.Errorf("node restores = %d, want >= 3", rep.NodeRestores)
	}
	if rep.SlowNodeEvents < 2 {
		t.Errorf("slow-node events = %d, want 2 (episode start + end)", rep.SlowNodeEvents)
	}
	if rep.Requeues < 1 {
		t.Error("chaos demo produced no requeues")
	}
	if rep.WastedWork <= 0 {
		t.Error("chaos demo recorded no wasted work")
	}
}
