package workload

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"elasticml/internal/matrix"
	"elasticml/internal/opt"
)

// TenantResult is one tenant's service outcome. All times are simulated
// seconds; the struct contains no wall-clock quantities, so marshalled
// reports of identical workloads are byte-identical.
type TenantResult struct {
	Tenant   string `json:"tenant"`
	Program  string `json:"program"`
	Scenario string `json:"scenario,omitempty"`

	Arrival  float64 `json:"arrival"`
	Admitted float64 `json:"admitted"`
	Finished float64 `json:"finished"`
	// QueueDelay is the wait from arrival to the FIRST admission (the
	// admission latency the circuit breaker bounds); Admitted tracks the
	// latest admission when failures forced re-admissions.
	// Latency = Finished - Arrival.
	QueueDelay float64 `json:"queue_delay"`
	Latency    float64 `json:"latency"`

	// Config is the final resource configuration (CP/maxMR).
	Config string `json:"config"`
	// Degraded records an admission under a free-slice-clamped cluster.
	Degraded bool `json:"degraded,omitempty"`
	// CacheHit records whether admission skipped the grid search.
	CacheHit bool `json:"cache_hit"`
	// Reopts counts mid-run configuration changes applied to this job.
	Reopts int `json:"reopts,omitempty"`
	// Requeues counts re-admissions after the job's AM container died.
	Requeues int `json:"requeues,omitempty"`
	// SlowEpisodes counts slow-node episodes that stretched this job.
	SlowEpisodes int `json:"slow_episodes,omitempty"`
	// WastedWork is the simulated work (seconds) discarded by container
	// losses — progress past the last checkpoint that must be re-done.
	WastedWork float64 `json:"wasted_work,omitempty"`
	// BreakerDegraded records an admission forced onto the degraded
	// fallback by an open circuit breaker.
	BreakerDegraded bool `json:"breaker_degraded,omitempty"`
	// FailedPermanently marks a tenant whose retry budget ran out.
	FailedPermanently bool `json:"failed_permanently,omitempty"`
	// Shed marks a tenant rejected by the open circuit breaker.
	Shed bool `json:"shed,omitempty"`
	// Canceled marks a tenant terminated on client request.
	Canceled bool `json:"canceled,omitempty"`
	// Served is false for tenants the shrunken cluster could never admit.
	Served bool `json:"served"`

	// Width is the number of containers the job last held (1 for rigid
	// jobs); MinWidth is the narrowest width it ever ran at — never below
	// the spec's MinContainers.
	Width    int `json:"width,omitempty"`
	MinWidth int `json:"min_width,omitempty"`
	// Grows / Shrinks count applied mid-run width changes.
	Grows   int `json:"grows,omitempty"`
	Shrinks int `json:"shrinks,omitempty"`
	// Narrowed marks an admission below the policy's target width: the job
	// voluntarily traded width for queue priority.
	Narrowed bool `json:"narrowed,omitempty"`

	// Error is the deterministic message of the terminal error, if any.
	Error string `json:"error,omitempty"`
	// Err is the typed terminal error for errors.Is/errors.As; it is not
	// part of the JSON report (Error carries the message).
	Err error `json:"-"`

	// OutputHash fingerprints the written outputs and print stream.
	OutputHash string `json:"output_hash,omitempty"`

	// Outputs and Prints hold the actual results of value-mode jobs for
	// differential comparison; they are not part of the JSON report.
	Outputs map[string]*matrix.Matrix `json:"-"`
	Prints  string                    `json:"-"`
}

// Report aggregates one workload run.
type Report struct {
	Tenants []TenantResult `json:"tenants"`

	// Makespan is the time the last tenant left the system.
	Makespan float64 `json:"makespan"`
	// P50Latency / P95Latency summarize served-tenant latencies.
	P50Latency float64 `json:"p50_latency"`
	P95Latency float64 `json:"p95_latency"`
	// MeanQueueDelay averages served-tenant queueing delays.
	MeanQueueDelay float64 `json:"mean_queue_delay"`
	// Utilization is the time-weighted fraction of live cluster memory
	// held by AM containers over the makespan.
	Utilization float64 `json:"utilization"`
	// MaxConcurrent is the peak number of simultaneously running tenants.
	MaxConcurrent int `json:"max_concurrent"`

	// Cache reports shared plan cache effectiveness.
	Cache opt.CacheStats `json:"cache"`
	// ReoptChecks counts re-optimization evaluations of running jobs on
	// departures and node failures; ReoptChanges counts the subset that
	// changed a configuration mid-run.
	ReoptChecks     int `json:"reopt_checks"`
	ReoptChanges    int `json:"reopt_changes"`
	DepartureReopts int `json:"departure_reopts"`
	FailureReopts   int `json:"failure_reopts"`
	RestoreReopts   int `json:"restore_reopts,omitempty"`
	// NodeFailures / Requeues / Unserved count failure handling activity.
	NodeFailures int `json:"node_failures"`
	Requeues     int `json:"requeues"`
	Unserved     int `json:"unserved"`
	// NodeRestores counts nodes that returned after transient losses;
	// SlowNodeEvents counts slow-node episode starts and ends.
	NodeRestores   int `json:"node_restores,omitempty"`
	SlowNodeEvents int `json:"slow_node_events,omitempty"`
	// FailedPermanently counts tenants whose retry budget ran out; Shed
	// counts tenants rejected by the open circuit breaker; Canceled counts
	// tenants terminated on client request.
	FailedPermanently int `json:"failed_permanently,omitempty"`
	Shed              int `json:"shed,omitempty"`
	Canceled          int `json:"canceled,omitempty"`
	// WastedWork totals the simulated seconds of discarded progress across
	// all container losses (work past the last checkpoint, re-done later).
	WastedWork float64 `json:"wasted_work,omitempty"`
	// P95QueueDelay summarizes served-tenant admission delays — the
	// latency the circuit breaker is meant to bound under chaos.
	P95QueueDelay float64 `json:"p95_queue_delay"`
	// BreakerTrips counts open transitions of the admission breaker;
	// BreakerDegraded counts admissions it forced onto the fallback plan.
	BreakerTrips    int `json:"breaker_trips,omitempty"`
	BreakerDegraded int `json:"breaker_degraded,omitempty"`
	// Grows / Shrinks count applied mid-run width changes across all jobs;
	// VoluntaryShrinks counts admissions that narrowed below the policy
	// target to enter a full cluster.
	Grows            int `json:"grows,omitempty"`
	Shrinks          int `json:"shrinks,omitempty"`
	VoluntaryShrinks int `json:"voluntary_shrinks,omitempty"`
}

// finalize computes the aggregate fields from per-tenant results.
func (r *Report) finalize(usedIntegral, capIntegral float64) {
	var latencies, delays []float64
	var queueSum float64
	served := 0
	for _, t := range r.Tenants {
		if !t.Served {
			// Terminal outcomes with their own counters (budget
			// exhaustion, breaker shedding, cancellation) are not
			// "unserved": the service made a decision, it did not run
			// out of events.
			if !t.FailedPermanently && !t.Shed && !t.Canceled {
				r.Unserved++
			}
			continue
		}
		served++
		latencies = append(latencies, t.Latency)
		delays = append(delays, t.QueueDelay)
		queueSum += t.QueueDelay
		if t.Finished > r.Makespan {
			r.Makespan = t.Finished
		}
	}
	r.P50Latency = percentile(latencies, 0.50)
	r.P95Latency = percentile(latencies, 0.95)
	r.P95QueueDelay = percentile(delays, 0.95)
	if served > 0 {
		r.MeanQueueDelay = queueSum / float64(served)
	}
	if capIntegral > 0 {
		r.Utilization = usedIntegral / capIntegral
	}
}

// percentile returns the q-quantile (nearest-rank) of the values.
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// WriteJSON marshals the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteTable renders the per-tenant table plus the aggregate summary.
func (r *Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-9s %-12s %9s %9s %9s %9s  %-11s %s\n",
		"tenant", "program", "scenario", "arrive", "queued", "latency", "finish", "config", "flags"); err != nil {
		return err
	}
	for _, t := range r.Tenants {
		flags := ""
		if t.CacheHit {
			flags += "hit "
		}
		if t.Degraded {
			flags += "degraded "
		}
		if t.Reopts > 0 {
			flags += fmt.Sprintf("reopt:%d ", t.Reopts)
		}
		if t.BreakerDegraded {
			flags += "breaker "
		}
		if t.Requeues > 0 {
			flags += fmt.Sprintf("requeue:%d ", t.Requeues)
		}
		if t.SlowEpisodes > 0 {
			flags += fmt.Sprintf("slow:%d ", t.SlowEpisodes)
		}
		if t.Width > 1 {
			flags += fmt.Sprintf("w:%d ", t.Width)
		}
		if t.Grows > 0 {
			flags += fmt.Sprintf("grow:%d ", t.Grows)
		}
		if t.Shrinks > 0 {
			flags += fmt.Sprintf("shrink:%d ", t.Shrinks)
		}
		if t.Narrowed {
			flags += "narrowed "
		}
		if !t.Served {
			switch {
			case t.FailedPermanently:
				flags = "FAILED-PERM"
			case t.Shed:
				flags = "SHED"
			case t.Canceled:
				flags = "CANCELED"
			case t.Error != "":
				flags = "ERROR"
			default:
				flags = "UNSERVED"
			}
		}
		if _, err := fmt.Fprintf(w, "%-12s %-9s %-12s %9.1f %9.1f %9.1f %9.1f  %-11s %s\n",
			t.Tenant, t.Program, t.Scenario, t.Arrival, t.QueueDelay, t.Latency, t.Finished, t.Config, flags); err != nil {
			return err
		}
	}
	cs := r.Cache
	if _, err := fmt.Fprintf(w,
		"\nmakespan %.1fs | latency p50 %.1fs p95 %.1fs | mean queue %.1fs (p95 %.1fs) | utilization %.1f%% | peak tenants %d\n"+
			"plan cache: %d hits / %d misses (%.0f%% hit rate), %d evictions | reopts: %d checks, %d changes (%d departure, %d failure, %d restore) | %d node failures, %d requeues\n",
		r.Makespan, r.P50Latency, r.P95Latency, r.MeanQueueDelay, r.P95QueueDelay, 100*r.Utilization, r.MaxConcurrent,
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions,
		r.ReoptChecks, r.ReoptChanges, r.DepartureReopts, r.FailureReopts, r.RestoreReopts, r.NodeFailures, r.Requeues); err != nil {
		return err
	}
	if r.Grows+r.Shrinks+r.VoluntaryShrinks > 0 {
		if _, err := fmt.Fprintf(w,
			"elastic: %d grows, %d shrinks, %d voluntary narrowed admissions\n",
			r.Grows, r.Shrinks, r.VoluntaryShrinks); err != nil {
			return err
		}
	}
	if r.NodeRestores+r.SlowNodeEvents+r.FailedPermanently+r.Shed+r.BreakerTrips > 0 || r.WastedWork > 0 {
		if _, err := fmt.Fprintf(w,
			"chaos: %d node restores, %d slow-node events, %.1fs wasted work | %d failed permanently, %d shed | breaker: %d trips, %d degraded admissions\n",
			r.NodeRestores, r.SlowNodeEvents, r.WastedWork, r.FailedPermanently, r.Shed,
			r.BreakerTrips, r.BreakerDegraded); err != nil {
			return err
		}
	}
	return nil
}

// outputHash fingerprints a job's observable result: written output paths
// with dimensions and exact cell bits, plus the print stream. Descriptor
// outputs (sim mode) contribute metadata only.
func outputHash(paths []string, outputs map[string]*matrix.Matrix, dims map[string][3]int64, prints string) string {
	h := fnv.New64a()
	for _, p := range paths {
		fmt.Fprintf(h, "path:%s", p)
		if d, ok := dims[p]; ok {
			fmt.Fprintf(h, ":%dx%d:%d", d[0], d[1], d[2])
		}
		if m, ok := outputs[p]; ok && m != nil {
			for i := 0; i < m.Rows(); i++ {
				for j := 0; j < m.Cols(); j++ {
					fmt.Fprintf(h, ":%016x", math.Float64bits(m.At(i, j)))
				}
			}
		}
		fmt.Fprintf(h, "\n")
	}
	fmt.Fprintf(h, "prints:%s", prints)
	return fmt.Sprintf("%016x", h.Sum64())
}
