package workload

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"elasticml/internal/matrix"
	"elasticml/internal/opt"
)

// TenantResult is one tenant's service outcome. All times are simulated
// seconds; the struct contains no wall-clock quantities, so marshalled
// reports of identical workloads are byte-identical.
type TenantResult struct {
	Tenant   string `json:"tenant"`
	Program  string `json:"program"`
	Scenario string `json:"scenario,omitempty"`

	Arrival  float64 `json:"arrival"`
	Admitted float64 `json:"admitted"`
	Finished float64 `json:"finished"`
	// QueueDelay = Admitted - Arrival; Latency = Finished - Arrival.
	QueueDelay float64 `json:"queue_delay"`
	Latency    float64 `json:"latency"`

	// Config is the final resource configuration (CP/maxMR).
	Config string `json:"config"`
	// Degraded records an admission under a free-slice-clamped cluster.
	Degraded bool `json:"degraded,omitempty"`
	// CacheHit records whether admission skipped the grid search.
	CacheHit bool `json:"cache_hit"`
	// Reopts counts mid-run configuration changes applied to this job.
	Reopts int `json:"reopts,omitempty"`
	// Requeues counts re-admissions after the job's AM container died.
	Requeues int `json:"requeues,omitempty"`
	// Served is false for tenants the shrunken cluster could never admit.
	Served bool `json:"served"`

	// OutputHash fingerprints the written outputs and print stream.
	OutputHash string `json:"output_hash,omitempty"`

	// Outputs and Prints hold the actual results of value-mode jobs for
	// differential comparison; they are not part of the JSON report.
	Outputs map[string]*matrix.Matrix `json:"-"`
	Prints  string                    `json:"-"`
}

// Report aggregates one workload run.
type Report struct {
	Tenants []TenantResult `json:"tenants"`

	// Makespan is the time the last tenant left the system.
	Makespan float64 `json:"makespan"`
	// P50Latency / P95Latency summarize served-tenant latencies.
	P50Latency float64 `json:"p50_latency"`
	P95Latency float64 `json:"p95_latency"`
	// MeanQueueDelay averages served-tenant queueing delays.
	MeanQueueDelay float64 `json:"mean_queue_delay"`
	// Utilization is the time-weighted fraction of live cluster memory
	// held by AM containers over the makespan.
	Utilization float64 `json:"utilization"`
	// MaxConcurrent is the peak number of simultaneously running tenants.
	MaxConcurrent int `json:"max_concurrent"`

	// Cache reports shared plan cache effectiveness.
	Cache opt.CacheStats `json:"cache"`
	// ReoptChecks counts re-optimization evaluations of running jobs on
	// departures and node failures; ReoptChanges counts the subset that
	// changed a configuration mid-run.
	ReoptChecks     int `json:"reopt_checks"`
	ReoptChanges    int `json:"reopt_changes"`
	DepartureReopts int `json:"departure_reopts"`
	FailureReopts   int `json:"failure_reopts"`
	// NodeFailures / Requeues / Unserved count failure handling activity.
	NodeFailures int `json:"node_failures"`
	Requeues     int `json:"requeues"`
	Unserved     int `json:"unserved"`
}

// finalize computes the aggregate fields from per-tenant results.
func (r *Report) finalize(usedIntegral, capIntegral float64) {
	var latencies []float64
	var queueSum float64
	served := 0
	for _, t := range r.Tenants {
		if !t.Served {
			r.Unserved++
			continue
		}
		served++
		latencies = append(latencies, t.Latency)
		queueSum += t.QueueDelay
		if t.Finished > r.Makespan {
			r.Makespan = t.Finished
		}
	}
	r.P50Latency = percentile(latencies, 0.50)
	r.P95Latency = percentile(latencies, 0.95)
	if served > 0 {
		r.MeanQueueDelay = queueSum / float64(served)
	}
	if capIntegral > 0 {
		r.Utilization = usedIntegral / capIntegral
	}
}

// percentile returns the q-quantile (nearest-rank) of the values.
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// WriteJSON marshals the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteTable renders the per-tenant table plus the aggregate summary.
func (r *Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-9s %-12s %9s %9s %9s %9s  %-11s %s\n",
		"tenant", "program", "scenario", "arrive", "queued", "latency", "finish", "config", "flags"); err != nil {
		return err
	}
	for _, t := range r.Tenants {
		flags := ""
		if t.CacheHit {
			flags += "hit "
		}
		if t.Degraded {
			flags += "degraded "
		}
		if t.Reopts > 0 {
			flags += fmt.Sprintf("reopt:%d ", t.Reopts)
		}
		if t.Requeues > 0 {
			flags += fmt.Sprintf("requeue:%d ", t.Requeues)
		}
		if !t.Served {
			flags = "UNSERVED"
		}
		if _, err := fmt.Fprintf(w, "%-12s %-9s %-12s %9.1f %9.1f %9.1f %9.1f  %-11s %s\n",
			t.Tenant, t.Program, t.Scenario, t.Arrival, t.QueueDelay, t.Latency, t.Finished, t.Config, flags); err != nil {
			return err
		}
	}
	cs := r.Cache
	_, err := fmt.Fprintf(w,
		"\nmakespan %.1fs | latency p50 %.1fs p95 %.1fs | mean queue %.1fs | utilization %.1f%% | peak tenants %d\n"+
			"plan cache: %d hits / %d misses (%.0f%% hit rate), %d evictions | reopts: %d checks, %d changes (%d departure, %d failure) | %d node failures, %d requeues\n",
		r.Makespan, r.P50Latency, r.P95Latency, r.MeanQueueDelay, 100*r.Utilization, r.MaxConcurrent,
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions,
		r.ReoptChecks, r.ReoptChanges, r.DepartureReopts, r.FailureReopts, r.NodeFailures, r.Requeues)
	return err
}

// outputHash fingerprints a job's observable result: written output paths
// with dimensions and exact cell bits, plus the print stream. Descriptor
// outputs (sim mode) contribute metadata only.
func outputHash(paths []string, outputs map[string]*matrix.Matrix, dims map[string][3]int64, prints string) string {
	h := fnv.New64a()
	for _, p := range paths {
		fmt.Fprintf(h, "path:%s", p)
		if d, ok := dims[p]; ok {
			fmt.Fprintf(h, ":%dx%d:%d", d[0], d[1], d[2])
		}
		if m, ok := outputs[p]; ok && m != nil {
			for i := 0; i < m.Rows(); i++ {
				for j := 0; j < m.Cols(); j++ {
					fmt.Fprintf(h, ":%016x", math.Float64bits(m.At(i, j)))
				}
			}
		}
		fmt.Fprintf(h, "\n")
	}
	fmt.Fprintf(h, "prints:%s", prints)
	return fmt.Sprintf("%016x", h.Sum64())
}
