package opt

import (
	"sync"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/scripts"
)

// compileTestProgram compiles a real script against synthetic metadata,
// mirroring what the workload service feeds the optimizer.
func compileTestProgram(t *testing.T, spec scripts.Spec) *hop.Program {
	t.Helper()
	fs := hdfs.New()
	datagen.Describe(fs, datagen.New("XS", 1000, 1.0))
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hop.NewCompiler(fs, spec.Params).Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	return hp
}

func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got %v, want %v)", name, got, want)
	}
	if got.Cost != want.Cost {
		t.Errorf("%s: cost %v != %v", name, got.Cost, want.Cost)
	}
	if got.Res.CP != want.Res.CP || got.Res.CPCores != want.Res.CPCores || len(got.Res.MR) != len(want.Res.MR) {
		t.Fatalf("%s: res %v != %v", name, got.Res, want.Res)
	}
	for i := range got.Res.MR {
		if got.Res.MR[i] != want.Res.MR[i] {
			t.Errorf("%s: MR[%d] %v != %v", name, i, got.Res.MR[i], want.Res.MR[i])
		}
	}
}

// TestOptimizeMemoMatchesOptimize: the memoized search returns exactly the
// plain search's result, both cold (empty memo, everything recorded) and
// warm (every CP point replayed without a single compilation).
func TestOptimizeMemoMatchesOptimize(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	o := New(conf.DefaultCluster())
	o.Opts.Points = 5

	fresh := o.Optimize(hp)
	m := NewMemo()
	cold := o.OptimizeMemo(hp, m)
	sameResult(t, "cold memo run", cold, fresh)
	if cold.Stats.ReplayedPoints != 0 {
		t.Errorf("cold run replayed %d points from an empty memo", cold.Stats.ReplayedPoints)
	}

	warm := o.OptimizeMemo(hp, m)
	sameResult(t, "warm memo run", warm, fresh)
	if warm.Stats.ReplayedPoints != warm.Stats.CPPoints {
		t.Errorf("warm run replayed %d of %d points", warm.Stats.ReplayedPoints, warm.Stats.CPPoints)
	}
	if warm.Stats.BlockCompilations != 0 {
		t.Errorf("warm run compiled %d blocks; want 0 (full replay)", warm.Stats.BlockCompilations)
	}
	if warm.Stats.BlockCompilations >= cold.Stats.BlockCompilations {
		t.Errorf("warm compilations %d not below cold %d",
			warm.Stats.BlockCompilations, cold.Stats.BlockCompilations)
	}
	if st := m.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("memo unused: %+v", st)
	}
}

// TestOptimizeMemoAcrossClusterChanges: after warming the memo under the
// base cluster, a search under a *changed* cluster must still equal a fresh
// search under that cluster — the memo's validity rules may only skip work,
// never alter results. Covers every §5 transition the workload service
// performs: degraded-admission MaxAlloc clamps, node departure/failure,
// memory and budget-ratio changes, and core-count changes.
func TestOptimizeMemoAcrossClusterChanges(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	base := conf.DefaultCluster()

	mutations := []struct {
		name string
		mut  func(cc conf.Cluster) conf.Cluster
	}{
		{"maxalloc clamp (degraded admission)", func(cc conf.Cluster) conf.Cluster {
			cc.MaxAlloc /= 4
			return cc
		}},
		{"node departure", func(cc conf.Cluster) conf.Cluster {
			cc.Nodes--
			return cc
		}},
		{"mem per node shrunk", func(cc conf.Cluster) conf.Cluster {
			cc.MemPerNode -= 8 * conf.GB
			return cc
		}},
		{"cp budget ratio", func(cc conf.Cluster) conf.Cluster {
			cc.CPBudgetRatio = 0.5
			return cc
		}},
		{"cores per node", func(cc conf.Cluster) conf.Cluster {
			cc.CoresPerNode /= 2
			return cc
		}},
		{"reducers", func(cc conf.Cluster) conf.Cluster {
			cc.Reducers /= 2
			return cc
		}},
	}
	for _, mc := range mutations {
		t.Run(mc.name, func(t *testing.T) {
			m := NewMemo()
			warm := New(base)
			warm.Opts.Points = 5
			warm.OptimizeMemo(hp, m) // warm under the base cluster

			cc := mc.mut(base)
			oFresh := New(cc)
			oFresh.Opts.Points = 5
			fresh := oFresh.Optimize(hp)

			oMemo := New(cc)
			oMemo.Opts.Points = 5
			got := oMemo.OptimizeMemo(hp, m)
			sameResult(t, mc.name, got, fresh)
		})
	}
}

// TestOptimizeMemoReusesAcrossClamp: the headline §5 scenario — a MaxAlloc
// clamp from degraded admission — must actually *reuse* recorded work, not
// just stay correct. The grid under the clamped cluster differs, so full
// point replays are not guaranteed, but per-evaluation hits must land.
func TestOptimizeMemoReusesAcrossClamp(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	base := conf.DefaultCluster()
	m := NewMemo()
	warm := New(base)
	warm.Opts.Points = 5
	warm.OptimizeMemo(hp, m)
	before := m.Stats()

	cc := base
	cc.MaxAlloc /= 4
	o := New(cc)
	o.Opts.Points = 5
	r := o.OptimizeMemo(hp, m)
	after := m.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("no memo reuse across MaxAlloc clamp: hits %d -> %d", before.Hits, after.Hits)
	}
	if r.Stats.ReuseHits == 0 && r.Stats.ReplayedPoints == 0 {
		t.Errorf("search neither replayed points nor reused evaluations: %+v", r.Stats)
	}
}

// TestOptimizeMemoIgnoresWorkers: the memo path is sequential by design;
// a Workers setting must neither break it nor change the result.
func TestOptimizeMemoIgnoresWorkers(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	o := New(conf.DefaultCluster())
	o.Opts.Points = 5
	fresh := o.Optimize(hp)

	o.Opts.Workers = 4
	got := o.OptimizeMemo(hp, NewMemo())
	sameResult(t, "workers=4 with memo", got, fresh)
}

// TestOptimizeMemoConcurrent: concurrent searches sharing one memo must be
// race-free and each return the sequential result (run under -race).
func TestOptimizeMemoConcurrent(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	cc := conf.DefaultCluster()
	o := New(cc)
	o.Opts.Points = 5
	fresh := o.Optimize(hp)

	clamped := cc
	clamped.MaxAlloc /= 2

	m := NewMemo()
	const workers = 6
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the goroutines search under a clamped cluster to force
			// concurrent mixed-validity traffic on the shared tables.
			ccw := cc
			if w%2 == 1 {
				ccw = clamped
			}
			ow := New(ccw)
			ow.Opts.Points = 5
			results[w] = ow.OptimizeMemo(hp, m)
		}(w)
	}
	wg.Wait()

	oc := New(clamped)
	oc.Opts.Points = 5
	freshClamped := oc.Optimize(hp)
	for w := 0; w < workers; w++ {
		want := fresh
		if w%2 == 1 {
			want = freshClamped
		}
		sameResult(t, "concurrent memo search", results[w], want)
	}
}

// TestMemoStoreLRU: the per-program memo store is a bounded LRU keyed by
// MemoKey; eviction forgets a program's tables (a later Get recreates them).
func TestMemoStoreLRU(t *testing.T) {
	s := NewMemoStore(2)
	a := s.Get("a")
	b := s.Get("b")
	if a == nil || b == nil || a == b {
		t.Fatal("store returned bad memos")
	}
	if s.Get("a") != a {
		t.Error("second Get(a) returned a different memo")
	}
	_ = s.Get("c") // evicts b (LRU after a was refreshed)
	if s.Len() != 2 {
		t.Errorf("len %d, want 2", s.Len())
	}
	if s.Get("a") != a {
		t.Error("a evicted despite being most recently used")
	}
	if s.Get("b") == b {
		t.Error("b not evicted")
	}

	var nilStore *MemoStore
	if nilStore.Get("x") != nil || nilStore.Len() != 0 {
		t.Error("nil store must disable memoization")
	}
	if NewMemoStore(0).capacity != DefaultMemoPrograms {
		t.Error("default capacity not applied")
	}
}

// TestMemoFlushOnClusterOverflow: interning more cluster states than the cap
// flushes rather than growing without bound, and stays correct afterwards.
func TestMemoFlushOnClusterOverflow(t *testing.T) {
	m := NewMemo()
	cc := conf.DefaultCluster()
	for i := 0; i < maxMemoCCs+4; i++ {
		c := cc
		c.Nodes = 2 + i
		v := newMemoView(m, c)
		v.recordBlock(1, conf.GB, conf.GB, 0, float64(i), true)
	}
	m.mu.Lock()
	nccs := len(m.ccs)
	m.mu.Unlock()
	if nccs > maxMemoCCs {
		t.Errorf("cluster table grew past cap: %d", nccs)
	}
	// Entries recorded after the flush must still be retrievable.
	c := cc
	c.Nodes = 2 + maxMemoCCs + 3
	v := newMemoView(m, c)
	if cost, ok := v.blockCost(1, conf.GB, conf.GB, 0); !ok || cost != float64(maxMemoCCs+3) {
		t.Errorf("post-flush lookup: ok=%v cost=%v", ok, cost)
	}
}
