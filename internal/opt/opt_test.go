package opt

import (
	"math"
	"testing"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/scripts"
)

func compileHP(t *testing.T, spec scripts.Spec, n, m int64, sparsity float64) *hop.Program {
	t.Helper()
	fs := hdfs.New()
	nnz := int64(float64(n*m) * sparsity)
	fs.PutDescriptor("/data/X", n, m, nnz, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := hop.NewCompiler(fs, spec.Params)
	hp, err := c.Compile(prog, spec.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return hp
}

func TestGridGenerators(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0) // 8GB

	equi := EnumGridPoints(hp, cc, GridEqui, 15)
	if len(equi) != 15 {
		t.Errorf("Equi points = %d, want 15", len(equi))
	}
	if equi[0] != cc.MinHeap() || equi[14] != cc.MaxHeap() {
		t.Errorf("Equi bounds wrong: %v .. %v", equi[0], equi[14])
	}

	exp := EnumGridPoints(hp, cc, GridExp, 15)
	if len(exp) < 7 || len(exp) > 10 {
		t.Errorf("Exp points = %d, want ~8 (logarithmic)", len(exp))
	}
	for i := 1; i < len(exp)-1; i++ {
		if exp[i] != exp[i-1]*2 {
			t.Errorf("Exp spacing broken at %d: %v -> %v", i, exp[i-1], exp[i])
		}
	}

	mem := EnumGridPoints(hp, cc, GridMem, 15)
	if len(mem) == 0 || len(mem) > 15 {
		t.Errorf("Mem points = %d, want small program-derived set", len(mem))
	}

	hyb := EnumGridPoints(hp, cc, GridHybrid, 15)
	if len(hyb) < len(exp) {
		t.Errorf("Hybrid (%d) must cover Exp (%d)", len(hyb), len(exp))
	}
	// Ascending and unique.
	for _, pts := range [][]conf.Bytes{equi, exp, mem, hyb} {
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Errorf("points not strictly ascending: %v", pts)
			}
		}
	}
}

func TestMemGridAdaptsToDataSize(t *testing.T) {
	cc := conf.DefaultCluster()
	// XS data: all estimates below the minimum constraint => 1 point.
	xs := compileHP(t, scripts.LinregDS(), 10_000, 1000, 1.0) // 80MB
	memXS := EnumGridPoints(xs, cc, GridMem, 15)
	// M data: several distinct plan-change points.
	m := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0) // 8GB
	memM := EnumGridPoints(m, cc, GridMem, 15)
	if len(memXS) >= len(memM) {
		t.Errorf("Mem grid should grow with data: XS=%d M=%d", len(memXS), len(memM))
	}
	if len(memXS) != 1 {
		t.Errorf("XS Mem grid = %d points, want 1 (all estimates < min)", len(memXS))
	}
}

// baselineCost evaluates a static configuration through the optimizer's
// estimator for comparison.
func baselineCost(cc conf.Cluster, hp *hop.Program, cp, mrH conf.Bytes) float64 {
	est := cost.NewEstimator(cc)
	return est.ProgramCost(lop.Select(hp, cc, conf.NewResources(cp, mrH, hp.NumLeaf)))
}

func TestOptimizerBeatsOrMatchesBaselines(t *testing.T) {
	cc := conf.DefaultCluster()
	cases := []struct {
		spec scripts.Spec
		n, m int64
		sp   float64
	}{
		{scripts.LinregDS(), 100_000, 1000, 1.0},   // S dense1000
		{scripts.LinregDS(), 1_000_000, 1000, 1.0}, // M dense1000
		{scripts.LinregCG(), 1_000_000, 1000, 1.0},
		{scripts.L2SVM(), 1_000_000, 1000, 1.0},
		{scripts.LinregCG(), 10_000_000, 100, 0.01}, // sparse100
	}
	maxHeap := cc.MaxHeap()
	taskMax := conf.BytesOfGB(4.4)
	for _, tc := range cases {
		hp := compileHP(t, tc.spec, tc.n, tc.m, tc.sp)
		o := New(cc)
		res := o.Optimize(hp)
		if res == nil {
			t.Fatalf("%s: no result", tc.spec.Name)
		}
		baselines := []float64{
			baselineCost(cc, hp, cc.MinHeap(), cc.MinHeap()), // B-SS
			baselineCost(cc, hp, maxHeap, cc.MinHeap()),      // B-LS
			baselineCost(cc, hp, cc.MinHeap(), taskMax),      // B-SL
			baselineCost(cc, hp, maxHeap, taskMax),           // B-LL
		}
		for i, b := range baselines {
			if res.Cost > b*1.05 {
				t.Errorf("%s (%dx%d): Opt cost %.1f worse than baseline %d (%.1f)",
					tc.spec.Name, tc.n, tc.m, res.Cost, i, b)
			}
		}
	}
}

func TestOptimizerMemoryPreferences(t *testing.T) {
	cc := conf.DefaultCluster()
	// DS on 8GB dense1000 is compute intensive: prefers small CP,
	// distributed plan (paper Figure 1 left).
	ds := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	dsRes := New(cc).Optimize(ds)
	// CG on the same data is IO bound: prefers a CP that fits X (~12GB+)
	// (paper Figure 1 right).
	cg := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)
	cgRes := New(cc).Optimize(cg)
	if dsRes.Res.CP >= cgRes.Res.CP {
		t.Errorf("DS CP (%v) should be smaller than CG CP (%v)", dsRes.Res.CP, cgRes.Res.CP)
	}
	if cc.OpBudget(cgRes.Res.CP) < conf.Bytes(8e9) {
		t.Errorf("CG CP = %v: budget %v cannot pin the 8e9-byte X",
			cgRes.Res.CP, cc.OpBudget(cgRes.Res.CP))
	}
}

func TestPruningEffectiveness(t *testing.T) {
	cc := conf.DefaultCluster()
	// XS data: every operation fits everywhere; all blocks pruned.
	xs := compileHP(t, scripts.L2SVM(), 10_000, 1000, 1.0)
	res := New(cc).Optimize(xs)
	if res.Stats.RemainingBlocks != 0 {
		t.Errorf("XS: remaining blocks = %d, want 0", res.Stats.RemainingBlocks)
	}
	// M data: some blocks remain but fewer than total.
	m := compileHP(t, scripts.L2SVM(), 1_000_000, 1000, 1.0)
	resM := New(cc).Optimize(m)
	if resM.Stats.RemainingBlocks == 0 {
		t.Error("M: expected some remaining blocks")
	}
	if resM.Stats.RemainingBlocks >= resM.Stats.TotalBlocks {
		t.Errorf("M: pruning ineffective: %d/%d", resM.Stats.RemainingBlocks, resM.Stats.TotalBlocks)
	}
}

func TestPruningPreservesResult(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)
	withP := New(cc)
	withP.Opts.Points = 7
	a := withP.Optimize(hp)
	noP := New(cc)
	noP.Opts.Points = 7
	noP.Opts.DisablePruning = true
	b := noP.Optimize(hp)
	if math.Abs(a.Cost-b.Cost) > 1e-6*math.Max(a.Cost, 1) {
		t.Errorf("pruning changed result: %.3f vs %.3f", a.Cost, b.Cost)
	}
	if a.Stats.BlockCompilations >= b.Stats.BlockCompilations {
		t.Errorf("pruning should reduce compilations: %d vs %d",
			a.Stats.BlockCompilations, b.Stats.BlockCompilations)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.MLogreg(), 1_000_000, 100, 1.0)
	serial := New(cc)
	serial.Opts.Points = 7
	a := serial.Optimize(hp)
	par := New(cc)
	par.Opts.Points = 7
	par.Opts.Workers = 4
	b := par.Optimize(hp)
	if math.Abs(a.Cost-b.Cost) > 1e-9*math.Max(a.Cost, 1) {
		t.Errorf("parallel result differs: %.6f vs %.6f", a.Cost, b.Cost)
	}
	if a.Res.CP != b.Res.CP {
		t.Errorf("parallel CP differs: %v vs %v", a.Res.CP, b.Res.CP)
	}
}

func TestOptimizeWithCurrent(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)
	o := New(cc)
	cur := 2 * conf.GB
	global, local := o.OptimizeWithCurrent(hp, cur)
	if global == nil || local == nil {
		t.Fatal("missing results")
	}
	if local.Res.CP != cur {
		t.Errorf("local CP = %v, want %v", local.Res.CP, cur)
	}
	if global.Cost > local.Cost {
		t.Errorf("global cost %.1f must be <= local %.1f", global.Cost, local.Cost)
	}
}

func TestTimeBudget(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.GLM(), 1_000_000, 1000, 1.0)
	o := New(cc)
	o.Opts.TimeBudget = time.Nanosecond
	res := o.Optimize(hp)
	if res == nil {
		t.Fatal("time budget must still yield a configuration")
	}
}

func TestStatsPopulated(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	res := New(cc).Optimize(hp)
	s := res.Stats
	if s.BlockCompilations == 0 || s.Costings == 0 || s.OptTime <= 0 {
		t.Errorf("stats incomplete: %+v", s)
	}
	if s.CPPoints == 0 || s.MRPoints == 0 {
		t.Errorf("grid sizes missing: %+v", s)
	}
	if s.TotalBlocks != hp.NumLeaf {
		t.Errorf("TotalBlocks = %d, want %d", s.TotalBlocks, hp.NumLeaf)
	}
}

func TestMinimalResourcesOnTies(t *testing.T) {
	cc := conf.DefaultCluster()
	// XS data: many configurations share the minimal cost (pure CP plans);
	// the optimizer must return the smallest.
	hp := compileHP(t, scripts.LinregDS(), 10_000, 100, 1.0)
	res := New(cc).Optimize(hp)
	// The smallest CP whose plan is latency-free should win; it must be
	// far below the max.
	if res.Res.CP > 8*conf.GB {
		t.Errorf("tie-breaking failed: CP = %v (over-provisioned)", res.Res.CP)
	}
}
