package opt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/scripts"
)

// TestWidthClampedView: the clamped view only lowers the allocation
// ceiling — down to the granted container size, never below MinAlloc, and
// never raising an already-lower ceiling.
func TestWidthClampedView(t *testing.T) {
	cc := conf.DefaultCluster()
	v := WidthClamped(cc, 2*conf.GB)
	if v.MaxAlloc != 2*conf.GB {
		t.Errorf("MaxAlloc %v, want 2GB", v.MaxAlloc)
	}
	if v.Nodes != cc.Nodes || v.MemPerNode != cc.MemPerNode || v.MinAlloc != cc.MinAlloc {
		t.Errorf("clamp changed more than the ceiling: %+v", v)
	}
	if v := WidthClamped(cc, 1*conf.KB); v.MaxAlloc != cc.MinAlloc {
		t.Errorf("tiny container: MaxAlloc %v, want MinAlloc %v", v.MaxAlloc, cc.MinAlloc)
	}
	small := cc
	small.MaxAlloc = 1 * conf.GB
	if v := WidthClamped(small, 4*conf.GB); v.MaxAlloc != 1*conf.GB {
		t.Errorf("clamp must never raise the ceiling: %v", v.MaxAlloc)
	}
}

// TestWidthClampedChoiceFits: optimizing under the clamped view yields a
// configuration whose container fits the granted size, so a malleable job's
// re-optimized plan always matches the allocation it holds.
func TestWidthClampedChoiceFits(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	cc := conf.DefaultCluster()
	cont := 1 * conf.GB
	o := New(WidthClamped(cc, cont))
	o.Opts.Points = 5
	res := o.Optimize(hp).Res
	if need := conf.Bytes(float64(res.CP) * cc.ContainerOverhead); need > cont {
		t.Errorf("clamped search chose CP %v needing %v, over the %v container", res.CP, need, cont)
	}
}

// TestWidthClampedMemoReplay: the memo key excludes the cluster, so a
// search under a width-clamped view replays the cost evaluations an
// unclamped (or differently clamped) search already recorded — width
// changes re-cost incrementally instead of re-enumerating the grid.
func TestWidthClampedMemoReplay(t *testing.T) {
	hp := compileTestProgram(t, scripts.LinregDS())
	cc := conf.DefaultCluster()
	m := NewMemo()

	full := New(cc)
	full.Opts.Points = 5
	cold := full.OptimizeMemo(hp, m)
	if cold.Stats.ReplayedPoints != 0 {
		t.Fatalf("cold run replayed %d points from an empty memo", cold.Stats.ReplayedPoints)
	}

	clamped := New(WidthClamped(cc, 2*conf.GB))
	clamped.Opts.Points = 5
	warm := clamped.OptimizeMemo(hp, m)
	if warm.Stats.ReplayedPoints == 0 {
		t.Error("width-clamped search replayed nothing from the unclamped memo")
	}
	// The clamped grid spans a smaller range, but every point it shares
	// with the recorded search must come from the memo, not a fresh
	// compile+cost pass.
	if warm.Stats.ReplayedPoints < warm.Stats.CPPoints {
		t.Logf("clamped grid: %d of %d points replayed (the rest are new clamp-specific points)",
			warm.Stats.ReplayedPoints, warm.Stats.CPPoints)
	}
	// Correctness: the clamped memoized result equals the clamped fresh
	// search — replay must never change the chosen configuration.
	fresh := clamped.Optimize(hp)
	sameResult(t, "clamped memo vs fresh", warm, fresh)
}
