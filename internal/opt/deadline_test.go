package opt

import (
	"math"
	"runtime"
	"testing"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/scripts"
)

// TestParallelNearZeroDeadline: when the time budget expires while tasks
// are queued, the parallel optimizer must still return a usable (finite)
// configuration, must not drop worker effort stats, and must not leak
// worker goroutines (the queue is drained, never abandoned).
func TestParallelNearZeroDeadline(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.GLM(), 1_000_000, 1000, 1.0)
	before := runtime.NumGoroutine()

	o := New(cc)
	o.Opts.Workers = 4
	o.Opts.TimeBudget = time.Nanosecond
	res := o.Optimize(hp)
	if res == nil {
		t.Fatal("near-zero budget must still yield a configuration")
	}
	if math.IsInf(res.Cost, 1) || math.IsNaN(res.Cost) {
		t.Errorf("deadline skips leaked an infinite cost into the result: %v", res.Cost)
	}
	if res.Res.CP <= 0 {
		t.Errorf("result resource vector is empty: %v", res.Res)
	}
	if res.Stats.Costings == 0 || res.Stats.BlockCompilations == 0 {
		t.Errorf("effort stats dropped under deadline: costings=%d compilations=%d",
			res.Stats.Costings, res.Stats.BlockCompilations)
	}

	// Workers must have exited; allow the scheduler a moment to settle.
	settle := time.Now().Add(2 * time.Second)
	for time.Now().Before(settle) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before optimize, %d after", before, runtime.NumGoroutine())
}

// TestParallelDeadlineMatchesBaselineQuality: an expired budget must never
// produce a configuration worse than what the serial optimizer finds under
// the same expired budget (both fall back to baseline per-block entries).
func TestParallelDeadlineMatchesBaselineQuality(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)

	serial := New(cc)
	serial.Opts.TimeBudget = time.Nanosecond
	a := serial.Optimize(hp)

	par := New(cc)
	par.Opts.Workers = 4
	par.Opts.TimeBudget = time.Nanosecond
	b := par.Optimize(hp)

	if a == nil || b == nil {
		t.Fatal("both optimizers must return a configuration")
	}
	// Both should land on a finite-cost plan; the parallel one must not be
	// degraded by dropped or misattributed task results.
	if math.IsInf(b.Cost, 1) {
		t.Errorf("parallel deadline cost is infinite, serial is %v", a.Cost)
	}
}
