package opt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/obs"
	"elasticml/internal/scripts"
)

// TestGridDegenerateConstraints: with MinAlloc == MaxAlloc every generator
// must collapse to the single feasible point instead of emitting duplicates
// or an empty grid.
func TestGridDegenerateConstraints(t *testing.T) {
	cc := conf.DefaultCluster()
	cc.MinAlloc = cc.MaxAlloc
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	for _, g := range []GridType{GridEqui, GridExp, GridMem, GridHybrid} {
		pts := EnumGridPoints(hp, cc, g, 15)
		if len(pts) != 1 {
			t.Errorf("%v on degenerate constraints: %d points (%v), want 1", g, len(pts), pts)
		}
	}
}

// TestMemoryEstimatesDeduped: operators sharing one memory estimate (the
// repeated X %*% v patterns of LinregDS) must contribute a single grid
// anchor, and the estimate list must come back strictly ascending.
func TestMemoryEstimatesDeduped(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	ests := MemoryEstimates(hp, cc)
	if len(ests) == 0 {
		t.Fatal("no memory estimates for an 8GB program")
	}
	for i := 1; i < len(ests); i++ {
		if ests[i] <= ests[i-1] {
			t.Errorf("estimates not strictly ascending at %d: %v", i, ests)
		}
	}
	// Far fewer distinct estimates than matrix operators.
	if len(ests) > 32 {
		t.Errorf("estimate dedup ineffective: %d distinct values", len(ests))
	}
}

// TestGridMemDuplicateBrackets: neighbouring estimates bracketed by the same
// base-grid points must not duplicate those points.
func TestGridMemDuplicateBrackets(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.MLogreg(), 1_000_000, 1000, 1.0)
	pts := EnumGridPoints(hp, cc, GridMem, 5) // coarse base: estimates share brackets
	seen := map[conf.Bytes]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate Mem grid point %v in %v", p, pts)
		}
		seen[p] = true
		if p < cc.MinHeap() || p > cc.MaxHeap() {
			t.Errorf("Mem point %v outside [%v, %v]", p, cc.MinHeap(), cc.MaxHeap())
		}
	}
}

// TestGridExpBounds: the exponential grid must start at the minimum heap,
// end exactly at the maximum heap, and stay inside the constraints even when
// the doubling sequence overshoots.
func TestGridExpBounds(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregDS(), 100_000, 1000, 1.0)
	pts := EnumGridPoints(hp, cc, GridExp, 15)
	if len(pts) < 2 {
		t.Fatalf("Exp grid too small: %v", pts)
	}
	if pts[0] != cc.MinHeap() {
		t.Errorf("Exp first point = %v, want MinHeap %v", pts[0], cc.MinHeap())
	}
	if pts[len(pts)-1] != cc.MaxHeap() {
		t.Errorf("Exp last point = %v, want MaxHeap %v", pts[len(pts)-1], cc.MaxHeap())
	}
	for _, p := range pts {
		if p < cc.MinHeap() || p > cc.MaxHeap() {
			t.Errorf("Exp point %v outside [%v, %v]", p, cc.MinHeap(), cc.MaxHeap())
		}
	}
}

// TestGridHybridDedup: the hybrid grid is the deduplicated union of the Mem
// and Exp grids — every point of both appears exactly once, ascending.
func TestGridHybridDedup(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)
	mem := EnumGridPoints(hp, cc, GridMem, 15)
	exp := EnumGridPoints(hp, cc, GridExp, 15)
	hyb := EnumGridPoints(hp, cc, GridHybrid, 15)

	in := map[conf.Bytes]bool{}
	for i, p := range hyb {
		if in[p] {
			t.Errorf("Hybrid grid contains %v twice", p)
		}
		in[p] = true
		if i > 0 && hyb[i-1] >= p {
			t.Errorf("Hybrid grid not ascending at %d: %v", i, hyb)
		}
	}
	for _, p := range mem {
		if !in[p] {
			t.Errorf("Hybrid grid missing Mem point %v", p)
		}
	}
	for _, p := range exp {
		if !in[p] {
			t.Errorf("Hybrid grid missing Exp point %v", p)
		}
	}
	if len(hyb) >= len(mem)+len(exp) {
		t.Errorf("no overlap deduplicated: |hyb|=%d, |mem|+|exp|=%d", len(hyb), len(mem)+len(exp))
	}
}

// TestStatsPruningCounters: the M-size program triggers both memoization
// hits (blocks pruned forever re-skipped at later CP points) and per-point
// block pruning; disabling pruning zeroes both counters. The flushed metrics
// registry must agree with the returned Stats.
func TestStatsPruningCounters(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)

	o := New(cc)
	o.Trace = obs.New(false)
	res := o.Optimize(hp)
	st := res.Stats
	if st.MemoHits == 0 {
		t.Error("expected memoization hits on the M-size program")
	}
	if st.PrunedBlocks == 0 {
		t.Error("expected pruned blocks on the M-size program")
	}
	m := o.Trace.Metrics()
	if got := m.Counter("opt.memo_hits"); got != int64(st.MemoHits) {
		t.Errorf("opt.memo_hits metric = %d, stats say %d", got, st.MemoHits)
	}
	if got := m.Counter("opt.pruned_blocks"); got != int64(st.PrunedBlocks) {
		t.Errorf("opt.pruned_blocks metric = %d, stats say %d", got, st.PrunedBlocks)
	}
	if got := m.Counter("opt.block_compilations"); got != int64(st.BlockCompilations) {
		t.Errorf("opt.block_compilations metric = %d, stats say %d", got, st.BlockCompilations)
	}

	noP := New(cc)
	noP.Opts.DisablePruning = true
	resNoP := noP.Optimize(hp)
	if resNoP.Stats.MemoHits != 0 || resNoP.Stats.PrunedBlocks != 0 {
		t.Errorf("pruning disabled but counters nonzero: %+v", resNoP.Stats)
	}
}
