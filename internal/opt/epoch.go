// Epoch-window view of iterative programs. Mini-batch scripts are
// structured as an outer for-loop over epochs containing an inner
// for-loop over batch slices; both trip counts constant-fold from $
// parameters, so the hop program carries them as KnownIters. The
// workload layer treats those loop boundaries as first-class elasticity
// points: grows are deferred to the next epoch boundary, shrinks snap
// mid-epoch to the last completed batch. DetectEpochs recovers that
// structure from a compiled program; a §5 re-optimization at any such
// boundary then goes through OptimizeMemo, which replays the recorded
// cost evaluations instead of re-enumerating the grid per epoch (the
// memo-reuse property is pinned by TestEpochWindowMemoReuse).

package opt

import (
	"elasticml/internal/dml"
	"elasticml/internal/hop"
)

// EpochPlan describes the epoch structure of an iterative program: the
// outer loop's trip count and the inner batch loop's trip count. A
// program without a statically-known epoch loop has no plan.
type EpochPlan struct {
	// Epochs is the outer for-loop trip count.
	Epochs int
	// Batches is the inner batch-loop trip count (1 if the epoch body has
	// no statically-known inner loop).
	Batches int
}

// Boundaries returns the number of batch-granular progress boundaries in
// the program, i.e. the checkpoint resolution an elastic resize can snap
// to: Epochs * Batches.
func (p EpochPlan) Boundaries() int {
	return p.Epochs * p.Batches
}

// DetectEpochs recovers the epoch structure from a compiled program. It
// finds the first top-level (non-parallel) for-loop with a
// statically-known trip count and treats it as the epoch loop; the first
// statically-known for-loop nested anywhere in its body is the batch
// loop. Returns ok=false for programs without such a loop — one-shot
// batch scripts, while-loop solvers, and loops whose bounds did not
// constant-fold.
func DetectEpochs(p *hop.Program) (EpochPlan, bool) {
	if p == nil {
		return EpochPlan{}, false
	}
	outer := firstKnownFor(p.Blocks)
	if outer == nil {
		return EpochPlan{}, false
	}
	plan := EpochPlan{Epochs: int(outer.KnownIters), Batches: 1}
	if inner := firstKnownFor(outer.Body); inner != nil {
		plan.Batches = int(inner.KnownIters)
	}
	return plan, true
}

// firstKnownFor returns the first sequential for-block with a positive
// static trip count among the given blocks (descending into if-branches,
// since epoch loops may sit under a statically-unresolved guard), or nil.
func firstKnownFor(blocks []*hop.Block) *hop.Block {
	for _, b := range blocks {
		switch b.Kind {
		case dml.ForBlockKind:
			if !b.Parallel && b.KnownIters > 0 && b.KnownIters != hop.Unknown {
				return b
			}
		case dml.IfBlockKind:
			if f := firstKnownFor(b.Then); f != nil {
				return f
			}
			if f := firstKnownFor(b.Else); f != nil {
				return f
			}
		}
	}
	return nil
}
