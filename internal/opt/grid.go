// Package opt implements the paper's primary contribution: the cost-based
// resource optimizer for ML programs (§3). Given a HOP program and a
// cluster configuration it solves the ML Program Resource Allocation
// Problem (Definition 1) by grid enumeration over CP and per-block MR
// memory configurations, recompiling and costing generated runtime plans
// for each candidate, with program-aware pruning and optional task-parallel
// enumeration (Appendix C). The same optimizer serves initial optimization
// and runtime re-optimization (§4).
package opt

import (
	"sort"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
)

// GridType selects a grid point generation strategy (§3.3.2).
type GridType int

// Grid generators.
const (
	// GridEqui is the equi-spaced grid: systematic coverage, linear point
	// count.
	GridEqui GridType = iota
	// GridExp is the exponentially-spaced grid (w=2): logarithmic point
	// count exploiting that plan changes are denser at small memory.
	GridExp
	// GridMem is the memory-based grid: equi-spaced points bracketing the
	// program's operation memory estimates — program-aware directed search.
	GridMem
	// GridHybrid overlays GridMem and GridExp (the default): directed plus
	// systematic search.
	GridHybrid
)

func (g GridType) String() string {
	switch g {
	case GridEqui:
		return "Equi"
	case GridExp:
		return "Exp"
	case GridMem:
		return "Mem"
	case GridHybrid:
		return "Hybrid"
	}
	return "?"
}

// EnumGridPoints materializes ascending max-heap grid points for one
// resource dimension, bounded by the cluster's allocation constraints.
// m is the base grid's point count (used by Equi and Mem).
func EnumGridPoints(hp *hop.Program, cc conf.Cluster, t GridType, m int) []conf.Bytes {
	minH, maxH := cc.MinHeap(), cc.MaxHeap()
	switch t {
	case GridEqui:
		return equiPoints(minH, maxH, m)
	case GridExp:
		return expPoints(minH, maxH)
	case GridMem:
		return memPoints(hp, cc, minH, maxH, m)
	case GridHybrid:
		return dedupeSorted(append(memPoints(hp, cc, minH, maxH, m), expPoints(minH, maxH)...))
	}
	return nil
}

func equiPoints(minH, maxH conf.Bytes, m int) []conf.Bytes {
	if m < 2 {
		m = 2
	}
	gap := (maxH - minH) / conf.Bytes(m-1)
	if gap <= 0 {
		return []conf.Bytes{minH}
	}
	pts := make([]conf.Bytes, 0, m)
	for i := 0; i < m; i++ {
		pts = append(pts, minH+conf.Bytes(i)*gap)
	}
	pts[m-1] = maxH
	return pts
}

func expPoints(minH, maxH conf.Bytes) []conf.Bytes {
	var pts []conf.Bytes
	for p := minH; p < maxH; p *= 2 {
		pts = append(pts, p)
	}
	pts = append(pts, maxH)
	return pts
}

// memPoints brackets each of the program's distinct memory estimates with
// the neighbouring base-grid points; estimates outside the constraints fall
// back to the extreme values (§3.3.2).
func memPoints(hp *hop.Program, cc conf.Cluster, minH, maxH conf.Bytes, m int) []conf.Bytes {
	base := equiPoints(minH, maxH, m)
	ests := MemoryEstimates(hp, cc)
	var pts []conf.Bytes
	for _, est := range ests {
		switch {
		case est <= minH:
			pts = append(pts, minH)
		case est >= maxH:
			pts = append(pts, maxH)
		default:
			// Find the bracketing base points.
			i := sort.Search(len(base), func(i int) bool { return base[i] >= est })
			if i > 0 {
				pts = append(pts, base[i-1])
			}
			if i < len(base) {
				pts = append(pts, base[i])
			}
		}
	}
	if len(pts) == 0 {
		pts = append(pts, minH)
	}
	return dedupeSorted(pts)
}

// MemoryEstimates returns the distinct heap sizes corresponding to the
// operation memory estimates of all matrix operators in the program (the
// heap whose budget ratio covers the estimate): the points where plan
// changes are expected.
func MemoryEstimates(hp *hop.Program, cc conf.Cluster) []conf.Bytes {
	seen := map[conf.Bytes]bool{}
	var ests []conf.Bytes
	hop.WalkBlocks(hp.Blocks, func(b *hop.Block) {
		hop.WalkDAG(b.Roots, func(h *hop.Hop) {
			if h.DataType != hop.Matrix || hop.InfiniteMem(h.OpMem) || h.OpMem <= 0 {
				return
			}
			heap := conf.Bytes(float64(h.OpMem) / cc.CPBudgetRatio)
			if !seen[heap] {
				seen[heap] = true
				ests = append(ests, heap)
			}
		})
	})
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	return ests
}

func dedupeSorted(pts []conf.Bytes) []conf.Bytes {
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := pts[:0]
	var last conf.Bytes = -1
	for _, p := range pts {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}
