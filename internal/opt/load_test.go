package opt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/lop"
	"elasticml/internal/scripts"
)

// TestClusterLoadShiftsTowardSingleNode reproduces the §6 scenario:
// "consider scenarios where we decided to use distributed plans in order
// to exploit full cluster parallelism but the cluster is heavily loaded.
// In those situations, a fallback to single node in-memory computation
// might be beneficial."
func TestClusterLoadShiftsTowardSingleNode(t *testing.T) {
	cc := conf.DefaultCluster()
	// LinregDS dense1000 M: on an idle cluster the compute-bound TSMM
	// prefers the distributed plan with small CP.
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)

	idle := New(cc)
	idle.Opts.Points = 7
	idleRes := idle.Optimize(hp)

	loaded := New(cc)
	loaded.Opts.Points = 7
	loaded.Opts.ClusterLoad = 0.84 // only ~1 node's worth of MR capacity left
	loadedRes := loaded.Optimize(hp)

	if cc.OpBudget(idleRes.Res.CP) >= conf.Bytes(8e9) {
		t.Fatalf("idle cluster should prefer distributed DS (small CP), got %v", idleRes.Res)
	}
	// The loaded-cluster optimum must cost more than the idle optimum
	// (fewer effective nodes), and re-optimizing for the load must be at
	// least as good as blindly running the idle-optimal configuration.
	if loadedRes.Cost <= idleRes.Cost {
		t.Errorf("loaded optimum (%.1f) should cost more than idle optimum (%.1f)",
			loadedRes.Cost, idleRes.Cost)
	}
	loadedEst := cost.NewEstimator(cc)
	loadedEst.AvailableFraction = 1 - 0.84
	idleChoiceUnderLoad := loadedEst.ProgramCost(lop.Select(hp, cc, idleRes.Res))
	if loadedRes.Cost > idleChoiceUnderLoad+1e-9 {
		t.Errorf("load-aware re-optimization (%.1f) lost to the idle choice under load (%.1f)",
			loadedRes.Cost, idleChoiceUnderLoad)
	}
}

// TestClusterLoadIgnoredWhenIdle: load 0 and 1.0+ degenerate to the idle
// model.
func TestClusterLoadIgnoredWhenIdle(t *testing.T) {
	cc := conf.DefaultCluster()
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0)
	base := New(cc)
	base.Opts.Points = 7
	a := base.Optimize(hp)
	zero := New(cc)
	zero.Opts.Points = 7
	zero.Opts.ClusterLoad = 0
	b := zero.Optimize(hp)
	if a.Cost != b.Cost {
		t.Errorf("load 0 changed cost: %v vs %v", a.Cost, b.Cost)
	}
}
