package opt

import "elasticml/internal/conf"

// WidthClamped returns a cluster view for re-costing a program whose
// containers are already granted at contMem each: the allocation ceiling
// drops to the granted container size, so any configuration the optimizer
// chooses fits the allocation the job holds. Width changes of malleable
// jobs re-optimize under this view through the ordinary cache + memo path;
// the memo key excludes the cluster, so searches under successive width
// clamps replay each other's still-valid cost evaluations instead of
// re-enumerating the grid.
func WidthClamped(cc conf.Cluster, contMem conf.Bytes) conf.Cluster {
	if contMem < cc.MinAlloc {
		contMem = cc.MinAlloc
	}
	if cc.MaxAlloc > contMem {
		cc.MaxAlloc = contMem
	}
	return cc
}
