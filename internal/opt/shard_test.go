package opt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"elasticml/internal/conf"
)

// hexKey returns a realistic cache key: lowercase hex of a SHA-256 digest,
// exactly what CacheKey produces.
func hexKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestShardedMatchesSingleLockStats: on any op sequence whose distinct-key
// count fits a single shard's capacity, the sharded cache must produce
// byte-identical stats to the single-lock cache (neither ever evicts).
func TestShardedMatchesSingleLockStats(t *testing.T) {
	const capacity, keys, ops = 64, 48, 4000
	single := NewCache(capacity)
	sharded := NewSharded(capacity, DefaultCacheShards)
	r := conf.NewResources(conf.GB, 512*conf.MB, 2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		k := hexKey(rng.Intn(keys))
		if rng.Intn(3) == 0 {
			single.Insert(k, r, float64(i))
			sharded.Insert(k, r, float64(i))
		} else {
			_, c1, ok1 := single.Lookup(k)
			_, c2, ok2 := sharded.Lookup(k)
			if ok1 != ok2 || c1 != c2 {
				t.Fatalf("op %d key %s: single (%v,%v) vs sharded (%v,%v)", i, k[:8], c1, ok1, c2, ok2)
			}
		}
	}
	if s1, s2 := single.Stats(), sharded.Stats(); s1 != s2 {
		t.Errorf("stats diverged:\n single: %+v\nsharded: %+v", s1, s2)
	}
	if single.Len() != sharded.Len() {
		t.Errorf("len diverged: %d vs %d", single.Len(), sharded.Len())
	}
}

// TestShardedDistribution: sha256-hex keys must spread across stripes. The
// first *decoded byte* selects the shard; a naive key[0] % N over hex
// characters would leave shards 10-15 permanently empty.
func TestShardedDistribution(t *testing.T) {
	c := NewSharded(8, 16)
	r := conf.NewResources(conf.GB, 512*conf.MB, 1)
	for i := 0; i < 512; i++ {
		c.Insert(hexKey(i), r, 1)
	}
	empty := 0
	for i, s := range c.shards {
		if s.Len() == 0 {
			empty++
			t.Logf("shard %d empty", i)
		}
	}
	// 512 uniform keys over 16 shards: an empty shard has probability
	// (15/16)^512 ~ 4e-15 per shard. Any empty shard means broken hashing.
	if empty > 0 {
		t.Errorf("%d of %d shards empty under uniform sha256 keys", empty, c.Shards())
	}
}

// TestShardedConcurrency: parallel lookups, inserts, and evictions must be
// race-free (run under -race) and keep the aggregate counters consistent.
func TestShardedConcurrency(t *testing.T) {
	const workers, opsPer, keys = 8, 500, 300
	c := NewSharded(4, 16) // tiny shards force concurrent eviction
	r := conf.NewResources(conf.GB, 512*conf.MB, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPer; i++ {
				k := hexKey(rng.Intn(keys))
				if rng.Intn(2) == 0 {
					c.Insert(k, r, float64(i))
				} else {
					c.Lookup(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Insertions != workers*opsPer {
		t.Errorf("ops unaccounted: hits %d + misses %d + inserts %d != %d",
			st.Hits, st.Misses, st.Insertions, workers*opsPer)
	}
	if st.Entries != c.Len() {
		t.Errorf("stats entries %d != Len %d", st.Entries, c.Len())
	}
	if max := 4 * c.Shards(); st.Entries > max {
		t.Errorf("entries %d exceed global bound %d", st.Entries, max)
	}
	if st.Insertions != st.Evictions+int64(st.Entries) {
		// Re-inserting a live key refreshes in place, so insertions can
		// exceed evictions+entries — but never the other way around.
		if st.Insertions < st.Evictions+int64(st.Entries) {
			t.Errorf("insertions %d < evictions %d + entries %d", st.Insertions, st.Evictions, st.Entries)
		}
	}
}

// TestShardedNilAndDefaults: a nil sharded cache is a valid no-op sink, and
// non-positive parameters select the defaults.
func TestShardedNilAndDefaults(t *testing.T) {
	var c *ShardedCache
	if _, _, ok := c.Lookup("x"); ok {
		t.Error("nil sharded cache hit")
	}
	c.Insert("x", conf.Resources{}, 1) // must not panic
	if c.Len() != 0 || c.Stats() != (CacheStats{}) || c.Shards() != 0 {
		t.Error("nil sharded cache not empty")
	}
	d := NewSharded(0, 0)
	if d.Shards() != DefaultCacheShards {
		t.Errorf("default shards %d, want %d", d.Shards(), DefaultCacheShards)
	}
	if got := d.shards[0].capacity; got != DefaultCacheEntries {
		t.Errorf("default per-shard capacity %d, want %d", got, DefaultCacheEntries)
	}
	// Short and non-hex keys must still route somewhere.
	d.Insert("", conf.Resources{}, 1)
	d.Insert("z", conf.Resources{}, 1)
	d.Insert("ZZ-not-hex", conf.Resources{}, 1)
	if d.Len() != 3 {
		t.Errorf("odd keys not stored: len %d", d.Len())
	}
}

// TestShardedImplementsPlanCache pins the interface contract used by the
// workload service, including the typed-nil single-lock no-op.
func TestShardedImplementsPlanCache(t *testing.T) {
	var pc PlanCache = NewSharded(4, 4)
	pc.Insert("aa", conf.NewResources(conf.GB, 512*conf.MB, 1), 2)
	if _, cost, ok := pc.Lookup("aa"); !ok || cost != 2 {
		t.Errorf("lookup through interface: ok=%v cost=%v", ok, cost)
	}
	pc = (*Cache)(nil) // disabled caching: typed nil must be inert
	pc.Insert("aa", conf.Resources{}, 1)
	if _, _, ok := pc.Lookup("aa"); ok || pc.Len() != 0 {
		t.Error("typed-nil *Cache through interface not inert")
	}
}
