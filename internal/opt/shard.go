package opt

import "elasticml/internal/conf"

// ShardedCache is a lock-striped plan cache: N independent single-lock LRU
// shards, selected by the first byte of the SHA-256 digest underlying the
// key. Concurrent tenants hitting different shards never contend on a
// mutex, which is what the single global lock in Cache serializes.
//
// Semantics relative to Cache: hit/miss/insert accounting is identical
// (Stats aggregates the per-shard counters), and so is eviction as long as
// the live working set fits one shard's capacity. Each shard holds up to
// the full configured capacity, so the sharded cache admits *at most*
// shards x capacity entries — a deliberately looser global bound chosen so
// that any workload the single-lock cache serves without evicting produces
// byte-identical stats under sharding (a per-shard capacity/N split would
// evict earlier on skewed shards and diverge).
type ShardedCache struct {
	shards []*Cache
}

// DefaultCacheShards is the default stripe count.
const DefaultCacheShards = 16

// NewSharded returns a sharded cache with the given per-shard capacity
// (capacity <= 0 selects DefaultCacheEntries) and shard count (shards <= 0
// selects DefaultCacheShards; 1 degenerates to a single-lock cache behind
// the same interface).
func NewSharded(capacity, shards int) *ShardedCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &ShardedCache{shards: make([]*Cache, shards)}
	for i := range c.shards {
		c.shards[i] = NewCache(capacity)
	}
	return c
}

// shardFor selects the stripe for a key. CacheKey returns lowercase hex, so
// the digest's first byte is recovered from the first two characters; using
// the raw first character would map hex digits mod N and leave shards 10-15
// permanently empty at the default stripe count. Non-hex keys (tests,
// external callers) fall back to the raw first byte.
func (c *ShardedCache) shardFor(key string) *Cache {
	b := 0
	if len(key) >= 2 {
		hi := unhex(key[0])
		lo := unhex(key[1])
		if hi >= 0 && lo >= 0 {
			b = hi<<4 | lo
		} else {
			b = int(key[0])
		}
	} else if len(key) == 1 {
		b = int(key[0])
	}
	return c.shards[b%len(c.shards)]
}

func unhex(ch byte) int {
	switch {
	case '0' <= ch && ch <= '9':
		return int(ch - '0')
	case 'a' <= ch && ch <= 'f':
		return int(ch-'a') + 10
	case 'A' <= ch && ch <= 'F':
		return int(ch-'A') + 10
	}
	return -1
}

// Lookup returns the cached outcome for the key from its shard.
func (c *ShardedCache) Lookup(key string) (conf.Resources, float64, bool) {
	if c == nil {
		return conf.Resources{}, 0, false
	}
	return c.shardFor(key).Lookup(key)
}

// Insert stores (or refreshes) the outcome for the key in its shard.
func (c *ShardedCache) Insert(key string, res conf.Resources, cost float64) {
	if c == nil {
		return
	}
	c.shardFor(key).Insert(key, res, cost)
}

// Len returns the number of live entries across all shards.
func (c *ShardedCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		n += s.Len()
	}
	return n
}

// Stats aggregates the per-shard counters into one snapshot.
func (c *ShardedCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	var agg CacheStats
	for _, s := range c.shards {
		st := s.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Insertions += st.Insertions
		agg.Evictions += st.Evictions
		agg.Entries += st.Entries
	}
	return agg
}

// Shards returns the stripe count (for reports and tests).
func (c *ShardedCache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}
