package opt

import (
	"math"
	"sync"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
)

// optimizeParallel is the task-parallel optimizer of Appendix C: a master
// enumerates CP grid points, performs baseline compilation and pruning,
// and dispatches per-block MR enumeration tasks to a shared worker pool.
// The master pipelines: it proceeds to the next CP point while workers
// drain earlier tasks, and aggregates program costs once a CP point's
// tasks complete. The semi-independent-problems property (§3.2) makes the
// tasks embarrassingly parallel with lock-free result slots.
func (o *Optimizer) optimizeParallel(hp *hop.Program, src, srm []conf.Bytes, currentCP conf.Bytes,
	cores int, stats *Stats, prunedForever []bool, deadline time.Time) (*Result, *Result) {

	type task struct {
		bt  blockTask
		out *memoEntry
		wg  *sync.WaitGroup
	}
	workers := o.Opts.Workers
	tasksCh := make(chan task, 4*workers)
	workerComps := make([]int, workers)
	workerCosts := make([]int, workers)
	var wgWorkers sync.WaitGroup
	for w := 0; w < workers; w++ {
		wgWorkers.Add(1)
		go func(w int) {
			defer wgWorkers.Done()
			est := o.newEstimator()
			local := Stats{}
			// Flush effort counters via defer so work done before the
			// deadline fired is never dropped from the reported stats.
			defer func() {
				workerComps[w] = local.BlockCompilations
				workerCosts[w] = est.Invocations
			}()
			for tk := range tasksCh {
				if !deadline.IsZero() && time.Now().After(deadline) {
					// Budget exhausted mid-point: skip the enumeration
					// (the master keeps the block's baseline memo entry)
					// but keep draining the queue so every pendingCP's
					// WaitGroup resolves and no goroutine leaks.
					*tk.out = memoEntry{cost: math.Inf(1)}
					tk.wg.Done()
					continue
				}
				*tk.out = o.enumBlock(tk.bt, srm, est, &local, nil)
				tk.wg.Done()
			}
		}(w)
	}

	// pendingCP is one in-flight CP grid point awaiting its block results.
	type pendingCP struct {
		rc    conf.Bytes
		memo  []memoEntry
		tasks []blockTask
		outs  []memoEntry
		wg    *sync.WaitGroup
	}

	est := o.newEstimator() // master estimator
	var pendings []*pendingCP
	n := hp.NumLeaf
	minH := o.CC.MinHeap()
	for _, rc := range src {
		if len(pendings) > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		p := &pendingCP{rc: rc, memo: make([]memoEntry, n)}
		baseline := lop.Select(hp, o.CC, withCores(conf.NewResources(rc, minH, n), cores))
		stats.BlockCompilations += countBlocks(baseline)
		leaves := baseline.LeafBlocks()
		remaining := 0
		for i, lb := range leaves {
			p.memo[i] = memoEntry{ri: minH, cost: est.BlockCost(lb, withCores(conf.NewResources(rc, minH, 1), cores))}
			if !o.Opts.DisablePruning {
				if prunedForever[i] {
					stats.MemoHits++
					continue
				}
				if pruneBlock(lb) {
					stats.PrunedBlocks++
					if lop.NumMRJobs([]*lop.Block{lb}) == 0 {
						prunedForever[i] = true
					}
					continue
				}
			}
			remaining++
			p.tasks = append(p.tasks, blockTask{idx: i, hb: lb.HopBlock, rc: rc, cores: cores})
		}
		if remaining > stats.RemainingBlocks {
			stats.RemainingBlocks = remaining
		}
		p.outs = make([]memoEntry, len(p.tasks))
		p.wg = &sync.WaitGroup{}
		p.wg.Add(len(p.tasks))
		for k := range p.tasks {
			tasksCh <- task{bt: p.tasks[k], out: &p.outs[k], wg: p.wg}
		}
		pendings = append(pendings, p)
	}
	close(tasksCh)

	var best, bestLocal *Result
	for _, p := range pendings {
		p.wg.Wait()
		for k, t := range p.tasks {
			if p.outs[k].cost < p.memo[t.idx].cost {
				p.memo[t.idx] = p.outs[k]
			}
		}
		resVec := conf.Resources{CP: p.rc, MR: make([]conf.Bytes, n), CPCores: cores}
		for i := range p.memo {
			resVec.MR[i] = p.memo[i].ri
		}
		full := lop.Select(hp, o.CC, resVec)
		stats.BlockCompilations += countBlocks(full)
		c := est.ProgramCost(full)
		best = better(best, &Result{Res: resVec, Cost: c})
		if currentCP > 0 && p.rc == currentCP {
			bestLocal = &Result{Res: resVec, Cost: c}
		}
	}
	wgWorkers.Wait()
	stats.Costings += est.Invocations
	for w := 0; w < workers; w++ {
		stats.BlockCompilations += workerComps[w]
		stats.Costings += workerCosts[w]
	}
	return best, bestLocal
}
