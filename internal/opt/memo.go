package opt

import (
	"container/list"
	"strconv"
	"sync"

	"elasticml/internal/conf"
)

// The re-costing memo makes §5 re-optimization incremental. A cluster
// change (departure clamp, node failure, restore) shifts only some of the
// dimensions the grid search's cost evaluations depend on; the evaluations
// themselves are highly redundant across neighboring cluster states. The
// memo records every (cores, CP heap, MR heap, block) cost from a search
// together with the cluster it was computed under, and a later search under
// a different cluster reuses an entry iff the changed dimensions provably
// cannot have altered it:
//
//   - Plan selection (lop.Select/SelectBlock) reads only CPBudgetRatio (via
//     OpBudget) and the resource vector, so equal CPBudgetRatio means the
//     memoized cost priced the same plan shape.
//   - A CP-only block's cost additionally depends on CoresPerNode (the
//     compute clamp) and on nothing else in the cluster.
//   - A block with MR jobs further depends on Nodes, MemPerNode, Reducers,
//     HDFSBlockSize, ContainerOverhead, and on Min/MaxAlloc only through
//     ContainerSize clamping of the two heaps involved — so a MaxAlloc
//     clamp (degraded admission) invalidates nothing for heaps whose
//     container size is unchanged under both clusters.
//
// Whole-program costings under MR-bearing vectors depend on the container
// size of every block's heap, so those entries are reused only under an
// identical cluster and recomputed (one compile + costing per grid point)
// otherwise. Entries never expire by cluster change — they accumulate per
// observed cluster state and are bounded by a flush-on-overflow cap.

// memoBlockKey identifies one block-level cost evaluation. baseline marks
// the minimal-MR-heap evaluation performed during baseline compilation
// (which also carries the pruning verdict).
type memoBlockKey struct {
	cores    int
	rc, ri   conf.Bytes
	block    int
	baseline bool
}

// memoBlockVal is one memoized block cost. mr records whether the compiled
// block contained MR instructions (selecting the validity rule); pruned, on
// baseline entries, records that enumeration was skipped for the block.
type memoBlockVal struct {
	cost   float64
	mr     bool
	pruned bool
	cc     uint16 // index into Memo.ccs
}

// memoProgKey identifies one whole-program costing: CP point, cores, and
// the full MR vector (encoded as a string so the key is comparable).
type memoProgKey struct {
	cores int
	rc    conf.Bytes
	vec   string
}

type memoProgVal struct {
	cost float64
	mr   bool
	cc   uint16
}

// Flush-on-overflow bounds: a memo caps its entry and cluster-state tables
// and starts over when either fills. The caps are far above what the
// service's grids produce per program; flushing costs only speed.
const (
	maxMemoBlocks = 1 << 16
	maxMemoCCs    = 256
)

// Memo is the re-costing memo for one optimization problem (one program +
// options fingerprint across cluster states). Safe for concurrent use: the
// per-entry lock is vastly cheaper than the block compilation it saves, and
// because every memoized value is a pure function of its key and cluster,
// concurrent searches sharing a memo stay deterministic — a race only
// decides who computes a value, never what it is.
type Memo struct {
	mu     sync.Mutex
	ccs    []conf.Cluster
	blocks map[memoBlockKey]memoBlockVal
	progs  map[memoProgKey]memoProgVal

	hits, misses int64
}

// NewMemo returns an empty re-costing memo.
func NewMemo() *Memo {
	return &Memo{
		blocks: make(map[memoBlockKey]memoBlockVal),
		progs:  make(map[memoProgKey]memoProgVal),
	}
}

// MemoStats reports memo effectiveness.
type MemoStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// Stats returns a snapshot of the memo counters.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Entries: len(m.blocks) + len(m.progs), Hits: m.hits, Misses: m.misses}
}

// ccIndex interns a cluster state, flushing the memo if the state table is
// full (flushing preserves determinism: it only forgets reusable work).
func (m *Memo) ccIndex(cc conf.Cluster) uint16 {
	for i := range m.ccs {
		if m.ccs[i] == cc {
			return uint16(i)
		}
	}
	if len(m.ccs) >= maxMemoCCs {
		m.ccs = m.ccs[:0]
		clear(m.blocks)
		clear(m.progs)
	}
	m.ccs = append(m.ccs, cc)
	return uint16(len(m.ccs) - 1)
}

// compatible reports whether an entry computed under old is reusable under
// cur, given whether the priced plan had MR jobs and which heaps it binds.
func compatible(old, cur conf.Cluster, mr bool, heaps ...conf.Bytes) bool {
	if old == cur {
		return true
	}
	if old.CPBudgetRatio != cur.CPBudgetRatio || old.CoresPerNode != cur.CoresPerNode {
		return false
	}
	if !mr {
		return true
	}
	if old.Nodes != cur.Nodes || old.MemPerNode != cur.MemPerNode ||
		old.Reducers != cur.Reducers || old.HDFSBlockSize != cur.HDFSBlockSize ||
		old.ContainerOverhead != cur.ContainerOverhead {
		return false
	}
	// Min/MaxAlloc enter MR costs only through ContainerSize clamping of
	// the bound heaps: equal clamped sizes under both clusters means the
	// allocation-range change was value-neutral for this entry.
	for _, h := range heaps {
		if old.ContainerSize(h) != cur.ContainerSize(h) {
			return false
		}
	}
	return true
}

// memoView binds a Memo to the cluster a search runs under, caching the
// interned cluster index. A nil view is inert: lookups miss, records are
// dropped — the optimizer threads it unconditionally.
type memoView struct {
	m    *Memo
	cc   conf.Cluster
	ccID uint16
}

func newMemoView(m *Memo, cc conf.Cluster) *memoView {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	id := m.ccIndex(cc)
	m.mu.Unlock()
	return &memoView{m: m, cc: cc, ccID: id}
}

// blockCost looks up a valid per-block enumeration cost.
func (v *memoView) blockCost(cores int, rc, ri conf.Bytes, block int) (float64, bool) {
	if v == nil {
		return 0, false
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	e, ok := v.m.blocks[memoBlockKey{cores: cores, rc: rc, ri: ri, block: block}]
	if ok && compatible(v.m.ccs[e.cc], v.cc, e.mr, rc, ri) {
		v.m.hits++
		return e.cost, true
	}
	v.m.misses++
	return 0, false
}

// recordBlock stores a per-block enumeration cost.
func (v *memoView) recordBlock(cores int, rc, ri conf.Bytes, block int, cost float64, mr bool) {
	if v == nil {
		return
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	v.m.flushIfFull()
	v.m.blocks[memoBlockKey{cores: cores, rc: rc, ri: ri, block: block}] =
		memoBlockVal{cost: cost, mr: mr, cc: v.ccID}
}

// baseline looks up a valid baseline entry (cost + pruning verdict).
func (v *memoView) baseline(cores int, rc, minH conf.Bytes, block int) (memoBlockVal, bool) {
	if v == nil {
		return memoBlockVal{}, false
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	e, ok := v.m.blocks[memoBlockKey{cores: cores, rc: rc, ri: minH, block: block, baseline: true}]
	if ok && compatible(v.m.ccs[e.cc], v.cc, e.mr, rc, minH) {
		v.m.hits++
		return e, true
	}
	v.m.misses++
	return memoBlockVal{}, false
}

// recordBaseline stores a baseline entry.
func (v *memoView) recordBaseline(cores int, rc, minH conf.Bytes, block int, cost float64, mr, pruned bool) {
	if v == nil {
		return
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	v.m.flushIfFull()
	v.m.blocks[memoBlockKey{cores: cores, rc: rc, ri: minH, block: block, baseline: true}] =
		memoBlockVal{cost: cost, mr: mr, pruned: pruned, cc: v.ccID}
}

// progCost looks up a valid whole-program costing. MR-bearing programs
// depend on the container size of every heap in the vector, so they are
// conservatively reused only under an identical cluster.
func (v *memoView) progCost(cores int, rc conf.Bytes, vec string) (float64, bool) {
	if v == nil {
		return 0, false
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	e, ok := v.m.progs[memoProgKey{cores: cores, rc: rc, vec: vec}]
	if ok && (v.m.ccs[e.cc] == v.cc || (!e.mr && compatible(v.m.ccs[e.cc], v.cc, false))) {
		v.m.hits++
		return e.cost, true
	}
	v.m.misses++
	return 0, false
}

// recordProg stores a whole-program costing.
func (v *memoView) recordProg(cores int, rc conf.Bytes, vec string, cost float64, mr bool) {
	if v == nil {
		return
	}
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	v.m.flushIfFull()
	v.m.progs[memoProgKey{cores: cores, rc: rc, vec: vec}] = memoProgVal{cost: cost, mr: mr, cc: v.ccID}
}

// flushIfFull empties the entry tables when the overflow cap is reached.
// Callers hold m.mu. The interned cluster states survive (indices stay
// valid for the views holding them).
func (m *Memo) flushIfFull() {
	if len(m.blocks)+len(m.progs) >= maxMemoBlocks {
		clear(m.blocks)
		clear(m.progs)
	}
}

// vecString encodes an MR heap vector as a comparable map key.
func vecString(mr []conf.Bytes) string {
	b := make([]byte, 0, 16*len(mr))
	for _, v := range mr {
		b = strconv.AppendInt(b, int64(v), 36)
		b = append(b, ',')
	}
	return string(b)
}

// DefaultMemoPrograms is the default MemoStore capacity.
const DefaultMemoPrograms = 32

// MemoStore is a bounded LRU of per-program memos, keyed by MemoKey. The
// workload service holds one store; each admission or re-optimization
// fetches (or creates) the memo for its program so successive searches
// under shifting cluster states reuse each other's cost tables.
type MemoStore struct {
	mu       sync.Mutex
	capacity int
	index    map[string]*list.Element
	lru      list.List
}

type memoStoreItem struct {
	key string
	m   *Memo
}

// NewMemoStore returns a store holding at most capacity memos (capacity <=
// 0 selects DefaultMemoPrograms).
func NewMemoStore(capacity int) *MemoStore {
	if capacity <= 0 {
		capacity = DefaultMemoPrograms
	}
	return &MemoStore{capacity: capacity, index: make(map[string]*list.Element)}
}

// Get returns the memo for the key, creating it on first use and evicting
// the least recently used memo when over capacity. A nil store returns nil
// (memoization disabled).
func (s *MemoStore) Get(key string) *Memo {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*memoStoreItem).m
	}
	m := NewMemo()
	s.index[key] = s.lru.PushFront(&memoStoreItem{key: key, m: m})
	for s.lru.Len() > s.capacity {
		back := s.lru.Back()
		delete(s.index, back.Value.(*memoStoreItem).key)
		s.lru.Remove(back)
	}
	return m
}

// Len returns the number of live memos.
func (s *MemoStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
