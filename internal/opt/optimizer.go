package opt

import (
	"math"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/obs"
)

// Options configure the optimizer.
type Options struct {
	// GridCP / GridMR select the per-dimension grid generators (the
	// default hybrid combines directed and systematic search).
	GridCP, GridMR GridType
	// Points is the base-grid point count m per dimension (default 15).
	Points int
	// DisablePruning turns off the block pruning of §3.4 (ablation).
	DisablePruning bool
	// Workers > 1 enables the task-parallel optimizer (Appendix C).
	Workers int
	// CPCoreCandidates enumerates the CP core count as an additional
	// search dimension (§6 "Additional Resources Beyond Memory"):
	// multi-threaded CP compute divides by the core count while memory
	// estimates inflate (lop.MultiThreadMemFactor). Empty means the
	// paper's single-threaded CP.
	CPCoreCandidates []int
	// TimeBudget bounds optimization time; zero means unbounded. When the
	// budget is exceeded, the best configuration found so far is returned.
	TimeBudget time.Duration
	// ClusterLoad in [0,1) models current cluster utilization for
	// utilization-based adaptation (§6): MR jobs see only the remaining
	// fraction of worker nodes, which shifts optimal plans toward
	// single-node in-memory execution on loaded clusters.
	ClusterLoad float64
}

// newEstimator builds a cost estimator honoring the cluster-load option.
func (o *Optimizer) newEstimator() *cost.Estimator {
	est := cost.NewEstimator(o.CC)
	if o.Opts.ClusterLoad > 0 && o.Opts.ClusterLoad < 1 {
		est.AvailableFraction = 1 - o.Opts.ClusterLoad
	}
	return est
}

// DefaultOptions returns the paper's default configuration: hybrid grids
// with m=15 and sequential enumeration.
func DefaultOptions() Options {
	return Options{GridCP: GridHybrid, GridMR: GridHybrid, Points: 15, Workers: 1}
}

// Stats reports the optimization effort (Table 3 columns).
type Stats struct {
	// BlockCompilations counts per-block plan generations.
	BlockCompilations int
	// Costings counts cost-model invocations (costing the entire program
	// counts as one).
	Costings int
	// OptTime is the wall-clock optimization time.
	OptTime time.Duration
	// CPPoints / MRPoints are the enumerated grid sizes.
	CPPoints, MRPoints int
	// TotalBlocks / RemainingBlocks quantify pruning effectiveness
	// (Figure 14): remaining = blocks whose MR dimension was enumerated,
	// maximized over CP grid points.
	TotalBlocks, RemainingBlocks int
	// PrunedBlocks counts per-CP-point block prunings (§3.4: no MR jobs
	// under the baseline compilation, or all dimensions unknown).
	PrunedBlocks int
	// MemoHits counts enumerations skipped because the block was already
	// proven MR-independent at a smaller CP size (monotonic dependency
	// elimination across grid points).
	MemoHits int
	// ReuseHits counts cost evaluations answered by the re-costing memo
	// (OptimizeMemo) instead of a fresh compile-and-cost.
	ReuseHits int
	// ReplayedPoints counts CP grid points fully replayed from the
	// re-costing memo — no baseline compilation, no enumeration.
	ReplayedPoints int
}

// Result is an optimization outcome.
type Result struct {
	// Res is the near-optimal resource configuration R*_P.
	Res conf.Resources
	// Cost is the estimated program execution time under Res.
	Cost float64
	// Stats reports the optimization effort.
	Stats Stats
}

// Optimizer finds near-optimal resource configurations via online what-if
// analysis: for every enumerated configuration it lets the compiler
// generate the runtime plan and costs it, so every memory-sensitive
// compilation step is reflected (robustness by construction, §2.4).
type Optimizer struct {
	CC   conf.Cluster
	Opts Options
	// Trace, when non-nil, receives optimizer-layer spans (one per CP grid
	// point and per block enumeration) and effort counters. Only the
	// sequential optimizer records per-point spans; the task-parallel
	// optimizer (Workers > 1) records the enclosing span only, since
	// worker interleaving would make the event order non-deterministic.
	Trace *obs.Tracer
}

// New returns an optimizer with default options.
func New(cc conf.Cluster) *Optimizer {
	return &Optimizer{CC: cc, Opts: DefaultOptions()}
}

// Optimize solves the resource allocation problem for the program.
func (o *Optimizer) Optimize(hp *hop.Program) *Result {
	global, _ := o.optimize(hp, 0, nil)
	return global
}

// OptimizeMemo solves the resource allocation problem through a re-costing
// memo: cost evaluations recorded by earlier searches over the same program
// (possibly under different cluster states) are reused whenever the changed
// cluster dimensions provably cannot have altered them, and fresh
// evaluations are recorded for later searches. The result is identical to
// Optimize by construction — the memo only replaces compile-and-cost calls
// with their memoized values. A nil memo degenerates to Optimize. The memo
// path always uses the sequential enumeration (which the task-parallel
// optimizer matches result-for-result), so Workers is ignored here.
func (o *Optimizer) OptimizeMemo(hp *hop.Program, m *Memo) *Result {
	global, _ := o.optimize(hp, 0, newMemoView(m, o.CC))
	return global
}

// OptimizeWithCurrent additionally reports the best configuration under the
// fixed current CP heap (R*_P | r_c), used by runtime re-optimization to
// compare against migration (§4.2).
func (o *Optimizer) OptimizeWithCurrent(hp *hop.Program, currentCP conf.Bytes) (global, local *Result) {
	return o.optimize(hp, currentCP, nil)
}

// memoEntry is one row of the memoization structure: the best MR heap found
// for a block and its cost (Algorithm 1).
type memoEntry struct {
	ri   conf.Bytes
	cost float64
}

func (o *Optimizer) optimize(hp *hop.Program, currentCP conf.Bytes, mv *memoView) (*Result, *Result) {
	start := time.Now()
	src := EnumGridPoints(hp, o.CC, o.Opts.GridCP, o.Opts.Points)
	srm := EnumGridPoints(hp, o.CC, o.Opts.GridMR, o.Opts.Points)
	if currentCP > 0 {
		src = dedupeSorted(append(src, currentCP))
	}
	stats := Stats{CPPoints: len(src), MRPoints: len(srm), TotalBlocks: hp.NumLeaf}
	osp := o.Trace.Begin(obs.LayerOptimize, "opt.grid-search",
		obs.A("grid_cp", o.Opts.GridCP.String()), obs.A("grid_mr", o.Opts.GridMR.String()),
		obs.A("cp_points", len(src)), obs.A("mr_points", len(srm)),
		obs.A("blocks", hp.NumLeaf), obs.A("workers", o.Opts.Workers))

	coreCands := o.Opts.CPCoreCandidates
	if len(coreCands) == 0 {
		coreCands = []int{1}
	}

	var best, bestLocal *Result

	deadline := time.Time{}
	if o.Opts.TimeBudget > 0 {
		deadline = start.Add(o.Opts.TimeBudget)
	}

	for _, cores := range coreCands {
		// Monotonic dependency elimination: once a block lost its MR jobs
		// at some CP size, larger CP sizes never reintroduce them (§3.4).
		// The property holds per core count (memory inflation shifts the
		// thresholds).
		prunedForever := make([]bool, hp.NumLeaf)
		if o.Opts.Workers > 1 && mv == nil {
			b, bl := o.optimizeParallel(hp, src, srm, currentCP, cores, &stats, prunedForever, deadline)
			if b != nil {
				best = better(best, b)
			}
			if bl != nil && bestLocal == nil {
				bestLocal = bl
			}
			continue
		}
		est := o.newEstimator()
		for _, rc := range src {
			// At least one configuration is always evaluated, even when
			// the time budget is already exhausted.
			if best != nil && !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			var psp *obs.Span
			if o.Trace.SpansEnabled() {
				psp = o.Trace.Begin(obs.LayerOptimize, "opt.cp-point",
					obs.A("cp", rc.String()), obs.A("cores", cores))
			}
			res, cand := o.evalCP(hp, rc, cores, srm, est, &stats, prunedForever, nil, mv)
			psp.End(obs.A("cost", round6(cand)))
			best = better(best, &Result{Res: res, Cost: cand})
			if currentCP > 0 && rc == currentCP && (bestLocal == nil || cand < bestLocal.Cost) {
				bestLocal = &Result{Res: res, Cost: cand}
			}
		}
		stats.Costings += est.Invocations
	}
	stats.OptTime = time.Since(start)
	if best != nil {
		osp.End(obs.A("best_cp", best.Res.CP.String()), obs.A("best_cost", round6(best.Cost)))
	} else {
		osp.End()
	}
	if m := o.Trace.Metrics(); m != nil {
		m.Add("opt.runs", 1)
		m.Add("opt.block_compilations", int64(stats.BlockCompilations))
		m.Add("opt.costings", int64(stats.Costings))
		m.Add("opt.pruned_blocks", int64(stats.PrunedBlocks))
		m.Add("opt.memo_hits", int64(stats.MemoHits))
		m.SetGauge("opt.grid_cp_points", float64(stats.CPPoints))
		m.SetGauge("opt.grid_mr_points", float64(stats.MRPoints))
	}
	if best != nil {
		best.Stats = stats
	}
	if bestLocal != nil {
		bestLocal.Stats = stats
	}
	return best, bestLocal
}

// evalCP evaluates one CP grid point: baseline compilation at minimal MR
// resources, pruning, per-block MR enumeration with memoization, and a
// final whole-program costing under the memoized vector (Algorithm 1,
// lines 5-17). blockHook, when non-nil, runs the per-block enumeration
// through the parallel task queue. mv, when non-nil, first attempts a full
// replay of the point from the re-costing memo and otherwise records every
// fresh evaluation into it.
func (o *Optimizer) evalCP(hp *hop.Program, rc conf.Bytes, cores int, srm []conf.Bytes,
	est *cost.Estimator, stats *Stats, prunedForever []bool,
	blockHook func(tasks []blockTask) []memoEntry, mv *memoView) (conf.Resources, float64) {

	n := hp.NumLeaf
	minH := o.CC.MinHeap()
	if res, c, ok := o.replayCP(hp, rc, cores, srm, minH, est, stats, prunedForever, mv); ok {
		return res, c
	}
	baseline := lop.Select(hp, o.CC, withCores(conf.NewResources(rc, minH, n), cores))
	stats.BlockCompilations += countBlocks(baseline)

	memo := make([]memoEntry, n)
	leaves := baseline.LeafBlocks()
	var tasks []blockTask
	remaining := 0
	for i, lb := range leaves {
		bc := est.BlockCost(lb, withCores(conf.NewResources(rc, minH, 1), cores))
		memo[i] = memoEntry{ri: minH, cost: bc}
		skip := false
		if !o.Opts.DisablePruning {
			if prunedForever[i] {
				stats.MemoHits++
				skip = true
			} else if pruneBlock(lb) {
				stats.PrunedBlocks++
				if lop.NumMRJobs([]*lop.Block{lb}) == 0 {
					prunedForever[i] = true
				}
				skip = true
			}
		}
		if mv != nil {
			mv.recordBaseline(cores, rc, minH, i, bc, lop.NumMRJobs([]*lop.Block{lb}) > 0, skip)
		}
		if skip {
			continue
		}
		remaining++
		tasks = append(tasks, blockTask{idx: i, hb: lb.HopBlock, rc: rc, cores: cores})
	}
	if remaining > stats.RemainingBlocks {
		stats.RemainingBlocks = remaining
	}

	if blockHook != nil {
		results := blockHook(tasks)
		for k, t := range tasks {
			if results[k].cost < memo[t.idx].cost {
				memo[t.idx] = results[k]
			}
		}
	} else {
		for _, t := range tasks {
			var bsp *obs.Span
			if o.Trace.SpansEnabled() {
				bsp = o.Trace.Begin(obs.LayerOptimize, "opt.enum-block",
					obs.A("block", t.idx), obs.A("cp", t.rc.String()), obs.A("mr_points", len(srm)))
			}
			entry := o.enumBlock(t, srm, est, stats, mv)
			bsp.End(obs.A("best_mr", entry.ri.String()), obs.A("cost", round6(entry.cost)))
			if entry.cost < memo[t.idx].cost {
				memo[t.idx] = entry
			}
		}
	}

	// Whole-program compilation under the memoized vector, taking the
	// control structure (loops, branches) into account.
	resVec := conf.Resources{CP: rc, MR: make([]conf.Bytes, n), CPCores: cores}
	for i := range memo {
		resVec.MR[i] = memo[i].ri
	}
	full := lop.Select(hp, o.CC, resVec)
	stats.BlockCompilations += countBlocks(full)
	pc := est.ProgramCost(full)
	if mv != nil {
		mv.recordProg(cores, rc, vecString(resVec.MR), pc, lop.NumMRJobs(full.Blocks) > 0)
	}
	return resVec, pc
}

// replayCP re-derives one CP grid point entirely from the re-costing memo:
// every baseline cost, pruning verdict, and enumeration cost the fresh path
// would compute must be present and valid under the current cluster, or the
// replay is abandoned (the fresh path then fills the gaps). A successful
// replay skips the baseline compilation and the whole per-block enumeration
// and mirrors the fresh path's memo/pruning bookkeeping, so subsequent
// points see the same prunedForever state either way.
func (o *Optimizer) replayCP(hp *hop.Program, rc conf.Bytes, cores int, srm []conf.Bytes,
	minH conf.Bytes, est *cost.Estimator, stats *Stats, prunedForever []bool,
	mv *memoView) (conf.Resources, float64, bool) {

	if mv == nil {
		return conf.Resources{}, 0, false
	}
	n := hp.NumLeaf
	memo := make([]memoEntry, n)
	remaining := 0
	// Stats mirrored only after the whole point proves replayable.
	memoHits, prunedBlocks := 0, 0
	var newlyForever []int
	for i := 0; i < n; i++ {
		bv, ok := mv.baseline(cores, rc, minH, i)
		if !ok {
			return conf.Resources{}, 0, false
		}
		memo[i] = memoEntry{ri: minH, cost: bv.cost}
		if !o.Opts.DisablePruning {
			if prunedForever[i] {
				memoHits++
				continue
			}
			if bv.pruned {
				prunedBlocks++
				if !bv.mr {
					newlyForever = append(newlyForever, i)
				}
				continue
			}
		}
		best := memoEntry{cost: -1}
		for _, ri := range srm {
			c, ok := mv.blockCost(cores, rc, ri, i)
			if !ok {
				return conf.Resources{}, 0, false
			}
			if best.cost < 0 || c < best.cost {
				best = memoEntry{ri: ri, cost: c}
			}
		}
		remaining++
		if best.cost < memo[i].cost {
			memo[i] = best
		}
	}

	resVec := conf.Resources{CP: rc, MR: make([]conf.Bytes, n), CPCores: cores}
	for i := range memo {
		resVec.MR[i] = memo[i].ri
	}
	vec := vecString(resVec.MR)
	pc, ok := mv.progCost(cores, rc, vec)
	if !ok {
		// The block table replayed but the final costing did not (an
		// MR-bearing vector under a changed cluster): one compile + costing
		// still beats re-enumerating the whole point.
		full := lop.Select(hp, o.CC, resVec)
		stats.BlockCompilations += countBlocks(full)
		pc = est.ProgramCost(full)
		mv.recordProg(cores, rc, vec, pc, lop.NumMRJobs(full.Blocks) > 0)
	}

	stats.MemoHits += memoHits
	stats.PrunedBlocks += prunedBlocks
	for _, i := range newlyForever {
		prunedForever[i] = true
	}
	if remaining > stats.RemainingBlocks {
		stats.RemainingBlocks = remaining
	}
	stats.ReplayedPoints++
	return resVec, pc, true
}

// enumBlock evaluates the second dimension for one block under fixed rc.
// Individual (rc, ri) evaluations answered by the re-costing memo skip the
// per-point compile-and-cost; fresh evaluations are recorded.
func (o *Optimizer) enumBlock(t blockTask, srm []conf.Bytes, est *cost.Estimator, stats *Stats, mv *memoView) memoEntry {
	best := memoEntry{cost: -1}
	for _, ri := range srm {
		c, ok := mv.blockCost(t.cores, t.rc, ri, t.idx)
		if ok {
			stats.ReuseHits++
		} else {
			res := withCores(conf.NewResources(t.rc, ri, 1), t.cores)
			lb := lop.SelectBlock(t.hb, o.CC, res)
			stats.BlockCompilations++
			c = est.BlockCost(lb, res)
			mv.recordBlock(t.cores, t.rc, ri, t.idx, c, lop.NumMRJobs([]*lop.Block{lb}) > 0)
		}
		if best.cost < 0 || c < best.cost {
			best = memoEntry{ri: ri, cost: c}
		}
	}
	return best
}

type blockTask struct {
	idx   int
	hb    *hop.Block
	rc    conf.Bytes
	cores int
}

func withCores(r conf.Resources, cores int) conf.Resources {
	return r.WithCores(cores)
}

// better keeps the candidate with strictly lower cost; ties keep the
// earlier (ascending enumeration => minimal) configuration, implementing
// the min() over arg-min of Definition 1 and preventing over-provisioning.
func better(best, cand *Result) *Result {
	if best == nil || cand.Cost < best.Cost {
		return cand
	}
	return best
}

func countBlocks(p *lop.Plan) int {
	n := 0
	lop.WalkBlocks(p.Blocks, func(*lop.Block) { n++ })
	return n
}

// round6 trims costs to microsecond precision for trace args: full float64
// noise adds nothing for humans and bloats the trace.
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// pruneBlock reports whether a block's cost is guaranteed independent of
// its MR resources (§3.4): either it contains no MR jobs under the
// baseline compilation, or all its MR operations have unknown dimensions
// (no plan change can be costed differently).
func pruneBlock(lb *lop.Block) bool {
	jobs := 0
	allUnknown := true
	for _, in := range lb.Instrs {
		if in.Kind != lop.InstrMR {
			continue
		}
		jobs++
		for _, op := range in.Job.Ops {
			if op.Hop.DimsKnown() {
				allUnknown = false
			}
		}
	}
	if jobs == 0 {
		return true
	}
	return allUnknown
}
