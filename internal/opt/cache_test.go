package opt

import (
	"testing"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/scripts"
)

func testKeyInputs() (string, map[string]interface{}, []InputMeta, conf.Cluster, Options) {
	src := "X = read($X);\nprint(nrow(X));"
	params := map[string]interface{}{"X": "/data/X", "eps": 1e-6}
	inputs := []InputMeta{
		{Path: "/data/X", Rows: 1000, Cols: 10, NNZ: 10000, Format: "binary"},
		{Path: "/data/y", Rows: 1000, Cols: 1, NNZ: 1000, Format: "binary"},
	}
	return src, params, inputs, conf.DefaultCluster(), DefaultOptions()
}

// TestCacheKeySensitivity: the key must change with anything that can
// change an optimization outcome, and must NOT change with knobs that are
// guaranteed result-neutral (worker count, time budget).
func TestCacheKeySensitivity(t *testing.T) {
	src, params, inputs, cc, opts := testKeyInputs()
	base := CacheKey(src, params, inputs, cc, opts)
	if base != CacheKey(src, params, inputs, cc, opts) {
		t.Fatal("key not deterministic")
	}

	mut := func(name string, f func()) string {
		f()
		k := CacheKey(src, params, inputs, cc, opts)
		if k == base {
			t.Errorf("%s: key did not change", name)
		}
		src, params, inputs, cc, opts = testKeyInputs()
		return k
	}
	mut("source", func() { src += "\n# tweak" })
	mut("param value", func() { params["eps"] = 1e-5 })
	mut("param added", func() { params["extra"] = true })
	mut("input rows", func() { inputs[0].Rows++ })
	mut("input nnz", func() { inputs[1].NNZ-- })
	mut("input dropped", func() { inputs = inputs[:1] })
	mut("cluster nodes", func() { cc.Nodes-- })
	mut("cluster max alloc", func() { cc.MaxAlloc /= 2 })
	mut("cluster mem", func() { cc.MemPerNode -= conf.GB })
	mut("grid points", func() { opts.Points = 3 })
	mut("pruning", func() { opts.DisablePruning = true })
	mut("core candidates", func() { opts.CPCoreCandidates = []int{1, 2} })
	mut("cluster load", func() { opts.ClusterLoad = 0.5 })

	// Result-neutral knobs: parallel enumeration returns the same result
	// (TestParallelMatchesSerial) and the time budget only bounds effort.
	opts.Workers = 8
	if CacheKey(src, params, inputs, cc, opts) != base {
		t.Error("worker count changed the key")
	}
	opts = DefaultOptions()
	opts.TimeBudget = time.Second
	if CacheKey(src, params, inputs, cc, opts) != base {
		t.Error("time budget changed the key")
	}

	// Param and input order must not matter (canonicalized by sorting).
	inputs[0], inputs[1] = inputs[1], inputs[0]
	if CacheKey(src, params, inputs, cc, opts) != base {
		t.Error("input order changed the key")
	}
}

// TestCacheKeyCollisions: adversarial params and paths that collided under
// the old newline/colon-delimited %v encoding must produce distinct keys.
// Every field is now length-prefixed and type-tagged, so no byte choice in
// one field can shift another field's boundary.
func TestCacheKeyCollisions(t *testing.T) {
	src, _, inputs, cc, opts := testKeyInputs()
	key := func(params map[string]interface{}, ins []InputMeta) string {
		return CacheKey(src, params, ins, cc, opts)
	}

	cases := []struct {
		name string
		a, b string
	}{
		{
			// Old scheme: both hashed "param:a=1\n".
			"string 1 vs int 1",
			key(map[string]interface{}{"a": "1"}, inputs),
			key(map[string]interface{}{"a": 1}, inputs),
		},
		{
			"int 1 vs float 1",
			key(map[string]interface{}{"a": 1}, inputs),
			key(map[string]interface{}{"a": 1.0}, inputs),
		},
		{
			// Old scheme: both hashed "param:a=true\n".
			"bool true vs string true",
			key(map[string]interface{}{"a": true}, inputs),
			key(map[string]interface{}{"a": "true"}, inputs),
		},
		{
			// Old scheme: the embedded newline forged a second param line.
			"newline injection in value",
			key(map[string]interface{}{"a": "x\nparam:b=1"}, inputs),
			key(map[string]interface{}{"a": "x", "b": 1}, inputs),
		},
		{
			// Old scheme: "param:a=b=c\n" was ambiguous about the '=' split.
			"delimiter in name vs value",
			key(map[string]interface{}{"a=b": "c"}, inputs),
			key(map[string]interface{}{"a": "b=c"}, inputs),
		},
		{
			// Old scheme: a path containing "\nin:..." forged a second
			// input-meta line.
			"newline injection in path",
			key(nil, []InputMeta{{Path: "/a\nin:/b:1x1:1:dense", Rows: 1, Cols: 1, NNZ: 1, Format: "dense"}}),
			key(nil, []InputMeta{
				{Path: "/a", Rows: 1, Cols: 1, NNZ: 1, Format: "dense"},
				{Path: "/b", Rows: 1, Cols: 1, NNZ: 1, Format: "dense"},
			}),
		},
		{
			// Old scheme: "in:/x:1:2x3..." — a colon in the path shifted
			// every later field.
			"colon in path shifts dims",
			key(nil, []InputMeta{{Path: "/x:1", Rows: 2, Cols: 3, NNZ: 1, Format: "dense"}}),
			key(nil, []InputMeta{{Path: "/x", Rows: 1, Cols: 2, NNZ: 1, Format: "3:dense"}}),
		},
	}
	for _, c := range cases {
		if c.a == c.b {
			t.Errorf("%s: keys collide", c.name)
		}
	}
}

// TestCacheLRU: capacity bounds entries, lookups refresh recency, and the
// least recently used entry is the one evicted.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	r := conf.NewResources(conf.GB, 512*conf.MB, 2)
	c.Insert("a", r, 1)
	c.Insert("b", r, 2)
	if _, _, ok := c.Lookup("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Insert("c", r, 3) // evicts b
	if _, _, ok := c.Lookup("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.Lookup("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, cost, ok := c.Lookup("c"); !ok || cost != 3 {
		t.Errorf("c lookup: ok=%v cost=%v", ok, cost)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Insertions != 3 {
		t.Errorf("stats: %+v", st)
	}
	// Hits: a, a, c = 3; misses: initial a+b+c inserts don't count, but the
	// failed b lookup does.
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hit/miss accounting: %+v", st)
	}
	if hr := st.HitRate(); hr <= 0.74 || hr >= 0.76 {
		t.Errorf("hit rate %v, want 0.75", hr)
	}
}

// TestCacheCloneIsolation: mutating a returned or inserted Resources value
// must not corrupt the cached copy.
func TestCacheCloneIsolation(t *testing.T) {
	c := NewCache(4)
	r := conf.NewResources(conf.GB, 512*conf.MB, 2)
	c.Insert("k", r, 1)
	r.MR[0] = 0 // caller mutates after insert

	got, _, ok := c.Lookup("k")
	if !ok {
		t.Fatal("missing")
	}
	if got.MR[0] != 512*conf.MB {
		t.Error("insert did not clone: caller mutation visible")
	}
	got.MR[1] = 0 // caller mutates the returned value
	again, _, _ := c.Lookup("k")
	if again.MR[1] != 512*conf.MB {
		t.Error("lookup did not clone: mutation of a returned value visible")
	}
}

// TestCacheNilAndDefaults: a nil cache is a valid no-op sink, and
// non-positive capacities select the default.
func TestCacheNilAndDefaults(t *testing.T) {
	var c *Cache
	if _, _, ok := c.Lookup("x"); ok {
		t.Error("nil cache hit")
	}
	c.Insert("x", conf.Resources{}, 1) // must not panic
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Error("nil cache not empty")
	}
	if got := NewCache(0).capacity; got != DefaultCacheEntries {
		t.Errorf("default capacity %d, want %d", got, DefaultCacheEntries)
	}
}

// TestOptimizeCachedHitEqualsCold: a cache hit returns exactly the cold
// optimization outcome for a real program.
func TestOptimizeCachedHitEqualsCold(t *testing.T) {
	fs := hdfs.New()
	datagen.Describe(fs, datagen.New("XS", 1000, 1.0))
	spec := scripts.LinregDS()
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	cc := conf.DefaultCluster()
	o := New(cc)
	o.Opts.Points = 5

	cold := o.Optimize(hp)
	cache := NewCache(4)
	key := "some-key"
	miss, hit := o.OptimizeCached(hp, cache, key)
	if hit {
		t.Fatal("first call must miss")
	}
	if miss.Cost != cold.Cost || miss.Res.String() != cold.Res.String() {
		t.Fatalf("miss result differs from plain Optimize: %v/%v vs %v/%v",
			miss.Res, miss.Cost, cold.Res, cold.Cost)
	}
	got, hit := o.OptimizeCached(hp, cache, key)
	if !hit {
		t.Fatal("second call must hit")
	}
	if got.Cost != cold.Cost {
		t.Errorf("hit cost %v != cold cost %v", got.Cost, cold.Cost)
	}
	if got.Res.CP != cold.Res.CP || got.Res.CPCores != cold.Res.CPCores || len(got.Res.MR) != len(cold.Res.MR) {
		t.Fatalf("hit res %v != cold res %v", got.Res, cold.Res)
	}
	for i := range got.Res.MR {
		if got.Res.MR[i] != cold.Res.MR[i] {
			t.Errorf("hit MR[%d] %v != cold %v", i, got.Res.MR[i], cold.Res.MR[i])
		}
	}
}
