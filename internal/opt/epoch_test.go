package opt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/scripts"
)

// TestDetectEpochs: the mini-batch family's epoch/batch structure is
// recovered from the compiled hop program via KnownIters, and the batch
// one-shot and while-loop scripts report no epoch plan.
func TestDetectEpochs(t *testing.T) {
	for _, spec := range scripts.Minibatch() {
		hp := compileTestProgram(t, spec)
		plan, ok := DetectEpochs(hp)
		if !ok {
			t.Fatalf("%s: no epoch plan detected", spec.Name)
		}
		wantE := int(spec.Params["epochs"].(float64))
		wantB := int(spec.Params["batches"].(float64))
		if plan.Epochs != wantE || plan.Batches != wantB {
			t.Errorf("%s: plan %+v, want epochs=%d batches=%d", spec.Name, plan, wantE, wantB)
		}
		if plan.Boundaries() != wantE*wantB {
			t.Errorf("%s: boundaries %d, want %d", spec.Name, plan.Boundaries(), wantE*wantB)
		}
	}
	for _, spec := range []scripts.Spec{scripts.LinregDS(), scripts.LinregCG()} {
		hp := compileTestProgram(t, spec)
		if plan, ok := DetectEpochs(hp); ok {
			t.Errorf("%s: unexpected epoch plan %+v", spec.Name, plan)
		}
	}
	if _, ok := DetectEpochs(nil); ok {
		t.Error("nil program produced an epoch plan")
	}
}

// TestEpochWindowMemoReuse: consecutive per-epoch §5 re-optimizations of
// an iterative program under an unchanged cluster replay the memo in
// full — zero fresh cost-model invocations and zero block compilations —
// and a width clamp between windows invalidates exactly the entries the
// clamp affects: the clamped search still equals a from-scratch search,
// and once re-warmed, subsequent windows under the clamped cluster are
// again full replays.
func TestEpochWindowMemoReuse(t *testing.T) {
	hp := compileTestProgram(t, scripts.MinibatchLR())
	cc := conf.DefaultCluster()
	o := New(cc)
	o.Opts.Points = 5

	m := NewMemo()
	first := o.OptimizeMemo(hp, m) // epoch 1: cold, records everything
	if first.Stats.Costings == 0 {
		t.Fatal("cold epoch window did no cost evaluations")
	}

	// Epoch windows 2..4: unchanged cluster, the whole grid replays.
	for epoch := 2; epoch <= 4; epoch++ {
		r := o.OptimizeMemo(hp, m)
		sameResult(t, "steady epoch window", r, first)
		if r.Stats.Costings != 0 {
			t.Errorf("epoch %d: %d fresh cost evaluations, want 0", epoch, r.Stats.Costings)
		}
		if r.Stats.BlockCompilations != 0 {
			t.Errorf("epoch %d: %d block compilations, want 0", epoch, r.Stats.BlockCompilations)
		}
		if r.Stats.ReplayedPoints != r.Stats.CPPoints {
			t.Errorf("epoch %d: replayed %d of %d points", epoch, r.Stats.ReplayedPoints, r.Stats.CPPoints)
		}
	}

	// A shrink clamps the width view between epochs. The memo must not
	// leak stale full-width entries into the clamped search: it has to
	// equal a from-scratch search under the clamped cluster.
	clamped := WidthClamped(cc, cc.MaxAlloc/4)
	oc := New(clamped)
	oc.Opts.Points = 5
	fresh := oc.Optimize(hp)
	got := oc.OptimizeMemo(hp, m)
	sameResult(t, "post-clamp window", got, fresh)

	// Once the clamped window has been recorded, the next epoch under the
	// clamped cluster is a full replay again.
	again := oc.OptimizeMemo(hp, m)
	sameResult(t, "re-warmed clamped window", again, fresh)
	if again.Stats.Costings != 0 {
		t.Errorf("re-warmed clamped window: %d fresh cost evaluations, want 0", again.Stats.Costings)
	}
	if again.Stats.ReplayedPoints != again.Stats.CPPoints {
		t.Errorf("re-warmed clamped window: replayed %d of %d points",
			again.Stats.ReplayedPoints, again.Stats.CPPoints)
	}
}
