package opt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/lop"
	"elasticml/internal/scripts"
)

// TestCoreEnumerationNeverHurts: adding the core dimension can only find
// equal-or-better configurations.
func TestCoreEnumerationNeverHurts(t *testing.T) {
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	cc := conf.DefaultCluster()
	single := New(cc)
	single.Opts.Points = 7
	a := single.Optimize(hp)
	multi := New(cc)
	multi.Opts.Points = 7
	multi.Opts.CPCoreCandidates = []int{1, 4, 12}
	b := multi.Optimize(hp)
	if b.Cost > a.Cost+1e-9 {
		t.Errorf("core enumeration worsened cost: %.2f > %.2f", b.Cost, a.Cost)
	}
}

// TestMultiCoreCPSpeedsUpComputeBound: a compute-bound single-node plan
// gets faster with more CP cores in both model and plan selection.
func TestMultiCoreCPSpeedsUpComputeBound(t *testing.T) {
	hp := compileHP(t, scripts.LinregDS(), 1_000_000, 1000, 1.0)
	cc := conf.DefaultCluster()
	est := cost.NewEstimator(cc)
	res1 := conf.NewResources(conf.BytesOfGB(53.3), 2*conf.GB, hp.NumLeaf)
	res12 := res1.Clone()
	res12.CPCores = 12
	c1 := est.ProgramCost(lop.Select(hp, cc, res1))
	c12 := est.ProgramCost(lop.Select(hp, cc, res12))
	if c12 >= c1 {
		t.Errorf("12-core CP (%.1fs) should beat 1-core (%.1fs) on TSMM-bound DS", c12, c1)
	}
	// The speedup is bounded by Amdahl (IO does not parallelize here).
	if c12 < c1/12 {
		t.Errorf("speedup %.1fx exceeds core count", c1/c12)
	}
}

// TestMemoryInflationShiftsOperatorSelection: with multi-threading, an
// operation that barely fits the single-threaded budget falls back to MR.
func TestMemoryInflationShiftsOperatorSelection(t *testing.T) {
	hp := compileHP(t, scripts.LinregCG(), 1_000_000, 1000, 1.0) // X = 8e9
	cc := conf.DefaultCluster()
	// 10.7GB heap: budget 7.49GiB barely covers X (7.45GiB) single threaded.
	res := conf.NewResources(conf.BytesOfGB(10.7), 2*conf.GB, hp.NumLeaf)
	singleJobs := lop.NumMRJobs(lop.Select(hp, cc, res).Blocks)
	res12 := res.Clone()
	res12.CPCores = 12
	multiJobs := lop.NumMRJobs(lop.Select(hp, cc, res12).Blocks)
	if multiJobs <= singleJobs {
		t.Errorf("memory inflation should push borderline ops to MR: %d <= %d jobs",
			multiJobs, singleJobs)
	}
}

// TestCoresDefaultSingleThreaded: the zero value behaves like the paper's
// single-threaded CP.
func TestCoresDefaultSingleThreaded(t *testing.T) {
	r := conf.Resources{CP: conf.GB}
	if r.Cores() != 1 {
		t.Errorf("Cores() = %d, want 1", r.Cores())
	}
	r.CPCores = 8
	c := r.Clone()
	if c.Cores() != 8 {
		t.Errorf("Clone dropped CPCores: %d", c.Cores())
	}
}
