package opt

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
)

// The shared plan cache memoizes optimization outcomes across tenants of a
// multi-program workload: repeated submissions of the same script over the
// same inputs under the same cluster view skip the grid search entirely.
//
// Correctness contract: a cache hit must be indistinguishable from a fresh
// compile-and-optimize. The cache therefore stores only the *outcome* of
// the search — the resource vector R*_P and its costed estimate — never
// compiled plan structures (HOP/LOP DAGs are mutated by dynamic
// recompilation and runtime back-patching, so sharing them across tenants
// would leak state). Callers recompile from source and re-select the plan
// under the cached vector, which is cheap and byte-identical to the cold
// path by construction; the cache key must capture every input the grid
// search depends on (CacheKey below), so a stale or mismatched entry is
// impossible as long as keys are built from the same components.

// InputMeta identifies one input matrix of a program for cache keying:
// its dimensions and sparsity are compile-time metadata that change memory
// estimates and therefore optimization outcomes.
type InputMeta struct {
	Path       string
	Rows, Cols int64
	NNZ        int64
	Format     string
}

// keyHasher bundles a reusable SHA-256 state with a staging buffer and the
// sort scratch CacheKey needs. Admission derives a key per lookup, so the
// hasher, buffer, and scratch slices are pooled; fields are staged into buf
// and written to the hash in one batch instead of one Fprintf per field.
type keyHasher struct {
	h     hash.Hash
	buf   []byte
	sum   [sha256.Size]byte
	names []string
	metas []InputMeta
}

var keyHasherPool = sync.Pool{
	New: func() interface{} {
		return &keyHasher{h: sha256.New(), buf: make([]byte, 0, 1024)}
	},
}

// The field encoders are collision-free by construction: every variable-
// length payload is length-prefixed (uvarint), every field carries a
// one-byte type tag, and numeric payloads are fixed-width or varint-coded.
// No choice of adversarial bytes in one field can shift the boundary of
// another, unlike the old newline/colon-delimited %v encoding.

func (k *keyHasher) tag(t byte) { k.buf = append(k.buf, t) }

func (k *keyHasher) str(s string) {
	k.buf = binary.AppendUvarint(k.buf, uint64(len(s)))
	k.buf = append(k.buf, s...)
}

func (k *keyHasher) i64(v int64) { k.buf = binary.AppendVarint(k.buf, v) }

func (k *keyHasher) f64(v float64) {
	k.buf = binary.BigEndian.AppendUint64(k.buf, math.Float64bits(v))
}

func (k *keyHasher) boolByte(v bool) {
	if v {
		k.buf = append(k.buf, 1)
	} else {
		k.buf = append(k.buf, 0)
	}
}

// param encodes one parameter binding with a type tag, so a string "1"
// and an int 1 hash differently.
func (k *keyHasher) param(name string, v interface{}) {
	k.tag('p')
	k.str(name)
	switch x := v.(type) {
	case string:
		k.tag('s')
		k.str(x)
	case int:
		k.tag('i')
		k.i64(int64(x))
	case int64:
		k.tag('i')
		k.i64(x)
	case float64:
		k.tag('f')
		k.f64(x)
	case bool:
		k.tag('b')
		k.boolByte(x)
	default:
		// Fallback for exotic types: tag with the dynamic Go type name so
		// different types with the same formatting cannot collide.
		k.tag('v')
		k.str(fmt.Sprintf("%T", v))
		k.str(fmt.Sprintf("%v", v))
	}
}

// options encodes the result-relevant optimizer options. Workers and
// TimeBudget are deliberately excluded: the task-parallel optimizer returns
// the same result as the sequential one, and the service never sets a time
// budget (it would make outcomes wall-clock dependent).
func (k *keyHasher) options(opts Options) {
	k.tag('O')
	k.i64(int64(opts.GridCP))
	k.i64(int64(opts.GridMR))
	k.i64(int64(opts.Points))
	k.boolByte(opts.DisablePruning)
	k.i64(int64(len(opts.CPCoreCandidates)))
	for _, c := range opts.CPCoreCandidates {
		k.i64(int64(c))
	}
	k.f64(opts.ClusterLoad)
}

// problem encodes the cluster-independent half of the key: source,
// parameter bindings (sorted), and input metadata (sorted by path).
func (k *keyHasher) problem(source string, params map[string]interface{}, inputs []InputMeta) {
	k.tag('S')
	k.str(source)

	k.names = k.names[:0]
	for name := range params {
		k.names = append(k.names, name)
	}
	sort.Strings(k.names)
	for _, name := range k.names {
		k.param(name, params[name])
	}

	k.metas = append(k.metas[:0], inputs...)
	sort.Slice(k.metas, func(i, j int) bool { return k.metas[i].Path < k.metas[j].Path })
	for _, m := range k.metas {
		k.tag('I')
		k.str(m.Path)
		k.i64(m.Rows)
		k.i64(m.Cols)
		k.i64(m.NNZ)
		k.str(m.Format)
	}
}

// cluster encodes every cluster dimension the grid search depends on.
func (k *keyHasher) cluster(cc conf.Cluster) {
	k.tag('C')
	k.i64(int64(cc.Nodes))
	k.i64(int64(cc.CoresPerNode))
	k.i64(int64(cc.MemPerNode))
	k.i64(int64(cc.MinAlloc))
	k.i64(int64(cc.MaxAlloc))
	k.i64(int64(cc.HDFSBlockSize))
	k.i64(int64(cc.Reducers))
	k.f64(cc.ContainerOverhead)
	k.f64(cc.CPBudgetRatio)
}

// finish hashes the staged buffer in one write and returns the hex digest.
func (k *keyHasher) finish() string {
	k.h.Reset()
	k.h.Write(k.buf)
	k.h.Sum(k.sum[:0])
	return hex.EncodeToString(k.sum[:])
}

// CacheKey derives the plan-cache key for one optimization problem: the
// script source, its parameter bindings, the input matrix metadata, the
// cluster configuration (a node failure or a free-slice clamp changes the
// key, invalidating entries computed for the old cluster state), and the
// result-relevant optimizer options. Every field is length-prefixed and
// type-tagged (see keyHasher), so adversarial values — a string "1" vs an
// int 1, delimiter bytes inside params or paths — cannot collide.
func CacheKey(source string, params map[string]interface{}, inputs []InputMeta, cc conf.Cluster, opts Options) string {
	k := keyHasherPool.Get().(*keyHasher)
	k.buf = k.buf[:0]
	k.problem(source, params, inputs)
	k.cluster(cc)
	k.options(opts)
	key := k.finish()
	keyHasherPool.Put(k)
	return key
}

// MemoKey derives the re-costing memo key for one optimization problem:
// CacheKey minus the cluster dimensions. A program keeps one memo across
// cluster states — that is the point: entries record which cluster they
// were computed under and are revalidated per lookup (see Memo).
func MemoKey(source string, params map[string]interface{}, inputs []InputMeta, opts Options) string {
	k := keyHasherPool.Get().(*keyHasher)
	k.buf = k.buf[:0]
	k.problem(source, params, inputs)
	k.options(opts)
	key := k.finish()
	keyHasherPool.Put(k)
	return key
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Insertions int64 `json:"insertions"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PlanCache is the behavioral contract shared by the single-lock Cache and
// the lock-striped ShardedCache: outcome-only LRU memoization of grid
// searches with hit/miss accounting. A typed-nil *Cache satisfies it as a
// no-op (all Cache methods are nil-receiver safe), which is how the
// workload service represents "caching disabled".
type PlanCache interface {
	Lookup(key string) (conf.Resources, float64, bool)
	Insert(key string, res conf.Resources, cost float64)
	Len() int
	Stats() CacheStats
}

// cacheItem is one LRU entry.
type cacheItem struct {
	key  string
	res  conf.Resources
	cost float64
}

// Cache is a bounded LRU plan cache, safe for concurrent use. Entries are
// isolated: lookups return deep copies, so callers can mutate the returned
// resource vector without corrupting later hits.
type Cache struct {
	mu       sync.Mutex
	capacity int
	index    map[string]*list.Element
	lru      list.List // front = most recently used
	stats    CacheStats
}

// DefaultCacheEntries is the default cache capacity.
const DefaultCacheEntries = 64

// NewCache returns a cache holding at most capacity entries (capacity <= 0
// selects DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{capacity: capacity, index: make(map[string]*list.Element)}
}

// Lookup returns the cached optimization outcome for the key, counting a
// hit or miss and refreshing recency on hit.
func (c *Cache) Lookup(key string) (conf.Resources, float64, bool) {
	if c == nil {
		return conf.Resources{}, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return conf.Resources{}, 0, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	it := el.Value.(*cacheItem)
	return it.res.Clone(), it.cost, true
}

// Insert stores (or refreshes) the outcome for the key, evicting the least
// recently used entry when over capacity.
func (c *Cache) Insert(key string, res conf.Resources, cost float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Insertions++
	if el, ok := c.index[key]; ok {
		it := el.Value.(*cacheItem)
		it.res = res.Clone()
		it.cost = cost
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&cacheItem{key: key, res: res.Clone(), cost: cost})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.index, back.Value.(*cacheItem).key)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// OptimizeCached solves the resource allocation problem through the
// cache: a hit returns the memoized configuration and cost without
// touching the grid; a miss runs the full search and memoizes the
// outcome. The caller is responsible for deriving the key with CacheKey
// from the same program, cluster, and options it passes here. A nil cache
// degenerates to Optimize.
func (o *Optimizer) OptimizeCached(hp *hop.Program, c PlanCache, key string) (*Result, bool) {
	if c != nil {
		if res, cost, ok := c.Lookup(key); ok {
			return &Result{Res: res, Cost: cost}, true
		}
	}
	r := o.Optimize(hp)
	if r != nil && c != nil {
		c.Insert(key, r.Res, r.Cost)
	}
	return r, false
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}
