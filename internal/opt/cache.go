package opt

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
)

// The shared plan cache memoizes optimization outcomes across tenants of a
// multi-program workload: repeated submissions of the same script over the
// same inputs under the same cluster view skip the grid search entirely.
//
// Correctness contract: a cache hit must be indistinguishable from a fresh
// compile-and-optimize. The cache therefore stores only the *outcome* of
// the search — the resource vector R*_P and its costed estimate — never
// compiled plan structures (HOP/LOP DAGs are mutated by dynamic
// recompilation and runtime back-patching, so sharing them across tenants
// would leak state). Callers recompile from source and re-select the plan
// under the cached vector, which is cheap and byte-identical to the cold
// path by construction; the cache key must capture every input the grid
// search depends on (CacheKey below), so a stale or mismatched entry is
// impossible as long as keys are built from the same components.

// InputMeta identifies one input matrix of a program for cache keying:
// its dimensions and sparsity are compile-time metadata that change memory
// estimates and therefore optimization outcomes.
type InputMeta struct {
	Path       string
	Rows, Cols int64
	NNZ        int64
	Format     string
}

// CacheKey derives the plan-cache key for one optimization problem: the
// script source, its parameter bindings, the input matrix metadata, the
// cluster configuration (a node failure or a free-slice clamp changes the
// key, invalidating entries computed for the old cluster state), and the
// optimizer options. Workers and TimeBudget are deliberately excluded:
// the task-parallel optimizer returns the same result as the sequential
// one, and the service never sets a time budget (it would make outcomes
// wall-clock dependent).
func CacheKey(source string, params map[string]interface{}, inputs []InputMeta, cc conf.Cluster, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "src:%d:%s\n", len(source), source)

	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(h, "param:%s=%v\n", k, params[k])
	}

	metas := append([]InputMeta(nil), inputs...)
	sort.Slice(metas, func(i, j int) bool { return metas[i].Path < metas[j].Path })
	for _, m := range metas {
		fmt.Fprintf(h, "in:%s:%dx%d:%d:%s\n", m.Path, m.Rows, m.Cols, m.NNZ, m.Format)
	}

	fmt.Fprintf(h, "cc:%d:%d:%d:%d:%d:%d:%d:%g:%g\n",
		cc.Nodes, cc.CoresPerNode, cc.MemPerNode, cc.MinAlloc, cc.MaxAlloc,
		cc.HDFSBlockSize, cc.Reducers, cc.ContainerOverhead, cc.CPBudgetRatio)
	fmt.Fprintf(h, "opt:%d:%d:%d:%t:%v:%g\n",
		opts.GridCP, opts.GridMR, opts.Points, opts.DisablePruning,
		opts.CPCoreCandidates, opts.ClusterLoad)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Insertions int64 `json:"insertions"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheItem is one LRU entry.
type cacheItem struct {
	key  string
	res  conf.Resources
	cost float64
}

// Cache is a bounded LRU plan cache, safe for concurrent use. Entries are
// isolated: lookups return deep copies, so callers can mutate the returned
// resource vector without corrupting later hits.
type Cache struct {
	mu       sync.Mutex
	capacity int
	index    map[string]*list.Element
	lru      list.List // front = most recently used
	stats    CacheStats
}

// DefaultCacheEntries is the default cache capacity.
const DefaultCacheEntries = 64

// NewCache returns a cache holding at most capacity entries (capacity <= 0
// selects DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{capacity: capacity, index: make(map[string]*list.Element)}
}

// Lookup returns the cached optimization outcome for the key, counting a
// hit or miss and refreshing recency on hit.
func (c *Cache) Lookup(key string) (conf.Resources, float64, bool) {
	if c == nil {
		return conf.Resources{}, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return conf.Resources{}, 0, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	it := el.Value.(*cacheItem)
	return it.res.Clone(), it.cost, true
}

// Insert stores (or refreshes) the outcome for the key, evicting the least
// recently used entry when over capacity.
func (c *Cache) Insert(key string, res conf.Resources, cost float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Insertions++
	if el, ok := c.index[key]; ok {
		it := el.Value.(*cacheItem)
		it.res = res.Clone()
		it.cost = cost
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&cacheItem{key: key, res: res.Clone(), cost: cost})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		delete(c.index, back.Value.(*cacheItem).key)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// OptimizeCached solves the resource allocation problem through the
// cache: a hit returns the memoized configuration and cost without
// touching the grid; a miss runs the full search and memoizes the
// outcome. The caller is responsible for deriving the key with CacheKey
// from the same program, cluster, and options it passes here. A nil cache
// degenerates to Optimize.
func (o *Optimizer) OptimizeCached(hp *hop.Program, c *Cache, key string) (*Result, bool) {
	if res, cost, ok := c.Lookup(key); ok {
		return &Result{Res: res, Cost: cost}, true
	}
	r := o.Optimize(hp)
	if r != nil && c != nil {
		c.Insert(key, r.Res, r.Cost)
	}
	return r, false
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}
