package cost

import (
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/mr"
	"elasticml/internal/perf"
)

// Estimator computes time estimates C(P, R_P, cc) for runtime plans.
type Estimator struct {
	PM perf.Model
	CC conf.Cluster
	// DefaultIters is the constant trip count assumed for loops with
	// unknown iteration counts ("a constant which at least reflects that
	// the body is executed multiple times", paper §3.1).
	DefaultIters int64
	// EvictionWeight scales the IO charged for buffer-pool evictions. The
	// execution simulator uses 1.0 (full cost); the optimizer's cost model
	// uses a partial weight — the paper notes evictions are "only
	// partially considered by our cost model", a documented source of
	// slight suboptimality on sparse data.
	EvictionWeight float64
	// AvailableFraction models cluster load for utilization-based
	// adaptation (§6): the fraction of worker nodes effectively available
	// to this application's MR jobs. 0 (zero value) and 1 both mean an
	// idle cluster.
	AvailableFraction float64
	// Invocations counts cost-model calls for the optimization-overhead
	// statistics (Table 3).
	Invocations int
	// Hook, when set, receives every per-instruction charge made through
	// ProgramCost/BlockCost, keyed by the instruction label — the
	// predicted side of the predicted-vs-simulated per-operator cost
	// table. Left nil on the optimizer's hot path.
	Hook func(label string, seconds float64)
}

// EffectiveCluster returns the cluster configuration with the node count
// shrunk by the available fraction — the cluster the MR phase model is
// charged against. Exported so the execution simulator can feed the same
// cluster view into the fault-aware task-attempt model.
func (e *Estimator) EffectiveCluster() conf.Cluster { return e.effectiveCluster() }

// effectiveCluster shrinks the node count by the available fraction.
func (e *Estimator) effectiveCluster() conf.Cluster {
	cc := e.CC
	if e.AvailableFraction > 0 && e.AvailableFraction < 1 {
		n := int(float64(cc.Nodes) * e.AvailableFraction)
		if n < 1 {
			n = 1
		}
		cc.Nodes = n
	}
	return cc
}

// NewEstimator returns an estimator with the default performance model.
func NewEstimator(cc conf.Cluster) *Estimator {
	// DefaultIters matches the evaluation workloads' convergence caps
	// (maxi=5); the paper uses "a constant which at least reflects that
	// the body is executed multiple times".
	return &Estimator{PM: perf.Default(), CC: cc, DefaultIters: 5, EvictionWeight: PartialEvictionWeight}
}

// PartialEvictionWeight is the optimizer cost model's under-accounting of
// eviction IO (full weight is 1.0).
const PartialEvictionWeight = 0.5

// ProgramCost estimates the end-to-end execution time of a plan.
func (e *Estimator) ProgramCost(p *lop.Plan) float64 {
	e.Invocations++
	state := e.newState(p.Resources)
	return e.blocks(p.Blocks, p.Resources, state, p.Resources.Cores())
}

// BlockCost estimates the cost of a single block under the given resource
// vector with a cold variable state (used by the per-block memoization of
// the enumeration algorithm).
func (e *Estimator) BlockCost(b *lop.Block, res conf.Resources) float64 {
	e.Invocations++
	state := e.newState(res)
	return e.block(b, res, state, res.Cores())
}

func (e *Estimator) newState(res conf.Resources) *VarState {
	if e.EvictionWeight <= 0 {
		return NewVarState(0)
	}
	return NewVarState(e.CC.OpBudget(res.CP))
}

func (e *Estimator) blocks(blocks []*lop.Block, res conf.Resources, state *VarState, cpCores int) float64 {
	var t float64
	for _, b := range blocks {
		t += e.block(b, res, state, cpCores)
	}
	return t
}

func (e *Estimator) block(b *lop.Block, res conf.Resources, state *VarState, cpCores int) float64 {
	switch b.Kind {
	case dml.GenericBlock:
		return e.generic(b, res, state, cpCores)
	case dml.IfBlockKind:
		// Weighted sum of branch aggregates.
		thenState := state.Clone()
		tThen := e.blocks(b.Then, res, thenState, cpCores)
		tElse := e.blocks(b.Else, res, state.Clone(), cpCores)
		// Continue with the then-branch state (conservative single path).
		*state = *thenState
		return 0.5*tThen + 0.5*tElse
	default: // while / for
		iters := b.KnownIters
		if iters == hop.Unknown || iters <= 0 {
			iters = e.DefaultIters
		}
		bodyCores := cpCores
		dop := 1
		if b.Parallel {
			// parfor: iterations run on concurrent single-threaded
			// workers; wall time divides by the worker count (extended
			// cost estimation for task-parallel programs, §8).
			dop = cpCores
			if int64(dop) > iters {
				dop = int(iters)
			}
			if dop < 1 {
				dop = 1
			}
			bodyCores = 1
		}
		// First iteration warms the buffer pool (inputs read once); the
		// remaining iterations run against the steady state.
		first := e.blocks(b.Body, res, state, bodyCores)
		total := first
		if iters > 1 {
			steady := e.blocks(b.Body, res, state, bodyCores)
			total = first + float64(iters-1)*steady
		}
		return total / float64(dop)
	}
}

// generic charges the instruction sequence of a generic block.
func (e *Estimator) generic(b *lop.Block, res conf.Resources, state *VarState, cpCores int) float64 {
	evict0 := state.evictIO
	uses := BlockUses(b)
	inJob := map[int64]*lop.MRJob{}
	for _, in := range b.Instrs {
		if in.Kind == lop.InstrMR {
			for _, op := range in.Job.Ops {
				inJob[op.Hop.ID] = in.Job
			}
		}
	}
	var t float64
	for _, in := range b.Instrs {
		var dt float64
		if in.Kind == lop.InstrCP {
			dt = e.CPInstrTime(in.Hop, state, inJob, cpCores)
		} else {
			dt = e.MRJobTime(in.Job, b, res, state, uses, inJob)
		}
		if e.Hook != nil {
			e.Hook(in.Label(), dt)
		}
		t += dt
	}
	if e.EvictionWeight > 0 {
		// Evicted dirty pages are written out and re-read on next use; the
		// re-read is already charged by EnsureInMemory, the write here.
		t += e.PM.WriteTime(state.evictIO-evict0, 1) * e.PM.EvictionPenalty * e.EvictionWeight
	}
	return t
}

// CPInstrTime charges one in-memory operation: read IO for inputs not yet
// CP-resident, single-threaded compute, and write IO for persistent writes.
// It is exported for reuse by the execution simulator, which interleaves
// charging with actual interpretation.
func (e *Estimator) CPInstrTime(h *hop.Hop, state *VarState, inJob map[int64]*lop.MRJob, cores int) float64 {
	// Transient writes are logical bindings: no IO, no compute. Reads stay
	// lazy — the first operation that actually consumes the data pays.
	if h.Kind == hop.KindTWrite {
		src := h.Inputs[0]
		if src.DataType == hop.Matrix {
			if inJob[src.ID] != nil {
				state.PutOnHDFS("$"+h.Name, trackedSize(src))
			} else if key, ok := keyOf(src); ok {
				state.Alias("$"+h.Name, key, trackedSize(src))
			} else {
				// CP-computed intermediate: dirty in-memory value.
				state.PutInMemory("$"+h.Name, trackedSize(src))
			}
		}
		return 0
	}
	var t float64
	for _, inp := range h.Inputs {
		if inp == nil || inp.DataType != hop.Matrix {
			continue
		}
		key, tracked := keyOf(inp)
		if !tracked {
			if inJob[inp.ID] != nil {
				key = jobOutKey(inp)
			} else {
				continue // CP intermediate, already in memory
			}
		}
		readBytes := state.EnsureInMemory(key, trackedSize(inp))
		t += e.PM.ReadTime(readBytes, 1)
	}
	// The CP container runs on one worker node: a degree of parallelism
	// above the node's physical cores cannot speed up compute (it only
	// over-subscribes the CPU), so the charged rate saturates there.
	if e.CC.CoresPerNode > 0 && cores > e.CC.CoresPerNode {
		cores = e.CC.CoresPerNode
	}
	t += e.PM.ComputeTime(Flops(h), cores)
	if h.Kind == hop.KindWrite {
		src := h.Inputs[0]
		if src.DataType == hop.Matrix && inJob[src.ID] == nil {
			// Values already HDFS-resident are renamed, not rewritten.
			key, tracked := keyOf(src)
			if !tracked || state.InMemory(key) {
				t += e.PM.WriteTime(trackedSize(src), 1)
			}
		}
	}
	return t
}

// MRJobTime assembles the job specification and charges the MR phase model.
func (e *Estimator) MRJobTime(job *lop.MRJob, b *lop.Block, res conf.Resources,
	state *VarState, uses map[int64][]*hop.Hop, inJob map[int64]*lop.MRJob) float64 {
	spec, taskHeap := e.MRJobSpec(job, b, res, state, uses, inJob)
	bd := mr.EstimateTime(e.PM, e.effectiveCluster(), spec, taskHeap, res.CP)
	return bd.Total()
}

// MRJobSpec assembles the analytic job specification for one MR-job
// instruction, applying the variable-state transitions (dirty-variable
// exports, HDFS materialization of consumed outputs) as a side effect. It
// is exported so the execution simulator can route the same specification
// through the fault-aware task-attempt model (mr.EstimateTimeUnderFaults)
// instead of the plain phase model.
func (e *Estimator) MRJobSpec(job *lop.MRJob, b *lop.Block, res conf.Resources,
	state *VarState, uses map[int64][]*hop.Hop, inJob map[int64]*lop.MRJob) (mr.JobSpec, conf.Bytes) {
	spec := mr.JobSpec{Name: job.Name(), NumReducers: 0}
	taskHeap := res.MRFor(b.Index)

	// Scanned inputs: export dirty CP variables, then stream from HDFS.
	maxSplits := 1
	for _, si := range job.ScanInputs {
		key, tracked := keyOf(si)
		if !tracked {
			if inJob[si.ID] != nil && inJob[si.ID] != job {
				key = jobOutKey(si)
			} else {
				continue
			}
		}
		size := state.Size(key, trackedSize(si))
		spec.ExportInput += state.ExportBytes(key, size)
		spec.MapInput += size
		if n := splitsOf(size, e.CC.HDFSBlockSize); n > maxSplits {
			maxSplits = n
		}
	}
	spec.NumMaps = maxSplits

	shuffles := false
	for _, op := range job.Ops {
		f := Flops(op.Hop)
		for _, bc := range op.Broadcast {
			spec.BroadcastInput += trackedSize(bc)
		}
		if op.Shuffles {
			shuffles = true
			spec.ReduceFlops += f
			for _, inp := range op.Hop.Inputs {
				if inp != nil && inp.DataType == hop.Matrix {
					spec.ShuffleBytes += trackedSize(inp)
				}
			}
		} else {
			spec.MapFlops += f
		}
		// Outputs consumed outside this job are materialized on HDFS.
		if consumedOutside(op.Hop, job, uses, inJob) {
			out := trackedSize(op.Hop)
			if op.Shuffles {
				spec.ReduceOutput += out
			} else {
				spec.MapOutput += out
			}
			state.PutOnHDFS(jobOutKey(op.Hop), out)
		}
	}
	if shuffles {
		spec.NumReducers = e.CC.Reducers
	}
	return spec, taskHeap
}

func jobOutKey(h *hop.Hop) string { return fmt.Sprintf("#%d", h.ID) }

// trackedSize returns the size used for state tracking and IO charging:
// unknown (worst-case infinite) estimates are clamped to a nominal size so
// a single unknown intermediate cannot dominate the program cost (blocks of
// unknowns are pruned from enumeration anyway, §3.4).
func trackedSize(h *hop.Hop) conf.Bytes {
	if hop.InfiniteMem(h.OutMem) {
		return conf.Bytes(unknownCells * 8)
	}
	return h.OutMem
}

func splitsOf(size, blockSize conf.Bytes) int {
	if blockSize <= 0 {
		return 1
	}
	n := int((size + blockSize - 1) / blockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// BlockUses maps each hop to its consumers within the block DAG.
func BlockUses(b *lop.Block) map[int64][]*hop.Hop {
	uses := map[int64][]*hop.Hop{}
	if b.HopBlock == nil {
		return uses
	}
	hop.WalkDAG(b.HopBlock.Roots, func(h *hop.Hop) {
		for _, in := range h.Inputs {
			if in != nil {
				uses[in.ID] = append(uses[in.ID], h)
			}
		}
	})
	return uses
}

// consumedOutside reports whether a job-internal hop's output is needed by
// instructions outside the job (CP consumers, other jobs, or roots).
func consumedOutside(h *hop.Hop, job *lop.MRJob, uses map[int64][]*hop.Hop, inJob map[int64]*lop.MRJob) bool {
	consumers := uses[h.ID]
	if len(consumers) == 0 {
		return true // DAG root output
	}
	for _, c := range consumers {
		if inJob[c.ID] != job {
			return true
		}
	}
	return false
}
