// Package cost implements the white-box analytic cost model of the
// resource optimizer (paper §3.1): runtime plans are scanned in execution
// order, sizes and states of live variables are tracked, CP instructions
// are charged IO plus compute time, MR-job instructions are charged the
// full phase model, and times are aggregated along the program structure
// (weighted branches, scaled loops).
package cost

import (
	"elasticml/internal/hop"
)

// unknownCells is the nominal cell count charged for operations whose
// dimensions are unknown at compile time; blocks consisting solely of such
// operations are pruned by the optimizer anyway (paper §3.4).
const unknownCells = 1e6

// Flops estimates the floating-point work of one hop.
func Flops(h *hop.Hop) float64 {
	switch h.Kind {
	case hop.KindMatMul:
		a, b := h.Inputs[0], h.Inputs[1]
		m, k := dim(a.Rows), dim(a.Cols)
		if h.TransA {
			m, k = k, m
		}
		n := dim(b.Cols)
		f := 2 * m * k * n * sp(a) * sp(b)
		// Transpose-self multiplications compute only one triangle.
		if h.TransA && a == b {
			f /= 2
		}
		return f
	case hop.KindSolve:
		a, b := h.Inputs[0], h.Inputs[1]
		n, rhs := dim(a.Rows), dim(b.Cols)
		return (2.0/3.0)*n*n*n + 2*n*n*rhs
	case hop.KindTernaryAgg:
		return 3 * cells(h.Inputs[0])
	case hop.KindAggUnary:
		c := cells(h.Inputs[0])
		if h.Op == "sumsq" {
			return 2 * c
		}
		return c
	case hop.KindUnary, hop.KindBinary, hop.KindReorg, hop.KindAppend,
		hop.KindDataGen, hop.KindLeftIndex, hop.KindCast, hop.KindDiag:
		return cells(h)
	case hop.KindIndex:
		return cells(h)
	case hop.KindTable:
		return dim(h.Inputs[0].Rows)
	case hop.KindSeq:
		return dim(h.Rows)
	default:
		return 0
	}
}

func dim(d int64) float64 {
	if d == hop.Unknown {
		return 1000 // nominal extent for unknowns
	}
	return float64(d)
}

func cells(h *hop.Hop) float64 {
	if h == nil {
		return 0
	}
	if h.DataType != hop.Matrix {
		return 1
	}
	if !h.DimsKnown() {
		return unknownCells
	}
	return float64(h.Rows) * float64(h.Cols) * sp(h)
}

func sp(h *hop.Hop) float64 {
	s := h.Sparsity()
	if s <= 0 {
		return 1e-6
	}
	return s
}
