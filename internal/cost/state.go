package cost

import (
	"elasticml/internal/conf"
	"elasticml/internal/hop"
)

// Location is a live variable's physical placement.
type Location int

// Variable locations.
const (
	OnHDFS Location = iota
	InMemory
)

// varInfo tracks one live variable or cached input file.
type varInfo struct {
	name  string
	loc   Location
	size  conf.Bytes
	dirty bool // in-memory state differs from HDFS representation
	stamp int64
}

// VarState models the buffer-pool view of live variables during plan
// scanning: which variables are pinned in CP memory, which reside on HDFS,
// and the IO cost of transitions (reads, exports, evictions).
type VarState struct {
	vars map[string]*varInfo
	// budget is the CP buffer-pool capacity; <= 0 disables capacity
	// enforcement (the optimizer's cost model only partially considers
	// evictions; the execution simulator enforces them).
	budget  conf.Bytes
	inMem   conf.Bytes
	clock   int64
	evictIO conf.Bytes // accumulated eviction write/re-read bytes

	// Evictions counts buffer-pool victims pushed out over capacity;
	// Restores counts HDFS-to-memory loads (first reads and re-reads of
	// evicted variables). Both feed the observability counters.
	Evictions int
	Restores  int

	// Peak is the high-water mark of in-memory resident bytes, recorded
	// after every admission (post-eviction steady state). The estimate
	// auditor compares it against the configured budget.
	Peak conf.Bytes
	// MaxVar is the largest single admitted variable size — the pinning
	// bound: a variable bigger than the whole budget stays resident, so
	// Peak <= max(budget, MaxVar) is the pool's capacity invariant.
	MaxVar conf.Bytes
}

// NewVarState returns a state tracker; budget <= 0 disables eviction
// modelling.
func NewVarState(budget conf.Bytes) *VarState {
	return &VarState{vars: make(map[string]*varInfo), budget: budget}
}

// Clone copies the state (used to evaluate conditional branches
// independently).
func (s *VarState) Clone() *VarState {
	c := &VarState{vars: make(map[string]*varInfo, len(s.vars)),
		budget: s.budget, inMem: s.inMem, clock: s.clock, evictIO: s.evictIO,
		Evictions: s.Evictions, Restores: s.Restores, Peak: s.Peak, MaxVar: s.MaxVar}
	for k, v := range s.vars {
		cp := *v
		c.vars[k] = &cp
	}
	return c
}

func (s *VarState) touch(v *varInfo) {
	s.clock++
	v.stamp = s.clock
}

// keyOf returns the state key of a hop's referenced storage: variable name
// for treads/twrites, file path for persistent reads.
func keyOf(h *hop.Hop) (string, bool) {
	switch h.Kind {
	case hop.KindTRead, hop.KindTWrite:
		return "$" + h.Name, true
	case hop.KindRead:
		return h.Name, true
	}
	return "", false
}

// EnsureInMemory charges the IO needed to make the variable CP-resident and
// returns the read bytes (0 if already cached). Unknown variables are
// registered as HDFS-resident with the given size first.
func (s *VarState) EnsureInMemory(key string, size conf.Bytes) conf.Bytes {
	v, ok := s.vars[key]
	if !ok {
		v = &varInfo{name: key, loc: OnHDFS, size: size}
		s.vars[key] = v
	}
	s.touch(v)
	if v.loc == InMemory {
		return 0
	}
	v.loc = InMemory
	v.dirty = false
	s.Restores++
	s.admit(v)
	return v.size
}

// PutInMemory registers a CP-produced value (dirty: HDFS has no copy).
func (s *VarState) PutInMemory(key string, size conf.Bytes) {
	v, ok := s.vars[key]
	if !ok {
		v = &varInfo{name: key}
		s.vars[key] = v
	} else if v.loc == InMemory {
		s.inMem -= v.size
	}
	v.loc = InMemory
	v.size = size
	v.dirty = true
	s.touch(v)
	s.admit(v)
}

// PutOnHDFS registers an MR-produced value (resident on HDFS only).
func (s *VarState) PutOnHDFS(key string, size conf.Bytes) {
	v, ok := s.vars[key]
	if ok && v.loc == InMemory {
		s.inMem -= v.size
	}
	s.vars[key] = &varInfo{name: key, loc: OnHDFS, size: size}
}

// Alias binds dst to the same storage as src — a variable assignment
// without data movement (x = y, or x = read(f) binding the file). The two
// names share location, size and dirtiness from here on. Unknown sources
// register dst as HDFS-resident with the fallback size.
func (s *VarState) Alias(dst, src string, fallback conf.Bytes) {
	v, ok := s.vars[src]
	if !ok {
		s.PutOnHDFS(dst, fallback)
		return
	}
	if old, ok := s.vars[dst]; ok && old != v && old.loc == InMemory {
		s.inMem -= old.size
	}
	s.vars[dst] = v
}

// ExportBytes returns the bytes that must be written to HDFS before an MR
// job can scan the variable (dirty in-memory state), marking it clean.
func (s *VarState) ExportBytes(key string, size conf.Bytes) conf.Bytes {
	v, ok := s.vars[key]
	if !ok {
		s.vars[key] = &varInfo{name: key, loc: OnHDFS, size: size}
		return 0
	}
	if v.loc == InMemory && v.dirty {
		v.dirty = false
		return v.size
	}
	return 0
}

// Size returns the tracked size of a variable (fallback if untracked).
func (s *VarState) Size(key string, fallback conf.Bytes) conf.Bytes {
	if v, ok := s.vars[key]; ok && v.size > 0 {
		return v.size
	}
	return fallback
}

// InMemory reports whether the variable is currently CP-resident.
func (s *VarState) InMemory(key string) bool {
	v, ok := s.vars[key]
	return ok && v.loc == InMemory
}

// admit inserts the variable into the buffer pool, evicting
// least-recently-used entries beyond the capacity and accumulating their
// IO in evictIO (dirty pages are written; clean pages only drop).
func (s *VarState) admit(v *varInfo) {
	s.inMem += v.size
	if v.size > s.MaxVar {
		s.MaxVar = v.size
	}
	defer func() {
		if s.inMem > s.Peak {
			s.Peak = s.inMem
		}
	}()
	if s.budget <= 0 {
		return
	}
	for s.inMem > s.budget {
		var lru *varInfo
		for _, cand := range s.vars {
			if cand == v || cand.loc != InMemory {
				continue
			}
			if lru == nil || cand.stamp < lru.stamp {
				lru = cand
			}
		}
		if lru == nil {
			// Single variable exceeding the budget stays pinned.
			return
		}
		lru.loc = OnHDFS
		s.inMem -= lru.size
		s.Evictions++
		if lru.dirty {
			s.evictIO += lru.size
			lru.dirty = false
		}
	}
}

// EvictionIO returns the accumulated eviction write bytes.
func (s *VarState) EvictionIO() conf.Bytes { return s.evictIO }

// SetBudget adjusts the buffer-pool capacity (after an AM migration to a
// container of different size).
func (s *VarState) SetBudget(b conf.Bytes) { s.budget = b }

// DirtyBytes returns the total size of dirty in-memory variables — the IO
// component of the migration cost C_M (paper §4.2).
func (s *VarState) DirtyBytes() conf.Bytes {
	var total conf.Bytes
	for _, v := range s.vars {
		if v.loc == InMemory && v.dirty {
			total += v.size
		}
	}
	return total
}

// FlushAll exports every dirty variable and demotes all residents to HDFS,
// returning the written bytes. This models AM runtime migration: the state
// is materialized on HDFS and lazily restored by the new container's
// buffer pool.
func (s *VarState) FlushAll() conf.Bytes {
	var written conf.Bytes
	for _, v := range s.vars {
		if v.loc == InMemory {
			if v.dirty {
				written += v.size
				v.dirty = false
			}
			v.loc = OnHDFS
		}
	}
	s.inMem = 0
	return written
}
