package cost

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/scripts"
)

func planFor(t *testing.T, spec scripts.Spec, n, m int64, sparsity float64, res conf.Resources) *lop.Plan {
	t.Helper()
	fs := hdfs.New()
	nnz := int64(float64(n*m) * sparsity)
	fs.PutDescriptor("/data/X", n, m, nnz, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := hop.NewCompiler(fs, spec.Params)
	hp, err := c.Compile(prog, spec.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return lop.Select(hp, conf.DefaultCluster(), res)
}

func TestCGPrefersLargeCP(t *testing.T) {
	cc := conf.DefaultCluster()
	e := NewEstimator(cc)
	n, m := int64(1_000_000), int64(1000) // 8GB dense
	smallCP := e.ProgramCost(planFor(t, scripts.LinregCG(), n, m, 1.0,
		conf.NewResources(512*conf.MB, 2*conf.GB, 64)))
	largeCP := e.ProgramCost(planFor(t, scripts.LinregCG(), n, m, 1.0,
		conf.NewResources(20*conf.GB, 2*conf.GB, 64)))
	if largeCP >= smallCP {
		t.Errorf("CG: large CP (%.1fs) should beat small CP (%.1fs)", largeCP, smallCP)
	}
}

func TestDSPrefersDistributed(t *testing.T) {
	cc := conf.DefaultCluster()
	e := NewEstimator(cc)
	n, m := int64(1_000_000), int64(1000) // 8GB dense, compute-intensive
	smallCP := e.ProgramCost(planFor(t, scripts.LinregDS(), n, m, 1.0,
		conf.NewResources(512*conf.MB, 2*conf.GB, 64)))
	largeCP := e.ProgramCost(planFor(t, scripts.LinregDS(), n, m, 1.0,
		conf.NewResources(conf.BytesOfGB(53.3), 2*conf.GB, 64)))
	if smallCP >= largeCP {
		t.Errorf("DS dense1000: distributed (%.1fs) should beat single node (%.1fs)", smallCP, largeCP)
	}
}

func TestSmallDataPrefersCP(t *testing.T) {
	cc := conf.DefaultCluster()
	e := NewEstimator(cc)
	n, m := int64(10_000), int64(1000) // 80MB: MR latency dominates
	mrPlan := e.ProgramCost(planFor(t, scripts.LinregDS(), n, m, 1.0,
		conf.NewResources(conf.MB*64, 512*conf.MB, 64)))
	cpPlan := e.ProgramCost(planFor(t, scripts.LinregDS(), n, m, 1.0,
		conf.NewResources(2*conf.GB, 512*conf.MB, 64)))
	if cpPlan >= mrPlan {
		t.Errorf("XS data: CP plan (%.1fs) should beat MR plan (%.1fs)", cpPlan, mrPlan)
	}
}

func TestDeterminism(t *testing.T) {
	cc := conf.DefaultCluster()
	res := conf.NewResources(2*conf.GB, 2*conf.GB, 64)
	p := planFor(t, scripts.L2SVM(), 100_000, 1000, 1.0, res)
	e := NewEstimator(cc)
	a := e.ProgramCost(p)
	b := e.ProgramCost(p)
	if a != b {
		t.Errorf("cost not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("cost should be positive, got %v", a)
	}
}

func TestInvocationCounting(t *testing.T) {
	cc := conf.DefaultCluster()
	res := conf.NewResources(2*conf.GB, 2*conf.GB, 64)
	p := planFor(t, scripts.LinregDS(), 10_000, 100, 1.0, res)
	e := NewEstimator(cc)
	e.ProgramCost(p)
	e.BlockCost(p.LeafBlocks()[0], res)
	if e.Invocations != 2 {
		t.Errorf("Invocations = %d, want 2", e.Invocations)
	}
}

func TestEvictionChargingIncreasesCost(t *testing.T) {
	cc := conf.DefaultCluster()
	// 4GB X with a CP heap of 8GB (5.6GB budget): iterating CG pins X plus
	// intermediates, exceeding the budget and causing evictions.
	n, m := int64(500_000), int64(1000)
	res := conf.NewResources(8*conf.GB, 2*conf.GB, 64)
	p := planFor(t, scripts.LinregCG(), n, m, 1.0, res)
	plain := NewEstimator(cc)
	plain.EvictionWeight = 0
	charged := NewEstimator(cc)
	charged.EvictionWeight = 1.0
	a := plain.ProgramCost(p)
	b := charged.ProgramCost(p)
	if b < a {
		t.Errorf("eviction charging reduced cost: %v < %v", b, a)
	}
}

func TestLoopScaling(t *testing.T) {
	cc := conf.DefaultCluster()
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 100_000, 100, 100_000*100, hdfs.BinaryBlock)
	src := `
X = read($X);
acc = matrix(0, rows=100, cols=1);
for (i in 1:5) {
  acc = acc + t(X) %*% rowSums(X);
}
write(acc, "/out/acc");
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	p := lop.Select(hp, cc, res)
	e := NewEstimator(cc)
	total := e.ProgramCost(p)
	// The loop body reads X once (~80MB/150MBps ~ 0.53s) and then iterates
	// in memory; total must be far below 5 full reads.
	fullRead := 5 * float64(100_000*100*8) / 150e6
	if total >= fullRead {
		t.Errorf("loop cost %v should be below %v (X cached across iterations)", total, fullRead)
	}
}

func TestFlopsFormulas(t *testing.T) {
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1000, 100, 1000*100, hdfs.BinaryBlock)
	src := `
X = read($X);
A = t(X) %*% X;
beta = solve(A, t(X) %*% rowSums(X));
write(beta, "/out/b");
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	var tsmmF, solveF float64
	hop.WalkBlocks(hp.Blocks, func(b *hop.Block) {
		hop.WalkDAG(b.Roots, func(h *hop.Hop) {
			if h.Kind == hop.KindMatMul && h.Rows == 100 && h.Cols == 100 {
				tsmmF = Flops(h)
			}
			if h.Kind == hop.KindSolve {
				solveF = Flops(h)
			}
		})
	})
	// TSMM: 2*100*1000*100/2 = 1e7.
	if tsmmF != 1e7 {
		t.Errorf("TSMM flops = %v, want 1e7", tsmmF)
	}
	// solve on 100x100: (2/3)*1e6 + 2*1e4*1.
	want := (2.0/3.0)*1e6 + 2*1e4
	if solveF != want {
		t.Errorf("solve flops = %v, want %v", solveF, want)
	}
}

func TestVarStateTransitions(t *testing.T) {
	s := NewVarState(0)
	// First use reads from HDFS; second is cached.
	if got := s.EnsureInMemory("$X", 1000); got != 1000 {
		t.Errorf("first read = %v, want 1000", got)
	}
	if got := s.EnsureInMemory("$X", 1000); got != 0 {
		t.Errorf("cached read = %v, want 0", got)
	}
	// CP-produced values are dirty and must be exported once.
	s.PutInMemory("$Y", 500)
	if got := s.ExportBytes("$Y", 500); got != 500 {
		t.Errorf("export = %v, want 500", got)
	}
	if got := s.ExportBytes("$Y", 500); got != 0 {
		t.Errorf("re-export = %v, want 0", got)
	}
	// MR-produced values live on HDFS.
	s.PutOnHDFS("$Z", 700)
	if s.InMemory("$Z") {
		t.Error("Z should be on HDFS")
	}
	if got := s.ExportBytes("$Z", 700); got != 0 {
		t.Errorf("HDFS-resident export = %v, want 0", got)
	}
}

func TestVarStateEviction(t *testing.T) {
	s := NewVarState(1000)
	s.PutInMemory("$A", 600)
	s.PutInMemory("$B", 600) // exceeds 1000: A (LRU, dirty) evicted
	if s.InMemory("$A") {
		t.Error("A should have been evicted")
	}
	if !s.InMemory("$B") {
		t.Error("B should be resident")
	}
	if s.EvictionIO() != 600 {
		t.Errorf("eviction IO = %v, want 600 (dirty A written)", s.EvictionIO())
	}
	// Clean pages evict silently.
	s2 := NewVarState(1000)
	s2.EnsureInMemory("$A", 600) // clean (from HDFS)
	s2.PutInMemory("$B", 600)
	if s2.EvictionIO() != 0 {
		t.Errorf("clean eviction IO = %v, want 0", s2.EvictionIO())
	}
	// A single oversized variable stays pinned.
	s3 := NewVarState(100)
	s3.PutInMemory("$big", 500)
	if !s3.InMemory("$big") {
		t.Error("oversized single variable should stay pinned")
	}
}

func TestVarStateClone(t *testing.T) {
	s := NewVarState(0)
	s.PutInMemory("$A", 100)
	c := s.Clone()
	c.PutOnHDFS("$A", 100)
	if !s.InMemory("$A") {
		t.Error("clone mutation leaked into original")
	}
}

func TestVarStatePeakAndMaxVar(t *testing.T) {
	s := NewVarState(1000)
	s.PutInMemory("$A", 600)
	s.PutInMemory("$B", 600) // evicts A; steady-state residency 600
	if s.Peak != 600 {
		t.Errorf("peak = %v, want 600 (post-eviction steady state)", s.Peak)
	}
	if s.MaxVar != 600 {
		t.Errorf("max var = %v, want 600", s.MaxVar)
	}
	// An oversized variable pins: the peak may exceed the budget, but only
	// up to the largest single admitted variable (the capacity invariant
	// the verification harness checks).
	s.PutInMemory("$big", 2500)
	if s.Peak != 2500 {
		t.Errorf("peak = %v, want 2500 (pinned oversize variable)", s.Peak)
	}
	if s.MaxVar != 2500 {
		t.Errorf("max var = %v, want 2500", s.MaxVar)
	}
	max := s.MaxVar
	if budget := conf.Bytes(1000); s.Peak > budget && s.Peak > max {
		t.Errorf("capacity invariant violated: peak %v > max(budget %v, maxvar %v)", s.Peak, budget, max)
	}
	c := s.Clone()
	if c.Peak != s.Peak || c.MaxVar != s.MaxVar {
		t.Errorf("clone lost high-water marks: peak %v/%v maxvar %v/%v", c.Peak, s.Peak, c.MaxVar, s.MaxVar)
	}
}
