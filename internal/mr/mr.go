// Package mr models MapReduce job execution on the simulated YARN cluster:
// job descriptors carrying the IO/compute volumes of their map and reduce
// phases, degree-of-parallelism arithmetic from container sizing, and the
// analytic phase-by-phase time model used by both the cost model and the
// execution simulator (paper §3.1: "job and task latency, in-memory
// variable export, map read, map compute, map write, shuffle, reduce read,
// reduce compute, and reduce write times").
package mr

import (
	"elasticml/internal/conf"
	"elasticml/internal/perf"
)

// JobSpec describes one MR-job instruction, which may pack multiple
// map/reduce instructions produced by piggybacking.
type JobSpec struct {
	// Name labels the job for traces (e.g. "GMR(mapmm,uak+)").
	Name string
	// NumMaps is the number of map tasks (input splits).
	NumMaps int
	// MapInput is the total bytes scanned by map tasks.
	MapInput conf.Bytes
	// BroadcastInput is the distributed-cache bytes each map task loads
	// into memory (map-side broadcast operands of MapMM etc.).
	BroadcastInput conf.Bytes
	// ExportInput is the bytes of in-memory CP variables that must be
	// exported to HDFS before the job can read them.
	ExportInput conf.Bytes
	// MapOutput is the bytes written by map tasks (to HDFS for map-only
	// jobs, to local disk for shuffled jobs).
	MapOutput conf.Bytes
	// MapFlops is the total floating-point work of the map phase.
	MapFlops float64
	// ShuffleBytes is the bytes moved through the shuffle (0 => map-only).
	ShuffleBytes conf.Bytes
	// NumReducers is the number of reduce tasks (0 => map-only job).
	NumReducers int
	// ReduceFlops is the total floating-point work of the reduce phase.
	ReduceFlops float64
	// ReduceOutput is the bytes written by reduce tasks.
	ReduceOutput conf.Bytes
}

// MapOnly reports whether the job has no shuffle/reduce phase.
func (j JobSpec) MapOnly() bool { return j.NumReducers == 0 && j.ShuffleBytes == 0 }

// Parallelism describes the achieved concurrency of a job's map phase.
type Parallelism struct {
	// Scheduled is the number of concurrently scheduled map tasks
	// (memory-based YARN arithmetic), cluster-wide.
	Scheduled int
	// Effective is the CPU-effective concurrency (capped at cores).
	Effective int
	// PerNodeScheduled is the per-node scheduled task count, used to
	// detect cache thrashing.
	PerNodeScheduled int
}

// ComputeParallelism derives the map-phase concurrency for a job with the
// given task heap under the cluster configuration; the CP AM's container
// displaces task capacity on one node.
func ComputeParallelism(cc conf.Cluster, taskHeap, cpHeap conf.Bytes, numTasks int) Parallelism {
	perNode := cc.ScheduledTasksPerNode(taskHeap)
	scheduled := perNode * cc.Nodes
	// Reserve the CP AM's footprint.
	cpContainer := cc.ContainerSize(cpHeap)
	taskContainer := cc.ContainerSize(taskHeap)
	if taskContainer > 0 {
		displaced := int((cpContainer + taskContainer - 1) / taskContainer)
		if displaced > perNode {
			displaced = perNode
		}
		scheduled -= displaced
	}
	if scheduled < 1 {
		scheduled = 1
	}
	if numTasks > 0 && scheduled > numTasks {
		scheduled = numTasks
	}
	effective := scheduled
	if max := cc.TotalCores(); effective > max {
		effective = max
	}
	pns := perNode
	if numTasks > 0 && pns > (numTasks+cc.Nodes-1)/cc.Nodes {
		pns = (numTasks + cc.Nodes - 1) / cc.Nodes
	}
	return Parallelism{Scheduled: scheduled, Effective: effective, PerNodeScheduled: pns}
}

// TimeBreakdown itemizes the phases of a job's estimated execution time.
type TimeBreakdown struct {
	JobLatency  float64
	TaskLatency float64
	Export      float64
	MapRead     float64
	Broadcast   float64
	MapCompute  float64
	MapWrite    float64
	Shuffle     float64
	ReduceCompute,
	ReduceWrite float64
	// Recovery is the re-execution cost of injected task failures and
	// stragglers: retried attempt work, straggler tail latency, and the
	// extra task-launch waves of retries (0 without fault injection).
	Recovery float64
}

// Total returns the summed job time.
func (t TimeBreakdown) Total() float64 {
	return t.JobLatency + t.TaskLatency + t.Export + t.MapRead + t.Broadcast +
		t.MapCompute + t.MapWrite + t.Shuffle + t.ReduceCompute + t.ReduceWrite +
		t.Recovery
}

// EstimateTime evaluates the analytic job time model for the given spec,
// performance model, cluster, and CP/MR heap sizes. Cache thrashing (more
// scheduled tasks per node than the model's threshold) inflates map compute
// and IO, reproducing the paper's B-SS < B-SL observation.
func EstimateTime(pm perf.Model, cc conf.Cluster, spec JobSpec, taskHeap, cpHeap conf.Bytes) TimeBreakdown {
	par := ComputeParallelism(cc, taskHeap, cpHeap, spec.NumMaps)
	waves := 1
	if par.Scheduled > 0 && spec.NumMaps > par.Scheduled {
		waves = (spec.NumMaps + par.Scheduled - 1) / par.Scheduled
	}
	thrash := 1.0
	if pm.CacheThrashThreshold > 0 && par.PerNodeScheduled > pm.CacheThrashThreshold {
		over := float64(par.PerNodeScheduled) / float64(pm.CacheThrashThreshold)
		thrash = 1 + (pm.CacheThrashFactor-1)*(over-1)
		if thrash > pm.CacheThrashFactor {
			thrash = pm.CacheThrashFactor
		}
	}

	var t TimeBreakdown
	t.JobLatency = pm.JobLatency
	t.TaskLatency = pm.TaskLatency * float64(waves)
	t.Export = pm.WriteTime(spec.ExportInput, 1)
	t.MapRead = pm.ReadTime(spec.MapInput, par.Effective) * thrash
	// Every map task loads the broadcast inputs; amortized across waves the
	// per-effective-slot cost is tasks/effective * read(broadcast at 1).
	if spec.BroadcastInput > 0 && spec.NumMaps > 0 {
		perTask := pm.ReadTime(spec.BroadcastInput, 1)
		t.Broadcast = perTask * float64(waves)
	}
	t.MapCompute = pm.ComputeTime(spec.MapFlops, par.Effective) * thrash
	t.MapWrite = pm.WriteTime(spec.MapOutput, par.Effective) * thrash
	if !spec.MapOnly() {
		redDop := spec.NumReducers
		if redDop < 1 {
			redDop = 1
		}
		if max := cc.TotalCores(); redDop > max {
			redDop = max
		}
		t.Shuffle = pm.ShuffleTime(spec.ShuffleBytes, redDop)
		t.ReduceCompute = pm.ComputeTime(spec.ReduceFlops, redDop)
		t.ReduceWrite = pm.WriteTime(spec.ReduceOutput, redDop)
	}
	return t
}
