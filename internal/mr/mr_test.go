package mr

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/perf"
)

func TestParallelismArithmetic(t *testing.T) {
	cc := conf.DefaultCluster()
	// 4.4GB tasks: 12 scheduled per node, 72 cluster-wide minus CP share.
	p := ComputeParallelism(cc, conf.BytesOfGB(4.4), 512*conf.MB, 1000)
	if p.PerNodeScheduled != 12 {
		t.Errorf("PerNodeScheduled = %d, want 12", p.PerNodeScheduled)
	}
	if p.Scheduled < 70 || p.Scheduled > 72 {
		t.Errorf("Scheduled = %d, want ~71", p.Scheduled)
	}
	if p.Effective != p.Scheduled {
		t.Errorf("Effective %d != Scheduled %d for core-fitting tasks", p.Effective, p.Scheduled)
	}
}

func TestParallelismSmallTasksOversubscribe(t *testing.T) {
	cc := conf.DefaultCluster()
	// 512MB tasks -> 768MB containers -> 106 scheduled per node,
	// far beyond 12 cores: effective capped at cluster cores.
	p := ComputeParallelism(cc, 512*conf.MB, 512*conf.MB, 10000)
	if p.PerNodeScheduled <= cc.CoresPerNode {
		t.Errorf("PerNodeScheduled = %d, expected oversubscription", p.PerNodeScheduled)
	}
	if p.Effective != cc.TotalCores() {
		t.Errorf("Effective = %d, want %d", p.Effective, cc.TotalCores())
	}
}

func TestParallelismCappedByTasks(t *testing.T) {
	cc := conf.DefaultCluster()
	p := ComputeParallelism(cc, 2*conf.GB, 512*conf.MB, 3)
	if p.Scheduled != 3 {
		t.Errorf("Scheduled = %d, want 3 (few tasks)", p.Scheduled)
	}
}

func TestLargeCPReducesTaskSlots(t *testing.T) {
	cc := conf.DefaultCluster()
	small := ComputeParallelism(cc, 4*conf.GB, 512*conf.MB, 1000)
	large := ComputeParallelism(cc, 4*conf.GB, conf.BytesOfGB(53.3), 1000)
	if large.Scheduled >= small.Scheduled {
		t.Errorf("large CP should displace task slots: %d >= %d", large.Scheduled, small.Scheduled)
	}
}

func TestJobTimeLatencyDominatesSmallJobs(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	spec := JobSpec{Name: "tiny", NumMaps: 1, MapInput: 10 * conf.MB, MapFlops: 1e6}
	bd := EstimateTime(pm, cc, spec, 2*conf.GB, 512*conf.MB)
	if bd.JobLatency != pm.JobLatency {
		t.Errorf("JobLatency = %v", bd.JobLatency)
	}
	if bd.Total() < pm.JobLatency || bd.Total() > pm.JobLatency+pm.TaskLatency+1 {
		t.Errorf("tiny job total %v should be dominated by latency", bd.Total())
	}
}

func TestJobTimeScalesWithWaves(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	// 640 maps at ~71 slots => 9 waves.
	spec := JobSpec{Name: "big", NumMaps: 640, MapInput: 80 * conf.GB, MapFlops: 1e12}
	bd := EstimateTime(pm, cc, spec, conf.BytesOfGB(4.4), 512*conf.MB)
	if bd.TaskLatency < 8*pm.TaskLatency {
		t.Errorf("TaskLatency = %v, want >= %v", bd.TaskLatency, 8*pm.TaskLatency)
	}
}

func TestThrashingPenalty(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	spec := JobSpec{Name: "j", NumMaps: 640, MapInput: 80 * conf.GB, MapFlops: 1e12}
	// Small tasks oversubscribe and thrash; 4.4GB tasks do not.
	smallTasks := EstimateTime(pm, cc, spec, 512*conf.MB, 512*conf.MB)
	bigTasks := EstimateTime(pm, cc, spec, conf.BytesOfGB(4.4), 512*conf.MB)
	if smallTasks.MapCompute <= bigTasks.MapCompute {
		t.Errorf("thrashing should inflate small-task compute: %v <= %v",
			smallTasks.MapCompute, bigTasks.MapCompute)
	}
}

func TestBroadcastCost(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	base := JobSpec{Name: "mapmm", NumMaps: 64, MapInput: 8 * conf.GB, MapFlops: 1e10}
	withB := base
	withB.BroadcastInput = 100 * conf.MB
	t0 := EstimateTime(pm, cc, base, 2*conf.GB, 512*conf.MB)
	t1 := EstimateTime(pm, cc, withB, 2*conf.GB, 512*conf.MB)
	if t1.Total() <= t0.Total() {
		t.Error("broadcast input should add cost")
	}
	if t1.Broadcast <= 0 {
		t.Error("broadcast phase should be charged")
	}
}

func TestShuffleJobVsMapOnly(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	mapOnly := JobSpec{Name: "m", NumMaps: 64, MapInput: 8 * conf.GB, MapFlops: 1e10, MapOutput: 100 * conf.MB}
	shuffled := mapOnly
	shuffled.ShuffleBytes = 8 * conf.GB
	shuffled.NumReducers = cc.Reducers
	shuffled.ReduceOutput = 8 * conf.GB
	a := EstimateTime(pm, cc, mapOnly, 2*conf.GB, 512*conf.MB)
	b := EstimateTime(pm, cc, shuffled, 2*conf.GB, 512*conf.MB)
	if !mapOnly.MapOnly() || shuffled.MapOnly() {
		t.Fatal("MapOnly misclassification")
	}
	if b.Total() <= a.Total() {
		t.Errorf("shuffle job %v should cost more than map-only %v", b.Total(), a.Total())
	}
	if b.Shuffle <= 0 || b.ReduceWrite <= 0 {
		t.Error("reduce phases should be charged")
	}
}

func TestExportCharged(t *testing.T) {
	pm := perf.Default()
	cc := conf.DefaultCluster()
	spec := JobSpec{Name: "e", NumMaps: 4, MapInput: 512 * conf.MB, ExportInput: conf.GB}
	bd := EstimateTime(pm, cc, spec, 2*conf.GB, 512*conf.MB)
	if bd.Export <= 0 {
		t.Error("export should be charged")
	}
}
