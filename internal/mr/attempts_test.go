package mr

import (
	"errors"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/perf"
)

func faultJobSpec() JobSpec {
	return JobSpec{
		Name:      "GMR(test)",
		NumMaps:   64,
		MapInput:  8 * conf.GB,
		MapFlops:  2e9,
		MapOutput: 512 * conf.MB,
	}
}

func TestNoFaultsMatchesBaseline(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	spec := faultJobSpec()
	base := EstimateTime(pm, cc, spec, 2*conf.GB, 2*conf.GB)
	got, rep, err := EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB, nil, DefaultTaskPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != base.Total() || rep.Any() {
		t.Errorf("nil injector must be a no-op: %v vs %v, rep %+v", got.Total(), base.Total(), rep)
	}
	idle := fault.MustInjector(fault.Plan{Seed: 1})
	got, _, err = EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB, idle, DefaultTaskPolicy())
	if err != nil || got.Total() != base.Total() {
		t.Errorf("empty plan must be a no-op: %v vs %v (%v)", got.Total(), base.Total(), err)
	}
}

func TestRetriesAddRecoveryCost(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	spec := faultJobSpec()
	base := EstimateTime(pm, cc, spec, 2*conf.GB, 2*conf.GB)
	inj := fault.MustInjector(fault.Plan{Seed: 2, TaskFailureProb: 0.3})
	bd, rep, err := EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB, inj, DefaultTaskPolicy())
	if err != nil {
		t.Fatalf("p=0.3 with 4 attempts should recover: %v", err)
	}
	if rep.Retries == 0 {
		t.Fatal("expected injected retries")
	}
	if bd.Recovery <= 0 {
		t.Error("recovery cost missing from breakdown")
	}
	if bd.Total() <= base.Total() {
		t.Errorf("faulty run not slower: %.2f vs %.2f", bd.Total(), base.Total())
	}
	// Recovery is exactly the delta against the fault-free breakdown.
	if diff := bd.Total() - base.Total() - bd.Recovery; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recovery %.3f != delta %.3f", bd.Recovery, bd.Total()-base.Total())
	}
}

func TestNoRetryPolicyAborts(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	inj := fault.MustInjector(fault.Plan{Seed: 3, TaskFailureProb: 0.5})
	_, _, err := EstimateTimeUnderFaults(pm, cc, faultJobSpec(), 2*conf.GB, 2*conf.GB, inj,
		TaskPolicy{MaxAttempts: 1})
	if !errors.Is(err, ErrTaskFailed) {
		t.Errorf("MaxAttempts=1 under p=0.5 should abort, got %v", err)
	}
}

func TestExhaustedAttemptsAbort(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	inj := fault.MustInjector(fault.Plan{Seed: 4, TaskFailureProb: 1.0})
	_, _, err := EstimateTimeUnderFaults(pm, cc, faultJobSpec(), 2*conf.GB, 2*conf.GB, inj, DefaultTaskPolicy())
	if !errors.Is(err, ErrTaskFailed) {
		t.Errorf("p=1 must exhaust every retry, got %v", err)
	}
}

func TestSpeculationSoftensStragglers(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	spec := faultJobSpec()
	plan := fault.Plan{Seed: 5, StragglerProb: 0.2, StragglerFactor: 8}

	slow, repNoSpec, err := EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB,
		fault.MustInjector(plan), TaskPolicy{MaxAttempts: 4, Speculative: false})
	if err != nil {
		t.Fatal(err)
	}
	fast, repSpec, err := EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB,
		fault.MustInjector(plan), DefaultTaskPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if repNoSpec.Stragglers == 0 || repSpec.Stragglers != repNoSpec.Stragglers {
		t.Fatalf("same seed must straggle identically: %+v vs %+v", repNoSpec, repSpec)
	}
	if repSpec.Speculated == 0 {
		t.Error("speculation should have rescued 8x stragglers")
	}
	if fast.Recovery >= slow.Recovery {
		t.Errorf("speculation did not help: %.2f vs %.2f", fast.Recovery, slow.Recovery)
	}
}

func TestShuffledJobSamplesReducers(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	spec := faultJobSpec()
	spec.ShuffleBytes = 2 * conf.GB
	spec.NumReducers = 12
	spec.ReduceFlops = 1e9
	spec.ReduceOutput = 256 * conf.MB
	inj := fault.MustInjector(fault.Plan{Seed: 6, TaskFailureProb: 0.2})
	_, rep, err := EstimateTimeUnderFaults(pm, cc, spec, 2*conf.GB, 2*conf.GB, inj, DefaultTaskPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != spec.NumMaps+spec.NumReducers {
		t.Errorf("sampled %d tasks, want maps+reducers = %d", rep.Tasks, spec.NumMaps+spec.NumReducers)
	}
}

func TestFaultModelDeterministic(t *testing.T) {
	pm, cc := perf.Default(), conf.DefaultCluster()
	plan := fault.Plan{Seed: 7, TaskFailureProb: 0.1, StragglerProb: 0.1, StragglerFactor: 4}
	run := func() (TimeBreakdown, TaskReport) {
		bd, rep, err := EstimateTimeUnderFaults(pm, cc, faultJobSpec(), 2*conf.GB, 2*conf.GB,
			fault.MustInjector(plan), DefaultTaskPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return bd, rep
	}
	bd1, rep1 := run()
	bd2, rep2 := run()
	if bd1 != bd2 || rep1 != rep2 {
		t.Errorf("same seed diverged: %+v/%+v vs %+v/%+v", bd1, rep1, bd2, rep2)
	}
}

// TestEffectiveSlowdown: speculation caps a straggler's slowdown at the
// policy cap; without speculation the full factor applies; sub-1 factors
// normalize to no slowdown.
func TestEffectiveSlowdown(t *testing.T) {
	pol := DefaultTaskPolicy() // speculative, cap 1.5
	if f, spec := EffectiveSlowdown(6, pol); f != pol.SpeculativeCap || !spec {
		t.Errorf("speculated straggler: got (%g, %v), want (%g, true)", f, spec, pol.SpeculativeCap)
	}
	if f, spec := EffectiveSlowdown(1.2, pol); f != 1.2 || spec {
		t.Errorf("mild straggler below cap: got (%g, %v), want (1.2, false)", f, spec)
	}
	noSpec := TaskPolicy{MaxAttempts: 4, Speculative: false}
	if f, spec := EffectiveSlowdown(6, noSpec); f != 6 || spec {
		t.Errorf("no speculation: got (%g, %v), want (6, false)", f, spec)
	}
	if f, spec := EffectiveSlowdown(0.5, pol); f != 1 || spec {
		t.Errorf("sub-1 factor: got (%g, %v), want (1, false)", f, spec)
	}
}
