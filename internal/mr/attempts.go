package mr

import (
	"errors"
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/obs"
	"elasticml/internal/perf"
)

// ErrTaskFailed aborts a job whose task exhausted its attempts — the MR
// framework then fails the job and the application sees a hard error.
var ErrTaskFailed = errors.New("mr: task failed all attempts")

// TaskPolicy configures per-task failure handling, mirroring Hadoop's
// mapreduce.map.maxattempts and speculative-execution switches.
type TaskPolicy struct {
	// MaxAttempts bounds the attempts per task; 1 disables retry (the
	// first injected failure aborts the job), values < 1 select the
	// default of 4.
	MaxAttempts int
	// Speculative launches backup attempts for stragglers, capping their
	// effective slowdown at SpeculativeCap.
	Speculative bool
	// SpeculativeCap is the residual slowdown of a speculated straggler
	// (default 1.5: the backup still re-runs part of the work).
	SpeculativeCap float64
}

// DefaultTaskPolicy matches Hadoop's defaults: 4 attempts per task,
// speculative execution on.
func DefaultTaskPolicy() TaskPolicy {
	return TaskPolicy{MaxAttempts: 4, Speculative: true, SpeculativeCap: 1.5}
}

// Normalized fills zero values with defaults.
func (p TaskPolicy) Normalized() TaskPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.SpeculativeCap < 1 {
		p.SpeculativeCap = 1.5
	}
	return p
}

// EffectiveSlowdown returns the slowdown a straggling task (or every task
// of a straggling node) actually experiences under the policy, and whether
// speculative backups softened it. With speculation on, backups cap the
// factor at SpeculativeCap — the backup still re-runs part of the work, so
// the cap stays > 1. This is the single place the speculation arithmetic
// lives; the per-attempt model below and the workload service's slow-node
// handling both consult it so node-level stragglers and task-level
// stragglers degrade identically.
func EffectiveSlowdown(factor float64, pol TaskPolicy) (float64, bool) {
	if factor < 1 {
		return 1, false
	}
	pol = pol.Normalized()
	if pol.Speculative && factor > pol.SpeculativeCap {
		return pol.SpeculativeCap, true
	}
	return factor, false
}

// TaskReport summarizes the per-task fault activity of one job.
type TaskReport struct {
	// Tasks is the number of tasks sampled (maps plus reducers).
	Tasks int
	// Retries counts failed attempts recovered by re-execution.
	Retries int
	// Stragglers counts tasks that straggled.
	Stragglers int
	// Speculated counts stragglers rescued by speculative backups.
	Speculated int
}

// Any reports whether the job saw any injected fault.
func (r TaskReport) Any() bool { return r.Retries > 0 || r.Stragglers > 0 }

// EstimateTimeUnderFaults evaluates the analytic job time model and then
// samples a per-task attempt model against the injector: every task
// attempt may fail (re-executed up to pol.MaxAttempts, each retry adding
// its attempt work and a share of task-launch latency) or straggle
// (extending its wave by the straggler factor, softened to
// pol.SpeculativeCap when speculative backups run). The added wall-clock
// time lands in the breakdown's Recovery component. A task exhausting its
// attempts fails the job with an error wrapping ErrTaskFailed.
//
// The model charges retried attempt work at the job's effective
// parallelism (retries fill free slots of later waves) but straggler
// tails serially (a straggler gates its wave's completion) — the same
// first-order approximation Hadoop's own speculation heuristics assume.
func EstimateTimeUnderFaults(pm perf.Model, cc conf.Cluster, spec JobSpec,
	taskHeap, cpHeap conf.Bytes, inj *fault.Injector, pol TaskPolicy) (TimeBreakdown, TaskReport, error) {
	return EstimateTimeUnderFaultsTraced(pm, cc, spec, taskHeap, cpHeap, inj, pol, nil, 0)
}

// EstimateTimeUnderFaultsTraced additionally records per-task-attempt
// trace events on the cluster layer: one instant event per injected task
// failure or straggler, stamped at the job's simulated start time `at` and
// flagged with the attempt count, the slowdown factor, and whether a
// speculative backup rescued the straggler.
func EstimateTimeUnderFaultsTraced(pm perf.Model, cc conf.Cluster, spec JobSpec,
	taskHeap, cpHeap conf.Bytes, inj *fault.Injector, pol TaskPolicy,
	tr *obs.Tracer, at float64) (TimeBreakdown, TaskReport, error) {

	t := EstimateTime(pm, cc, spec, taskHeap, cpHeap)
	rep := TaskReport{}
	if inj == nil || !inj.TaskFaultsEnabled() {
		return t, rep, nil
	}
	pol = pol.Normalized()
	par := ComputeParallelism(cc, taskHeap, cpHeap, spec.NumMaps)

	// Single-attempt latency of one map / one reduce task: phase times are
	// wall-clock across the whole phase, so one task's work is the phase
	// work (time x parallelism) split across tasks.
	mapTasks := spec.NumMaps
	if mapTasks < 1 {
		mapTasks = 1
	}
	perMap := (t.MapRead + t.Broadcast + t.MapCompute + t.MapWrite) *
		float64(par.Effective) / float64(mapTasks)
	redTasks := 0
	perRed := 0.0
	if !spec.MapOnly() {
		redTasks = spec.NumReducers
		if redTasks < 1 {
			redTasks = 1
		}
		redDop := redTasks
		if max := cc.TotalCores(); redDop > max {
			redDop = max
		}
		perRed = (t.Shuffle + t.ReduceCompute + t.ReduceWrite) *
			float64(redDop) / float64(redTasks)
	}

	traced := tr.SpansEnabled()
	var retriedWork, stragglerTail float64
	sample := func(n int, perTask float64, kind string) error {
		for i := 0; i < n; i++ {
			rep.Tasks++
			attempts := 1
			for inj.TaskFails() {
				if attempts >= pol.MaxAttempts {
					if traced {
						tr.Complete(obs.LayerCluster, "task.attempt-failed", at, 0,
							obs.A("job", spec.Name), obs.A("kind", kind), obs.A("task", i),
							obs.A("attempts", attempts), obs.A("fatal", true))
					}
					return fmt.Errorf("%s %s task %d: %d attempts: %w",
						spec.Name, kind, i, attempts, ErrTaskFailed)
				}
				attempts++
				rep.Retries++
				retriedWork += perTask
				if traced {
					tr.Complete(obs.LayerCluster, "task.attempt-failed", at, 0,
						obs.A("job", spec.Name), obs.A("kind", kind), obs.A("task", i),
						obs.A("attempts", attempts), obs.A("fatal", false))
				}
			}
			if factor, ok := inj.Straggles(); ok {
				rep.Stragglers++
				factor, speculated := EffectiveSlowdown(factor, pol)
				if speculated {
					rep.Speculated++
				}
				stragglerTail += perTask * (factor - 1)
				if traced {
					tr.Complete(obs.LayerCluster, "task.straggler", at, perTask*(factor-1),
						obs.A("job", spec.Name), obs.A("kind", kind), obs.A("task", i),
						obs.A("factor", factor), obs.A("speculated", speculated))
				}
			}
		}
		return nil
	}
	if err := sample(mapTasks, perMap, "map"); err != nil {
		return t, rep, err
	}
	if err := sample(redTasks, perRed, "reduce"); err != nil {
		return t, rep, err
	}

	if rep.Any() {
		dop := par.Effective
		if dop < 1 {
			dop = 1
		}
		t.Recovery = retriedWork/float64(dop) + stragglerTail
		if rep.Retries > 0 {
			waves := (rep.Retries + par.Scheduled - 1) / par.Scheduled
			t.Recovery += pm.TaskLatency * float64(waves)
		}
		if rep.Speculated > 0 {
			// One extra launch wave for the speculative backups.
			t.Recovery += pm.TaskLatency
		}
	}
	return t, rep, nil
}
