package dml

// BlockKind classifies statement blocks in the program hierarchy.
type BlockKind int

// Statement block kinds; the hierarchy mirrors the control structure of
// the script (paper Appendix B, Figure 16(a)).
const (
	GenericBlock BlockKind = iota
	IfBlockKind
	WhileBlockKind
	ForBlockKind
)

func (k BlockKind) String() string {
	switch k {
	case GenericBlock:
		return "generic"
	case IfBlockKind:
		return "if"
	case WhileBlockKind:
		return "while"
	case ForBlockKind:
		return "for"
	}
	return "?"
}

// StatementBlock is one node of the program-block hierarchy. Generic blocks
// hold straight-line statements (and compile to one HOP DAG); control
// blocks hold a predicate plus nested child blocks.
type StatementBlock struct {
	Kind  BlockKind
	Stmts []Stmt // Generic only
	Pred  Expr   // If/While predicate
	// For header; Parallel marks parfor blocks.
	Var      string
	From, To Expr
	Parallel bool
	// Children.
	Then, Else []*StatementBlock // If
	Body       []*StatementBlock // While/For
	// FirstLine/LastLine delimit the source range for diagnostics.
	FirstLine, LastLine int
}

// BuildBlocks groups a statement list into the hierarchy of statement
// blocks: runs of straight-line statements become one generic block, and
// each control statement becomes its own block with nested children.
func BuildBlocks(stmts []Stmt) []*StatementBlock {
	var out []*StatementBlock
	var run []Stmt
	flush := func() {
		if len(run) == 0 {
			return
		}
		b := &StatementBlock{Kind: GenericBlock, Stmts: run,
			FirstLine: run[0].Line(), LastLine: run[len(run)-1].Line()}
		out = append(out, b)
		run = nil
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case *Assign:
			run = append(run, s)
			// Artificial recompilation cut after data-dependent operations
			// (paper Appendix B: "recompilation hooks are given by the
			// natural program structure or by artificially created cuts"):
			// downstream statements land in a fresh block that dynamic
			// recompilation can rebuild once the sizes are known.
			if exprContainsCall(st.Expr, "table") {
				flush()
			}
		case *ExprStmt:
			run = append(run, s)
		case *If:
			flush()
			b := &StatementBlock{Kind: IfBlockKind, Pred: st.Cond,
				Then: BuildBlocks(st.Then), Else: BuildBlocks(st.Else),
				FirstLine: st.SrcLine, LastLine: st.SrcLine}
			out = append(out, b)
		case *While:
			flush()
			b := &StatementBlock{Kind: WhileBlockKind, Pred: st.Cond,
				Body:      BuildBlocks(st.Body),
				FirstLine: st.SrcLine, LastLine: st.SrcLine}
			out = append(out, b)
		case *For:
			flush()
			b := &StatementBlock{Kind: ForBlockKind, Var: st.Var,
				From: st.From, To: st.To, Body: BuildBlocks(st.Body),
				Parallel:  st.Parallel,
				FirstLine: st.SrcLine, LastLine: st.SrcLine}
			out = append(out, b)
		}
	}
	flush()
	return out
}

// exprContainsCall reports whether the expression tree contains a call to
// the named builtin.
func exprContainsCall(e Expr, name string) bool {
	switch e := e.(type) {
	case *Call:
		if e.Name == name {
			return true
		}
		for _, a := range e.Args {
			if exprContainsCall(a, name) {
				return true
			}
		}
		for _, v := range e.Named {
			if exprContainsCall(v, name) {
				return true
			}
		}
	case *BinOp:
		return exprContainsCall(e.Left, name) || exprContainsCall(e.Right, name)
	case *UnOp:
		return exprContainsCall(e.X, name)
	case *Index:
		if exprContainsCall(e.Target, name) {
			return true
		}
		for _, r := range []*IndexRange{e.Row, e.Col} {
			if r != nil {
				if exprContainsCall(r.Lo, name) {
					return true
				}
				if r.Hi != nil && exprContainsCall(r.Hi, name) {
					return true
				}
			}
		}
	}
	return false
}

// CountBlocks returns the total number of statement blocks in the
// hierarchy (control blocks count themselves plus their children); this is
// the "#Blocks" program-size indicator of Table 1.
func CountBlocks(blocks []*StatementBlock) int {
	n := 0
	for _, b := range blocks {
		n++
		n += CountBlocks(b.Then)
		n += CountBlocks(b.Else)
		n += CountBlocks(b.Body)
	}
	return n
}

// Walk visits every block in the hierarchy in pre-order.
func Walk(blocks []*StatementBlock, fn func(*StatementBlock)) {
	for _, b := range blocks {
		fn(b)
		Walk(b.Then, fn)
		Walk(b.Else, fn)
		Walk(b.Body, fn)
	}
}

// LastLevel returns the leaf generic blocks of the hierarchy in execution
// order — the granularity of dynamic recompilation (paper §4.1).
func LastLevel(blocks []*StatementBlock) []*StatementBlock {
	var out []*StatementBlock
	Walk(blocks, func(b *StatementBlock) {
		if b.Kind == GenericBlock {
			out = append(out, b)
		}
	})
	return out
}
