package dml

import (
	"fmt"
	"strings"
)

// Expr is a DML expression node.
type Expr interface {
	exprNode()
	String() string
}

// Num is a numeric literal.
type Num struct{ Value float64 }

// Str is a string literal.
type Str struct{ Value string }

// Bool is TRUE or FALSE.
type Bool struct{ Value bool }

// Ident references a variable.
type Ident struct{ Name string }

// Param references a command-line parameter ($name).
type Param struct{ Name string }

// BinOp is a binary expression; Op is the surface operator ("+", "%*%",
// "<=", "&", ...).
type BinOp struct {
	Op          string
	Left, Right Expr
}

// UnOp is a unary expression ("-" or "!").
type UnOp struct {
	Op string
	X  Expr
}

// Call is a builtin or user function call. Named arguments (rows=n) are
// kept separately from positional ones.
type Call struct {
	Name  string
	Args  []Expr
	Named map[string]Expr
}

// IndexRange is one dimension of a right-indexing expression; nil bounds
// mean "all". Lo==Hi for single-element selection.
type IndexRange struct {
	Lo, Hi Expr // 1-based inclusive; Hi nil means single index Lo
}

// Index is a right-indexing expression X[rows, cols].
type Index struct {
	Target   Expr
	Row, Col *IndexRange // nil means all rows/cols
}

func (*Num) exprNode()   {}
func (*Str) exprNode()   {}
func (*Bool) exprNode()  {}
func (*Ident) exprNode() {}
func (*Param) exprNode() {}
func (*BinOp) exprNode() {}
func (*UnOp) exprNode()  {}
func (*Call) exprNode()  {}
func (*Index) exprNode() {}

func (e *Num) String() string   { return fmt.Sprintf("%g", e.Value) }
func (e *Str) String() string   { return fmt.Sprintf("%q", e.Value) }
func (e *Bool) String() string  { return strings.ToUpper(fmt.Sprintf("%t", e.Value)) }
func (e *Ident) String() string { return e.Name }
func (e *Param) String() string { return "$" + e.Name }
func (e *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *UnOp) String() string {
	if e.Op == "!" {
		// '!' has low precedence at expression level; parenthesize so the
		// printed form is unambiguous in operand position.
		return fmt.Sprintf("(!%s)", e.X)
	}
	return fmt.Sprintf("%s%s", e.Op, e.X)
}
func (e *Call) String() string {
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.String())
	}
	for k, v := range e.Named {
		parts = append(parts, k+"="+v.String())
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}
func (e *Index) String() string {
	fr := func(r *IndexRange) string {
		if r == nil {
			return ""
		}
		if r.Hi == nil {
			return r.Lo.String()
		}
		return r.Lo.String() + ":" + r.Hi.String()
	}
	return fmt.Sprintf("%s[%s,%s]", e.Target, fr(e.Row), fr(e.Col))
}

// Stmt is a DML statement node.
type Stmt interface {
	stmtNode()
	// Line is the 1-based source line of the statement.
	Line() int
}

// Assign is "target = expr" with optional left indexing target[r, c].
type Assign struct {
	Target  string
	LIndex  *Index // non-nil for left indexing; Target duplicated inside
	Expr    Expr
	SrcLine int
}

// ExprStmt is a bare call used for side effects (print, write).
type ExprStmt struct {
	Call    *Call
	SrcLine int
}

// If is a conditional with optional else branch.
type If struct {
	Cond       Expr
	Then, Else []Stmt
	SrcLine    int
}

// While is a predicated loop.
type While struct {
	Cond    Expr
	Body    []Stmt
	SrcLine int
}

// For is "for (v in from:to) { ... }"; Parallel marks parfor loops whose
// iterations are declared independent and may execute concurrently
// (task-parallel ML programs, the paper's future work and reference [6]).
type For struct {
	Var      string
	From, To Expr
	Body     []Stmt
	Parallel bool
	SrcLine  int
}

func (*Assign) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}

func (s *Assign) Line() int   { return s.SrcLine }
func (s *ExprStmt) Line() int { return s.SrcLine }
func (s *If) Line() int       { return s.SrcLine }
func (s *While) Line() int    { return s.SrcLine }
func (s *For) Line() int      { return s.SrcLine }

// Function is a user-defined DML function.
type Function struct {
	Name    string
	Params  []string
	Returns []string
	Body    []Stmt
	SrcLine int
}

// Program is a parsed DML script.
type Program struct {
	Stmts []Stmt
	Funcs map[string]*Function
	// Lines is the number of source lines, reported in Table 1.
	Lines int
}
