package dml

import (
	"fmt"
	"strings"
	"unicode"
)

// Lex tokenizes a DML script. Comments start with '#' and run to the end
// of the line. Operators include the R-style matrix multiply %*%.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	emit := func(k TokenKind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("dml: line %d: unterminated string", line)
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("dml: line %d: unterminated string", line)
			}
			emit(TokString, src[i+1:j])
			i = j + 1
		case isDigit(c) || c == '.' && i+1 < n && isDigit(src[i+1]):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := src[j]
				if isDigit(d) {
					j++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
				} else if (d == 'e' || d == 'E') && !seenExp && j+1 < n && (isDigit(src[j+1]) || src[j+1] == '-' || src[j+1] == '+') {
					seenExp = true
					j += 2
				} else {
					break
				}
			}
			emit(TokNumber, src[i:j])
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			if keywords[word] {
				emit(TokKeyword, word)
			} else {
				emit(TokIdent, word)
			}
			i = j
		case c == '$':
			j := i + 1
			for j < n && isIdentPart(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("dml: line %d: '$' must be followed by a parameter name", line)
			}
			emit(TokParam, src[i+1:j])
			i = j
		case c == '(':
			emit(TokLParen, "(")
			i++
		case c == ')':
			emit(TokRParen, ")")
			i++
		case c == '{':
			emit(TokLBrace, "{")
			i++
		case c == '}':
			emit(TokRBrace, "}")
			i++
		case c == '[':
			emit(TokLBracket, "[")
			i++
		case c == ']':
			emit(TokRBracket, "]")
			i++
		case c == ',':
			emit(TokComma, ",")
			i++
		case c == ';':
			emit(TokSemicolon, ";")
			i++
		case c == '%':
			// %*% matrix multiply; %/% integer division; %% modulus.
			if strings.HasPrefix(src[i:], "%*%") {
				emit(TokOp, "%*%")
				i += 3
			} else if strings.HasPrefix(src[i:], "%/%") {
				emit(TokOp, "%/%")
				i += 3
			} else if strings.HasPrefix(src[i:], "%%") {
				emit(TokOp, "%%")
				i += 2
			} else {
				return nil, fmt.Errorf("dml: line %d: unexpected '%%'", line)
			}
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "<-":
				if two == "<-" {
					emit(TokOp, "=")
				} else {
					emit(TokOp, two)
				}
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '^', '<', '>', '=', '!', '&', '|', ':':
				emit(TokOp, string(c))
				i++
			default:
				return nil, fmt.Errorf("dml: line %d: unexpected character %q", line, rune(c))
			}
		}
	}
	emit(TokEOF, "")
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return unicode.IsLetter(rune(c)) || c == '_' || c == '.' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
