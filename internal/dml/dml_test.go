package dml

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`X = read($X); # comment
q = X %*% p
if (a <= 3.5e2 & !b) { }`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Text)
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"%*%", "<=", "&", "!", "3.5e2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
	// $X param token.
	found := false
	for _, tok := range toks {
		if tok.Kind == TokParam && tok.Text == "X" {
			found = true
		}
	}
	if !found {
		t.Error("missing $X parameter token")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `a = $;`, `a ~ b`, "x = \"multi\nline\""} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexArrowAssign(t *testing.T) {
	toks, err := Lex("x <- 3")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokOp || toks[1].Text != "=" {
		t.Errorf("<- should lex as '=': %v", toks[1])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	p := mustParse(t, "z = a + b * c;")
	as := p.Stmts[0].(*Assign)
	if as.Expr.String() != "(a + (b * c))" {
		t.Errorf("precedence: %s", as.Expr)
	}
	p = mustParse(t, "z = t(X) %*% y + 1;")
	as = p.Stmts[0].(*Assign)
	if as.Expr.String() != "((t(X) %*% y) + 1)" {
		t.Errorf("matmul precedence: %s", as.Expr)
	}
	p = mustParse(t, "z = -a^2;")
	as = p.Stmts[0].(*Assign)
	if as.Expr.String() != "-(a ^ 2)" {
		t.Errorf("power/unary: %s", as.Expr)
	}
	p = mustParse(t, "z = a < b & c >= d | !e;")
	as = p.Stmts[0].(*Assign)
	if as.Expr.String() != "(((a < b) & (c >= d)) | (!e))" {
		t.Errorf("logic precedence: %s", as.Expr)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
x = 1;
while (continue & iter < maxi) {
  q = X %*% p;
  if (g < eps) {
    continue = FALSE;
  } else {
    iter = iter + 1;
  }
}
for (i in 1:10) {
  s = s + i;
}
print("done " + s);
`
	p := mustParse(t, src)
	if len(p.Stmts) != 4 {
		t.Fatalf("got %d statements", len(p.Stmts))
	}
	w, ok := p.Stmts[1].(*While)
	if !ok {
		t.Fatalf("stmt 1 is %T", p.Stmts[1])
	}
	if len(w.Body) != 2 {
		t.Errorf("while body has %d stmts", len(w.Body))
	}
	ifst, ok := w.Body[1].(*If)
	if !ok || len(ifst.Then) != 1 || len(ifst.Else) != 1 {
		t.Errorf("if/else parse wrong: %#v", w.Body[1])
	}
	f, ok := p.Stmts[2].(*For)
	if !ok || f.Var != "i" {
		t.Errorf("for parse wrong")
	}
	if _, ok := p.Stmts[3].(*ExprStmt); !ok {
		t.Errorf("print should be ExprStmt")
	}
}

func TestParseIndexing(t *testing.T) {
	p := mustParse(t, "Q = P[, 1:k] * X;")
	as := p.Stmts[0].(*Assign)
	bin := as.Expr.(*BinOp)
	idx := bin.Left.(*Index)
	if idx.Row != nil {
		t.Error("row range should be nil (all)")
	}
	if idx.Col == nil || idx.Col.Hi == nil {
		t.Error("col range should be 1:k")
	}
	// Left indexing.
	p = mustParse(t, "B[1, 1] = 3;")
	as = p.Stmts[0].(*Assign)
	if as.LIndex == nil {
		t.Error("left index missing")
	}
	// Single-element right indexing.
	p = mustParse(t, "v = A[i, j];")
	as = p.Stmts[0].(*Assign)
	ix := as.Expr.(*Index)
	if ix.Row == nil || ix.Row.Hi != nil || ix.Col == nil {
		t.Errorf("single-element index wrong: %s", as.Expr)
	}
}

func TestParseCalls(t *testing.T) {
	p := mustParse(t, `M = matrix(0, rows=nrow(X), cols=1);`)
	as := p.Stmts[0].(*Assign)
	call := as.Expr.(*Call)
	if call.Name != "matrix" || len(call.Args) != 1 || len(call.Named) != 2 {
		t.Errorf("call parse wrong: %s", call)
	}
	if _, ok := call.Named["rows"].(*Call); !ok {
		t.Errorf("nested call in named arg: %s", call.Named["rows"])
	}
}

func TestParseFunction(t *testing.T) {
	src := `
f = function(A, b) return (x) {
  x = solve(A, b);
}
y = f(M, v);
`
	p := mustParse(t, src)
	fn, ok := p.Funcs["f"]
	if !ok {
		t.Fatal("function f not registered")
	}
	if len(fn.Params) != 2 || len(fn.Returns) != 1 || len(fn.Body) != 1 {
		t.Errorf("function shape wrong: %+v", fn)
	}
	if len(p.Stmts) != 1 {
		t.Errorf("got %d top-level stmts", len(p.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = ;",
		"if (x { }",
		"while x { }",
		"for (i in 1) { }",
		"x = foo(a b);",
		"3 = x;",
		"x = (a",
		"f = function(x) { }", // missing return clause
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestBuildBlocks(t *testing.T) {
	src := `
a = 1;
b = 2;
while (a < 10) {
  a = a + 1;
  if (a == 5) {
    b = b * 2;
  }
  c = a;
}
d = b;
`
	p := mustParse(t, src)
	blocks := BuildBlocks(p.Stmts)
	// Top: generic(a,b), while, generic(d).
	if len(blocks) != 3 {
		t.Fatalf("top-level blocks = %d, want 3", len(blocks))
	}
	if blocks[0].Kind != GenericBlock || len(blocks[0].Stmts) != 2 {
		t.Errorf("block 0: %v %d", blocks[0].Kind, len(blocks[0].Stmts))
	}
	if blocks[1].Kind != WhileBlockKind {
		t.Errorf("block 1 kind: %v", blocks[1].Kind)
	}
	// While body: generic(a=a+1), if, generic(c=a).
	if len(blocks[1].Body) != 3 {
		t.Errorf("while body blocks = %d, want 3", len(blocks[1].Body))
	}
	// Total: 3 top + 3 in while + 1 in if = 7.
	if n := CountBlocks(blocks); n != 7 {
		t.Errorf("CountBlocks = %d, want 7", n)
	}
	leaves := LastLevel(blocks)
	if len(leaves) != 5 {
		t.Errorf("LastLevel = %d generic blocks, want 5", len(leaves))
	}
}

func TestCountLines(t *testing.T) {
	p := mustParse(t, "a = 1;\nb = 2;\n")
	if p.Lines != 2 {
		t.Errorf("Lines = %d, want 2", p.Lines)
	}
	p = mustParse(t, "a = 1")
	if p.Lines != 1 {
		t.Errorf("Lines = %d, want 1", p.Lines)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
if (a == 1) { x = 1;
} else if (a == 2) { x = 2;
} else { x = 3;
}
`
	p := mustParse(t, src)
	top := p.Stmts[0].(*If)
	if len(top.Else) != 1 {
		t.Fatalf("else branch stmts = %d", len(top.Else))
	}
	if _, ok := top.Else[0].(*If); !ok {
		t.Errorf("else-if should nest an If, got %T", top.Else[0])
	}
}
