package dml

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression of bounded depth.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &Num{Value: float64(rng.Intn(100))}
		case 1:
			return &Ident{Name: string(rune('a' + rng.Intn(26)))}
		default:
			return &Bool{Value: rng.Intn(2) == 0}
		}
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"+", "-", "*", "/", "<", ">", "==", "&", "|", "%*%"}
		return &BinOp{Op: ops[rng.Intn(len(ops))],
			Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 1:
		op := "-"
		if rng.Intn(2) == 0 {
			op = "!"
		}
		return &UnOp{Op: op, X: genExpr(rng, depth-1)}
	case 2:
		return &Call{Name: "sum", Args: []Expr{genExpr(rng, depth-1)}}
	default:
		return genExpr(rng, depth-1)
	}
}

// TestExprStringReparseFixpoint: printing an expression and re-parsing it
// yields the same printed form (String is a normal form).
func TestExprStringReparseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		src := "x = " + e.String() + ";"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("unparseable print of %T: %s (%v)", e, src, err)
			return false
		}
		as, ok := prog.Stmts[0].(*Assign)
		if !ok {
			return false
		}
		return as.Expr.String() == e.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeeplyNestedParse: pathological nesting parses without issue.
func TestDeeplyNestedParse(t *testing.T) {
	depth := 200
	src := "x = " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + ";"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	// Long binary chain.
	var sb strings.Builder
	sb.WriteString("y = 1")
	for i := 0; i < 2000; i++ {
		sb.WriteString(" + 1")
	}
	sb.WriteString(";")
	if _, err := Parse(sb.String()); err != nil {
		t.Fatalf("long chain: %v", err)
	}
	// Deeply nested control flow.
	sb.Reset()
	for i := 0; i < 100; i++ {
		sb.WriteString("if (a > 0) {\n")
	}
	sb.WriteString("b = 1;\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("}\n")
	}
	prog, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("deep ifs: %v", err)
	}
	if n := CountBlocks(BuildBlocks(prog.Stmts)); n != 101 {
		t.Errorf("deep-if blocks = %d, want 101", n)
	}
}

// TestBlockPartitionProperty: statement blocks partition statements — the
// number of statements across generic blocks equals the input count for
// straight-line programs.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%40) + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString("a = 1;\n")
		}
		prog, err := Parse(sb.String())
		if err != nil {
			return false
		}
		blocks := BuildBlocks(prog.Stmts)
		total := 0
		Walk(blocks, func(b *StatementBlock) { total += len(b.Stmts) })
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
