package dml

import (
	"strings"
	"testing"
)

func TestInlineSimpleFunction(t *testing.T) {
	src := `
scale = function(M, f) return (R) {
  R = M * f;
}
A = read($A);
B = scale(A, 2);
write(B, "/out/B");
`
	prog := mustParse(t, src)
	stmts, err := InlineFunctions(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Expanded: A=read, param binds (2), body (1), result assign (1), write.
	if len(stmts) != 6 {
		t.Fatalf("inlined to %d statements, want 6", len(stmts))
	}
	// All function-local names are renamed.
	for _, s := range stmts[1:4] {
		as, ok := s.(*Assign)
		if !ok {
			t.Fatalf("expected assigns, got %T", s)
		}
		if !strings.HasPrefix(as.Target, "_scale") {
			t.Errorf("unrenamed target %q", as.Target)
		}
	}
}

func TestInlineNestedCallsAndControlFlow(t *testing.T) {
	src := `
inner = function(x) return (y) {
  y = x + 1;
}
outer = function(x) return (y) {
  y = 0;
  for (i in 1:3) {
    t = inner(x);
    y = y + t;
  }
}
r = outer(5);
print(r);
`
	prog := mustParse(t, src)
	stmts, err := InlineFunctions(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The for loop survives inlining with a renamed loop variable.
	var forStmt *For
	for _, s := range stmts {
		if f, ok := s.(*For); ok {
			forStmt = f
		}
	}
	if forStmt == nil {
		t.Fatal("for loop lost during inlining")
	}
	if !strings.HasPrefix(forStmt.Var, "_outer") {
		t.Errorf("loop var not renamed: %q", forStmt.Var)
	}
	// The nested inner() call was expanded inside the loop body.
	foundInner := false
	for _, s := range forStmt.Body {
		if as, ok := s.(*Assign); ok && strings.Contains(as.Target, "_inner") {
			foundInner = true
		}
	}
	if !foundInner {
		t.Error("nested call not inlined inside loop body")
	}
}

func TestInlineErrors(t *testing.T) {
	// Wrong arity.
	src := `
f = function(a, b) return (c) { c = a + b; }
x = f(1);
`
	prog := mustParse(t, src)
	if _, err := InlineFunctions(prog); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Recursion exceeds depth.
	src = `
f = function(a) return (c) { c = f(a); }
x = f(1);
`
	prog = mustParse(t, src)
	if _, err := InlineFunctions(prog); err == nil {
		t.Error("recursion should fail inlining")
	}
}

func TestInlineInsideControlStatements(t *testing.T) {
	src := `
g = function(a) return (c) { c = a * a; }
x = 0;
if (x < 1) {
  x = g(3);
} else {
  while (x > 0) {
    x = g(x);
  }
}
print(x);
`
	prog := mustParse(t, src)
	stmts, err := InlineFunctions(prog)
	if err != nil {
		t.Fatal(err)
	}
	ifStmt, ok := stmts[1].(*If)
	if !ok {
		t.Fatalf("expected If, got %T", stmts[1])
	}
	if len(ifStmt.Then) < 3 {
		t.Errorf("then-branch call not expanded: %d stmts", len(ifStmt.Then))
	}
	w, ok := ifStmt.Else[0].(*While)
	if !ok {
		t.Fatalf("expected While in else, got %T", ifStmt.Else[0])
	}
	if len(w.Body) < 3 {
		t.Errorf("while-body call not expanded: %d stmts", len(w.Body))
	}
}

func TestExprContainsCall(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Y = table(a, b);", true},
		{"Y = t(table(a, b));", true},
		{"Y = a + table(seq(1, n), y);", true},
		{"Y = M[table(a, b), 1];", true},
		{"Y = matrix(0, rows=nrow(table(a, b)), cols=1);", true},
		{"Y = t(a) %*% b;", false},
		{"Y = M[1, 2];", false},
	}
	for _, c := range cases {
		prog := mustParse(t, c.src)
		as := prog.Stmts[0].(*Assign)
		if got := exprContainsCall(as.Expr, "table"); got != c.want {
			t.Errorf("exprContainsCall(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	prog := mustParse(t, `x = a[1:2, ] + -b * (!c);
s = "lit";
p = $param;
`)
	got := prog.Stmts[0].(*Assign).Expr.String()
	if got != "(a[1:2,] + (-b * (!c)))" {
		t.Errorf("expr string = %q", got)
	}
	if s := prog.Stmts[1].(*Assign).Expr.String(); s != `"lit"` {
		t.Errorf("str literal = %q", s)
	}
	if s := prog.Stmts[2].(*Assign).Expr.String(); s != "$param" {
		t.Errorf("param = %q", s)
	}
	for _, k := range []BlockKind{GenericBlock, IfBlockKind, WhileBlockKind, ForBlockKind} {
		if k.String() == "?" {
			t.Errorf("BlockKind %d unnamed", k)
		}
	}
	for _, k := range []TokenKind{TokEOF, TokNumber, TokString, TokIdent, TokParam,
		TokKeyword, TokOp, TokLParen, TokRParen, TokLBrace, TokRBrace,
		TokLBracket, TokRBracket, TokComma, TokSemicolon} {
		if k.String() == "?" {
			t.Errorf("TokenKind %d unnamed", k)
		}
	}
}
