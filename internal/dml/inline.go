package dml

import "fmt"

// InlineFunctions expands user-defined function calls into the main
// statement list: parameter bindings, the renamed function body, and the
// result assignment are spliced at the call site. DML functions see only
// their parameters, so renaming every identifier in the body with a unique
// prefix preserves semantics. A function call must be the entire right-hand
// side of an assignment (the form used in practice).
func InlineFunctions(prog *Program) ([]Stmt, error) {
	in := &inliner{funcs: prog.Funcs, maxDepth: 16}
	return in.stmts(prog.Stmts, 0)
}

type inliner struct {
	funcs    map[string]*Function
	counter  int
	maxDepth int
}

func (in *inliner) stmts(list []Stmt, depth int) ([]Stmt, error) {
	if depth > in.maxDepth {
		return nil, fmt.Errorf("dml: function inlining exceeded depth %d (recursion?)", in.maxDepth)
	}
	var out []Stmt
	for _, s := range list {
		switch st := s.(type) {
		case *Assign:
			if call, ok := st.Expr.(*Call); ok {
				if fn, isUser := in.funcs[call.Name]; isUser {
					expanded, err := in.expand(fn, call, []string{st.Target}, st.SrcLine, depth)
					if err != nil {
						return nil, err
					}
					out = append(out, expanded...)
					continue
				}
			}
			out = append(out, st)
		case *ExprStmt:
			if fn, isUser := in.funcs[st.Call.Name]; isUser {
				expanded, err := in.expand(fn, st.Call, nil, st.SrcLine, depth)
				if err != nil {
					return nil, err
				}
				out = append(out, expanded...)
				continue
			}
			out = append(out, st)
		case *If:
			thenB, err := in.stmts(st.Then, depth)
			if err != nil {
				return nil, err
			}
			elseB, err := in.stmts(st.Else, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &If{Cond: st.Cond, Then: thenB, Else: elseB, SrcLine: st.SrcLine})
		case *While:
			body, err := in.stmts(st.Body, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &While{Cond: st.Cond, Body: body, SrcLine: st.SrcLine})
		case *For:
			body, err := in.stmts(st.Body, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, &For{Var: st.Var, From: st.From, To: st.To, Body: body,
				Parallel: st.Parallel, SrcLine: st.SrcLine})
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

func (in *inliner) expand(fn *Function, call *Call, targets []string, line int, depth int) ([]Stmt, error) {
	if len(call.Args) != len(fn.Params) {
		return nil, fmt.Errorf("dml: line %d: %s expects %d arguments, got %d",
			line, fn.Name, len(fn.Params), len(call.Args))
	}
	if len(targets) > len(fn.Returns) {
		return nil, fmt.Errorf("dml: line %d: %s returns %d values, %d requested",
			line, fn.Name, len(fn.Returns), len(targets))
	}
	in.counter++
	prefix := fmt.Sprintf("_%s%d_", fn.Name, in.counter)
	rename := func(name string) string { return prefix + name }

	var out []Stmt
	for i, pname := range fn.Params {
		out = append(out, &Assign{Target: rename(pname), Expr: call.Args[i], SrcLine: line})
	}
	body := renameStmts(fn.Body, rename)
	body, err := in.stmts(body, depth+1) // inline nested calls
	if err != nil {
		return nil, err
	}
	out = append(out, body...)
	for i, tgt := range targets {
		out = append(out, &Assign{Target: tgt, Expr: &Ident{Name: rename(fn.Returns[i])}, SrcLine: line})
	}
	return out, nil
}

func renameStmts(list []Stmt, rn func(string) string) []Stmt {
	out := make([]Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *Assign:
			a := &Assign{Target: rn(st.Target), Expr: renameExpr(st.Expr, rn), SrcLine: st.SrcLine}
			if st.LIndex != nil {
				a.LIndex = renameExpr(st.LIndex, rn).(*Index)
			}
			out = append(out, a)
		case *ExprStmt:
			out = append(out, &ExprStmt{Call: renameExpr(st.Call, rn).(*Call), SrcLine: st.SrcLine})
		case *If:
			out = append(out, &If{Cond: renameExpr(st.Cond, rn),
				Then: renameStmts(st.Then, rn), Else: renameStmts(st.Else, rn), SrcLine: st.SrcLine})
		case *While:
			out = append(out, &While{Cond: renameExpr(st.Cond, rn),
				Body: renameStmts(st.Body, rn), SrcLine: st.SrcLine})
		case *For:
			out = append(out, &For{Var: rn(st.Var), From: renameExpr(st.From, rn),
				To: renameExpr(st.To, rn), Body: renameStmts(st.Body, rn),
				Parallel: st.Parallel, SrcLine: st.SrcLine})
		}
	}
	return out
}

func renameExpr(e Expr, rn func(string) string) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{Name: rn(e.Name)}
	case *BinOp:
		return &BinOp{Op: e.Op, Left: renameExpr(e.Left, rn), Right: renameExpr(e.Right, rn)}
	case *UnOp:
		return &UnOp{Op: e.Op, X: renameExpr(e.X, rn)}
	case *Call:
		c := &Call{Name: e.Name}
		for _, a := range e.Args {
			c.Args = append(c.Args, renameExpr(a, rn))
		}
		if e.Named != nil {
			c.Named = make(map[string]Expr, len(e.Named))
			for k, v := range e.Named {
				c.Named[k] = renameExpr(v, rn)
			}
		}
		return c
	case *Index:
		idx := &Index{Target: renameExpr(e.Target, rn)}
		idx.Row = renameRange(e.Row, rn)
		idx.Col = renameRange(e.Col, rn)
		return idx
	default:
		return e // literals and params are immutable
	}
}

func renameRange(r *IndexRange, rn func(string) string) *IndexRange {
	if r == nil {
		return nil
	}
	nr := &IndexRange{Lo: renameExpr(r.Lo, rn)}
	if r.Hi != nil {
		nr.Hi = renameExpr(r.Hi, rn)
	}
	return nr
}
