// Package dml implements the frontend of the declarative ML language: an
// R-like scripting language with linear algebra, statistical functions and
// control flow (paper §2.1). Scripts are lexed, parsed into an AST, and
// grouped into the hierarchy of statement blocks that drives HOP DAG
// construction and — crucially for the resource optimizer — defines the
// per-block MR resources r_i of the configuration vector R_P.
package dml

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNumber
	TokString
	TokIdent
	TokParam // $name command-line parameter
	TokKeyword
	TokOp
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokIdent:
		return "identifier"
	case TokParam:
		return "parameter"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokSemicolon:
		return "';'"
	}
	return "?"
}

// Token is one lexical token with its source line (1-based).
type Token struct {
	Kind TokenKind
	Text string
	Line int
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q (line %d)", t.Kind, t.Text, t.Line)
}

var keywords = map[string]bool{
	"if": true, "else": true, "while": true, "for": true, "in": true,
	"function": true, "return": true, "TRUE": true, "FALSE": true,
	"parfor": true,
}
