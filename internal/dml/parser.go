package dml

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse lexes and parses a DML script into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Funcs: make(map[string]*Function), Lines: countLines(src)}
	for !p.at(TokEOF) {
		st, fn, err := p.parseTopLevel()
		if err != nil {
			return nil, err
		}
		if fn != nil {
			if _, dup := prog.Funcs[fn.Name]; dup {
				return nil, fmt.Errorf("dml: line %d: duplicate function %q", fn.SrcLine, fn.Name)
			}
			prog.Funcs[fn.Name] = fn
		} else if st != nil {
			prog.Stmts = append(prog.Stmts, st)
		}
	}
	return prog, nil
}

func countLines(src string) int {
	if src == "" {
		return 0
	}
	n := strings.Count(src, "\n")
	if !strings.HasSuffix(src, "\n") {
		n++
	}
	return n
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }
func (p *parser) atOp(op string) bool { return p.cur().Kind == TokOp && p.cur().Text == op }
func (p *parser) atKw(kw string) bool { return p.cur().Kind == TokKeyword && p.cur().Text == kw }
func (p *parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, fmt.Errorf("dml: line %d: expected %s, got %s", p.cur().Line, k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectOp(op string) error {
	if !p.atOp(op) {
		return fmt.Errorf("dml: line %d: expected %q, got %s", p.cur().Line, op, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) skipSemis() {
	for p.at(TokSemicolon) {
		p.next()
	}
}

// parseTopLevel parses either a function definition or a statement.
func (p *parser) parseTopLevel() (Stmt, *Function, error) {
	p.skipSemis()
	if p.at(TokEOF) {
		return nil, nil, nil
	}
	// Function definition: IDENT = function (...)
	if p.at(TokIdent) && p.peek().Kind == TokOp && p.peek().Text == "=" {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokKeyword && p.toks[p.pos+2].Text == "function" {
			return p.parseFunction()
		}
	}
	st, err := p.parseStmt()
	return st, nil, err
}

func (p *parser) parseFunction() (Stmt, *Function, error) {
	nameTok := p.next() // ident
	p.next()            // '='
	fnTok := p.next()   // 'function'
	fn := &Function{Name: nameTok.Text, SrcLine: fnTok.Line}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, nil, err
	}
	for !p.at(TokRParen) {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, nil, err
		}
		fn.Params = append(fn.Params, t.Text)
		// Optional default value "param = expr" — recorded but ignored.
		if p.atOp("=") {
			p.next()
			if _, err := p.parseExpr(); err != nil {
				return nil, nil, err
			}
		}
		if p.at(TokComma) {
			p.next()
		}
	}
	p.next() // ')'
	if !p.atKw("return") {
		return nil, nil, fmt.Errorf("dml: line %d: function %q missing return clause", fn.SrcLine, fn.Name)
	}
	p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, nil, err
	}
	for !p.at(TokRParen) {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, nil, err
		}
		fn.Returns = append(fn.Returns, t.Text)
		if p.at(TokComma) {
			p.next()
		}
	}
	p.next() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, nil, err
	}
	fn.Body = body
	return nil, fn, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		p.skipSemis()
		if p.at(TokRBrace) {
			p.next()
			return stmts, nil
		}
		if p.at(TokEOF) {
			return nil, fmt.Errorf("dml: unexpected EOF in block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("while"):
		return p.parseWhile()
	case p.atKw("for") || p.atKw("parfor"):
		return p.parseFor()
	case p.at(TokIdent):
		return p.parseAssignOrCall()
	default:
		return nil, fmt.Errorf("dml: line %d: unexpected %s at statement start", p.cur().Line, p.cur())
	}
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.next().Line // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	thenB, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	var elseB []Stmt
	if p.atKw("else") {
		p.next()
		if p.atKw("if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			elseB = []Stmt{nested}
		} else {
			elseB, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return &If{Cond: cond, Then: thenB, Else: elseB, SrcLine: line}, nil
}

func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.at(TokLBrace) {
		return p.parseBlock()
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{st}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	line := p.next().Line
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, SrcLine: line}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	tok := p.next() // for/parfor
	line := tok.Line
	parallel := tok.Text == "parfor"
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if !p.atKw("in") {
		return nil, fmt.Errorf("dml: line %d: expected 'in' in for header", p.cur().Line)
	}
	p.next()
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &For{Var: v.Text, From: from, To: to, Body: body, Parallel: parallel, SrcLine: line}, nil
}

func (p *parser) parseAssignOrCall() (Stmt, error) {
	start := p.pos
	id := p.next() // ident
	// Bare call statement: print(...), write(...), user functions.
	if p.at(TokLParen) {
		p.pos = start
		expr, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		call, ok := expr.(*Call)
		if !ok {
			return nil, fmt.Errorf("dml: line %d: expression statement must be a call", id.Line)
		}
		p.skipSemis()
		return &ExprStmt{Call: call, SrcLine: id.Line}, nil
	}
	// Left indexing: X[r, c] = expr.
	var lidx *Index
	if p.at(TokLBracket) {
		idx, err := p.parseIndexSuffix(&Ident{Name: id.Text})
		if err != nil {
			return nil, err
		}
		lidx = idx
	}
	// Multi-assign from function call: [a, b] = f(...) is not in our DML
	// subset; the scripts use single returns.
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSemis()
	return &Assign{Target: id.Text, LIndex: lidx, Expr: expr, SrcLine: id.Line}, nil
}

// Expression parsing with R-like precedence.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atOp("|") || p.atOp("||") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "|", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atOp("&") || p.atOp("&&") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atOp("!") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "!", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	for p.atOp("==") || p.atOp("!=") || p.atOp("<") || p.atOp("<=") || p.atOp(">") || p.atOp(">=") {
		op := p.next().Text
		right, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAddSub() (Expr, error) {
	left, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next().Text
		right, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMulDiv() (Expr, error) {
	left, err := p.parseMatMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%%") || p.atOp("%/%") {
		op := p.next().Text
		right, err := p.parseMatMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMatMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("%*%") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "%*%", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", X: x}, nil
	}
	// '!' in operand position (e.g. "1 + !x") binds tightly, as in R.
	if p.atOp("!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "!", X: x}, nil
	}
	if p.atOp("+") {
		p.next()
		return p.parseUnary()
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	base, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.atOp("^") {
		p.next()
		exp, err := p.parseUnary() // right associative
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "^", Left: base, Right: exp}, nil
	}
	return base, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokLBracket) {
		idx, err := p.parseIndexSuffix(e)
		if err != nil {
			return nil, err
		}
		e = idx
	}
	return e, nil
}

// parseIndexSuffix parses "[rows, cols]" after target.
func (p *parser) parseIndexSuffix(target Expr) (*Index, error) {
	p.next() // '['
	idx := &Index{Target: target}
	parseRange := func() (*IndexRange, error) {
		if p.at(TokComma) || p.at(TokRBracket) {
			return nil, nil // empty => all
		}
		lo, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		r := &IndexRange{Lo: lo}
		if p.atOp(":") {
			p.next()
			hi, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			r.Hi = hi
		}
		return r, nil
	}
	var err error
	idx.Row, err = parseRange()
	if err != nil {
		return nil, err
	}
	if p.at(TokComma) {
		p.next()
		idx.Col, err = parseRange()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return idx, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("dml: line %d: bad number %q", t.Line, t.Text)
		}
		return &Num{Value: v}, nil
	case TokString:
		p.next()
		return &Str{Value: t.Text}, nil
	case TokParam:
		p.next()
		return &Param{Name: t.Text}, nil
	case TokKeyword:
		if t.Text == "TRUE" || t.Text == "FALSE" {
			p.next()
			return &Bool{Value: t.Text == "TRUE"}, nil
		}
		return nil, fmt.Errorf("dml: line %d: unexpected keyword %q in expression", t.Line, t.Text)
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			return p.parseCall(t)
		}
		return &Ident{Name: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("dml: line %d: unexpected %s in expression", t.Line, t)
	}
}

func (p *parser) parseCall(name Token) (Expr, error) {
	p.next() // '('
	call := &Call{Name: name.Text}
	for !p.at(TokRParen) {
		// Named argument: ident '=' expr (but not ident '==').
		if p.at(TokIdent) && p.peek().Kind == TokOp && p.peek().Text == "=" {
			key := p.next().Text
			p.next() // '='
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if call.Named == nil {
				call.Named = make(map[string]Expr)
			}
			call.Named[key] = v
		} else {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		if p.at(TokComma) {
			p.next()
		} else if !p.at(TokRParen) {
			return nil, fmt.Errorf("dml: line %d: expected ',' or ')' in call to %s", p.cur().Line, name.Text)
		}
	}
	p.next() // ')'
	return call, nil
}
