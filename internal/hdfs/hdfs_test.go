package hdfs

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/matrix"
)

func TestPutStatReadDelete(t *testing.T) {
	fs := New()
	m := matrix.Random(10, 5, 1.0, 0, 1, 1)
	f := fs.PutMatrix("/data/X", m)
	if f.Rows != 10 || f.Cols != 5 || f.NNZ != 50 {
		t.Fatalf("metadata wrong: %+v", f)
	}
	got, err := fs.Stat("/data/X")
	if err != nil || got != f {
		t.Fatalf("Stat: %v", err)
	}
	if !fs.Exists("/data/X") || fs.Exists("/data/Y") {
		t.Fatal("Exists wrong")
	}
	r, err := fs.Read("/data/X")
	if err != nil || r.Data == nil {
		t.Fatalf("Read: %v", err)
	}
	if fs.BytesRead() != f.SizeOnDisk() {
		t.Errorf("BytesRead = %v, want %v", fs.BytesRead(), f.SizeOnDisk())
	}
	if err := fs.Delete("/data/X"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := fs.Delete("/data/X"); err == nil {
		t.Fatal("double delete should fail")
	}
	if _, err := fs.Stat("/data/X"); err == nil {
		t.Fatal("Stat after delete should fail")
	}
}

func TestDescriptorSizeAndSplits(t *testing.T) {
	fs := New()
	// 8GB dense scenario: 1e9 cells.
	f := fs.PutDescriptor("/data/L", 1e7, 100, 1e9, BinaryBlock)
	if f.Sparsity() != 1.0 {
		t.Errorf("sparsity = %v", f.Sparsity())
	}
	if f.SizeOnDisk() != conf.Bytes(8e9) {
		t.Errorf("SizeOnDisk = %v, want 8e9 bytes", f.SizeOnDisk())
	}
	// ceil(8e9 / 128MiB) = 60 splits.
	if n := f.Splits(128 * conf.MB); n != 60 {
		t.Errorf("Splits = %d, want 60", n)
	}
	// Tiny files are one split.
	small := fs.PutDescriptor("/data/S", 10, 10, 100, BinaryBlock)
	if n := small.Splits(128 * conf.MB); n != 1 {
		t.Errorf("small Splits = %d, want 1", n)
	}
	if small.Splits(0) != 1 {
		t.Error("zero block size should yield 1 split")
	}
}

func TestSparseDescriptorSize(t *testing.T) {
	fs := New()
	dense := fs.PutDescriptor("/d", 1e6, 1000, 1e9, BinaryBlock)
	sparse := fs.PutDescriptor("/s", 1e6, 1000, 1e7, BinaryBlock)
	if sparse.SizeOnDisk() >= dense.SizeOnDisk() {
		t.Errorf("sparse %v should be smaller than dense %v", sparse.SizeOnDisk(), dense.SizeOnDisk())
	}
}

func TestCSVFormatSize(t *testing.T) {
	fs := New()
	f := fs.PutDescriptor("/csv", 100, 100, 10000, TextCSV)
	if f.SizeOnDisk() != 100*100*12 {
		t.Errorf("CSV size = %v", f.SizeOnDisk())
	}
	if f.Format.String() != "csv" {
		t.Error("format string")
	}
}

func TestList(t *testing.T) {
	fs := New()
	fs.PutDescriptor("/b", 1, 1, 1, BinaryBlock)
	fs.PutDescriptor("/a", 1, 1, 1, BinaryBlock)
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("List = %v", got)
	}
}
