// Package hdfs simulates the distributed file system underlying the ML
// system: named files carrying matrix metadata (dimensions, non-zeros,
// format), optionally backed by real in-memory payloads (small data) or by
// metadata-only descriptors (large simulated scenarios). Block size drives
// the number of input splits and hence map task counts.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/matrix"
	"elasticml/internal/obs"
)

// ErrTransientRead is the injected transient failure of a DFS read (a
// flaky DataNode connection); clients recover by re-reading the replica.
var ErrTransientRead = errors.New("hdfs: transient read error")

// Format is the on-disk file format.
type Format int

// File formats. Binary block is the system's native format; text formats
// incur a parse factor in the IO model.
const (
	BinaryBlock Format = iota
	TextCSV
)

func (f Format) String() string {
	if f == TextCSV {
		return "csv"
	}
	return "binary"
}

// File is a stored matrix: metadata plus an optional real payload.
type File struct {
	// Name is the absolute path of the file.
	Name string
	// Rows, Cols, NNZ describe the stored matrix.
	Rows, Cols, NNZ int64
	// Format is the serialization format.
	Format Format
	// Data holds the real payload for value-mode execution; nil for
	// metadata-only descriptors used by large simulated scenarios.
	Data *matrix.Matrix
}

// Sparsity returns nnz/(rows*cols), or 1 for degenerate dimensions.
func (f *File) Sparsity() float64 {
	cells := f.Rows * f.Cols
	if cells <= 0 {
		return 1
	}
	return float64(f.NNZ) / float64(cells)
}

// SizeOnDisk returns the serialized size of the file. Binary block size
// equals the in-memory estimate; CSV is approximated at 12 bytes/cell.
func (f *File) SizeOnDisk() conf.Bytes {
	if f.Format == TextCSV {
		return conf.Bytes(f.Rows * f.Cols * 12)
	}
	return matrix.EstimateSize(f.Rows, f.Cols, f.Sparsity())
}

// Splits returns the number of input splits for the given DFS block size,
// which determines the number of map tasks of jobs reading this file.
func (f *File) Splits(blockSize conf.Bytes) int {
	if blockSize <= 0 {
		return 1
	}
	n := int((f.SizeOnDisk() + blockSize - 1) / blockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// FS is an in-memory simulated DFS. It is safe for concurrent use.
type FS struct {
	mu    sync.RWMutex
	files map[string]*File

	// IO accounting for tests and experiment reports.
	bytesRead    conf.Bytes
	bytesWritten conf.Bytes

	// readFault, when set, is sampled before each Read; a true draw fails
	// the read with ErrTransientRead (fault injection hook).
	readFault func() bool

	// trace, when set, records hdfs.* counters and an instant event per
	// injected transient read failure.
	trace *obs.Tracer
}

// SetTracer attaches an observability tracer (nil detaches): reads, written
// and read bytes, and transient read errors are recorded as hdfs.* metrics,
// with a cluster-layer instant event per injected failure.
func (fs *FS) SetTracer(tr *obs.Tracer) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trace = tr
}

func (fs *FS) tracer() *obs.Tracer {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.trace
}

// New returns an empty file system.
func New() *FS {
	return &FS{files: make(map[string]*File)}
}

// PutMatrix stores a real matrix under the given name in binary format.
func (fs *FS) PutMatrix(name string, m *matrix.Matrix) *File {
	f := &File{
		Name:   name,
		Rows:   int64(m.Rows()),
		Cols:   int64(m.Cols()),
		NNZ:    m.NNZ(),
		Format: BinaryBlock,
		Data:   m,
	}
	fs.put(f)
	return f
}

// PutDescriptor stores a metadata-only file (no payload), as used by large
// simulated scenarios.
func (fs *FS) PutDescriptor(name string, rows, cols, nnz int64, format Format) *File {
	f := &File{Name: name, Rows: rows, Cols: cols, NNZ: nnz, Format: format}
	fs.put(f)
	return f
}

func (fs *FS) put(f *File) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[f.Name] = f
	fs.bytesWritten += f.SizeOnDisk()
	m := fs.trace.Metrics()
	m.Add("hdfs.writes", 1)
	m.Add("hdfs.bytes_written", int64(f.SizeOnDisk()))
}

// Stat returns the file metadata, or an error if it does not exist.
func (fs *FS) Stat(name string) (*File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", name)
	}
	return f, nil
}

// SetReadFault installs (or, with nil, removes) the transient-read fault
// sampler. The signature matches fault.Injector.HDFSReadFails.
func (fs *FS) SetReadFault(fn func() bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.readFault = fn
}

// Read returns the file and accounts the read bytes. With a read-fault
// sampler installed, a failed draw returns ErrTransientRead before any
// bytes are accounted.
func (fs *FS) Read(name string) (*File, error) {
	f, err := fs.Stat(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fault := fs.readFault
	tr := fs.trace
	fs.mu.Unlock()
	if fault != nil && fault() {
		tr.Instant(obs.LayerCluster, "hdfs.transient-read-error", obs.A("file", name))
		tr.Metrics().Add("hdfs.transient_errors", 1)
		return nil, fmt.Errorf("hdfs: read %q: %w", name, ErrTransientRead)
	}
	fs.mu.Lock()
	fs.bytesRead += f.SizeOnDisk()
	fs.mu.Unlock()
	m := tr.Metrics()
	m.Add("hdfs.reads", 1)
	m.Add("hdfs.bytes_read", int64(f.SizeOnDisk()))
	return f, nil
}

// ReadWithRetry reads the file, retrying transient errors up to attempts
// times total (HDFS clients fail over to another replica). It returns the
// file, the number of retries taken, and the final error; non-transient
// errors (missing files) fail immediately.
func (fs *FS) ReadWithRetry(name string, attempts int) (*File, int, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		var f *File
		f, err = fs.Read(name)
		if err == nil {
			return f, i, nil
		}
		if !errors.Is(err, ErrTransientRead) {
			return nil, i, err
		}
	}
	return nil, attempts - 1, fmt.Errorf("hdfs: %d attempts: %w", attempts, err)
}

// Delete removes the file; deleting a missing file is an error.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("hdfs: delete of missing file %q", name)
	}
	delete(fs.files, name)
	return nil
}

// Exists reports whether the file is present.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// List returns the sorted names of all files.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BytesRead returns the cumulative bytes read through Read.
func (fs *FS) BytesRead() conf.Bytes {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.bytesRead
}

// BytesWritten returns the cumulative bytes written through Put*.
func (fs *FS) BytesWritten() conf.Bytes {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.bytesWritten
}
