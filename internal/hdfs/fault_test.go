package hdfs

import (
	"errors"
	"testing"

	"elasticml/internal/matrix"
)

func TestReadFaultInjection(t *testing.T) {
	fs := New()
	fs.PutMatrix("/x", matrix.Random(4, 4, 1, 0, 1, 1))

	// Sampler failing once then succeeding: Read errors transiently,
	// ReadWithRetry recovers on the second attempt.
	fails := 1
	fs.SetReadFault(func() bool { fails--; return fails >= 0 })
	if _, err := fs.Read("/x"); !errors.Is(err, ErrTransientRead) {
		t.Fatalf("want transient error, got %v", err)
	}
	fails = 1
	f, retries, err := fs.ReadWithRetry("/x", 3)
	if err != nil || f == nil {
		t.Fatalf("retry should recover: %v", err)
	}
	if retries != 1 {
		t.Errorf("retries = %d, want 1", retries)
	}

	// Permanent transient failure exhausts the budget.
	fs.SetReadFault(func() bool { return true })
	if _, _, err := fs.ReadWithRetry("/x", 3); !errors.Is(err, ErrTransientRead) {
		t.Errorf("exhausted retries: %v", err)
	}

	// Missing files are not transient: no retry, immediate error.
	fs.SetReadFault(nil)
	if _, retries, err := fs.ReadWithRetry("/gone", 5); err == nil ||
		errors.Is(err, ErrTransientRead) || retries != 0 {
		t.Errorf("missing file: err=%v retries=%d", err, retries)
	}
}

func TestReadFaultSkipsByteAccounting(t *testing.T) {
	fs := New()
	fs.PutMatrix("/x", matrix.Random(4, 4, 1, 0, 1, 1))
	before := fs.BytesRead()
	fs.SetReadFault(func() bool { return true })
	_, _ = fs.Read("/x")
	if fs.BytesRead() != before {
		t.Error("failed read must not account bytes")
	}
}
