package verify

import (
	"strings"
	"testing"

	"elasticml/internal/dml"
)

// TestFuzzLoopProgramsDeterministicAndParse: the loop-corpus stream is
// reproducible for a fixed (seed, i), parses, and actually contains the
// forced iterative templates (a bounded for or parfor loop over batch
// slices) — the grammar growth this corpus exists to exercise.
func TestFuzzLoopProgramsDeterministicAndParse(t *testing.T) {
	for i := 0; i < 25; i++ {
		a, b := FuzzLoopProgram(7, i), FuzzLoopProgram(7, i)
		if a.Source != b.Source {
			t.Fatalf("loop program %d differs across generations for the same seed", i)
		}
		if _, err := dml.Parse(a.Source); err != nil {
			t.Errorf("loop program %d does not parse: %v\n%s", i, err, a.Source)
		}
		if !strings.Contains(a.Source, "for (") {
			t.Errorf("loop program %d has no for/parfor loop:\n%s", i, a.Source)
		}
	}
	if FuzzLoopProgram(7, 0).Source == FuzzLoopProgram(8, 0).Source {
		t.Error("different seeds produced identical loop programs")
	}
}

// TestFuzzLoopProgramsClean is the loop-corpus differential gate: programs
// with fuzzer-generated epoch/batch loops (dynamic index bounds computed
// from loop variables, remainder batches, nested epoch x batch loops,
// parfor over disjoint batch slices) run under all six resource
// configurations plus the naive reference interpreter with zero fatal
// findings — output mismatches or memory-estimate violations both fail.
func TestFuzzLoopProgramsClean(t *testing.T) {
	for i := 0; i < 3; i++ {
		p := FuzzLoopProgram(1, i)
		r := RunProgram(p, Options{})
		if f := r.Fatals(); len(f) > 0 {
			t.Errorf("%s: %d fatal findings, first: %s\n%s", p.Name, len(f), f[0], p.Source)
		}
	}
}
