package verify

import (
	"fmt"
	"math"
	"strconv"

	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
)

// The reference interpreter is the harness's independent oracle: it
// evaluates the compiled HOP program directly — one naive dense
// representation, textbook sequential loops, no physical operators, no
// buffer pool, no recompilation — so that any result the production
// runtime produces can be checked against an implementation that shares
// none of its machinery beyond the HOP DAG itself.

// rmat is the reference's only matrix representation: dense, row-major.
type rmat struct {
	rows, cols int
	a          []float64
}

func newRmat(rows, cols int) *rmat {
	return &rmat{rows: rows, cols: cols, a: make([]float64, rows*cols)}
}

func (m *rmat) at(i, j int) float64     { return m.a[i*m.cols+j] }
func (m *rmat) set(i, j int, v float64) { m.a[i*m.cols+j] = v }

// bcAt reads a cell with R-style broadcast: extent-1 dimensions repeat.
func (m *rmat) bcAt(i, j int) float64 {
	if m.rows == 1 {
		i = 0
	}
	if m.cols == 1 {
		j = 0
	}
	return m.at(i, j)
}

// refVal is a reference runtime value.
type refVal struct {
	mat    *rmat
	scalar float64
	str    string
	isMat  bool
	isStr  bool
}

func refScalar(v float64) *refVal { return &refVal{scalar: v} }
func refMat(m *rmat) *refVal      { return &refVal{mat: m, isMat: true} }

func (v *refVal) format() string {
	switch {
	case v.isStr:
		return v.str
	case v.isMat:
		return fmt.Sprintf("matrix(%dx%d)", v.mat.rows, v.mat.cols)
	default:
		return strconv.FormatFloat(v.scalar, 'g', -1, 64)
	}
}

// RefResult captures the reference execution's observable outputs.
type RefResult struct {
	// Writes maps persistent-write paths to the written matrices.
	Writes map[string]*rmat
	// Prints is the print() stream in order.
	Prints []string
}

// refInterp executes a HOP program.
type refInterp struct {
	fs   *hdfs.FS
	vars map[string]*refVal
	out  *RefResult
}

// refLoopCap bounds data-dependent loops: a divergence between the
// reference and the production runtime must surface as a comparison
// failure, not a hang.
const refLoopCap = 100000

// RunReference evaluates the compiled program on the file system's real
// payloads and returns the written matrices and print stream.
func RunReference(hp *hop.Program, fs *hdfs.FS) (*RefResult, error) {
	ri := &refInterp{
		fs:   fs,
		vars: map[string]*refVal{},
		out:  &RefResult{Writes: map[string]*rmat{}},
	}
	if err := ri.execBlocks(hp.Blocks); err != nil {
		return nil, err
	}
	return ri.out, nil
}

func (ri *refInterp) execBlocks(blocks []*hop.Block) error {
	for _, b := range blocks {
		if err := ri.execBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func (ri *refInterp) execBlock(b *hop.Block) error {
	switch b.Kind {
	case dml.GenericBlock:
		cache := map[int64]*refVal{}
		for _, root := range b.Roots {
			if _, err := ri.eval(root, cache); err != nil {
				return err
			}
		}
		return nil
	case dml.IfBlockKind:
		p, err := ri.evalPred(b.Pred)
		if err != nil {
			return err
		}
		if p != 0 {
			return ri.execBlocks(b.Then)
		}
		return ri.execBlocks(b.Else)
	case dml.WhileBlockKind:
		for iter := 0; ; iter++ {
			if iter >= refLoopCap {
				return fmt.Errorf("ref: while loop exceeded %d iterations", refLoopCap)
			}
			p, err := ri.evalPred(b.Pred)
			if err != nil {
				return err
			}
			if p == 0 {
				return nil
			}
			if err := ri.execBlocks(b.Body); err != nil {
				return err
			}
		}
	case dml.ForBlockKind:
		from, err := ri.evalPred(b.From)
		if err != nil {
			return err
		}
		to, err := ri.evalPred(b.To)
		if err != nil {
			return err
		}
		for i := int64(from); i <= int64(to); i++ {
			ri.vars[b.Var] = refScalar(float64(i))
			if err := ri.execBlocks(b.Body); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("ref: unknown block kind %v", b.Kind)
}

func (ri *refInterp) evalPred(pred *hop.Hop) (float64, error) {
	if pred == nil {
		return 1, nil
	}
	v, err := ri.eval(pred, map[int64]*refVal{})
	if err != nil {
		return 0, err
	}
	if v.isMat || v.isStr {
		return 0, fmt.Errorf("ref: non-scalar predicate")
	}
	return v.scalar, nil
}

func (ri *refInterp) eval(h *hop.Hop, cache map[int64]*refVal) (*refVal, error) {
	if h == nil {
		return nil, nil
	}
	if v, ok := cache[h.ID]; ok {
		return v, nil
	}
	v, err := ri.compute(h, cache)
	if err != nil {
		return nil, err
	}
	cache[h.ID] = v
	return v, nil
}

func (ri *refInterp) inputs(h *hop.Hop, cache map[int64]*refVal) ([]*refVal, error) {
	vals := make([]*refVal, len(h.Inputs))
	for i, in := range h.Inputs {
		v, err := ri.eval(in, cache)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

func (ri *refInterp) compute(h *hop.Hop, cache map[int64]*refVal) (*refVal, error) {
	switch h.Kind {
	case hop.KindLit:
		if h.DataType == hop.String {
			return &refVal{str: h.StrValue, isStr: true}, nil
		}
		return refScalar(h.Value), nil

	case hop.KindTRead:
		v, ok := ri.vars[h.Name]
		if !ok {
			return nil, fmt.Errorf("ref: undefined variable %q", h.Name)
		}
		return v, nil

	case hop.KindRead:
		f, err := ri.fs.Read(h.Name)
		if err != nil {
			return nil, err
		}
		if f.Data == nil {
			return nil, fmt.Errorf("ref: no payload for %q", h.Name)
		}
		m := newRmat(f.Data.Rows(), f.Data.Cols())
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				m.set(i, j, f.Data.At(i, j))
			}
		}
		return refMat(m), nil

	case hop.KindTWrite:
		v, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		ri.vars[h.Name] = v
		return v, nil

	case hop.KindWrite:
		v, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		if v.isMat {
			ri.out.Writes[h.Name] = v.mat
		}
		return v, nil

	case hop.KindPrint:
		v, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		ri.out.Prints = append(ri.out.Prints, v.format())
		return v, nil

	case hop.KindStop:
		v, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stop: %s", v.format())

	case hop.KindDataGen:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		rows, cols := int(vals[1].scalar), int(vals[2].scalar)
		m := newRmat(rows, cols)
		for i := range m.a {
			m.a[i] = vals[0].scalar
		}
		return refMat(m), nil

	case hop.KindSeq:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		from, to, incr := vals[0].scalar, vals[1].scalar, vals[2].scalar
		if incr == 0 {
			return nil, fmt.Errorf("ref: seq increment zero")
		}
		n := int((to-from)/incr) + 1
		if n < 0 {
			n = 0
		}
		m := newRmat(n, 1)
		v := from
		for i := 0; i < n; i++ {
			m.a[i] = v
			v += incr
		}
		return refMat(m), nil

	case hop.KindUnary:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		x := vals[0]
		if !x.isMat {
			return refScalar(refUnary(h.Op, x.scalar)), nil
		}
		m := newRmat(x.mat.rows, x.mat.cols)
		for i, v := range x.mat.a {
			m.a[i] = refUnary(h.Op, v)
		}
		return refMat(m), nil

	case hop.KindBinary:
		return ri.binary(h, cache)

	case hop.KindAggUnary:
		return ri.agg(h, cache)

	case hop.KindMatMul:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		a, b := vals[0].mat, vals[1].mat
		if h.TransA {
			a = refTranspose(a)
		}
		if a.cols != b.rows {
			return nil, fmt.Errorf("ref: matmul %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols)
		}
		m := newRmat(a.rows, b.cols)
		for i := 0; i < a.rows; i++ {
			for j := 0; j < b.cols; j++ {
				var s float64
				for k := 0; k < a.cols; k++ {
					s += a.at(i, k) * b.at(k, j)
				}
				m.set(i, j, s)
			}
		}
		return refMat(m), nil

	case hop.KindReorg:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		return refMat(refTranspose(vals[0].mat)), nil

	case hop.KindAppend:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		a, b := vals[0].mat, vals[1].mat
		if h.Op == "rbind" {
			if a.cols != b.cols {
				return nil, fmt.Errorf("ref: rbind col mismatch %d vs %d", a.cols, b.cols)
			}
			m := newRmat(a.rows+b.rows, a.cols)
			copy(m.a, a.a)
			copy(m.a[len(a.a):], b.a)
			return refMat(m), nil
		}
		if a.rows != b.rows {
			return nil, fmt.Errorf("ref: cbind row mismatch %d vs %d", a.rows, b.rows)
		}
		m := newRmat(a.rows, a.cols+b.cols)
		for i := 0; i < a.rows; i++ {
			copy(m.a[i*m.cols:], a.a[i*a.cols:(i+1)*a.cols])
			copy(m.a[i*m.cols+a.cols:], b.a[i*b.cols:(i+1)*b.cols])
		}
		return refMat(m), nil

	case hop.KindIndex:
		x, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		r0, r1, c0, c1, err := ri.bounds(h, 1, x.mat, cache)
		if err != nil {
			return nil, err
		}
		m := newRmat(r1-r0, c1-c0)
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				m.set(i-r0, j-c0, x.mat.at(i, j))
			}
		}
		return refMat(m), nil

	case hop.KindLeftIndex:
		x, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		v, err := ri.eval(h.Inputs[1], cache)
		if err != nil {
			return nil, err
		}
		r0, r1, c0, c1, err := ri.bounds(h, 2, x.mat, cache)
		if err != nil {
			return nil, err
		}
		m := newRmat(x.mat.rows, x.mat.cols)
		copy(m.a, x.mat.a)
		for i := r0; i < r1; i++ {
			for j := c0; j < c1; j++ {
				if v.isMat {
					m.set(i, j, v.mat.at(i-r0, j-c0))
				} else {
					m.set(i, j, v.scalar)
				}
			}
		}
		return refMat(m), nil

	case hop.KindTable:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		a, b := vals[0].mat, vals[1].mat
		if a.cols != 1 || b.cols != 1 || a.rows != b.rows {
			return nil, fmt.Errorf("ref: table wants equal column vectors")
		}
		var maxR, maxC int
		for i := 0; i < a.rows; i++ {
			r, c := int(a.at(i, 0)), int(b.at(i, 0))
			if r < 1 || c < 1 {
				return nil, fmt.Errorf("ref: table category < 1 at row %d", i)
			}
			if r > maxR {
				maxR = r
			}
			if c > maxC {
				maxC = c
			}
		}
		m := newRmat(maxR, maxC)
		for i := 0; i < a.rows; i++ {
			m.a[(int(a.at(i, 0))-1)*maxC+int(b.at(i, 0))-1]++
		}
		return refMat(m), nil

	case hop.KindDiag:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		x := vals[0].mat
		if x.cols == 1 {
			m := newRmat(x.rows, x.rows)
			for i := 0; i < x.rows; i++ {
				m.set(i, i, x.at(i, 0))
			}
			return refMat(m), nil
		}
		n := x.rows
		if x.cols < n {
			n = x.cols
		}
		m := newRmat(n, 1)
		for i := 0; i < n; i++ {
			m.a[i] = x.at(i, i)
		}
		return refMat(m), nil

	case hop.KindSolve:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		return refSolve(vals[0].mat, vals[1].mat)

	case hop.KindTernaryAgg:
		vals, err := ri.inputs(h, cache)
		if err != nil {
			return nil, err
		}
		first := vals[0].mat
		var s float64
		for i := 0; i < first.rows; i++ {
			for j := 0; j < first.cols; j++ {
				p := 1.0
				for _, v := range vals {
					p *= v.mat.bcAt(i, j)
				}
				s += p
			}
		}
		return refScalar(s), nil

	case hop.KindCast:
		x, err := ri.eval(h.Inputs[0], cache)
		if err != nil {
			return nil, err
		}
		if !x.isMat {
			return x, nil
		}
		if x.mat.rows != 1 || x.mat.cols != 1 {
			return nil, fmt.Errorf("ref: as.scalar on %dx%d", x.mat.rows, x.mat.cols)
		}
		return refScalar(x.mat.a[0]), nil
	}
	return nil, fmt.Errorf("ref: unsupported hop kind %v", h.Kind)
}

func (ri *refInterp) binary(h *hop.Hop, cache map[int64]*refVal) (*refVal, error) {
	vals, err := ri.inputs(h, cache)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	if a.isStr || b.isStr {
		if h.Op != "+" {
			return nil, fmt.Errorf("ref: strings support only concatenation")
		}
		return &refVal{str: a.format() + b.format(), isStr: true}, nil
	}
	if !a.isMat && !b.isMat {
		return refScalar(refBinary(h.Op, a.scalar, b.scalar)), nil
	}
	if a.isMat && b.isMat {
		rows, cols := a.mat.rows, a.mat.cols
		if b.mat.rows > rows {
			rows = b.mat.rows
		}
		if b.mat.cols > cols {
			cols = b.mat.cols
		}
		m := newRmat(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.set(i, j, refBinary(h.Op, a.mat.bcAt(i, j), b.mat.bcAt(i, j)))
			}
		}
		return refMat(m), nil
	}
	if a.isMat {
		m := newRmat(a.mat.rows, a.mat.cols)
		for i, v := range a.mat.a {
			m.a[i] = refBinary(h.Op, v, b.scalar)
		}
		return refMat(m), nil
	}
	m := newRmat(b.mat.rows, b.mat.cols)
	for i, v := range b.mat.a {
		m.a[i] = refBinary(h.Op, a.scalar, v)
	}
	return refMat(m), nil
}

func (ri *refInterp) agg(h *hop.Hop, cache map[int64]*refVal) (*refVal, error) {
	x, err := ri.eval(h.Inputs[0], cache)
	if err != nil {
		return nil, err
	}
	m := x.mat
	switch h.Op {
	case "nrow":
		return refScalar(float64(m.rows)), nil
	case "ncol":
		return refScalar(float64(m.cols)), nil
	case "sum":
		var s float64
		for _, v := range m.a {
			s += v
		}
		return refScalar(s), nil
	case "sumsq":
		var s float64
		for _, v := range m.a {
			s += v * v
		}
		return refScalar(s), nil
	case "mean":
		cells := float64(m.rows) * float64(m.cols)
		if cells == 0 {
			return refScalar(math.NaN()), nil
		}
		var s float64
		for _, v := range m.a {
			s += v
		}
		return refScalar(s / cells), nil
	case "min", "max":
		if len(m.a) == 0 {
			return refScalar(math.NaN()), nil
		}
		best := m.a[0]
		for _, v := range m.a {
			if h.Op == "min" && v < best || h.Op == "max" && v > best {
				best = v
			}
		}
		return refScalar(best), nil
	case "trace":
		n := m.rows
		if m.cols < n {
			n = m.cols
		}
		var s float64
		for i := 0; i < n; i++ {
			s += m.at(i, i)
		}
		return refScalar(s), nil
	case "rowSums":
		out := newRmat(m.rows, 1)
		for i := 0; i < m.rows; i++ {
			var s float64
			for j := 0; j < m.cols; j++ {
				s += m.at(i, j)
			}
			out.a[i] = s
		}
		return refMat(out), nil
	case "colSums":
		out := newRmat(1, m.cols)
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				out.a[j] += m.at(i, j)
			}
		}
		return refMat(out), nil
	case "rowMaxs":
		out := newRmat(m.rows, 1)
		for i := 0; i < m.rows; i++ {
			best := math.Inf(-1)
			for j := 0; j < m.cols; j++ {
				if v := m.at(i, j); v > best {
					best = v
				}
			}
			out.a[i] = best
		}
		return refMat(out), nil
	}
	return nil, fmt.Errorf("ref: unknown aggregate %q", h.Op)
}

// bounds mirrors the runtime's index-bound resolution: 1-based inclusive
// surface ranges become 0-based half-open; nil lower bound means the full
// dimension, nil upper bound a single element.
func (ri *refInterp) bounds(h *hop.Hop, off int, x *rmat, cache map[int64]*refVal) (r0, r1, c0, c1 int, err error) {
	get := func(i int, def int) (int, error) {
		if i >= len(h.Inputs) || h.Inputs[i] == nil {
			return def, nil
		}
		v, err := ri.eval(h.Inputs[i], cache)
		if err != nil {
			return 0, err
		}
		return int(v.scalar), nil
	}
	rl, err := get(off, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if h.Inputs[off] == nil {
		r0, r1 = 0, x.rows
	} else {
		ru, err := get(off+1, rl)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		r0, r1 = rl-1, ru
	}
	cl, err := get(off+2, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if off+2 >= len(h.Inputs) || h.Inputs[off+2] == nil {
		c0, c1 = 0, x.cols
	} else {
		cu, err := get(off+3, cl)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		c0, c1 = cl-1, cu
	}
	if r0 < 0 || c0 < 0 || r1 > x.rows || c1 > x.cols || r0 > r1 || c0 > c1 {
		return 0, 0, 0, 0, fmt.Errorf("ref: index [%d:%d,%d:%d] out of %dx%d", r0, r1, c0, c1, x.rows, x.cols)
	}
	return r0, r1, c0, c1, nil
}

func refTranspose(a *rmat) *rmat {
	out := newRmat(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.set(j, i, a.at(i, j))
		}
	}
	return out
}

// refSolve solves A x = b by Gauss–Jordan elimination with partial
// pivoting on an augmented system — deliberately a different elimination
// scheme than the production LU kernel.
func refSolve(a, b *rmat) (*refVal, error) {
	n := a.rows
	if a.cols != n || b.rows != n {
		return nil, fmt.Errorf("ref: solve shape %dx%d / %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	m := b.cols
	w := n + m
	aug := newRmat(n, w)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.set(i, j, a.at(i, j))
		}
		for j := 0; j < m; j++ {
			aug.set(i, n+j, b.at(i, j))
		}
	}
	for col := 0; col < n; col++ {
		piv, pval := col, math.Abs(aug.at(col, col))
		for r := col + 1; r < n; r++ {
			if av := math.Abs(aug.at(r, col)); av > pval {
				piv, pval = r, av
			}
		}
		if pval < 1e-12 {
			return nil, fmt.Errorf("ref: singular system at column %d", col)
		}
		if piv != col {
			for j := 0; j < w; j++ {
				aug.a[piv*w+j], aug.a[col*w+j] = aug.a[col*w+j], aug.a[piv*w+j]
			}
		}
		d := aug.at(col, col)
		for j := 0; j < w; j++ {
			aug.a[col*w+j] /= d
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.at(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				aug.a[r*w+j] -= f * aug.a[col*w+j]
			}
		}
	}
	out := newRmat(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.set(i, j, aug.at(i, n+j))
		}
	}
	return refMat(out), nil
}

func refUnary(op string, v float64) float64 {
	switch op {
	case "-":
		return -v
	case "!":
		if v == 0 {
			return 1
		}
		return 0
	case "sqrt":
		return math.Sqrt(v)
	case "abs":
		return math.Abs(v)
	case "exp":
		return math.Exp(v)
	case "log":
		return math.Log(v)
	case "round":
		return math.Round(v)
	case "floor":
		return math.Floor(v)
	case "ceil":
		return math.Ceil(v)
	case "sign":
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		}
		return 0
	case "sq":
		return v * v
	}
	return math.NaN()
}

func refBinary(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		return a / b
	case "^":
		return math.Pow(a, b)
	case "min":
		return math.Min(a, b)
	case "max":
		return math.Max(a, b)
	case "<":
		return rb2f(a < b)
	case "<=":
		return rb2f(a <= b)
	case ">":
		return rb2f(a > b)
	case ">=":
		return rb2f(a >= b)
	case "==":
		return rb2f(a == b)
	case "!=":
		return rb2f(a != b)
	case "&":
		return rb2f(a != 0 && b != 0)
	case "|":
		return rb2f(a != 0 || b != 0)
	}
	return math.NaN()
}

func rb2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
