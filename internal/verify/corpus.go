package verify

import (
	"fmt"

	"elasticml/internal/hdfs"
	"elasticml/internal/matrix"
	"elasticml/internal/scripts"
)

// Program is one differential-test subject: a DML source with parameters
// and a Setup that stages its input matrices onto a fresh file system.
// Setup must be deterministic — the harness calls it once per
// configuration and relies on every run seeing identical payloads.
type Program struct {
	Name   string
	Source string
	Params map[string]interface{}
	Setup  func(fs *hdfs.FS)
}

// Corpus sizes: small enough that the naive reference interpreter and the
// tiny-heap configurations stay fast, large enough that n >> m keeps the
// regression systems well-conditioned.
const (
	corpusN = 80 // rows of X
	corpusM = 8  // cols of X
)

// regressionSetup stages X and a y with an exact linear relationship
// y = X %*% beta, so solvers converge quickly and identically.
func regressionSetup(seed int64) func(fs *hdfs.FS) {
	return func(fs *hdfs.FS) {
		x := matrix.Random(corpusN, corpusM, 1.0, -1, 1, seed)
		beta := matrix.Random(corpusM, 1, 1.0, -1, 1, seed+1)
		fs.PutMatrix("/data/X", x.Compact())
		fs.PutMatrix("/data/y", matrix.Mul(x, beta).Compact())
	}
}

// Corpus returns the paper's five evaluation scripts plus an
// intercept-enabled LinregDS variant (exercising append and the
// left-indexed "do not regularize the intercept" assignment), each staged
// with small deterministic inputs.
func Corpus() []Program {
	var out []Program
	for _, spec := range scripts.All() {
		p := Program{Name: spec.Name, Source: spec.Source, Params: cloneParams(spec.Params)}
		switch spec.Name {
		case "LinregDS", "LinregCG":
			p.Setup = regressionSetup(42)
		case "L2SVM":
			// Labels in {-1, +1}, linearly separable by construction.
			p.Setup = func(fs *hdfs.FS) {
				x := matrix.Random(corpusN, corpusM, 1.0, -1, 1, 43)
				w := matrix.Random(corpusM, 1, 1.0, -1, 1, 44)
				s := matrix.Mul(x, w)
				y := matrix.Filled(corpusN, 1, 0)
				for i := 0; i < corpusN; i++ {
					if s.At(i, 0) >= 0 {
						y.Set(i, 0, 1)
					} else {
						y.Set(i, 0, -1)
					}
				}
				fs.PutMatrix("/data/X", x.Compact())
				fs.PutMatrix("/data/y", y.Compact())
			}
		case "MLogreg":
			// Integer class labels 1..3 at the script's y_labels path.
			p.Setup = func(fs *hdfs.FS) {
				x := matrix.Random(corpusN, corpusM, 1.0, -1, 1, 45)
				fs.PutMatrix("/data/X", x.Compact())
				fs.PutMatrix("/data/y_labels", matrix.RandomLabels(corpusN, 3, 46).Compact())
			}
		case "GLM":
			// Gaussian family with identity link: dfam=1, vpow=0, link=2.
			// Tiny ridge keeps the inner CG system nonsingular.
			p.Params["vpow"] = float64(0)
			p.Params["link"] = float64(2)
			p.Params["reg"] = 1e-10
			p.Params["moi"] = float64(10)
			p.Params["mii"] = float64(25)
			p.Setup = regressionSetup(47)
		default:
			panic(fmt.Sprintf("verify: corpus has no setup for script %q", spec.Name))
		}
		out = append(out, p)
	}

	ds, _ := scripts.ByName("LinregDS")
	icpt := Program{
		Name:   "LinregDS-icpt1",
		Source: ds.Source,
		Params: cloneParams(ds.Params),
		Setup:  regressionSetup(48),
	}
	icpt.Params["icpt"] = float64(1)
	out = append(out, icpt)

	// The iterative mini-batch family: epoch/batch for-loops with dynamic
	// index bounds. LR and MLP2 run with 3 batches (80 rows do not divide
	// evenly, so the remainder-batch branch executes); Linreg keeps the
	// default 4 to cover the evenly-divisible path.
	for _, spec := range scripts.Minibatch() {
		p := Program{Name: spec.Name, Source: spec.Source, Params: cloneParams(spec.Params)}
		switch spec.Name {
		case "MinibatchLR":
			// Labels in {0,1}, linearly separable by construction.
			p.Params["batches"] = float64(3)
			p.Setup = func(fs *hdfs.FS) {
				x := matrix.Random(corpusN, corpusM, 1.0, -1, 1, 49)
				w := matrix.Random(corpusM, 1, 1.0, -1, 1, 50)
				s := matrix.Mul(x, w)
				y := matrix.Filled(corpusN, 1, 0)
				for i := 0; i < corpusN; i++ {
					if s.At(i, 0) >= 0 {
						y.Set(i, 0, 1)
					}
				}
				fs.PutMatrix("/data/X", x.Compact())
				fs.PutMatrix("/data/y", y.Compact())
			}
		case "MinibatchLinreg":
			p.Setup = regressionSetup(51)
		case "MLP2":
			p.Params["batches"] = float64(3)
			p.Setup = regressionSetup(52)
		default:
			panic(fmt.Sprintf("verify: corpus has no setup for script %q", spec.Name))
		}
		out = append(out, p)
	}
	return out
}

func cloneParams(p map[string]interface{}) map[string]interface{} {
	out := make(map[string]interface{}, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
