// Package verify implements the differential plan-correctness harness and
// the memory-estimate soundness auditor.
//
// The paper's premise (§2.1, Appendix B) rests on two invariants the rest
// of the repo assumes but never checks end to end:
//
//  1. Memory-sensitive compiler decisions — CP vs MR selection, physical
//     operator choice, piggybacking, dynamic recompilation, runtime
//     adaptation — change the *plan* but never the *result*. The harness
//     executes every program under a matrix of resource configurations
//     chosen to force those decisions apart (CP heaps spanning the CP↔MR
//     flip points, degrees of parallelism, DFS block sizes, fault
//     injection, optimizer-picked configurations) and requires the written
//     outputs and print streams to be byte-identical across all of them,
//     and to agree with an independent naive reference interpreter that
//     evaluates the HOP DAG directly on dense matrices.
//  2. The compiler's worst-case memory estimates are sound upper bounds
//     the resource optimizer can trust. The auditor hooks every value-mode
//     kernel invocation, measures the actual operand footprint, and
//     reports any actual > estimate as a typed finding.
//
// Programs come from two sources: a curated corpus of the paper's ML
// scripts (internal/scripts) and a seeded grammar-based fuzzer over the
// constructs internal/dml supports.
package verify

import (
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
)

// Config is one resource configuration of the differential matrix.
type Config struct {
	// Name identifies the configuration in findings.
	Name string
	// CP is the control-program max heap; tiny values force MR plans.
	CP conf.Bytes
	// MR is the uniform MR task max heap.
	MR conf.Bytes
	// Cores is the CP degree of parallelism (0 = 1).
	Cores int
	// HDFSBlock overrides the cluster DFS block size when non-zero.
	HDFSBlock conf.Bytes
	// Faults injects the given fault plan (zero value: none).
	Faults fault.Plan
	// Optimize lets the resource optimizer pick CP/MR instead of the
	// fixed values above, covering "configurations the optimizer can
	// actually choose".
	Optimize bool
}

// DefaultConfigs returns the standard differential matrix: a large all-CP
// baseline, two budgets straddling the CP↔MR operator flip points for the
// small harness inputs, a multi-threaded small-block configuration, a
// fault-injected run (node loss plus transient task/read failures), and an
// optimizer-chosen configuration.
func DefaultConfigs() []Config {
	return []Config{
		{Name: "cp-2g", CP: 2 * conf.GB, MR: 512 * conf.MB, Cores: 1},
		{Name: "cp-tiny", CP: 4 * conf.KB, MR: 512 * conf.MB, Cores: 1},
		{Name: "cp-mid", CP: 24 * conf.KB, MR: 256 * conf.MB, Cores: 2},
		{Name: "dop4-smallblock", CP: 2 * conf.GB, MR: 512 * conf.MB, Cores: 4, HDFSBlock: 32 * conf.MB},
		{Name: "faults", CP: 2 * conf.GB, MR: 512 * conf.MB, Cores: 2, Faults: fault.Plan{
			Seed:              7,
			NodeFailures:      []fault.NodeFailure{{Node: 0, At: 0}},
			TaskFailureProb:   0.05,
			StragglerProb:     0.05,
			StragglerFactor:   4,
			HDFSReadErrorProb: 0.02,
		}},
		{Name: "opt", MR: 512 * conf.MB, Cores: 1, Optimize: true},
	}
}

// FindingKind classifies a harness finding.
type FindingKind string

// Finding kinds. RunError and the two mismatch kinds fail the harness;
// ToleratedULP records documented reduction-order cases that stayed within
// the ULP bound and is informational.
const (
	// CrossConfigMismatch: two resource configurations produced different
	// results for the same program.
	CrossConfigMismatch FindingKind = "cross-config-mismatch"
	// ReferenceMismatch: a configuration disagreed with the naive
	// reference interpreter beyond the relative tolerance.
	ReferenceMismatch FindingKind = "reference-mismatch"
	// EstimateViolation: a kernel's actual memory footprint exceeded the
	// compiler's worst-case estimate.
	EstimateViolation FindingKind = "estimate-violation"
	// PoolOverPeak: the buffer pool's resident high-water mark exceeded
	// its configured budget (beyond the single-pinned-variable waiver).
	PoolOverPeak FindingKind = "pool-over-peak"
	// RunError: a configuration failed to compile or execute.
	RunError FindingKind = "run-error"
	// ToleratedULP: outputs differed within the documented ULP bound.
	ToleratedULP FindingKind = "tolerated-ulp"
)

// Finding is one typed harness observation.
type Finding struct {
	Kind    FindingKind `json:"kind"`
	Program string      `json:"program"`
	// Config names the configuration (for mismatches: the pair).
	Config string `json:"config"`
	// Where locates the finding: an output path, or "op <hop>" for
	// estimate violations.
	Where string `json:"where"`
	// Detail is the human-readable description.
	Detail string `json:"detail"`
	// Op/Estimate/Actual are filled for estimate violations.
	Op       string     `json:"op,omitempty"`
	Estimate conf.Bytes `json:"estimate,omitempty"`
	Actual   conf.Bytes `json:"actual,omitempty"`
}

// Fatal reports whether the finding fails the harness.
func (f Finding) Fatal() bool { return f.Kind != ToleratedULP }

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s/%s %s: %s", f.Kind, f.Program, f.Config, f.Where, f.Detail)
}

// ProgramResult aggregates one program's runs across the configuration
// matrix.
type ProgramResult struct {
	Program  string    `json:"program"`
	Configs  []string  `json:"configs"`
	Findings []Finding `json:"findings,omitempty"`
	// Outputs is the number of compared output matrices.
	Outputs int `json:"outputs"`
	// MaxULP is the largest cross-config ULP distance observed.
	MaxULP uint64 `json:"max_ulp"`
	// Ops is the number of audited kernel invocations across all configs.
	Ops int `json:"ops"`
}

// Fatals returns the program's fatal findings.
func (r *ProgramResult) Fatals() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Fatal() {
			out = append(out, f)
		}
	}
	return out
}

// Report is the full harness outcome.
type Report struct {
	Seed     int64           `json:"seed"`
	Programs []ProgramResult `json:"programs"`
}

// Fatals returns all fatal findings across programs.
func (r *Report) Fatals() []Finding {
	var out []Finding
	for i := range r.Programs {
		out = append(out, r.Programs[i].Fatals()...)
	}
	return out
}

// Ops returns the total audited kernel invocations.
func (r *Report) Ops() int {
	n := 0
	for i := range r.Programs {
		n += r.Programs[i].Ops
	}
	return n
}
