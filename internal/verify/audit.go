package verify

import (
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
	"elasticml/internal/matrix"
)

// auditor checks the estimate-soundness invariant: for every value-mode
// kernel invocation, the actual memory footprint must not exceed the
// compile-time worst-case estimates the resource optimizer budgets with.
// It plugs into rt.Interp.MemHook.
type auditor struct {
	program  string
	config   string
	ops      int
	findings []Finding
}

// scalarValueSize is the accounted footprint of a scalar output, matching
// the buffer pool's accounting for non-matrix values.
const scalarValueSize = 16

// hook observes one evaluated hop. h carries the estimates that were in
// effect for this execution (post-recompilation when the block was
// recompiled), inputs are the distinct materialized matrix operands and
// out the produced matrix (nil for scalar results).
func (a *auditor) hook(h *hop.Hop, inputs []*matrix.Matrix, out *matrix.Matrix) {
	a.ops++

	var actualOut conf.Bytes = scalarValueSize
	if out != nil {
		actualOut = out.InMemorySize()
		if !hop.InfiniteMem(h.OutMem) && actualOut > h.OutMem {
			a.findings = append(a.findings, Finding{
				Kind:     EstimateViolation,
				Program:  a.program,
				Config:   a.config,
				Where:    fmt.Sprintf("op %s", h),
				Detail:   fmt.Sprintf("output size %d B exceeds OutMem estimate %d B", actualOut, h.OutMem),
				Op:       h.String(),
				Estimate: h.OutMem,
				Actual:   actualOut,
			})
		}
	}

	if hop.InfiniteMem(h.OpMem) {
		return
	}
	actualOp := actualOut
	for _, in := range inputs {
		actualOp += in.InMemorySize()
	}
	if actualOp > h.OpMem {
		a.findings = append(a.findings, Finding{
			Kind:     EstimateViolation,
			Program:  a.program,
			Config:   a.config,
			Where:    fmt.Sprintf("op %s", h),
			Detail:   fmt.Sprintf("operand footprint %d B exceeds OpMem estimate %d B", actualOp, h.OpMem),
			Op:       h.String(),
			Estimate: h.OpMem,
			Actual:   actualOp,
		})
	}
}
