package verify

import (
	"fmt"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/opt"
)

// cacheEquivClusters are the cluster views the property is checked under:
// the full default cluster, a shrunken post-failure view, and a clamped
// free-slice view — the three shapes the workload service optimizes under.
func cacheEquivClusters() map[string]conf.Cluster {
	full := conf.DefaultCluster()
	shrunk := full
	shrunk.Nodes = 3
	clamped := full
	clamped.MaxAlloc = 4 * conf.GB
	return map[string]conf.Cluster{"full": full, "shrunk": shrunk, "clamped": clamped}
}

// compileCorpus compiles one corpus program on a fresh staged file system
// and returns the program plus its cache-key ingredients.
func compileCorpus(t *testing.T, p Program) (*hop.Program, []opt.InputMeta) {
	t.Helper()
	fs := hdfs.New()
	if p.Setup != nil {
		p.Setup(fs)
	}
	prog, err := dml.Parse(p.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", p.Name, err)
	}
	comp := hop.NewCompiler(fs, p.Params)
	hp, err := comp.Compile(prog, p.Source)
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	var inputs []opt.InputMeta
	for _, name := range fs.List() {
		f, err := fs.Stat(name)
		if err != nil {
			continue
		}
		inputs = append(inputs, opt.InputMeta{
			Path: name, Rows: f.Rows, Cols: f.Cols, NNZ: f.NNZ, Format: f.Format.String(),
		})
	}
	return hp, inputs
}

// TestPlanCacheHitEquivalence is the shared-plan-cache soundness property:
// for every corpus program under every cluster view, optimizing via a
// cache hit and then recompiling yields a plan whose EXPLAIN text, chosen
// configuration, and costed estimate are byte-identical to a cold
// compile-and-search. The cache stores only optimization outcomes, so this
// holds by construction — the test pins it against regressions.
func TestPlanCacheHitEquivalence(t *testing.T) {
	opts := opt.DefaultOptions()
	opts.Points = 5 // smaller grid: the property is resolution-independent

	for ccName, cc := range cacheEquivClusters() {
		for _, p := range Corpus() {
			t.Run(fmt.Sprintf("%s/%s", ccName, p.Name), func(t *testing.T) {
				// Cold: fresh compile, full grid search.
				hpCold, inputs := compileCorpus(t, p)
				o := &opt.Optimizer{CC: cc, Opts: opts}
				cold := o.Optimize(hpCold)
				coldExplain := lop.Explain(lop.Select(hpCold, cc, cold.Res))

				// Warm the cache with a separately compiled instance, as a
				// different tenant of the same program would.
				cache := opt.NewCache(8)
				key := opt.CacheKey(p.Source, p.Params, inputs, cc, opts)
				hpWarm, inputsWarm := compileCorpus(t, p)
				if keyWarm := opt.CacheKey(p.Source, p.Params, inputsWarm, cc, opts); keyWarm != key {
					t.Fatalf("identical submissions produced different cache keys")
				}
				if _, hit := o.OptimizeCached(hpWarm, cache, key); hit {
					t.Fatal("empty cache reported a hit")
				}

				// Hit: a third compile, optimization answered from cache.
				hpHit, _ := compileCorpus(t, p)
				hitRes, hit := o.OptimizeCached(hpHit, cache, key)
				if !hit {
					t.Fatal("warmed cache missed")
				}
				if hitRes.Cost != cold.Cost {
					t.Errorf("hit cost %v != cold cost %v", hitRes.Cost, cold.Cost)
				}
				if hitRes.Res.String() != cold.Res.String() {
					t.Errorf("hit config %v != cold config %v", hitRes.Res, cold.Res)
				}
				hitExplain := lop.Explain(lop.Select(hpHit, cc, hitRes.Res))
				if hitExplain != coldExplain {
					t.Errorf("EXPLAIN diverged between cache hit and cold compile:\n--- hit ---\n%s\n--- cold ---\n%s",
						hitExplain, coldExplain)
				}
			})
		}
	}
}

// TestPlanCacheEvictionNeverChangesResults: evicting an entry only costs
// a re-search; the re-computed outcome and plan are identical to the
// evicted one.
func TestPlanCacheEvictionNeverChangesResults(t *testing.T) {
	cc := conf.DefaultCluster()
	opts := opt.DefaultOptions()
	opts.Points = 5
	o := &opt.Optimizer{CC: cc, Opts: opts}
	cache := opt.NewCache(1) // every second distinct key evicts the first

	p := Corpus()[0]
	hp1, inputs := compileCorpus(t, p)
	key := opt.CacheKey(p.Source, p.Params, inputs, cc, opts)
	first, hit := o.OptimizeCached(hp1, cache, key)
	if hit {
		t.Fatal("first call hit an empty cache")
	}
	firstExplain := lop.Explain(lop.Select(hp1, cc, first.Res))

	// Displace the entry with a different program's outcome.
	q := Corpus()[1]
	hpQ, inputsQ := compileCorpus(t, q)
	keyQ := opt.CacheKey(q.Source, q.Params, inputsQ, cc, opts)
	if keyQ == key {
		t.Fatal("distinct programs share a cache key")
	}
	if _, hit := o.OptimizeCached(hpQ, cache, keyQ); hit {
		t.Fatal("unexpected hit for second program")
	}
	if st := cache.Stats(); st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("want 1 eviction / 1 entry, got %+v", st)
	}

	// Re-derive the evicted outcome: must equal the original exactly.
	hp2, _ := compileCorpus(t, p)
	second, hit := o.OptimizeCached(hp2, cache, key)
	if hit {
		t.Fatal("evicted key still hit")
	}
	if second.Cost != first.Cost || second.Res.String() != first.Res.String() {
		t.Errorf("re-search after eviction diverged: %v/%v vs %v/%v",
			second.Res, second.Cost, first.Res, first.Cost)
	}
	if again := lop.Explain(lop.Select(hp2, cc, second.Res)); again != firstExplain {
		t.Error("EXPLAIN diverged after eviction and re-search")
	}
}
