package verify

import (
	"math"
	"reflect"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/matrix"
)

func TestULPDist(t *testing.T) {
	next := math.Nextafter(1, 2)
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1, 1, 0},
		{0, 0, 0},
		{math.Copysign(0, -1), 0, 0}, // -0 == +0
		{1, next, 1},
		{next, 1, 1},
		{1, 2, 1 << 52},
		{-1, -math.Nextafter(1, 2), 1},
		{math.NaN(), math.NaN(), 0},
		{math.NaN(), 1, math.MaxUint64},
		{1, math.NaN(), math.MaxUint64},
	}
	for _, c := range cases {
		if got := ulpDist(c.a, c.b); got != c.want {
			t.Errorf("ulpDist(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// The ordered-bits transform must be monotone across the sign change.
	if d := ulpDist(-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64); d > 4 {
		t.Errorf("sign-straddling denormals %d ULP apart, want a small distance", d)
	}
}

func TestCloseRel(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-7, true},
		{1, 1.1, false},
		{1e12, 1e12 + 1, true}, // relative scale
		{0, 1e-7, true},        // absolute floor at scale 1
		{0, 1e-5, false},
		{math.NaN(), math.NaN(), true},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := closeRel(c.a, c.b); got != c.want {
			t.Errorf("closeRel(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFuzzProgramsDeterministicAndParse(t *testing.T) {
	for i := 0; i < 40; i++ {
		a, b := FuzzProgram(7, i), FuzzProgram(7, i)
		if a.Source != b.Source {
			t.Fatalf("fuzz program %d differs across generations for the same seed", i)
		}
		if _, err := dml.Parse(a.Source); err != nil {
			t.Errorf("fuzz program %d does not parse: %v\n%s", i, err, a.Source)
		}
	}
	if FuzzProgram(7, 0).Source == FuzzProgram(8, 0).Source {
		t.Error("different seeds produced identical programs")
	}
}

func TestRunProgramDeterministic(t *testing.T) {
	p := Corpus()[0] // LinregDS
	a := RunProgram(p, Options{})
	b := RunProgram(p, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs of %s produced different reports:\n%+v\nvs\n%+v", p.Name, a, b)
	}
	if f := a.Fatals(); len(f) > 0 {
		t.Errorf("%s: %d fatal findings, first: %s", p.Name, len(f), f[0])
	}
	if a.Outputs == 0 {
		t.Errorf("%s: no persistent outputs compared", p.Name)
	}
	if a.Ops == 0 {
		t.Errorf("%s: auditor observed no kernel invocations", p.Name)
	}
}

func TestFuzzProgramsClean(t *testing.T) {
	for i := 0; i < 3; i++ {
		p := FuzzProgram(1, i)
		r := RunProgram(p, Options{})
		if f := r.Fatals(); len(f) > 0 {
			t.Errorf("%s: %d fatal findings, first: %s\n%s", p.Name, len(f), f[0], p.Source)
		}
	}
}

func TestReferenceKnownValues(t *testing.T) {
	// A program with hand-computable outputs exercises the reference
	// interpreter directly: Z = (2*ones(2x3))' %*% ones(2x3) is the 3x3
	// matrix of all 4s, and s = sum(Z) = 36.
	src := `
A = matrix(2, rows=2, cols=3);
B = matrix(1, rows=2, cols=3);
Z = t(A) %*% B;
s = sum(Z);
write(Z, "/out/Z");
print(s);
`
	fs := hdfs.New()
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hop.NewCompiler(fs, nil).Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(hp, fs)
	if err != nil {
		t.Fatal(err)
	}
	z, ok := ref.Writes["/out/Z"]
	if !ok {
		t.Fatalf("reference wrote %v, want /out/Z", ref.Writes)
	}
	if z.rows != 3 || z.cols != 3 {
		t.Fatalf("Z is %dx%d, want 3x3", z.rows, z.cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := z.at(i, j); got != 4 {
				t.Errorf("Z[%d,%d] = %v, want 4", i, j, got)
			}
		}
	}
	if len(ref.Prints) != 1 || ref.Prints[0] != "36" {
		t.Errorf("prints = %v, want [36]", ref.Prints)
	}
	// The full harness agrees: the same program runs clean under every
	// configuration and against this reference.
	r := RunProgram(Program{Name: "known-values", Source: src}, Options{})
	if f := r.Fatals(); len(f) > 0 {
		t.Errorf("harness disagrees on known-value program: %s", f[0])
	}
}

func TestAuditorFlagsViolations(t *testing.T) {
	aud := &auditor{program: "p", config: "c"}
	out := matrix.Filled(10, 10, 1.5) // 800 B of payload + header
	in := matrix.Filled(10, 10, 2.5)
	sz := out.InMemorySize()

	// Sound estimates produce no findings.
	aud.hook(&hop.Hop{Kind: hop.KindBinary, OutMem: sz, OpMem: sz * 3}, []*matrix.Matrix{in}, out)
	if len(aud.findings) != 0 {
		t.Fatalf("sound estimates flagged: %v", aud.findings)
	}

	// An OutMem estimate below the materialized size is a violation; so is
	// an OpMem below output+operands.
	aud.hook(&hop.Hop{Kind: hop.KindBinary, OutMem: sz - 1, OpMem: sz - 1}, []*matrix.Matrix{in}, out)
	if len(aud.findings) != 2 {
		t.Fatalf("%d findings, want 2 (OutMem and OpMem)", len(aud.findings))
	}
	for _, f := range aud.findings {
		if f.Kind != EstimateViolation {
			t.Errorf("finding kind %s, want %s", f.Kind, EstimateViolation)
		}
		if !f.Fatal() {
			t.Error("estimate violations must be fatal")
		}
		if f.Actual <= f.Estimate {
			t.Errorf("finding actual %d <= estimate %d", f.Actual, f.Estimate)
		}
	}

	// Infinite estimates (unknown sizes at compile time) are waived.
	n := len(aud.findings)
	inf := conf.Bytes(1) << 60
	if !hop.InfiniteMem(inf) {
		t.Fatal("test constant is not the infinite-estimate sentinel")
	}
	aud.hook(&hop.Hop{Kind: hop.KindBinary, OutMem: inf, OpMem: inf}, []*matrix.Matrix{in}, out)
	if len(aud.findings) != n {
		t.Error("infinite estimates must not be audited")
	}
	if aud.ops != 3 {
		t.Errorf("auditor counted %d ops, want 3", aud.ops)
	}
}

func TestCompareRunsDetectsMismatch(t *testing.T) {
	mk := func(cfg string, v float64) *runOutput {
		m := matrix.Filled(2, 2, 1)
		m.Set(1, 1, v)
		return &runOutput{
			cfg:     cfg,
			paths:   []string{"/out/Z"},
			outputs: map[string]*matrix.Matrix{"/out/Z": m},
		}
	}
	var res ProgramResult
	compareRuns(&res, "p", mk("a", 1), mk("b", 1), 0)
	if len(res.Findings) != 0 {
		t.Fatalf("identical runs flagged: %v", res.Findings)
	}
	compareRuns(&res, "p", mk("a", 1), mk("b", math.Nextafter(1, 2)), 0)
	if len(res.Findings) != 1 || res.Findings[0].Kind != CrossConfigMismatch {
		t.Fatalf("1-ULP drift at tolerance 0: findings %v", res.Findings)
	}
	if res.MaxULP != 1 {
		t.Errorf("max ULP %d, want 1", res.MaxULP)
	}
	// The same drift under a nonzero tolerance is recorded but tolerated.
	var res2 ProgramResult
	compareRuns(&res2, "p", mk("a", 1), mk("b", math.Nextafter(1, 2)), 2)
	if len(res2.Findings) != 1 || res2.Findings[0].Kind != ToleratedULP {
		t.Fatalf("tolerated drift: findings %v", res2.Findings)
	}
	if len(res2.Fatals()) != 0 {
		t.Error("tolerated ULP drift must not be fatal")
	}
}

func TestDefaultConfigsForcePlanDiversity(t *testing.T) {
	cfgs := DefaultConfigs()
	if len(cfgs) < 4 {
		t.Fatalf("%d configurations, want at least 4", len(cfgs))
	}
	var tiny, multi, faulty, optimized bool
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Errorf("duplicate configuration name %q", c.Name)
		}
		names[c.Name] = true
		if c.CP <= 64*conf.KB {
			tiny = true
		}
		if c.Cores > 1 {
			multi = true
		}
		if c.Faults.Enabled() {
			faulty = true
		}
		if c.Optimize {
			optimized = true
		}
	}
	if !tiny {
		t.Error("no configuration with a tiny CP heap (CP-MR flip coverage)")
	}
	if !multi {
		t.Error("no multi-core configuration")
	}
	if !faulty {
		t.Error("no fault-injecting configuration")
	}
	if !optimized {
		t.Error("no optimizer-picked configuration")
	}
}
