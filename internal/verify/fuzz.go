package verify

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"elasticml/internal/hdfs"
	"elasticml/internal/matrix"
)

// The fuzzer generates random but well-typed DML programs over the
// constructs the compiler supports. Shapes are tracked exactly so every
// generated operation is dimension-correct, and per-variable magnitude
// bounds are tracked so programs stay in a numerically comparable range
// (no overflow to Inf, no catastrophic magnitudes where a single ULP of
// reduction-order difference would dwarf the reference tolerance).
//
// Every generated program ends by writing all live matrices — and all
// live scalars wrapped into 1x1 matrices — under /out/fz/, plus printing
// each scalar, so the differential driver has a rich surface to compare.

// fuzzVar tracks one live variable's shape and magnitude bound.
type fuzzVar struct {
	name string
	rows int // 0 for scalars
	cols int
	mag  float64 // upper bound on |value|
}

type fuzzer struct {
	r     *rand.Rand
	b     strings.Builder
	mats  []fuzzVar
	scals []fuzzVar
	// extra holds write-only matrix variables with data-dependent shapes
	// (table outputs): written in the trailer but kept out of the operand
	// pool, where shape tracking could not stay exact.
	extra []string
	next  int // fresh-name counter
	depth int // loop/branch nesting; cbind/rbind/table stay at depth 0
}

// magCap is the magnitude ceiling beyond which a template is skipped.
const magCap = 1e12

// FuzzProgram generates the i-th program of a seeded stream. The same
// (seed, i) always yields the identical program and input data.
func FuzzProgram(seed int64, i int) Program {
	return fuzzProgram(seed, i, 0, fmt.Sprintf("fuzz-%d", i))
}

// FuzzLoopProgram generates the i-th program of the loop-corpus stream:
// the same grammar as FuzzProgram, plus at least two forced iterative
// templates (bounded for/parfor loops over batch slices with dynamic
// index bounds, trip counts <= 8). The loop corpus differentially tests
// the same epoch/batch program shapes the mini-batch workload family
// relies on.
func FuzzLoopProgram(seed int64, i int) Program {
	return fuzzProgram(seed, i, 2, fmt.Sprintf("fuzz-loop-%d", i))
}

func fuzzProgram(seed int64, i, forcedLoops int, name string) Program {
	r := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
	f := &fuzzer{r: r}

	rows := 15 + r.Intn(26) // 15..40
	cols := 4 + r.Intn(6)   // 4..9
	xSparsity := 1.0
	if r.Float64() < 0.3 {
		xSparsity = 0.15 + 0.15*r.Float64()
	}
	xSeed := seed + int64(i)*7919 + 1
	ySeed := xSeed + 1
	lSeed := xSeed + 2

	f.line("X = read($X);")
	f.line("y = read($Y);")
	f.mats = append(f.mats,
		fuzzVar{name: "X", rows: rows, cols: cols, mag: 1},
		fuzzVar{name: "y", rows: rows, cols: 1, mag: 1})

	useLabels := r.Float64() < 0.4
	if useLabels {
		f.line("L = read($L);")
		// L is categorical (1..4); keep it out of the arithmetic pool and
		// use it only through table().
		f.stmtTable(fuzzVar{name: "L", rows: rows, cols: 1, mag: 4})
	}

	nStmts := 8 + r.Intn(7) // 8..14
	for s := 0; s < nStmts; s++ {
		f.stmt()
	}
	for l := 0; l < forcedLoops; l++ {
		f.stmtLoop()
	}
	f.trailer()

	src := f.b.String()
	return Program{
		Name:   name,
		Source: src,
		Params: map[string]interface{}{"X": "/data/X", "Y": "/data/y", "L": "/data/L"},
		Setup: func(fs *hdfs.FS) {
			fs.PutMatrix("/data/X", matrix.Random(rows, cols, xSparsity, -1, 1, xSeed).Compact())
			fs.PutMatrix("/data/y", matrix.Random(rows, 1, 1.0, -1, 1, ySeed).Compact())
			fs.PutMatrix("/data/L", matrix.RandomLabels(rows, 4, lSeed).Compact())
		},
	}
}

func (f *fuzzer) line(format string, args ...interface{}) {
	fmt.Fprintf(&f.b, format+"\n", args...)
}

func (f *fuzzer) fresh(prefix string) string {
	f.next++
	return fmt.Sprintf("%s%d", prefix, f.next)
}

func (f *fuzzer) pickMat() fuzzVar { return f.mats[f.r.Intn(len(f.mats))] }

// pickSame returns a matrix with the same shape as m (possibly m itself).
func (f *fuzzer) pickSame(m fuzzVar) fuzzVar {
	var cands []fuzzVar
	for _, v := range f.mats {
		if v.rows == m.rows && v.cols == m.cols {
			cands = append(cands, v)
		}
	}
	return cands[f.r.Intn(len(cands))]
}

func (f *fuzzer) addMat(v fuzzVar) { f.mats = append(f.mats, v) }

func (f *fuzzer) addScal(name string, mag float64) {
	f.scals = append(f.scals, fuzzVar{name: name, mag: mag})
}

func (f *fuzzer) litScalar() (string, float64) {
	v := math.Round((f.r.Float64()*4-2)*100) / 100 // -2.00..2.00, 2 decimals
	return fmt.Sprintf("%g", v), math.Abs(v)
}

// stmt emits one random statement.
func (f *fuzzer) stmt() {
	for {
		if f.tryTemplate(f.r.Intn(25)) {
			return
		}
	}
}

// stmtLoop forces one of the batch-slice loop templates (22..24). X is
// always live with rows >= 15 and magnitude 1, so a retry always finds an
// eligible operand.
func (f *fuzzer) stmtLoop() {
	for {
		if f.tryTemplate(22 + f.r.Intn(3)) {
			return
		}
	}
}

// tryTemplate emits template t if its operands exist and its magnitude
// bound stays under magCap; it reports whether a statement was emitted.
func (f *fuzzer) tryTemplate(t int) bool {
	switch t {
	case 0: // elementwise matrix-matrix arithmetic on equal shapes
		a := f.pickMat()
		b := f.pickSame(a)
		op := []string{"+", "-", "*"}[f.r.Intn(3)]
		mag := a.mag + b.mag
		if op == "*" {
			mag = a.mag * b.mag
		}
		if mag > magCap {
			return false
		}
		n := f.fresh("m")
		f.line("%s = %s %s %s;", n, a.name, op, b.name)
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: mag})
		return true

	case 1: // safe elementwise division
		a := f.pickMat()
		b := f.pickSame(a)
		n := f.fresh("m")
		f.line("%s = %s / (abs(%s) + 0.5);", n, a.name, b.name)
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: a.mag * 2})
		return true

	case 2: // scalar-matrix arithmetic
		a := f.pickMat()
		lit, lm := f.litScalar()
		op := []string{"+", "-", "*"}[f.r.Intn(3)]
		mag := a.mag + lm
		if op == "*" {
			mag = a.mag * lm
		}
		if mag > magCap {
			return false
		}
		n := f.fresh("m")
		if f.r.Intn(2) == 0 {
			f.line("%s = %s %s %s;", n, a.name, op, lit)
		} else {
			f.line("%s = %s %s %s;", n, lit, op, a.name)
		}
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: mag})
		return true

	case 3: // unary builtins
		a := f.pickMat()
		n := f.fresh("m")
		switch f.r.Intn(6) {
		case 0:
			f.line("%s = sqrt(abs(%s));", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: math.Sqrt(a.mag)})
		case 1:
			f.line("%s = log(abs(%s) + 1);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: math.Log(a.mag + 1)})
		case 2:
			if a.mag > magCap {
				return false
			}
			f.line("%s = round(%s * 3);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: a.mag*3 + 1})
		case 3:
			if a.mag > 8 {
				return false
			}
			f.line("%s = exp(%s * 0.25);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: math.Exp(a.mag * 0.25)})
		case 4:
			f.line("%s = sign(%s);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: 1})
		default:
			op := []string{"floor", "ceil"}[f.r.Intn(2)]
			if a.mag > magCap {
				return false
			}
			f.line("%s = %s(%s);", n, op, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: a.mag + 1})
		}
		return true

	case 4: // transpose
		a := f.pickMat()
		n := f.fresh("m")
		f.line("%s = t(%s);", n, a.name)
		f.addMat(fuzzVar{name: n, rows: a.cols, cols: a.rows, mag: a.mag})
		return true

	case 5: // matrix multiplication (any conforming pair)
		a := f.pickMat()
		var cands []fuzzVar
		for _, v := range f.mats {
			if v.rows == a.cols {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			return false
		}
		b := cands[f.r.Intn(len(cands))]
		mag := a.mag * b.mag * float64(a.cols)
		n := f.fresh("m")
		if mag > magCap {
			if mag*0.01*0.01 > magCap {
				return false
			}
			f.line("%s = (%s * 0.01) %%*%% (%s * 0.01);", n, a.name, b.name)
			mag *= 0.01 * 0.01
		} else {
			f.line("%s = %s %%*%% %s;", n, a.name, b.name)
		}
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: b.cols, mag: mag})
		return true

	case 6: // TSMM: t(m) %*% m
		a := f.pickMat()
		mag := a.mag * a.mag * float64(a.rows)
		if mag > magCap {
			return false
		}
		n := f.fresh("m")
		f.line("%s = t(%s) %%*%% %s;", n, a.name, a.name)
		f.addMat(fuzzVar{name: n, rows: a.cols, cols: a.cols, mag: mag})
		return true

	case 7: // mm-chain: t(a) %*% (a %*% v) with v a conforming vector
		a := f.pickMat()
		var cands []fuzzVar
		for _, v := range f.mats {
			if v.rows == a.cols && v.cols == 1 {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			return false
		}
		v := cands[f.r.Intn(len(cands))]
		mag := a.mag * a.mag * v.mag * float64(a.cols) * float64(a.rows)
		if mag > magCap {
			return false
		}
		n := f.fresh("m")
		f.line("%s = t(%s) %%*%% (%s %%*%% %s);", n, a.name, a.name, v.name)
		f.addMat(fuzzVar{name: n, rows: a.cols, cols: 1, mag: mag})
		return true

	case 8: // full scalar aggregates
		a := f.pickMat()
		cells := float64(a.rows * a.cols)
		n := f.fresh("s")
		switch f.r.Intn(5) {
		case 0:
			if a.mag*cells > magCap {
				return false
			}
			f.line("%s = sum(%s);", n, a.name)
			f.addScal(n, a.mag*cells)
		case 1:
			f.line("%s = min(%s);", n, a.name)
			f.addScal(n, a.mag)
		case 2:
			f.line("%s = max(%s);", n, a.name)
			f.addScal(n, a.mag)
		case 3:
			f.line("%s = mean(%s);", n, a.name)
			f.addScal(n, a.mag)
		default:
			if a.mag*a.mag*cells > magCap {
				return false
			}
			f.line("%s = sum(%s * %s);", n, a.name, a.name)
			f.addScal(n, a.mag*a.mag*cells)
		}
		return true

	case 9: // ternary aggregate sum(a*b*c) over equal shapes
		a := f.pickMat()
		b := f.pickSame(a)
		c := f.pickSame(a)
		mag := a.mag * b.mag * c.mag * float64(a.rows*a.cols)
		if mag > magCap {
			return false
		}
		n := f.fresh("s")
		f.line("%s = sum(%s * %s * %s);", n, a.name, b.name, c.name)
		f.addScal(n, mag)
		return true

	case 10: // partial aggregates
		a := f.pickMat()
		n := f.fresh("m")
		switch f.r.Intn(3) {
		case 0:
			if a.mag*float64(a.cols) > magCap {
				return false
			}
			f.line("%s = rowSums(%s);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: 1, mag: a.mag * float64(a.cols)})
		case 1:
			if a.mag*float64(a.rows) > magCap {
				return false
			}
			f.line("%s = colSums(%s);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: 1, cols: a.cols, mag: a.mag * float64(a.rows)})
		default:
			f.line("%s = rowMaxs(%s);", n, a.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: 1, mag: a.mag})
		}
		return true

	case 11: // cbind / rbind (top level only: shapes must stay static)
		if f.depth > 0 {
			return false
		}
		a := f.pickMat()
		var cands []fuzzVar
		rb := f.r.Intn(2) == 0
		for _, v := range f.mats {
			if rb && v.cols == a.cols || !rb && v.rows == a.rows {
				cands = append(cands, v)
			}
		}
		b := cands[f.r.Intn(len(cands))]
		n := f.fresh("m")
		if rb {
			f.line("%s = rbind(%s, %s);", n, a.name, b.name)
			f.addMat(fuzzVar{name: n, rows: a.rows + b.rows, cols: a.cols, mag: math.Max(a.mag, b.mag)})
		} else {
			f.line("%s = cbind(%s, %s);", n, a.name, b.name)
			f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols + b.cols, mag: math.Max(a.mag, b.mag)})
		}
		return true

	case 12: // slice with literal in-range bounds
		a := f.pickMat()
		if a.rows < 2 || a.cols < 1 {
			return false
		}
		r0 := 1 + f.r.Intn(a.rows/2)
		r1 := r0 + f.r.Intn(a.rows-r0+1)
		c0 := 1 + f.r.Intn(a.cols)
		c1 := c0 + f.r.Intn(a.cols-c0+1)
		n := f.fresh("m")
		f.line("%s = %s[%d:%d, %d:%d];", n, a.name, r0, r1, c0, c1)
		f.addMat(fuzzVar{name: n, rows: r1 - r0 + 1, cols: c1 - c0 + 1, mag: a.mag})
		return true

	case 13: // left-index a constant region into a fresh copy
		a := f.pickMat()
		if a.rows < 2 || a.cols < 1 {
			return false
		}
		r0 := 1 + f.r.Intn(a.rows/2)
		r1 := r0 + f.r.Intn(a.rows-r0+1)
		c0 := 1 + f.r.Intn(a.cols)
		lit, lm := f.litScalar()
		n := f.fresh("m")
		f.line("%s = %s + 0;", n, a.name)
		f.line("%s[%d:%d, %d] = matrix(%s, rows=%d, cols=1);", n, r0, r1, c0, lit, r1-r0+1)
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: math.Max(a.mag, lm)})
		return true

	case 14: // diag of rowSums (vector -> diagonal matrix)
		a := f.pickMat()
		mag := a.mag * float64(a.cols)
		if mag > magCap || a.rows > 60 {
			return false
		}
		n := f.fresh("m")
		f.line("%s = diag(rowSums(%s));", n, a.name)
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.rows, mag: mag})
		return true

	case 15: // seq vector
		k := 2 + f.r.Intn(9)
		n := f.fresh("m")
		f.line("%s = seq(1, %d);", n, k)
		f.addMat(fuzzVar{name: n, rows: k, cols: 1, mag: float64(k)})
		return true

	case 16: // ppred against a literal threshold
		a := f.pickMat()
		lit, _ := f.litScalar()
		op := []string{"<", "<=", ">", ">=", "=="}[f.r.Intn(5)]
		n := f.fresh("m")
		f.line("%s = ppred(%s, %s, \"%s\");", n, a.name, lit, op)
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: 1})
		return true

	case 17: // as.scalar of a literal-indexed cell
		a := f.pickMat()
		i := 1 + f.r.Intn(a.rows)
		j := 1 + f.r.Intn(a.cols)
		n := f.fresh("s")
		f.line("%s = as.scalar(%s[%d, %d]);", n, a.name, i, j)
		f.addScal(n, a.mag)
		return true

	case 18: // scalar arithmetic with nrow/ncol
		if len(f.scals) == 0 {
			return false
		}
		s := f.scals[f.r.Intn(len(f.scals))]
		a := f.pickMat()
		dim := []string{"nrow", "ncol"}[f.r.Intn(2)]
		mag := s.mag + float64(a.rows)
		if mag > magCap {
			return false
		}
		n := f.fresh("s")
		f.line("%s = %s + %s(%s) * 0.5;", n, s.name, dim, a.name)
		f.addScal(n, mag)
		return true

	case 19: // data-dependent branch assigning one var in both arms
		if f.depth > 0 || len(f.scals) == 0 {
			return false
		}
		s := f.scals[f.r.Intn(len(f.scals))]
		a := f.pickMat()
		b := f.pickSame(a)
		lit, _ := f.litScalar()
		n := f.fresh("m")
		f.depth++
		f.line("if (%s > %s) {", s.name, lit)
		f.line("  %s = %s * 2;", n, a.name)
		f.line("} else {")
		f.line("  %s = %s - %s;", n, a.name, b.name)
		f.line("}")
		f.depth--
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: math.Max(a.mag*2, a.mag+b.mag)})
		return true

	case 20: // counter loop (for, while, or rarely parfor) updating a matrix
		if f.depth > 0 {
			return false
		}
		a := f.pickMat()
		b := f.pickSame(a)
		mag := a.mag + 3*(b.mag+3)
		if mag > magCap {
			return false
		}
		n := f.fresh("m")
		iv := f.fresh("i")
		f.line("%s = %s + 0;", n, a.name)
		f.depth++
		switch f.r.Intn(4) {
		case 0:
			f.line("%s = 0;", iv)
			f.line("while (%s < 3) {", iv)
			f.line("  %s = %s + %s * 0.5;", n, n, b.name)
			f.line("  %s = %s + 1;", iv, iv)
			f.line("}")
		case 1: // parfor over disjoint rows: the canonical independent loop
			rows := a.rows
			if rows > 3 {
				rows = 3
			}
			f.line("parfor (%s in 1:%d) {", iv, rows)
			f.line("  %s[%s, 1] = matrix(%s * 0.25, rows=1, cols=1);", n, iv, iv)
			f.line("}")
		default:
			f.line("for (%s in 1:3) {", iv)
			f.line("  %s = %s + %s * 0.5 + %s;", n, n, b.name, iv)
			f.line("}")
		}
		f.depth--
		f.addMat(fuzzVar{name: n, rows: a.rows, cols: a.cols, mag: mag + 3})
		return true

	case 22: // batch-slice for loop: dynamic index bounds from the loop var
		if f.depth > 0 {
			return false
		}
		a := f.pickMat()
		if a.rows < 4 {
			return false
		}
		mag := a.mag*float64(a.rows) + 1
		if mag > magCap {
			return false
		}
		nb := 2 + f.r.Intn(3) // 2..4 batches, trip count <= 8
		bs := a.rows / nb
		acc := f.fresh("m")
		iv := f.fresh("i")
		lo := f.fresh("s")
		hi := f.fresh("s")
		f.line("%s = matrix(0, rows=1, cols=%d);", acc, a.cols)
		f.depth++
		f.line("for (%s in 1:%d) {", iv, nb)
		f.line("  %s = (%s - 1) * %d + 1;", lo, iv, bs)
		f.line("  %s = %s * %d;", hi, iv, bs)
		if bs*nb < a.rows && f.r.Intn(2) == 0 {
			// Absorb the remainder rows into the last batch, the same
			// shape as the mini-batch scripts' ragged final slice.
			f.line("  if (%s == %d) {", iv, nb)
			f.line("    %s = %d;", hi, a.rows)
			f.line("  }")
		}
		f.line("  %s = %s + colSums(%s[%s:%s, 1:%d]);", acc, acc, a.name, lo, hi, a.cols)
		f.line("}")
		f.depth--
		f.addMat(fuzzVar{name: acc, rows: 1, cols: a.cols, mag: mag})
		return true

	case 23: // nested epoch x batch loop: the mini-batch gradient shape
		if f.depth > 0 {
			return false
		}
		a := f.pickMat()
		if a.rows < 4 {
			return false
		}
		ne := 2 + f.r.Intn(2) // 2..3 epochs
		nb := 2 + f.r.Intn(2) // 2..3 batches per epoch
		mag := a.mag*float64(a.rows)*float64(ne) + 1
		if mag > magCap {
			return false
		}
		bs := a.rows / nb
		acc := f.fresh("m")
		ev := f.fresh("i")
		bv := f.fresh("i")
		lo := f.fresh("s")
		hi := f.fresh("s")
		f.line("%s = matrix(0, rows=1, cols=%d);", acc, a.cols)
		f.depth++
		f.line("for (%s in 1:%d) {", ev, ne)
		f.line("  for (%s in 1:%d) {", bv, nb)
		f.line("    %s = (%s - 1) * %d + 1;", lo, bv, bs)
		f.line("    %s = %s * %d;", hi, bv, bs)
		f.line("    %s = %s + colSums(%s[%s:%s, 1:%d]) / %s;", acc, acc, a.name, lo, hi, a.cols, ev)
		f.line("  }")
		f.line("}")
		f.depth--
		f.addMat(fuzzVar{name: acc, rows: 1, cols: a.cols, mag: mag})
		return true

	case 24: // parfor over per-batch row slices into disjoint output rows
		if f.depth > 0 {
			return false
		}
		a := f.pickMat()
		if a.rows < 4 {
			return false
		}
		mag := a.mag*float64(a.rows) + 1
		if mag > magCap {
			return false
		}
		nb := 2 + f.r.Intn(3) // 2..4 batches, trip count <= 8
		bs := a.rows / nb
		out := f.fresh("m")
		iv := f.fresh("i")
		f.line("%s = matrix(0, rows=%d, cols=1);", out, nb)
		f.depth++
		f.line("parfor (%s in 1:%d) {", iv, nb)
		f.line("  %s[%s, 1] = matrix(sum(%s[((%s - 1) * %d + 1):(%s * %d), 1:%d]), rows=1, cols=1);",
			out, iv, a.name, iv, bs, iv, bs, a.cols)
		f.line("}")
		f.depth--
		f.addMat(fuzzVar{name: out, rows: nb, cols: 1, mag: mag})
		return true

	default: // table over a fresh label read-back via min/max clamp
		if f.depth > 0 {
			return false
		}
		// ppred-built binary labels: table(seq, 1+ppred) is 2 columns.
		a := f.pickMat()
		if a.cols != 1 {
			return false
		}
		lit, _ := f.litScalar()
		lab := f.fresh("m")
		n := f.fresh("m")
		s := f.fresh("s")
		f.line("%s = 1 + ppred(%s, %s, \">\");", lab, a.name, lit)
		f.line("%s = table(seq(1, %d), %s);", n, a.rows, lab)
		f.line("%s = sum(%s);", s, n)
		f.addMat(fuzzVar{name: lab, rows: a.rows, cols: 1, mag: 2})
		f.addScal(s, float64(a.rows))
		f.extra = append(f.extra, n)
		return true
	}
}

// stmtTable emits the table() consumption of the categorical input L.
// The table's column count is data dependent, so the result is write-only
// plus an aggregate; it never enters the shape-tracked operand pool.
func (f *fuzzer) stmtTable(l fuzzVar) {
	n := f.fresh("m")
	s := f.fresh("s")
	f.line("%s = table(seq(1, %d), %s);", n, l.rows, l.name)
	f.line("%s = sum(%s);", s, n)
	f.addScal(s, float64(l.rows))
	f.extra = append(f.extra, n)
}

// trailer writes all matrices and prints/writes all scalars.
func (f *fuzzer) trailer() {
	for _, m := range f.mats {
		f.line("write(%s, \"/out/fz/%s\");", m.name, m.name)
	}
	for _, name := range f.extra {
		f.line("write(%s, \"/out/fz/%s\");", name, name)
	}
	for _, s := range f.scals {
		f.line("print(\"%s=\" + %s);", s.name, s.name)
		f.line("wm_%s = matrix(%s, rows=1, cols=1);", s.name, s.name)
		f.line("write(wm_%s, \"/out/fz/s_%s\");", s.name, s.name)
	}
}
