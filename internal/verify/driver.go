package verify

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/obs"
	"elasticml/internal/opt"
	"elasticml/internal/rt"
)

// refTol is the relative per-cell tolerance against the naive reference
// interpreter. The production runtime and the reference use different
// kernels, reduction orders and elimination schemes, so exact bit equality
// is not expected there — only across production plans.
const refTol = 1e-6

// Options tunes a harness run.
type Options struct {
	// Configs is the differential matrix (DefaultConfigs() if nil).
	Configs []Config
	// ULPTol is the allowed cross-configuration ULP distance per cell.
	// The default 0 demands bit-identical outputs: all plans execute the
	// same deterministic kernels over the same values, so any drift is a
	// real plan-dependence bug.
	ULPTol uint64
	// SkipReference disables the reference-interpreter comparison.
	SkipReference bool
	// Trace, when non-nil, records compile and runtime spans of every
	// configuration run for Chrome trace export.
	Trace *obs.Tracer
}

// RunProgram executes one program under every configuration plus the
// reference interpreter and returns the aggregated comparison result.
func RunProgram(p Program, o Options) ProgramResult {
	cfgs := o.Configs
	if cfgs == nil {
		cfgs = DefaultConfigs()
	}
	res := ProgramResult{Program: p.Name}
	var runs []*runOutput
	for _, cfg := range cfgs {
		res.Configs = append(res.Configs, cfg.Name)
		r := runOne(p, cfg, o.Trace)
		res.Ops += r.ops
		res.Findings = append(res.Findings, r.findings...)
		if r.err != nil {
			res.Findings = append(res.Findings, Finding{
				Kind:    RunError,
				Program: p.Name,
				Config:  cfg.Name,
				Where:   "run",
				Detail:  r.err.Error(),
			})
			continue
		}
		runs = append(runs, r)
	}
	if len(runs) == 0 {
		return res
	}

	base := runs[0]
	res.Outputs = len(base.paths)
	for _, other := range runs[1:] {
		compareRuns(&res, p.Name, base, other, o.ULPTol)
	}

	if !o.SkipReference {
		compareReference(&res, p, base)
	}
	return res
}

// Run executes the whole program set and assembles the report.
func Run(programs []Program, o Options, progress func(ProgramResult)) *Report {
	rep := &Report{}
	for _, p := range programs {
		r := RunProgram(p, o)
		rep.Programs = append(rep.Programs, r)
		if progress != nil {
			progress(r)
		}
	}
	return rep
}

// runOutput is one configuration's observable result.
type runOutput struct {
	cfg      string
	paths    []string // sorted persistent-output paths under /out
	outputs  map[string]*matrix.Matrix
	prints   string
	ops      int
	findings []Finding
	err      error
}

func runOne(p Program, cfg Config, tr *obs.Tracer) (r *runOutput) {
	r = &runOutput{cfg: cfg.Name, outputs: map[string]*matrix.Matrix{}}
	defer func() {
		// A panic in the compiler or a kernel is a harness finding, not a
		// harness crash: record it and let the other configurations run.
		if rec := recover(); rec != nil {
			r.err = fmt.Errorf("panic: %v", rec)
		}
	}()

	fs := hdfs.New()
	if p.Setup != nil {
		p.Setup(fs)
	}
	prog, err := dml.Parse(p.Source)
	if err != nil {
		r.err = fmt.Errorf("parse: %w", err)
		return r
	}
	comp := hop.NewCompiler(fs, p.Params)
	hp, err := comp.Compile(prog, p.Source)
	if err != nil {
		r.err = fmt.Errorf("compile: %w", err)
		return r
	}

	cc := conf.DefaultCluster()
	if cfg.HDFSBlock > 0 {
		cc.HDFSBlockSize = cfg.HDFSBlock
	}
	var resources conf.Resources
	if cfg.Optimize {
		resources = opt.New(cc).Optimize(hp).Res
	} else {
		resources = conf.NewResources(cfg.CP, cfg.MR, hp.NumLeaf).WithCores(cfg.Cores)
	}

	plan := lop.Select(hp, cc, resources)
	ip := rt.New(rt.ModeValue, fs, cc, resources)
	ip.Compiler = comp
	if tr.Enabled() {
		ip.Trace = tr
	}
	var out bytes.Buffer
	ip.Out = &out
	aud := &auditor{program: p.Name, config: cfg.Name}
	ip.MemHook = aud.hook
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			r.err = fmt.Errorf("fault plan: %w", err)
			return r
		}
		ip.Faults = inj
	}
	if err := ip.Run(plan); err != nil {
		r.err = fmt.Errorf("run: %w", err)
		return r
	}

	r.ops = aud.ops
	r.findings = aud.findings
	r.prints = out.String()

	// The buffer pool's high-water mark must respect the CP budget, modulo
	// the pinning waiver: a single variable larger than the whole budget
	// stays resident (it cannot be split), so the peak may legitimately
	// reach the largest single admitted variable.
	budget := cc.OpBudget(resources.CP)
	if budget > 0 && ip.State.Peak > budget && ip.State.Peak > ip.State.MaxVar {
		r.findings = append(r.findings, Finding{
			Kind:     PoolOverPeak,
			Program:  p.Name,
			Config:   cfg.Name,
			Where:    "buffer pool",
			Detail:   fmt.Sprintf("resident peak %d B exceeds budget %d B beyond the pinned-variable waiver", ip.State.Peak, budget),
			Estimate: budget,
			Actual:   ip.State.Peak,
		})
	}

	for _, path := range fs.List() {
		if !strings.HasPrefix(path, "/out") {
			continue
		}
		f, err := fs.Stat(path)
		if err != nil || f.Data == nil {
			continue
		}
		r.paths = append(r.paths, path)
		r.outputs[path] = f.Data
	}
	sort.Strings(r.paths)
	return r
}

func compareRuns(res *ProgramResult, prog string, base, other *runOutput, ulpTol uint64) {
	if base.prints != other.prints {
		res.Findings = append(res.Findings, Finding{
			Kind:    CrossConfigMismatch,
			Program: prog,
			Config:  base.cfg + " vs " + other.cfg,
			Where:   "print stream",
			Detail:  fmt.Sprintf("print output differs:\n--- %s ---\n%s--- %s ---\n%s", base.cfg, base.prints, other.cfg, other.prints),
		})
	}
	if !sameStrings(base.paths, other.paths) {
		res.Findings = append(res.Findings, Finding{
			Kind:    CrossConfigMismatch,
			Program: prog,
			Config:  base.cfg + " vs " + other.cfg,
			Where:   "output set",
			Detail:  fmt.Sprintf("written paths differ: %v vs %v", base.paths, other.paths),
		})
		return
	}
	for _, path := range base.paths {
		a, b := base.outputs[path], other.outputs[path]
		if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
			res.Findings = append(res.Findings, Finding{
				Kind:    CrossConfigMismatch,
				Program: prog,
				Config:  base.cfg + " vs " + other.cfg,
				Where:   path,
				Detail:  fmt.Sprintf("dimensions differ: %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()),
			})
			continue
		}
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < a.Cols(); j++ {
				d := ulpDist(a.At(i, j), b.At(i, j))
				if d == 0 {
					continue
				}
				if d > res.MaxULP {
					res.MaxULP = d
				}
				kind := CrossConfigMismatch
				if d <= ulpTol {
					kind = ToleratedULP
				}
				res.Findings = append(res.Findings, Finding{
					Kind:    kind,
					Program: prog,
					Config:  base.cfg + " vs " + other.cfg,
					Where:   fmt.Sprintf("%s[%d,%d]", path, i+1, j+1),
					Detail:  fmt.Sprintf("%v vs %v (%d ULP)", a.At(i, j), b.At(i, j), d),
				})
			}
		}
	}
}

func compareReference(res *ProgramResult, p Program, base *runOutput) {
	fs := hdfs.New()
	if p.Setup != nil {
		p.Setup(fs)
	}
	prog, err := dml.Parse(p.Source)
	if err != nil {
		res.Findings = append(res.Findings, refError(p.Name, err))
		return
	}
	hp, err := hop.NewCompiler(fs, p.Params).Compile(prog, p.Source)
	if err != nil {
		res.Findings = append(res.Findings, refError(p.Name, err))
		return
	}
	ref, err := RunReference(hp, fs)
	if err != nil {
		res.Findings = append(res.Findings, refError(p.Name, err))
		return
	}

	var refPaths []string
	for path := range ref.Writes {
		refPaths = append(refPaths, path)
	}
	sort.Strings(refPaths)
	if !sameStrings(base.paths, refPaths) {
		res.Findings = append(res.Findings, Finding{
			Kind:    ReferenceMismatch,
			Program: p.Name,
			Config:  base.cfg + " vs reference",
			Where:   "output set",
			Detail:  fmt.Sprintf("written paths differ: %v vs %v", base.paths, refPaths),
		})
		return
	}
	for _, path := range refPaths {
		got, want := base.outputs[path], ref.Writes[path]
		if got.Rows() != want.rows || got.Cols() != want.cols {
			res.Findings = append(res.Findings, Finding{
				Kind:    ReferenceMismatch,
				Program: p.Name,
				Config:  base.cfg + " vs reference",
				Where:   path,
				Detail:  fmt.Sprintf("dimensions differ: %dx%d vs %dx%d", got.Rows(), got.Cols(), want.rows, want.cols),
			})
			continue
		}
		for i := 0; i < want.rows; i++ {
			for j := 0; j < want.cols; j++ {
				g, w := got.At(i, j), want.at(i, j)
				if closeRel(g, w) {
					continue
				}
				res.Findings = append(res.Findings, Finding{
					Kind:    ReferenceMismatch,
					Program: p.Name,
					Config:  base.cfg + " vs reference",
					Where:   fmt.Sprintf("%s[%d,%d]", path, i+1, j+1),
					Detail:  fmt.Sprintf("runtime %v vs reference %v", g, w),
				})
			}
		}
	}
}

func refError(prog string, err error) Finding {
	return Finding{
		Kind:    RunError,
		Program: prog,
		Config:  "reference",
		Where:   "run",
		Detail:  err.Error(),
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// closeRel reports whether two cells agree within the reference tolerance.
func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= refTol*scale
}

// ulpDist is the distance between two float64 values in units of least
// precision, using the standard order-preserving integer transform. NaNs
// with different payloads compare equal; NaN vs non-NaN is maximal.
func ulpDist(a, b float64) uint64 {
	if a == b {
		return 0
	}
	an, bn := math.IsNaN(a), math.IsNaN(b)
	if an && bn {
		return 0
	}
	if an != bn {
		return math.MaxUint64
	}
	ai, bi := orderedBits(a), orderedBits(b)
	if ai > bi {
		return ai - bi
	}
	return bi - ai
}

func orderedBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}
