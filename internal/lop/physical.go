package lop

import (
	"elasticml/internal/conf"
	"elasticml/internal/hop"
)

// physical chooses the physical MR operator for a hop scheduled to MR,
// deciding broadcasts against the MR task budget (paper Appendix B:
// map-side operators require one input to fit in the mapper memory,
// similar to broadcast joins).
func (s *selector) physical(h *hop.Hop, mrBudget conf.Bytes, chains map[int64]chainInfo) *MROp {
	op := &MROp{Hop: h}
	fits := func(x *hop.Hop) bool {
		return x != nil && x.DataType == hop.Matrix &&
			!hop.InfiniteMem(x.OutMem) && x.OutMem <= mrBudget
	}

	switch h.Kind {
	case hop.KindMatMul:
		if ci, ok := chains[h.ID]; ok {
			op.Phys = PhysMapMMChain
			op.Broadcast = append(op.Broadcast, ci.v)
			if ci.w != nil {
				op.Broadcast = append(op.Broadcast, ci.w)
			}
			return op
		}
		l, r := h.Inputs[0], h.Inputs[1]
		// TSMM: t(X) %*% X computed in a single pass with a tiny k x k
		// aggregation.
		if h.TransA && l == r {
			op.Phys = PhysTSMM
			return op
		}
		// MapMM: broadcast the smaller side if it fits.
		small, big := l, r
		if sizeOf(r) < sizeOf(l) {
			small, big = r, l
		}
		if fits(small) {
			op.Phys = PhysMapMM
			op.Broadcast = []*hop.Hop{small}
			_ = big
			return op
		}
		// Shuffle-based matrix multiply: RMM for modest replication,
		// CPMM otherwise; cost-wise both shuffle the full inputs.
		op.Phys = PhysCPMM
		op.Shuffles = true
		return op

	case hop.KindBinary:
		l, r := h.Inputs[0], h.Inputs[1]
		// Matrix-scalar and unary-like cases are map-only.
		if l.IsScalar() || r.IsScalar() {
			op.Phys = PhysMapUnary
			return op
		}
		small, _ := l, r
		if sizeOf(r) < sizeOf(l) {
			small = r
		}
		if fits(small) {
			op.Phys = PhysMapBinary
			op.Broadcast = []*hop.Hop{small}
			return op
		}
		op.Phys = PhysShuffleBinary
		op.Shuffles = true
		return op

	case hop.KindUnary:
		op.Phys = PhysMapUnary
		return op

	case hop.KindAggUnary, hop.KindTernaryAgg:
		// Partial aggregation in mappers with combiners; the cross-task
		// merge is tiny.
		op.Phys = PhysAgg
		// Ternary aggregates scan co-partitioned inputs; broadcast the
		// small ones.
		if h.Kind == hop.KindTernaryAgg {
			for _, in := range h.Inputs[1:] {
				if fits(in) && sizeOf(in) < sizeOf(h.Inputs[0]) {
					op.Broadcast = append(op.Broadcast, in)
				}
			}
		}
		return op

	case hop.KindReorg:
		op.Phys = PhysReorg
		op.Shuffles = true
		return op

	case hop.KindDataGen:
		op.Phys = PhysDataGen
		return op

	case hop.KindSeq:
		op.Phys = PhysSeq
		return op

	case hop.KindAppend:
		l, r := h.Inputs[0], h.Inputs[1]
		if fits(r) && sizeOf(r) <= sizeOf(l) {
			op.Phys = PhysAppend
			op.Broadcast = []*hop.Hop{r}
			return op
		}
		op.Phys = PhysAppend
		op.Shuffles = true
		return op

	case hop.KindIndex:
		op.Phys = PhysIndex
		return op

	case hop.KindLeftIndex:
		// Broadcast the (usually small) right-hand side.
		if v := h.Inputs[1]; fits(v) {
			op.Broadcast = []*hop.Hop{v}
		} else {
			op.Shuffles = true
		}
		op.Phys = PhysLeftIndex
		return op

	case hop.KindTable:
		op.Phys = PhysTable
		return op

	case hop.KindDiag:
		op.Phys = PhysMapUnary
		return op

	default:
		op.Phys = PhysMapUnary
		return op
	}
}

// sizeOf is a hop's output size for broadcast decisions; unknown sizes are
// infinite.
func sizeOf(h *hop.Hop) conf.Bytes {
	if h == nil || h.DataType != hop.Matrix {
		return 0
	}
	return h.OutMem
}

// canMerge reports whether an operator can piggyback onto the open job:
// the combined broadcast memory must fit the MR task budget, at most one
// shuffle phase is allowed, and an operator may consume a shuffling
// operator's output only across a job boundary.
func (s *selector) canMerge(job *MRJob, op *MROp, inJob map[int64]*MRJob, mrBudget conf.Bytes) bool {
	if op.Shuffles && job.Shuffles() {
		return false
	}
	// Inputs produced inside this job must come from non-shuffling ops.
	for _, in := range op.Hop.Inputs {
		if in == nil {
			continue
		}
		if inJob[in.ID] == job {
			for _, jo := range job.Ops {
				if jo.Hop == in && jo.Shuffles {
					return false
				}
			}
		}
	}
	var bcast conf.Bytes
	for _, jo := range job.Ops {
		for _, b := range jo.Broadcast {
			bcast += b.OutMem
		}
	}
	for _, b := range op.Broadcast {
		bcast += b.OutMem
	}
	return bcast <= mrBudget
}

// addToJob places the operator into the job, updating scan inputs and the
// producer map.
func (s *selector) addToJob(job *MRJob, op *MROp, inJob map[int64]*MRJob) {
	job.Ops = append(job.Ops, op)
	inJob[op.Hop.ID] = job
	bcast := map[int64]bool{}
	for _, b := range op.Broadcast {
		bcast[b.ID] = true
	}
	scan := scanInputsOf(op)
	for _, in := range scan {
		if bcast[in.ID] || inJob[in.ID] == job {
			continue
		}
		dup := false
		for _, existing := range job.ScanInputs {
			if existing.ID == in.ID {
				dup = true
				break
			}
		}
		if !dup {
			job.ScanInputs = append(job.ScanInputs, in)
		}
	}
}

// scanInputsOf returns the matrix inputs streamed by mappers (non-broadcast
// operands). MapMMChain scans X directly rather than its fused transpose.
func scanInputsOf(op *MROp) []*hop.Hop {
	if op.Phys == PhysMapMMChain || op.Phys == PhysTSMM {
		// X is scanned exactly once; the rest of the pattern is fused.
		return []*hop.Hop{op.Hop.Inputs[0]}
	}
	var out []*hop.Hop
	for _, in := range op.Hop.Inputs {
		if in != nil && in.DataType == hop.Matrix {
			out = append(out, in)
		}
	}
	return out
}
