package lop

import (
	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hop"
)

// Select compiles a HOP program into an executable runtime plan under the
// given cluster configuration and resource vector. This is the
// memory-sensitive heart of the compiler (paper §2.1): an operation runs in
// CP if its memory estimate fits the CP budget (CPBudgetRatio of the CP
// heap); map-side physical operators are chosen if their broadcast operand
// fits the MR task budget; MR operators are packed into a minimal number of
// jobs under the same budget.
func Select(p *hop.Program, cc conf.Cluster, res conf.Resources) *Plan {
	s := newSelector(cc, res)
	plan := &Plan{Resources: res.Clone(), HopProgram: p}
	plan.Blocks = s.blocks(p.Blocks)
	return plan
}

// SelectBlock recompiles a single generic block (dynamic recompilation).
func SelectBlock(b *hop.Block, cc conf.Cluster, res conf.Resources) *Block {
	return newSelector(cc, res).generic(b)
}

func newSelector(cc conf.Cluster, res conf.Resources) *selector {
	return &selector{cc: cc, res: res, cpBudget: cc.OpBudget(res.CP), cores: res.Cores()}
}

type selector struct {
	cc       conf.Cluster
	res      conf.Resources
	cpBudget conf.Bytes
	cores    int
}

// MultiThreadMemFactor is the per-extra-core inflation of operation memory
// estimates for multi-threaded CP operations (§6: "usually the degree of
// parallelism affects memory requirements").
const MultiThreadMemFactor = 0.15

// effectiveOpMem inflates an operation memory estimate for multi-threaded
// execution (per-thread partial results and buffers).
func (s *selector) effectiveOpMem(m conf.Bytes) conf.Bytes {
	if s.cores <= 1 || hop.InfiniteMem(m) {
		return m
	}
	f := 1 + MultiThreadMemFactor*float64(s.cores-1)
	if f > 2 {
		f = 2
	}
	return conf.Bytes(float64(m) * f)
}

func (s *selector) blocks(hbs []*hop.Block) []*Block {
	out := make([]*Block, 0, len(hbs))
	for _, hb := range hbs {
		out = append(out, s.block(hb))
	}
	return out
}

func (s *selector) block(hb *hop.Block) *Block {
	switch hb.Kind {
	case dml.GenericBlock:
		return s.generic(hb)
	default:
		b := &Block{Kind: hb.Kind, Index: -1, Pred: hb.Pred, Var: hb.Var,
			From: hb.From, To: hb.To, HopBlock: hb, KnownIters: hb.KnownIters,
			Parallel: hb.Parallel}
		b.Then = s.blocks(hb.Then)
		b.Else = s.blocks(hb.Else)
		if hb.Parallel {
			// Concurrent parfor workers multiply the number of live
			// intermediates: operator selection inside the body sees a
			// proportionally smaller per-worker CP budget ([6]: "the
			// degree of parallelism affects the number of intermediates").
			k := s.parforDOP(hb)
			saved := s.cpBudget
			s.cpBudget = conf.Bytes(float64(saved) / float64(k))
			b.Body = s.blocks(hb.Body)
			s.cpBudget = saved
		} else {
			b.Body = s.blocks(hb.Body)
		}
		return b
	}
}

// parforDOP is the parfor worker count: the CP core count bounded by the
// trip count.
func (s *selector) parforDOP(hb *hop.Block) int {
	k := s.cores
	if hb.KnownIters != hop.Unknown && hb.KnownIters > 0 && int64(k) > hb.KnownIters {
		k = int(hb.KnownIters)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// generic runs operator selection and piggybacking over one block DAG.
func (s *selector) generic(hb *hop.Block) *Block {
	b := &Block{Kind: dml.GenericBlock, Index: hb.Index, HopBlock: hb,
		Recompile: hb.Recompile}
	mrBudget := s.cc.OpBudget(s.res.MRFor(hb.Index))

	order := topoOrder(hb.Roots)
	uses := useCounts(order)
	fused, chains := s.detectChains(order, uses, mrBudget)

	var openJob *MRJob
	inJob := map[int64]*MRJob{} // hop ID -> producing job
	closeJob := func() {
		if openJob != nil {
			b.Instrs = append(b.Instrs, Instr{Kind: InstrMR, Job: openJob})
			openJob = nil
		}
	}

	for _, h := range order {
		if fused[h.ID] {
			continue // consumed by a MapMMChain
		}
		if !executes(h) {
			continue
		}
		// Scalar-only and CP-forced operations run in the control program.
		if s.runsInCP(h) {
			// A CP instruction consuming an open job's output forces the
			// job to be emitted first.
			if openJob != nil && consumesFromJob(h, inJob, openJob) {
				closeJob()
			}
			b.Instrs = append(b.Instrs, Instr{Kind: InstrCP, Hop: h})
			continue
		}
		op := s.physical(h, mrBudget, chains)
		if openJob == nil || !s.canMerge(openJob, op, inJob, mrBudget) {
			closeJob()
			openJob = &MRJob{}
		}
		s.addToJob(openJob, op, inJob)
	}
	closeJob()
	return b
}

// executes reports whether a hop corresponds to a runtime instruction.
func executes(h *hop.Hop) bool {
	switch h.Kind {
	case hop.KindLit, hop.KindTRead, hop.KindRead:
		return false
	}
	return true
}

// runsInCP applies the execution-type heuristic: in-memory CP operations
// are assumed cheaper than their distributed counterparts, so an operation
// runs in CP whenever its memory estimate fits the CP budget.
func (s *selector) runsInCP(h *hop.Hop) bool {
	switch h.Kind {
	case hop.KindTWrite, hop.KindPrint, hop.KindStop, hop.KindWrite:
		return true
	case hop.KindSolve, hop.KindCast:
		// CP-only operators (no distributed implementation).
		return true
	}
	if h.IsScalar() && !hasMatrixInput(h) {
		return true
	}
	return !hop.InfiniteMem(h.OpMem) && s.effectiveOpMem(h.OpMem) <= s.cpBudget
}

func hasMatrixInput(h *hop.Hop) bool {
	for _, in := range h.Inputs {
		if in != nil && in.DataType == hop.Matrix {
			return true
		}
	}
	return false
}

func consumesFromJob(h *hop.Hop, inJob map[int64]*MRJob, job *MRJob) bool {
	for _, in := range h.Inputs {
		if in != nil && inJob[in.ID] == job {
			return true
		}
	}
	return false
}

// topoOrder returns all hops reachable from roots, inputs before consumers.
func topoOrder(roots []*hop.Hop) []*hop.Hop {
	var order []*hop.Hop
	hop.WalkDAG(roots, func(h *hop.Hop) { order = append(order, h) })
	return order
}

func useCounts(order []*hop.Hop) map[int64]int {
	uses := make(map[int64]int)
	for _, h := range order {
		for _, in := range h.Inputs {
			if in != nil {
				uses[in.ID]++
			}
		}
	}
	return uses
}

// chainInfo describes a fused MapMMChain: scan input X, broadcast vector v
// and optional weight vector w.
type chainInfo struct {
	x, v, w *hop.Hop
}

// detectChains marks the inner hops of t(X) %*% (X %*% v) and
// t(X) %*% (w * (X %*% v)) patterns that will fuse into a single
// MapMMChain operator (paper Table 4), and records per chain head the
// fused operands.
func (s *selector) detectChains(order []*hop.Hop, uses map[int64]int, mrBudget conf.Bytes) (map[int64]bool, map[int64]chainInfo) {
	fused := make(map[int64]bool)
	chains := make(map[int64]chainInfo)
	for _, h := range order {
		if h.Kind != hop.KindMatMul || !h.TransA || s.runsInCP(h) {
			continue
		}
		x, right := h.Inputs[0], h.Inputs[1]
		// Unwrap optional weighting w * (X %*% v).
		inner := right
		var w *hop.Hop
		if inner.Kind == hop.KindBinary && inner.Op == "*" {
			a, bb := inner.Inputs[0], inner.Inputs[1]
			if a.Kind == hop.KindMatMul {
				inner, w = a, bb
			} else if bb.Kind == hop.KindMatMul {
				inner, w = bb, a
			}
		}
		if inner.Kind != hop.KindMatMul || inner.TransA || inner.Inputs[0] != x {
			continue
		}
		v := inner.Inputs[1]
		// The chain is applicable to vector shapes whose broadcasts fit.
		bcast := v.OutMem
		if w != nil {
			bcast += w.OutMem
		}
		if hop.InfiniteMem(bcast) || bcast > mrBudget {
			continue
		}
		// Intermediates must be exclusively consumed by the chain.
		if uses[inner.ID] != 1 {
			continue
		}
		if w != nil && uses[right.ID] != 1 {
			continue
		}
		fused[inner.ID] = true
		if w != nil {
			fused[right.ID] = true
		}
		chains[h.ID] = chainInfo{x: x, v: v, w: w}
	}
	return fused, chains
}
