package lop

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/scripts"
)

var update = flag.Bool("update", false, "rewrite the golden explain files")

// TestExplainGolden pins the full EXPLAIN rendering of every paper script
// under a fixed mixed CP/MR configuration (scenario M dense1000 with a 2GB
// CP heap: large intermediates spill to MR, small ones stay in CP). Any
// change to plan selection, piggybacking or memory estimates shows up as a
// golden diff; refresh intentionally with
//
//	go test ./internal/lop -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	specs := append(scripts.All(), scripts.Minibatch()...)
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			res := conf.NewResources(2*conf.GB, 512*conf.MB, 64)
			got := Explain(compile(t, spec, 1_000_000, 1000, res))
			if again := Explain(compile(t, spec, 1_000_000, 1000, res)); again != got {
				t.Fatal("explain output is not deterministic across compilations")
			}
			path := filepath.Join("testdata", "explain", spec.Name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("explain output differs from %s (re-run with -update if intended):\n%s",
					path, diffLines(string(want), got))
			}
		})
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&sb, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
		}
	}
	return sb.String()
}
