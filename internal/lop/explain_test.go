package lop

import (
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/scripts"
)

func TestExplainContainsPlanStructure(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.LinregCG(), 1_000_000, 1000, res)
	out := Explain(p)
	for _, want := range []string{
		"PROGRAM (resources 512MB/2GB)",
		"WHILE (",
		"GENERIC [block",
		"MR GMR(",
		"mapmmchain",
		"broadcast=[",
		"CP ",
		"IF (", // the convergence branch has a data-dependent predicate
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainCPOnlyPlan(t *testing.T) {
	res := conf.NewResources(conf.BytesOfGB(53.3), 2*conf.GB, 64)
	p := compile(t, scripts.LinregDS(), 10_000, 100, res)
	out := Explain(p)
	if strings.Contains(out, "MR GMR(") {
		t.Errorf("small data, large CP should have no MR jobs:\n%s", out)
	}
	if !strings.Contains(out, "solve") {
		t.Errorf("DS plan should show solve:\n%s", out)
	}
	// All of DS's predicates fold at compile time (static branch removal),
	// so no conditional survives into the plan.
	if strings.Contains(out, "IF (") {
		t.Errorf("DS with constant parameters should have no surviving IF:\n%s", out)
	}
}

func TestExplainMarksRecompileAndUnknowns(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.MLogreg(), 100_000, 100, res)
	out := Explain(p)
	if !strings.Contains(out, "recompile") {
		t.Errorf("MLogreg plan should mark recompile blocks:\n%s", out)
	}
	if !strings.Contains(out, "?x?") {
		t.Errorf("unknown dims should render as ?x?:\n%s", out)
	}
}

func TestExplainMultiCore(t *testing.T) {
	res := conf.NewResources(conf.BytesOfGB(53.3), 2*conf.GB, 64)
	res.CPCores = 8
	p := compile(t, scripts.LinregDS(), 10_000, 100, res)
	if !strings.Contains(Explain(p), "8 CP cores") {
		t.Error("multi-core config should be shown")
	}
}
