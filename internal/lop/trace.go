package lop

import (
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hop"
	"elasticml/internal/obs"
)

// SelectTraced is Select plus trace instrumentation: an enclosing
// "lop.select" span with per-generic-block child spans carrying the
// operator-selection and piggybacking outcome (instruction counts, MR jobs,
// packed operators). It is used on the one-shot compile path of the
// commands; the optimizer's enumeration loop calls the plain Select to keep
// its hot path free of instrumentation.
func SelectTraced(p *hop.Program, cc conf.Cluster, res conf.Resources, tr *obs.Tracer) *Plan {
	if !tr.SpansEnabled() {
		return Select(p, cc, res)
	}
	sp := tr.Begin(obs.LayerCompile, "lop.select",
		obs.A("cp", res.CP.String()), obs.A("leaf_blocks", p.NumLeaf))
	plan := Select(p, cc, res)
	jobs := 0
	WalkBlocks(plan.Blocks, func(b *Block) {
		if b.Kind != dml.GenericBlock {
			return
		}
		cp, mr, packed := 0, 0, 0
		for _, in := range b.Instrs {
			if in.Kind == InstrCP {
				cp++
			} else {
				mr++
				packed += len(in.Job.Ops)
			}
		}
		jobs += mr
		bsp := tr.Begin(obs.LayerCompile, fmt.Sprintf("lop.block[%d]", b.Index),
			obs.A("cp_instrs", cp), obs.A("mr_jobs", mr), obs.A("piggybacked_ops", packed),
			obs.A("recompile", b.Recompile))
		bsp.End()
	})
	sp.End(obs.A("mr_jobs", jobs))
	return plan
}

// RecordJobMetrics accumulates plan-shape counters for the metrics
// registry (MR jobs, piggybacked ops, CP instructions).
func RecordJobMetrics(m *obs.Metrics, p *Plan) {
	if m == nil {
		return
	}
	WalkBlocks(p.Blocks, func(b *Block) {
		for _, in := range b.Instrs {
			if in.Kind == InstrMR {
				m.Add("lop.mr_jobs", 1)
				m.Add("lop.piggybacked_ops", int64(len(in.Job.Ops)))
			} else {
				m.Add("lop.cp_instrs", 1)
			}
		}
	})
}
