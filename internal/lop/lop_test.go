package lop

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/scripts"
)

func compile(t *testing.T, spec scripts.Spec, n, m int64, res conf.Resources) *Plan {
	t.Helper()
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := hop.NewCompiler(fs, spec.Params)
	hp, err := c.Compile(prog, spec.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Select(hp, conf.DefaultCluster(), res)
}

func physOps(p *Plan) map[PhysicalOp]int {
	out := map[PhysicalOp]int{}
	WalkBlocks(p.Blocks, func(b *Block) {
		for _, in := range b.Instrs {
			if in.Kind == InstrMR {
				for _, op := range in.Job.Ops {
					out[op.Phys]++
				}
			}
		}
	})
	return out
}

func TestLargeCPMemoryAllInCP(t *testing.T) {
	// Scenario M (8GB X) with 53.3GB CP: everything fits in memory.
	res := conf.NewResources(conf.BytesOfGB(53.3), 512*conf.MB, 64)
	p := compile(t, scripts.LinregCG(), 1_000_000, 1000, res)
	if n := NumMRJobs(p.Blocks); n != 0 {
		t.Errorf("large CP: %d MR jobs, want 0", n)
	}
}

func TestSmallCPMemoryForcesMR(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.LinregCG(), 1_000_000, 1000, res)
	if n := NumMRJobs(p.Blocks); n == 0 {
		t.Error("small CP: expected MR jobs for 8GB input")
	}
	ops := physOps(p)
	// The CG core t(X)(Xp) must fuse into a MapMMChain.
	if ops[PhysMapMMChain] == 0 {
		t.Errorf("expected MapMMChain, got ops %v", ops)
	}
}

func TestTSMMSelected(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.LinregDS(), 1_000_000, 1000, res)
	ops := physOps(p)
	if ops[PhysTSMM] == 0 {
		t.Errorf("LinregDS on MR should use TSMM, got %v", ops)
	}
}

func TestMapMMBroadcastBudget(t *testing.T) {
	// X (n x 1000, 8GB) %*% W (1000 x 2000, 16MB): W fits a 2GB task budget
	// => MapMM. With a minimum task budget W (16MB) still fits, so shrink
	// further via a custom huge W to force shuffle.
	src := `
X = read($X);
W = read($W);
R = X %*% W;
write(R, "/out/R");
`
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1_000_000, 1000, 1_000_000*1000, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/W", 1000, 2000, 1000*2000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X", "W": "/data/W"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	cc := conf.DefaultCluster()
	p := Select(hp, cc, conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf))
	ops := physOps(p)
	if ops[PhysMapMM] == 0 {
		t.Errorf("16MB operand should broadcast: %v", ops)
	}

	// Huge W (8GB) cannot broadcast into a 2GB task: shuffle-based MM.
	fs2 := hdfs.New()
	fs2.PutDescriptor("/data/X", 1_000_000, 1000, 1_000_000*1000, hdfs.BinaryBlock)
	fs2.PutDescriptor("/data/W", 1000, 1_000_000, 1000*1_000_000, hdfs.BinaryBlock)
	c2 := hop.NewCompiler(fs2, map[string]interface{}{"X": "/data/X", "W": "/data/W"})
	hp2, err := c2.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	p2 := Select(hp2, cc, conf.NewResources(512*conf.MB, 2*conf.GB, hp2.NumLeaf))
	ops2 := physOps(p2)
	if ops2[PhysCPMM] == 0 {
		t.Errorf("8GB operand should force shuffle MM: %v", ops2)
	}
}

func TestPiggybackingPacksMapOnlyOps(t *testing.T) {
	// Several map-only ops over the same X should share one job.
	src := `
X = read($X);
A = X * 2;
B = abs(A);
C = B + 0.5;
s = sum(C);
print(s);
`
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1_000_000, 1000, 1_000_000*1000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	p := Select(hp, conf.DefaultCluster(), conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf))
	jobs := NumMRJobs(p.Blocks)
	if jobs != 1 {
		t.Errorf("map-only pipeline should pack into 1 job, got %d", jobs)
	}
	ops := physOps(p)
	total := 0
	for _, n := range ops {
		total += n
	}
	if total < 4 {
		t.Errorf("expected >=4 packed ops, got %v", ops)
	}
}

func TestBigIntermediateBinaryShuffles(t *testing.T) {
	// Regression for the matrix-scalar nnz estimate: X * 2 over a dense X
	// is as large as X itself, so a binary joining two such intermediates
	// must not pretend one side is broadcastable (the old scalar-operand
	// nnz rule estimated it at zero non-zeros, an unsound lower bound that
	// packed an 8GB broadcast into a 2GB task).
	src := `
X = read($X);
A = X * 2;
B = abs(X);
C = A + B;
s = sum(C);
print(s);
`
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1_000_000, 1000, 1_000_000*1000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	p := Select(hp, conf.DefaultCluster(), conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf))
	ops := physOps(p)
	if ops[PhysShuffleBinary] == 0 {
		t.Errorf("two 8GB operands must shuffle, not broadcast: %v", ops)
	}
	if ops[PhysMapBinary] != 0 {
		t.Errorf("no binary over 8GB intermediates may broadcast: %v", ops)
	}
}

func TestShuffleBoundaryBreaksJob(t *testing.T) {
	// A transpose (shuffle) followed by consumption of its output must
	// split jobs.
	src := `
X = read($X);
Y = t(X);
Z = Y * 2;
s = sum(Z);
print(s);
`
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1_000_000, 1000, 1_000_000*1000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	p := Select(hp, conf.DefaultCluster(), conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf))
	if jobs := NumMRJobs(p.Blocks); jobs < 2 {
		t.Errorf("shuffle output consumption needs >=2 jobs, got %d", jobs)
	}
}

func TestScanSharingMemoryConstraint(t *testing.T) {
	// Two matrix-vector products over X: both vectors must fit together in
	// mapper memory to share one job (the paper's §3.3.2 example).
	src := `
X = read($X);
v = read($V);
w = read($W);
a = X %*% v;
b = X %*% w;
s = sum(a) + sum(b);
print(s);
`
	n := int64(2_000_000)
	m := int64(1000)
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/V", m, 120_000, m*120_000, hdfs.BinaryBlock) // ~0.96GB each
	fs.PutDescriptor("/data/W", m, 120_000, m*120_000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]interface{}{"X": "/data/X", "V": "/data/V", "W": "/data/W"}
	c := hop.NewCompiler(fs, params)
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	cc := conf.DefaultCluster()
	// 3GB task budget (0.7*4.3GB): both ~0.96GB broadcasts fit => 1 job.
	big := Select(hp, cc, conf.NewResources(512*conf.MB, conf.BytesOfGB(4.3), hp.NumLeaf))
	// 1.5GB task budget (0.7*2.2GB ~ 1.54GB): only one fits => 2 jobs.
	small := Select(hp, cc, conf.NewResources(512*conf.MB, conf.BytesOfGB(2.2), hp.NumLeaf))
	bigJobs, smallJobs := NumMRJobs(big.Blocks), NumMRJobs(small.Blocks)
	if bigJobs >= smallJobs {
		t.Errorf("scan sharing: %d jobs with big tasks should be < %d with small tasks",
			bigJobs, smallJobs)
	}
}

func TestSolveAlwaysCP(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.LinregDS(), 1_000_000, 1000, res)
	WalkBlocks(p.Blocks, func(b *Block) {
		for _, in := range b.Instrs {
			if in.Kind == InstrMR {
				for _, op := range in.Job.Ops {
					if op.Hop.Kind == hop.KindSolve {
						t.Error("solve must stay in CP")
					}
				}
			}
		}
	})
}

func TestRecompileFlagPropagates(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.MLogreg(), 100_000, 100, res)
	n := 0
	WalkBlocks(p.Blocks, func(b *Block) {
		if b.Recompile {
			n++
		}
	})
	if n == 0 {
		t.Error("MLogreg plan should carry recompile flags")
	}
}

func TestJobNamesReadable(t *testing.T) {
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	p := compile(t, scripts.LinregDS(), 1_000_000, 1000, res)
	WalkBlocks(p.Blocks, func(b *Block) {
		for _, in := range b.Instrs {
			if in.Kind == InstrMR {
				if in.Job.Name() == "GMR()" {
					t.Error("empty job name")
				}
			}
		}
	})
}
