// Package lop implements the low-level operator layer of the compiler:
// CP-vs-MR operator selection based on memory estimates, physical operator
// choice for memory-sensitive operations (MapMM, MapMMChain, TSMM, CPMM,
// map-side binary), and piggybacking of MR operators into a minimal number
// of MR jobs under memory constraints (paper §2.1, Appendix B, Table 4).
// Its output is the executable runtime plan consumed by the cost model and
// the runtime interpreter.
package lop

import (
	"fmt"
	"strings"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hop"
)

// PhysicalOp identifies the chosen physical operator of an MR operator.
type PhysicalOp int

// Physical MR operators.
const (
	PhysNone       PhysicalOp = iota
	PhysMapMM                 // map-side matrix mult, one operand broadcast
	PhysMapMMChain            // fused t(X)(w*(Xv)) chain, single pass over X
	PhysTSMM                  // transpose-self matrix mult t(X)X
	PhysCPMM                  // cross-product shuffle matrix mult
	PhysRMM                   // replication-based shuffle matrix mult
	PhysMapBinary             // map-side elementwise with broadcast operand
	PhysShuffleBinary
	PhysMapUnary
	PhysAgg     // partial aggregates with combiner
	PhysReorg   // transpose via full shuffle
	PhysDataGen // distributed data generation
	PhysAppend
	PhysIndex
	PhysTable
	PhysLeftIndex
	PhysSeq
)

func (p PhysicalOp) String() string {
	switch p {
	case PhysMapMM:
		return "mapmm"
	case PhysMapMMChain:
		return "mapmmchain"
	case PhysTSMM:
		return "tsmm"
	case PhysCPMM:
		return "cpmm"
	case PhysRMM:
		return "rmm"
	case PhysMapBinary:
		return "map*"
	case PhysShuffleBinary:
		return "shuffle*"
	case PhysMapUnary:
		return "mapu"
	case PhysAgg:
		return "uagg"
	case PhysReorg:
		return "r'"
	case PhysDataGen:
		return "rand"
	case PhysAppend:
		return "append"
	case PhysIndex:
		return "rix"
	case PhysTable:
		return "ctable"
	case PhysLeftIndex:
		return "lix"
	case PhysSeq:
		return "seq"
	}
	return "none"
}

// MROp is one HOP operator placed inside an MR job.
type MROp struct {
	Hop  *hop.Hop
	Phys PhysicalOp
	// Broadcast lists the inputs loaded into every map task's memory
	// (distributed cache), constrained by the MR task budget.
	Broadcast []*hop.Hop
	// Shuffles reports whether the operator requires a shuffle phase.
	Shuffles bool
}

// MRJob is one MR-job instruction packing one or more MR operators
// (piggybacking). Scanned inputs are read from HDFS by map tasks.
type MRJob struct {
	Ops []*MROp
	// ScanInputs are the HDFS-resident matrix inputs streamed by mappers.
	ScanInputs []*hop.Hop
	// Exports are CP-resident variables that must be written to HDFS
	// before the job starts.
	Exports []*hop.Hop
}

// Name renders the job label, e.g. "GMR(mapmm,uak+)".
func (j *MRJob) Name() string {
	ops := make([]string, len(j.Ops))
	for i, o := range j.Ops {
		ops[i] = o.Phys.String()
	}
	return "GMR(" + strings.Join(ops, ",") + ")"
}

// Shuffles reports whether any packed operator shuffles.
func (j *MRJob) Shuffles() bool {
	for _, o := range j.Ops {
		if o.Shuffles {
			return true
		}
	}
	return false
}

// InstrKind distinguishes plan instructions.
type InstrKind int

// Instruction kinds.
const (
	InstrCP InstrKind = iota
	InstrMR
)

// Instr is one runtime instruction of a generic block: either a CP
// operation over one hop or an MR job over several.
type Instr struct {
	Kind InstrKind
	Hop  *hop.Hop // CP instruction target
	Job  *MRJob   // MR job
}

func (i Instr) String() string {
	if i.Kind == InstrMR {
		return i.Job.Name()
	}
	return fmt.Sprintf("CP %s", i.Hop)
}

// Label renders a stable operator label without instance-specific
// dimensions — the join key between cost-model predictions and trace spans
// (the same operator keeps its label across dynamic recompilations, whereas
// hop IDs do not survive them).
func (i Instr) Label() string {
	if i.Kind == InstrMR {
		return "MR " + i.Job.Name()
	}
	label := i.Hop.Kind.String()
	if i.Hop.Op != "" {
		label += "(" + i.Hop.Op + ")"
	}
	return "CP " + label
}

// Block is one program block of the runtime plan.
type Block struct {
	Kind  dml.BlockKind
	Index int
	// Instrs is the execution sequence of a generic block.
	Instrs []Instr
	// Pred holds the predicate evaluation instructions of if/while blocks
	// (always CP: predicates are scalar DAGs).
	Pred *hop.Hop
	// For header.
	Var      string
	From, To *hop.Hop
	// Children.
	Then, Else, Body []*Block
	// HopBlock links back for dynamic recompilation.
	HopBlock *hop.Block
	// KnownIters is the static trip count (hop.Unknown if dynamic).
	KnownIters int64
	// Parallel marks parfor blocks (concurrent iterations).
	Parallel bool
	// Recompile marks blocks subject to dynamic recompilation.
	Recompile bool
}

// Plan is a compiled runtime plan for a full program under one resource
// configuration.
type Plan struct {
	Blocks    []*Block
	Resources conf.Resources
	// HopProgram links back to the HOP program (for re-optimization and
	// migration, which recompile from source).
	HopProgram *hop.Program
}

// WalkBlocks visits all plan blocks in pre-order.
func WalkBlocks(blocks []*Block, fn func(*Block)) {
	for _, b := range blocks {
		fn(b)
		WalkBlocks(b.Then, fn)
		WalkBlocks(b.Else, fn)
		WalkBlocks(b.Body, fn)
	}
}

// NumMRJobs counts the MR-job instructions in the given blocks.
func NumMRJobs(blocks []*Block) int {
	n := 0
	WalkBlocks(blocks, func(b *Block) {
		for _, in := range b.Instrs {
			if in.Kind == InstrMR {
				n++
			}
		}
	})
	return n
}

// LeafBlocks returns generic blocks in execution order.
func (p *Plan) LeafBlocks() []*Block {
	var out []*Block
	WalkBlocks(p.Blocks, func(b *Block) {
		if b.Kind == dml.GenericBlock {
			out = append(out, b)
		}
	})
	return out
}
