package lop

import (
	"fmt"
	"strings"

	"elasticml/internal/dml"
	"elasticml/internal/hop"
)

// Explain renders a runtime plan as an indented textual tree, in the
// spirit of SystemML's EXPLAIN output: the program-block hierarchy with
// per-block instruction lists, execution types, physical operators,
// broadcasts, and memory estimates. It is the primary debugging aid for
// understanding why a configuration produced a particular plan.
func Explain(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PROGRAM (resources %s", p.Resources.String())
	if c := p.Resources.Cores(); c > 1 {
		fmt.Fprintf(&sb, ", %d CP cores", c)
	}
	sb.WriteString(")\n")
	explainBlocks(&sb, p.Blocks, 1)
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("--")
	}
}

func explainBlocks(sb *strings.Builder, blocks []*Block, depth int) {
	for _, b := range blocks {
		explainBlock(sb, b, depth)
	}
}

func explainBlock(sb *strings.Builder, b *Block, depth int) {
	indent(sb, depth)
	switch b.Kind {
	case dml.GenericBlock:
		fmt.Fprintf(sb, "GENERIC [block %d", b.Index)
		if b.Recompile {
			sb.WriteString(", recompile")
		}
		sb.WriteString("]\n")
		for _, in := range b.Instrs {
			explainInstr(sb, in, depth+1)
		}
	case dml.IfBlockKind:
		fmt.Fprintf(sb, "IF (%s)\n", predString(b))
		explainBlocks(sb, b.Then, depth+1)
		if len(b.Else) > 0 {
			indent(sb, depth)
			sb.WriteString("ELSE\n")
			explainBlocks(sb, b.Else, depth+1)
		}
	case dml.WhileBlockKind:
		fmt.Fprintf(sb, "WHILE (%s)\n", predString(b))
		explainBlocks(sb, b.Body, depth+1)
	case dml.ForBlockKind:
		iters := "?"
		if b.KnownIters != hop.Unknown {
			iters = fmt.Sprintf("%d", b.KnownIters)
		}
		fmt.Fprintf(sb, "FOR %s [%s iterations]\n", b.Var, iters)
		explainBlocks(sb, b.Body, depth+1)
	}
}

func predString(b *Block) string {
	if b.HopBlock != nil && b.HopBlock.PredExpr != nil {
		return b.HopBlock.PredExpr.String()
	}
	return "?"
}

func explainInstr(sb *strings.Builder, in Instr, depth int) {
	indent(sb, depth)
	if in.Kind == InstrCP {
		fmt.Fprintf(sb, "CP %s\n", hopLabel(in.Hop))
		return
	}
	fmt.Fprintf(sb, "MR %s", in.Job.Name())
	if len(in.Job.ScanInputs) > 0 {
		var scans []string
		for _, si := range in.Job.ScanInputs {
			scans = append(scans, hopRef(si))
		}
		fmt.Fprintf(sb, " scan=[%s]", strings.Join(scans, ","))
	}
	sb.WriteString("\n")
	for _, op := range in.Job.Ops {
		indent(sb, depth+1)
		fmt.Fprintf(sb, "%s %s", op.Phys, hopLabel(op.Hop))
		if len(op.Broadcast) > 0 {
			var bc []string
			for _, x := range op.Broadcast {
				bc = append(bc, hopRef(x))
			}
			fmt.Fprintf(sb, " broadcast=[%s]", strings.Join(bc, ","))
		}
		if op.Shuffles {
			sb.WriteString(" shuffle")
		}
		sb.WriteString("\n")
	}
}

// hopLabel renders an instruction-level hop with dims and memory estimate.
func hopLabel(h *hop.Hop) string {
	label := h.Kind.String()
	if h.Op != "" && h.Op != label {
		label += "(" + h.Op + ")"
	}
	if h.TransA {
		label += "'"
	}
	if h.Name != "" {
		label += " " + h.Name
	}
	if h.DataType == hop.Matrix {
		d := "?x?"
		if h.DimsKnown() {
			d = fmt.Sprintf("%dx%d", h.Rows, h.Cols)
		}
		mem := "mem=?"
		if !hop.InfiniteMem(h.OpMem) {
			mem = "mem=" + h.OpMem.String()
		}
		label += fmt.Sprintf(" [%s, %s]", d, mem)
	}
	return label
}

// hopRef renders a short reference to an operand.
func hopRef(h *hop.Hop) string {
	switch h.Kind {
	case hop.KindTRead:
		return h.Name
	case hop.KindRead:
		return h.Name
	default:
		return fmt.Sprintf("%s#%d", h.Kind, h.ID)
	}
}
