package rt

import (
	"errors"
	"fmt"
	"io"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/mr"
	"elasticml/internal/obs"
)

// ErrClusterLost aborts execution when a node failure takes out the last
// live worker node: no resource configuration can complete the program.
var ErrClusterLost = errors.New("rt: all cluster nodes failed")

// Stats aggregates execution counters.
type Stats struct {
	Instructions int
	MRJobs       int
	Recompiles   int
	Migrations   int

	// Fault-recovery counters (0 without an injector).
	NodeFailures int
	TaskRetries  int
	Stragglers   int
	Speculated   int
	HDFSRetries  int
	// RecoverySeconds is the simulated time spent on re-execution of
	// failed/straggling tasks and HDFS re-reads.
	RecoverySeconds float64
}

// Trigger identifies why the adapter was consulted.
type Trigger int

const (
	// TriggerRecompile: dynamic recompilation of a block still produced MR
	// jobs (paper §4.2 — the initial configuration was off).
	TriggerRecompile Trigger = iota
	// TriggerContainerLoss: a node failure shrank the cluster; the adapter
	// re-optimizes under the reduced capacity (graceful degradation).
	TriggerContainerLoss
)

func (t Trigger) String() string {
	if t == TriggerContainerLoss {
		return "container-loss"
	}
	return "recompile"
}

// AdaptContext is handed to the resource adapter when a dynamic
// recompilation produced MR jobs (paper §4.2) or the cluster lost a node.
type AdaptContext struct {
	// Plan is the currently executing plan.
	Plan *lop.Plan
	// Block is the recompiled generic block (original plan block).
	Block *lop.Block
	// Enclosing is the stack of control blocks around Block, outermost
	// first.
	Enclosing []*lop.Block
	// Res is the current resource configuration.
	Res conf.Resources
	// Meta is the runtime variable metadata (sizes now known).
	Meta hop.SymTab
	// DirtyBytes is the size of dirty live variables (migration IO).
	DirtyBytes conf.Bytes
	// Compiler recompiles re-optimization scopes from source.
	Compiler *hop.Compiler
	// Trigger is the adaptation cause.
	Trigger Trigger
	// CC is the interpreter's current cluster view — after node failures it
	// is smaller than the configuration the plan was optimized for, and the
	// adapter must re-optimize against it.
	CC conf.Cluster
}

// AdaptDecision is the adapter's verdict.
type AdaptDecision struct {
	// NewRes is the configuration to continue with.
	NewRes conf.Resources
	// Migrate indicates an AM runtime migration (CP memory change).
	Migrate bool
	// ExtraTime is the charged adaptation overhead (optimization time plus
	// migration costs if any).
	ExtraTime float64
}

// Adapter decides on runtime resource adaptation.
type Adapter interface {
	Adapt(ctx *AdaptContext) *AdaptDecision
}

// Interp executes runtime plans.
type Interp struct {
	Mode     Mode
	FS       *hdfs.FS
	CC       conf.Cluster
	Res      conf.Resources
	Compiler *hop.Compiler
	// Est charges per-instruction simulated time (evictions enabled).
	Est   *cost.Estimator
	State *cost.VarState
	// Vars is the live-variable table.
	Vars map[string]*Value
	// Out receives print() output.
	Out io.Writer
	// SimTime is the accumulated simulated execution time in seconds.
	SimTime float64
	Stats   Stats
	// SimTableCols is the data-dependent column count produced by table()
	// in sim mode (the class count of the simulated label vector).
	SimTableCols int64
	// UnknownLoopIters bounds loops whose predicates are unknown in sim
	// mode.
	UnknownLoopIters int
	// SimLoopCap bounds every while loop in sim mode: data-dependent exit
	// conditions are unknowable on descriptors, so loops controlled purely
	// by convergence flags would otherwise never terminate.
	SimLoopCap int
	// Adapter, when set, is consulted for runtime resource adaptation.
	Adapter Adapter
	// Faults, when set, injects node failures (shrinking the cluster and
	// triggering re-optimization), per-task failures/stragglers in MR jobs,
	// and transient HDFS read errors.
	Faults *fault.Injector
	// Policy governs task-level failure handling of MR jobs under fault
	// injection; the zero value selects Hadoop-like defaults (4 attempts,
	// speculation on) via normalization.
	Policy mr.TaskPolicy
	// Trace, when non-nil, receives runtime- and cluster-layer spans: one
	// complete span per executed instruction (stamped with the simulated
	// clock), MR job phase spans, task-attempt fault events, and adaptation
	// spans. Run installs SimTime as the tracer's clock for its duration.
	Trace *obs.Tracer
	// MemHook, when set in value mode, observes every evaluated hop right
	// after its kernel returns: the hop (carrying the compile-time memory
	// estimates in effect for this execution), its distinct materialized
	// matrix inputs, and the produced matrix (nil for scalars). The
	// estimate-soundness auditor uses it to compare actual footprints
	// against the worst-case estimates.
	MemHook func(h *hop.Hop, inputs []*matrix.Matrix, out *matrix.Matrix)

	plan        *lop.Plan
	resChanged  bool
	encl        []*lop.Block
	parforDepth int
}

// New returns an interpreter for the given mode, file system, cluster and
// initial resource configuration.
func New(mode Mode, fs *hdfs.FS, cc conf.Cluster, res conf.Resources) *Interp {
	est := cost.NewEstimator(cc)
	est.EvictionWeight = 1.0
	return &Interp{
		Mode:             mode,
		FS:               fs,
		CC:               cc,
		Res:              res.Clone(),
		Est:              est,
		State:            cost.NewVarState(cc.OpBudget(res.CP)),
		Vars:             map[string]*Value{},
		Out:              io.Discard,
		SimTableCols:     2,
		UnknownLoopIters: 5,
		SimLoopCap:       10,
	}
}

// Run executes the plan to completion, accumulating simulated time.
func (ip *Interp) Run(plan *lop.Plan) error {
	ip.plan = plan
	if ip.Compiler == nil {
		ip.Compiler = hop.NewCompiler(ip.FS, plan.HopProgram.Params)
	}
	if ip.Trace.Enabled() {
		if ip.Compiler.Trace == nil {
			ip.Compiler.Trace = ip.Trace
		}
		// From here the trace timeline is the simulated clock; compile and
		// optimization events recorded earlier (logical ticks) stay anchored
		// before it.
		ip.Trace.SetClock(func() float64 { return ip.SimTime })
		defer ip.Trace.SetClock(nil)
		defer ip.flushMetrics(ip.Stats, stateCounters(ip.State))
	}
	if ip.Faults != nil && ip.Faults.Plan().HDFSReadErrorProb > 0 {
		// Compilation is done (the compiler reads metadata via Stat); from
		// here every payload read may fail transiently.
		ip.FS.SetReadFault(ip.Faults.HDFSReadFails)
		defer ip.FS.SetReadFault(nil)
	}
	sp := ip.Trace.Begin(obs.LayerRuntime, "rt.run", obs.A("cp", ip.Res.CP.String()))
	err := ip.execBlocks(plan.Blocks)
	if err != nil {
		sp.End(obs.A("error", err.Error()))
		return err
	}
	sp.End()
	return nil
}

// stateCounters snapshots the buffer-pool counters for delta accounting.
func stateCounters(s *cost.VarState) [2]int {
	return [2]int{s.Evictions, s.Restores}
}

// flushMetrics adds this run's execution counters to the metrics registry,
// as deltas against the given start-of-run snapshots so repeated Runs on
// one interpreter do not double-count.
func (ip *Interp) flushMetrics(start Stats, state0 [2]int) {
	m := ip.Trace.Metrics()
	if m == nil {
		return
	}
	m.Add("rt.instructions", int64(ip.Stats.Instructions-start.Instructions))
	m.Add("rt.mr_jobs", int64(ip.Stats.MRJobs-start.MRJobs))
	m.Add("rt.recompiles", int64(ip.Stats.Recompiles-start.Recompiles))
	m.Add("rt.migrations", int64(ip.Stats.Migrations-start.Migrations))
	m.Add("rt.node_failures", int64(ip.Stats.NodeFailures-start.NodeFailures))
	m.Add("rt.task_retries", int64(ip.Stats.TaskRetries-start.TaskRetries))
	m.Add("rt.stragglers", int64(ip.Stats.Stragglers-start.Stragglers))
	m.Add("rt.speculated", int64(ip.Stats.Speculated-start.Speculated))
	m.Add("rt.hdfs_retries", int64(ip.Stats.HDFSRetries-start.HDFSRetries))
	m.Add("bufferpool.evictions", int64(ip.State.Evictions-state0[0]))
	m.Add("bufferpool.restores", int64(ip.State.Restores-state0[1]))
	m.SetGauge("bufferpool.eviction_bytes", float64(ip.State.EvictionIO()))
	m.SetGauge("rt.sim_seconds", ip.SimTime)
	m.SetGauge("rt.recovery_seconds", ip.Stats.RecoverySeconds)
}

// readAttempts is the DFS read budget: with fault injection active, reads
// retry like the task policy retries tasks; otherwise a single attempt.
func (ip *Interp) readAttempts() int {
	if ip.Faults == nil {
		return 1
	}
	return ip.Policy.Normalized().MaxAttempts
}

func (ip *Interp) execBlocks(blocks []*lop.Block) error {
	for _, b := range blocks {
		if err := ip.execBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func (ip *Interp) execBlock(b *lop.Block) error {
	switch b.Kind {
	case dml.GenericBlock:
		return ip.execGeneric(b)
	case dml.IfBlockKind:
		pv, err := ip.evalPredicate(b.Pred, b.HopBlock.PredExpr)
		if err != nil {
			return err
		}
		// Unknown predicates (sim mode) skip the conditional body, which
		// keeps convergence-exit branches from firing early.
		if pv.Known && pv.Bool() {
			return ip.withEnclosing(b, func() error { return ip.execBlocks(b.Then) })
		}
		return ip.withEnclosing(b, func() error { return ip.execBlocks(b.Else) })
	case dml.WhileBlockKind:
		return ip.withEnclosing(b, func() error { return ip.execWhile(b) })
	case dml.ForBlockKind:
		return ip.withEnclosing(b, func() error { return ip.execFor(b) })
	}
	return fmt.Errorf("rt: unknown block kind %v", b.Kind)
}

func (ip *Interp) withEnclosing(b *lop.Block, fn func() error) error {
	ip.encl = append(ip.encl, b)
	err := fn()
	ip.encl = ip.encl[:len(ip.encl)-1]
	return err
}

func (ip *Interp) execWhile(b *lop.Block) error {
	unknownIters := 0
	for iter := 0; ; iter++ {
		if ip.Mode == ModeSim && ip.SimLoopCap > 0 && iter >= ip.SimLoopCap {
			// Convergence flags are data dependent and unknowable on
			// descriptors; bound the loop as the cost model bounds
			// unknown-iteration loops.
			return nil
		}
		pv, err := ip.evalPredicate(b.Pred, b.HopBlock.PredExpr)
		if err != nil {
			return err
		}
		if pv.Known {
			if !pv.Bool() {
				return nil
			}
		} else {
			unknownIters++
			if unknownIters > ip.UnknownLoopIters {
				return nil
			}
		}
		if err := ip.execBlocks(b.Body); err != nil {
			return err
		}
	}
}

func (ip *Interp) execFor(b *lop.Block) error {
	fromV, err := ip.evalPredicate(b.From, b.HopBlock.FromExpr)
	if err != nil {
		return err
	}
	toV, err := ip.evalPredicate(b.To, b.HopBlock.ToExpr)
	if err != nil {
		return err
	}
	from, to := int64(1), int64(ip.UnknownLoopIters)
	if fromV.Known && toV.Known {
		from, to = int64(fromV.Scalar), int64(toV.Scalar)
	}
	start := ip.SimTime
	if b.Parallel {
		ip.parforDepth++
	}
	for i := from; i <= to; i++ {
		ip.Vars[b.Var] = ScalarValue(float64(i))
		if err := ip.execBlocks(b.Body); err != nil {
			if b.Parallel {
				ip.parforDepth--
			}
			return err
		}
	}
	if b.Parallel {
		ip.parforDepth--
		// parfor iterations execute on concurrent workers: values are
		// computed sequentially (independence is the script's contract),
		// but wall-clock time divides by the worker count.
		iters := to - from + 1
		dop := int64(ip.Res.Cores())
		if dop > iters {
			dop = iters
		}
		if dop > 1 {
			elapsed := ip.SimTime - start
			ip.SimTime = start + elapsed/float64(dop)
		}
	}
	return nil
}

// evalPredicate evaluates a scalar header DAG against the live variables.
// When the hop is stale (recompilation changed metadata), the expression is
// rebuilt from source; predicates are tiny so this is cheap.
func (ip *Interp) evalPredicate(pred *hop.Hop, expr dml.Expr) (*Value, error) {
	if pred == nil {
		return ScalarValue(1), nil
	}
	env := newEnv(ip)
	return env.eval(pred)
}

// snapshotMeta converts the live-variable table into compiler metadata.
func (ip *Interp) snapshotMeta() hop.SymTab {
	meta := hop.SymTab{}
	for name, v := range ip.Vars {
		meta[name] = v.meta()
	}
	return meta
}

// execGeneric runs one generic block: node-failure delivery, dynamic
// recompilation if needed, adaptation hook, time charging, and
// value/metadata evaluation.
func (ip *Interp) execGeneric(b *lop.Block) error {
	if err := ip.processNodeFailures(b); err != nil {
		return err
	}
	exec := b
	if b.Recompile || ip.resChanged {
		hb, err := ip.Compiler.RecompileGeneric(b.HopBlock, ip.snapshotMeta())
		if err != nil {
			return fmt.Errorf("rt: dynamic recompilation failed: %w", err)
		}
		exec = lop.SelectBlock(hb, ip.CC, ip.Res)
		ip.Stats.Recompiles++
		// Runtime resource adaptation triggers only when the recompiled
		// block still spawns MR jobs (paper §4.2).
		if b.Recompile && ip.Adapter != nil && lop.NumMRJobs([]*lop.Block{exec}) > 0 {
			ip.adapt(b, TriggerRecompile)
			// Re-select under the (possibly) new resources.
			exec = lop.SelectBlock(hb, ip.CC, ip.Res)
		}
	}
	return ip.runInstrs(exec)
}

// processNodeFailures delivers injected node failures that are due at the
// current simulated time: each one shrinks the live cluster by a node and
// hands the adapter a container-loss trigger so the plan is re-optimized
// for the reduced capacity. Losing the last node aborts with
// ErrClusterLost.
func (ip *Interp) processNodeFailures(b *lop.Block) error {
	if ip.Faults == nil {
		return nil
	}
	for _, nf := range ip.Faults.NodeFailuresThrough(ip.SimTime) {
		if ip.CC.Nodes <= 1 {
			return fmt.Errorf("rt: node %d failed at t=%.1fs: %w", nf.Node, nf.At, ErrClusterLost)
		}
		ip.CC.Nodes--
		ip.Est.CC = ip.CC
		ip.Stats.NodeFailures++
		ip.Trace.Instant(obs.LayerCluster, "node.fail",
			obs.A("node", nf.Node), obs.A("at", nf.At), obs.A("nodes_left", ip.CC.Nodes))
		// Force re-selection of subsequent blocks against the smaller
		// cluster even if the adapter keeps the resource configuration.
		ip.resChanged = true
		if ip.Adapter != nil {
			ip.adapt(b, TriggerContainerLoss)
		}
	}
	return nil
}

func (ip *Interp) adapt(b *lop.Block, trig Trigger) {
	ctx := &AdaptContext{
		Plan:       ip.plan,
		Block:      b,
		Enclosing:  append([]*lop.Block{}, ip.encl...),
		Res:        ip.Res.Clone(),
		Meta:       ip.snapshotMeta(),
		DirtyBytes: ip.State.DirtyBytes(),
		Compiler:   ip.Compiler,
		Trigger:    trig,
		CC:         ip.CC,
	}
	dec := ip.Adapter.Adapt(ctx)
	if dec == nil {
		return
	}
	ip.SimTime += dec.ExtraTime
	if dec.Migrate {
		ip.Stats.Migrations++
		// Materialize the runtime state on the DFS (paper §4.1): all
		// dirty variables plus the new resource configuration; the new
		// container restores lazily through its buffer pool.
		ip.exportState(dec.NewRes)
		ip.State.FlushAll()
		ip.State.SetBudget(ip.CC.OpBudget(dec.NewRes.CP))
	}
	ip.Res = dec.NewRes.Clone()
	ip.resChanged = true
}

// cpCores returns the per-operation CP parallelism: inside parfor bodies
// each worker is single threaded.
func (ip *Interp) cpCores() int {
	if ip.parforDepth > 0 {
		return 1
	}
	return ip.Res.Cores()
}

// StatePrefix is the DFS directory receiving migrated AM state.
const StatePrefix = "/system/am_state/"

// exportState writes the live matrix variables and the new configuration
// marker to the DFS, making the migration hand-off observable.
func (ip *Interp) exportState(newRes conf.Resources) {
	for name, v := range ip.Vars {
		if !v.Matrix {
			continue
		}
		path := StatePrefix + name
		if ip.Mode == ModeValue && v.Mat != nil {
			ip.FS.PutMatrix(path, v.Mat)
		} else {
			ip.FS.PutDescriptor(path, v.Rows, v.Cols, v.NNZ, hdfs.BinaryBlock)
		}
	}
	ip.FS.PutDescriptor(StatePrefix+"_config_"+newRes.String(), 1, 1, 1, hdfs.BinaryBlock)
}

// runInstrs evaluates the block DAG, back-patches runtime sizes into hops
// whose dimensions were data dependent (e.g. table outputs), and then
// charges instruction times from the resolved sizes.
func (ip *Interp) runInstrs(b *lop.Block) error {
	if b.HopBlock == nil {
		return nil
	}
	// Value-mode kernels execute on the shared matrix worker pool with the
	// block's CP degree of parallelism (1 inside parfor bodies, matching
	// the cost model's single-threaded-worker contract). Kernel results
	// are byte-identical for any setting; only wall-clock time changes.
	matrix.SetParallelism(ip.cpCores())
	// Evaluate roots first: transient writes bind variables, persistent
	// writes hit the DFS, prints stream to Out, stop aborts.
	env := newEnv(ip)
	for _, root := range b.HopBlock.Roots {
		if _, err := env.eval(root); err != nil {
			return err
		}
	}
	// Resolve remaining unknown dimensions from the computed values so the
	// performance model charges actual sizes, not worst-case infinities.
	hop.WalkDAG(b.HopBlock.Roots, func(h *hop.Hop) {
		if h.DataType != hop.Matrix || h.DimsKnown() {
			return
		}
		if v, ok := env.cache[h.ID]; ok && v != nil && v.Matrix {
			hop.UpdateFromRuntime(h, v.Rows, v.Cols, v.NNZ)
		}
	})

	inJob := map[int64]*lop.MRJob{}
	for _, in := range b.Instrs {
		if in.Kind == lop.InstrMR {
			for _, op := range in.Job.Ops {
				inJob[op.Hop.ID] = in.Job
			}
		}
	}
	uses := cost.BlockUses(b)
	evict0 := ip.State.EvictionIO()
	traced := ip.Trace.SpansEnabled()
	m := ip.Trace.Metrics()
	for _, in := range b.Instrs {
		ip.Stats.Instructions++
		start := ip.SimTime
		if in.Kind == lop.InstrCP {
			dt := ip.Est.CPInstrTime(in.Hop, ip.State, inJob, ip.cpCores())
			ip.SimTime += dt
			if traced {
				ip.Trace.Complete(obs.LayerRuntime, in.Label(), start, dt)
			}
			m.Observe("rt.cp_instr_seconds", dt)
		} else {
			ip.Stats.MRJobs++
			if ip.Faults != nil && ip.Faults.TaskFaultsEnabled() {
				spec, taskHeap := ip.Est.MRJobSpec(in.Job, b, ip.Res, ip.State, uses, inJob)
				bd, rep, err := mr.EstimateTimeUnderFaultsTraced(ip.Est.PM, ip.Est.EffectiveCluster(),
					spec, taskHeap, ip.Res.CP, ip.Faults, ip.Policy, ip.Trace, start)
				if err != nil {
					return fmt.Errorf("rt: %w", err)
				}
				ip.SimTime += bd.Total()
				ip.Stats.TaskRetries += rep.Retries
				ip.Stats.Stragglers += rep.Stragglers
				ip.Stats.Speculated += rep.Speculated
				ip.Stats.RecoverySeconds += bd.Recovery
				if traced {
					ip.Trace.Complete(obs.LayerRuntime, in.Label(), start, bd.Total(),
						obs.A("maps", spec.NumMaps), obs.A("reducers", spec.NumReducers),
						obs.A("retries", rep.Retries), obs.A("stragglers", rep.Stragglers),
						obs.A("speculated", rep.Speculated))
					ip.traceJobPhases(start, bd)
				}
				m.Observe("rt.mr_job_seconds", bd.Total())
			} else if traced || m != nil {
				spec, taskHeap := ip.Est.MRJobSpec(in.Job, b, ip.Res, ip.State, uses, inJob)
				bd := mr.EstimateTime(ip.Est.PM, ip.Est.EffectiveCluster(), spec, taskHeap, ip.Res.CP)
				ip.SimTime += bd.Total()
				if traced {
					ip.Trace.Complete(obs.LayerRuntime, in.Label(), start, bd.Total(),
						obs.A("maps", spec.NumMaps), obs.A("reducers", spec.NumReducers))
					ip.traceJobPhases(start, bd)
				}
				m.Observe("rt.mr_job_seconds", bd.Total())
			} else {
				ip.SimTime += ip.Est.MRJobTime(in.Job, b, ip.Res, ip.State, uses, inJob)
			}
		}
	}
	ip.SimTime += ip.Est.PM.WriteTime(ip.State.EvictionIO()-evict0, 1) * ip.Est.PM.EvictionPenalty
	return nil
}

// traceJobPhases emits the MR phase breakdown as back-to-back cluster-layer
// spans under the job's runtime span, in the order of the analytic model.
func (ip *Interp) traceJobPhases(start float64, bd mr.TimeBreakdown) {
	t := start
	phase := func(name string, d float64) {
		if d <= 0 {
			return
		}
		ip.Trace.Complete(obs.LayerCluster, name, t, d)
		t += d
	}
	phase("job.latency", bd.JobLatency)
	phase("task.launch", bd.TaskLatency)
	phase("export", bd.Export)
	phase("map.read", bd.MapRead)
	phase("broadcast", bd.Broadcast)
	phase("map.compute", bd.MapCompute)
	phase("map.write", bd.MapWrite)
	phase("shuffle", bd.Shuffle)
	phase("reduce.compute", bd.ReduceCompute)
	phase("reduce.write", bd.ReduceWrite)
	phase("recovery", bd.Recovery)
}
