package rt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/hdfs"
	"elasticml/internal/matrix"
	"elasticml/internal/scripts"
)

// TestGLMGaussianMatchesDirectSolve: a Gaussian GLM with identity link is
// ordinary least squares, so its IRLS/CG solution must match the
// direct-solve result on the same data — a cross-algorithm consistency
// check through the full compile+execute pipeline.
func TestGLMGaussianMatchesDirectSolve(t *testing.T) {
	beta := []float64{1.5, -0.5, 2, 0.25}
	fs, want := regressionFS(t, 250, 4, beta)

	glm := scripts.GLM()
	glm.Params["vpow"] = float64(0) // gaussian
	glm.Params["link"] = float64(2) // identity
	glm.Params["reg"] = 1e-10
	glm.Params["moi"] = float64(10)
	glm.Params["mii"] = float64(25)
	runValue(t, glm, fs)
	got, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatalf("no GLM model: %v", err)
	}
	if !matrix.Equal(got.Data, want, 1e-4) {
		t.Errorf("GLM gaussian beta = %v, want %v", got.Data, want)
	}

	// Direct solve on the same inputs agrees.
	ds := scripts.LinregDS()
	ds.Params["reg"] = 1e-10
	ds.Params["B"] = "/out/beta_ds"
	runValue(t, ds, fs)
	dsOut, err := fs.Stat("/out/beta_ds")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got.Data, dsOut.Data, 1e-4) {
		t.Errorf("GLM and DS disagree: %v vs %v", got.Data, dsOut.Data)
	}
}

// TestCGMatchesDSAcrossConfigurations: the same program computes the same
// model regardless of the resource configuration (plans change, semantics
// do not).
func TestCGMatchesDSAcrossConfigurations(t *testing.T) {
	beta := []float64{2, -1, 0.5}
	for i, res := range []conf.Resources{
		conf.NewResources(512*conf.MB, 512*conf.MB, 64),
		conf.NewResources(8*conf.GB, 2*conf.GB, 64),
	} {
		fs, want := regressionFS(t, 200, 3, beta)
		spec := scripts.LinregCG()
		spec.Params["maxi"] = float64(25)
		spec.Params["reg"] = 1e-12
		plan, comp := compilePlan(t, spec, fs, res)
		ip := New(ModeValue, fs, conf.DefaultCluster(), res)
		ip.Compiler = comp
		if err := ip.Run(plan); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		out, err := fs.Stat("/out/beta")
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(out.Data, want, 1e-4) {
			t.Errorf("config %d: beta = %v, want %v", i, out.Data, want)
		}
	}
}

// TestIntercaptPathValueMode: icpt=1 exercises the append branch and still
// recovers the intercept model exactly.
func TestInterceptPathValueMode(t *testing.T) {
	fs := hdfs.New()
	n, m := 300, 3
	x := matrix.Random(n, m, 1.0, -1, 1, 21)
	w := matrix.NewDenseData(m, 1, []float64{1, -2, 0.5})
	icpt := 3.0
	y := matrix.EWScalarRight(matrix.Add, matrix.Mul(x, w), icpt)
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", y)
	spec := scripts.LinregDS()
	spec.Params["icpt"] = float64(1)
	spec.Params["reg"] = float64(0)
	runValue(t, spec, fs)
	out, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != int64(m+1) {
		t.Fatalf("intercept model should have %d rows, got %d", m+1, out.Rows)
	}
	for j := 0; j < m; j++ {
		if d := out.Data.At(j, 0) - w.At(j, 0); d > 1e-8 || d < -1e-8 {
			t.Errorf("beta[%d] = %v, want %v", j, out.Data.At(j, 0), w.At(j, 0))
		}
	}
	if d := out.Data.At(m, 0) - icpt; d > 1e-8 || d < -1e-8 {
		t.Errorf("intercept = %v, want %v", out.Data.At(m, 0), icpt)
	}
}
