package rt

import (
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/scripts"
)

// TestInputDeletedBetweenCompileAndRun: the file system losing an input
// after compilation surfaces as a runtime error, not a panic.
func TestInputDeletedBetweenCompileAndRun(t *testing.T) {
	fs := hdfs.New()
	fs.PutMatrix("/data/X", matrix.Random(20, 4, 1, 0, 1, 1))
	fs.PutMatrix("/data/y", matrix.Random(20, 1, 1, 0, 1, 2))
	spec := scripts.LinregDS()
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/data/X"); err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	err = ip.Run(lop.Select(hp, conf.DefaultCluster(), res))
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("expected missing-file error, got %v", err)
	}
}

// TestSingularSystemSurfacesError: solve() on a rank-deficient system
// fails cleanly in value mode.
func TestSingularSystemSurfacesError(t *testing.T) {
	fs := hdfs.New()
	// X with a duplicated column makes t(X)X singular.
	x := matrix.NewDense(20, 2)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, float64(i)) // duplicate
	}
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", matrix.Random(20, 1, 1, 0, 1, 3))
	spec := scripts.LinregDS()
	spec.Params["reg"] = float64(0) // no ridge rescue
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	err = ip.Run(lop.Select(hp, conf.DefaultCluster(), res))
	if err == nil || !strings.Contains(err.Error(), "singular") {
		t.Errorf("expected singular-system error, got %v", err)
	}
}

// TestAdapterFailureIsNonFatal: an adapter returning nil (e.g. its
// re-optimization failed) leaves execution running under the current
// configuration.
func TestAdapterFailureIsNonFatal(t *testing.T) {
	fs := hdfs.New()
	n, m := int64(1_000_000), int64(100)
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	spec := scripts.MLogreg()
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf)
	ip := New(ModeSim, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	ip.SimTableCols = 200
	ip.Adapter = adapterFunc(func(*AdaptContext) *AdaptDecision { return nil })
	if err := ip.Run(lop.Select(hp, conf.DefaultCluster(), res)); err != nil {
		t.Fatalf("nil adapter decision must not abort: %v", err)
	}
	if ip.Stats.Migrations != 0 {
		t.Error("nil decisions must not migrate")
	}
	if ip.Res.CP != 512*conf.MB {
		t.Error("nil decisions must not change resources")
	}
}

// TestRecompileWithCorruptMetadata: dynamic recompilation against
// inconsistent variable metadata fails with an error, not a panic.
func TestRecompileWithCorruptMetadata(t *testing.T) {
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 100, 10, 1000, hdfs.BinaryBlock)
	src := `
X = read($X);
y = read($X);
Y = table(seq(1, nrow(X), 1), y);
G = t(X) %*% Y;
write(G, "/out/G");
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := comp.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: X with mismatched dims for the matmul.
	meta := hop.SymTab{
		"X": {IsMatrix: true, Rows: 7, Cols: 3, NNZ: 21},
		"y": {IsMatrix: true, Rows: 100, Cols: 1, NNZ: 100},
		"Y": {IsMatrix: true, Rows: 100, Cols: 5, NNZ: 100},
	}
	var target *hop.Block
	hop.WalkBlocks(hp.Blocks, func(b *hop.Block) {
		if target == nil && b.Kind == dml.GenericBlock && len(b.Stmts) > 0 {
			if as, ok := b.Stmts[0].(*dml.Assign); ok && as.Target == "G" {
				target = b
			}
		}
	})
	if target == nil {
		t.Fatal("no G block")
	}
	if _, err := comp.RecompileGeneric(target, meta); err == nil {
		t.Error("expected dimension-mismatch error from recompilation")
	}
}
