package rt

import (
	"bytes"
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
)

// runSrc compiles and value-executes a small script, returning print output.
func runSrc(t *testing.T, src string, files map[string]*matrix.Matrix) (*hdfs.FS, string) {
	t.Helper()
	fs := hdfs.New()
	params := map[string]interface{}{}
	for name, m := range files {
		path := "/data/" + name
		fs.PutMatrix(path, m)
		params[name] = path
	}
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, params)
	hp, err := comp.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	var buf bytes.Buffer
	ip.Out = &buf
	if err := ip.Run(lop.Select(hp, conf.DefaultCluster(), res)); err != nil {
		t.Fatal(err)
	}
	return fs, buf.String()
}

func TestEvalTransposeDiagAndUnaries(t *testing.T) {
	a := matrix.NewDenseData(2, 3, []float64{1, -4, 9, 16, 25, 0})
	src := `
A = read($A);
B = t(A);
d = diag(rowSums(A));
back = diag(d);
u = floor(2.7) + ceil(2.2) + round(2.5);
print("TB " + sum(B) + " D " + trace(d) + " BACK " + sum(back) + " U " + u);
`
	_, out := runSrc(t, src, map[string]*matrix.Matrix{"A": a})
	// sum(B)=47, trace(diag(rowSums))=6+41=47, sum(back)=47, u=2+3+3=8.
	if !strings.Contains(out, "TB 47 D 47 BACK 47 U 8") {
		t.Errorf("output = %q", out)
	}
}

func TestEvalMeanTraceRowMaxs(t *testing.T) {
	a := matrix.NewDenseData(2, 2, []float64{1, 5, 3, 2})
	src := `
A = read($A);
print("MEAN " + mean(A) + " TRACE " + trace(A) + " RM " + sum(rowMaxs(A)) + " CS " + sum(colSums(A)));
`
	_, out := runSrc(t, src, map[string]*matrix.Matrix{"A": a})
	if !strings.Contains(out, "MEAN 2.75 TRACE 3 RM 8 CS 11") {
		t.Errorf("output = %q", out)
	}
}

func TestEvalRBindAndMinMax(t *testing.T) {
	a := matrix.NewDenseData(1, 2, []float64{1, 2})
	src := `
A = read($A);
B = rbind(A, A * 10);
print("R " + nrow(B) + " MIN " + min(B) + " MAX " + max(B) + " MM " + min(3, max(B)));
`
	_, out := runSrc(t, src, map[string]*matrix.Matrix{"A": a})
	if !strings.Contains(out, "R 2 MIN 1 MAX 20 MM 3") {
		t.Errorf("output = %q", out)
	}
}

func TestEvalTernaryAndSeq(t *testing.T) {
	src := `
a = seq(1, 4, 1);
b = seq(4, 1, 0 - 1);
s = sum(a * b);
s3 = sum(a * b * a);
print("S " + s + " S3 " + s3);
`
	// s = 4+6+6+4 = 20; s3 = 1*4*1 + 2*3*2 + 3*2*3 + 4*1*4 = 4+12+18+16=50.
	_, out := runSrc(t, src, map[string]*matrix.Matrix{})
	if !strings.Contains(out, "S 20 S3 50") {
		t.Errorf("output = %q", out)
	}
}

func TestEvalStringFormatting(t *testing.T) {
	src := `
x = 1 / 3;
m = matrix(0, rows=2, cols=2);
print("X " + x);
print(m);
`
	_, out := runSrc(t, src, map[string]*matrix.Matrix{})
	if !strings.Contains(out, "X 0.3333333333333333") {
		t.Errorf("float formatting: %q", out)
	}
	if !strings.Contains(out, "matrix(2x2)") {
		t.Errorf("matrix formatting: %q", out)
	}
}

func TestSimModeUnknownScalarFormatting(t *testing.T) {
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", 1000, 10, 10000, hdfs.BinaryBlock)
	src := `
X = read($X);
s = sum(X);
print("S " + s);
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := comp.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	ip := New(ModeSim, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	var buf bytes.Buffer
	ip.Out = &buf
	if err := ip.Run(lop.Select(hp, conf.DefaultCluster(), res)); err != nil {
		t.Fatal(err)
	}
	// Data-dependent scalars print as "?" in sim mode.
	if !strings.Contains(buf.String(), "S ?") {
		t.Errorf("sim print = %q", buf.String())
	}
}
