package rt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
	"elasticml/internal/scripts"
)

// compilePlan parses and compiles a spec against the given FS.
func compilePlan(t *testing.T, spec scripts.Spec, fs *hdfs.FS, res conf.Resources) (*lop.Plan, *hop.Compiler) {
	t.Helper()
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := hop.NewCompiler(fs, spec.Params)
	hp, err := c.Compile(prog, spec.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return lop.Select(hp, conf.DefaultCluster(), res), c
}

func runValue(t *testing.T, spec scripts.Spec, fs *hdfs.FS) *Interp {
	t.Helper()
	res := conf.NewResources(2*conf.GB, 512*conf.MB, 64)
	plan, comp := compilePlan(t, spec, fs, res)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	if err := ip.Run(plan); err != nil {
		t.Fatalf("%s run: %v", spec.Name, err)
	}
	return ip
}

func regressionFS(t *testing.T, n, m int, beta []float64) (*hdfs.FS, *matrix.Matrix) {
	t.Helper()
	fs := hdfs.New()
	x := matrix.Random(n, m, 1.0, -1, 1, 42)
	bm := matrix.NewDenseData(m, 1, beta)
	y := matrix.Mul(x, bm)
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", y)
	return fs, bm
}

func TestLinregDSRecoversBeta(t *testing.T) {
	beta := []float64{1, -2, 3, 0.5, -1, 2, 0, 1.5, -0.5, 1}
	fs, want := regressionFS(t, 300, 10, beta)
	spec := scripts.LinregDS()
	spec.Params["reg"] = 1e-12 // effectively unregularized for exact recovery
	ip := runValue(t, spec, fs)
	out, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatalf("no output written: %v", err)
	}
	if !matrix.Equal(out.Data, want, 1e-6) {
		t.Errorf("beta = %v, want %v", out.Data, want)
	}
	if ip.Stats.MRJobs != 0 {
		t.Errorf("small data spawned %d MR jobs", ip.Stats.MRJobs)
	}
	if ip.SimTime <= 0 {
		t.Error("no simulated time charged")
	}
}

func TestLinregCGConverges(t *testing.T) {
	beta := []float64{2, -1, 0.5, 1, -2}
	fs, want := regressionFS(t, 400, 5, beta)
	spec := scripts.LinregCG()
	spec.Params["maxi"] = float64(20)
	spec.Params["reg"] = 1e-12
	runValue(t, spec, fs)
	out, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatalf("no output: %v", err)
	}
	if !matrix.Equal(out.Data, want, 1e-4) {
		t.Errorf("CG beta = %v, want %v", out.Data, want)
	}
}

func TestL2SVMSeparatesData(t *testing.T) {
	fs := hdfs.New()
	n, m := 200, 4
	x := matrix.Random(n, m, 1.0, -1, 1, 7)
	w := matrix.NewDenseData(m, 1, []float64{1, -1, 2, 0.5})
	score := matrix.Mul(x, w)
	y := matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		if score.At(i, 0) > 0 {
			y.Set(i, 0, 1)
		} else {
			y.Set(i, 0, -1)
		}
	}
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", y)
	spec := scripts.L2SVM()
	spec.Params["maxi"] = float64(20)
	var buf bytes.Buffer
	res := conf.NewResources(2*conf.GB, 512*conf.MB, 64)
	plan, comp := compilePlan(t, spec, fs, res)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	ip.Out = &buf
	if err := ip.Run(plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	out, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatalf("no model: %v", err)
	}
	// Learned model must classify most training points correctly.
	pred := matrix.Mul(x, out.Data)
	correct := 0
	for i := 0; i < n; i++ {
		if pred.At(i, 0)*y.At(i, 0) > 0 {
			correct++
		}
	}
	if correct < n*9/10 {
		t.Errorf("L2SVM training accuracy %d/%d too low", correct, n)
	}
	if !strings.Contains(buf.String(), "OBJ=") {
		t.Errorf("expected objective prints, got %q", buf.String())
	}
}

func TestMLogregRunsWithRecompilation(t *testing.T) {
	fs := hdfs.New()
	n, m, k := 300, 6, 3
	x := matrix.Random(n, m, 1.0, -1, 1, 9)
	y := matrix.RandomLabels(n, k, 10)
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y_labels", y)
	spec := scripts.MLogreg()
	ip := runValue(t, spec, fs)
	if ip.Stats.Recompiles == 0 {
		t.Error("MLogreg must trigger dynamic recompilation (unknown k)")
	}
	out, err := fs.Stat("/out/beta")
	if err != nil {
		t.Fatalf("no model: %v", err)
	}
	if out.Rows != int64(m) || out.Cols != int64(k-1) {
		t.Errorf("B dims = %dx%d, want %dx%d", out.Rows, out.Cols, m, k-1)
	}
}

func TestGLMPoissonRuns(t *testing.T) {
	fs := hdfs.New()
	n, m := 300, 5
	x := matrix.Random(n, m, 1.0, -0.5, 0.5, 11)
	w := matrix.NewDenseData(m, 1, []float64{0.5, -0.3, 0.2, 0.1, -0.4})
	eta := matrix.Mul(x, w)
	y := matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		y.Set(i, 0, math.Round(math.Exp(eta.At(i, 0)))+1)
	}
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", y)
	ip := runValue(t, scripts.GLM(), fs)
	if !fs.Exists("/out/beta") {
		t.Fatal("GLM wrote no model")
	}
	if ip.SimTime <= 0 {
		t.Error("no time charged")
	}
}

func TestSimModeAllScripts(t *testing.T) {
	for _, spec := range scripts.All() {
		n, m := int64(1_000_000), int64(1000) // 8GB dense
		fs := hdfs.New()
		fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
		fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
		fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
		res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
		plan, comp := compilePlan(t, spec, fs, res)
		ip := New(ModeSim, fs, conf.DefaultCluster(), res)
		ip.Compiler = comp
		ip.SimTableCols = 5
		if err := ip.Run(plan); err != nil {
			t.Errorf("%s sim run: %v", spec.Name, err)
			continue
		}
		if ip.SimTime <= 0 {
			t.Errorf("%s: no simulated time", spec.Name)
		}
		if ip.Stats.MRJobs == 0 {
			t.Errorf("%s: expected MR jobs with 512MB CP on 8GB data", spec.Name)
		}
		t.Logf("%s sim: time=%.1fs jobs=%d recompiles=%d",
			spec.Name, ip.SimTime, ip.Stats.MRJobs, ip.Stats.Recompiles)
	}
}

func TestSimModeLargeCPFasterForCG(t *testing.T) {
	run := func(cp conf.Bytes) float64 {
		n, m := int64(1_000_000), int64(1000)
		fs := hdfs.New()
		fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
		fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
		res := conf.NewResources(cp, 2*conf.GB, 64)
		plan, comp := compilePlan(t, scripts.LinregCG(), fs, res)
		ip := New(ModeSim, fs, conf.DefaultCluster(), res)
		ip.Compiler = comp
		if err := ip.Run(plan); err != nil {
			t.Fatalf("sim run: %v", err)
		}
		return ip.SimTime
	}
	small := run(512 * conf.MB)
	large := run(20 * conf.GB)
	if large >= small {
		t.Errorf("CG sim: large CP (%.1fs) should beat small CP (%.1fs)", large, small)
	}
}

func TestAdapterInvoked(t *testing.T) {
	// MLogreg in sim mode with tiny CP: recompilation yields MR jobs and
	// must consult the adapter.
	n, m := int64(1_000_000), int64(100)
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	plan, comp := compilePlan(t, scripts.MLogreg(), fs, res)
	ip := New(ModeSim, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	ip.SimTableCols = 200
	calls := 0
	ip.Adapter = adapterFunc(func(ctx *AdaptContext) *AdaptDecision {
		calls++
		if len(ctx.Meta) == 0 {
			t.Error("adapter got empty metadata")
		}
		// Migrate to a larger CP.
		return &AdaptDecision{NewRes: conf.NewResources(24*conf.GB, 2*conf.GB, 64),
			Migrate: true, ExtraTime: 3}
	})
	if err := ip.Run(plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	if calls == 0 {
		t.Fatal("adapter never consulted")
	}
	if ip.Stats.Migrations == 0 {
		t.Error("migration not recorded")
	}
	if ip.Res.CP != 24*conf.GB {
		t.Errorf("resources not updated: %v", ip.Res)
	}
}

type adapterFunc func(*AdaptContext) *AdaptDecision

func (f adapterFunc) Adapt(ctx *AdaptContext) *AdaptDecision { return f(ctx) }

func TestStopAborts(t *testing.T) {
	fs := hdfs.New()
	fs.PutMatrix("/data/X", matrix.Random(10, 2, 1, 0, 1, 1))
	src := `
X = read($X);
s = sum(X);
if (s > -1000000) {
  stop("aborted on purpose");
}
print(s);
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	plan := lop.Select(hp, conf.DefaultCluster(), res)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = c
	err = ip.Run(plan)
	if err == nil || !strings.Contains(err.Error(), "aborted on purpose") {
		t.Errorf("expected stop error, got %v", err)
	}
}

func TestControlFlowValueMode(t *testing.T) {
	fs := hdfs.New()
	fs.PutMatrix("/data/X", matrix.Filled(4, 4, 1))
	src := `
X = read($X);
total = 0;
for (i in 1:3) {
  total = total + sum(X) * i;
}
j = 0;
while (j < 4) {
  j = j + 2;
}
if (total > 50) {
  result = total + j;
} else {
  result = 0 - 1;
}
print("RESULT " + result);
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	plan := lop.Select(hp, conf.DefaultCluster(), res)
	var buf bytes.Buffer
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = c
	ip.Out = &buf
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	// total = 16*(1+2+3) = 96; j = 4; result = 100.
	if !strings.Contains(buf.String(), "RESULT 100") {
		t.Errorf("output = %q, want RESULT 100", buf.String())
	}
}

func TestIndexingAndLeftIndexValueMode(t *testing.T) {
	fs := hdfs.New()
	x := matrix.NewDenseData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	fs.PutMatrix("/data/X", x)
	src := `
X = read($X);
A = X[1:2, 2:3];
B = X;
B[1, 1] = 100;
s = sum(A);
t = B[1, 1];
print("S " + s + " T " + as.scalar(t));
`
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := c.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	plan := lop.Select(hp, conf.DefaultCluster(), res)
	var buf bytes.Buffer
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = c
	ip.Out = &buf
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	// A = [[2,3],[5,6]] sum=16; B[1,1]=100.
	if !strings.Contains(buf.String(), "S 16 T 100") {
		t.Errorf("output = %q, want S 16 T 100", buf.String())
	}
}
