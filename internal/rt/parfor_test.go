package rt

import (
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/matrix"
)

const parforSrc = `# per-column statistics with independent iterations
X = read($X);
m = ncol(X);
stats = matrix(0, rows=m, cols=1);
parfor (j in 1:8) {
  col = X[, j];
  s = sum(col ^ 2);
  stats[j, 1] = s;
}
write(stats, "/out/stats");
`

func parforSetup(t *testing.T, mode Mode, cores int) (*Interp, *lop.Plan, *hdfs.FS) {
	t.Helper()
	fs := hdfs.New()
	if mode == ModeValue {
		fs.PutMatrix("/data/X", matrix.Random(500, 8, 1.0, -1, 1, 5))
	} else {
		fs.PutDescriptor("/data/X", 1_000_000, 8, 8_000_000, hdfs.BinaryBlock)
	}
	prog, err := dml.Parse(parforSrc)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := comp.Compile(prog, parforSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.NewResources(2*conf.GB, 512*conf.MB, hp.NumLeaf)
	res.CPCores = cores
	plan := lop.Select(hp, conf.DefaultCluster(), res)
	ip := New(mode, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	return ip, plan, fs
}

// TestParforValueSemantics: parfor computes the same values as a
// sequential for.
func TestParforValueSemantics(t *testing.T) {
	ip, plan, fs := parforSetup(t, ModeValue, 4)
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	out, err := fs.Stat("/out/stats")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct computation.
	x, _ := fs.Stat("/data/X")
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < x.Data.Rows(); i++ {
			v := x.Data.At(i, j)
			want += v * v
		}
		got := out.Data.At(j, 0)
		if d := got - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("stats[%d] = %v, want %v", j, got, want)
		}
	}
}

// TestParforWallTimeDividesByWorkers: with k cores the parfor loop's
// simulated time shrinks close to 1/k.
func TestParforWallTimeDividesByWorkers(t *testing.T) {
	run := func(cores int) float64 {
		ip, plan, _ := parforSetup(t, ModeSim, cores)
		if err := ip.Run(plan); err != nil {
			t.Fatal(err)
		}
		return ip.SimTime
	}
	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Errorf("4 workers (%.3fs) should beat 1 worker (%.3fs)", t4, t1)
	}
	if t4 > t1/2 {
		t.Errorf("parfor speedup too small: %.3f vs %.3f", t4, t1)
	}
}

// TestParforMatchesCostModel: the cost model's parfor scaling agrees with
// the simulator within a small factor.
func TestParforMatchesCostModel(t *testing.T) {
	ip, plan, _ := parforSetup(t, ModeSim, 4)
	est := cost.NewEstimator(conf.DefaultCluster())
	modeled := est.ProgramCost(plan)
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	ratio := modeled / ip.SimTime
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("model %.3fs vs sim %.3fs: ratio %.2f out of band", modeled, ip.SimTime, ratio)
	}
}

// TestParforBudgetDivision: inside a parfor body the per-worker CP budget
// shrinks, pushing borderline operations to MR.
func TestParforBudgetDivision(t *testing.T) {
	src := `
X = read($X);
acc = matrix(0, rows=4, cols=1);
parfor (j in 1:4) {
  v = rowSums(X ^ 2);
  acc[j, 1] = sum(v);
}
write(acc, "/out/acc");
`
	fs := hdfs.New()
	// 2GB X: X^2 (4GB operation) fits the 5.6GB solo budget but not the
	// per-worker share under 8 concurrent parfor workers.
	fs.PutDescriptor("/data/X", 250_000, 1000, 250_000_000, hdfs.BinaryBlock)
	prog, err := dml.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, map[string]interface{}{"X": "/data/X"})
	hp, err := comp.Compile(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	cc := conf.DefaultCluster()
	res := conf.NewResources(8*conf.GB, 2*conf.GB, hp.NumLeaf)
	jobs1 := lop.NumMRJobs(lop.Select(hp, cc, res).Blocks)
	res8 := res.Clone()
	res8.CPCores = 8
	jobs8 := lop.NumMRJobs(lop.Select(hp, cc, res8).Blocks)
	if jobs8 <= jobs1 {
		t.Errorf("8 parfor workers should push X ops to MR: %d <= %d jobs", jobs8, jobs1)
	}
}

// TestParforExplain shows parfor blocks in plan explanations.
func TestParforExplain(t *testing.T) {
	_, plan, _ := parforSetup(t, ModeSim, 4)
	out := lop.Explain(plan)
	if !strings.Contains(out, "FOR j") {
		t.Errorf("explain missing parfor loop:\n%s", out)
	}
}
