// Package rt implements the runtime of the ML system: an interpreter that
// executes compiled runtime plans over the simulated cluster, with a buffer
// pool of live variables, dynamic recompilation of blocks with initially
// unknown sizes, and hooks for runtime resource adaptation (paper §2.1,
// §4). Two execution modes are supported:
//
//   - ModeValue executes real matrix kernels (small data, full numeric
//     fidelity — data-dependent sizes and convergence behave exactly as on
//     real inputs);
//   - ModeSim propagates only matrix metadata while advancing the
//     simulated clock, enabling the paper's large scenarios (up to 800 GB)
//     without materializing data.
//
// In both modes the interpreter charges simulated time from the analytic
// performance model, including buffer-pool evictions and MR job phases.
package rt

import (
	"fmt"
	"strconv"

	"elasticml/internal/hop"
	"elasticml/internal/matrix"
)

// Mode selects value-level or metadata-level execution.
type Mode int

// Execution modes.
const (
	ModeValue Mode = iota
	ModeSim
)

// Value is a runtime value: a matrix (real or descriptor) or a scalar.
type Value struct {
	// Matrix distinguishes matrix values from scalars/strings.
	Matrix bool
	// Mat holds the real payload in value mode (nil in sim mode).
	Mat *matrix.Matrix
	// Rows/Cols/NNZ describe the matrix in either mode.
	Rows, Cols, NNZ int64
	// Scalar payload; Known is false for sim-mode scalars derived from
	// data (e.g. aggregates over descriptor matrices).
	Scalar float64
	Known  bool
	// String payload.
	Str   string
	IsStr bool
}

// ScalarValue builds a known scalar.
func ScalarValue(v float64) *Value { return &Value{Scalar: v, Known: true} }

// StrValue builds a string value.
func StrValue(s string) *Value { return &Value{Str: s, IsStr: true, Known: true} }

// UnknownScalar builds a sim-mode scalar of unknown magnitude.
func UnknownScalar() *Value { return &Value{} }

// MatValue wraps a real matrix.
func MatValue(m *matrix.Matrix) *Value {
	return &Value{Matrix: true, Mat: m, Rows: int64(m.Rows()), Cols: int64(m.Cols()), NNZ: m.NNZ()}
}

// MetaValue builds a sim-mode matrix descriptor.
func MetaValue(rows, cols, nnz int64) *Value {
	return &Value{Matrix: true, Rows: rows, Cols: cols, NNZ: nnz}
}

// Sparsity returns nnz/(rows*cols) with a dense fallback.
func (v *Value) Sparsity() float64 {
	cells := v.Rows * v.Cols
	if cells <= 0 || v.NNZ < 0 {
		return 1
	}
	return float64(v.NNZ) / float64(cells)
}

// Bool interprets the scalar as a truth value.
func (v *Value) Bool() bool { return v.Scalar != 0 }

// Format renders the value for print().
func (v *Value) Format() string {
	switch {
	case v.IsStr:
		return v.Str
	case v.Matrix:
		return fmt.Sprintf("matrix(%dx%d)", v.Rows, v.Cols)
	case !v.Known:
		return "?"
	default:
		return strconv.FormatFloat(v.Scalar, 'g', -1, 64)
	}
}

// meta converts the value into compiler metadata for recompilation.
func (v *Value) meta() hop.VarMeta {
	if v.Matrix {
		return hop.VarMeta{IsMatrix: true, Rows: v.Rows, Cols: v.Cols, NNZ: v.NNZ}
	}
	if v.IsStr {
		return hop.VarMeta{IsStr: true, Str: v.Str}
	}
	return hop.VarMeta{Known: v.Known, Val: v.Scalar}
}

// unaryOpOf maps surface unary names to matrix kernels.
func unaryOpOf(op string) (matrix.UnaryOp, bool) {
	switch op {
	case "sqrt":
		return matrix.Sqrt, true
	case "abs":
		return matrix.Abs, true
	case "exp":
		return matrix.Exp, true
	case "log":
		return matrix.Log, true
	case "round":
		return matrix.Round, true
	case "floor":
		return matrix.Floor, true
	case "ceil":
		return matrix.Ceil, true
	case "-":
		return matrix.Neg, true
	case "!":
		return matrix.Not, true
	case "sign":
		return matrix.Sign, true
	case "sq":
		return matrix.Sq, true
	}
	return 0, false
}
