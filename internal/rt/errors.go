package rt

import "fmt"

// KernelError is a typed runtime failure produced when a matrix kernel
// rejects its operands — e.g. a dimension mismatch from a plan whose
// compile-time dimensions diverged from the runtime values. The interpreter
// recovers kernel panics into this error at the evaluation boundary, so a
// bad plan fails the run with a non-zero exit and an operator-scoped
// message instead of crashing mid-simulation with a raw panic trace.
type KernelError struct {
	// Op is the hop kind that was executing.
	Op string
	// Detail is the kernel's panic message.
	Detail string
}

func (e *KernelError) Error() string {
	return fmt.Sprintf("rt: %s kernel failed: %s", e.Op, e.Detail)
}
