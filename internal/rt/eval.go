package rt

import (
	"fmt"

	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/matrix"
)

// env evaluates one block DAG with memoization.
type env struct {
	ip    *Interp
	cache map[int64]*Value
}

func newEnv(ip *Interp) *env {
	return &env{ip: ip, cache: map[int64]*Value{}}
}

func (e *env) eval(h *hop.Hop) (v *Value, err error) {
	if h == nil {
		return nil, nil
	}
	if cached, ok := e.cache[h.ID]; ok {
		return cached, nil
	}
	// Matrix kernels panic on operand mismatches (bad plans whose
	// compile-time dimensions diverged from runtime values); recover them
	// into typed runtime errors so execution fails cleanly.
	defer func() {
		if r := recover(); r != nil {
			v = nil
			err = &KernelError{Op: fmt.Sprintf("%v", h.Kind), Detail: fmt.Sprint(r)}
		}
	}()
	v, err = e.compute(h)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", h.Kind, err)
	}
	if e.ip.Mode == ModeValue && v != nil && v.Matrix && v.Mat != nil && compactAfter(h.Kind) {
		// Convert the result to its preferred representation (SystemML's
		// examSparsity): kernels that always emit dense buffers would
		// otherwise pin a dense copy where the memory estimator (and the
		// buffer pool) costs the compact form.
		if c := v.Mat.Compact(); c != v.Mat {
			v = MatValue(c)
		}
	}
	e.cache[h.ID] = v
	if e.ip.MemHook != nil && e.ip.Mode == ModeValue {
		e.observeMem(h, v)
	}
	return v, nil
}

// compactAfter lists the hop kinds whose value-mode kernels may return a
// non-preferred representation (dense buffers for sparse results). All
// other kernels compact internally or cannot shrink (vectors, scalars).
func compactAfter(k hop.Kind) bool {
	switch k {
	case hop.KindMatMul, hop.KindDataGen, hop.KindLeftIndex, hop.KindDiag:
		return true
	}
	return false
}

// observeMem reports the hop's actual operand footprint to the MemHook:
// the produced matrix plus each distinct materialized matrix input (the
// same de-duplication rule the estimator applies to OpMem).
func (e *env) observeMem(h *hop.Hop, v *Value) {
	var out *matrix.Matrix
	if v != nil && v.Matrix {
		out = v.Mat
	}
	var ins []*matrix.Matrix
	seen := map[int64]bool{}
	for _, in := range h.Inputs {
		if in == nil || in.DataType != hop.Matrix || seen[in.ID] {
			continue
		}
		seen[in.ID] = true
		if iv, ok := e.cache[in.ID]; ok && iv != nil && iv.Matrix && iv.Mat != nil {
			ins = append(ins, iv.Mat)
		}
	}
	e.ip.MemHook(h, ins, out)
}

func (e *env) evalInputs(h *hop.Hop) ([]*Value, error) {
	vals := make([]*Value, len(h.Inputs))
	for i, in := range h.Inputs {
		v, err := e.eval(in)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

func (e *env) compute(h *hop.Hop) (*Value, error) {
	ip := e.ip
	switch h.Kind {
	case hop.KindLit:
		if h.DataType == hop.String {
			return StrValue(h.StrValue), nil
		}
		return ScalarValue(h.Value), nil

	case hop.KindTRead:
		v, ok := ip.Vars[h.Name]
		if !ok {
			return nil, fmt.Errorf("undefined variable %q", h.Name)
		}
		return v, nil

	case hop.KindRead:
		f, retries, err := ip.FS.ReadWithRetry(h.Name, ip.readAttempts())
		if err != nil {
			return nil, err
		}
		if retries > 0 {
			// Each transient failure re-reads one DFS block from another
			// replica; charge the re-read into the recovery budget.
			ip.Stats.HDFSRetries += retries
			penalty := ip.Est.PM.ReadTime(ip.CC.HDFSBlockSize, 1) * float64(retries)
			ip.SimTime += penalty
			ip.Stats.RecoverySeconds += penalty
		}
		if ip.Mode == ModeValue {
			if f.Data == nil {
				return nil, fmt.Errorf("value mode requires real payload for %q", h.Name)
			}
			return MatValue(f.Data), nil
		}
		return MetaValue(f.Rows, f.Cols, f.NNZ), nil

	case hop.KindTWrite:
		v, err := e.eval(h.Inputs[0])
		if err != nil {
			return nil, err
		}
		ip.Vars[h.Name] = v
		return v, nil

	case hop.KindWrite:
		v, err := e.eval(h.Inputs[0])
		if err != nil {
			return nil, err
		}
		if v.Matrix {
			if ip.Mode == ModeValue {
				ip.FS.PutMatrix(h.Name, v.Mat)
			} else {
				ip.FS.PutDescriptor(h.Name, v.Rows, v.Cols, v.NNZ, hdfs.BinaryBlock)
			}
		}
		return v, nil

	case hop.KindPrint:
		v, err := e.eval(h.Inputs[0])
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(ip.Out, v.Format())
		return v, nil

	case hop.KindStop:
		v, err := e.eval(h.Inputs[0])
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stop: %s", v.Format())

	case hop.KindDataGen:
		return e.dataGen(h)
	case hop.KindSeq:
		return e.seq(h)
	case hop.KindUnary:
		return e.unary(h)
	case hop.KindBinary:
		return e.binary(h)
	case hop.KindAggUnary:
		return e.agg(h)
	case hop.KindMatMul:
		return e.matmul(h)
	case hop.KindReorg:
		return e.reorg(h)
	case hop.KindAppend:
		return e.appendOp(h)
	case hop.KindIndex:
		return e.index(h)
	case hop.KindLeftIndex:
		return e.leftIndex(h)
	case hop.KindTable:
		return e.table(h)
	case hop.KindDiag:
		return e.diag(h)
	case hop.KindSolve:
		return e.solve(h)
	case hop.KindTernaryAgg:
		return e.ternaryAgg(h)
	case hop.KindCast:
		return e.cast(h)
	}
	return nil, fmt.Errorf("unsupported hop kind %v", h.Kind)
}

func (e *env) dataGen(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	v, r, c := vals[0], vals[1], vals[2]
	if !r.Known || !c.Known {
		return nil, fmt.Errorf("matrix() dimensions unknown at runtime")
	}
	rows, cols := int64(r.Scalar), int64(c.Scalar)
	if e.ip.Mode == ModeSim {
		nnz := rows * cols
		if v.Known && v.Scalar == 0 {
			nnz = 0
		}
		return MetaValue(rows, cols, nnz), nil
	}
	return MatValue(matrix.Filled(int(rows), int(cols), v.Scalar)), nil
}

func (e *env) seq(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	from, to, incr := vals[0], vals[1], vals[2]
	if !from.Known || !to.Known || !incr.Known {
		return nil, fmt.Errorf("seq bounds unknown at runtime")
	}
	if e.ip.Mode == ModeSim {
		n := int64((to.Scalar-from.Scalar)/incr.Scalar) + 1
		if n < 0 {
			n = 0
		}
		return MetaValue(n, 1, n), nil
	}
	return MatValue(matrix.Seq(from.Scalar, to.Scalar, incr.Scalar)), nil
}

func (e *env) unary(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	x := vals[0]
	op, ok := unaryOpOf(h.Op)
	if !ok {
		return nil, fmt.Errorf("unknown unary %q", h.Op)
	}
	if !x.Matrix {
		if !x.Known {
			return UnknownScalar(), nil
		}
		return ScalarValue(op.Apply(x.Scalar)), nil
	}
	if e.ip.Mode == ModeSim || x.Mat == nil {
		return e.metaFromHop(h, x), nil
	}
	return MatValue(matrix.Unary(op, x.Mat)), nil
}

func (e *env) binary(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	// String concatenation.
	if a.IsStr || b.IsStr {
		if h.Op != "+" {
			return nil, fmt.Errorf("strings support only concatenation")
		}
		return StrValue(a.Format() + b.Format()), nil
	}
	op, ok := hop.SurfaceBinaryOp(h.Op)
	if !ok {
		return nil, fmt.Errorf("unknown binary %q", h.Op)
	}
	switch {
	case !a.Matrix && !b.Matrix:
		if !a.Known || !b.Known {
			return UnknownScalar(), nil
		}
		return ScalarValue(op.Apply(a.Scalar, b.Scalar)), nil
	case e.ip.Mode == ModeSim || (a.Matrix && a.Mat == nil) || (b.Matrix && b.Mat == nil):
		ref := a
		if !ref.Matrix {
			ref = b
		}
		return e.metaFromHop(h, ref), nil
	case a.Matrix && b.Matrix:
		return MatValue(matrix.EW(op, a.Mat, b.Mat)), nil
	case a.Matrix:
		return MatValue(matrix.EWScalarRight(op, a.Mat, b.Scalar)), nil
	default:
		return MatValue(matrix.EWScalarLeft(op, a.Scalar, b.Mat)), nil
	}
}

func (e *env) agg(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	x := vals[0]
	switch h.Op {
	case "nrow":
		return ScalarValue(float64(x.Rows)), nil
	case "ncol":
		return ScalarValue(float64(x.Cols)), nil
	}
	if e.ip.Mode == ModeSim || x.Mat == nil {
		if h.IsScalar() {
			return UnknownScalar(), nil
		}
		return e.metaFromHop(h, x), nil
	}
	m := x.Mat
	switch h.Op {
	case "sum":
		return ScalarValue(matrix.Sum(m)), nil
	case "mean":
		return ScalarValue(matrix.Agg(matrix.MeanAgg, m)), nil
	case "min":
		return ScalarValue(matrix.Agg(matrix.MinAgg, m)), nil
	case "max":
		return ScalarValue(matrix.Agg(matrix.MaxAgg, m)), nil
	case "trace":
		return ScalarValue(matrix.Agg(matrix.Trace, m)), nil
	case "sumsq":
		return ScalarValue(matrix.SumSq(m)), nil
	case "rowSums":
		return MatValue(matrix.RowSums(m)), nil
	case "colSums":
		return MatValue(matrix.ColSums(m)), nil
	case "rowMaxs":
		return MatValue(matrix.RowMaxs(m)), nil
	}
	return nil, fmt.Errorf("unknown aggregate %q", h.Op)
}

func (e *env) matmul(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	if e.ip.Mode == ModeSim || a.Mat == nil || b.Mat == nil {
		rows := a.Rows
		k := a.Cols
		if h.TransA {
			rows, k = a.Cols, a.Rows
		}
		sp := matrix.MulSparsity(a.Sparsity(), b.Sparsity(), k)
		nnz := int64(sp * float64(rows) * float64(b.Cols))
		return MetaValue(rows, b.Cols, nnz), nil
	}
	if h.TransA {
		if h.Inputs[0] == h.Inputs[1] {
			return MatValue(matrix.TSMM(a.Mat)), nil
		}
		return MatValue(matrix.Mul(matrix.Transpose(a.Mat), b.Mat)), nil
	}
	return MatValue(matrix.Mul(a.Mat, b.Mat)), nil
}

func (e *env) reorg(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	x := vals[0]
	if e.ip.Mode == ModeSim || x.Mat == nil {
		return MetaValue(x.Cols, x.Rows, x.NNZ), nil
	}
	return MatValue(matrix.Transpose(x.Mat)), nil
}

func (e *env) appendOp(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	if e.ip.Mode == ModeSim || a.Mat == nil || b.Mat == nil {
		if h.Op == "rbind" {
			return MetaValue(a.Rows+b.Rows, a.Cols, a.NNZ+b.NNZ), nil
		}
		return MetaValue(a.Rows, a.Cols+b.Cols, a.NNZ+b.NNZ), nil
	}
	if h.Op == "rbind" {
		return MatValue(matrix.RBind(a.Mat, b.Mat)), nil
	}
	return MatValue(matrix.CBind(a.Mat, b.Mat)), nil
}

// bounds resolves the four index-bound hops into 0-based half-open ranges.
func (e *env) bounds(h *hop.Hop, off int, rows, cols int64) (r0, r1, c0, c1 int64, err error) {
	get := func(i int, def int64) (int64, error) {
		if i >= len(h.Inputs) || h.Inputs[i] == nil {
			return def, nil
		}
		v, err := e.eval(h.Inputs[i])
		if err != nil {
			return 0, err
		}
		if !v.Known {
			return 0, fmt.Errorf("index bound unknown at runtime")
		}
		return int64(v.Scalar), nil
	}
	rl, err := get(off, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if h.Inputs[off] == nil {
		r0, r1 = 0, rows
	} else {
		ru, err := get(off+1, rl)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		r0, r1 = rl-1, ru
	}
	cl, err := get(off+2, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if off+2 >= len(h.Inputs) || h.Inputs[off+2] == nil {
		c0, c1 = 0, cols
	} else {
		cu, err := get(off+3, cl)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		c0, c1 = cl-1, cu
	}
	return r0, r1, c0, c1, nil
}

func (e *env) index(h *hop.Hop) (*Value, error) {
	x, err := e.eval(h.Inputs[0])
	if err != nil {
		return nil, err
	}
	r0, r1, c0, c1, err := e.bounds(h, 1, x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	if e.ip.Mode == ModeSim || x.Mat == nil {
		rows, cols := r1-r0, c1-c0
		nnz := int64(float64(rows*cols) * x.Sparsity())
		return MetaValue(rows, cols, nnz), nil
	}
	return MatValue(matrix.Slice(x.Mat, int(r0), int(r1), int(c0), int(c1))), nil
}

func (e *env) leftIndex(h *hop.Hop) (*Value, error) {
	x, err := e.eval(h.Inputs[0])
	if err != nil {
		return nil, err
	}
	v, err := e.eval(h.Inputs[1])
	if err != nil {
		return nil, err
	}
	r0, r1, c0, c1, err := e.bounds(h, 2, x.Rows, x.Cols)
	if err != nil {
		return nil, err
	}
	if e.ip.Mode == ModeSim || x.Mat == nil {
		return MetaValue(x.Rows, x.Cols, x.Rows*x.Cols), nil
	}
	// ToDense already returns a fresh buffer for sparse sources; clone only
	// when it aliases the (dense) source, so the update never mutates the
	// bound variable and never allocates a redundant second copy.
	out := x.Mat.ToDense()
	if out == x.Mat {
		out = out.Clone()
	}
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			var val float64
			if v.Matrix {
				val = v.Mat.At(int(i-r0), int(j-c0))
			} else {
				val = v.Scalar
			}
			out.Set(int(i), int(j), val)
		}
	}
	return MatValue(out), nil
}

func (e *env) table(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	if e.ip.Mode == ModeSim || a.Mat == nil || b.Mat == nil {
		// Data-dependent output size: in sim mode the class count comes
		// from the workload specification.
		return MetaValue(a.Rows, e.ip.SimTableCols, a.Rows), nil
	}
	return MatValue(matrix.Table(a.Mat, b.Mat)), nil
}

func (e *env) diag(h *hop.Hop) (*Value, error) {
	x, err := e.eval(h.Inputs[0])
	if err != nil {
		return nil, err
	}
	if e.ip.Mode == ModeSim || x.Mat == nil {
		if x.Cols == 1 {
			return MetaValue(x.Rows, x.Rows, x.NNZ), nil
		}
		n := x.Rows
		if x.Cols < n {
			n = x.Cols
		}
		return MetaValue(n, 1, n), nil
	}
	return MatValue(matrix.Diag(x.Mat)), nil
}

func (e *env) solve(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	a, b := vals[0], vals[1]
	if e.ip.Mode == ModeSim || a.Mat == nil || b.Mat == nil {
		return MetaValue(a.Cols, b.Cols, a.Cols*b.Cols), nil
	}
	x, err := matrix.Solve(a.Mat, b.Mat)
	if err != nil {
		return nil, err
	}
	return MatValue(x), nil
}

func (e *env) ternaryAgg(h *hop.Hop) (*Value, error) {
	vals, err := e.evalInputs(h)
	if err != nil {
		return nil, err
	}
	if e.ip.Mode == ModeSim {
		return UnknownScalar(), nil
	}
	for _, v := range vals {
		if v.Mat == nil {
			return UnknownScalar(), nil
		}
	}
	prod := vals[0].Mat
	for _, v := range vals[1 : len(vals)-1] {
		prod = matrix.EW(matrix.MulEW, prod, v.Mat)
	}
	return ScalarValue(matrix.DotProduct(prod, vals[len(vals)-1].Mat)), nil
}

func (e *env) cast(h *hop.Hop) (*Value, error) {
	x, err := e.eval(h.Inputs[0])
	if err != nil {
		return nil, err
	}
	if !x.Matrix {
		return x, nil
	}
	if x.Mat == nil {
		return UnknownScalar(), nil
	}
	if x.Rows != 1 || x.Cols != 1 {
		return nil, fmt.Errorf("as.scalar requires 1x1 matrix, got %dx%d", x.Rows, x.Cols)
	}
	return ScalarValue(x.Mat.At(0, 0)), nil
}

// metaFromHop builds a descriptor from the hop's inferred sizes, falling
// back to the reference value's dimensions when the hop is unknown.
func (e *env) metaFromHop(h *hop.Hop, ref *Value) *Value {
	rows, cols, nnz := h.Rows, h.Cols, h.NNZ
	if rows == hop.Unknown {
		rows = ref.Rows
	}
	if cols == hop.Unknown {
		cols = ref.Cols
	}
	if nnz == hop.Unknown || nnz < 0 {
		nnz = rows * cols
	}
	return MetaValue(rows, cols, nnz)
}
