package rt

import (
	"errors"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/matrix"
	"elasticml/internal/mr"
	"elasticml/internal/scripts"
)

// simInterp builds a sim-mode MLogreg interpreter over descriptor inputs
// large enough to spawn MR jobs under a small CP.
func simInterp(t *testing.T) *Interp {
	t.Helper()
	n, m := int64(1_000_000), int64(100)
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	res := conf.NewResources(512*conf.MB, 2*conf.GB, 64)
	plan, comp := compilePlan(t, scripts.MLogreg(), fs, res)
	ip := New(ModeSim, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	ip.SimTableCols = 200
	ip.plan = plan
	return ip
}

func TestNodeFailureShrinksClusterAndTriggersAdapter(t *testing.T) {
	ip := simInterp(t)
	nodes0 := ip.CC.Nodes
	ip.Faults = fault.MustInjector(fault.Plan{Seed: 1,
		NodeFailures: []fault.NodeFailure{{Node: 0, At: 0}}})
	var lossTriggers int
	ip.Adapter = adapterFunc(func(ctx *AdaptContext) *AdaptDecision {
		if ctx.Trigger == TriggerContainerLoss {
			lossTriggers++
			if ctx.CC.Nodes != nodes0-1 {
				t.Errorf("adapter saw %d nodes, want shrunken %d", ctx.CC.Nodes, nodes0-1)
			}
		}
		return nil
	})
	if err := ip.Run(ip.plan); err != nil {
		t.Fatalf("run under one node failure: %v", err)
	}
	if ip.Stats.NodeFailures != 1 {
		t.Errorf("NodeFailures = %d, want 1", ip.Stats.NodeFailures)
	}
	if ip.CC.Nodes != nodes0-1 {
		t.Errorf("cluster not shrunk: %d nodes", ip.CC.Nodes)
	}
	if lossTriggers != 1 {
		t.Errorf("container-loss triggers = %d, want 1", lossTriggers)
	}
}

func TestLastNodeFailureAborts(t *testing.T) {
	ip := simInterp(t)
	ip.CC.Nodes = 1
	ip.Est.CC = ip.CC
	ip.Faults = fault.MustInjector(fault.Plan{Seed: 1,
		NodeFailures: []fault.NodeFailure{{Node: 0, At: 0}}})
	if err := ip.Run(ip.plan); !errors.Is(err, ErrClusterLost) {
		t.Errorf("losing the only node should abort with ErrClusterLost, got %v", err)
	}
}

func TestTaskFaultRecoveryChargedAndDeterministic(t *testing.T) {
	clean := simInterp(t)
	if err := clean.Run(clean.plan); err != nil {
		t.Fatal(err)
	}
	if clean.Stats.MRJobs == 0 {
		t.Fatal("scenario must spawn MR jobs")
	}

	run := func() *Interp {
		ip := simInterp(t)
		ip.Faults = fault.MustInjector(fault.Plan{Seed: 9, TaskFailureProb: 0.02,
			StragglerProb: 0.02, StragglerFactor: 4})
		if err := ip.Run(ip.plan); err != nil {
			t.Fatalf("faulty run: %v", err)
		}
		return ip
	}
	f1 := run()
	if f1.Stats.TaskRetries == 0 && f1.Stats.Stragglers == 0 {
		t.Fatal("no faults sampled; raise probabilities or change seed")
	}
	if f1.Stats.RecoverySeconds <= 0 {
		t.Error("recovery time not charged")
	}
	if f1.SimTime <= clean.SimTime {
		t.Errorf("faulty run not slower: %.1f vs %.1f", f1.SimTime, clean.SimTime)
	}
	f2 := run()
	if f1.SimTime != f2.SimTime || f1.Stats != f2.Stats {
		t.Errorf("same seed diverged: %.6f/%+v vs %.6f/%+v",
			f1.SimTime, f1.Stats, f2.SimTime, f2.Stats)
	}
}

func TestTaskFaultExhaustionAbortsRun(t *testing.T) {
	ip := simInterp(t)
	ip.Faults = fault.MustInjector(fault.Plan{Seed: 3, TaskFailureProb: 1})
	ip.Policy = mr.TaskPolicy{MaxAttempts: 1}
	if err := ip.Run(ip.plan); !errors.Is(err, mr.ErrTaskFailed) {
		t.Errorf("p=1 without retry should abort with ErrTaskFailed, got %v", err)
	}
}

func TestHDFSReadRetriesRecover(t *testing.T) {
	fs := hdfs.New()
	x := matrix.Random(200, 8, 1, -1, 1, 42)
	beta := matrix.Random(8, 1, 1, -1, 1, 43)
	fs.PutMatrix("/data/X", x)
	fs.PutMatrix("/data/y", matrix.Mul(x, beta))
	res := conf.NewResources(2*conf.GB, 512*conf.MB, 64)
	plan, comp := compilePlan(t, scripts.LinregDS(), fs, res)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Compiler = comp
	ip.Faults = fault.MustInjector(fault.Plan{Seed: 4, HDFSReadErrorProb: 0.5})
	if err := ip.Run(plan); err != nil {
		t.Fatalf("reads should recover via retry: %v", err)
	}
	if ip.Stats.HDFSRetries == 0 {
		t.Error("expected transient read retries under p=0.5")
	}
	if ip.Stats.RecoverySeconds <= 0 {
		t.Error("re-read cost not charged")
	}
	if _, err := fs.Stat("/out/beta"); err != nil {
		t.Errorf("output missing after recovered run: %v", err)
	}
}
