package rt

import (
	"errors"
	"strings"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/matrix"
	"elasticml/internal/scripts"
)

// TestEvalRecoversKernelPanic: a plan whose compile-time dimensions
// diverged from the runtime values makes the matrix kernels panic; the
// interpreter boundary must convert that into a typed KernelError instead
// of crashing the process.
func TestEvalRecoversKernelPanic(t *testing.T) {
	fs := hdfs.New()
	res := conf.NewResources(conf.GB, 256*conf.MB, 1)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	ip.Vars["A"] = MatValue(matrix.Random(2, 3, 1.0, -1, 1, 1))
	ip.Vars["B"] = MatValue(matrix.Random(2, 3, 1.0, -1, 1, 2)) // 2x3 x 2x3: mismatched
	a := &hop.Hop{ID: 1, Kind: hop.KindTRead, Name: "A", DataType: hop.Matrix}
	b := &hop.Hop{ID: 2, Kind: hop.KindTRead, Name: "B", DataType: hop.Matrix}
	mm := &hop.Hop{ID: 3, Kind: hop.KindMatMul, Inputs: []*hop.Hop{a, b}, DataType: hop.Matrix}

	v, err := newEnv(ip).eval(mm)
	if err == nil {
		t.Fatalf("eval of mismatched matmul succeeded: %v", v)
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %v (%T) is not a *KernelError", err, err)
	}
	if !strings.Contains(ke.Detail, "dimension mismatch") {
		t.Errorf("KernelError detail %q does not mention the dimension mismatch", ke.Detail)
	}
	if !strings.Contains(ke.Error(), "kernel failed") {
		t.Errorf("KernelError message %q lacks context", ke.Error())
	}
}

// TestKernelPanicRecoveredUnderParallelism: the same recovery must hold
// when the panic originates inside a pool worker (parRange re-raises it on
// the calling goroutine).
func TestKernelPanicRecoveredUnderParallelism(t *testing.T) {
	prev := matrix.Parallelism()
	matrix.SetParallelism(4)
	defer matrix.SetParallelism(prev)

	fs := hdfs.New()
	res := conf.NewResources(conf.GB, 256*conf.MB, 1).WithCores(4)
	ip := New(ModeValue, fs, conf.DefaultCluster(), res)
	// EW with incompatible non-broadcast shapes panics inside the kernel.
	ip.Vars["A"] = MatValue(matrix.Random(64, 8, 1.0, -1, 1, 3))
	ip.Vars["B"] = MatValue(matrix.Random(63, 7, 1.0, -1, 1, 4))
	a := &hop.Hop{ID: 1, Kind: hop.KindTRead, Name: "A", DataType: hop.Matrix}
	b := &hop.Hop{ID: 2, Kind: hop.KindTRead, Name: "B", DataType: hop.Matrix}
	add := &hop.Hop{ID: 3, Kind: hop.KindBinary, Op: "+", Inputs: []*hop.Hop{a, b}, DataType: hop.Matrix}

	_, err := newEnv(ip).eval(add)
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %v (%T) is not a *KernelError", err, err)
	}
}

// TestValueRunDeterministicAcrossCores: a full value-mode program must
// produce byte-identical outputs whether the CP runs single-threaded or
// with a multi-core kernel pool.
func TestValueRunDeterministicAcrossCores(t *testing.T) {
	runWith := func(cores int) *matrix.Matrix {
		beta := []float64{1, -2, 3, 0.5, -1, 2, 0, 1.5, -0.5, 1}
		fs, _ := regressionFS(t, 300, 10, beta)
		res := conf.NewResources(2*conf.GB, 512*conf.MB, 64).WithCores(cores)
		plan, comp := compilePlan(t, scripts.LinregDS(), fs, res)
		ip := New(ModeValue, fs, conf.DefaultCluster(), res)
		ip.Compiler = comp
		if err := ip.Run(plan); err != nil {
			t.Fatalf("run with %d cores: %v", cores, err)
		}
		out, err := fs.Stat("/out/beta")
		if err != nil {
			t.Fatalf("no output written: %v", err)
		}
		return out.Data
	}
	ref := runWith(1)
	for _, cores := range []int{2, 7} {
		got := runWith(cores)
		if !matrix.Equal(got, ref, 0) {
			t.Errorf("output with %d cores differs from single-threaded run", cores)
		}
	}
}
