package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"elasticml/internal/obs"
	"elasticml/internal/workload"
)

// startServer boots a daemon on a loopback port and returns it with its
// address. The caller must Shutdown.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	o := workload.DefaultOptions()
	o.Workers = 2
	seq, err := NewSequencer(testCluster(), o, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(seq, cfg, obs.NewMetrics())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// TestServerEndToEnd is the acceptance run: ≥10k requests over 4
// concurrent sessions, every accepted job's result streamed back, zero
// hard errors, and the recorded op log replaying to a byte-identical
// report after shutdown.
func TestServerEndToEnd(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{MaxSessions: 8})

	st, err := RunLoad(LoadConfig{
		Addr:        addr,
		Sessions:    4,
		Requests:    10000,
		Tenants:     16,
		Seed:        1,
		SubmitEvery: 40, // ~250 submissions; the rest ping/status probes
		WaitResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 10000 {
		t.Fatalf("drove %d requests, want >= 10000", st.Requests)
	}
	if st.Errors != 0 {
		t.Fatalf("hard errors: %+v", st)
	}
	if st.Shed != 0 {
		t.Fatalf("unconfigured limiter shed requests: %+v", st)
	}
	if st.Submits == 0 || st.Accepted != st.Submits {
		t.Fatalf("accepted %d of %d submits", st.Accepted, st.Submits)
	}
	if st.Results != st.Accepted {
		t.Fatalf("results %d, accepted %d", st.Results, st.Accepted)
	}

	live := srv.Shutdown(5 * time.Second)
	if len(live.Tenants) != st.Accepted {
		t.Fatalf("report has %d tenants, accepted %d", len(live.Tenants), st.Accepted)
	}
	replayed, err := Replay(srv.Log())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	a, b := reportJSON(t, live), reportJSON(t, replayed)
	if string(a) != string(b) {
		t.Fatal("live and replayed reports differ")
	}
}

// slowJobSource is a self-contained value-mode program whose dense
// multiply chain costs real wall time on the sequencer goroutine — it
// pins an inflight slot for the duration of the burst below. (Simulated
// scenario jobs no longer work for that: the memoized admission path
// processes them faster than clients can pile up submits.)
const slowJobSource = `
X = matrix(1.5, rows=400, cols=400)
Y = X %*% X %*% X %*% X %*% X %*% X %*% X %*% X
print(sum(Y))
`

// TestServerInflightShed: with a tiny inflight cap a submit burst sheds
// with typed ErrOverloaded frames while every connection stays usable,
// and slots freed by completed jobs become admissible again.
func TestServerInflightShed(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{
		MaxSessions: 8,
		Limiter:     LimiterPolicy{MaxInflight: 2},
	})
	defer srv.Shutdown(5 * time.Second)

	clients := make([]*Client, 4)
	for i := range clients {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	// Occupy one of the two slots with a wall-slow job. Any burst submit
	// that lands before it completes finds at most one free slot, and the
	// one job that claims it queues behind the slow job's execution — so
	// both slots stay held for the slow job's full runtime.
	_, _, slowDone, err := clients[0].Submit(JobSpecWire{Tenant: "slow", Source: slowJobSource})
	if err != nil {
		t.Fatalf("slow submit: %v", err)
	}

	var mu sync.Mutex
	var accepted, shed int
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				_, _, _, err := cl.Submit(JobSpecWire{
					Tenant: fmt.Sprintf("s%d-%d", i, j), Script: "L2SVM", Size: "XS", Cols: 100,
				})
				mu.Lock()
				switch {
				case err == nil:
					accepted++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					mu.Unlock()
					t.Errorf("submit: %v", err)
					return
				}
				mu.Unlock()
			}
		}(i, cl)
	}
	wg.Wait()
	if accepted == 0 {
		t.Fatalf("no burst submit was accepted (shed %d)", shed)
	}
	if shed == 0 {
		t.Fatalf("no sheds despite cap 2 and 32 rapid submits (accepted %d)", accepted)
	}
	// Every session survived its sheds: the connection still answers.
	for _, cl := range clients {
		if err := cl.Ping(); err != nil {
			t.Fatalf("post-shed ping: %v", err)
		}
	}

	// Once the slow job finishes its slot frees up and submits are
	// admitted again (the queued burst job drains with it).
	select {
	case res := <-slowDone:
		if res == nil {
			t.Fatal("slow job result channel closed without a result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("slow job never completed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, err := clients[1].Submit(JobSpecWire{
			Tenant: "after", Script: "L2SVM", Size: "XS", Cols: 100,
		})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("post-drain submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("inflight slots never freed after the slow job completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerByteRateShed: draining the token bucket sheds frames with
// typed errors and keeps the session open.
func TestServerByteRateShed(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{
		// MaxFrame keeps the admissibility clamp at the test's tiny scale:
		// the bucket only has to fit a ping, not a full default frame.
		Limiter: LimiterPolicy{BytesPerSec: 1, Burst: 15, MaxFrame: 15},
	})
	defer srv.Shutdown(5 * time.Second)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The first ping (13 wire bytes) fits the 15-byte bucket; at 1 B/s
	// refill the rest must shed — as ErrOverloaded, never a dead
	// connection.
	if err := cl.Ping(); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := cl.Ping(); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("ping %d: want ErrOverloaded, got %v", i, err)
		}
	}
}

// TestServerSessionPoolShed: a connection beyond the fixed pool receives a
// typed overload frame instead of a silent close or a hang.
func TestServerSessionPoolShed(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{MaxSessions: 1})
	defer srv.Shutdown(5 * time.Second)

	first, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second dial: want ErrOverloaded, got %v", err)
	}

	// Releasing the slot re-admits new sessions.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl, err := Dial(addr)
		if err == nil {
			cl.Close()
			break
		}
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			t.Fatalf("redial after release: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerVersionMismatch: a Hello speaking the wrong protocol version
// is rejected with CodeVersionMismatch before any other processing.
func TestServerVersionMismatch(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	defer srv.Shutdown(5 * time.Second)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Hello{Version: ProtoVersion + 7, Client: "old"}, 0); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ef, ok := reply.(*ErrorFrame)
	if !ok || ef.Code != CodeVersionMismatch {
		t.Fatalf("want CodeVersionMismatch error frame, got %#v", reply)
	}
	if !errors.Is(ef.Err(), ErrVersionMismatch) {
		t.Fatalf("frame error not typed: %v", ef.Err())
	}
}

// TestServerGarbageHandshake: a non-Hello first frame and a malformed
// frame both earn a typed BadRequest reply, not a hang or a panic.
func TestServerGarbageHandshake(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	defer srv.Shutdown(5 * time.Second)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Ping{ReqID: 1}, 0); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ef, ok := reply.(*ErrorFrame); !ok || ef.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %#v", reply)
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte{0, 0, 0, 1, 0xEE}) // unknown message type
	reply2, err := ReadFrame(conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ef, ok := reply2.(*ErrorFrame); !ok || ef.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %#v", reply2)
	}
}

// TestServerIdleTimeout: an idle session is closed once the timeout
// elapses, and the slot returns to the pool.
func TestServerIdleTimeout(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{MaxSessions: 1, IdleTimeout: 50 * time.Millisecond})
	defer srv.Shutdown(5 * time.Second)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(150 * time.Millisecond)
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded on an idle-closed session")
	}
	// The reclaimed slot admits a fresh session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl2, err := Dial(addr)
		if err == nil {
			cl2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial after idle close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerStatusCancelMetrics exercises the remaining request types over
// a live connection.
func TestServerStatusCancelMetrics(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	job, arrival, resCh, err := cl.Submit(JobSpecWire{Tenant: "st", Script: "LinregDS", Size: "XS", Cols: 100})
	if err != nil {
		t.Fatal(err)
	}
	if arrival < 0 {
		t.Fatalf("arrival %g", arrival)
	}
	ack, err := cl.Status(job)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Tenant != "st" || ack.State == "" {
		t.Fatalf("status ack: %+v", ack)
	}
	if _, err := cl.Status(9999); err == nil || !strings.Contains(err.Error(), "9999") {
		t.Fatalf("unknown-job status: %v", err)
	}
	if _, err := cl.Cancel(job); err != nil {
		t.Fatal(err)
	}
	res, ok := <-resCh
	if !ok || res == nil {
		t.Fatal("no result frame after terminal state")
	}
	if res.Job != job {
		t.Fatalf("result for job %d, want %d", res.Job, job)
	}

	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "server.jobs.submitted" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics snapshot missing server.jobs.submitted: %+v", snap.Counters)
	}

	// A submit rejected during drain is a typed shutting-down error, and
	// shutdown still yields the final report.
	rep := srv.Shutdown(5 * time.Second)
	if rep == nil || len(rep.Tenants) != 1 {
		t.Fatalf("report: %+v", rep)
	}
}
