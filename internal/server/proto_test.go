package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"elasticml/internal/obs"
)

// randString draws a printable string, occasionally empty and occasionally
// with embedded NULs and high bytes — framing must be 8-bit clean.
func randString(r *rand.Rand) string {
	n := r.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return string(b)
}

func randF64(r *rand.Rand) float64 {
	switch r.Intn(8) {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	case 2:
		return -math.MaxFloat64
	default:
		return r.NormFloat64() * 1e3
	}
}

// randMessage draws one random message of a random type.
func randMessage(r *rand.Rand) Message {
	switch 1 + MsgType(r.Intn(int(typeMax-1))) {
	case TypeHello:
		return &Hello{Version: uint16(r.Intn(1 << 16)), Client: randString(r)}
	case TypeHelloAck:
		return &HelloAck{Version: uint16(r.Intn(1 << 16)), Server: randString(r), MaxFrame: r.Uint32()}
	case TypeSubmitJob:
		m := &SubmitJob{
			ReqID: r.Uint64(), Tenant: randString(r), Script: randString(r),
			Size: randString(r), Cols: r.Int63(), Sparsity: randF64(r),
			Source: randString(r),
		}
		for i := r.Intn(4); i > 0; i-- {
			p := Param{Key: randString(r), Kind: ParamKind(r.Intn(4))}
			switch p.Kind {
			case ParamFloat:
				p.F = randF64(r)
			case ParamInt:
				p.I = r.Int63()
			case ParamString:
				p.S = randString(r)
			case ParamBool:
				p.B = r.Intn(2) == 1
			}
			m.Params = append(m.Params, p)
		}
		return m
	case TypeJobAccepted:
		return &JobAccepted{ReqID: r.Uint64(), Job: r.Uint32(), Arrival: randF64(r)}
	case TypeJobStatus:
		return &JobStatus{ReqID: r.Uint64(), Job: r.Uint32()}
	case TypeJobStatusAck:
		return &JobStatusAck{
			ReqID: r.Uint64(), Job: r.Uint32(), State: randString(r),
			Tenant: randString(r), Arrival: randF64(r), Admitted: randF64(r),
			Finished: randF64(r),
		}
	case TypeJobResult:
		return &JobResult{
			Job: r.Uint32(), Tenant: randString(r), Program: randString(r),
			Config: randString(r), Flags: ResultFlags(r.Intn(64)),
			Arrival: randF64(r), Admitted: randF64(r), Finished: randF64(r),
			QueueDelay: randF64(r), Latency: randF64(r), WastedWork: randF64(r),
			Reopts: r.Uint32(), Requeues: r.Uint32(),
			OutputHash: randString(r), Error: randString(r),
		}
	case TypeCancelJob:
		return &CancelJob{ReqID: r.Uint64(), Job: r.Uint32()}
	case TypeCancelAck:
		return &CancelAck{ReqID: r.Uint64(), Job: r.Uint32(), OK: r.Intn(2) == 1}
	case TypeMetricsRequest:
		return &MetricsRequest{ReqID: r.Uint64()}
	case TypeMetricsSnapshot:
		m := &MetricsFrame{ReqID: r.Uint64()}
		for i := r.Intn(4); i > 0; i-- {
			m.Snapshot.Counters = append(m.Snapshot.Counters,
				obs.CounterPoint{Name: randString(r), Value: r.Int63()})
		}
		for i := r.Intn(4); i > 0; i-- {
			m.Snapshot.Gauges = append(m.Snapshot.Gauges,
				obs.GaugePoint{Name: randString(r), Value: randF64(r)})
		}
		for i := r.Intn(3); i > 0; i-- {
			hp := obs.HistPoint{Name: randString(r)}
			hp.Hist.Count = r.Int63()
			hp.Hist.Sum = randF64(r)
			hp.Hist.Min = randF64(r)
			hp.Hist.Max = randF64(r)
			for k := range hp.Hist.Buckets {
				hp.Hist.Buckets[k] = r.Int63()
			}
			m.Snapshot.Hists = append(m.Snapshot.Hists, hp)
		}
		return m
	case TypePing:
		return &Ping{ReqID: r.Uint64()}
	case TypePong:
		return &Pong{ReqID: r.Uint64()}
	default:
		return &ErrorFrame{ReqID: r.Uint64(), Code: ErrCode(r.Intn(8)), Msg: randString(r)}
	}
}

// TestFrameRoundTripProperty: seeded random messages of every type survive
// encode → decode bit-exactly, both singly and concatenated on one stream.
func TestFrameRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var stream bytes.Buffer
	var sent []Message
	for i := 0; i < 2000; i++ {
		m := randMessage(r)
		b, err := EncodeFrame(m, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("iter %d: encode %s: %v", i, m.Type(), err)
		}
		got, err := ReadFrame(bytes.NewReader(b), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("iter %d: decode %s: %v", i, m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("iter %d: round trip mismatch for %s:\nsent %#v\ngot  %#v", i, m.Type(), m, got)
		}
		stream.Write(b)
		sent = append(sent, m)
	}
	// The concatenated stream decodes back message by message.
	rd := bytes.NewReader(stream.Bytes())
	for i, m := range sent {
		got, err := ReadFrame(rd, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("stream msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("stream msg %d mismatch", i)
		}
	}
	if _, err := ReadFrame(rd, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("stream tail: want io.EOF, got %v", err)
	}
}

// TestFrameTruncated: EOF inside the header or the body is a typed
// truncation error, never a silent io.EOF.
func TestFrameTruncated(t *testing.T) {
	b, err := EncodeFrame(&SubmitJob{ReqID: 9, Tenant: "t", Script: "LinregDS", Size: "S"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		_, err := ReadFrame(bytes.NewReader(b[:cut]), 0)
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut %d/%d: want ErrTruncatedFrame, got %v", cut, len(b), err)
		}
	}
}

// TestFrameOversized: a length field above the maximum is rejected before
// the body is read, on both the read and the write side.
func TestFrameOversized(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 1<<24)
	hdr[4] = byte(TypePing)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: want ErrFrameTooLarge, got %v", err)
	}
	big := &SubmitJob{Source: string(make([]byte, 4096))}
	if _, err := EncodeFrame(big, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("encode: want ErrFrameTooLarge, got %v", err)
	}
}

// TestFrameGarbage: zero-length frames, unknown types, short payloads, and
// trailing garbage are all typed malformed-frame errors.
func TestFrameGarbage(t *testing.T) {
	zero := make([]byte, 4)
	if _, err := ReadFrame(bytes.NewReader(zero), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero length: want ErrMalformed, got %v", err)
	}

	unknown := []byte{0, 0, 0, 1, 0xEE}
	if _, err := ReadFrame(bytes.NewReader(unknown), 0); !errors.Is(err, ErrUnknownMessage) {
		t.Fatalf("unknown type: want ErrUnknownMessage, got %v", err)
	}

	// A Ping payload needs 8 bytes; give it 2.
	short := []byte{0, 0, 0, 3, byte(TypePing), 1, 2}
	if _, err := ReadFrame(bytes.NewReader(short), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short payload: want ErrMalformed, got %v", err)
	}

	// A valid Ping with trailing garbage in the same frame.
	long := []byte{0, 0, 0, 11, byte(TypePing), 0, 0, 0, 0, 0, 0, 0, 7, 0xAA, 0xBB}
	if _, err := ReadFrame(bytes.NewReader(long), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing bytes: want ErrMalformed, got %v", err)
	}

	// A string length that overruns the frame.
	e := &encoder{}
	e.u64(1)              // ReqID of an ErrorFrame
	e.u16(1)              // code
	e.u32(1 << 30)        // declared string length far past the payload
	e.b = append(e.b, 'x')
	frame := append([]byte{0, 0, 0, 0, byte(TypeError)}, e.b...)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if _, err := ReadFrame(bytes.NewReader(frame), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overrun string: want ErrMalformed, got %v", err)
	}

	// Seeded random garbage bodies with plausible headers must never panic
	// and must always produce a typed error or a valid message.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(64)
		body := make([]byte, n)
		r.Read(body)
		frame := make([]byte, 4+n)
		binary.BigEndian.PutUint32(frame[:4], uint32(n))
		copy(frame[4:], body)
		_, err := ReadFrame(bytes.NewReader(frame), 0)
		if err != nil && !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrUnknownMessage) {
			t.Fatalf("iter %d: unexpected error class: %v", i, err)
		}
	}
}

// TestErrorFrameTyped: error frames map back onto the typed sentinel
// errors clients branch on.
func TestErrorFrameTyped(t *testing.T) {
	over := &ErrorFrame{Code: CodeOverloaded, Msg: "inflight cap"}
	if !errors.Is(over.Err(), ErrOverloaded) {
		t.Fatalf("CodeOverloaded not ErrOverloaded: %v", over.Err())
	}
	ver := &ErrorFrame{Code: CodeVersionMismatch, Msg: "want 1"}
	if !errors.Is(ver.Err(), ErrVersionMismatch) {
		t.Fatalf("CodeVersionMismatch not ErrVersionMismatch: %v", ver.Err())
	}
	other := &ErrorFrame{Code: CodeUnknownJob, Msg: "job 99"}
	if other.Err() == nil || errors.Is(other.Err(), ErrOverloaded) {
		t.Fatalf("unexpected mapping: %v", other.Err())
	}
	if got := fmt.Sprintf("%v", other.Err()); got == "" {
		t.Fatal("empty error text")
	}
}
