// The daemon: a TCP front-end over the sequencer. Each accepted
// connection becomes a session holding one slot in a fixed-size pool;
// sessions speak the length-prefixed binary protocol, are closed after an
// idle timeout, and shed — with a typed Error frame, never a dropped
// connection — when the pool, the byte-rate bucket, or the inflight-jobs
// cap says no. Shutdown drains gracefully: the listener closes, live jobs
// run to completion, results stream out, and the final deterministic
// report plus the recorded op log become available to the caller.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"elasticml/internal/obs"
	"elasticml/internal/workload"
)

// ServerConfig tunes the daemon. Zero values pick the documented defaults.
type ServerConfig struct {
	// MaxSessions is the fixed session-pool size (default 16). A
	// connection beyond the pool is answered with CodeOverloaded and
	// closed after the reply is written.
	MaxSessions int
	// IdleTimeout closes sessions with no inbound frame for this long
	// (default 2 minutes).
	IdleTimeout time.Duration
	// MaxFrame bounds inbound and outbound frames (default DefaultMaxFrame).
	MaxFrame uint32
	// Limiter configures the byte-rate and inflight-jobs guards.
	Limiter LimiterPolicy
	// Name is the server identity advertised in HelloAck.
	Name string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Name == "" {
		c.Name = "elasticml"
	}
	return c
}

// Server accepts sessions and routes their requests into the sequencer.
type Server struct {
	cfg ServerConfig
	seq *Sequencer
	lim *Limiter
	met *obs.Metrics

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool

	slots chan struct{}
	wg    sync.WaitGroup
}

// NewServer wraps a sequencer in a daemon. met may be nil.
func NewServer(seq *Sequencer, cfg ServerConfig, met *obs.Metrics) *Server {
	cfg = cfg.withDefaults()
	if cfg.Limiter.MaxFrame <= 0 {
		// The limiter must always be able to admit the largest frame this
		// server will actually accept on the wire.
		cfg.Limiter.MaxFrame = float64(cfg.MaxFrame)
	}
	return &Server{
		cfg:      cfg,
		seq:      seq,
		lim:      NewLimiter(cfg.Limiter, nil),
		met:      met,
		sessions: map[*session]struct{}{},
		slots:    make(chan struct{}, cfg.MaxSessions),
	}
}

// Serve runs the accept loop until the listener closes (via Shutdown).
// It always returns a non-nil error; after Shutdown it is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.met.Add("server.conns.accepted", 1)
		select {
		case s.slots <- struct{}{}:
		default:
			// Pool exhausted: shed with a typed frame, then close. The
			// write has a short deadline so a stalled peer cannot pin us.
			s.met.Add("server.conns.shed", 1)
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			WriteFrame(conn, &ErrorFrame{Code: CodeOverloaded, Msg: "session pool exhausted"}, s.cfg.MaxFrame)
			conn.Close()
			continue
		}
		sess := &session{srv: s, conn: conn}
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.met.SetGauge("server.sessions.active", float64(len(s.slots)))
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
			<-s.slots
			s.met.SetGauge("server.sessions.active", float64(len(s.slots)))
		}()
	}
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Shutdown drains gracefully: stop accepting, wait (up to timeout) for
// inflight jobs to reach terminal states with results streamed out, then
// drain the sequencer and close every session. It returns the final
// deterministic report.
func (s *Server) Shutdown(timeout time.Duration) *workload.Report {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for s.lim.Inflight() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rep := s.seq.Drain()
	s.mu.Lock()
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return rep
}

// Log returns the recorded op history; only valid after Shutdown.
func (s *Server) Log() *RecordLog { return s.seq.Log() }

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// session is one pooled connection.
type session struct {
	srv  *Server
	conn net.Conn
	wmu  sync.Mutex // serializes frames: handler goroutine + result callbacks
}

// write sends one frame under the session write lock.
func (ss *session) write(m Message) error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	ss.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return WriteFrame(ss.conn, m, ss.srv.cfg.MaxFrame)
}

// run drives one session: handshake, then the request loop.
func (ss *session) run() {
	defer ss.conn.Close()
	s := ss.srv
	cr := &countingReader{r: ss.conn}

	// Handshake: the first frame must be a compatible Hello.
	ss.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	first, err := ReadFrame(cr, s.cfg.MaxFrame)
	if err != nil {
		ss.replyReadError(err)
		return
	}
	hello, ok := first.(*Hello)
	if !ok {
		ss.write(&ErrorFrame{Code: CodeBadRequest, Msg: fmt.Sprintf("expected Hello, got %s", first.Type())})
		return
	}
	if hello.Version != ProtoVersion {
		s.met.Add("server.handshake.version_mismatch", 1)
		ss.write(&ErrorFrame{Code: CodeVersionMismatch,
			Msg: fmt.Sprintf("server speaks version %d, client sent %d", ProtoVersion, hello.Version)})
		return
	}
	if err := ss.write(&HelloAck{Version: ProtoVersion, Server: s.cfg.Name, MaxFrame: s.cfg.MaxFrame}); err != nil {
		return
	}
	s.met.Add("server.handshake.ok", 1)

	for {
		ss.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		before := cr.n
		m, err := ReadFrame(cr, s.cfg.MaxFrame)
		if err != nil {
			ss.replyReadError(err)
			return
		}
		frameBytes := int(cr.n - before)
		s.met.Add("server.frames.in", 1)
		s.met.Add("server.bytes.in", int64(frameBytes))

		if !s.lim.AllowBytes(frameBytes) {
			// Byte-rate shed: typed frame, session stays open.
			s.met.Add("server.shed.bytes", 1)
			if ss.write(&ErrorFrame{ReqID: reqIDOf(m), Code: CodeOverloaded, Msg: "byte-rate limit"}) != nil {
				return
			}
			continue
		}
		start := time.Now()
		if !ss.dispatch(m) {
			return
		}
		s.met.Observe("server.request.ms", float64(time.Since(start).Milliseconds()))
	}
}

// replyReadError answers a broken inbound stream. Framing violations get a
// final typed Error frame before the close; clean EOF and timeouts close
// silently.
func (ss *session) replyReadError(err error) {
	switch {
	case err == io.EOF:
	case errors.Is(err, os.ErrDeadlineExceeded):
		ss.srv.met.Add("server.sessions.idle_closed", 1)
	case errors.Is(err, ErrFrameTooLarge):
		ss.srv.met.Add("server.frames.bad", 1)
		ss.write(&ErrorFrame{Code: CodeBadRequest, Msg: err.Error()})
	case errors.Is(err, ErrMalformed), errors.Is(err, ErrUnknownMessage), errors.Is(err, ErrTruncatedFrame):
		ss.srv.met.Add("server.frames.bad", 1)
		ss.write(&ErrorFrame{Code: CodeBadRequest, Msg: err.Error()})
	}
}

// dispatch handles one request frame; false closes the session.
func (ss *session) dispatch(m Message) bool {
	s := ss.srv
	switch m := m.(type) {
	case *Ping:
		return ss.write(&Pong{ReqID: m.ReqID}) == nil
	case *SubmitJob:
		return ss.submit(m)
	case *JobStatus:
		state, res, ok, err := s.seq.Status(int(m.Job))
		if err != nil {
			return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: CodeShuttingDown, Msg: err.Error()}) == nil
		}
		if !ok {
			return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: CodeUnknownJob, Msg: fmt.Sprintf("job %d", m.Job)}) == nil
		}
		return ss.write(&JobStatusAck{
			ReqID: m.ReqID, Job: m.Job, State: state, Tenant: res.Tenant,
			Arrival: res.Arrival, Admitted: res.Admitted, Finished: res.Finished,
		}) == nil
	case *CancelJob:
		ok, err := s.seq.Cancel(int(m.Job))
		if err != nil {
			return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: CodeShuttingDown, Msg: err.Error()}) == nil
		}
		s.met.Add("server.jobs.canceled", boolToInt(ok))
		return ss.write(&CancelAck{ReqID: m.ReqID, Job: m.Job, OK: ok}) == nil
	case *MetricsRequest:
		return ss.write(&MetricsFrame{ReqID: m.ReqID, Snapshot: s.met.Snapshot()}) == nil
	default:
		// A server-to-client frame arriving inbound is a protocol abuse.
		return ss.write(&ErrorFrame{ReqID: reqIDOf(m), Code: CodeBadRequest,
			Msg: fmt.Sprintf("unexpected %s frame", m.Type())}) == nil
	}
}

// submit admits one job through the limiter and sequencer; the result
// streams back asynchronously on this session when the job turns terminal.
func (ss *session) submit(m *SubmitJob) bool {
	s := ss.srv
	if s.isDraining() {
		return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: CodeShuttingDown, Msg: "server draining"}) == nil
	}
	if !s.lim.AcquireJob() {
		s.met.Add("server.shed.inflight", 1)
		return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: CodeOverloaded, Msg: "inflight job cap"}) == nil
	}
	spec := JobSpecWire{
		Tenant: m.Tenant, Script: m.Script, Size: m.Size, Cols: m.Cols,
		Sparsity: m.Sparsity, Source: m.Source, Params: m.Params,
	}
	submitted := time.Now()
	job, arrival, err := s.seq.Submit(spec, func(idx int, res workload.TenantResult) {
		s.lim.ReleaseJob()
		s.met.Add("server.jobs.completed", 1)
		s.met.Observe("server.job.wall_ms", float64(time.Since(submitted).Milliseconds()))
		s.met.SetGauge("server.jobs.inflight", float64(s.lim.Inflight()))
		ss.write(resultFrame(idx, res))
	})
	if err != nil {
		s.lim.ReleaseJob()
		code := CodeBadRequest
		if s.isDraining() {
			code = CodeShuttingDown
		}
		return ss.write(&ErrorFrame{ReqID: m.ReqID, Code: code, Msg: err.Error()}) == nil
	}
	s.met.Add("server.jobs.submitted", 1)
	s.met.SetGauge("server.jobs.inflight", float64(s.lim.Inflight()))
	return ss.write(&JobAccepted{ReqID: m.ReqID, Job: uint32(job), Arrival: arrival}) == nil
}

// resultFrame converts a terminal tenant result into its wire form.
func resultFrame(job int, res workload.TenantResult) *JobResult {
	var fl ResultFlags
	if res.Served {
		fl |= FlagServed
	}
	if res.CacheHit {
		fl |= FlagCacheHit
	}
	if res.Degraded || res.BreakerDegraded {
		fl |= FlagDegraded
	}
	if res.Shed {
		fl |= FlagShed
	}
	if res.FailedPermanently {
		fl |= FlagFailedPerm
	}
	if res.Canceled {
		fl |= FlagCanceled
	}
	return &JobResult{
		Job:    uint32(job),
		Tenant: res.Tenant, Program: res.Program, Config: res.Config, Flags: fl,
		Arrival: res.Arrival, Admitted: res.Admitted, Finished: res.Finished,
		QueueDelay: res.QueueDelay, Latency: res.Latency, WastedWork: res.WastedWork,
		Reopts: uint32(res.Reopts), Requeues: uint32(res.Requeues),
		OutputHash: res.OutputHash, Error: res.Error,
	}
}

// reqIDOf extracts a frame's request id (0 for the handshake frames and
// JobResult, which correlate by other means).
func reqIDOf(m Message) uint64 {
	switch m := m.(type) {
	case *SubmitJob:
		return m.ReqID
	case *JobAccepted:
		return m.ReqID
	case *JobStatus:
		return m.ReqID
	case *JobStatusAck:
		return m.ReqID
	case *CancelJob:
		return m.ReqID
	case *CancelAck:
		return m.ReqID
	case *MetricsRequest:
		return m.ReqID
	case *MetricsFrame:
		return m.ReqID
	case *Ping:
		return m.ReqID
	case *Pong:
		return m.ReqID
	case *ErrorFrame:
		return m.ReqID
	}
	return 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// countingReader counts bytes consumed, so the byte-rate bucket charges
// exact wire sizes (header included).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
