// The sequencer is the bridge between wall-clock clients and the
// deterministic discrete-event core: a single goroutine owns the
// workload.Service, assigns every submission a monotone *simulated* arrival
// time, and advances the event loop one batch at a time between operations.
//
// Determinism argument: the service's state is a pure function of the
// operation history — the ordered list of (submit spec, assigned arrival)
// and cancel operations, each tagged with the number of event batches
// processed before it. Wall-clock timing only influences *which* history
// gets recorded (how far the loop ran between ops); replaying a recorded
// history through a fresh service — same ops, same arrival times, same
// step counts — reproduces byte-identical reports and traces. Assigned
// arrivals never precede the simulation frontier, so the event loop never
// travels backwards.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/mr"
	"elasticml/internal/scripts"
	"elasticml/internal/workload"
)

// DefaultGap is the simulated seconds between consecutive assigned
// arrivals when the cluster is saturated (the frontier is behind the
// arrival chain). Small enough that bursts contend, large enough that
// reports print distinct times.
const DefaultGap = 0.01

// JobSpecWire is the serializable job description carried by SubmitJob
// frames and recorded in the op log. Script-mode jobs name an evaluation
// script plus a data scenario; source-mode jobs carry raw DML.
type JobSpecWire struct {
	Tenant   string  `json:"tenant"`
	Script   string  `json:"script,omitempty"`
	Size     string  `json:"size,omitempty"`
	Cols     int64   `json:"cols,omitempty"`
	Sparsity float64 `json:"sparsity,omitempty"`
	Source   string  `json:"source,omitempty"`
	Params   []Param `json:"params,omitempty"`
}

// toJobSpec converts the wire form into a service JobSpec. The conversion
// is deterministic: live submission and replay build identical specs.
func (w JobSpecWire) toJobSpec(arrival float64) (workload.JobSpec, error) {
	spec := workload.JobSpec{Tenant: w.Tenant, Arrival: arrival}
	if w.Script == "" {
		if w.Source == "" {
			return spec, fmt.Errorf("job %q: neither script nor source", w.Tenant)
		}
		spec.Source = w.Source
		if len(w.Params) > 0 {
			params := make(map[string]interface{}, len(w.Params))
			for _, p := range w.Params {
				switch p.Kind {
				case ParamFloat:
					params[p.Key] = p.F
				case ParamInt:
					params[p.Key] = p.I
				case ParamString:
					params[p.Key] = p.S
				case ParamBool:
					params[p.Key] = p.B
				default:
					return spec, fmt.Errorf("job %q: bad param kind %d", w.Tenant, p.Kind)
				}
			}
			spec.Params = params
		}
		return spec, nil
	}
	sc, ok := scripts.ByName(w.Script)
	if !ok {
		return spec, fmt.Errorf("job %q: unknown script %q", w.Tenant, w.Script)
	}
	spec.Script = sc
	size := w.Size
	if size == "" {
		size = "S"
	}
	cols := w.Cols
	if cols == 0 {
		cols = 1000
	}
	sparsity := w.Sparsity
	if sparsity == 0 {
		sparsity = 1.0
	}
	scen, err := datagen.Parse(size, cols, sparsity)
	if err != nil {
		return spec, fmt.Errorf("job %q: %w", w.Tenant, err)
	}
	spec.Scenario = scen
	return spec, nil
}

// Op is one recorded sequencer operation. Steps is the cumulative count of
// event batches the sequencer had processed when the op was applied — the
// exact interleaving needed to replay the run.
type Op struct {
	Kind    string       `json:"kind"` // "submit" | "cancel"
	Steps   int          `json:"steps"`
	Job     int          `json:"job"`
	Arrival float64      `json:"arrival,omitempty"`
	Spec    *JobSpecWire `json:"spec,omitempty"`
}

// OptionsWire is the serializable subset of workload.Options recorded in a
// RecordLog (everything except the tracer).
type OptionsWire struct {
	Workers       int                  `json:"workers,omitempty"`
	CacheEntries  int                  `json:"cache_entries,omitempty"`
	Points        int                  `json:"points,omitempty"`
	OptCharge     float64              `json:"opt_charge,omitempty"`
	HitCharge     float64              `json:"hit_charge,omitempty"`
	ReoptCharge   float64              `json:"reopt_charge,omitempty"`
	RequeueCharge float64              `json:"requeue_charge,omitempty"`
	NodeFailures  []fault.NodeFailure  `json:"node_failures,omitempty"`
	Chaos         fault.ChaosPlan      `json:"chaos,omitempty"`
	Recovery      workload.RecoveryPolicy `json:"recovery,omitempty"`
	Breaker       workload.BreakerPolicy  `json:"breaker,omitempty"`
	TaskPolicy    mr.TaskPolicy        `json:"task_policy,omitempty"`
	SimTableCols  int64                `json:"sim_table_cols,omitempty"`
}

func optionsToWire(o workload.Options) OptionsWire {
	return OptionsWire{
		Workers: o.Workers, CacheEntries: o.CacheEntries, Points: o.Points,
		OptCharge: o.OptCharge, HitCharge: o.HitCharge,
		ReoptCharge: o.ReoptCharge, RequeueCharge: o.RequeueCharge,
		NodeFailures: o.NodeFailures, Chaos: o.Chaos,
		Recovery: o.Recovery, Breaker: o.Breaker,
		TaskPolicy: o.TaskPolicy, SimTableCols: o.SimTableCols,
	}
}

func (w OptionsWire) toOptions() workload.Options {
	return workload.Options{
		Workers: w.Workers, CacheEntries: w.CacheEntries, Points: w.Points,
		OptCharge: w.OptCharge, HitCharge: w.HitCharge,
		ReoptCharge: w.ReoptCharge, RequeueCharge: w.RequeueCharge,
		NodeFailures: w.NodeFailures, Chaos: w.Chaos,
		Recovery: w.Recovery, Breaker: w.Breaker,
		TaskPolicy: w.TaskPolicy, SimTableCols: w.SimTableCols,
	}
}

// RecordLog is a complete, self-contained recording of one live run: the
// cluster, the service options, the arrival gap, and the operation
// history. Replay() turns it back into the identical report.
type RecordLog struct {
	Cluster conf.Cluster `json:"cluster"`
	Options OptionsWire  `json:"options"`
	Gap     float64      `json:"gap"`
	Ops     []Op         `json:"ops"`
}

// WriteJSON marshals the log with stable formatting.
func (l *RecordLog) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadRecordLog parses a recorded op log.
func ReadRecordLog(r io.Reader) (*RecordLog, error) {
	var l RecordLog
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("record log: %w", err)
	}
	return &l, nil
}

// seqOp is one request into the sequencer goroutine.
type seqOp struct {
	kind     string // "submit" | "cancel" | "status"
	spec     JobSpecWire
	job      int
	onResult func(int, workload.TenantResult)
	reply    chan seqReply
}

type seqReply struct {
	job     int
	arrival float64
	state   string
	result  workload.TenantResult
	ok      bool
	err     error
}

// Sequencer owns a live workload.Service and serializes all access to it.
type Sequencer struct {
	svc *workload.Service
	gap float64

	ops  chan seqOp
	done chan struct{}

	mu     sync.Mutex
	closed bool

	// Goroutine-local state (only the run loop touches these until done is
	// closed; Log/FinalReport read them after).
	log         RecordLog
	steps       int
	lastArrival float64
	subs        map[int]func(int, workload.TenantResult)
	report      *workload.Report
}

// NewSequencer starts the sequencer goroutine over a fresh service. Chaos
// (if any is configured) is scheduled before the first submission, so a
// replay can do the same.
func NewSequencer(cc conf.Cluster, o workload.Options, gap float64) (*Sequencer, error) {
	if gap <= 0 {
		gap = DefaultGap
	}
	svc, err := workload.New(cc, o)
	if err != nil {
		return nil, err
	}
	svc.ScheduleChaos()
	s := &Sequencer{
		svc:         svc,
		gap:         gap,
		ops:         make(chan seqOp, 256),
		done:        make(chan struct{}),
		lastArrival: -gap,
		subs:        map[int]func(int, workload.TenantResult){},
		log: RecordLog{
			Cluster: cc,
			Options: optionsToWire(o),
			Gap:     gap,
		},
	}
	go s.run()
	return s, nil
}

// run is the sequencer goroutine: ingest pending ops first (they are cheap
// and assign arrival times), otherwise advance the event loop one batch,
// otherwise block for work.
func (s *Sequencer) run() {
	defer close(s.done)
	for {
		select {
		case op, ok := <-s.ops:
			if !ok {
				s.drain()
				return
			}
			s.apply(op)
			continue
		default:
		}
		if s.svc.Step() {
			s.steps++
			s.deliver()
			continue
		}
		op, ok := <-s.ops
		if !ok {
			s.drain()
			return
		}
		s.apply(op)
	}
}

// apply executes one op against the service.
func (s *Sequencer) apply(op seqOp) {
	switch op.kind {
	case "submit":
		at := s.svc.Frontier()
		if min := s.lastArrival + s.gap; min > at {
			at = min
		}
		spec, err := op.spec.toJobSpec(at)
		if err != nil {
			op.reply <- seqReply{err: err}
			return
		}
		idx, err := s.svc.Submit(spec)
		if err != nil {
			op.reply <- seqReply{err: err}
			return
		}
		s.lastArrival = at
		wire := op.spec
		s.log.Ops = append(s.log.Ops, Op{
			Kind: "submit", Steps: s.steps, Job: idx, Arrival: at, Spec: &wire,
		})
		if op.onResult != nil {
			s.subs[idx] = op.onResult
		}
		op.reply <- seqReply{job: idx, arrival: at}
	case "cancel":
		s.log.Ops = append(s.log.Ops, Op{Kind: "cancel", Steps: s.steps, Job: op.job})
		ok := s.svc.Cancel(op.job)
		op.reply <- seqReply{job: op.job, ok: ok}
		s.deliver()
	case "status":
		res, ok := s.svc.Result(op.job)
		state, _ := s.svc.State(op.job)
		op.reply <- seqReply{job: op.job, state: state, result: res, ok: ok}
	}
}

// deliver streams freshly terminal results to their subscribers.
func (s *Sequencer) deliver() {
	for _, idx := range s.svc.DrainFinished() {
		cb := s.subs[idx]
		if cb == nil {
			continue
		}
		delete(s.subs, idx)
		if res, ok := s.svc.Result(idx); ok {
			cb(idx, res)
		}
	}
}

// drain runs the event loop to quiescence, finalizes the report, and
// notifies the remaining subscribers (unserved jobs included).
func (s *Sequencer) drain() {
	for s.svc.Step() {
		s.steps++
		s.deliver()
	}
	s.report = s.svc.Finalize()
	s.deliver()
}

// send enqueues one op, failing fast once the sequencer is draining.
func (s *Sequencer) send(op seqOp) (seqReply, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return seqReply{}, fmt.Errorf("sequencer: shutting down")
	}
	s.ops <- op
	s.mu.Unlock()
	return <-op.reply, nil
}

// Submit sequences one submission and returns the assigned job id and
// simulated arrival time. onResult (optional) fires exactly once from the
// sequencer goroutine — with the job id and terminal result — when the
// job reaches a terminal state, possibly before Submit itself returns.
func (s *Sequencer) Submit(spec JobSpecWire, onResult func(int, workload.TenantResult)) (int, float64, error) {
	rep, err := s.send(seqOp{kind: "submit", spec: spec, onResult: onResult, reply: make(chan seqReply, 1)})
	if err != nil {
		return 0, 0, err
	}
	if rep.err != nil {
		return 0, 0, rep.err
	}
	return rep.job, rep.arrival, nil
}

// Cancel sequences a cancellation; ok is false if the job was unknown or
// already terminal.
func (s *Sequencer) Cancel(job int) (bool, error) {
	rep, err := s.send(seqOp{kind: "cancel", job: job, reply: make(chan seqReply, 1)})
	if err != nil {
		return false, err
	}
	return rep.ok, nil
}

// Status returns a job's current state name and result copy.
func (s *Sequencer) Status(job int) (string, workload.TenantResult, bool, error) {
	rep, err := s.send(seqOp{kind: "status", job: job, reply: make(chan seqReply, 1)})
	if err != nil {
		return "", workload.TenantResult{}, false, err
	}
	return rep.state, rep.result, rep.ok, nil
}

// Drain stops accepting operations, runs the event loop dry, and returns
// the final report. Safe to call once; concurrent submitters get a
// shutting-down error.
func (s *Sequencer) Drain() *workload.Report {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ops)
	}
	s.mu.Unlock()
	<-s.done
	return s.report
}

// Log returns the recorded operation history. Only valid after Drain.
func (s *Sequencer) Log() *RecordLog {
	<-s.done
	l := s.log
	return &l
}

// Replay reproduces a recorded run: same cluster, options, arrival times,
// and op/step interleaving — byte-identical report by construction.
func Replay(l *RecordLog) (*workload.Report, error) {
	svc, err := workload.New(l.Cluster, l.Options.toOptions())
	if err != nil {
		return nil, err
	}
	svc.ScheduleChaos()
	steps := 0
	for i, op := range l.Ops {
		for steps < op.Steps {
			if !svc.Step() {
				return nil, fmt.Errorf("replay: op %d expects %d steps, event queue drained at %d", i, op.Steps, steps)
			}
			steps++
		}
		switch op.Kind {
		case "submit":
			if op.Spec == nil {
				return nil, fmt.Errorf("replay: op %d: submit without spec", i)
			}
			spec, err := op.Spec.toJobSpec(op.Arrival)
			if err != nil {
				return nil, fmt.Errorf("replay: op %d: %w", i, err)
			}
			idx, err := svc.Submit(spec)
			if err != nil {
				return nil, fmt.Errorf("replay: op %d: %w", i, err)
			}
			if idx != op.Job {
				return nil, fmt.Errorf("replay: op %d: job index %d, recorded %d", i, idx, op.Job)
			}
		case "cancel":
			svc.Cancel(op.Job)
		default:
			return nil, fmt.Errorf("replay: op %d: unknown kind %q", i, op.Kind)
		}
	}
	for svc.Step() {
	}
	return svc.Finalize(), nil
}
