// The load generator drives a running daemon over N concurrent sessions
// with a seeded request mix — submits, status probes, cancels, and pings —
// in either closed-loop (next request after the previous reply) or
// open-loop (fixed per-session pacing) mode, and reports wall-clock
// request latency percentiles plus shed/error counts. It is both the
// engine behind cmd/elastic-load and the harness the e2e test uses to
// push ≥10k requests through the server.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Addr is the daemon's TCP address.
	Addr string
	// Sessions is the concurrent connection count (default 4).
	Sessions int
	// Requests is the total request budget across all sessions
	// (default 1000).
	Requests int
	// RatePerSec paces each session open-loop; 0 runs closed-loop.
	RatePerSec float64
	// Tenants is the tenant name pool size (default 8).
	Tenants int
	// Seed drives the per-session request mix.
	Seed int64
	// SubmitEvery makes one request in N a job submission; the rest are
	// pings and status probes (default 10). 1 submits on every request.
	SubmitEvery int
	// CancelFraction cancels roughly one in N accepted jobs (default 16;
	// 0 disables cancels).
	CancelFraction int
	// WaitResults blocks at the end until every accepted job's result
	// frame has arrived.
	WaitResults bool
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.SubmitEvery <= 0 {
		c.SubmitEvery = 10
	}
	if c.CancelFraction == 0 {
		c.CancelFraction = 16
	}
	return c
}

// LoadStats summarizes one run.
type LoadStats struct {
	Requests int `json:"requests"`
	Pings    int `json:"pings"`
	Statuses int `json:"statuses"`
	Submits  int `json:"submits"`
	Cancels  int `json:"cancels"`

	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	Results  int `json:"results"`

	Elapsed time.Duration `json:"elapsed"`
	P50     time.Duration `json:"p50"`
	P95     time.Duration `json:"p95"`
	P99     time.Duration `json:"p99"`
	Max     time.Duration `json:"max"`
}

// String renders the human-readable summary cmd/elastic-load prints.
func (s *LoadStats) String() string {
	return fmt.Sprintf(
		"requests %d (ping %d, status %d, submit %d, cancel %d) in %v\n"+
			"accepted %d  shed %d  errors %d  results %d\n"+
			"latency p50 %v  p95 %v  p99 %v  max %v",
		s.Requests, s.Pings, s.Statuses, s.Submits, s.Cancels, s.Elapsed.Round(time.Millisecond),
		s.Accepted, s.Shed, s.Errors, s.Results,
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// loadScripts is the request-mix script pool (cheap XS scenarios keep the
// simulated work per submission small).
var loadScripts = []string{"LinregDS", "LinregCG", "L2SVM"}

// RunLoad executes one load run and merges per-session stats.
func RunLoad(cfg LoadConfig) (*LoadStats, error) {
	cfg = cfg.withDefaults()
	per := cfg.Requests / cfg.Sessions
	extra := cfg.Requests % cfg.Sessions

	type sessOut struct {
		stats LoadStats
		lats  []time.Duration
		err   error
	}
	outs := make([]sessOut, cfg.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		n := per
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			outs[i].stats, outs[i].lats, outs[i].err = runSession(cfg, i, n)
		}(i, n)
	}
	wg.Wait()

	total := &LoadStats{}
	var lats []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("session %d: %w", i, outs[i].err)
		}
		o := &outs[i].stats
		total.Requests += o.Requests
		total.Pings += o.Pings
		total.Statuses += o.Statuses
		total.Submits += o.Submits
		total.Cancels += o.Cancels
		total.Accepted += o.Accepted
		total.Shed += o.Shed
		total.Errors += o.Errors
		total.Results += o.Results
		lats = append(lats, outs[i].lats...)
	}
	total.Elapsed = time.Since(start)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	if n := len(lats); n > 0 {
		total.P50 = lats[n/2]
		total.P95 = lats[n*95/100]
		total.P99 = lats[n*99/100]
		total.Max = lats[n-1]
	}
	return total, nil
}

// runSession drives one connection through its request budget.
func runSession(cfg LoadConfig, idx, budget int) (LoadStats, []time.Duration, error) {
	var st LoadStats
	cl, err := Dial(cfg.Addr)
	if err != nil {
		return st, nil, err
	}
	defer cl.Close()

	r := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
	lats := make([]time.Duration, 0, budget)
	var jobs []uint32
	var pendingResults []<-chan *JobResult
	var tick <-chan time.Time
	if cfg.RatePerSec > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.RatePerSec))
		defer t.Stop()
		tick = t.C
	}

	for i := 0; i < budget; i++ {
		if tick != nil {
			<-tick
		}
		start := time.Now()
		switch {
		case i%cfg.SubmitEvery == 0:
			st.Submits++
			spec := JobSpecWire{
				Tenant:   fmt.Sprintf("t%d", r.Intn(cfg.Tenants)),
				Script:   loadScripts[r.Intn(len(loadScripts))],
				Size:     "XS",
				Cols:     int64(50 + r.Intn(100)),
				Sparsity: 1.0,
			}
			job, _, resCh, err := cl.Submit(spec)
			switch {
			case err == nil:
				st.Accepted++
				jobs = append(jobs, job)
				pendingResults = append(pendingResults, resCh)
				if cfg.CancelFraction > 0 && r.Intn(cfg.CancelFraction) == 0 {
					st.Cancels++
					st.Requests++
					if _, err := cl.Cancel(job); err != nil {
						st.Errors++
					}
				}
			case errors.Is(err, ErrOverloaded):
				st.Shed++
			default:
				st.Errors++
			}
		case len(jobs) > 0 && i%3 == 0:
			st.Statuses++
			if _, err := cl.Status(jobs[r.Intn(len(jobs))]); err != nil && !errors.Is(err, ErrOverloaded) {
				st.Errors++
			} else if errors.Is(err, ErrOverloaded) {
				st.Shed++
			}
		default:
			st.Pings++
			if err := cl.Ping(); err != nil {
				if errors.Is(err, ErrOverloaded) {
					st.Shed++
				} else {
					st.Errors++
				}
			}
		}
		st.Requests++
		lats = append(lats, time.Since(start))
	}

	if cfg.WaitResults {
		for _, ch := range pendingResults {
			if res, ok := <-ch; ok && res != nil {
				st.Results++
			}
		}
	}
	return st, lats, nil
}
