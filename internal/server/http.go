// The HTTP sidecar exposes operational visibility next to the binary
// protocol port: Prometheus-style metrics at /metrics and the standard
// pprof endpoints under /debug/pprof/. It deliberately shares nothing
// with the wire protocol — a scrape can never consume a session slot.
package server

import (
	"net/http"
	"net/http/pprof"

	"elasticml/internal/obs"
)

// NewHTTPHandler builds the sidecar mux over a live metrics registry.
func NewHTTPHandler(met *obs.Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		met.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
