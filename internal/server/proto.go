// Wire protocol of the elastic optimizer daemon: a compact length-prefixed
// binary framing with typed messages.
//
// Frame layout (network byte order / big endian):
//
//	+----------------+--------+----------------------+
//	| u32 length     | u8 type| payload (length-1 B) |
//	+----------------+--------+----------------------+
//
// length counts the type byte plus the payload, so the smallest legal
// frame is length 1 (a bare type with no payload). Frames above the
// negotiated maximum are rejected with ErrFrameTooLarge before any payload
// is read; a reader that hits EOF mid-frame surfaces ErrTruncatedFrame.
// Payload fields are fixed-width big-endian integers, IEEE-754 bit
// patterns for floats, and u32-length-prefixed UTF-8 for strings.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"elasticml/internal/obs"
)

// ProtoVersion is the protocol version this build speaks. Hello carries the
// client's version; the server rejects mismatches with a typed error frame
// before any other traffic.
const ProtoVersion uint16 = 1

// DefaultMaxFrame bounds a frame's length field (type byte + payload).
const DefaultMaxFrame = 1 << 20

// Typed protocol errors. Framing errors (too large, truncated, garbage)
// are connection-fatal; ErrVersionMismatch is returned by the handshake.
var (
	ErrFrameTooLarge   = errors.New("proto: frame exceeds maximum size")
	ErrTruncatedFrame  = errors.New("proto: truncated frame")
	ErrUnknownMessage  = errors.New("proto: unknown message type")
	ErrMalformed       = errors.New("proto: malformed payload")
	ErrVersionMismatch = errors.New("proto: protocol version mismatch")
	// ErrOverloaded is the typed shed condition: the admission limiter (or
	// session pool) rejected the request. It surfaces on the wire as an
	// Error frame with CodeOverloaded — never as a dropped connection.
	ErrOverloaded = errors.New("server: overloaded, request shed")
)

// MsgType tags a frame.
type MsgType uint8

// The protocol's message types.
const (
	TypeHello MsgType = iota + 1
	TypeHelloAck
	TypeSubmitJob
	TypeJobAccepted
	TypeJobStatus
	TypeJobStatusAck
	TypeJobResult
	TypeCancelJob
	TypeCancelAck
	TypeMetricsRequest
	TypeMetricsSnapshot
	TypePing
	TypePong
	TypeError
	typeMax // one past the last valid type
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeHelloAck:
		return "HelloAck"
	case TypeSubmitJob:
		return "SubmitJob"
	case TypeJobAccepted:
		return "JobAccepted"
	case TypeJobStatus:
		return "JobStatus"
	case TypeJobStatusAck:
		return "JobStatusAck"
	case TypeJobResult:
		return "JobResult"
	case TypeCancelJob:
		return "CancelJob"
	case TypeCancelAck:
		return "CancelAck"
	case TypeMetricsRequest:
		return "MetricsRequest"
	case TypeMetricsSnapshot:
		return "MetricsSnapshot"
	case TypePing:
		return "Ping"
	case TypePong:
		return "Pong"
	case TypeError:
		return "Error"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// ErrCode classifies an Error frame.
type ErrCode uint16

const (
	CodeOverloaded ErrCode = iota + 1
	CodeBadRequest
	CodeUnknownJob
	CodeShuttingDown
	CodeVersionMismatch
	CodeInternal
)

func (c ErrCode) String() string {
	switch c {
	case CodeOverloaded:
		return "overloaded"
	case CodeBadRequest:
		return "bad-request"
	case CodeUnknownJob:
		return "unknown-job"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeVersionMismatch:
		return "version-mismatch"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// Message is one decoded protocol message.
type Message interface {
	Type() MsgType
	encode(*encoder)
	decode(*decoder)
}

// Hello opens a session (client → server).
type Hello struct {
	Version uint16
	Client  string
}

// HelloAck accepts a session (server → client) and advertises the frame
// budget the server enforces.
type HelloAck struct {
	Version  uint16
	Server   string
	MaxFrame uint32
}

// ParamKind tags a SubmitJob parameter value.
type ParamKind uint8

const (
	ParamFloat ParamKind = iota
	ParamInt
	ParamString
	ParamBool
)

// Param is one named DML parameter of a source-mode submission.
type Param struct {
	Key  string
	Kind ParamKind
	F    float64
	I    int64
	S    string
	B    bool
}

// SubmitJob submits one DML job (client → server). Script-mode submissions
// name an evaluation script plus a data scenario; source-mode submissions
// (Script == "") carry raw DML source and typed parameters.
type SubmitJob struct {
	ReqID    uint64
	Tenant   string
	Script   string
	Size     string
	Cols     int64
	Sparsity float64
	Source   string
	Params   []Param
}

// JobAccepted acknowledges a submission (server → client) with the job id
// and the simulated arrival time the sequencer assigned.
type JobAccepted struct {
	ReqID   uint64
	Job     uint32
	Arrival float64
}

// JobStatus queries one job's lifecycle state (client → server).
type JobStatus struct {
	ReqID uint64
	Job   uint32
}

// JobStatusAck answers a status query (server → client).
type JobStatusAck struct {
	ReqID    uint64
	Job      uint32
	State    string
	Tenant   string
	Arrival  float64
	Admitted float64
	Finished float64
}

// ResultFlags pack a JobResult's booleans.
type ResultFlags uint8

const (
	FlagServed ResultFlags = 1 << iota
	FlagCacheHit
	FlagDegraded
	FlagShed
	FlagFailedPerm
	FlagCanceled
)

// JobResult streams a terminal job outcome (server → client) with the
// cost/plan summary. All times are simulated seconds.
type JobResult struct {
	Job        uint32
	Tenant     string
	Program    string
	Config     string
	Flags      ResultFlags
	Arrival    float64
	Admitted   float64
	Finished   float64
	QueueDelay float64
	Latency    float64
	WastedWork float64
	Reopts     uint32
	Requeues   uint32
	OutputHash string
	Error      string
}

// CancelJob requests termination of a submitted job (client → server).
type CancelJob struct {
	ReqID uint64
	Job   uint32
}

// CancelAck answers a cancellation (server → client); OK is false when the
// job was already terminal.
type CancelAck struct {
	ReqID uint64
	Job   uint32
	OK    bool
}

// MetricsRequest asks for a live metrics snapshot (client → server).
type MetricsRequest struct {
	ReqID uint64
}

// MetricsFrame carries a sorted, deterministic metrics snapshot
// (server → client).
type MetricsFrame struct {
	ReqID    uint64
	Snapshot obs.MetricsSnapshot
}

// Ping / Pong are the liveness probe pair.
type Ping struct{ ReqID uint64 }
type Pong struct{ ReqID uint64 }

// ErrorFrame reports a per-request failure (server → client). The session
// stays open: protocol-level sheds and rejections are frames, not
// connection drops.
type ErrorFrame struct {
	ReqID uint64
	Code  ErrCode
	Msg   string
}

func (e *ErrorFrame) Err() error {
	base := error(nil)
	switch e.Code {
	case CodeOverloaded:
		base = ErrOverloaded
	case CodeVersionMismatch:
		base = ErrVersionMismatch
	}
	if base != nil {
		return fmt.Errorf("%w: %s", base, e.Msg)
	}
	return fmt.Errorf("server: %s: %s", e.Code, e.Msg)
}

func (m *Hello) Type() MsgType          { return TypeHello }
func (m *HelloAck) Type() MsgType       { return TypeHelloAck }
func (m *SubmitJob) Type() MsgType      { return TypeSubmitJob }
func (m *JobAccepted) Type() MsgType    { return TypeJobAccepted }
func (m *JobStatus) Type() MsgType      { return TypeJobStatus }
func (m *JobStatusAck) Type() MsgType   { return TypeJobStatusAck }
func (m *JobResult) Type() MsgType      { return TypeJobResult }
func (m *CancelJob) Type() MsgType      { return TypeCancelJob }
func (m *CancelAck) Type() MsgType      { return TypeCancelAck }
func (m *MetricsRequest) Type() MsgType { return TypeMetricsRequest }
func (m *MetricsFrame) Type() MsgType   { return TypeMetricsSnapshot }
func (m *Ping) Type() MsgType           { return TypePing }
func (m *Pong) Type() MsgType           { return TypePong }
func (m *ErrorFrame) Type() MsgType     { return TypeError }

// newMessage allocates the zero message for a frame type.
func newMessage(t MsgType) (Message, bool) {
	switch t {
	case TypeHello:
		return &Hello{}, true
	case TypeHelloAck:
		return &HelloAck{}, true
	case TypeSubmitJob:
		return &SubmitJob{}, true
	case TypeJobAccepted:
		return &JobAccepted{}, true
	case TypeJobStatus:
		return &JobStatus{}, true
	case TypeJobStatusAck:
		return &JobStatusAck{}, true
	case TypeJobResult:
		return &JobResult{}, true
	case TypeCancelJob:
		return &CancelJob{}, true
	case TypeCancelAck:
		return &CancelAck{}, true
	case TypeMetricsRequest:
		return &MetricsRequest{}, true
	case TypeMetricsSnapshot:
		return &MetricsFrame{}, true
	case TypePing:
		return &Ping{}, true
	case TypePong:
		return &Pong{}, true
	case TypeError:
		return &ErrorFrame{}, true
	}
	return nil, false
}

// --- encoder / decoder -------------------------------------------------

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// decoder reads payload fields, latching the first error; every getter is
// safe to call after a failure and returns the zero value.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *decoder) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint16(s)
}
func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}
func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}
func (d *decoder) i64() int64    { return int64(d.u64()) }
func (d *decoder) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *decoder) boolean() bool { return d.u8() != 0 }
func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	return string(d.take(int(n)))
}

// done rejects trailing garbage after a fully decoded payload.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return nil
}

// --- per-message payloads ----------------------------------------------

func (m *Hello) encode(e *encoder) {
	e.u16(m.Version)
	e.str(m.Client)
}
func (m *Hello) decode(d *decoder) {
	m.Version = d.u16()
	m.Client = d.str()
}

func (m *HelloAck) encode(e *encoder) {
	e.u16(m.Version)
	e.str(m.Server)
	e.u32(m.MaxFrame)
}
func (m *HelloAck) decode(d *decoder) {
	m.Version = d.u16()
	m.Server = d.str()
	m.MaxFrame = d.u32()
}

func (m *SubmitJob) encode(e *encoder) {
	e.u64(m.ReqID)
	e.str(m.Tenant)
	e.str(m.Script)
	e.str(m.Size)
	e.i64(m.Cols)
	e.f64(m.Sparsity)
	e.str(m.Source)
	e.u32(uint32(len(m.Params)))
	for _, p := range m.Params {
		e.str(p.Key)
		e.u8(uint8(p.Kind))
		switch p.Kind {
		case ParamFloat:
			e.f64(p.F)
		case ParamInt:
			e.i64(p.I)
		case ParamString:
			e.str(p.S)
		case ParamBool:
			e.boolean(p.B)
		}
	}
}
func (m *SubmitJob) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Tenant = d.str()
	m.Script = d.str()
	m.Size = d.str()
	m.Cols = d.i64()
	m.Sparsity = d.f64()
	m.Source = d.str()
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	if n > 0 {
		m.Params = make([]Param, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		var p Param
		p.Key = d.str()
		p.Kind = ParamKind(d.u8())
		switch p.Kind {
		case ParamFloat:
			p.F = d.f64()
		case ParamInt:
			p.I = d.i64()
		case ParamString:
			p.S = d.str()
		case ParamBool:
			p.B = d.boolean()
		default:
			d.fail()
		}
		m.Params = append(m.Params, p)
	}
}

func (m *JobAccepted) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(m.Job)
	e.f64(m.Arrival)
}
func (m *JobAccepted) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Job = d.u32()
	m.Arrival = d.f64()
}

func (m *JobStatus) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(m.Job)
}
func (m *JobStatus) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Job = d.u32()
}

func (m *JobStatusAck) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(m.Job)
	e.str(m.State)
	e.str(m.Tenant)
	e.f64(m.Arrival)
	e.f64(m.Admitted)
	e.f64(m.Finished)
}
func (m *JobStatusAck) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Job = d.u32()
	m.State = d.str()
	m.Tenant = d.str()
	m.Arrival = d.f64()
	m.Admitted = d.f64()
	m.Finished = d.f64()
}

func (m *JobResult) encode(e *encoder) {
	e.u32(m.Job)
	e.str(m.Tenant)
	e.str(m.Program)
	e.str(m.Config)
	e.u8(uint8(m.Flags))
	e.f64(m.Arrival)
	e.f64(m.Admitted)
	e.f64(m.Finished)
	e.f64(m.QueueDelay)
	e.f64(m.Latency)
	e.f64(m.WastedWork)
	e.u32(m.Reopts)
	e.u32(m.Requeues)
	e.str(m.OutputHash)
	e.str(m.Error)
}
func (m *JobResult) decode(d *decoder) {
	m.Job = d.u32()
	m.Tenant = d.str()
	m.Program = d.str()
	m.Config = d.str()
	m.Flags = ResultFlags(d.u8())
	m.Arrival = d.f64()
	m.Admitted = d.f64()
	m.Finished = d.f64()
	m.QueueDelay = d.f64()
	m.Latency = d.f64()
	m.WastedWork = d.f64()
	m.Reopts = d.u32()
	m.Requeues = d.u32()
	m.OutputHash = d.str()
	m.Error = d.str()
}

func (m *CancelJob) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(m.Job)
}
func (m *CancelJob) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Job = d.u32()
}

func (m *CancelAck) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(m.Job)
	e.boolean(m.OK)
}
func (m *CancelAck) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Job = d.u32()
	m.OK = d.boolean()
}

func (m *MetricsRequest) encode(e *encoder) { e.u64(m.ReqID) }
func (m *MetricsRequest) decode(d *decoder) { m.ReqID = d.u64() }

func (m *MetricsFrame) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u32(uint32(len(m.Snapshot.Counters)))
	for _, c := range m.Snapshot.Counters {
		e.str(c.Name)
		e.i64(c.Value)
	}
	e.u32(uint32(len(m.Snapshot.Gauges)))
	for _, g := range m.Snapshot.Gauges {
		e.str(g.Name)
		e.f64(g.Value)
	}
	e.u32(uint32(len(m.Snapshot.Hists)))
	for _, hp := range m.Snapshot.Hists {
		e.str(hp.Name)
		e.i64(hp.Hist.Count)
		e.f64(hp.Hist.Sum)
		e.f64(hp.Hist.Min)
		e.f64(hp.Hist.Max)
		e.u8(uint8(len(hp.Hist.Buckets)))
		for _, b := range hp.Hist.Buckets {
			e.i64(b)
		}
	}
}
func (m *MetricsFrame) decode(d *decoder) {
	m.ReqID = d.u64()
	nc := d.u32()
	if d.err != nil || uint64(nc) > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	for i := uint32(0); i < nc && d.err == nil; i++ {
		m.Snapshot.Counters = append(m.Snapshot.Counters,
			obs.CounterPoint{Name: d.str(), Value: d.i64()})
	}
	ng := d.u32()
	if d.err != nil || uint64(ng) > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	for i := uint32(0); i < ng && d.err == nil; i++ {
		m.Snapshot.Gauges = append(m.Snapshot.Gauges,
			obs.GaugePoint{Name: d.str(), Value: d.f64()})
	}
	nh := d.u32()
	if d.err != nil || uint64(nh) > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	for i := uint32(0); i < nh && d.err == nil; i++ {
		var hp obs.HistPoint
		hp.Name = d.str()
		hp.Hist.Count = d.i64()
		hp.Hist.Sum = d.f64()
		hp.Hist.Min = d.f64()
		hp.Hist.Max = d.f64()
		nb := int(d.u8())
		if nb != len(hp.Hist.Buckets) {
			d.fail()
			return
		}
		for k := 0; k < nb && d.err == nil; k++ {
			hp.Hist.Buckets[k] = d.i64()
		}
		m.Snapshot.Hists = append(m.Snapshot.Hists, hp)
	}
}

func (m *Ping) encode(e *encoder) { e.u64(m.ReqID) }
func (m *Ping) decode(d *decoder) { m.ReqID = d.u64() }
func (m *Pong) encode(e *encoder) { e.u64(m.ReqID) }
func (m *Pong) decode(d *decoder) { m.ReqID = d.u64() }

func (m *ErrorFrame) encode(e *encoder) {
	e.u64(m.ReqID)
	e.u16(uint16(m.Code))
	e.str(m.Msg)
}
func (m *ErrorFrame) decode(d *decoder) {
	m.ReqID = d.u64()
	m.Code = ErrCode(d.u16())
	m.Msg = d.str()
}

// --- frame I/O ----------------------------------------------------------

// EncodeFrame serializes a message into a complete frame (header included).
func EncodeFrame(m Message, maxFrame uint32) ([]byte, error) {
	e := &encoder{b: make([]byte, 5, 64)}
	e.b[4] = byte(m.Type())
	m.encode(e)
	length := uint32(len(e.b) - 4)
	if maxFrame > 0 && length > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, maxFrame)
	}
	binary.BigEndian.PutUint32(e.b[:4], length)
	return e.b, nil
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, m Message, maxFrame uint32) error {
	b, err := EncodeFrame(m, maxFrame)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads and decodes one frame. maxFrame == 0 means
// DefaultMaxFrame. Returns io.EOF only on a clean EOF at a frame boundary;
// EOF inside a frame is ErrTruncatedFrame.
func ReadFrame(r io.Reader, maxFrame uint32) (Message, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncatedFrame
		}
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if length > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, maxFrame)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, ErrTruncatedFrame
	}
	t := MsgType(body[0])
	m, ok := newMessage(t)
	if !ok {
		return nil, fmt.Errorf("%w: type %d", ErrUnknownMessage, uint8(t))
	}
	d := &decoder{b: body[1:]}
	m.decode(d)
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("%s: %w", t, err)
	}
	return m, nil
}
