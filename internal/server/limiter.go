// The admission limiter is the daemon's first line of defense, sitting in
// front of the workload circuit breaker: a token-bucket byte-rate guard
// sheds sessions that pump frames faster than the configured budget, and
// an inflight-jobs cap bounds how many submissions may be live in the
// simulator at once. Both shed with the typed ErrOverloaded condition —
// surfaced on the wire as an Error frame, never as a dropped connection —
// so a client can distinguish back-pressure from failure and retry later.
// Jobs that pass the limiter can still be shed by the per-run circuit
// breaker inside the workload service (breaker=shed); the limiter guards
// the daemon, the breaker guards the simulated cluster.
package server

import (
	"sync"
	"time"
)

// LimiterPolicy configures the admission limiter. Zero values disable the
// corresponding guard.
type LimiterPolicy struct {
	// BytesPerSec refills the token bucket; a session stream above this
	// sustained rate is shed. 0 disables byte-rate limiting.
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// Burst is the bucket capacity in bytes. Defaults to one second's
	// refill, and is always raised to at least MaxFrame so a single
	// max-size frame fits: a smaller bucket would shed such a frame
	// forever, since no amount of idle refill can exceed the capacity.
	Burst float64 `json:"burst,omitempty"`
	// MaxFrame is the largest frame the bucket must be able to admit (the
	// wire frame bound of the server the limiter fronts). Defaults to
	// DefaultMaxFrame.
	MaxFrame float64 `json:"max_frame,omitempty"`
	// MaxInflight bounds concurrently live (submitted, not yet terminal)
	// jobs across all sessions. 0 disables the cap.
	MaxInflight int `json:"max_inflight,omitempty"`
}

// Limiter composes the token bucket and the inflight cap. All methods are
// safe for concurrent use; a nil Limiter admits everything.
type Limiter struct {
	mu     sync.Mutex
	policy LimiterPolicy

	tokens float64
	last   time.Time
	now    func() time.Time

	inflight int
}

// NewLimiter builds a limiter; now (optional) injects a clock for tests.
func NewLimiter(p LimiterPolicy, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	if p.MaxFrame <= 0 {
		p.MaxFrame = DefaultMaxFrame
	}
	if p.BytesPerSec > 0 {
		if p.Burst <= 0 {
			p.Burst = p.BytesPerSec
		}
		// Clamp explicit bursts too: a bucket smaller than the largest legal
		// frame would make that frame permanently inadmissible — AllowBytes
		// could never accumulate enough tokens no matter how long the
		// session idles.
		if p.Burst < p.MaxFrame {
			p.Burst = p.MaxFrame
		}
	}
	return &Limiter{policy: p, tokens: p.Burst, last: now(), now: now}
}

// AllowBytes charges n bytes against the token bucket and reports whether
// the frame is admitted. A shed frame is not charged.
func (l *Limiter) AllowBytes(n int) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy.BytesPerSec <= 0 {
		return true
	}
	t := l.now()
	if dt := t.Sub(l.last).Seconds(); dt > 0 {
		l.tokens += dt * l.policy.BytesPerSec
		if l.tokens > l.policy.Burst {
			l.tokens = l.policy.Burst
		}
	}
	l.last = t
	if float64(n) > l.tokens {
		return false
	}
	l.tokens -= float64(n)
	return true
}

// AcquireJob claims one inflight-job slot; the caller must ReleaseJob once
// the job reaches a terminal state.
func (l *Limiter) AcquireJob() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.policy.MaxInflight > 0 && l.inflight >= l.policy.MaxInflight {
		return false
	}
	l.inflight++
	return true
}

// ReleaseJob returns an inflight-job slot.
func (l *Limiter) ReleaseJob() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.inflight > 0 {
		l.inflight--
	}
	l.mu.Unlock()
}

// Inflight reports the live job count (for metrics).
func (l *Limiter) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}
