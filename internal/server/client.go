// Client is the Go-side counterpart of the daemon: it dials, performs the
// Hello handshake, and multiplexes request/reply pairs plus asynchronous
// JobResult frames over one connection. All methods are safe for
// concurrent use; a background read loop routes replies by request id and
// results by job id.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"elasticml/internal/obs"
)

// Client speaks the wire protocol over one session.
type Client struct {
	conn     net.Conn
	maxFrame uint32

	wmu sync.Mutex // serializes outbound frames

	mu      sync.Mutex
	nextReq uint64
	pending map[uint64]chan Message
	results map[uint32]chan *JobResult
	// orphans parks JobResult frames that arrive between the JobAccepted
	// ack being routed and Submit registering its result channel.
	orphans map[uint32]*JobResult
	readErr error
	closed  bool
}

// DialTimeout is the default handshake and RPC deadline.
const DialTimeout = 30 * time.Second

// Dial connects and performs the handshake. Overload (full session pool)
// and version mismatch surface as the typed ErrOverloaded and
// ErrVersionMismatch errors.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(DialTimeout))
	if err := WriteFrame(conn, &Hello{Version: ProtoVersion, Client: "elasticml-client"}, DefaultMaxFrame); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := ReadFrame(conn, DefaultMaxFrame)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	switch reply := reply.(type) {
	case *HelloAck:
		if reply.Version != ProtoVersion {
			conn.Close()
			return nil, fmt.Errorf("%w: server acked version %d", ErrVersionMismatch, reply.Version)
		}
		conn.SetDeadline(time.Time{})
		c := &Client{
			conn:     conn,
			maxFrame: reply.MaxFrame,
			pending:  map[uint64]chan Message{},
			results:  map[uint32]chan *JobResult{},
			orphans:  map[uint32]*JobResult{},
		}
		go c.readLoop()
		return c, nil
	case *ErrorFrame:
		conn.Close()
		return nil, reply.Err()
	default:
		conn.Close()
		return nil, fmt.Errorf("handshake: unexpected %s frame", reply.Type())
	}
}

// readLoop routes inbound frames until the connection dies.
func (c *Client) readLoop() {
	for {
		m, err := ReadFrame(c.conn, c.maxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		switch m := m.(type) {
		case *JobResult:
			c.mu.Lock()
			ch := c.results[m.Job]
			if ch == nil {
				c.orphans[m.Job] = m
			} else {
				delete(c.results, m.Job)
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		default:
			id := reqIDOf(m)
			c.mu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
}

// fail poisons every waiter with the terminal read error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		if c.closed {
			err = errors.New("client: closed")
		}
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	for job, ch := range c.results {
		delete(c.results, job)
		close(ch)
	}
}

// rpc sends one request and waits for its reply frame.
func (c *Client) rpc(build func(reqID uint64) Message) (Message, error) {
	ch := make(chan Message, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextReq++
	id := c.nextReq
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(DialTimeout))
	err := WriteFrame(c.conn, build(id), c.maxFrame)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	return m, nil
}

// Submit sends one job. On acceptance it returns the assigned job id, its
// simulated arrival time, and a one-shot channel delivering the terminal
// JobResult (closed instead if the connection dies first). Limiter sheds
// come back as ErrOverloaded; a draining server as a plain error.
func (c *Client) Submit(spec JobSpecWire) (uint32, float64, <-chan *JobResult, error) {
	m, err := c.rpc(func(id uint64) Message {
		return &SubmitJob{
			ReqID: id, Tenant: spec.Tenant, Script: spec.Script, Size: spec.Size,
			Cols: spec.Cols, Sparsity: spec.Sparsity, Source: spec.Source,
			Params: spec.Params,
		}
	})
	if err != nil {
		return 0, 0, nil, err
	}
	switch m := m.(type) {
	case *JobAccepted:
		ch := make(chan *JobResult, 1)
		c.mu.Lock()
		switch {
		case c.orphans[m.Job] != nil:
			ch <- c.orphans[m.Job]
			delete(c.orphans, m.Job)
		case c.readErr != nil:
			close(ch)
		default:
			c.results[m.Job] = ch
		}
		c.mu.Unlock()
		return m.Job, m.Arrival, ch, nil
	case *ErrorFrame:
		return 0, 0, nil, m.Err()
	default:
		return 0, 0, nil, fmt.Errorf("submit: unexpected %s frame", m.Type())
	}
}

// Status asks for a job's live state.
func (c *Client) Status(job uint32) (*JobStatusAck, error) {
	m, err := c.rpc(func(id uint64) Message { return &JobStatus{ReqID: id, Job: job} })
	if err != nil {
		return nil, err
	}
	switch m := m.(type) {
	case *JobStatusAck:
		return m, nil
	case *ErrorFrame:
		return nil, m.Err()
	default:
		return nil, fmt.Errorf("status: unexpected %s frame", m.Type())
	}
}

// Cancel requests a job cancellation; ok reports whether it landed before
// the job turned terminal.
func (c *Client) Cancel(job uint32) (bool, error) {
	m, err := c.rpc(func(id uint64) Message { return &CancelJob{ReqID: id, Job: job} })
	if err != nil {
		return false, err
	}
	switch m := m.(type) {
	case *CancelAck:
		return m.OK, nil
	case *ErrorFrame:
		return false, m.Err()
	default:
		return false, fmt.Errorf("cancel: unexpected %s frame", m.Type())
	}
}

// Metrics fetches a live metrics snapshot.
func (c *Client) Metrics() (obs.MetricsSnapshot, error) {
	m, err := c.rpc(func(id uint64) Message { return &MetricsRequest{ReqID: id} })
	if err != nil {
		return obs.MetricsSnapshot{}, err
	}
	switch m := m.(type) {
	case *MetricsFrame:
		return m.Snapshot, nil
	case *ErrorFrame:
		return obs.MetricsSnapshot{}, m.Err()
	default:
		return obs.MetricsSnapshot{}, fmt.Errorf("metrics: unexpected %s frame", m.Type())
	}
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	m, err := c.rpc(func(id uint64) Message { return &Ping{ReqID: id} })
	if err != nil {
		return err
	}
	switch m := m.(type) {
	case *Pong:
		return nil
	case *ErrorFrame:
		return m.Err()
	default:
		return fmt.Errorf("ping: unexpected %s frame", m.Type())
	}
}

// Close tears the session down; outstanding waiters fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
