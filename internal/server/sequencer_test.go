package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/workload"
)

func testCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	return cc
}

func reportJSON(t *testing.T, rep *workload.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("report json: %v", err)
	}
	return buf.Bytes()
}

// TestSequencerReplayIdentical: a live run with concurrent submitters and
// a cancellation replays to a byte-identical report from the recorded op
// log alone — the server-determinism property the CI gate checks.
func TestSequencerReplayIdentical(t *testing.T) {
	o := workload.DefaultOptions()
	o.Workers = 2
	seq, err := NewSequencer(testCluster(), o, 0)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	results := map[int]workload.TenantResult{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scripts := []string{"LinregDS", "LinregCG", "L2SVM"}
			for i := 0; i < 6; i++ {
				spec := JobSpecWire{
					Tenant: fmt.Sprintf("g%d-t%d", g, i),
					Script: scripts[(g+i)%len(scripts)],
					Size:   "XS", Cols: 100, Sparsity: 1.0,
				}
				job, _, err := seq.Submit(spec, func(idx int, res workload.TenantResult) {
					mu.Lock()
					results[idx] = res
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i == 3 {
					if _, err := seq.Cancel(job); err != nil {
						t.Errorf("cancel: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	live := seq.Drain()
	log := seq.Log()

	if len(log.Ops) != 4*6+4 {
		t.Fatalf("recorded %d ops, want %d", len(log.Ops), 4*6+4)
	}
	mu.Lock()
	n := len(results)
	mu.Unlock()
	if n != 24 {
		t.Fatalf("delivered %d results, want 24", n)
	}

	replayed, err := Replay(log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	a, b := reportJSON(t, live), reportJSON(t, replayed)
	if !bytes.Equal(a, b) {
		t.Fatalf("live and replayed reports differ:\n--- live ---\n%s\n--- replay ---\n%s", a, b)
	}

	// The log itself survives a JSON round trip and still replays clean.
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	log2, err := ReadRecordLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed2, err := Replay(log2)
	if err != nil {
		t.Fatalf("replay after round trip: %v", err)
	}
	if c := reportJSON(t, replayed2); !bytes.Equal(a, c) {
		t.Fatal("round-tripped log replays differently")
	}
}

// TestSequencerArrivalsMonotone: assigned simulated arrivals strictly
// increase, and never precede the frontier.
func TestSequencerArrivalsMonotone(t *testing.T) {
	seq, err := NewSequencer(testCluster(), workload.DefaultOptions(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for i := 0; i < 8; i++ {
		_, at, err := seq.Submit(JobSpecWire{Tenant: fmt.Sprintf("t%d", i), Script: "L2SVM", Size: "XS", Cols: 100}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if at <= last {
			t.Fatalf("arrival %d not monotone: %g after %g", i, at, last)
		}
		last = at
	}
	rep := seq.Drain()
	for _, tr := range rep.Tenants {
		if !tr.Served {
			t.Fatalf("tenant %s not served: %+v", tr.Tenant, tr)
		}
	}
}

// TestSequencerStatusAndCancel: status reflects lifecycle; canceling a
// finished job reports ok=false; canceled jobs carry the typed error text.
func TestSequencerStatusAndCancel(t *testing.T) {
	seq, err := NewSequencer(testCluster(), workload.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := seq.Submit(JobSpecWire{Tenant: "alpha", Script: "LinregDS", Size: "XS", Cols: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := seq.Status(job); err != nil || !ok {
		t.Fatalf("status: ok=%v err=%v", ok, err)
	}
	if _, _, ok, _ := seq.Status(99); ok {
		t.Fatal("status of unknown job reported ok")
	}

	victim, _, err := seq.Submit(JobSpecWire{Tenant: "victim", Script: "L2SVM", Size: "XS", Cols: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock timing decides whether the cancel lands before the event
	// loop finished the victim; both histories must stay self-consistent
	// (the deterministic cancel semantics are pinned by
	// TestServiceCancelStates below).
	ok, err := seq.Cancel(victim)
	if err != nil {
		t.Fatal(err)
	}
	if ok2, _ := seq.Cancel(victim); ok2 {
		t.Fatal("double cancel reported ok")
	}
	rep := seq.Drain()
	tr := rep.Tenants[victim]
	if ok {
		if !tr.Canceled || tr.Served || rep.Canceled != 1 {
			t.Fatalf("cancel acknowledged but not recorded: %+v (report canceled=%d)", tr, rep.Canceled)
		}
	} else if !tr.Served {
		t.Fatalf("cancel refused yet job not served: %+v", tr)
	}

	// After drain, everything fails fast instead of hanging.
	if _, _, err := seq.Submit(JobSpecWire{Tenant: "late", Script: "L2SVM"}, nil); err == nil {
		t.Fatal("submit after drain succeeded")
	}
}

// TestServiceCancelStates drives the workload service synchronously and
// pins the deterministic cancel semantics per lifecycle state: pending and
// queued jobs never run, a running job frees its container for the queue,
// and terminal jobs refuse cancellation.
func TestServiceCancelStates(t *testing.T) {
	svc, err := workload.New(testCluster(), workload.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleChaos()
	wire := JobSpecWire{Script: "LinregDS", Size: "XS", Cols: 100, Sparsity: 1.0}
	submit := func(tenant string, at float64) int {
		w := wire
		w.Tenant = tenant
		spec, err := w.toJobSpec(at)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	pending := submit("pending", 0)
	if !svc.Cancel(pending) {
		t.Fatal("cancel of pending job refused")
	}
	if st, _ := svc.State(pending); st != "canceled" {
		t.Fatalf("pending job state %q", st)
	}

	runner := submit("runner", 0)
	for svc.Step() {
		if st, _ := svc.State(runner); st == "running" {
			break
		}
	}
	if st, _ := svc.State(runner); st != "running" {
		t.Fatalf("runner state %q, want running", st)
	}
	if !svc.Cancel(runner) {
		t.Fatal("cancel of running job refused")
	}
	if svc.Cancel(runner) {
		t.Fatal("double cancel of running job accepted")
	}
	for svc.Step() {
	}
	rep := svc.Finalize()
	if rep.Canceled != 2 {
		t.Fatalf("report canceled=%d, want 2", rep.Canceled)
	}
	for _, tr := range rep.Tenants {
		if !tr.Canceled || tr.Served {
			t.Fatalf("tenant %s not recorded canceled: %+v", tr.Tenant, tr)
		}
		if tr.Error == "" {
			t.Fatalf("tenant %s canceled without error text", tr.Tenant)
		}
	}
}

// TestOptionsWireRoundTrip: the recorded options survive JSON and rebuild
// equal workload options.
func TestOptionsWireRoundTrip(t *testing.T) {
	o := workload.DefaultOptions()
	o.Workers = 4
	o.CacheEntries = 32
	o.Breaker = workload.DefaultBreakerPolicy()
	o.Breaker.Enabled = true
	w := optionsToWire(o)
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 OptionsWire
	if err := json.Unmarshal(b, &w2); err != nil {
		t.Fatal(err)
	}
	o2 := w2.toOptions()
	if o2.Workers != 4 || o2.CacheEntries != 32 || !o2.Breaker.Enabled {
		t.Fatalf("options lost in round trip: %+v", o2)
	}
}
