package server

import (
	"testing"
	"time"
)

// TestLimiterTokenBucket: deterministic refill behavior under a fake clock.
func TestLimiterTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := NewLimiter(LimiterPolicy{BytesPerSec: 100, Burst: 200}, clock)

	if !l.AllowBytes(200) {
		t.Fatal("full bucket refused its burst")
	}
	if l.AllowBytes(1) {
		t.Fatal("empty bucket admitted a byte")
	}
	now = now.Add(500 * time.Millisecond) // +50 tokens
	if !l.AllowBytes(50) {
		t.Fatal("refilled bucket refused 50 bytes")
	}
	if l.AllowBytes(1) {
		t.Fatal("drained bucket admitted a byte")
	}
	now = now.Add(time.Hour) // refill clamps at burst
	if l.AllowBytes(201) {
		t.Fatal("bucket exceeded its burst capacity")
	}
	if !l.AllowBytes(200) {
		t.Fatal("clamped bucket refused its burst")
	}
}

// TestLimiterInflightCap: acquire/release bookkeeping.
func TestLimiterInflightCap(t *testing.T) {
	l := NewLimiter(LimiterPolicy{MaxInflight: 2}, nil)
	if !l.AcquireJob() || !l.AcquireJob() {
		t.Fatal("cap refused jobs under the limit")
	}
	if l.AcquireJob() {
		t.Fatal("cap admitted a third job")
	}
	l.ReleaseJob()
	if !l.AcquireJob() {
		t.Fatal("released slot not reusable")
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
}

// TestLimiterDisabled: a nil limiter and a zero policy admit everything.
func TestLimiterDisabled(t *testing.T) {
	var nilL *Limiter
	if !nilL.AllowBytes(1<<30) || !nilL.AcquireJob() {
		t.Fatal("nil limiter rejected")
	}
	nilL.ReleaseJob()
	l := NewLimiter(LimiterPolicy{}, nil)
	for i := 0; i < 100; i++ {
		if !l.AllowBytes(1<<20) || !l.AcquireJob() {
			t.Fatal("zero policy rejected")
		}
	}
}
