package server

import (
	"testing"
	"time"
)

// TestLimiterTokenBucket: deterministic refill behavior under a fake clock.
// Rates sit above DefaultMaxFrame so the max-frame admissibility clamp does
// not alter the configured burst.
func TestLimiterTokenBucket(t *testing.T) {
	const rate, burst = 1 << 20, 2 << 20
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := NewLimiter(LimiterPolicy{BytesPerSec: rate, Burst: burst}, clock)

	if !l.AllowBytes(burst) {
		t.Fatal("full bucket refused its burst")
	}
	if l.AllowBytes(1) {
		t.Fatal("empty bucket admitted a byte")
	}
	now = now.Add(500 * time.Millisecond) // +rate/2 tokens
	if !l.AllowBytes(rate / 2) {
		t.Fatal("refilled bucket refused a half-second of tokens")
	}
	if l.AllowBytes(1) {
		t.Fatal("drained bucket admitted a byte")
	}
	now = now.Add(time.Hour) // refill clamps at burst
	if l.AllowBytes(burst + 1) {
		t.Fatal("bucket exceeded its burst capacity")
	}
	if !l.AllowBytes(burst) {
		t.Fatal("clamped bucket refused its burst")
	}
}

// TestLimiterMaxFrameAlwaysAdmissible pins the burst-clamp fix: an explicit
// Burst below DefaultMaxFrame used to be taken literally, so a max-size
// frame could never be admitted — the bucket capacity itself was smaller
// than the charge, no matter how long the session idled. The clamp must
// apply to explicit bursts exactly as it does to defaulted ones.
func TestLimiterMaxFrameAlwaysAdmissible(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := NewLimiter(LimiterPolicy{BytesPerSec: 10, Burst: 1}, clock)

	if !l.AllowBytes(DefaultMaxFrame) {
		t.Fatal("a max-size frame must be admissible at minimal explicit burst")
	}
	// The bucket is now empty; a long idle must refill back to a full
	// max-frame allowance (capacity clamped up, not just the initial fill).
	if l.AllowBytes(DefaultMaxFrame) {
		t.Fatal("empty bucket admitted a second max frame immediately")
	}
	now = now.Add(time.Duration(DefaultMaxFrame/10+1) * time.Second)
	if !l.AllowBytes(DefaultMaxFrame) {
		t.Fatal("refilled bucket refused a max frame")
	}
}

// TestLimiterInflightCap: acquire/release bookkeeping.
func TestLimiterInflightCap(t *testing.T) {
	l := NewLimiter(LimiterPolicy{MaxInflight: 2}, nil)
	if !l.AcquireJob() || !l.AcquireJob() {
		t.Fatal("cap refused jobs under the limit")
	}
	if l.AcquireJob() {
		t.Fatal("cap admitted a third job")
	}
	l.ReleaseJob()
	if !l.AcquireJob() {
		t.Fatal("released slot not reusable")
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
}

// TestLimiterDisabled: a nil limiter and a zero policy admit everything.
func TestLimiterDisabled(t *testing.T) {
	var nilL *Limiter
	if !nilL.AllowBytes(1<<30) || !nilL.AcquireJob() {
		t.Fatal("nil limiter rejected")
	}
	nilL.ReleaseJob()
	l := NewLimiter(LimiterPolicy{}, nil)
	for i := 0; i < 100; i++ {
		if !l.AllowBytes(1<<20) || !l.AcquireJob() {
			t.Fatal("zero policy rejected")
		}
	}
}
