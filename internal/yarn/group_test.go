package yarn

import (
	"errors"
	"testing"

	"elasticml/internal/conf"
)

// groupCluster holds two 1GB nodes: four 512MB containers total.
func groupCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 1 * conf.GB
	cc.MaxAlloc = 1 * conf.GB
	return cc
}

// TestAllocateGroupSpreadsWorstFit: group members are placed one at a time
// by the same worst-fit rule as single allocations, so a pair lands on
// different nodes of an empty cluster.
func TestAllocateGroupSpreadsWorstFit(t *testing.T) {
	rm := NewResourceManager(groupCluster())
	got, err := rm.AllocateGroup(2, 512*conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("granted %d containers, want 2", len(got))
	}
	if got[0].Node == got[1].Node {
		t.Errorf("worst-fit should spread the group, both on node %d", got[0].Node)
	}
	if got[0].ID == got[1].ID {
		t.Errorf("duplicate container IDs in one group: %v", got[0].ID)
	}
	if rm.AllocatedCount() != 2 {
		t.Errorf("allocated count %d, want 2", rm.AllocatedCount())
	}
}

// TestAllocateGroupAtomicRollback: a group that cannot be fully placed
// grants nothing — free memory, the allocation table, and the container ID
// sequence are all restored, so the failed attempt is invisible to later
// allocations.
func TestAllocateGroupAtomicRollback(t *testing.T) {
	rm := NewResourceManager(groupCluster())
	free := rm.AvailableMem()
	_, err := rm.AllocateGroup(5, 512*conf.MB) // capacity is 4
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("got %v, want ErrNoCapacity", err)
	}
	if rm.AvailableMem() != free {
		t.Errorf("rollback left free mem %v, want %v", rm.AvailableMem(), free)
	}
	if rm.AllocatedCount() != 0 {
		t.Errorf("rollback left %d containers allocated", rm.AllocatedCount())
	}
	// The ID sequence must be untouched: the next single allocation gets
	// the same ID as if the failed group had never happened.
	c, err := rm.Allocate(512 * conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != 1 {
		t.Errorf("first container after rollback has ID %d, want 1", c.ID)
	}
}

// TestAllocateGroupOfOneMatchesAllocate: n=1 must behave exactly like
// Allocate — same placement, same ID progression, same typed errors.
func TestAllocateGroupOfOneMatchesAllocate(t *testing.T) {
	a := NewResourceManager(groupCluster())
	b := NewResourceManager(groupCluster())
	ca, err := a.Allocate(512 * conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.AllocateGroup(1, 512*conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != ca {
		t.Errorf("group-of-one %+v differs from Allocate %+v", g[0], ca)
	}
	if _, err := b.AllocateGroup(1, 4*conf.GB); !errors.Is(err, ErrOverMaxAllocation) {
		t.Errorf("over-max group: got %v, want ErrOverMaxAllocation", err)
	}
	if _, err := b.AllocateGroup(0, 512*conf.MB); err == nil {
		t.Error("empty group must be rejected")
	}
}

// TestAllocateGroupSkipsFailedNodes: failed nodes hold no group members,
// and capacity lost to failures triggers the atomic rollback.
func TestAllocateGroupSkipsFailedNodes(t *testing.T) {
	rm := NewResourceManager(groupCluster())
	if _, err := rm.FailNode(1); err != nil {
		t.Fatal(err)
	}
	got, err := rm.AllocateGroup(2, 512*conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c.Node != 0 {
			t.Errorf("container placed on failed node %d", c.Node)
		}
	}
	if _, err := rm.AllocateGroup(1, 512*conf.MB); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("node 0 is full: got %v, want ErrNoCapacity", err)
	}
}

// TestFreeChunks: the grow planner's budget is the per-node sum of whole
// containers that still fit, tracking allocations, failures, and restores.
func TestFreeChunks(t *testing.T) {
	rm := NewResourceManager(groupCluster())
	if got := rm.FreeChunks(512 * conf.MB); got != 4 {
		t.Fatalf("empty cluster: %d chunks, want 4", got)
	}
	if got := rm.FreeChunks(1 * conf.KB); got != 4 {
		t.Errorf("tiny request must floor to MinAlloc: %d chunks, want 4", got)
	}
	c, err := rm.Allocate(768 * conf.MB)
	if err != nil {
		t.Fatal(err)
	}
	// 256MB left on c's node (no chunk), 1GB on the other (two chunks).
	if got := rm.FreeChunks(512 * conf.MB); got != 2 {
		t.Errorf("after alloc: %d chunks, want 2", got)
	}
	other := 1 - c.Node
	if _, err := rm.FailNode(other); err != nil {
		t.Fatal(err)
	}
	if got := rm.FreeChunks(512 * conf.MB); got != 0 {
		t.Errorf("after failure: %d chunks, want 0", got)
	}
	if err := rm.RestoreNode(other); err != nil {
		t.Fatal(err)
	}
	if got := rm.FreeChunks(512 * conf.MB); got != 2 {
		t.Errorf("after restore: %d chunks, want 2", got)
	}
}
