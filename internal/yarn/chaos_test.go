package yarn

import (
	"errors"
	"testing"

	"elasticml/internal/conf"
)

func chaosCluster(nodes int) conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = nodes
	cc.MemPerNode = 4 * conf.GB
	cc.MaxAlloc = 4 * conf.GB
	return cc
}

// TestFailNodesGroup: a correlated group loss removes every member's
// capacity atomically, kills resident containers, and delivers one
// NodeFailed event per lost node in ascending node order.
func TestFailNodesGroup(t *testing.T) {
	rm := NewResourceManager(chaosCluster(4))
	var conts []Container
	for i := 0; i < 4; i++ {
		c, err := rm.Allocate(3 * conf.GB) // worst-fit spreads one per node
		if err != nil {
			t.Fatal(err)
		}
		conts = append(conts, c)
	}
	var events []FailureEvent
	rm.Subscribe(func(ev FailureEvent) { events = append(events, ev) })

	lost, err := rm.FailNodes([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 {
		t.Fatalf("want 2 lost containers, got %d", len(lost))
	}
	if rm.LiveNodes() != 2 {
		t.Errorf("want 2 live nodes, got %d", rm.LiveNodes())
	}
	if len(events) != 2 || events[0].Kind != NodeFailed || events[1].Kind != NodeFailed {
		t.Fatalf("want 2 NodeFailed events, got %+v", events)
	}
	for _, c := range lost {
		if err := rm.Release(c.ID); !errors.Is(err, ErrUnknownContainer) {
			t.Errorf("release of group-lost container: got %v, want ErrUnknownContainer", err)
		}
	}
	// Survivors are untouched.
	for _, c := range conts {
		if c.Node == 1 || c.Node == 2 {
			continue
		}
		if err := rm.Release(c.ID); err != nil {
			t.Errorf("survivor release: %v", err)
		}
	}
}

// TestFailNodesSkipsDownAndRejectsUnknown: already-failed members are
// skipped without error; out-of-range indices fail the whole call before
// any node is touched.
func TestFailNodesSkipsDownAndRejectsUnknown(t *testing.T) {
	rm := NewResourceManager(chaosCluster(3))
	if _, err := rm.FailNode(0); err != nil {
		t.Fatal(err)
	}
	lost, err := rm.FailNodes([]int{0, 1})
	if err != nil {
		t.Fatalf("group with down member: %v", err)
	}
	if len(lost) != 0 {
		t.Errorf("no containers allocated, got %d lost", len(lost))
	}
	if rm.LiveNodes() != 1 {
		t.Errorf("want 1 live node, got %d", rm.LiveNodes())
	}
	if _, err := rm.FailNodes([]int{2, 9}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("out-of-range group: got %v, want ErrUnknownNode", err)
	}
	if rm.LiveNodes() != 1 {
		t.Errorf("rejected group still failed a node: %d live", rm.LiveNodes())
	}
}

// TestNodeSpeed: slow-node episodes are bookkept per node, notify
// subscribers with the factor, and reset when the node restores.
func TestNodeSpeed(t *testing.T) {
	rm := NewResourceManager(chaosCluster(2))
	var events []FailureEvent
	rm.Subscribe(func(ev FailureEvent) { events = append(events, ev) })

	if err := rm.SetNodeSpeed(1, 3.5); err != nil {
		t.Fatal(err)
	}
	if got := rm.NodeSpeed(1); got != 3.5 {
		t.Errorf("node speed %g, want 3.5", got)
	}
	if got := rm.NodeSpeed(0); got != 1 {
		t.Errorf("untouched node speed %g, want 1", got)
	}
	if len(events) != 1 || events[0].Kind != NodeSlowed || events[0].Factor != 3.5 {
		t.Fatalf("want one NodeSlowed{Factor:3.5}, got %+v", events)
	}

	// Idempotent set does not re-notify.
	if err := rm.SetNodeSpeed(1, 3.5); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("idempotent set notified: %+v", events)
	}

	if err := rm.SetNodeSpeed(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := rm.NodeSpeed(1); got != 1 {
		t.Errorf("recovered node speed %g, want 1", got)
	}
	if len(events) != 2 || events[1].Kind != NodeRecovered {
		t.Fatalf("want NodeRecovered, got %+v", events)
	}

	if err := rm.SetNodeSpeed(0, 0.5); err == nil {
		t.Error("factor < 1 accepted")
	}
	if err := rm.SetNodeSpeed(9, 2); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: got %v, want ErrUnknownNode", err)
	}
}

// TestRestoreResetsSpeed: a failed-and-restored NM re-registers at full
// speed — the slow episode died with the old process.
func TestRestoreResetsSpeed(t *testing.T) {
	rm := NewResourceManager(chaosCluster(2))
	if err := rm.SetNodeSpeed(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreNode(0); err != nil {
		t.Fatal(err)
	}
	if got := rm.NodeSpeed(0); got != 1 {
		t.Errorf("restored node speed %g, want 1", got)
	}
}
