package yarn

import (
	"sync"
	"testing"

	"elasticml/internal/conf"
)

// TestConcurrentAllocateRelease hammers the RM from many goroutines and
// verifies conservation of capacity (run with -race).
func TestConcurrentAllocateRelease(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	total := rm.AvailableMem()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var held []ContainerID
			for i := 0; i < 200; i++ {
				c, err := rm.Allocate(conf.Bytes(1+g%4) * conf.GB)
				if err != nil {
					// Cluster momentarily full: release what we hold.
					for _, id := range held {
						if err := rm.Release(id); err != nil {
							t.Error(err)
						}
					}
					held = held[:0]
					continue
				}
				held = append(held, c.ID)
				if len(held) > 8 {
					if err := rm.Release(held[0]); err != nil {
						t.Error(err)
					}
					held = held[1:]
				}
			}
			for _, id := range held {
				if err := rm.Release(id); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if rm.AvailableMem() != total {
		t.Errorf("capacity leaked: %v != %v", rm.AvailableMem(), total)
	}
	if rm.AllocatedCount() != 0 {
		t.Errorf("%d containers leaked", rm.AllocatedCount())
	}
}

// TestThroughputInvariants: throughput never exceeds capacity/duration and
// makespan is at least total work / capacity (property-style checks).
func TestThroughputInvariants(t *testing.T) {
	cc := conf.DefaultCluster()
	for _, users := range []int{1, 3, 7, 50, 200} {
		for _, heap := range []conf.Bytes{conf.GB, 8 * conf.GB, conf.BytesOfGB(53.3)} {
			spec := ThroughputSpec{Users: users, AppsPerUser: 5, AMHeap: heap, Duration: 30}
			res := SimulateThroughput(cc, spec)
			capacity := MaxConcurrentApps(cc, heap)
			maxRate := float64(capacity) / spec.Duration * 60
			if res.AppsPerMinute > maxRate+1e-9 {
				t.Errorf("users=%d heap=%v: rate %.2f exceeds capacity rate %.2f",
					users, heap, res.AppsPerMinute, maxRate)
			}
			if res.MaxParallel > capacity {
				t.Errorf("users=%d heap=%v: parallel %d > capacity %d",
					users, heap, res.MaxParallel, capacity)
			}
			minMakespan := float64(users*5) * spec.Duration / float64(capacity)
			if res.Makespan < minMakespan-1e-9 {
				t.Errorf("users=%d heap=%v: makespan %.1f below lower bound %.1f",
					users, heap, res.Makespan, minMakespan)
			}
		}
	}
}
