package yarn

import (
	"errors"
	"sync"
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
)

func TestFailNodeReleasesContainersAndNotifies(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	var events []FailureEvent
	rm.Subscribe(func(ev FailureEvent) { events = append(events, ev) })

	// Pin two containers per node by worst-fit spreading.
	var held []Container
	for i := 0; i < 2*cc.Nodes; i++ {
		c, err := rm.Allocate(10 * conf.GB)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		held = append(held, c)
	}
	total := rm.AvailableMem()

	lost, err := rm.FailNode(held[0].Node)
	if err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if len(lost) != 2 {
		t.Errorf("lost %d containers, want 2", len(lost))
	}
	if rm.LiveNodes() != cc.Nodes-1 {
		t.Errorf("live nodes = %d", rm.LiveNodes())
	}
	// Lost capacity: the node's full memory, minus what its two lost
	// containers had already consumed from the free pool.
	want := total - (cc.MemPerNode - 20*conf.GB)
	if rm.AvailableMem() != want {
		t.Errorf("available = %v, want %v", rm.AvailableMem(), want)
	}
	if len(events) != 1 || events[0].Kind != NodeFailed || len(events[0].Lost) != 2 {
		t.Errorf("events = %+v", events)
	}
	// Lost containers are unknown to the RM now.
	if err := rm.Release(lost[0].ID); !errors.Is(err, ErrUnknownContainer) {
		t.Errorf("release of lost container: %v", err)
	}
	// Double failure is rejected; restore brings capacity back.
	if _, err := rm.FailNode(events[0].Node); err == nil {
		t.Error("double FailNode should fail")
	}
	if err := rm.RestoreNode(events[0].Node); err != nil {
		t.Fatalf("RestoreNode: %v", err)
	}
	if rm.LiveNodes() != cc.Nodes {
		t.Errorf("live nodes after restore = %d", rm.LiveNodes())
	}
	if len(events) != 2 || events[1].Kind != NodeRestored {
		t.Errorf("restore event missing: %+v", events)
	}
	if _, err := rm.FailNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("FailNode(99): %v", err)
	}
}

func TestAllocateSkipsFailedNodes(t *testing.T) {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	rm := NewResourceManager(cc)
	if _, err := rm.FailNode(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1; i++ {
		c, err := rm.Allocate(80 * conf.GB)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if c.Node != 1 {
			t.Errorf("allocated on failed node %d", c.Node)
		}
	}
	if _, err := rm.Allocate(conf.GB); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("full cluster: %v", err)
	}
}

func TestKillContainer(t *testing.T) {
	rm := NewResourceManager(conf.DefaultCluster())
	var killed int
	rm.Subscribe(func(ev FailureEvent) {
		if ev.Kind == ContainerKilled {
			killed++
		}
	})
	c, err := rm.Allocate(4 * conf.GB)
	if err != nil {
		t.Fatal(err)
	}
	avail := rm.AvailableMem()
	if err := rm.KillContainer(c.ID); err != nil {
		t.Fatal(err)
	}
	if rm.AvailableMem() != avail+4*conf.GB {
		t.Error("kill should return the node's memory")
	}
	if killed != 1 {
		t.Errorf("kill events = %d", killed)
	}
	if err := rm.KillContainer(c.ID); !errors.Is(err, ErrUnknownContainer) {
		t.Errorf("double kill: %v", err)
	}
}

func TestAllocateWithRetryBacksOffThenTimesOut(t *testing.T) {
	cc := conf.DefaultCluster()
	cc.Nodes = 1
	rm := NewResourceManager(cc)
	if _, err := rm.Allocate(80 * conf.GB); err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{MaxAttempts: 4, Backoff: 1, Multiplier: 2, MaxBackoff: 30}
	_, waited, err := rm.AllocateWithRetry(conf.GB, pol)
	if !errors.Is(err, ErrAllocateTimeout) || !errors.Is(err, ErrNoCapacity) {
		t.Errorf("want timeout wrapping no-capacity, got %v", err)
	}
	// 3 waits: 1 + 2 + 4 simulated seconds.
	if waited != 7 {
		t.Errorf("waited %.1fs, want 7s", waited)
	}
	// Over-max requests fail fast without burning retries.
	_, waited, err = rm.AllocateWithRetry(500*conf.GB, pol)
	if !errors.Is(err, ErrOverMaxAllocation) || waited != 0 {
		t.Errorf("over-max via retry: err=%v waited=%.1f", err, waited)
	}
}

func TestAllocateWithRetrySucceedsAfterRelease(t *testing.T) {
	cc := conf.DefaultCluster()
	cc.Nodes = 1
	rm := NewResourceManager(cc)
	blocker, err := rm.Allocate(80 * conf.GB)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, _, err := rm.AllocateWithRetry(conf.GB, RetryPolicy{MaxAttempts: 1 << 20})
		if err != nil {
			t.Errorf("retry alloc: %v", err)
			return
		}
		_ = rm.Release(c.ID)
	}()
	_ = rm.Release(blocker.ID)
	<-done
}

// TestConcurrentFailureAndAllocation hammers the RM with concurrent
// allocates, releases, node failures and restores (run with -race).
func TestConcurrentFailureAndAllocation(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	rm.Subscribe(func(FailureEvent) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if c, err := rm.Allocate(conf.Bytes(1+g%3) * conf.GB); err == nil {
					_ = rm.Release(c.ID)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			node := i % cc.Nodes
			if _, err := rm.FailNode(node); err == nil {
				_ = rm.RestoreNode(node)
			}
		}
	}()
	wg.Wait()
	if rm.LiveNodes() != cc.Nodes {
		t.Errorf("live nodes = %d after restore-all", rm.LiveNodes())
	}
}

func TestThroughputWithContainerKills(t *testing.T) {
	cc := conf.DefaultCluster()
	spec := ThroughputSpec{Users: 8, AppsPerUser: 4, AMHeap: 8 * conf.GB, Duration: 30}
	clean := SimulateThroughput(cc, spec)

	spec.Faults = fault.MustInjector(fault.Plan{Seed: 11, ContainerKillProb: 0.2})
	faulty := SimulateThroughput(cc, spec)
	if faulty.Retries == 0 {
		t.Fatal("expected injected kills to cause retries")
	}
	if faulty.Makespan <= clean.Makespan {
		t.Errorf("kills should extend makespan: %.1f vs %.1f", faulty.Makespan, clean.Makespan)
	}

	// Same seed, same plan: byte-identical outcome (determinism audit).
	spec.Faults = fault.MustInjector(fault.Plan{Seed: 11, ContainerKillProb: 0.2})
	again := SimulateThroughput(cc, spec)
	if again != faulty {
		t.Errorf("same-seed reruns diverged: %+v vs %+v", again, faulty)
	}
}

func TestThroughputKillsExhaustAttempts(t *testing.T) {
	cc := conf.DefaultCluster()
	spec := ThroughputSpec{
		Users: 4, AppsPerUser: 3, AMHeap: 8 * conf.GB, Duration: 10,
		Faults:      fault.MustInjector(fault.Plan{Seed: 5, ContainerKillProb: 1.0}),
		MaxAttempts: 2,
	}
	res := SimulateThroughput(cc, spec)
	if res.Failed != spec.Users*spec.AppsPerUser {
		t.Errorf("every app should fail under p=1 kills: failed=%d", res.Failed)
	}
	if res.Retries != res.Failed {
		t.Errorf("each app retries once before failing: retries=%d failed=%d", res.Retries, res.Failed)
	}
}
