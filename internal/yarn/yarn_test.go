package yarn

import (
	"errors"
	"math"
	"strings"
	"testing"

	"elasticml/internal/conf"
)

func TestAllocateReleaseAccounting(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	total := rm.AvailableMem()
	c, err := rm.Allocate(10 * conf.GB)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if c.Mem != 10*conf.GB {
		t.Errorf("container mem = %v", c.Mem)
	}
	if rm.AvailableMem() != total-10*conf.GB {
		t.Errorf("available after alloc = %v", rm.AvailableMem())
	}
	if rm.AllocatedCount() != 1 {
		t.Errorf("allocated count = %d", rm.AllocatedCount())
	}
	if err := rm.Release(c.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if rm.AvailableMem() != total {
		t.Errorf("available after release = %v", rm.AvailableMem())
	}
	if err := rm.Release(c.ID); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("double release: got %v, want ErrUnknownContainer", err)
	}
}

func TestAllocateConstraints(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	c, err := rm.Allocate(1 * conf.KB)
	if err != nil {
		t.Fatalf("Allocate tiny: %v", err)
	}
	if c.Mem != cc.MinAlloc {
		t.Errorf("tiny request got %v, want min alloc %v", c.Mem, cc.MinAlloc)
	}
	// Over-max requests are rejected with a typed error, not clamped.
	_, err = rm.Allocate(500 * conf.GB)
	if !errors.Is(err, ErrOverMaxAllocation) {
		t.Errorf("huge request: got %v, want ErrOverMaxAllocation", err)
	}
	if err != nil && !strings.Contains(err.Error(), cc.MaxAlloc.String()) {
		t.Errorf("over-max error should name the max allocation: %v", err)
	}
}

func TestAllocateExhaustion(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	// Each node holds exactly one 80GB container.
	for i := 0; i < cc.Nodes; i++ {
		if _, err := rm.Allocate(80 * conf.GB); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := rm.Allocate(80 * conf.GB); err == nil {
		t.Fatal("expected exhaustion error")
	}
	// Small containers still fail: nodes are full.
	if _, err := rm.Allocate(512 * conf.MB); err == nil {
		t.Fatal("expected exhaustion for small alloc too")
	}
}

func TestMaxConcurrentAppsMatchesPaper(t *testing.T) {
	cc := conf.DefaultCluster()
	// Paper §5.3: 8GB CP heap -> 6*floor(80/(1.5*8)) = 36 apps;
	// 4GB -> 6*13 = 78; B-LL 53.3GB -> 6.
	if got := MaxConcurrentApps(cc, 8*conf.GB); got != 36 {
		t.Errorf("8GB: %d apps, want 36", got)
	}
	if got := MaxConcurrentApps(cc, 4*conf.GB); got != 78 {
		t.Errorf("4GB: %d apps, want 78", got)
	}
	if got := MaxConcurrentApps(cc, conf.BytesOfGB(53.3)); got != 6 {
		t.Errorf("53.3GB: %d apps, want 6", got)
	}
}

func TestThroughputSaturation(t *testing.T) {
	cc := conf.DefaultCluster()
	// B-LL-like: capacity 6 concurrent apps of 60s each.
	spec := ThroughputSpec{Users: 32, AppsPerUser: 8, AMHeap: conf.BytesOfGB(53.3), Duration: 60}
	res := SimulateThroughput(cc, spec)
	if res.MaxParallel != 6 {
		t.Errorf("MaxParallel = %d, want 6", res.MaxParallel)
	}
	// Saturated throughput = capacity / duration = 6 apps/min.
	if math.Abs(res.AppsPerMinute-6) > 0.5 {
		t.Errorf("AppsPerMinute = %.2f, want ~6", res.AppsPerMinute)
	}

	// Opt-like: capacity 36, same duration: ~6x the throughput.
	opt := SimulateThroughput(cc, ThroughputSpec{Users: 32, AppsPerUser: 8, AMHeap: 8 * conf.GB, Duration: 60})
	if opt.AppsPerMinute < 4*res.AppsPerMinute {
		t.Errorf("Opt throughput %.2f not >> B-LL %.2f", opt.AppsPerMinute, res.AppsPerMinute)
	}
}

func TestThroughputFewUsersNoDifference(t *testing.T) {
	cc := conf.DefaultCluster()
	// Paper: up to 4 users there is no difference between Opt and B-LL.
	a := SimulateThroughput(cc, ThroughputSpec{Users: 4, AppsPerUser: 8, AMHeap: conf.BytesOfGB(53.3), Duration: 60})
	b := SimulateThroughput(cc, ThroughputSpec{Users: 4, AppsPerUser: 8, AMHeap: 8 * conf.GB, Duration: 60})
	if math.Abs(a.AppsPerMinute-b.AppsPerMinute) > 1e-9 {
		t.Errorf("4 users: %.2f vs %.2f should be equal", a.AppsPerMinute, b.AppsPerMinute)
	}
}

func TestThroughputDegenerate(t *testing.T) {
	cc := conf.DefaultCluster()
	if r := SimulateThroughput(cc, ThroughputSpec{}); r.Makespan != 0 || r.AppsPerMinute != 0 {
		t.Errorf("degenerate spec should be zero: %+v", r)
	}
}

func TestAllocatePrefersEmptiestNode(t *testing.T) {
	cc := conf.DefaultCluster()
	rm := NewResourceManager(cc)
	c1, _ := rm.Allocate(40 * conf.GB)
	c2, _ := rm.Allocate(40 * conf.GB)
	if c1.Node == c2.Node {
		t.Errorf("worst-fit should spread allocations, both on node %d", c1.Node)
	}
}
