// Package yarn simulates the request-based resource negotiation framework
// the paper targets (§2.2): a per-cluster ResourceManager tracking node
// capacities and min/max allocation constraints, container allocation and
// release, NodeManager failure with container loss, and a discrete-event
// application scheduler used by the throughput experiments (Figure 12,
// Table 6).
package yarn

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/obs"
)

// Typed error conditions surfaced by the ResourceManager. Callers test
// them with errors.Is; messages carry the request-specific context.
var (
	// ErrOverMaxAllocation rejects requests exceeding the cluster's
	// maximum container allocation (real YARN throws
	// InvalidResourceRequestException rather than clamping down).
	ErrOverMaxAllocation = errors.New("yarn: request over maximum allocation")
	// ErrUnknownContainer rejects releases of container IDs the RM does
	// not track (never granted, double-released, or lost with a node).
	ErrUnknownContainer = errors.New("yarn: unknown container")
	// ErrNoCapacity means no live node can currently satisfy the request.
	ErrNoCapacity = errors.New("yarn: no node with sufficient capacity")
	// ErrAllocateTimeout means AllocateWithRetry exhausted its attempts.
	ErrAllocateTimeout = errors.New("yarn: allocation retries exhausted")
	// ErrUnknownNode rejects operations on node indices outside the
	// cluster.
	ErrUnknownNode = errors.New("yarn: unknown node")
)

// ContainerID identifies an allocated container.
type ContainerID int64

// Container is a granted resource allocation on one node.
type Container struct {
	ID   ContainerID
	Node int
	Mem  conf.Bytes
}

// EventKind classifies failure events the RM reports to applications.
type EventKind int

// Failure event kinds.
const (
	// NodeFailed: a NodeManager was lost; its containers died with it.
	NodeFailed EventKind = iota
	// NodeRestored: a failed NodeManager re-registered with full capacity.
	NodeRestored
	// ContainerKilled: a single container was killed (preemption, fault
	// injection) while its node stayed alive.
	ContainerKilled
	// NodeSlowed: a NodeManager turned into a straggler — everything
	// resident on it runs Factor times slower until a NodeRecovered event.
	NodeSlowed
	// NodeRecovered: a slowed NodeManager runs at full speed again.
	NodeRecovered
)

// FailureEvent is delivered to subscribed applications when the cluster
// loses (or regains) resources — the signal that drives container-loss
// re-optimization in the adaptation layer.
type FailureEvent struct {
	Kind EventKind
	// Node is the affected node index.
	Node int
	// Lost lists the containers that died with the event.
	Lost []Container
	// Factor is the execution slowdown of a NodeSlowed event (>= 1).
	Factor float64
}

// ResourceManager is the per-cluster daemon that schedules resource
// requests against NodeManager capacities. It is safe for concurrent use.
type ResourceManager struct {
	mu        sync.Mutex
	cc        conf.Cluster
	freeMem   []conf.Bytes
	failed    []bool
	speed     []float64 // execution slowdown per node (1 = full speed)
	nextID    ContainerID
	allocated map[ContainerID]Container
	listeners []func(FailureEvent)
	trace     *obs.Tracer
}

// SetTracer attaches an observability tracer: allocations, releases, kills
// and node failures/restores are recorded as cluster-layer instant events
// plus yarn.* counters. A nil tracer detaches.
func (rm *ResourceManager) SetTracer(tr *obs.Tracer) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.trace = tr
}

func (rm *ResourceManager) tracer() *obs.Tracer {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.trace
}

// NewResourceManager returns an RM for the given cluster configuration.
func NewResourceManager(cc conf.Cluster) *ResourceManager {
	free := make([]conf.Bytes, cc.Nodes)
	speed := make([]float64, cc.Nodes)
	for i := range free {
		free[i] = cc.MemPerNode
		speed[i] = 1
	}
	return &ResourceManager{
		cc:        cc,
		freeMem:   free,
		failed:    make([]bool, cc.Nodes),
		speed:     speed,
		allocated: make(map[ContainerID]Container),
	}
}

// Cluster returns the cluster configuration (what the resource optimizer
// obtains from the RM in step 1, paper §2.4).
func (rm *ResourceManager) Cluster() conf.Cluster { return rm.cc }

// Subscribe registers a failure-event listener. Listeners run
// synchronously, outside the RM lock, in subscription order.
func (rm *ResourceManager) Subscribe(fn func(FailureEvent)) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.listeners = append(rm.listeners, fn)
}

func (rm *ResourceManager) notify(ev FailureEvent) {
	rm.mu.Lock()
	listeners := append([]func(FailureEvent){}, rm.listeners...)
	rm.mu.Unlock()
	for _, fn := range listeners {
		fn(ev)
	}
}

// Allocate grants a container of the requested memory on the live node
// with the most free memory (worst-fit keeps large allocations feasible).
// Requests below the minimum allocation are rounded up, matching YARN's
// scheduler; requests above the maximum allocation are rejected with
// ErrOverMaxAllocation, and a momentarily full cluster yields
// ErrNoCapacity.
func (rm *ResourceManager) Allocate(mem conf.Bytes) (Container, error) {
	if mem > rm.cc.MaxAlloc {
		return Container{}, fmt.Errorf("%w: %v exceeds max allocation %v (largest grantable container)",
			ErrOverMaxAllocation, mem, rm.cc.MaxAlloc)
	}
	req := mem
	if req < rm.cc.MinAlloc {
		req = rm.cc.MinAlloc
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	best := -1
	for i, free := range rm.freeMem {
		if rm.failed[i] {
			continue
		}
		if free >= req && (best < 0 || free > rm.freeMem[best]) {
			best = i
		}
	}
	if best < 0 {
		return Container{}, fmt.Errorf("%w: need %v, max free %v", ErrNoCapacity, req, rm.maxFreeLocked())
	}
	rm.freeMem[best] -= req
	rm.nextID++
	c := Container{ID: rm.nextID, Node: best, Mem: req}
	rm.allocated[c.ID] = c
	rm.trace.Instant(obs.LayerCluster, "container.alloc",
		obs.A("id", int64(c.ID)), obs.A("node", c.Node), obs.A("mem", c.Mem.String()))
	rm.trace.Metrics().Add("yarn.allocations", 1)
	return c, nil
}

// AllocateGroup grants n containers of the requested memory atomically:
// either every container is placed (worst-fit, one at a time, so a group
// of one behaves exactly like Allocate) or none is and the cluster state —
// including the container ID sequence — is left untouched. The malleable
// workload service uses it to claim a job's full width in one step, so a
// partially granted width can never leak containers.
func (rm *ResourceManager) AllocateGroup(n int, mem conf.Bytes) ([]Container, error) {
	if n < 1 {
		return nil, fmt.Errorf("yarn: group of %d containers", n)
	}
	if mem > rm.cc.MaxAlloc {
		return nil, fmt.Errorf("%w: %v exceeds max allocation %v (largest grantable container)",
			ErrOverMaxAllocation, mem, rm.cc.MaxAlloc)
	}
	req := mem
	if req < rm.cc.MinAlloc {
		req = rm.cc.MinAlloc
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	granted := make([]Container, 0, n)
	for k := 0; k < n; k++ {
		best := -1
		for i, free := range rm.freeMem {
			if rm.failed[i] {
				continue
			}
			if free >= req && (best < 0 || free > rm.freeMem[best]) {
				best = i
			}
		}
		if best < 0 {
			// Roll back every provisional grant, restoring the ID sequence
			// so a failed group attempt is invisible to later allocations.
			for _, c := range granted {
				rm.freeMem[c.Node] += req
				delete(rm.allocated, c.ID)
			}
			rm.nextID -= ContainerID(len(granted))
			return nil, fmt.Errorf("%w: need %v, max free %v", ErrNoCapacity, req, rm.maxFreeLocked())
		}
		rm.freeMem[best] -= req
		rm.nextID++
		c := Container{ID: rm.nextID, Node: best, Mem: req}
		rm.allocated[c.ID] = c
		granted = append(granted, c)
	}
	for _, c := range granted {
		rm.trace.Instant(obs.LayerCluster, "container.alloc",
			obs.A("id", int64(c.ID)), obs.A("node", c.Node), obs.A("mem", c.Mem.String()))
		rm.trace.Metrics().Add("yarn.allocations", 1)
	}
	return granted, nil
}

// FreeChunks returns how many containers of the given size the live nodes
// could grant right now: sum over live nodes of floor(free / mem). The
// grow planner budgets opportunistic width increases against it.
func (rm *ResourceManager) FreeChunks(mem conf.Bytes) int {
	if mem < rm.cc.MinAlloc {
		mem = rm.cc.MinAlloc
	}
	if mem <= 0 {
		return 0
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n := 0
	for i, free := range rm.freeMem {
		if rm.failed[i] {
			continue
		}
		n += int(free / mem)
	}
	return n
}

// RetryPolicy configures AllocateWithRetry: exponential backoff between
// attempts in *simulated* seconds (the caller charges the returned wait
// into its simulated clock).
type RetryPolicy struct {
	// MaxAttempts bounds the allocation attempts (default 5).
	MaxAttempts int
	// Backoff is the wait after the first failed attempt (default 1s).
	Backoff float64
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// MaxBackoff caps a single wait (default 30s).
	MaxBackoff float64
}

// DefaultRetryPolicy returns the standard AM allocation retry behaviour.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, Backoff: 1, Multiplier: 2, MaxBackoff: 30}
}

func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// AllocateWithRetry attempts an allocation under the retry policy,
// backing off between attempts instead of failing permanently on a
// momentarily full cluster. It returns the granted container and the
// simulated seconds spent waiting. Permanent errors (over-max requests)
// are returned immediately; exhausted retries yield an error wrapping
// both ErrAllocateTimeout and the last allocation failure.
func (rm *ResourceManager) AllocateWithRetry(mem conf.Bytes, pol RetryPolicy) (Container, float64, error) {
	pol = pol.normalized()
	var waited float64
	backoff := pol.Backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		c, err := rm.Allocate(mem)
		if err == nil {
			return c, waited, nil
		}
		if errors.Is(err, ErrOverMaxAllocation) {
			return Container{}, waited, err
		}
		lastErr = err
		if attempt >= pol.MaxAttempts {
			return Container{}, waited, fmt.Errorf("%w after %d attempts (%.1fs simulated wait): %w",
				ErrAllocateTimeout, attempt, waited, lastErr)
		}
		waited += backoff
		backoff *= pol.Multiplier
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		// Yield so concurrently releasing goroutines can free capacity
		// (the backoff itself is simulated, not wall-clock).
		runtime.Gosched()
	}
}

func (rm *ResourceManager) maxFreeLocked() conf.Bytes {
	var m conf.Bytes
	for i, f := range rm.freeMem {
		if rm.failed[i] {
			continue
		}
		if f > m {
			m = f
		}
	}
	return m
}

// Release returns a container's resources to its node. Releasing an ID
// the RM does not track yields ErrUnknownContainer.
func (rm *ResourceManager) Release(id ContainerID) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	c, ok := rm.allocated[id]
	if !ok {
		return fmt.Errorf("%w: release of container %d", ErrUnknownContainer, id)
	}
	delete(rm.allocated, id)
	if !rm.failed[c.Node] {
		rm.freeMem[c.Node] += c.Mem
	}
	rm.trace.Instant(obs.LayerCluster, "container.release",
		obs.A("id", int64(id)), obs.A("node", c.Node))
	rm.trace.Metrics().Add("yarn.releases", 1)
	return nil
}

// FailNode marks a NodeManager as lost: its capacity disappears, every
// container on it dies, and subscribed applications receive a NodeFailed
// event listing the lost containers. Released IDs become unknown to the
// RM (a later Release returns ErrUnknownContainer, as after a real NM
// expiry).
func (rm *ResourceManager) FailNode(node int) ([]Container, error) {
	rm.mu.Lock()
	if node < 0 || node >= len(rm.freeMem) {
		rm.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, node, len(rm.freeMem))
	}
	if rm.failed[node] {
		rm.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d already failed", ErrUnknownNode, node)
	}
	rm.failed[node] = true
	rm.freeMem[node] = 0
	var lost []Container
	for id, c := range rm.allocated {
		if c.Node == node {
			lost = append(lost, c)
			delete(rm.allocated, id)
		}
	}
	rm.mu.Unlock()
	if tr := rm.tracer(); tr != nil {
		tr.Instant(obs.LayerCluster, "node.manager-fail",
			obs.A("node", node), obs.A("lost_containers", len(lost)))
		tr.Metrics().Add("yarn.node_failures", 1)
	}
	rm.notify(FailureEvent{Kind: NodeFailed, Node: node, Lost: lost})
	return lost, nil
}

// FailNodes fails a group of NodeManagers atomically — the correlated
// rack-loss primitive of the chaos layer. Capacity of every group member
// disappears in one step before any listener observes the event, so no
// subscriber can race an allocation onto a doomed sibling. Already-failed
// group members are skipped (a storm may target a down node); out-of-range
// indices yield ErrUnknownNode without failing anything. Listeners receive
// one NodeFailed event per lost node, in ascending node order.
func (rm *ResourceManager) FailNodes(nodes []int) ([]Container, error) {
	rm.mu.Lock()
	for _, node := range nodes {
		if node < 0 || node >= len(rm.freeMem) {
			rm.mu.Unlock()
			return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, node, len(rm.freeMem))
		}
	}
	var allLost []Container
	var events []FailureEvent
	for _, node := range nodes {
		if rm.failed[node] {
			continue
		}
		rm.failed[node] = true
		rm.freeMem[node] = 0
		var lost []Container
		for id, c := range rm.allocated {
			if c.Node == node {
				lost = append(lost, c)
				delete(rm.allocated, id)
			}
		}
		sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
		allLost = append(allLost, lost...)
		events = append(events, FailureEvent{Kind: NodeFailed, Node: node, Lost: lost})
	}
	rm.mu.Unlock()
	if len(events) == 0 {
		return nil, nil
	}
	if tr := rm.tracer(); tr != nil {
		tr.Instant(obs.LayerCluster, "node.group-fail",
			obs.A("nodes", len(events)), obs.A("lost_containers", len(allLost)))
		tr.Metrics().Add("yarn.node_failures", int64(len(events)))
	}
	for _, ev := range events {
		rm.notify(ev)
	}
	return allLost, nil
}

// SetNodeSpeed marks a live NodeManager as a straggler (factor > 1) or
// restores it to full speed (factor == 1), notifying subscribers with a
// NodeSlowed / NodeRecovered event. The RM only bookkeeps the factor — the
// discrete-event schedulers consuming it decide how resident work slows.
func (rm *ResourceManager) SetNodeSpeed(node int, factor float64) error {
	if factor < 1 {
		return fmt.Errorf("yarn: node speed factor %g < 1", factor)
	}
	rm.mu.Lock()
	if node < 0 || node >= len(rm.speed) {
		rm.mu.Unlock()
		return fmt.Errorf("%w: node %d of %d", ErrUnknownNode, node, len(rm.speed))
	}
	prev := rm.speed[node]
	rm.speed[node] = factor
	rm.mu.Unlock()
	if prev == factor {
		return nil
	}
	kind := NodeSlowed
	name := "node.slowed"
	if factor == 1 {
		kind = NodeRecovered
		name = "node.recovered"
	}
	if tr := rm.tracer(); tr != nil {
		tr.Instant(obs.LayerCluster, name, obs.A("node", node), obs.A("factor", factor))
		tr.Metrics().Add("yarn.node_slow_events", 1)
	}
	rm.notify(FailureEvent{Kind: kind, Node: node, Factor: factor})
	return nil
}

// NodeSpeed returns a node's current execution slowdown (1 = full speed).
func (rm *ResourceManager) NodeSpeed(node int) float64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if node < 0 || node >= len(rm.speed) {
		return 1
	}
	return rm.speed[node]
}

// RestoreNode re-registers a failed NodeManager with full, empty capacity.
func (rm *ResourceManager) RestoreNode(node int) error {
	rm.mu.Lock()
	if node < 0 || node >= len(rm.freeMem) {
		rm.mu.Unlock()
		return fmt.Errorf("%w: node %d of %d", ErrUnknownNode, node, len(rm.freeMem))
	}
	if !rm.failed[node] {
		rm.mu.Unlock()
		return fmt.Errorf("%w: node %d is not failed", ErrUnknownNode, node)
	}
	rm.failed[node] = false
	rm.freeMem[node] = rm.cc.MemPerNode
	rm.speed[node] = 1 // a re-registered NM starts at full speed
	rm.mu.Unlock()
	if tr := rm.tracer(); tr != nil {
		tr.Instant(obs.LayerCluster, "node.manager-restore", obs.A("node", node))
		tr.Metrics().Add("yarn.node_restores", 1)
	}
	rm.notify(FailureEvent{Kind: NodeRestored, Node: node})
	return nil
}

// KillContainer kills one running container in place (its node survives),
// notifying subscribers with a ContainerKilled event.
func (rm *ResourceManager) KillContainer(id ContainerID) error {
	rm.mu.Lock()
	c, ok := rm.allocated[id]
	if !ok {
		rm.mu.Unlock()
		return fmt.Errorf("%w: kill of container %d", ErrUnknownContainer, id)
	}
	delete(rm.allocated, id)
	if !rm.failed[c.Node] {
		rm.freeMem[c.Node] += c.Mem
	}
	rm.mu.Unlock()
	if tr := rm.tracer(); tr != nil {
		tr.Instant(obs.LayerCluster, "container.kill",
			obs.A("id", int64(id)), obs.A("node", c.Node))
		tr.Metrics().Add("yarn.container_kills", 1)
	}
	rm.notify(FailureEvent{Kind: ContainerKilled, Node: c.Node, Lost: []Container{c}})
	return nil
}

// LiveNodes returns the number of non-failed NodeManagers.
func (rm *ResourceManager) LiveNodes() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n := 0
	for _, f := range rm.failed {
		if !f {
			n++
		}
	}
	return n
}

// AvailableMem returns the aggregate free memory across live nodes.
func (rm *ResourceManager) AvailableMem() conf.Bytes {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var total conf.Bytes
	for i, f := range rm.freeMem {
		if rm.failed[i] {
			continue
		}
		total += f
	}
	return total
}

// MaxFreeChunk returns the largest contiguous free allocation any single
// live node can currently grant — the upper bound on the next container
// request, and the "currently free cluster slice" the workload service
// clamps per-job optimization to.
func (rm *ResourceManager) MaxFreeChunk() conf.Bytes {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.maxFreeLocked()
}

// FreeOnNode returns the free memory on one live node (0 for a failed
// node), used to decide whether a running application's container can grow
// in place.
func (rm *ResourceManager) FreeOnNode(node int) (conf.Bytes, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if node < 0 || node >= len(rm.freeMem) {
		return 0, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, node, len(rm.freeMem))
	}
	if rm.failed[node] {
		return 0, nil
	}
	return rm.freeMem[node], nil
}

// AllocatedCount returns the number of live containers.
func (rm *ResourceManager) AllocatedCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.allocated)
}

// MaxConcurrentApps returns how many applications with the given AM
// container request can run simultaneously — the application-parallelism
// arithmetic of the throughput experiment (paper §5.3):
// nodes * floor(nodeMem / containerSize).
func MaxConcurrentApps(cc conf.Cluster, amHeap conf.Bytes) int {
	per := int(cc.MemPerNode / cc.ContainerSize(amHeap))
	return per * cc.Nodes
}

// ThroughputSpec describes a multi-user throughput experiment: each of
// Users drivers submits AppsPerUser applications back-to-back; every
// application requests one AM container of AMHeap max heap (1.5x container
// request) and holds it for Duration seconds.
type ThroughputSpec struct {
	Users       int
	AppsPerUser int
	AMHeap      conf.Bytes
	Duration    float64
	// Faults, when set, samples container kills: a killed application is
	// resubmitted (another full Duration) up to MaxAttempts times before
	// counting as failed.
	Faults *fault.Injector
	// MaxAttempts bounds per-application attempts under faults
	// (default 3).
	MaxAttempts int
	// Trace, when non-nil, records one cluster-layer span per application
	// run (stamped with the discrete-event clock) and instant events for
	// injected kills.
	Trace *obs.Tracer
}

// ThroughputResult reports the simulated outcome.
type ThroughputResult struct {
	// Makespan is the total driver execution time in seconds.
	Makespan float64
	// AppsPerMinute is total applications / makespan minutes.
	AppsPerMinute float64
	// MaxParallel is the peak number of concurrently running apps.
	MaxParallel int
	// Retries counts resubmissions of killed applications.
	Retries int
	// Failed counts applications abandoned after MaxAttempts kills.
	Failed int
}

// event is a discrete-event entry: at Time, the app of user U finishes.
type event struct {
	time float64
	user int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateThroughput runs the discrete-event FIFO scheduling of the
// throughput experiment and returns the achieved throughput. Applications
// that cannot obtain a container queue in submission order; injected
// container kills resubmit the victim, extending the makespan.
func SimulateThroughput(cc conf.Cluster, spec ThroughputSpec) ThroughputResult {
	if spec.Users <= 0 || spec.AppsPerUser <= 0 || spec.Duration <= 0 {
		return ThroughputResult{}
	}
	capacity := MaxConcurrentApps(cc, spec.AMHeap)
	maxAttempts := spec.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}

	remaining := make([]int, spec.Users) // apps left per user
	attempts := make([]int, spec.Users)  // attempts of the user's current app
	retrying := make([]bool, spec.Users) // queued entry is a resubmission
	for i := range remaining {
		remaining[i] = spec.AppsPerUser
	}
	var (
		clock    float64
		running  int
		maxPar   int
		finished int
		queue    []int // user indices waiting for a container
		events   eventHeap
		res      ThroughputResult
	)
	total := spec.Users * spec.AppsPerUser

	traced := spec.Trace.SpansEnabled()
	start := func(user int, now float64) {
		if retrying[user] {
			retrying[user] = false
		} else {
			remaining[user]--
			attempts[user] = 0
		}
		running++
		if running > maxPar {
			maxPar = running
		}
		if traced {
			spec.Trace.Complete(obs.LayerCluster, "yarn.app", now, spec.Duration,
				obs.A("user", user), obs.A("attempt", attempts[user]+1))
		}
		heap.Push(&events, event{time: now + spec.Duration, user: user})
	}

	// All users submit their first app at t=0.
	for u := 0; u < spec.Users; u++ {
		if running < capacity {
			start(u, 0)
		} else {
			queue = append(queue, u)
		}
	}
	for finished < total {
		ev := heap.Pop(&events).(event)
		clock = ev.time
		running--
		killed := spec.Faults != nil && spec.Faults.ContainerKilled()
		if killed {
			if traced {
				spec.Trace.Complete(obs.LayerCluster, "yarn.app-killed", clock, 0,
					obs.A("user", ev.user), obs.A("attempt", attempts[ev.user]+1))
			}
			attempts[ev.user]++
			if attempts[ev.user] < maxAttempts {
				// Resubmit the same application (queued like any other).
				res.Retries++
				retrying[ev.user] = true
				queue = append(queue, ev.user)
			} else {
				// Abandoned: counts toward termination, not throughput.
				res.Failed++
				finished++
				if remaining[ev.user] > 0 {
					queue = append(queue, ev.user)
				}
			}
		} else {
			finished++
			// The finishing user immediately submits its next app (queued).
			if remaining[ev.user] > 0 {
				queue = append(queue, ev.user)
			}
		}
		// Admit queued apps while capacity allows.
		for len(queue) > 0 && running < capacity {
			u := queue[0]
			queue = queue[1:]
			start(u, clock)
		}
	}
	res.Makespan = clock
	res.MaxParallel = maxPar
	if clock > 0 {
		res.AppsPerMinute = float64(total) / (clock / 60)
	}
	return res
}
