// Package yarn simulates the request-based resource negotiation framework
// the paper targets (§2.2): a per-cluster ResourceManager tracking node
// capacities and min/max allocation constraints, container allocation and
// release, and a discrete-event application scheduler used by the
// throughput experiments (Figure 12, Table 6).
package yarn

import (
	"container/heap"
	"fmt"
	"sync"

	"elasticml/internal/conf"
)

// ContainerID identifies an allocated container.
type ContainerID int64

// Container is a granted resource allocation on one node.
type Container struct {
	ID   ContainerID
	Node int
	Mem  conf.Bytes
}

// ResourceManager is the per-cluster daemon that schedules resource
// requests against NodeManager capacities. It is safe for concurrent use.
type ResourceManager struct {
	mu        sync.Mutex
	cc        conf.Cluster
	freeMem   []conf.Bytes
	nextID    ContainerID
	allocated map[ContainerID]Container
}

// NewResourceManager returns an RM for the given cluster configuration.
func NewResourceManager(cc conf.Cluster) *ResourceManager {
	free := make([]conf.Bytes, cc.Nodes)
	for i := range free {
		free[i] = cc.MemPerNode
	}
	return &ResourceManager{cc: cc, freeMem: free, allocated: make(map[ContainerID]Container)}
}

// Cluster returns the cluster configuration (what the resource optimizer
// obtains from the RM in step 1, paper §2.4).
func (rm *ResourceManager) Cluster() conf.Cluster { return rm.cc }

// Allocate grants a container of the requested memory, clamped to the
// cluster's min/max allocation constraints, on the node with the most free
// memory (worst-fit keeps large allocations feasible). It returns an error
// if no node currently has capacity.
func (rm *ResourceManager) Allocate(mem conf.Bytes) (Container, error) {
	req := rm.clamp(mem)
	rm.mu.Lock()
	defer rm.mu.Unlock()
	best := -1
	for i, free := range rm.freeMem {
		if free >= req && (best < 0 || free > rm.freeMem[best]) {
			best = i
		}
	}
	if best < 0 {
		return Container{}, fmt.Errorf("yarn: no node can satisfy %v (max free %v)", req, rm.maxFreeLocked())
	}
	rm.freeMem[best] -= req
	rm.nextID++
	c := Container{ID: rm.nextID, Node: best, Mem: req}
	rm.allocated[c.ID] = c
	return c, nil
}

func (rm *ResourceManager) clamp(mem conf.Bytes) conf.Bytes {
	if mem < rm.cc.MinAlloc {
		mem = rm.cc.MinAlloc
	}
	if mem > rm.cc.MaxAlloc {
		mem = rm.cc.MaxAlloc
	}
	return mem
}

func (rm *ResourceManager) maxFreeLocked() conf.Bytes {
	var m conf.Bytes
	for _, f := range rm.freeMem {
		if f > m {
			m = f
		}
	}
	return m
}

// Release returns a container's resources to its node.
func (rm *ResourceManager) Release(id ContainerID) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	c, ok := rm.allocated[id]
	if !ok {
		return fmt.Errorf("yarn: release of unknown container %d", id)
	}
	delete(rm.allocated, id)
	rm.freeMem[c.Node] += c.Mem
	return nil
}

// AvailableMem returns the aggregate free memory across nodes.
func (rm *ResourceManager) AvailableMem() conf.Bytes {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var total conf.Bytes
	for _, f := range rm.freeMem {
		total += f
	}
	return total
}

// AllocatedCount returns the number of live containers.
func (rm *ResourceManager) AllocatedCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.allocated)
}

// MaxConcurrentApps returns how many applications with the given AM
// container request can run simultaneously — the application-parallelism
// arithmetic of the throughput experiment (paper §5.3):
// nodes * floor(nodeMem / containerSize).
func MaxConcurrentApps(cc conf.Cluster, amHeap conf.Bytes) int {
	per := int(cc.MemPerNode / cc.ContainerSize(amHeap))
	return per * cc.Nodes
}

// ThroughputSpec describes a multi-user throughput experiment: each of
// Users drivers submits AppsPerUser applications back-to-back; every
// application requests one AM container of AMHeap max heap (1.5x container
// request) and holds it for Duration seconds.
type ThroughputSpec struct {
	Users       int
	AppsPerUser int
	AMHeap      conf.Bytes
	Duration    float64
}

// ThroughputResult reports the simulated outcome.
type ThroughputResult struct {
	// Makespan is the total driver execution time in seconds.
	Makespan float64
	// AppsPerMinute is total applications / makespan minutes.
	AppsPerMinute float64
	// MaxParallel is the peak number of concurrently running apps.
	MaxParallel int
}

// event is a discrete-event entry: at Time, the app of user U finishes.
type event struct {
	time float64
	user int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateThroughput runs the discrete-event FIFO scheduling of the
// throughput experiment and returns the achieved throughput. Applications
// that cannot obtain a container queue in submission order.
func SimulateThroughput(cc conf.Cluster, spec ThroughputSpec) ThroughputResult {
	if spec.Users <= 0 || spec.AppsPerUser <= 0 || spec.Duration <= 0 {
		return ThroughputResult{}
	}
	container := cc.ContainerSize(spec.AMHeap)
	capacity := MaxConcurrentApps(cc, spec.AMHeap)
	_ = container

	remaining := make([]int, spec.Users) // apps left per user
	for i := range remaining {
		remaining[i] = spec.AppsPerUser
	}
	var (
		clock    float64
		running  int
		maxPar   int
		finished int
		queue    []int // user indices waiting for a container
		events   eventHeap
	)
	total := spec.Users * spec.AppsPerUser

	start := func(user int, now float64) {
		remaining[user]--
		running++
		if running > maxPar {
			maxPar = running
		}
		heap.Push(&events, event{time: now + spec.Duration, user: user})
	}

	// All users submit their first app at t=0.
	for u := 0; u < spec.Users; u++ {
		if running < capacity {
			start(u, 0)
		} else {
			queue = append(queue, u)
		}
	}
	for finished < total {
		ev := heap.Pop(&events).(event)
		clock = ev.time
		running--
		finished++
		// The finishing user immediately submits its next app (queued).
		if remaining[ev.user] > 0 {
			queue = append(queue, ev.user)
		}
		// Admit queued apps while capacity allows.
		for len(queue) > 0 && running < capacity {
			u := queue[0]
			queue = queue[1:]
			start(u, clock)
		}
	}
	res := ThroughputResult{Makespan: clock, MaxParallel: maxPar}
	if clock > 0 {
		res.AppsPerMinute = float64(total) / (clock / 60)
	}
	return res
}
