package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkloadSweep runs the multi-tenant sweep in quick mode and checks
// the report text plus the BENCH_workload.json artifact shape.
func TestWorkloadSweep(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	r := New(&sb)
	r.Quick = true
	r.ArtifactDir = dir
	if err := r.Workload(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tenants", "p95[s]", "hit%", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_workload.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []WorkloadRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad artifact JSON: %v", err)
	}
	// Quick mode: 2 tenant counts x 2 cache settings x {no failure, failure}.
	if len(doc.Rows) != 8 {
		t.Fatalf("want 8 sweep rows, got %d", len(doc.Rows))
	}
	sawSharedHit, sawDisabled := false, false
	for _, row := range doc.Rows {
		if row.P50Latency > row.P95Latency {
			t.Errorf("row %+v: p50 > p95", row)
		}
		if row.Utilization < 0 || row.Utilization > 1 {
			t.Errorf("row %+v: utilization out of range", row)
		}
		if row.CacheEntries >= 0 && row.HitRate > 0 {
			sawSharedHit = true
		}
		if row.CacheEntries < 0 {
			sawDisabled = true
			if row.HitRate != 0 {
				t.Errorf("disabled cache reported hit rate %v", row.HitRate)
			}
		}
		if row.NodeFailure && row.Requeues == 0 && row.Tenants >= 16 {
			t.Errorf("row %+v: node failure produced no requeues", row)
		}
	}
	if !sawSharedHit {
		t.Error("no sweep row with a shared-cache hit")
	}
	if !sawDisabled {
		t.Error("no cache-disabled rows in the sweep")
	}
}
