package bench

import (
	"elasticml/internal/datagen"
	"elasticml/internal/perf"
	"elasticml/internal/scripts"
	"elasticml/internal/spark"
	"elasticml/internal/yarn"
)

// Table5 regenerates the Spark runtime comparison: SystemML-on-MR with
// resource optimization vs the hand-coded Hybrid and Full L2SVM plans on a
// Spark-style stateful executor framework, scenarios XS-XL dense1000
// (Appendix D).
func (r *Runner) Table5() error {
	cfg := spark.DefaultConfig()
	pm := perf.Default()
	r.printf("Table 5: Spark Comparison, L2SVM dense1000 — time [s]\n")
	r.printf("  %-10s %12s %14s %14s\n", "Scenario", "MR w/ Opt", "Spark Plan 1", "Spark Plan 2")
	maxSize := "XL"
	if r.Quick {
		maxSize = "M"
	}
	for _, size := range sizesUpTo(maxSize) {
		s := datagen.New(size, 1000, 1.0)
		mlRun, err := r.EndToEnd(scripts.L2SVM(), s, RunConfig{Optimize: true})
		if err != nil {
			return err
		}
		w := spark.L2SVMWorkload{Rows: s.Rows(), Cols: s.Cols, Sparsity: s.Sparsity,
			OuterIters: 5, InnerIters: 5}
		hybrid := spark.Estimate(cfg, pm, w, spark.PlanHybrid)
		full := spark.Estimate(cfg, pm, w, spark.PlanFull)
		r.printf("  %-10s %11.0fs %13.0fs %13.0fs\n", size, mlRun.Seconds, hybrid, full)
	}
	r.printf("\n")
	return nil
}

// Table6 regenerates the Spark throughput comparison on scenario S:
// SystemML with optimized resources vs Spark Plan 2, whose static
// driver+executor footprint admits only one concurrent application
// (Appendix D).
func (r *Runner) Table6() error {
	cfg := spark.DefaultConfig()
	pm := perf.Default()
	s := datagen.New("S", 1000, 1.0)
	mlRun, err := r.EndToEnd(scripts.L2SVM(), s, RunConfig{Optimize: true})
	if err != nil {
		return err
	}
	w := spark.L2SVMWorkload{Rows: s.Rows(), Cols: s.Cols, Sparsity: s.Sparsity,
		OuterIters: 5, InnerIters: 5}
	sparkSecs := spark.Estimate(cfg, pm, w, spark.PlanFull)

	r.printf("Table 6: Spark Throughput Comparison, L2SVM scenario S [apps/min]\n")
	r.printf("  SystemML w/ Opt: %s per app %.1fs; Spark Plan 2: whole-cluster app %.1fs\n",
		mlRun.Res.String(), mlRun.Seconds, sparkSecs)
	r.printf("  %-7s %14s %14s\n", "#Users", "SystemML", "Spark Full")
	for _, u := range []int{1, 8, 32} {
		ml := yarn.SimulateThroughput(r.CC, yarn.ThroughputSpec{
			Users: u, AppsPerUser: 8, AMHeap: mlRun.Res.CP, Duration: mlRun.Seconds})
		// A Spark app occupies the full cluster: capacity 1, apps run
		// back-to-back regardless of user count.
		sparkApps := float64(u*8) / (float64(u*8) * sparkSecs / 60)
		r.printf("  %-7d %14.1f %14.2f\n", u, ml.AppsPerMinute, sparkApps)
	}
	r.printf("\n")
	return nil
}
