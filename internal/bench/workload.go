package bench

// Multi-tenant workload sweep (experiment "workload"): the elastic job
// service of internal/workload across tenant counts and cache settings,
// reporting tenant latency percentiles, queueing delay, plan-cache hit
// rate, and cluster utilization, with and without a mid-run node failure.
// Not a figure from the paper — it composes the paper's per-program
// optimizer (§3) and cluster-change re-optimization (§5) into the serving
// scenario the elasticity machinery exists for. The summary row set is
// also written to BENCH_workload.json for downstream tooling.

import (
	"encoding/json"
	"os"
	"path/filepath"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/workload"
)

// workloadSeed fixes the tenant generator so the sweep is reproducible.
const workloadSeed = 42

// WorkloadRow is one sweep configuration's summary, as serialized into
// BENCH_workload.json.
type WorkloadRow struct {
	Tenants      int     `json:"tenants"`
	CacheEntries int     `json:"cache_entries"` // -1 = caching disabled
	NodeFailure  bool    `json:"node_failure"`
	P50Latency   float64 `json:"p50_latency"`
	P95Latency   float64 `json:"p95_latency"`
	MeanQueue    float64 `json:"mean_queue_delay"`
	Makespan     float64 `json:"makespan"`
	HitRate      float64 `json:"cache_hit_rate"`
	Utilization  float64 `json:"utilization"`
	ReoptChanges int     `json:"reopt_changes"`
	Requeues     int     `json:"requeues"`
	Unserved     int     `json:"unserved"`
}

// workloadCluster is the sweep's deliberately tight cluster (2 nodes x
// 2 GB): admission contention is the point of the experiment.
func workloadCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 2 * conf.GB
	cc.MaxAlloc = 2 * conf.GB
	return cc
}

// Workload (experiment "workload") sweeps the multi-tenant service and
// writes BENCH_workload.json next to the report.
func (r *Runner) Workload() error {
	tenantCounts := []int{8, 16, 32}
	if r.Quick {
		tenantCounts = []int{8, 16}
	}
	caches := []int{0, -1} // shared cache (default size) vs disabled
	cc := workloadCluster()

	r.printf("Multi-tenant workload service: %d-node cluster, %s/node, seed %d\n",
		cc.Nodes, cc.MemPerNode, workloadSeed)
	r.printf("%8s %7s %9s %9s %9s %10s %9s %8s %7s %7s %9s\n",
		"tenants", "cache", "fail", "p50[s]", "p95[s]", "queue[s]", "mksp[s]", "hit%", "util%", "reopts", "requeues")

	var rows []WorkloadRow
	for _, n := range tenantCounts {
		jobs := workload.Generate(workloadSeed, n, 3)
		for _, cacheEntries := range caches {
			for _, withFailure := range []bool{false, true} {
				o := workload.DefaultOptions()
				o.CacheEntries = cacheEntries
				if withFailure {
					o.NodeFailures = []fault.NodeFailure{{Node: 1, At: 25}}
				}
				rep, err := workload.Run(cc, jobs, o)
				if err != nil {
					return err
				}
				row := WorkloadRow{
					Tenants:      n,
					CacheEntries: cacheEntries,
					NodeFailure:  withFailure,
					P50Latency:   rep.P50Latency,
					P95Latency:   rep.P95Latency,
					MeanQueue:    rep.MeanQueueDelay,
					Makespan:     rep.Makespan,
					HitRate:      rep.Cache.HitRate(),
					Utilization:  rep.Utilization,
					ReoptChanges: rep.ReoptChanges,
					Requeues:     rep.Requeues,
					Unserved:     rep.Unserved,
				}
				rows = append(rows, row)
				cacheLabel := "shared"
				if cacheEntries < 0 {
					cacheLabel = "off"
				}
				failLabel := "-"
				if withFailure {
					failLabel = "1@25s"
				}
				r.printf("%8d %7s %9s %9.1f %9.1f %10.1f %9.1f %7.0f%% %6.0f%% %7d %7d\n",
					n, cacheLabel, failLabel, row.P50Latency, row.P95Latency, row.MeanQueue,
					row.Makespan, 100*row.HitRate, 100*row.Utilization, row.ReoptChanges, row.Requeues)
			}
		}
	}
	r.printf("\n")

	path := filepath.Join(r.ArtifactDir, "BENCH_workload.json")
	if err := writeWorkloadJSON(path, rows); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// writeWorkloadJSON serializes the sweep rows with stable formatting.
func writeWorkloadJSON(path string, rows []WorkloadRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Rows []WorkloadRow `json:"rows"`
	}{rows}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
