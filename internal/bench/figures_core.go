package bench

import (
	"fmt"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/lop"
	"elasticml/internal/scripts"
)

// Figure1 regenerates the cost-surface heatmaps: estimated runtime of
// LinregDS and LinregCG on X(8GB dense1000)/y(8MB) under CP x MR memory
// configurations from 1 to 20 GB.
func (r *Runner) Figure1() error {
	s := datagen.Scenario{Size: "M", Cells: 1e9, Cols: 1000, Sparsity: 1.0}
	points := []conf.Bytes{}
	step := 1
	if r.Quick {
		step = 4
	}
	for g := 1; g <= 20; g += step {
		points = append(points, conf.Bytes(g)*conf.GB)
	}
	for _, spec := range []scripts.Spec{scripts.LinregDS(), scripts.LinregCG()} {
		hp, _, _, err := r.compileScenario(spec, s)
		if err != nil {
			return err
		}
		est := cost.NewEstimator(r.CC)
		r.printf("Figure 1: %s, X(8GB dense1000) — estimated runtime [s]\n", spec.Name)
		r.printf("%8s", "MR\\CP")
		for _, cp := range points {
			r.printf(" %7s", cp)
		}
		r.printf("\n")
		for _, mrh := range points {
			r.printf("%8s", mrh)
			for _, cp := range points {
				res := conf.NewResources(cp, mrh, hp.NumLeaf)
				c := est.ProgramCost(lop.Select(hp, r.CC, res))
				r.printf(" %7.0f", c)
			}
			r.printf("\n")
		}
		r.printf("\n")
	}
	return nil
}

// Table1 regenerates the ML program characteristics overview.
func (r *Runner) Table1() error {
	r.printf("Table 1: Overview ML Program Characteristics\n")
	r.printf("%-10s %7s %8s %3s %5s %7s %7s %6s\n",
		"Prog.", "#Lines", "#Blocks", "?", "Icp.", "lambda", "eps", "Maxi.")
	for _, spec := range scripts.All() {
		prog, err := dml.Parse(spec.Source)
		if err != nil {
			return err
		}
		blocks := dml.CountBlocks(dml.BuildBlocks(prog.Stmts))
		unk := "N"
		if spec.HasUnknowns {
			unk = "Y"
		}
		eps := "N/A"
		if spec.Iterative || spec.Name != "LinregDS" {
			eps = fmt.Sprintf("%g", spec.Params["tol"])
		}
		maxi := "N/A"
		if spec.Name != "LinregDS" {
			maxi = fmt.Sprintf("%g", spec.Params["maxi"])
			if spec.Name == "MLogreg" || spec.Name == "GLM" {
				maxi = fmt.Sprintf("%g/%g", spec.Params["moi"], spec.Params["mii"])
			}
		}
		r.printf("%-10s %7d %8d %3s %5g %7g %7s %6s\n",
			spec.Name, prog.Lines, blocks, unk,
			spec.Params["icpt"], spec.Params["reg"], eps, maxi)
	}
	r.printf("\n")
	return nil
}

// Table2 regenerates the Opt resource configurations found for LinregDS
// across scenarios and data shapes.
func (r *Runner) Table2() error {
	r.printf("Table 2: Opt Resource Config, LinregDS [CP/max task heap]\n")
	shapes := datagen.Shapes()
	r.printf("%-9s", "Scenario")
	for _, sh := range shapes {
		name := datagen.New("XS", sh.Cols, sh.Sparsity).ShapeName()
		r.printf(" %14s", name)
	}
	r.printf("\n")
	maxSize := "XL"
	if r.Quick {
		maxSize = "M"
	}
	for _, size := range sizesUpTo(maxSize) {
		r.printf("%-9s", size)
		for _, sh := range shapes {
			s := datagen.New(size, sh.Cols, sh.Sparsity)
			res, err := r.EndToEnd(scripts.LinregDS(), s, RunConfig{Optimize: true})
			if err != nil {
				return err
			}
			r.printf(" %14s", res.Res.String())
		}
		r.printf("\n")
	}
	r.printf("\n")
	return nil
}

// endToEndFigure runs one baseline-comparison figure: a program across
// scenarios and the four data shapes, comparing the static baselines with
// initial resource optimization (adaptation disabled, §5.2).
func (r *Runner) endToEndFigure(title string, spec scripts.Spec, maxSize string, classes int64) error {
	r.printf("%s: %s — end-to-end execution time [s]\n", title, spec.Name)
	baselines := Baselines(r.CC)
	sizes := sizesUpTo(maxSize)
	if r.Quick && len(sizes) > 3 {
		sizes = sizes[:3]
	}
	for _, sh := range datagen.Shapes() {
		shapeName := datagen.New("XS", sh.Cols, sh.Sparsity).ShapeName()
		r.printf("  shape %s\n", shapeName)
		r.printf("    %-9s %10s", "Scenario", "#rows")
		for _, b := range baselines {
			r.printf(" %8s", b.Name)
		}
		r.printf(" %8s %14s\n", "Opt", "Opt config")
		for _, size := range sizes {
			s := datagen.New(size, sh.Cols, sh.Sparsity)
			r.printf("    %-9s %10d", size, s.Rows())
			for _, b := range baselines {
				res, err := r.EndToEnd(spec, s, RunConfig{
					Res: conf.NewResources(b.CP, b.MR, 1), Classes: classes})
				if err != nil {
					return err
				}
				r.printf(" %s", fmtSecs(res.Seconds))
			}
			optRes, err := r.EndToEnd(spec, s, RunConfig{Optimize: true, Classes: classes})
			if err != nil {
				return err
			}
			r.printf(" %s %14s\n", fmtSecs(optRes.Seconds), optRes.Res.String())
		}
	}
	r.printf("\n")
	return nil
}

// Figure7 regenerates the LinregDS baseline comparison (scenarios XS-XL).
func (r *Runner) Figure7() error {
	max := "XL"
	if r.Quick {
		max = "M"
	}
	return r.endToEndFigure("Figure 7", scripts.LinregDS(), max, 0)
}

// Figure8 regenerates the LinregCG comparison (scenarios XS-L).
func (r *Runner) Figure8() error {
	return r.endToEndFigure("Figure 8", scripts.LinregCG(), r.maxL(), 0)
}

// Figure9 regenerates the L2SVM comparison (scenarios XS-L).
func (r *Runner) Figure9() error {
	return r.endToEndFigure("Figure 9", scripts.L2SVM(), r.maxL(), 0)
}

// Figure10 regenerates the MLogreg comparison (scenarios XS-L, initial
// optimization only — unknowns make it suboptimal, motivating §4).
func (r *Runner) Figure10() error {
	return r.endToEndFigure("Figure 10", scripts.MLogreg(), r.maxL(), 20)
}

// Figure11 regenerates the GLM comparison (scenarios XS-L).
func (r *Runner) Figure11() error {
	return r.endToEndFigure("Figure 11", scripts.GLM(), r.maxL(), 0)
}

func (r *Runner) maxL() string {
	if r.Quick {
		return "M"
	}
	return "L"
}
