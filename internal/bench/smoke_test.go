package bench

import (
	"bytes"
	"testing"
)

func TestSmokeAll(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Quick = true
	if err := r.Run("all"); err != nil {
		t.Fatalf("run all: %v\noutput so far:\n%s", err, buf.String())
	}
	t.Log(buf.String())
}
