package bench

// Elastic policy sweep (experiment "elastic"): the malleable workload
// service under the three scheduling policies — FIFO (rigid desired-width
// admission, head-of-queue blocking), fair-share (width proportional to
// active tenants), and regret-minimizing (narrow admission, bypass, grow
// by marginal speedup) — on identical tenant traces. The headline trace is
// the skewed-burst workload: tight arrival bursts on a tiny cluster, where
// rigid FIFO head-blocks each burst at full desired width while the
// width-flexible policies admit narrow and grow in the gaps. The row set
// is written to BENCH_elastic.json.

import (
	"encoding/json"
	"os"
	"path/filepath"

	"elasticml/internal/conf"
	"elasticml/internal/workload"
)

// ElasticRow is one policy/trace combination's summary, as serialized into
// BENCH_elastic.json.
type ElasticRow struct {
	Policy        string  `json:"policy"`
	Trace         string  `json:"trace"`
	Tenants       int     `json:"tenants"`
	Served        int     `json:"served"`
	P50Queue      float64 `json:"p50_queue_delay"`
	P95Queue      float64 `json:"p95_queue_delay"`
	P95Latency    float64 `json:"p95_latency"`
	Makespan      float64 `json:"makespan"`
	Utilization   float64 `json:"utilization"`
	WastedWork    float64 `json:"wasted_work"`
	Grows         int     `json:"grows"`
	Shrinks       int     `json:"shrinks"`
	VolShrinks    int     `json:"voluntary_shrinks"`
	MaxConcurrent int     `json:"max_concurrent"`
}

// elasticCluster is deliberately tiny — two nodes, two containers each —
// so admission width is the contended resource.
func elasticCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 2
	cc.MemPerNode = 1 * conf.GB
	cc.MaxAlloc = 1 * conf.GB
	return cc
}

// elasticPolicies are the compared schedulers, in report order.
func elasticPolicies() []workload.Policy {
	return []workload.Policy{workload.PolicyFIFO, workload.PolicyFair, workload.PolicyRegret}
}

// elasticTraces returns the named tenant traces of the sweep.
func elasticTraces(quick bool) []struct {
	Name string
	Jobs []workload.JobSpec
} {
	counts := []int{12, 24}
	if quick {
		counts = []int{12}
	}
	var out []struct {
		Name string
		Jobs []workload.JobSpec
	}
	for _, n := range counts {
		out = append(out, struct {
			Name string
			Jobs []workload.JobSpec
		}{"skewed-burst", workload.GenerateSkewedBurst(workloadSeed, n)})
	}
	return out
}

// elasticRows runs the sweep; shared by the experiment and its tests.
func elasticRows(quick bool) ([]ElasticRow, error) {
	cc := elasticCluster()
	var rows []ElasticRow
	for _, tr := range elasticTraces(quick) {
		for _, pol := range elasticPolicies() {
			o := workload.DefaultOptions()
			o.Policy = pol
			o.Elastic.Tick = 5
			rep, err := workload.Run(cc, tr.Jobs, o)
			if err != nil {
				return nil, err
			}
			served := 0
			for _, t := range rep.Tenants {
				if t.Served {
					served++
				}
			}
			delays := make([]float64, 0, served)
			for _, t := range rep.Tenants {
				if t.Served {
					delays = append(delays, t.QueueDelay)
				}
			}
			rows = append(rows, ElasticRow{
				Policy:        pol.String(),
				Trace:         tr.Name,
				Tenants:       len(tr.Jobs),
				Served:        served,
				P50Queue:      quantile(delays, 0.50),
				P95Queue:      rep.P95QueueDelay,
				P95Latency:    rep.P95Latency,
				Makespan:      rep.Makespan,
				Utilization:   rep.Utilization,
				WastedWork:    rep.WastedWork,
				Grows:         rep.Grows,
				Shrinks:       rep.Shrinks,
				VolShrinks:    rep.VoluntaryShrinks,
				MaxConcurrent: rep.MaxConcurrent,
			})
		}
	}
	return rows, nil
}

// Elastic (experiment "elastic") compares the scheduling policies on
// identical tenant traces and writes BENCH_elastic.json.
func (r *Runner) Elastic() error {
	cc := elasticCluster()
	r.printf("Malleable-job policy sweep: %d-node cluster, %s/node, seed %d\n",
		cc.Nodes, cc.MemPerNode, workloadSeed)
	r.printf("%-14s %8s %7s %9s %9s %9s %7s %8s %6s %7s %7s\n",
		"trace", "tenants", "policy", "q50[s]", "q95[s]", "p95[s]", "util%", "waste[s]", "grow", "shrink", "narrow")

	rows, err := elasticRows(r.Quick)
	if err != nil {
		return err
	}
	for _, row := range rows {
		r.printf("%-14s %8d %7s %9.1f %9.1f %9.1f %6.0f%% %8.1f %6d %7d %7d\n",
			row.Trace, row.Tenants, row.Policy, row.P50Queue, row.P95Queue, row.P95Latency,
			100*row.Utilization, row.WastedWork, row.Grows, row.Shrinks, row.VolShrinks)
	}
	r.printf("\n")

	path := filepath.Join(r.ArtifactDir, "BENCH_elastic.json")
	if err := writeElasticJSON(path, rows); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// quantile returns the nearest-rank q-quantile of the values.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ { // insertion sort: tiny slices
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
	idx := int(float64(len(s))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// writeElasticJSON serializes the sweep rows with stable formatting.
func writeElasticJSON(path string, rows []ElasticRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Rows []ElasticRow `json:"rows"`
	}{rows}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
