package bench

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/cost"
	"elasticml/internal/datagen"
	"elasticml/internal/lop"
	"elasticml/internal/rt"
	"elasticml/internal/scripts"
)

// TestModelSimCalibration verifies that the optimizer's cost model and the
// execution simulator agree within a band across known-size programs,
// scenarios, and configurations. This is the foundation of the whole
// approach: the optimizer can only find near-optimal configurations if its
// estimates track the (simulated) reality. Programs with unknowns are
// excluded — their model is intentionally blind until runtime adaptation.
func TestModelSimCalibration(t *testing.T) {
	cc := conf.DefaultCluster()
	specs := []scripts.Spec{scripts.LinregDS(), scripts.LinregCG(), scripts.L2SVM()}
	configs := []conf.Resources{
		conf.NewResources(512*conf.MB, 2*conf.GB, 1),
		conf.NewResources(8*conf.GB, 2*conf.GB, 1),
		conf.NewResources(conf.BytesOfGB(53.3), conf.BytesOfGB(4.4), 1),
	}
	sizes := []string{"S", "M", "L"}
	r := New(nil)
	checked := 0
	for _, spec := range specs {
		for _, size := range sizes {
			s := datagen.New(size, 1000, 1.0)
			hp, comp, fs, err := r.compileScenario(spec, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range configs {
				res := conf.NewResources(base.CP, base.MRFor(0), hp.NumLeaf)
				plan := lop.Select(hp, cc, res)
				est := cost.NewEstimator(cc)
				modeled := est.ProgramCost(plan)
				ip := rt.New(rt.ModeSim, fs, cc, res)
				ip.Compiler = comp
				if err := ip.Run(plan); err != nil {
					t.Fatalf("%s %s %v: %v", spec.Name, size, res, err)
				}
				if ip.SimTime <= 0 {
					continue
				}
				ratio := modeled / ip.SimTime
				// The model assumes DefaultIters loop trips and half-weight
				// evictions, so a generous band; gross disagreement means a
				// costing bug.
				if ratio < 0.2 || ratio > 5 {
					t.Errorf("%s %s %s: model %.1fs vs sim %.1fs (ratio %.2f)",
						spec.Name, size, res.String(), modeled, ip.SimTime, ratio)
				}
				checked++
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d calibration points checked", checked)
	}
}

// TestOptimizerChoiceValidatedBySimulator: for known-size programs, the
// configuration the optimizer picks must simulate within 1.3x of the best
// static baseline's simulation — the end-to-end soundness property behind
// Figures 7-9.
func TestOptimizerChoiceValidatedBySimulator(t *testing.T) {
	r := New(nil)
	r.Quick = true
	cc := conf.DefaultCluster()
	for _, spec := range []scripts.Spec{scripts.LinregDS(), scripts.LinregCG(), scripts.L2SVM()} {
		for _, size := range []string{"S", "M"} {
			s := datagen.New(size, 1000, 1.0)
			optRun, err := r.EndToEnd(spec, s, RunConfig{Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			best := -1.0
			for _, b := range Baselines(cc) {
				run, err := r.EndToEnd(spec, s, RunConfig{Res: conf.NewResources(b.CP, b.MR, 1)})
				if err != nil {
					t.Fatal(err)
				}
				if best < 0 || run.Seconds < best {
					best = run.Seconds
				}
			}
			if optRun.Seconds > best*1.3+1 {
				t.Errorf("%s %s: Opt %.1fs vs best baseline %.1fs",
					spec.Name, size, optRun.Seconds, best)
			}
		}
	}
}
