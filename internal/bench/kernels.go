package bench

// Matrix-kernel microbenchmark (experiment "kernels"): dense multiply and
// TSMM throughput plus allocation behaviour across the CP degree of
// parallelism and the scratch-buffer arena. The arena never changes
// results (pooled buffers are zeroed on checkout and kernels write every
// cell in the same order), so the interesting columns are GFLOP/s and
// allocs/op — with pooling on, steady-state kernel invocations should
// stop allocating. The row set is written to BENCH_kernels.json.

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"elasticml/internal/matrix"
)

// KernelRow is one measured kernel configuration, as serialized into
// BENCH_kernels.json.
type KernelRow struct {
	Kernel      string  `json:"kernel"`
	N           int     `json:"n"`
	Dop         int     `json:"dop"`
	Arena       bool    `json:"arena"`
	Iters       int     `json:"iters"`
	GFLOPs      float64 `json:"gflops"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// kernelSummary is the machine-readable artifact: per-configuration rows
// plus the headline ratios for the largest problem size at dop 1
// (arena-off over arena-on; > 1 means the arena reduced allocation).
type kernelSummary struct {
	Rows               []KernelRow `json:"rows"`
	MulAllocReduction  float64     `json:"mul_alloc_reduction"`
	MulBytesReduction  float64     `json:"mul_bytes_reduction"`
	TSMMAllocReduction float64     `json:"tsmm_alloc_reduction"`
}

// benchDense builds a deterministic dense matrix for the sweep.
func benchDense(rows, cols int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// measureKernel times iters invocations of op (which must return the
// output matrix so the arena can recycle it) and reports GFLOP/s and
// per-op allocation counts from the runtime's monotonic counters.
func measureKernel(iters int, flopsPerOp float64, arena bool, op func() *matrix.Matrix) (gflops, allocsPerOp, bytesPerOp float64) {
	// One untimed warm invocation primes the pools so the steady state is
	// what gets measured.
	if c := op(); arena {
		matrix.Recycle(c)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		c := op()
		if arena {
			matrix.Recycle(c)
		}
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	gflops = flopsPerOp * float64(iters) / secs / 1e9
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	return gflops, allocsPerOp, bytesPerOp
}

// Kernels (experiment "kernels") sweeps the dense hot kernels and writes
// BENCH_kernels.json next to the report.
func (r *Runner) Kernels() error {
	sizes := []int{256, 512}
	iters := 40
	if r.Quick {
		sizes = []int{128}
		iters = 20
	}
	dops := []int{1, 4}

	prevDop := matrix.Parallelism()
	defer func() {
		matrix.SetParallelism(prevDop)
		matrix.EnableArena(false)
	}()

	r.printf("Dense kernel sweep: %d iters/config (tiles %d cols x %d depth)\n",
		iters, 512, 64)
	r.printf("%8s %5s %4s %6s %9s %12s %12s\n",
		"kernel", "n", "dop", "arena", "GFLOP/s", "allocs/op", "bytes/op")

	var rows []KernelRow
	run := func(kernel string, n, dop int, arena bool, flopsPerOp float64, op func() *matrix.Matrix) KernelRow {
		matrix.SetParallelism(dop)
		matrix.EnableArena(arena)
		g, a, b := measureKernel(iters, flopsPerOp, arena, op)
		row := KernelRow{Kernel: kernel, N: n, Dop: dop, Arena: arena,
			Iters: iters, GFLOPs: g, AllocsPerOp: a, BytesPerOp: b}
		rows = append(rows, row)
		onoff := "off"
		if arena {
			onoff = "on"
		}
		r.printf("%8s %5d %4d %6s %9.2f %12.1f %12.0f\n", kernel, n, dop, onoff, g, a, b)
		return row
	}

	type key struct {
		kernel string
		arena  bool
	}
	last := map[key]KernelRow{} // largest-n dop-1 row per (kernel, arena)
	for _, n := range sizes {
		a := benchDense(n, n, 1)
		b := benchDense(n, n, 2)
		x := benchDense(n, n/4, 3)
		mulFlops := 2 * float64(n) * float64(n) * float64(n)
		tsmmFlops := float64(n/4) * float64(n/4) * float64(n) // upper triangle x2 halves
		for _, dop := range dops {
			for _, arena := range []bool{false, true} {
				row := run("mul", n, dop, arena, mulFlops, func() *matrix.Matrix { return matrix.Mul(a, b) })
				if dop == 1 {
					last[key{"mul", arena}] = row
				}
				row = run("tsmm", n, dop, arena, tsmmFlops, func() *matrix.Matrix { return matrix.TSMM(x) })
				if dop == 1 {
					last[key{"tsmm", arena}] = row
				}
			}
		}
	}
	matrix.SetParallelism(prevDop)
	matrix.EnableArena(false)

	ratio := func(off, on float64) float64 {
		if on <= 0 {
			on = 0.01 // fully pooled: report against a nominal floor
		}
		return off / on
	}
	sum := kernelSummary{
		Rows:               rows,
		MulAllocReduction:  ratio(last[key{"mul", false}].AllocsPerOp, last[key{"mul", true}].AllocsPerOp),
		MulBytesReduction:  ratio(last[key{"mul", false}].BytesPerOp, last[key{"mul", true}].BytesPerOp),
		TSMMAllocReduction: ratio(last[key{"tsmm", false}].AllocsPerOp, last[key{"tsmm", true}].AllocsPerOp),
	}
	r.printf("arena reductions (dop 1, n=%d): mul %.1fx allocs / %.1fx bytes, tsmm %.1fx allocs\n\n",
		sizes[len(sizes)-1], sum.MulAllocReduction, sum.MulBytesReduction, sum.TSMMAllocReduction)

	path := filepath.Join(r.ArtifactDir, "BENCH_kernels.json")
	if err := writeKernelsJSON(path, sum); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// writeKernelsJSON serializes the sweep rows with stable formatting.
func writeKernelsJSON(path string, sum kernelSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
