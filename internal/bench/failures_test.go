package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFailureSweepDeterministic is the seed-determinism regression test:
// every stochastic component behind the sweep (fault sampling, optimizer,
// adaptation charges) is seeded or fixed, so two runs must produce
// byte-identical reports.
func TestFailureSweepDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		r := New(&buf)
		r.Quick = true
		if err := r.FailureSweep(); err != nil {
			t.Fatalf("sweep: %v\n%s", err, buf.String())
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed sweeps diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}

	// The robustness story must be present in the report: the no-retry
	// baseline aborts under injected task failures while the adaptive
	// runtime recovers (non-zero retries) and re-optimizes after node loss.
	if !strings.Contains(a, "ABORT") {
		t.Error("no-retry baseline never aborted")
	}
	if !strings.Contains(a, "Node-failure recovery") {
		t.Error("node-failure section missing")
	}
	sawRetries := false
	for _, line := range strings.Split(a, "\n") {
		f := strings.Fields(line)
		if len(f) == 6 && f[1] == "ABORT" && f[3] != "0" {
			sawRetries = true
		}
	}
	if !sawRetries {
		t.Error("no row where the baseline aborted but Opt+ReOpt retried through")
	}
}
