package bench

// Mini-batch elasticity sweep (experiment "minibatch"): the iterative
// epoch-structured workload family (MinibatchLR, MinibatchLinreg, MLP2)
// under the three scheduling policies on two adversarial traces — a
// straggler trace where nodes transiently slow down mid-run, and a
// correlated-failure trace where a rack-scoped group failure removes and
// restores capacity. Epoch boundaries are the elasticity points: the
// width-flexible policies admit bursts narrow, grow between epochs, and
// shrink mid-epoch snapping to the last completed batch, while rigid FIFO
// head-blocks each burst at full desired width and rides out stragglers
// at fixed width. The row set is written to BENCH_minibatch.json.

import (
	"path/filepath"

	"elasticml/internal/fault"
	"elasticml/internal/workload"
)

// minibatchTraces returns the named chaos-annotated tenant traces of the
// sweep. Both use the deterministic mini-batch burst generator; they
// differ in the injected failure regime.
func minibatchTraces(quick bool) []struct {
	Name  string
	Jobs  []workload.JobSpec
	Chaos fault.ChaosPlan
} {
	counts := []int{12, 24}
	if quick {
		counts = []int{12}
	}
	var out []struct {
		Name  string
		Jobs  []workload.JobSpec
		Chaos fault.ChaosPlan
	}
	for _, n := range counts {
		out = append(out,
			struct {
				Name  string
				Jobs  []workload.JobSpec
				Chaos fault.ChaosPlan
			}{"straggler", workload.GenerateMinibatch(workloadSeed, n), fault.ChaosPlan{
				Seed: workloadSeed,
				SlowNodes: []fault.SlowNode{
					{Node: 0, At: 15, Factor: 3, Duration: 40},
					{Node: 1, At: 70, Factor: 2, Duration: 30},
				},
			}},
			struct {
				Name  string
				Jobs  []workload.JobSpec
				Chaos fault.ChaosPlan
			}{"corrfail", workload.GenerateMinibatch(workloadSeed+1, n), fault.ChaosPlan{
				Seed: workloadSeed,
				Flaps: []fault.Flap{
					{Node: 1, At: 30, RestoreAfter: 20},
				},
			}},
		)
	}
	return out
}

// minibatchRows runs the sweep; shared by the experiment and its tests.
func minibatchRows(quick bool) ([]ElasticRow, error) {
	cc := elasticCluster()
	var rows []ElasticRow
	for _, tr := range minibatchTraces(quick) {
		for _, pol := range elasticPolicies() {
			o := workload.DefaultOptions()
			o.Policy = pol
			o.Elastic.Tick = 5
			o.Chaos = tr.Chaos
			o.Recovery.Kind = workload.RecoveryCheckpoint
			rep, err := workload.Run(cc, tr.Jobs, o)
			if err != nil {
				return nil, err
			}
			served := 0
			delays := make([]float64, 0, len(rep.Tenants))
			for _, t := range rep.Tenants {
				if t.Served {
					served++
					delays = append(delays, t.QueueDelay)
				}
			}
			rows = append(rows, ElasticRow{
				Policy:        pol.String(),
				Trace:         tr.Name,
				Tenants:       len(tr.Jobs),
				Served:        served,
				P50Queue:      quantile(delays, 0.50),
				P95Queue:      rep.P95QueueDelay,
				P95Latency:    rep.P95Latency,
				Makespan:      rep.Makespan,
				Utilization:   rep.Utilization,
				WastedWork:    rep.WastedWork,
				Grows:         rep.Grows,
				Shrinks:       rep.Shrinks,
				VolShrinks:    rep.VoluntaryShrinks,
				MaxConcurrent: rep.MaxConcurrent,
			})
		}
	}
	return rows, nil
}

// Minibatch (experiment "minibatch") compares the scheduling policies on
// the epoch-structured traces and writes BENCH_minibatch.json.
func (r *Runner) Minibatch() error {
	cc := elasticCluster()
	r.printf("Mini-batch epoch-elasticity sweep: %d-node cluster, %s/node, seed %d\n",
		cc.Nodes, cc.MemPerNode, workloadSeed)
	r.printf("%-14s %8s %7s %9s %9s %9s %7s %8s %6s %7s %7s\n",
		"trace", "tenants", "policy", "q50[s]", "q95[s]", "p95[s]", "util%", "waste[s]", "grow", "shrink", "narrow")

	rows, err := minibatchRows(r.Quick)
	if err != nil {
		return err
	}
	for _, row := range rows {
		r.printf("%-14s %8d %7s %9.1f %9.1f %9.1f %6.0f%% %8.1f %6d %7d %7d\n",
			row.Trace, row.Tenants, row.Policy, row.P50Queue, row.P95Queue, row.P95Latency,
			100*row.Utilization, row.WastedWork, row.Grows, row.Shrinks, row.VolShrinks)
	}
	r.printf("\n")

	path := filepath.Join(r.ArtifactDir, "BENCH_minibatch.json")
	if err := writeElasticJSON(path, rows); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}
