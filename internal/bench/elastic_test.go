package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestElasticPolicyDominance pins the headline claim of the elastic sweep:
// on the skewed-burst trace, both width-flexible policies strictly improve
// tail queueing delay over rigid FIFO admission, because they admit bursts
// narrow instead of head-blocking at full desired width.
func TestElasticPolicyDominance(t *testing.T) {
	rows, err := elasticRows(true)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]ElasticRow{}
	for _, r := range rows {
		if r.Trace == "skewed-burst" {
			byPolicy[r.Policy] = r
		}
	}
	fifo, ok := byPolicy["fifo"]
	if !ok {
		t.Fatal("sweep produced no fifo row")
	}
	for _, pol := range []string{"fair", "regret"} {
		r, ok := byPolicy[pol]
		if !ok {
			t.Fatalf("sweep produced no %s row", pol)
		}
		if r.P95Queue >= fifo.P95Queue {
			t.Errorf("%s p95 queue delay %.2f not strictly below fifo %.2f", pol, r.P95Queue, fifo.P95Queue)
		}
		if r.Served < fifo.Served {
			t.Errorf("%s served %d < fifo %d: faster queues must not cost completions", pol, r.Served, fifo.Served)
		}
		if r.Grows == 0 {
			t.Errorf("%s recorded no grows; the sweep is not exercising malleability", pol)
		}
	}
	if fifo.Grows != 0 || fifo.Shrinks != 0 {
		t.Errorf("fifo must stay rigid, got %d grows %d shrinks", fifo.Grows, fifo.Shrinks)
	}
}

// TestElasticWritesJSON checks the experiment writes a well-formed
// BENCH_elastic.json with one row per policy/trace combination.
func TestElasticWritesJSON(t *testing.T) {
	r := New(os.Stderr)
	r.Quick = true
	r.ArtifactDir = t.TempDir()
	if err := r.Run("elastic"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(r.ArtifactDir, "BENCH_elastic.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []ElasticRow `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if want := len(elasticPolicies()) * len(elasticTraces(true)); len(doc.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(doc.Rows), want)
	}
	for _, row := range doc.Rows {
		if row.Served == 0 {
			t.Errorf("row %s/%s served nobody", row.Trace, row.Policy)
		}
	}
}
