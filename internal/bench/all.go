package bench

import "fmt"

// Experiments maps experiment identifiers to their runners, in the paper's
// order. The identifiers match DESIGN.md's per-experiment index.
func (r *Runner) Experiments() []struct {
	ID  string
	Run func() error
} {
	return []struct {
		ID  string
		Run func() error
	}{
		{"fig1", r.Figure1},
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"fig7", r.Figure7},
		{"fig8", r.Figure8},
		{"fig9", r.Figure9},
		{"fig10", r.Figure10},
		{"fig11", r.Figure11},
		{"fig12", r.Figure12},
		{"fig13", r.Figure13},
		{"fig14", r.Figure14},
		{"table3", r.Table3},
		{"fig15", r.Figure15},
		{"fig18", r.Figure18},
		{"table5", r.Table5},
		{"table6", r.Table6},
		{"ablations", r.Ablations},
		{"failures", r.FailureSweep},
		{"workload", r.Workload},
		{"chaos", r.Chaos},
		{"admission", r.Admission},
		{"kernels", r.Kernels},
		{"elastic", r.Elastic},
		{"minibatch", r.Minibatch},
	}
}

// Run executes one experiment by identifier, or all of them for "all".
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, e := range r.Experiments() {
			if err := e.Run(); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range r.Experiments() {
		if e.ID == id {
			return e.Run()
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}
