// Package bench regenerates every table and figure of the paper's
// evaluation (§5 and appendices) on the simulated cluster: the same
// programs, scenarios, baselines, and reported rows/series. Absolute times
// come from the analytic performance model and are not expected to match
// the authors' testbed; the shape — which configuration wins, by what
// rough factor, where crossovers occur — is the reproduction target (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"time"

	"elasticml/internal/adapt"
	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/mr"
	"elasticml/internal/opt"
	"elasticml/internal/rt"
	"elasticml/internal/scripts"
)

// Runner executes experiments and prints their reports.
type Runner struct {
	CC  conf.Cluster
	Out io.Writer
	// Quick reduces grid resolution and scenario coverage for fast test
	// runs; full runs match the paper's parameters.
	Quick bool
	// ArtifactDir is where experiments drop machine-readable outputs
	// (e.g. BENCH_workload.json); empty means the current directory.
	ArtifactDir string
}

// New returns a Runner printing to out.
func New(out io.Writer) *Runner {
	return &Runner{CC: conf.DefaultCluster(), Out: out}
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.Out, format, args...)
}

// Baseline is a static resource configuration (§5.1).
type Baseline struct {
	Name   string
	CP, MR conf.Bytes
}

// Baselines returns the paper's four static configurations: B-SS, B-LS,
// B-SL, B-LL (512MB/53.3GB CP x 512MB/4.4GB MR heaps).
func Baselines(cc conf.Cluster) []Baseline {
	small := 512 * conf.MB
	largeCP := cc.MaxHeap()        // ~53.3GB
	largeMR := conf.BytesOfGB(4.4) // 12 tasks/node
	return []Baseline{
		{"B-SS", small, small},
		{"B-LS", largeCP, small},
		{"B-SL", small, largeMR},
		{"B-LL", largeCP, largeMR},
	}
}

// compileScenario parses and compiles a program against a scenario's
// descriptor file system.
func (r *Runner) compileScenario(spec scripts.Spec, s datagen.Scenario) (*hop.Program, *hop.Compiler, *hdfs.FS, error) {
	fs := hdfs.New()
	datagen.Describe(fs, s)
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bench: parse %s: %w", spec.Name, err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bench: compile %s: %w", spec.Name, err)
	}
	return hp, comp, fs, nil
}

// RunConfig controls one end-to-end measurement.
type RunConfig struct {
	// Res is the static configuration; ignored when Optimize is set.
	Res conf.Resources
	// Optimize runs initial resource optimization and charges its
	// overhead into the elapsed time.
	Optimize bool
	// Adapt enables runtime resource adaptation.
	Adapt bool
	// Classes is the label cardinality driving table() output sizes.
	Classes int64
	// Faults injects failures into the run (zero value: no injection).
	Faults fault.Plan
	// Policy governs task-level retry under fault injection; the zero
	// value normalizes to Hadoop-like defaults.
	Policy mr.TaskPolicy
	// OptCharge, when > 0, makes the adapter charge this fixed simulated
	// time per re-optimization instead of measured wall time, so same-seed
	// runs report identical simulated seconds.
	OptCharge float64
}

// RunResult is one end-to-end measurement.
type RunResult struct {
	// Seconds is the end-to-end elapsed time (simulated execution plus
	// real optimization overhead).
	Seconds float64
	// Res is the configuration the program started with.
	Res conf.Resources
	// FinalRes is the configuration after adaptation.
	FinalRes conf.Resources
	// OptSeconds is the initial-optimization overhead included in Seconds.
	OptSeconds float64
	// Migrations counts runtime migrations.
	Migrations int
	// MRJobs counts executed MR jobs.
	MRJobs int
	// OptStats carries the optimizer statistics when Optimize was set.
	OptStats opt.Stats
	// SimSeconds is the simulated execution time alone — deterministic
	// under a fixed fault seed, unlike Seconds which includes real
	// optimization wall time.
	SimSeconds float64
	// Fault-recovery activity (zero without injection).
	NodeFailures, TaskRetries, Stragglers, HDFSRetries int
	// ContainerLossReopts counts re-optimizations triggered by node loss.
	ContainerLossReopts int
	// RecoverySeconds is the simulated time spent re-executing failed or
	// straggling work (included in SimSeconds).
	RecoverySeconds float64
}

// EndToEnd measures one program/scenario/configuration combination via the
// execution simulator.
func (r *Runner) EndToEnd(spec scripts.Spec, s datagen.Scenario, cfg RunConfig) (RunResult, error) {
	hp, comp, fs, err := r.compileScenario(spec, s)
	if err != nil {
		return RunResult{}, err
	}
	res := cfg.Res
	var out RunResult
	if cfg.Optimize {
		o := opt.New(r.CC)
		if r.Quick {
			o.Opts.Points = 7
		}
		start := time.Now()
		result := o.Optimize(hp)
		out.OptSeconds = time.Since(start).Seconds()
		out.OptStats = result.Stats
		res = result.Res
	}
	if len(res.MR) == 0 {
		res = conf.NewResources(res.CP, res.MRFor(0), hp.NumLeaf)
	}
	out.Res = res.Clone()
	plan := lop.Select(hp, r.CC, res)
	ip := rt.New(rt.ModeSim, fs, r.CC, res)
	ip.Compiler = comp
	if cfg.Classes > 0 {
		ip.SimTableCols = cfg.Classes
	}
	var ad *adapt.Adapter
	if cfg.Adapt {
		ad = adapt.New(r.CC)
		if r.Quick {
			ad.Opt.Points = 7
		}
		if cfg.OptCharge > 0 {
			ad.OptCharge = cfg.OptCharge
		}
		ip.Adapter = ad
	}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return RunResult{}, fmt.Errorf("bench: fault plan: %w", err)
		}
		ip.Faults = inj
		ip.Policy = cfg.Policy
	}
	if err := ip.Run(plan); err != nil {
		return RunResult{}, fmt.Errorf("bench: %s on %s: %w", spec.Name, s, err)
	}
	out.Seconds = ip.SimTime + out.OptSeconds
	out.SimSeconds = ip.SimTime
	out.FinalRes = ip.Res.Clone()
	out.Migrations = ip.Stats.Migrations
	out.MRJobs = ip.Stats.MRJobs
	out.NodeFailures = ip.Stats.NodeFailures
	out.TaskRetries = ip.Stats.TaskRetries
	out.Stragglers = ip.Stats.Stragglers
	out.HDFSRetries = ip.Stats.HDFSRetries
	out.RecoverySeconds = ip.Stats.RecoverySeconds
	if ad != nil {
		out.ContainerLossReopts = ad.Stats.ContainerLossReopts
	}
	return out, nil
}

// sizesUpTo returns scenario labels XS..max.
func sizesUpTo(max string) []string {
	var out []string
	for _, s := range datagen.Sizes {
		out = append(out, s)
		if s == max {
			break
		}
	}
	return out
}

func fmtSecs(s float64) string {
	return fmt.Sprintf("%8.1f", s)
}
