package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMinibatchPolicyDominance pins the acceptance claim of the mini-batch
// sweep: on the straggler trace, the epoch-boundary-aware width-flexible
// policies strictly beat rigid FIFO's p95 queue delay — growing between
// epochs and shrinking mid-epoch lets them ride out slow nodes instead of
// head-blocking each burst — without costing completions. The same
// dominance must hold on the correlated-failure trace.
func TestMinibatchPolicyDominance(t *testing.T) {
	rows, err := minibatchRows(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, trace := range []string{"straggler", "corrfail"} {
		byPolicy := map[string]ElasticRow{}
		for _, r := range rows {
			if r.Trace == trace {
				byPolicy[r.Policy] = r
			}
		}
		fifo, ok := byPolicy["fifo"]
		if !ok {
			t.Fatalf("%s: sweep produced no fifo row", trace)
		}
		for _, pol := range []string{"fair", "regret"} {
			r, ok := byPolicy[pol]
			if !ok {
				t.Fatalf("%s: sweep produced no %s row", trace, pol)
			}
			if r.P95Queue >= fifo.P95Queue {
				t.Errorf("%s: %s p95 queue delay %.2f not strictly below fifo %.2f",
					trace, pol, r.P95Queue, fifo.P95Queue)
			}
			if r.Served < fifo.Served {
				t.Errorf("%s: %s served %d < fifo %d: faster queues must not cost completions",
					trace, pol, r.Served, fifo.Served)
			}
			if r.Grows == 0 {
				t.Errorf("%s: %s recorded no grows; the sweep is not exercising malleability",
					trace, pol)
			}
		}
		if fifo.Grows != 0 || fifo.Shrinks != 0 {
			t.Errorf("%s: fifo must stay rigid, got %d grows %d shrinks",
				trace, fifo.Grows, fifo.Shrinks)
		}
	}
}

// TestMinibatchWritesJSON checks the experiment writes a well-formed
// BENCH_minibatch.json with one row per policy/trace combination.
func TestMinibatchWritesJSON(t *testing.T) {
	r := New(os.Stderr)
	r.Quick = true
	r.ArtifactDir = t.TempDir()
	if err := r.Run("minibatch"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(r.ArtifactDir, "BENCH_minibatch.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []ElasticRow `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if want := len(elasticPolicies()) * len(minibatchTraces(true)); len(doc.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(doc.Rows), want)
	}
	for _, row := range doc.Rows {
		if row.Served == 0 {
			t.Errorf("row %s/%s served nobody", row.Trace, row.Policy)
		}
	}
}
