package bench

// Chaos sweep (experiment "chaos"): the elastic service under a correlated
// failure regime — a rack-scoped group loss, a transient flap, a straggler
// node, and a recovering failure storm — comparing recovery policies over
// the identical chaos schedule: naive front-requeue (restart from scratch,
// unbounded progress loss), checkpoint/restart with a bounded retry budget,
// and checkpoint/restart behind the circuit-breaker admission guard in both
// degrade and shed modes. Not a paper figure — it measures the robustness
// trajectory the recovery engine exists for: terminal-failure rate, p95
// tenant and admission latency, and wasted simulated work. The row set is
// written to BENCH_chaos.json; everything is simulated time, so the
// artifact is byte-identical across runs and -workers counts.

import (
	"encoding/json"
	"os"
	"path/filepath"

	"elasticml/internal/conf"
	"elasticml/internal/fault"
	"elasticml/internal/mr"
	"elasticml/internal/workload"
)

// ChaosRow is one (tenant count, policy) summary, as serialized into
// BENCH_chaos.json.
type ChaosRow struct {
	Tenants int    `json:"tenants"`
	Policy  string `json:"policy"`

	Served            int     `json:"served"`
	FailedPermanently int     `json:"failed_permanently"`
	Shed              int     `json:"shed"`
	Unserved          int     `json:"unserved"`
	TerminalFailRate  float64 `json:"terminal_failure_rate"`

	P95Latency    float64 `json:"p95_latency"`
	P95QueueDelay float64 `json:"p95_queue_delay"`
	Makespan      float64 `json:"makespan"`

	WastedWork   float64 `json:"wasted_work"`
	Requeues     int     `json:"requeues"`
	NodeFailures int     `json:"node_failures"`
	NodeRestores int     `json:"node_restores"`
	BreakerTrips int     `json:"breaker_trips"`
	Degraded     int     `json:"breaker_degraded"`
	Utilization  float64 `json:"utilization"`
}

// chaosCluster spreads four nodes so correlated group losses leave
// survivors to fail over to.
func chaosCluster() conf.Cluster {
	cc := conf.DefaultCluster()
	cc.Nodes = 4
	cc.MemPerNode = 2 * conf.GB
	cc.MaxAlloc = 2 * conf.GB
	return cc
}

// chaosSchedule is the shared failure regime every policy faces: all four
// chaos shapes at once, dense enough that long-running tenants are
// interrupted repeatedly.
func chaosSchedule() fault.ChaosPlan {
	return fault.ChaosPlan{
		Seed:   workloadSeed,
		Groups: []fault.GroupFailure{{Nodes: []int{2, 3}, At: 30, RestoreAfter: 40}},
		Flaps: []fault.Flap{
			{Node: 1, At: 45, RestoreAfter: 6},
			{Node: 0, At: 85, RestoreAfter: 6},
		},
		SlowNodes: []fault.SlowNode{{Node: 0, At: 15, Factor: 3, Duration: 25}},
		Storm:     &fault.Storm{Start: 55, MeanGap: 5, Failures: 30, Recover: 6},
	}
}

// chaosPolicy is one compared recovery configuration.
type chaosPolicy struct {
	name     string
	recovery workload.RecoveryPolicy
	breaker  workload.BreakerPolicy
}

func chaosPolicies() []chaosPolicy {
	ck := workload.DefaultRecoveryPolicy()
	nv := ck
	nv.Kind = workload.RecoveryNaive
	br := workload.DefaultBreakerPolicy()
	br.Enabled = true
	shed := br
	shed.Shed = true
	return []chaosPolicy{
		{name: "naive", recovery: nv},
		{name: "checkpoint", recovery: ck},
		{name: "breaker-degrade", recovery: ck, breaker: br},
		{name: "breaker-shed", recovery: ck, breaker: shed},
	}
}

// Chaos (experiment "chaos") sweeps the recovery policies and writes
// BENCH_chaos.json next to the report.
func (r *Runner) Chaos() error {
	tenantCounts := []int{16, 32}
	if r.Quick {
		tenantCounts = []int{16}
	}
	cc := chaosCluster()
	plan := chaosSchedule()

	r.printf("Chaos recovery sweep: %d-node cluster, %s/node, seed %d\n",
		cc.Nodes, cc.MemPerNode, workloadSeed)
	r.printf("chaos: 1 group loss, 2 flaps, 1 straggler node, 30-loss storm (all recovering)\n")
	r.printf("%8s %-16s %7s %7s %5s %8s %9s %10s %10s %7s %7s\n",
		"tenants", "policy", "served", "failed", "shed", "term%", "p95[s]", "p95adm[s]", "waste[s]", "requeue", "trips")

	var rows []ChaosRow
	for _, n := range tenantCounts {
		jobs := workload.Generate(workloadSeed, n, 3)
		for _, pol := range chaosPolicies() {
			o := workload.DefaultOptions()
			o.Chaos = plan
			o.Recovery = pol.recovery
			o.Breaker = pol.breaker
			o.TaskPolicy = mr.DefaultTaskPolicy()
			rep, err := workload.Run(cc, jobs, o)
			if err != nil {
				return err
			}
			served := 0
			for _, tn := range rep.Tenants {
				if tn.Served {
					served++
				}
			}
			row := ChaosRow{
				Tenants:           n,
				Policy:            pol.name,
				Served:            served,
				FailedPermanently: rep.FailedPermanently,
				Shed:              rep.Shed,
				Unserved:          rep.Unserved,
				TerminalFailRate:  float64(rep.FailedPermanently) / float64(n),
				P95Latency:        rep.P95Latency,
				P95QueueDelay:     rep.P95QueueDelay,
				Makespan:          rep.Makespan,
				WastedWork:        rep.WastedWork,
				Requeues:          rep.Requeues,
				NodeFailures:      rep.NodeFailures,
				NodeRestores:      rep.NodeRestores,
				BreakerTrips:      rep.BreakerTrips,
				Degraded:          rep.BreakerDegraded,
				Utilization:       rep.Utilization,
			}
			rows = append(rows, row)
			r.printf("%8d %-16s %7d %7d %5d %7.0f%% %9.1f %10.1f %10.1f %7d %7d\n",
				n, row.Policy, row.Served, row.FailedPermanently, row.Shed,
				100*row.TerminalFailRate, row.P95Latency, row.P95QueueDelay,
				row.WastedWork, row.Requeues, row.BreakerTrips)
		}
	}
	r.printf("\n")

	path := filepath.Join(r.ArtifactDir, "BENCH_chaos.json")
	if err := writeChaosJSON(path, rows); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// writeChaosJSON serializes the sweep rows with stable formatting.
func writeChaosJSON(path string, rows []ChaosRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Rows []ChaosRow `json:"rows"`
	}{rows}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
