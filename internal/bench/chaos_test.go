package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runChaosSweep executes the chaos sweep in quick mode and returns the
// artifact bytes and parsed rows.
func runChaosSweep(t *testing.T) ([]byte, []ChaosRow) {
	t.Helper()
	dir := t.TempDir()
	var sb strings.Builder
	r := New(&sb)
	r.Quick = true
	r.ArtifactDir = dir
	if err := r.Chaos(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"policy", "waste[s]", "p95adm[s]", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_chaos.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []ChaosRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad artifact JSON: %v", err)
	}
	return data, doc.Rows
}

// TestChaosSweepTrajectory pins the acceptance comparison: under the
// identical correlated-failure schedule, checkpoint/restart completes
// strictly more jobs with strictly less wasted simulated work than naive
// requeue, and the breaker policies bound p95 admission latency while
// actually tripping.
func TestChaosSweepTrajectory(t *testing.T) {
	_, rows := runChaosSweep(t)
	// Quick mode: one tenant count x four policies.
	if len(rows) != 4 {
		t.Fatalf("want 4 sweep rows, got %d", len(rows))
	}
	byPolicy := map[string]ChaosRow{}
	for _, row := range rows {
		byPolicy[row.Policy] = row
		if row.NodeFailures < 3 || row.NodeRestores < 3 {
			t.Errorf("%s: chaos too quiet: %d failures, %d restores", row.Policy, row.NodeFailures, row.NodeRestores)
		}
		if row.Requeues < 1 {
			t.Errorf("%s: no requeues under the storm", row.Policy)
		}
		if row.Utilization <= 0 || row.Utilization > 1 {
			t.Errorf("%s: utilization %v out of range", row.Policy, row.Utilization)
		}
	}
	nv, ck := byPolicy["naive"], byPolicy["checkpoint"]
	if ck.Served <= nv.Served {
		t.Errorf("checkpoint served %d, naive %d — want strictly more", ck.Served, nv.Served)
	}
	if ck.WastedWork >= nv.WastedWork {
		t.Errorf("checkpoint wasted %.1fs, naive %.1fs — want strictly less", ck.WastedWork, nv.WastedWork)
	}
	if ck.FailedPermanently > nv.FailedPermanently {
		t.Errorf("checkpoint terminal failures %d exceed naive's %d", ck.FailedPermanently, nv.FailedPermanently)
	}
	for _, name := range []string{"breaker-degrade", "breaker-shed"} {
		br := byPolicy[name]
		if br.BreakerTrips < 1 {
			t.Errorf("%s: breaker never tripped under the storm", name)
		}
		if br.P95QueueDelay > ck.P95QueueDelay {
			t.Errorf("%s: p95 admission %.1fs exceeds breaker-off %.1fs — breaker must bound admission latency",
				name, br.P95QueueDelay, ck.P95QueueDelay)
		}
	}
	if byPolicy["breaker-shed"].Shed < 1 {
		t.Error("shed-mode breaker shed nothing during the outage")
	}
}

// TestChaosSweepDeterministic: the artifact is byte-identical across runs
// — the chaos gate's in-process counterpart.
func TestChaosSweepDeterministic(t *testing.T) {
	a, _ := runChaosSweep(t)
	b, _ := runChaosSweep(t)
	if !bytes.Equal(a, b) {
		t.Error("BENCH_chaos.json differs between identical runs")
	}
}
