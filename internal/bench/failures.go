package bench

// Failure sweep: end-to-end behaviour of the optimized/adaptive runtime
// under injected faults, against the static B-LL baseline. Not a figure
// from the paper — a robustness experiment over the same simulated stack:
// the elastic runtime retries failed tasks and re-optimizes after node
// loss, so it degrades gracefully where a static no-retry configuration
// aborts outright.

import (
	"errors"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/fault"
	"elasticml/internal/mr"
	"elasticml/internal/rt"
	"elasticml/internal/scripts"
)

// failureSeed fixes the injector seed so the sweep is reproducible: same
// seed, byte-identical report (simulated seconds only — real optimization
// wall time is excluded from every printed number).
const failureSeed = 42

// optCharge is the fixed simulated cost charged per runtime
// re-optimization during the sweep (keeps adaptive runs deterministic).
const optCharge = 2.0

// FailureSweep (experiment "failures") reports simulated end-to-end time
// and recovery activity vs injected failure rate for LinregDS and MLogreg.
func (r *Runner) FailureSweep() error {
	if err := r.taskFailureSweep(); err != nil {
		return err
	}
	return r.nodeFailureSweep()
}

// taskFailureSweep compares B-LL without task retry (Hadoop with
// mapreduce.map.maxattempts=1: the first lost task attempt fails the job)
// against Opt+ReOpt with default retry/speculation, across task-failure
// rates. Straggler injection rides along at half the failure rate.
func (r *Runner) taskFailureSweep() error {
	size := "L"
	rates := []float64{0, 0.02, 0.05, 0.1}
	if r.Quick {
		rates = []float64{0, 0.05}
	}
	bll := Baselines(r.CC)[3]
	progs := []struct {
		spec    scripts.Spec
		classes int64
	}{
		{scripts.LinregDS(), 0},
		{scripts.MLogreg(), 20},
	}
	for _, p := range progs {
		s := datagen.New(size, 1000, 1.0)
		r.printf("Failure sweep: %s, scenario %s dense1000 — simulated time [s] vs task-failure rate (seed %d)\n",
			p.spec.Name, size, failureSeed)
		r.printf("  %5s %14s %11s %9s %7s %12s\n",
			"rate", "B-LL(1 att.)", "Opt+ReOpt", "#retries", "#strag", "recovery[s]")
		for _, rate := range rates {
			plan := fault.Plan{Seed: failureSeed, TaskFailureProb: rate,
				StragglerProb: rate / 2, StragglerFactor: 6}

			bllCol := "ABORT"
			bllRun, err := r.EndToEnd(p.spec, s, RunConfig{
				Res:     conf.NewResources(bll.CP, bll.MR, 1),
				Classes: p.classes,
				Faults:  plan,
				Policy:  mr.TaskPolicy{MaxAttempts: 1},
			})
			if err == nil {
				bllCol = fmtSecs(bllRun.SimSeconds)
			} else if !errors.Is(err, mr.ErrTaskFailed) {
				return err
			}

			optRun, err := r.EndToEnd(p.spec, s, RunConfig{
				Optimize: true, Adapt: true,
				Classes:   p.classes,
				Faults:    plan,
				Policy:    mr.DefaultTaskPolicy(),
				OptCharge: optCharge,
			})
			if err != nil {
				return err
			}
			r.printf("  %5.2f %14s %11.1f %9d %7d %12.1f\n",
				rate, bllCol, optRun.SimSeconds,
				optRun.TaskRetries, optRun.Stragglers, optRun.RecoverySeconds)
		}
		r.printf("\n")
	}
	return nil
}

// nodeFailureSweep measures graceful degradation: MLogreg under 0..N
// injected node failures, with the adapter re-optimizing for the shrunken
// cluster after each loss. A static B-LL run rides along for contrast —
// it survives (the simulated MR layer reschedules work) but keeps its
// stale configuration.
func (r *Runner) nodeFailureSweep() error {
	size := "L"
	maxLost := 3
	if r.Quick {
		maxLost = 2
	}
	bll := Baselines(r.CC)[3]
	spec := scripts.MLogreg()
	s := datagen.New(size, 1000, 1.0)
	r.printf("Node-failure recovery: %s, scenario %s dense1000 — node failures every 30s (seed %d)\n",
		spec.Name, size, failureSeed)
	r.printf("  %6s %9s %9s %8s %11s\n", "#lost", "B-LL", "Opt+ReOpt", "#reopts", "final-nodes")
	for lost := 0; lost <= maxLost; lost++ {
		var failures []fault.NodeFailure
		for i := 0; i < lost; i++ {
			failures = append(failures, fault.NodeFailure{Node: i, At: 30 * float64(i+1)})
		}
		plan := fault.Plan{Seed: failureSeed, NodeFailures: failures}

		bllRun, err := r.EndToEnd(spec, s, RunConfig{
			Res:     conf.NewResources(bll.CP, bll.MR, 1),
			Classes: 20,
			Faults:  plan,
		})
		bllCol := "ABORT"
		if err == nil {
			bllCol = fmtSecs(bllRun.SimSeconds)
		} else if !errors.Is(err, rt.ErrClusterLost) {
			return err
		}

		optRun, err := r.EndToEnd(spec, s, RunConfig{
			Optimize: true, Adapt: true,
			Classes:   20,
			Faults:    plan,
			OptCharge: optCharge,
		})
		optCol := "ABORT"
		reopts := 0
		finalNodes := r.CC.Nodes
		if err == nil {
			optCol = fmtSecs(optRun.SimSeconds)
			reopts = optRun.ContainerLossReopts
			finalNodes = r.CC.Nodes - optRun.NodeFailures
		} else if !errors.Is(err, rt.ErrClusterLost) {
			return err
		}
		r.printf("  %6d %9s %9s %8d %11d\n", lost, bllCol, optCol, reopts, finalNodes)
	}
	r.printf("\n")
	return nil
}
