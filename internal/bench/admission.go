package bench

// Admission hot-path microbenchmark (experiment "admission"): the
// compile-time work the multi-tenant service performs per arriving or
// re-optimized tenant — cache-key derivation, plan-cache lookup, and a
// grid search on every miss. Three components are measured:
//
//   - lookup:    concurrent CacheKey+Lookup throughput (all hits) on the
//     single-lock cache vs the lock-striped sharded cache.
//   - reopt:     repeated §5 re-optimizations of one program under a
//     shifting cluster, fresh grid search vs incremental replay through
//     the re-costing memo.
//   - admission: the combined arrival stream — key, lookup, optimize on
//     miss, insert — comparing the legacy configuration (single-lock
//     cache, fresh searches) against the optimized one (sharded cache,
//     memoized searches). This is the headline admission-throughput
//     number; the summary ratio lands in BENCH_admission.json.
//
// Timings are wall-clock and machine-dependent; the JSON records the
// ratios, which are the reproducible part.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/hop"
	"elasticml/internal/opt"
	"elasticml/internal/scripts"
)

// AdmissionRow is one measured configuration, as serialized into
// BENCH_admission.json.
type AdmissionRow struct {
	Component string  `json:"component"` // lookup | reopt | admission
	Config    string  `json:"config"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// admissionSummary is the machine-readable artifact: per-configuration
// rows plus the three speedup ratios (optimized over baseline).
type admissionSummary struct {
	Rows             []AdmissionRow `json:"rows"`
	LookupSpeedup    float64        `json:"lookup_speedup"`
	ReoptSpeedup     float64        `json:"reopt_speedup"`
	AdmissionSpeedup float64        `json:"admission_speedup"`
}

// admProblem is one tenant program's optimization problem: the compiled
// HOP DAG plus the fields that feed CacheKey/MemoKey.
type admProblem struct {
	source string
	params map[string]interface{}
	hp     *hop.Program
	inputs []opt.InputMeta
	memo   *opt.Memo
}

// admissionProblems compiles the benchmark's tenant programs over XS
// scenarios: small enough that a single grid search is milliseconds, so
// the sweep measures dispatch overhead rather than model evaluation.
func (r *Runner) admissionProblems() ([]*admProblem, error) {
	names := []string{"LinregCG", "L2SVM", "LinregDS"}
	if r.Quick {
		names = names[:2]
	}
	var out []*admProblem
	for _, name := range names {
		spec, ok := scripts.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown script %q", name)
		}
		hp, _, fs, err := r.compileScenario(spec, datagen.New("XS", 1000, 1.0))
		if err != nil {
			return nil, err
		}
		p := &admProblem{source: spec.Source, params: spec.Params, hp: hp}
		for _, fname := range fs.List() {
			f, statErr := fs.Stat(fname)
			if statErr != nil {
				continue
			}
			p.inputs = append(p.inputs, opt.InputMeta{
				Path: fname, Rows: f.Rows, Cols: f.Cols, NNZ: f.NNZ,
				Format: f.Format.String(),
			})
		}
		out = append(out, p)
	}
	return out, nil
}

// admissionVariant derives the i-th cluster state of the churn sequence:
// departures and failures shift MaxAlloc (degraded-admission clamps) and
// the node count, so every epoch's cache keys are distinct while the
// memo keys (cluster-independent) stay shared.
func admissionVariant(base conf.Cluster, i int) conf.Cluster {
	cc := base
	cc.MaxAlloc = base.MaxAlloc - conf.Bytes(i%7)*256*conf.MB
	if cc.MaxAlloc < base.MinAlloc {
		cc.MaxAlloc = base.MinAlloc
	}
	if i%3 == 1 && cc.Nodes > 2 {
		cc.Nodes--
	}
	return cc
}

// runConcurrent spreads n operations over workers goroutines via a pulled
// atomic counter and returns the elapsed wall time.
func runConcurrent(workers, n int, op func(i int)) float64 {
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				op(i)
			}
		}()
	}
	wg.Wait()
	return time.Since(start).Seconds()
}

// Admission (experiment "admission") benchmarks the admission hot path
// and writes BENCH_admission.json next to the report.
func (r *Runner) Admission() error {
	probs, err := r.admissionProblems()
	if err != nil {
		return err
	}
	opts := opt.DefaultOptions()
	opts.Points = 7

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		workers = 2
	}

	lookupOps, reoptOps, epochs, perEpoch := 100000, 40, 16, 6
	if r.Quick {
		lookupOps, reoptOps, epochs, perEpoch = 8000, 10, 6, 4
	}

	var rows []AdmissionRow
	add := func(component, config string, w, ops int, secs float64) float64 {
		tput := float64(ops) / secs
		rows = append(rows, AdmissionRow{
			Component: component, Config: config, Workers: w,
			Ops: ops, Seconds: secs, OpsPerSec: tput,
		})
		r.printf("%10s %18s %3d workers %8d ops %10.4fs %12.0f ops/s\n",
			component, config, w, ops, secs, tput)
		return tput
	}

	r.printf("Admission hot-path microbenchmark (%d problems, %d workers)\n", len(probs), workers)

	// Component 1: concurrent key+lookup throughput on a warm cache. The
	// key stream cycles problems and a handful of cluster variants so
	// every lookup hashes a fresh key and hits.
	const lookupVariants = 8
	keyAt := func(i int) string {
		p := probs[i%len(probs)]
		cc := admissionVariant(r.CC, (i/len(probs))%lookupVariants)
		return opt.CacheKey(p.source, p.params, p.inputs, cc, opts)
	}
	var lookupTputs [2]float64
	for ci, config := range []string{"single-lock", "sharded"} {
		var cache opt.PlanCache
		if config == "single-lock" {
			cache = opt.NewCache(0)
		} else {
			cache = opt.NewSharded(0, 0)
		}
		for i := 0; i < len(probs)*lookupVariants; i++ {
			cache.Insert(keyAt(i), conf.Resources{}, 1)
		}
		secs := runConcurrent(workers, lookupOps, func(i int) {
			if _, _, ok := cache.Lookup(keyAt(i)); !ok {
				panic("bench: lookup miss on a warm cache")
			}
		})
		lookupTputs[ci] = add("lookup", config, workers, lookupOps, secs)
	}

	// Component 2: sequential re-optimization of one program under a
	// churning cluster — the §5 path. The memoized variant replays
	// still-valid cost evaluations instead of re-running the grid search.
	var reoptTputs [2]float64
	for ci, config := range []string{"fresh", "memo"} {
		p := probs[0]
		memo := opt.NewMemo()
		// Untimed warmup: first search populates the memo (and levels
		// any one-time costs for the fresh variant too).
		warm := &opt.Optimizer{CC: r.CC, Opts: opts}
		warm.OptimizeMemo(p.hp, memo)
		start := time.Now()
		for i := 0; i < reoptOps; i++ {
			o := &opt.Optimizer{CC: admissionVariant(r.CC, i), Opts: opts}
			if config == "memo" {
				o.OptimizeMemo(p.hp, memo)
			} else {
				o.Optimize(p.hp)
			}
		}
		reoptTputs[ci] = add("reopt", config, 1, reoptOps, time.Since(start).Seconds())
	}

	// Component 3: the combined arrival stream. Each epoch is a cluster
	// change (departure/failure); within an epoch, perEpoch arrivals per
	// problem race through key+lookup, and misses run the full search.
	admissionOp := func(cache opt.PlanCache, useMemo bool) func(i int) {
		return func(i int) {
			p := probs[i%len(probs)]
			epoch := (i / (len(probs) * perEpoch)) % epochs
			cc := admissionVariant(r.CC, epoch)
			key := opt.CacheKey(p.source, p.params, p.inputs, cc, opts)
			if _, _, ok := cache.Lookup(key); ok {
				return
			}
			o := &opt.Optimizer{CC: cc, Opts: opts}
			var res *opt.Result
			if useMemo {
				res = o.OptimizeMemo(p.hp, p.memo)
			} else {
				res = o.Optimize(p.hp)
			}
			cache.Insert(key, res.Res, res.Cost)
		}
	}
	totalOps := len(probs) * perEpoch * epochs
	var admTputs [2]float64
	for ci, config := range []string{"single-lock+fresh", "sharded+memo"} {
		useMemo := config == "sharded+memo"
		var cache opt.PlanCache
		if useMemo {
			// Fresh memos per run; warmed untimed under the base cluster,
			// mirroring the service's first admission of each program.
			cache = opt.NewSharded(0, 0)
			for _, p := range probs {
				p.memo = opt.NewMemo()
				warm := &opt.Optimizer{CC: r.CC, Opts: opts}
				warm.OptimizeMemo(p.hp, p.memo)
			}
		} else {
			cache = opt.NewCache(0)
		}
		secs := runConcurrent(workers, totalOps, admissionOp(cache, useMemo))
		admTputs[ci] = add("admission", config, workers, totalOps, secs)
	}

	sum := admissionSummary{
		Rows:             rows,
		LookupSpeedup:    lookupTputs[1] / lookupTputs[0],
		ReoptSpeedup:     reoptTputs[1] / reoptTputs[0],
		AdmissionSpeedup: admTputs[1] / admTputs[0],
	}
	r.printf("speedups: lookup %.2fx, reopt %.2fx, admission %.2fx\n\n",
		sum.LookupSpeedup, sum.ReoptSpeedup, sum.AdmissionSpeedup)

	path := filepath.Join(r.ArtifactDir, "BENCH_admission.json")
	if err := writeAdmissionJSON(path, sum); err != nil {
		return err
	}
	r.printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

// writeAdmissionJSON serializes the summary with stable formatting.
func writeAdmissionJSON(path string, sum admissionSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
