package bench

import (
	"time"

	"elasticml/internal/datagen"
	"elasticml/internal/opt"
	"elasticml/internal/perf"
	"elasticml/internal/scripts"
	"elasticml/internal/spark"
)

// Ablations quantifies the optimizer's design choices beyond the paper's
// figures: grid-strategy quality (regret vs a fine reference grid),
// pruning effort savings, the multi-core search dimension, and
// cluster-load-aware re-optimization.
func (r *Runner) Ablations() error {
	if err := r.ablationGrids(); err != nil {
		return err
	}
	if err := r.ablationPruning(); err != nil {
		return err
	}
	if err := r.ablationCores(); err != nil {
		return err
	}
	if err := r.ablationLoad(); err != nil {
		return err
	}
	return r.ablationSparkSizing()
}

// ablationGrids compares found-configuration quality and effort across
// grid strategies, using a fine equi-spaced grid as the reference optimum.
func (r *Runner) ablationGrids() error {
	r.printf("Ablation A: grid strategy quality (LinregCG dense1000 M)\n")
	r.printf("  %-8s %8s %10s %12s %9s\n", "Grid", "points", "est. cost", "regret", "compiles")
	s := datagen.New("M", 1000, 1.0)
	hp, _, _, err := r.compileScenario(scripts.LinregCG(), s)
	if err != nil {
		return err
	}
	// Reference: fine equi grid.
	ref := opt.New(r.CC)
	ref.Opts.GridCP, ref.Opts.GridMR = opt.GridEqui, opt.GridEqui
	ref.Opts.Points = 45
	refRes := ref.Optimize(hp)

	for _, g := range []opt.GridType{opt.GridEqui, opt.GridExp, opt.GridMem, opt.GridHybrid} {
		o := opt.New(r.CC)
		o.Opts.GridCP, o.Opts.GridMR = g, g
		o.Opts.Points = 15
		res := o.Optimize(hp)
		regret := (res.Cost - refRes.Cost) / refRes.Cost * 100
		r.printf("  %-8s %8d %9.1fs %11.2f%% %9d\n", g, res.Stats.CPPoints,
			res.Cost, regret, res.Stats.BlockCompilations)
	}
	r.printf("  (reference: Equi m=45, %.1fs, %d compiles)\n\n",
		refRes.Cost, refRes.Stats.BlockCompilations)
	return nil
}

// ablationPruning reports effort with and without block pruning across the
// five programs.
func (r *Runner) ablationPruning() error {
	r.printf("Ablation B: block pruning effort savings (dense1000 M, Hybrid m=15)\n")
	r.printf("  %-10s %12s %12s %9s %12s\n", "Program", "compiles", "no-pruning", "savings", "cost delta")
	s := datagen.New("M", 1000, 1.0)
	for _, spec := range scripts.All() {
		hp, _, _, err := r.compileScenario(spec, s)
		if err != nil {
			return err
		}
		with := opt.New(r.CC)
		a := with.Optimize(hp)
		without := opt.New(r.CC)
		without.Opts.DisablePruning = true
		b := without.Optimize(hp)
		sav := 100 * (1 - float64(a.Stats.BlockCompilations)/float64(b.Stats.BlockCompilations))
		r.printf("  %-10s %12d %12d %8.1f%% %11.2f%%\n", spec.Name,
			a.Stats.BlockCompilations, b.Stats.BlockCompilations, sav,
			100*(a.Cost-b.Cost)/b.Cost)
	}
	r.printf("\n")
	return nil
}

// ablationCores evaluates the additional CP-core search dimension (§6).
func (r *Runner) ablationCores() error {
	r.printf("Ablation C: CP core dimension (§6), dense1000 M\n")
	r.printf("  %-10s %14s %14s %7s\n", "Program", "1-core cost", "multi cost", "cores")
	s := datagen.New("M", 1000, 1.0)
	for _, spec := range []scripts.Spec{scripts.LinregDS(), scripts.LinregCG(), scripts.L2SVM()} {
		hp, _, _, err := r.compileScenario(spec, s)
		if err != nil {
			return err
		}
		single := opt.New(r.CC)
		single.Opts.Points = 7
		a := single.Optimize(hp)
		multi := opt.New(r.CC)
		multi.Opts.Points = 7
		multi.Opts.CPCoreCandidates = []int{1, 4, 12}
		b := multi.Optimize(hp)
		r.printf("  %-10s %13.1fs %13.1fs %7d\n", spec.Name, a.Cost, b.Cost, b.Res.Cores())
	}
	r.printf("\n")
	return nil
}

// ablationSparkSizing demonstrates the §6/Appendix-D potential analysis:
// right-sizing Spark-style executor configurations instead of statically
// claiming the cluster.
func (r *Runner) ablationSparkSizing() error {
	r.printf("Ablation E: Spark executor right-sizing (L2SVM hybrid plan)\n")
	r.printf("  %-9s %10s %9s %12s %6s %14s\n",
		"Scenario", "static", "sized", "config", "apps", "agg. thpt gain")
	pm := perf.Default()
	static := spark.DefaultConfig()
	for _, size := range []string{"S", "M", "L"} {
		s := datagen.New(size, 1000, 1.0)
		w := spark.L2SVMWorkload{Rows: s.Rows(), Cols: s.Cols, Sparsity: s.Sparsity,
			OuterIters: 5, InnerIters: 5}
		staticCost := spark.Estimate(static, pm, w, spark.PlanHybrid)
		sized := spark.OptimizeExecutors(r.CC, pm, w, spark.PlanHybrid, 1.2)
		gain := (float64(sized.MaxParallelApps) / sized.Cost) / (1.0 / staticCost)
		r.printf("  %-9s %9.1fs %8.1fs %5dx%7v %6d %13.1fx\n",
			size, staticCost, sized.Cost,
			sized.Config.Executors, sized.Config.ExecutorMem,
			sized.MaxParallelApps, gain)
	}
	r.printf("\n")
	return nil
}

// ablationLoad shows utilization-based re-optimization (§6): optimal
// configurations and costs as cluster load increases.
func (r *Runner) ablationLoad() error {
	r.printf("Ablation D: cluster-utilization-aware optimization (LinregDS dense1000 M)\n")
	r.printf("  %-8s %16s %12s %12s\n", "load", "config", "est. cost", "opt time")
	s := datagen.New("M", 1000, 1.0)
	hp, _, _, err := r.compileScenario(scripts.LinregDS(), s)
	if err != nil {
		return err
	}
	for _, load := range []float64{0, 0.5, 0.84, 0.95} {
		o := opt.New(r.CC)
		o.Opts.Points = 7
		o.Opts.ClusterLoad = load
		res := o.Optimize(hp)
		r.printf("  %-8.2f %16s %11.1fs %12v\n", load, res.Res.String(), res.Cost,
			res.Stats.OptTime.Round(time.Millisecond))
	}
	r.printf("\n")
	return nil
}
