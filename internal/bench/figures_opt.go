package bench

import (
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/opt"
	"elasticml/internal/scripts"
	"elasticml/internal/yarn"
)

// Figure12 regenerates the end-to-end throughput comparison: Opt vs B-LL
// for LinregDS (scenario S dense1000) and L2SVM (scenario M sparse100)
// across 1-128 users with 8 applications each (§5.3).
func (r *Runner) Figure12() error {
	cases := []struct {
		spec    scripts.Spec
		s       datagen.Scenario
		classes int64
	}{
		{scripts.LinregDS(), datagen.New("S", 1000, 1.0), 0},
		{scripts.L2SVM(), datagen.New("M", 100, 0.01), 0},
	}
	users := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if r.Quick {
		users = []int{1, 8, 32, 128}
	}
	bll := Baselines(r.CC)[3]
	for _, tc := range cases {
		optRun, err := r.EndToEnd(tc.spec, tc.s, RunConfig{Optimize: true, Classes: tc.classes})
		if err != nil {
			return err
		}
		bllRun, err := r.EndToEnd(tc.spec, tc.s, RunConfig{
			Res: conf.NewResources(bll.CP, bll.MR, 1), Classes: tc.classes})
		if err != nil {
			return err
		}
		r.printf("Figure 12: %s %s %s — throughput [apps/min]\n",
			tc.spec.Name, tc.s.Size, tc.s.ShapeName())
		r.printf("  Opt config %s (%.0fs/app, max %d parallel) vs B-LL %s (%.0fs/app, max %d parallel)\n",
			optRun.Res.String(), optRun.Seconds,
			yarn.MaxConcurrentApps(r.CC, optRun.Res.CP),
			bll.CP, bllRun.Seconds, yarn.MaxConcurrentApps(r.CC, bll.CP))
		r.printf("  %-7s %10s %10s %8s\n", "#Users", "Opt", "B-LL", "speedup")
		for _, u := range users {
			optT := yarn.SimulateThroughput(r.CC, yarn.ThroughputSpec{
				Users: u, AppsPerUser: 8, AMHeap: optRun.Res.CP, Duration: optRun.Seconds})
			bllT := yarn.SimulateThroughput(r.CC, yarn.ThroughputSpec{
				Users: u, AppsPerUser: 8, AMHeap: bll.CP, Duration: bllRun.Seconds})
			speedup := 0.0
			if bllT.AppsPerMinute > 0 {
				speedup = optT.AppsPerMinute / bllT.AppsPerMinute
			}
			r.printf("  %-7d %10.1f %10.1f %7.1fx\n", u, optT.AppsPerMinute, bllT.AppsPerMinute, speedup)
		}
		r.printf("\n")
	}
	return nil
}

// Figure13 regenerates the grid-generator comparison: number of generated
// points per dimension for LinregDS dense1000 scenarios XS-XL with base
// grids of m=15 and m=45 points.
func (r *Runner) Figure13() error {
	for _, m := range []int{15, 45} {
		r.printf("Figure 13: grid points per dimension (LinregDS dense1000, base grid m=%d)\n", m)
		r.printf("  %-9s %6s %6s %6s %8s\n", "Scenario", "Equi", "Exp", "Mem", "Hybrid")
		for _, size := range datagen.Sizes {
			s := datagen.New(size, 1000, 1.0)
			hp, _, _, err := r.compileScenario(scripts.LinregDS(), s)
			if err != nil {
				return err
			}
			counts := make(map[opt.GridType]int)
			for _, g := range []opt.GridType{opt.GridEqui, opt.GridExp, opt.GridMem, opt.GridHybrid} {
				counts[g] = len(opt.EnumGridPoints(hp, r.CC, g, m))
			}
			r.printf("  %-9s %6d %6d %6d %8d\n", size,
				counts[opt.GridEqui], counts[opt.GridExp], counts[opt.GridMem], counts[opt.GridHybrid])
		}
		r.printf("\n")
	}
	return nil
}

// Figure14 regenerates the pruning effectiveness chart: percentage of
// remaining blocks (MR dimension enumerated) after pruning, per program
// and scenario on dense1000 data.
func (r *Runner) Figure14() error {
	r.printf("Figure 14: remaining blocks after pruning [%%] (dense, 1000 cols)\n")
	r.printf("  %-10s", "Scenario")
	for _, spec := range scripts.All() {
		r.printf(" %9s", spec.Name)
	}
	r.printf("\n")
	maxSize := "XL"
	if r.Quick {
		maxSize = "M"
	}
	for _, size := range sizesUpTo(maxSize) {
		r.printf("  %-10s", size)
		for _, spec := range scripts.All() {
			s := datagen.New(size, 1000, 1.0)
			hp, _, _, err := r.compileScenario(spec, s)
			if err != nil {
				return err
			}
			o := opt.New(r.CC)
			if r.Quick {
				o.Opts.Points = 7
			}
			res := o.Optimize(hp)
			pct := 0.0
			if res.Stats.TotalBlocks > 0 {
				pct = 100 * float64(res.Stats.RemainingBlocks) / float64(res.Stats.TotalBlocks)
			}
			r.printf(" %8.1f%%", pct)
		}
		r.printf("\n")
	}
	r.printf("\n")
	return nil
}

// Table3 regenerates the optimization-overhead details on dense1000: block
// recompilations, cost-model invocations, optimization time, and relative
// overhead versus total execution time (Hybrid, m=15, sequential).
func (r *Runner) Table3() error {
	r.printf("Table 3: Optimization Details Dense1000 (Hybrid m=15, sequential)\n")
	r.printf("%-10s %-5s %8s %8s %10s %8s\n", "Prog.", "Scen.", "#Comp.", "#Cost.", "Opt.Time", "%%")
	for _, spec := range scripts.All() {
		maxSize := "L"
		if spec.Name == "LinregDS" {
			maxSize = "XL"
		}
		if r.Quick {
			maxSize = "M"
		}
		classes := int64(0)
		if spec.Name == "MLogreg" {
			classes = 20
		}
		for _, size := range sizesUpTo(maxSize) {
			s := datagen.New(size, 1000, 1.0)
			run, err := r.EndToEnd(spec, s, RunConfig{Optimize: true, Classes: classes})
			if err != nil {
				return err
			}
			rel := 0.0
			if run.Seconds > 0 {
				rel = 100 * run.OptSeconds / run.Seconds
			}
			r.printf("%-10s %-5s %8d %8d %9.3fs %7.2f\n",
				spec.Name, size, run.OptStats.BlockCompilations,
				run.OptStats.Costings, run.OptSeconds, rel)
		}
	}
	r.printf("\n")
	return nil
}

// Figure15 regenerates the runtime-adaptation comparison: MLogreg and GLM
// on scenarios S and M across the four shapes — B-LL vs Opt (no
// adaptation) vs ReOpt (with adaptation), annotated with migration counts.
func (r *Runner) Figure15() error {
	bll := Baselines(r.CC)[3]
	sizes := []string{"S", "M"}
	if r.Quick {
		sizes = []string{"S"}
	}
	for _, size := range sizes {
		r.printf("Figure 15: runtime plan adaptation, scenario %s — time [s] (migrations)\n", size)
		r.printf("  %-9s %-11s %9s %9s %9s %6s\n", "Prog.", "shape", "B-LL", "Opt", "ReOpt", "#mig")
		glmBinomial := scripts.GLM()
		glmBinomial.Params["dfam"] = float64(2) // binomial: data-dependent response expansion
		for _, spec := range []scripts.Spec{scripts.MLogreg(), glmBinomial} {
			classes := int64(20)
			shapes := datagen.Shapes()
			if r.Quick {
				shapes = shapes[:2]
			}
			for _, sh := range shapes {
				s := datagen.New(size, sh.Cols, sh.Sparsity)
				bllRun, err := r.EndToEnd(spec, s, RunConfig{
					Res: conf.NewResources(bll.CP, bll.MR, 1), Classes: classes})
				if err != nil {
					return err
				}
				optRun, err := r.EndToEnd(spec, s, RunConfig{Optimize: true, Classes: classes})
				if err != nil {
					return err
				}
				reoptRun, err := r.EndToEnd(spec, s, RunConfig{Optimize: true, Adapt: true, Classes: classes})
				if err != nil {
					return err
				}
				r.printf("  %-9s %-11s %9.1f %9.1f %9.1f %6d\n",
					spec.Name, s.ShapeName(), bllRun.Seconds, optRun.Seconds,
					reoptRun.Seconds, reoptRun.Migrations)
			}
		}
		r.printf("\n")
	}
	return nil
}

// Figure18 regenerates the parallel-optimizer comparison: GLM dense1000
// optimization time with 1-16 worker threads (Equi m=45, scenario L) and
// serial vs parallel across scenarios (Hybrid).
func (r *Runner) Figure18() error {
	size := "L"
	if r.Quick {
		size = "M"
	}
	s := datagen.New(size, 1000, 1.0)
	hp, _, _, err := r.compileScenario(scripts.GLM(), s)
	if err != nil {
		return err
	}
	r.printf("Figure 18(a): GLM dense1000 %s, Equi m=45 — optimization time\n", size)
	r.printf("  %-8s %12s\n", "#Threads", "Opt time")
	threads := []int{1, 2, 4, 8, 16}
	var serialTime time.Duration
	for _, w := range threads {
		o := opt.New(r.CC)
		o.Opts.GridCP, o.Opts.GridMR = opt.GridEqui, opt.GridEqui
		o.Opts.Points = 45
		o.Opts.Workers = w
		res := o.Optimize(hp)
		if w == 1 {
			serialTime = res.Stats.OptTime
		}
		r.printf("  %-8d %12v\n", w, res.Stats.OptTime.Round(time.Millisecond))
	}
	_ = serialTime

	r.printf("Figure 18(b): GLM dense1000, Hybrid — serial vs parallel per scenario\n")
	r.printf("  %-9s %12s %12s\n", "Scenario", "Serial", "Parallel(8)")
	maxSize := "L"
	if r.Quick {
		maxSize = "M"
	}
	for _, size := range sizesUpTo(maxSize) {
		sc := datagen.New(size, 1000, 1.0)
		hp2, _, _, err := r.compileScenario(scripts.GLM(), sc)
		if err != nil {
			return err
		}
		serial := opt.New(r.CC)
		serRes := serial.Optimize(hp2)
		par := opt.New(r.CC)
		par.Opts.Workers = 8
		parRes := par.Optimize(hp2)
		r.printf("  %-9s %12v %12v\n", size,
			serRes.Stats.OptTime.Round(time.Millisecond),
			parRes.Stats.OptTime.Round(time.Millisecond))
	}
	r.printf("\n")
	return nil
}
