// Package mesos implements the offer-based problem instantiation of the
// resource allocation problem (paper §2.3): "For offer-based resource
// allocation as used in Mesos, we are also interested in the optimal
// resource allocation R*_P but have additional optimization decisions in
// case of non-matching offers."
//
// A Mesos-style master pushes resource offers (per-agent memory) to the
// framework; the framework cannot request arbitrary container sizes, it
// can only accept or decline what is offered. The scheduler here combines
// the core resource optimizer with the offer decision: accept the smallest
// sufficient offer for R*_P's master container; if no offer matches,
// re-optimize *constrained to the offered resources* and compare the
// constrained plan against the estimated cost of declining and waiting for
// better offers.
package mesos

import (
	"fmt"
	"sort"

	"elasticml/internal/conf"
	"elasticml/internal/hop"
	"elasticml/internal/opt"
)

// Offer is one resource offer from the master: memory on a single agent.
type Offer struct {
	ID    int64
	Agent int
	Mem   conf.Bytes
}

// Decision is the framework's response to an offer round.
type Decision struct {
	// Decline indicates all offers were declined (waiting is cheaper).
	Decline bool
	// Accepted is the offer chosen for the master (CP) container.
	Accepted Offer
	// Res is the resource configuration the program will run with. When
	// the preferred R*_P did not match any offer, this is the best
	// configuration feasible within the offered resources.
	Res conf.Resources
	// Cost is the estimated execution time under Res.
	Cost float64
	// Constrained reports that Res was re-optimized under offer
	// constraints rather than the cluster-wide optimum.
	Constrained bool
}

// Scheduler makes offer decisions for ML programs.
type Scheduler struct {
	// CC is the underlying cluster configuration (capacity, block size).
	CC conf.Cluster
	// Opt configures the embedded resource optimizer.
	Opt opt.Options
	// WaitPenalty is the estimated seconds of delay incurred by declining
	// an offer round and waiting for better offers.
	WaitPenalty float64
}

// NewScheduler returns a scheduler with default optimizer options and a
// one-minute wait penalty.
func NewScheduler(cc conf.Cluster) *Scheduler {
	return &Scheduler{CC: cc, Opt: opt.DefaultOptions(), WaitPenalty: 60}
}

// Decide evaluates an offer round for the program: it computes the
// unconstrained optimum R*_P, tries to place its master container on the
// smallest sufficient offer, and otherwise weighs a constrained
// re-optimization against declining.
func (s *Scheduler) Decide(hp *hop.Program, offers []Offer) (Decision, error) {
	if len(offers) == 0 {
		return Decision{Decline: true}, nil
	}
	o := &opt.Optimizer{CC: s.CC, Opts: s.Opt}
	want := o.Optimize(hp)
	if want == nil {
		return Decision{}, fmt.Errorf("mesos: optimization yielded no configuration")
	}

	// Accept the smallest offer that covers the preferred master container
	// (minimality prevents hoarding offered resources).
	need := s.CC.ContainerSize(want.Res.CP)
	sorted := append([]Offer{}, offers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Mem < sorted[j].Mem })
	for _, of := range sorted {
		if of.Mem >= need {
			return Decision{Accepted: of, Res: want.Res, Cost: want.Cost}, nil
		}
	}

	// Non-matching offers: re-optimize with the allocation ceiling clamped
	// to the largest offer, then compare against waiting.
	largest := sorted[len(sorted)-1]
	ccConstrained := s.CC
	if largest.Mem < ccConstrained.MaxAlloc {
		ccConstrained.MaxAlloc = largest.Mem
	}
	oc := &opt.Optimizer{CC: ccConstrained, Opts: s.Opt}
	constrained := oc.Optimize(hp)
	if constrained == nil {
		return Decision{Decline: true}, nil
	}
	if constrained.Cost <= want.Cost+s.WaitPenalty {
		return Decision{
			Accepted:    largest,
			Res:         constrained.Res,
			Cost:        constrained.Cost,
			Constrained: true,
		}, nil
	}
	return Decision{Decline: true}, nil
}

// Master is a minimal offer-generating master for tests and examples: it
// tracks per-agent free memory and emits one offer per agent with capacity.
type Master struct {
	free []conf.Bytes
	next int64
}

// NewMaster returns a master over the cluster's worker agents.
func NewMaster(cc conf.Cluster) *Master {
	free := make([]conf.Bytes, cc.Nodes)
	for i := range free {
		free[i] = cc.MemPerNode
	}
	return &Master{free: free}
}

// Offers returns the current offer round (one offer per agent with free
// memory).
func (m *Master) Offers() []Offer {
	var out []Offer
	for agent, mem := range m.free {
		if mem > 0 {
			m.next++
			out = append(out, Offer{ID: m.next, Agent: agent, Mem: mem})
		}
	}
	return out
}

// Accept consumes memory from the offer's agent.
func (m *Master) Accept(of Offer, mem conf.Bytes) error {
	if of.Agent < 0 || of.Agent >= len(m.free) {
		return fmt.Errorf("mesos: unknown agent %d", of.Agent)
	}
	if mem > m.free[of.Agent] {
		return fmt.Errorf("mesos: accepting %v exceeds agent %d free %v", mem, of.Agent, m.free[of.Agent])
	}
	m.free[of.Agent] -= mem
	return nil
}

// Release returns memory to an agent.
func (m *Master) Release(agent int, mem conf.Bytes) {
	if agent >= 0 && agent < len(m.free) {
		m.free[agent] += mem
	}
}
