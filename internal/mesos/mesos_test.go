package mesos

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/datagen"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/scripts"
)

func compileFor(t *testing.T, spec scripts.Spec, size string, cols int64) *hop.Program {
	t.Helper()
	fs := hdfs.New()
	datagen.Describe(fs, datagen.New(size, cols, 1.0))
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hop.NewCompiler(fs, spec.Params).Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	return hp
}

func TestAcceptSmallestSufficientOffer(t *testing.T) {
	cc := conf.DefaultCluster()
	s := NewScheduler(cc)
	s.Opt.Points = 7
	hp := compileFor(t, scripts.LinregCG(), "M", 1000) // wants ~11GB CP
	offers := []Offer{
		{ID: 1, Agent: 0, Mem: 80 * conf.GB},
		{ID: 2, Agent: 1, Mem: 20 * conf.GB},
		{ID: 3, Agent: 2, Mem: 4 * conf.GB},
	}
	dec, err := s.Decide(hp, offers)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Decline || dec.Constrained {
		t.Fatalf("matching offers should be accepted unconstrained: %+v", dec)
	}
	// The 20GB offer suffices for an ~11GB CP container; the 80GB offer
	// must not be hoarded.
	if dec.Accepted.ID != 2 {
		t.Errorf("accepted offer %d, want the smallest sufficient (2)", dec.Accepted.ID)
	}
}

func TestNonMatchingOffersReoptimizeConstrained(t *testing.T) {
	cc := conf.DefaultCluster()
	s := NewScheduler(cc)
	s.Opt.Points = 7
	s.WaitPenalty = 1e9 // waiting effectively forbidden
	hp := compileFor(t, scripts.LinregCG(), "M", 1000)
	// Only small offers: the preferred large-CP config cannot be placed.
	offers := []Offer{
		{ID: 1, Agent: 0, Mem: 4 * conf.GB},
		{ID: 2, Agent: 1, Mem: 6 * conf.GB},
	}
	dec, err := s.Decide(hp, offers)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Decline {
		t.Fatal("with a prohibitive wait penalty the scheduler must run constrained")
	}
	if !dec.Constrained {
		t.Error("decision should be marked constrained")
	}
	if cc.ContainerSize(dec.Res.CP) > 6*conf.GB {
		t.Errorf("constrained config %v does not fit the largest offer", dec.Res)
	}
}

func TestDeclineWhenWaitingIsCheaper(t *testing.T) {
	cc := conf.DefaultCluster()
	s := NewScheduler(cc)
	s.Opt.Points = 7
	s.WaitPenalty = 0 // any constrained slowdown beats waiting zero seconds
	hp := compileFor(t, scripts.LinregCG(), "M", 1000)
	offers := []Offer{{ID: 1, Agent: 0, Mem: conf.GB}}
	dec, err := s.Decide(hp, offers)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Decline {
		t.Errorf("zero wait penalty should decline tiny offers, got %+v", dec)
	}
}

func TestEmptyOfferRound(t *testing.T) {
	s := NewScheduler(conf.DefaultCluster())
	dec, err := s.Decide(nil, nil)
	if err != nil || !dec.Decline {
		t.Errorf("empty round should decline: %+v, %v", dec, err)
	}
}

func TestMasterAccounting(t *testing.T) {
	cc := conf.DefaultCluster()
	m := NewMaster(cc)
	offers := m.Offers()
	if len(offers) != cc.Nodes {
		t.Fatalf("offers = %d, want %d", len(offers), cc.Nodes)
	}
	if err := m.Accept(offers[0], 30*conf.GB); err != nil {
		t.Fatal(err)
	}
	// Next round's offer from that agent shrinks.
	round2 := m.Offers()
	if round2[0].Mem != cc.MemPerNode-30*conf.GB {
		t.Errorf("agent 0 offer = %v", round2[0].Mem)
	}
	if err := m.Accept(round2[0], 100*conf.GB); err == nil {
		t.Error("over-acceptance should fail")
	}
	m.Release(0, 30*conf.GB)
	if m.Offers()[0].Mem != cc.MemPerNode {
		t.Error("release not accounted")
	}
}

// End-to-end: master/scheduler loop places two programs on the cluster.
func TestOfferLoopPlacesPrograms(t *testing.T) {
	cc := conf.DefaultCluster()
	m := NewMaster(cc)
	s := NewScheduler(cc)
	s.Opt.Points = 7
	placed := 0
	for i := 0; i < 2; i++ {
		hp := compileFor(t, scripts.LinregCG(), "M", 1000)
		dec, err := s.Decide(hp, m.Offers())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Decline {
			t.Fatalf("placement %d declined unexpectedly", i)
		}
		if err := m.Accept(dec.Accepted, cc.ContainerSize(dec.Res.CP)); err != nil {
			t.Fatal(err)
		}
		placed++
	}
	if placed != 2 {
		t.Errorf("placed %d programs, want 2", placed)
	}
}
