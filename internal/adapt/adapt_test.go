package adapt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hdfs"
	"elasticml/internal/hop"
	"elasticml/internal/lop"
	"elasticml/internal/rt"
	"elasticml/internal/scripts"
	"elasticml/internal/yarn"
)

// setup compiles a spec in sim mode over descriptor data and returns an
// interpreter wired to a fresh adapter.
func setup(t *testing.T, spec scripts.Spec, n, m int64, tableCols int64) (*rt.Interp, *Adapter, *lop.Plan) {
	t.Helper()
	fs := hdfs.New()
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y", n, 1, n, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cc := conf.DefaultCluster()
	res := conf.NewResources(512*conf.MB, 2*conf.GB, hp.NumLeaf)
	plan := lop.Select(hp, cc, res)
	ip := rt.New(rt.ModeSim, fs, cc, res)
	ip.Compiler = comp
	ip.SimTableCols = tableCols
	ad := New(cc)
	ad.Opt.Points = 7
	ip.Adapter = ad
	return ip, ad, plan
}

func TestMLogregAdaptsAndMigrates(t *testing.T) {
	// Scenario M dense100: 1e7 x 100 = 8GB; 200 classes make the gradient
	// matrices huge and unknown initially (the paper's §4.2 example).
	ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	if err := ip.Run(plan); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ad.Stats.Reoptimizations == 0 {
		t.Error("expected runtime re-optimizations")
	}
	if ip.Stats.Migrations == 0 {
		t.Error("expected at least one migration (initial 512MB CP is far off)")
	}
	if ip.Stats.Migrations > 3 {
		t.Errorf("too many migrations: %d (paper: at most two)", ip.Stats.Migrations)
	}
	if ip.Res.CP <= 512*conf.MB {
		t.Errorf("CP should have grown, still %v", ip.Res.CP)
	}
}

func TestAdaptationImprovesRuntime(t *testing.T) {
	runWith := func(adapter bool) float64 {
		ip, _, plan := setup(t, scripts.MLogreg(), 100_000, 1000, 2)
		if !adapter {
			ip.Adapter = nil
		}
		if err := ip.Run(plan); err != nil {
			t.Fatalf("run: %v", err)
		}
		return ip.SimTime
	}
	with := runWith(true)
	without := runWith(false)
	if with > without*1.05 {
		t.Errorf("adaptation slowed execution: %.1fs vs %.1fs", with, without)
	}
}

func TestNoMigrationWhenConfigAlreadyGood(t *testing.T) {
	// Large-CP start: re-optimization should not migrate.
	fs := hdfs.New()
	n, m := int64(100_000), int64(100) // 80MB
	fs.PutDescriptor("/data/X", n, m, n*m, hdfs.BinaryBlock)
	fs.PutDescriptor("/data/y_labels", n, 1, n, hdfs.BinaryBlock)
	spec := scripts.MLogreg()
	prog, err := dml.Parse(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp := hop.NewCompiler(fs, spec.Params)
	hp, err := comp.Compile(prog, spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	cc := conf.DefaultCluster()
	res := conf.NewResources(8*conf.GB, 2*conf.GB, hp.NumLeaf)
	plan := lop.Select(hp, cc, res)
	ip := rt.New(rt.ModeSim, fs, cc, res)
	ip.Compiler = comp
	ip.SimTableCols = 2
	ad := New(cc)
	ad.Opt.Points = 7
	ip.Adapter = ad
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	if ip.Stats.Migrations != 0 {
		t.Errorf("well-provisioned run migrated %d times", ip.Stats.Migrations)
	}
}

func TestMigrationExportsState(t *testing.T) {
	ip, _, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	if ip.Stats.Migrations == 0 {
		t.Skip("no migration occurred")
	}
	// The AM state (live variables + config marker) must be on the DFS.
	found := 0
	for _, name := range ip.FS.List() {
		if len(name) > len(rt.StatePrefix) && name[:len(rt.StatePrefix)] == rt.StatePrefix {
			found++
		}
	}
	if found < 2 {
		t.Errorf("expected exported AM state on DFS, found %d entries", found)
	}
	if !ip.FS.Exists(rt.StatePrefix + "X") {
		t.Error("live input binding X missing from exported state")
	}
}

func TestMigrationAllocatesContainers(t *testing.T) {
	ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	rm := yarn.NewResourceManager(conf.DefaultCluster())
	ad.RM = rm
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	if ip.Stats.Migrations > 0 {
		if rm.AllocatedCount() == 0 {
			t.Error("migration should hold a new container (AM chaining)")
		}
		ad.Release()
		if rm.AllocatedCount() != 0 {
			t.Error("Release should roll in the AM chain")
		}
	}
}

func TestScopeExpandsToOuterLoop(t *testing.T) {
	// A recompiled block inside nested loops must re-optimize a scope that
	// includes the outer loop; we verify indirectly: MLogreg re-optimizes
	// few times (the loop is covered once) rather than per iteration.
	ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	// 5 outer x 5 inner iterations would mean dozens of re-optimizations
	// if the scope failed to stabilize the configuration.
	if ad.Stats.Reoptimizations > 12 {
		t.Errorf("re-optimized %d times; scope expansion ineffective", ad.Stats.Reoptimizations)
	}
}
