package adapt

import (
	"testing"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/fault"
	"elasticml/internal/lop"
	"elasticml/internal/rt"
	"elasticml/internal/scripts"
)

// captureAdapter records the first adaptation context while delegating to a
// real adapter, so tests can replay the context with altered fields.
type captureAdapter struct {
	inner *Adapter
	ctx   *rt.AdaptContext
}

func (c *captureAdapter) Adapt(ctx *rt.AdaptContext) *rt.AdaptDecision {
	if c.ctx == nil {
		c.ctx = ctx
	}
	return c.inner.Adapt(ctx)
}

func TestContainerLossReoptimizesAndCompletes(t *testing.T) {
	ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	nodes0 := ip.CC.Nodes
	ad.OptCharge = 2 // deterministic simulated charge
	ip.Faults = fault.MustInjector(fault.Plan{Seed: 1,
		NodeFailures: []fault.NodeFailure{{Node: 0, At: 0}}})
	if err := ip.Run(plan); err != nil {
		t.Fatalf("run with node failure: %v", err)
	}
	if ip.Stats.NodeFailures != 1 {
		t.Fatalf("NodeFailures = %d", ip.Stats.NodeFailures)
	}
	if ad.Stats.ContainerLossReopts == 0 {
		t.Error("node failure did not trigger a container-loss re-optimization")
	}
	if ip.CC.Nodes != nodes0-1 {
		t.Errorf("cluster is %d nodes, want %d", ip.CC.Nodes, nodes0-1)
	}
}

func TestGracefulDegradationUnderNodeLoss(t *testing.T) {
	run := func(failures []fault.NodeFailure) float64 {
		ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
		ad.OptCharge = 2
		if len(failures) > 0 {
			ip.Faults = fault.MustInjector(fault.Plan{Seed: 1, NodeFailures: failures})
		}
		if err := ip.Run(plan); err != nil {
			t.Fatalf("run: %v", err)
		}
		return ip.SimTime
	}
	healthy := run(nil)
	degraded := run([]fault.NodeFailure{{Node: 0, At: 0}, {Node: 1, At: 1}})
	// Fewer nodes must cost time, but bounded: re-optimization under the
	// shrunken cluster keeps the slowdown proportionate, not catastrophic.
	if degraded <= healthy {
		t.Errorf("losing 2 nodes should not be free: %.1fs vs %.1fs", degraded, healthy)
	}
	if degraded > healthy*4 {
		t.Errorf("degradation not graceful: %.1fs vs %.1fs", degraded, healthy)
	}
}

// adaptedContext runs the adaptation scenario once and returns a genuine
// recompile-trigger context for replay-based edge-case tests.
func adaptedContext(t *testing.T) (*rt.AdaptContext, conf.Cluster) {
	t.Helper()
	ip, ad, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	cap := &captureAdapter{inner: ad}
	ip.Adapter = cap
	if err := ip.Run(plan); err != nil {
		t.Fatal(err)
	}
	if cap.ctx == nil {
		t.Fatal("adapter never consulted")
	}
	return cap.ctx, ip.CC
}

func TestMigrationDeclinedWhenCostExceedsBenefit(t *testing.T) {
	ctx, cc := adaptedContext(t)
	// A petabyte of dirty state makes C_M astronomically larger than any
	// achievable ΔC: the adapter must keep the current container.
	declined := *ctx
	declined.DirtyBytes = conf.Bytes(1) << 50
	ad := New(cc)
	ad.Opt.Points = 7
	ad.OptCharge = 0
	dec := ad.Adapt(&declined)
	if dec == nil {
		t.Fatal("re-optimization itself should still succeed")
	}
	if dec.Migrate {
		t.Error("migration accepted although C_M >> ΔC")
	}
	if ad.Stats.Migrations != 0 {
		t.Errorf("Migrations = %d", ad.Stats.Migrations)
	}
}

func TestZeroDirtyVariablesMigrationCost(t *testing.T) {
	ctx, cc := adaptedContext(t)
	// With no dirty variables the only migration cost is the container
	// allocation latency (the checkpoint export is empty).
	clean := *ctx
	clean.DirtyBytes = 0
	ad := New(cc)
	ad.Opt.Points = 7
	ad.OptCharge = 0
	dec := ad.Adapt(&clean)
	if dec == nil {
		t.Fatal("no decision")
	}
	if !dec.Migrate {
		t.Skip("scenario no longer migrates; cost assertion not applicable")
	}
	if got, want := dec.ExtraTime, ad.PM.ContainerAllocLatency; got != want {
		t.Errorf("zero-dirty migration cost = %.3fs, want bare alloc latency %.3fs", got, want)
	}
}

func TestScopeAnchorsAtOutermostLoop(t *testing.T) {
	ip, _, plan := setup(t, scripts.MLogreg(), 1_000_000, 100, 200)
	_ = ip
	// Find a generic block nested inside two loops, tracking the loop stack
	// (outermost first) like the interpreter does.
	var genb *lop.Block
	var encl []*lop.Block
	var walk func(blocks []*lop.Block, stack []*lop.Block)
	walk = func(blocks []*lop.Block, stack []*lop.Block) {
		for _, b := range blocks {
			switch b.Kind {
			case dml.GenericBlock:
				if genb == nil && len(stack) >= 2 && b.HopBlock != nil {
					genb = b
					encl = append([]*lop.Block{}, stack...)
				}
			case dml.IfBlockKind:
				walk(b.Then, append(stack, b))
				walk(b.Else, append(stack, b))
			default:
				walk(b.Body, append(stack, b))
			}
		}
	}
	walk(plan.Blocks, nil)
	if genb == nil {
		t.Fatal("MLogreg should contain a generic block inside nested loops")
	}
	ctx := &rt.AdaptContext{Plan: plan, Block: genb, Enclosing: encl}
	got := scope(ctx)
	if len(got) == 0 {
		t.Fatal("empty scope")
	}
	// The scope must start at the top-level block containing the OUTERMOST
	// enclosing loop and run through the end of the program.
	var outerLoop *lop.Block
	for _, b := range encl {
		if b.Kind == dml.WhileBlockKind || b.Kind == dml.ForBlockKind {
			outerLoop = b
			break
		}
	}
	if outerLoop == nil {
		t.Fatal("no enclosing loop found")
	}
	if !containsBlock(got[0], outerLoop.HopBlock) {
		t.Error("scope does not start at the outermost enclosing loop")
	}
	prog := plan.HopProgram
	if got[len(got)-1] != prog.Blocks[len(prog.Blocks)-1] {
		t.Error("scope does not extend to the end of the program")
	}
}
