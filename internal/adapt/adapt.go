// Package adapt implements runtime resource adaptation (paper §4): when
// dynamic recompilation of a block still spawns MR jobs (sizes have become
// known and the initial configuration is off), the re-optimization scope is
// expanded to the enclosing outer loop through the end of the call context,
// the core resource optimizer is re-run against the now-known metadata, and
// AM runtime migration is performed when the cost benefit amortizes the
// migration costs.
package adapt

import (
	"time"

	"elasticml/internal/conf"
	"elasticml/internal/dml"
	"elasticml/internal/hop"
	"elasticml/internal/obs"
	"elasticml/internal/opt"
	"elasticml/internal/perf"
	"elasticml/internal/rt"
	"elasticml/internal/yarn"
)

// Stats reports adaptation activity.
type Stats struct {
	// Reoptimizations counts resource re-optimization runs.
	Reoptimizations int
	// ContainerLossReopts counts re-optimizations triggered by node
	// failures (graceful degradation to a smaller cluster).
	ContainerLossReopts int
	// Migrations counts AM runtime migrations.
	Migrations int
	// OptTime is the cumulative re-optimization wall time.
	OptTime time.Duration
	// MigrationTime is the cumulative charged migration cost (seconds of
	// simulated time).
	MigrationTime float64
	// ChainLength is the length of the AM process chain (paper §4.1: the
	// chain of containers is rolled in when the program finishes).
	ChainLength int
}

// Adapter implements rt.Adapter using the resource optimizer.
type Adapter struct {
	CC conf.Cluster
	PM perf.Model
	// Opt configures the re-optimization runs (grids, pruning, workers).
	Opt opt.Options
	// RM, when set, backs migrations with real container allocations (AM
	// process chaining).
	RM *yarn.ResourceManager
	// MinBenefit requires the cost improvement to exceed the migration
	// cost by this factor before migrating (1.0 = plain amortization).
	MinBenefit float64
	// LoadProvider, when set, reports current cluster utilization in
	// [0,1); re-optimization then evaluates MR plans against only the
	// remaining capacity (§6 "Cluster-Utilization-Based Adaptation"),
	// shifting decisions toward single-node execution on loaded clusters.
	LoadProvider func() float64
	// OptCharge is the simulated time charged per re-optimization. Negative
	// (the default) charges the measured wall-clock time — realistic but
	// non-deterministic; fault-injection experiments set a fixed charge ≥ 0
	// so same-seed runs report byte-identical simulated times.
	OptCharge float64
	// Trace, when non-nil, receives one adapt-layer span per re-optimization
	// carrying the cost/benefit breakdown and the decision, and is propagated
	// to the re-optimization runs. Deterministic traces additionally require
	// a fixed OptCharge (span durations include the charged optimization
	// time).
	Trace *obs.Tracer

	Stats Stats
	chain []yarn.Container
}

// New returns an adapter with the paper's defaults.
func New(cc conf.Cluster) *Adapter {
	return &Adapter{CC: cc, PM: perf.Default(), Opt: opt.DefaultOptions(), MinBenefit: 1.0, OptCharge: -1}
}

var _ rt.Adapter = (*Adapter)(nil)

// Adapt runs steps (1)-(4) of Figure 6: determine the re-optimization
// scope, re-optimize resources, decide on adaptation, and (notionally)
// migrate. The returned decision carries the new configuration and the
// charged overheads; the interpreter performs the state flush.
func (a *Adapter) Adapt(ctx *rt.AdaptContext) *rt.AdaptDecision {
	if ctx.Compiler == nil {
		return nil
	}
	start := time.Now()
	scopeBlocks := scope(ctx)
	scopeProg, err := ctx.Compiler.RebuildScope(scopeBlocks, ctx.Meta)
	if err != nil || scopeProg.NumLeaf == 0 {
		return nil
	}
	opts := a.Opt
	if a.LoadProvider != nil {
		opts.ClusterLoad = a.LoadProvider()
	}
	// Re-optimize against the interpreter's cluster view: after node
	// failures it is smaller than the configuration the adapter was built
	// for, and the new R* must fit the surviving capacity.
	cc := a.CC
	if ctx.CC.Nodes > 0 {
		cc = ctx.CC
	}
	o := &opt.Optimizer{CC: cc, Opts: opts, Trace: a.Trace}
	global, local := o.OptimizeWithCurrent(scopeProg, ctx.Res.CP)
	a.Stats.Reoptimizations++
	m := a.Trace.Metrics()
	m.Add("adapt.reoptimizations", 1)
	if ctx.Trigger == rt.TriggerContainerLoss {
		a.Stats.ContainerLossReopts++
		m.Add("adapt.container_loss_reopts", 1)
	}
	a.Stats.OptTime += time.Since(start)
	if global == nil || local == nil {
		return nil
	}

	extra := time.Since(start).Seconds()
	if a.OptCharge >= 0 {
		extra = a.OptCharge
	}
	dec := &rt.AdaptDecision{ExtraTime: extra}
	// Migration costs: export of dirty live variables plus the latency of
	// obtaining a new container (paper §4.2).
	migCost := a.PM.WriteTime(ctx.DirtyBytes, 1) + a.PM.ContainerAllocLatency
	benefit := local.Cost - global.Cost // ΔC >= 0

	// Growing the CP requires migration; shrinking or MR-only changes are
	// free ("adjusting the memory configuration of stateless jobs or
	// reducing the CP AM memory are trivial").
	needsMigration := global.Res.CP > ctx.Res.CP
	if needsMigration && benefit > migCost*a.MinBenefit {
		dec.Migrate = true
		dec.ExtraTime += migCost
		dec.NewRes = mapScopeResources(ctx, scopeProg, global.Res)
		a.Stats.Migrations++
		a.Stats.MigrationTime += migCost
		m.Add("adapt.migrations", 1)
		a.migrateContainer(dec.NewRes.CP)
		a.traceDecision(ctx, dec, scopeProg.NumLeaf, global, local, migCost, benefit, "migrate")
		return dec
	}
	// Otherwise continue in the current container with the locally optimal
	// configuration (always update MR resources).
	if !needsMigration && global.Res.CP != ctx.Res.CP {
		// CP shrink (or equal): adopt the global optimum without cost.
		dec.NewRes = mapScopeResources(ctx, scopeProg, global.Res)
		a.traceDecision(ctx, dec, scopeProg.NumLeaf, global, local, migCost, benefit, "adopt-global")
		return dec
	}
	dec.NewRes = mapScopeResources(ctx, scopeProg, local.Res)
	a.traceDecision(ctx, dec, scopeProg.NumLeaf, global, local, migCost, benefit, "keep-local")
	return dec
}

// traceDecision emits the adapt-layer span for one re-optimization. The span
// starts at the current simulated time and lasts the charged extra time — the
// interpreter advances its clock by the same amount right after Adapt
// returns, so the span covers exactly the adaptation stall.
func (a *Adapter) traceDecision(ctx *rt.AdaptContext, dec *rt.AdaptDecision, scopeLeaves int,
	global, local *opt.Result, migCost, benefit float64, decision string) {
	if !a.Trace.SpansEnabled() {
		return
	}
	a.Trace.CompleteNow(obs.LayerAdapt, "adapt.reoptimize", dec.ExtraTime,
		obs.A("trigger", ctx.Trigger.String()),
		obs.A("decision", decision),
		obs.A("scope_leaves", scopeLeaves),
		obs.A("global_cost", global.Cost),
		obs.A("local_cost", local.Cost),
		obs.A("benefit", benefit),
		obs.A("mig_cost", migCost),
		obs.A("dirty_bytes", int64(ctx.DirtyBytes)),
		obs.A("old_cp", ctx.Res.CP.String()),
		obs.A("new_cp", dec.NewRes.CP.String()))
}

// migrateContainer performs the AM process chaining against the RM when
// one is attached: the new container is allocated while the old one stays
// alive until program completion.
func (a *Adapter) migrateContainer(cp conf.Bytes) {
	a.Stats.ChainLength++
	if a.RM == nil {
		return
	}
	if c, err := a.RM.Allocate(a.CC.ContainerSize(cp)); err == nil {
		a.chain = append(a.chain, c)
	}
}

// Release rolls in the AM process chain in reverse order (program end).
func (a *Adapter) Release() {
	for i := len(a.chain) - 1; i >= 0; i-- {
		_ = a.RM.Release(a.chain[i].ID)
	}
	a.chain = nil
}

// scope determines the re-optimization scope: from the current position
// expanded to the outermost enclosing loop of the current call context,
// through the end of the top-level block list (paper §4.2's heuristic —
// covering iterative scripts prevents repeated migrations).
func scope(ctx *rt.AdaptContext) []*hop.Block {
	hopProg := ctx.Plan.HopProgram
	// Anchor: the outermost enclosing loop's hop block, else the current
	// block's hop block.
	anchor := ctx.Block.HopBlock
	for _, enc := range ctx.Enclosing {
		if enc.Kind == dml.WhileBlockKind || enc.Kind == dml.ForBlockKind {
			anchor = enc.HopBlock
			break // outermost first
		}
	}
	// Find the top-level block containing the anchor and take everything
	// from there to the end.
	for i, top := range hopProg.Blocks {
		if containsBlock(top, anchor) {
			return hopProg.Blocks[i:]
		}
	}
	return hopProg.Blocks
}

func containsBlock(root, target *hop.Block) bool {
	found := false
	hop.WalkBlocks([]*hop.Block{root}, func(b *hop.Block) {
		if b == target {
			found = true
		}
	})
	return found
}

// mapScopeResources lifts a scope-program resource vector back onto the
// full program's block indexing: scope leaves are matched to original
// leaves by source position; unmatched original blocks keep their current
// assignment.
func mapScopeResources(ctx *rt.AdaptContext, scopeProg *hop.Program, res conf.Resources) conf.Resources {
	out := ctx.Res.Clone()
	out.CP = res.CP
	if len(out.MR) < ctx.Plan.HopProgram.NumLeaf {
		grown := conf.NewResources(out.CP, ctx.Res.MRFor(0), ctx.Plan.HopProgram.NumLeaf)
		copy(grown.MR, out.MR)
		out = grown
	}
	// Index original leaves by first source line.
	origByLine := map[int]int{}
	for _, lb := range ctx.Plan.HopProgram.LeafBlocks() {
		origByLine[lb.FirstLine] = lb.Index
	}
	for _, sb := range scopeProg.LeafBlocks() {
		if oi, ok := origByLine[sb.FirstLine]; ok && oi < len(out.MR) {
			out.MR[oi] = res.MRFor(sb.Index)
		}
	}
	return out
}
