package matrix

import "math/rand"

// Random generates a rows x cols matrix with the given sparsity whose
// non-zero cells are drawn uniformly from [min, max), using the provided
// seed for reproducible workloads (DML's rand builtin).
func Random(rows, cols int, sparsity, min, max float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	if !PreferSparse(int64(rows), int64(cols), sparsity) {
		out := NewDense(rows, cols)
		for i := range out.dense {
			if sparsity >= 1 || rng.Float64() < sparsity {
				out.dense[i] = min + rng.Float64()*(max-min)
			}
		}
		return out
	}
	out := newCSR(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				out.appendCell(i, j, min+rng.Float64()*(max-min))
			}
		}
	}
	out.finish()
	return &Matrix{rows: rows, cols: cols, sp: out}
}

// RandomLabels generates an n x 1 vector of integer class labels in
// [1, classes], used for classification workloads.
func RandomLabels(n, classes int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := NewDense(n, 1)
	for i := range out.dense {
		out.dense[i] = float64(1 + rng.Intn(classes))
	}
	return out
}
