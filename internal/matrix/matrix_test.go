package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func denseOf(rows, cols int, vals ...float64) *Matrix {
	return NewDenseData(rows, cols, vals)
}

func TestBasicAccessors(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dims wrong")
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if got := m.Sparsity(); math.Abs(got-1.0/6) > 1e-15 {
		t.Fatalf("Sparsity = %v", got)
	}
}

func TestSparseSetAt(t *testing.T) {
	m := NewSparse(3, 3)
	m.Set(0, 1, 2)
	m.Set(2, 2, 3)
	m.Set(0, 0, 1)
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(2, 2) != 3 || m.At(1, 1) != 0 {
		t.Fatalf("sparse set/at wrong: %v", m)
	}
	m.Set(0, 1, 0) // delete
	if m.At(0, 1) != 0 || m.NNZ() != 2 {
		t.Fatalf("sparse delete failed: nnz=%d", m.NNZ())
	}
	m.Set(2, 2, 7) // update
	if m.At(2, 2) != 7 {
		t.Fatal("sparse update failed")
	}
}

func TestDenseSparseRoundtrip(t *testing.T) {
	d := denseOf(2, 3, 1, 0, 2, 0, 0, 3)
	s := d.ToSparse()
	if s.Format() != SparseCSR || s.NNZ() != 3 {
		t.Fatalf("ToSparse: format=%v nnz=%d", s.Format(), s.NNZ())
	}
	back := s.ToDense()
	if !Equal(d, back, 0) {
		t.Fatal("dense->sparse->dense not identity")
	}
}

func TestMulAllFormatCombos(t *testing.T) {
	a := denseOf(2, 3, 1, 2, 3, 4, 5, 6)
	b := denseOf(3, 2, 7, 8, 9, 10, 11, 12)
	want := denseOf(2, 2, 58, 64, 139, 154)
	combos := []struct {
		name string
		x, y *Matrix
	}{
		{"dd", a, b},
		{"sd", a.ToSparse(), b},
		{"ds", a, b.ToSparse()},
		{"ss", a.ToSparse(), b.ToSparse()},
	}
	for _, c := range combos {
		if got := Mul(c.x, c.y); !Equal(got.ToDense(), want, 1e-12) {
			t.Errorf("%s: Mul = %v, want %v", c.name, got, want)
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestTSMMMatchesExplicit(t *testing.T) {
	x := Random(17, 5, 1.0, -1, 1, 42)
	want := Mul(Transpose(x), x)
	if got := TSMM(x); !Equal(got, want.ToDense(), 1e-10) {
		t.Error("dense TSMM mismatch vs explicit t(X) X")
	}
	xs := Random(17, 5, 0.3, -1, 1, 43)
	want = Mul(Transpose(xs), xs).ToDense()
	if got := TSMM(xs); !Equal(got, want, 1e-10) {
		t.Error("sparse TSMM mismatch vs explicit t(X) X")
	}
}

func TestMulChainMVV(t *testing.T) {
	x := Random(13, 4, 1.0, -1, 1, 7)
	v := Random(4, 1, 1.0, -1, 1, 8)
	w := Random(13, 1, 1.0, 0, 1, 9)
	want := Mul(Transpose(x), Mul(x, v))
	if got := MulChainMVV(x, v, nil); !Equal(got, want.ToDense(), 1e-10) {
		t.Error("unweighted MMChain mismatch")
	}
	want = Mul(Transpose(x), EW(MulEW, w, Mul(x, v)))
	if got := MulChainMVV(x, v, w); !Equal(got, want.ToDense(), 1e-10) {
		t.Error("weighted MMChain mismatch")
	}
	xs := x.ToSparse()
	want = Mul(Transpose(xs), Mul(xs, v)).ToDense()
	if got := MulChainMVV(xs, v, nil); !Equal(got, want, 1e-10) {
		t.Error("sparse MMChain mismatch")
	}
}

func TestEWBroadcast(t *testing.T) {
	a := denseOf(2, 2, 1, 2, 3, 4)
	col := denseOf(2, 1, 10, 20)
	row := denseOf(1, 2, 100, 200)
	one := denseOf(1, 1, 5)
	if got := EW(Add, a, col); !Equal(got.ToDense(), denseOf(2, 2, 11, 12, 23, 24), 0) {
		t.Errorf("col broadcast: %v", got)
	}
	if got := EW(Add, a, row); !Equal(got.ToDense(), denseOf(2, 2, 101, 202, 103, 204), 0) {
		t.Errorf("row broadcast: %v", got)
	}
	if got := EW(MulEW, a, one); !Equal(got.ToDense(), denseOf(2, 2, 5, 10, 15, 20), 0) {
		t.Errorf("scalar-matrix broadcast: %v", got)
	}
}

func TestEWComparisonOps(t *testing.T) {
	a := denseOf(1, 4, -1, 0, 1, 2)
	if got := PPred(a, 0, Greater); !Equal(got.ToDense(), denseOf(1, 4, 0, 0, 1, 1), 0) {
		t.Errorf("ppred >: %v", got)
	}
	if got := PPred(a, 0, LessEq); !Equal(got.ToDense(), denseOf(1, 4, 1, 1, 0, 0), 0) {
		t.Errorf("ppred <=: %v", got)
	}
}

func TestEWScalarSparse(t *testing.T) {
	s := denseOf(2, 2, 0, 2, 0, 4).ToSparse()
	got := EWScalarRight(MulEW, s, 3)
	if got.Format() != SparseCSR {
		t.Error("sparse * scalar should stay sparse")
	}
	if !Equal(got.ToDense(), denseOf(2, 2, 0, 6, 0, 12), 0) {
		t.Errorf("sparse scalar mul: %v", got)
	}
	// Addition breaks sparsity: zeros become 1.
	got = EWScalarRight(Add, s, 1)
	if !Equal(got.ToDense(), denseOf(2, 2, 1, 3, 1, 5), 0) {
		t.Errorf("sparse scalar add: %v", got)
	}
	got = EWScalarLeft(Sub, 10, s)
	if !Equal(got.ToDense(), denseOf(2, 2, 10, 8, 10, 6), 0) {
		t.Errorf("scalar-left sub: %v", got)
	}
}

func TestUnaryOps(t *testing.T) {
	a := denseOf(1, 3, 4, -9, 0)
	if got := Unary(Abs, a); !Equal(got.ToDense(), denseOf(1, 3, 4, 9, 0), 0) {
		t.Errorf("abs: %v", got)
	}
	if got := Unary(Sq, a); !Equal(got.ToDense(), denseOf(1, 3, 16, 81, 0), 0) {
		t.Errorf("sq: %v", got)
	}
	if got := Unary(Sign, a); !Equal(got.ToDense(), denseOf(1, 3, 1, -1, 0), 0) {
		t.Errorf("sign: %v", got)
	}
	s := denseOf(2, 2, 0, 4, 0, 16).ToSparse()
	if got := Unary(Sqrt, s); got.Format() != SparseCSR || got.At(1, 1) != 4 {
		t.Errorf("sparse sqrt: %v", got)
	}
	// Non sparse-safe op (exp) must densify: exp(0)=1.
	if got := Unary(Exp, s); got.At(0, 0) != 1 {
		t.Errorf("sparse exp of zero cell = %v, want 1", got.At(0, 0))
	}
}

func TestAggregates(t *testing.T) {
	a := denseOf(2, 3, 1, 2, 3, 4, 5, 6)
	if Sum(a) != 21 {
		t.Errorf("Sum = %v", Sum(a))
	}
	if Agg(MeanAgg, a) != 3.5 {
		t.Errorf("Mean = %v", Agg(MeanAgg, a))
	}
	if Agg(MinAgg, a) != 1 || Agg(MaxAgg, a) != 6 {
		t.Error("min/max wrong")
	}
	sq := denseOf(2, 2, 1, 2, 3, 4)
	if Agg(Trace, sq) != 5 {
		t.Errorf("Trace = %v", Agg(Trace, sq))
	}
	if got := RowSums(a); !Equal(got, denseOf(2, 1, 6, 15), 0) {
		t.Errorf("RowSums = %v", got)
	}
	if got := ColSums(a); !Equal(got, denseOf(1, 3, 5, 7, 9), 0) {
		t.Errorf("ColSums = %v", got)
	}
	if got := RowMaxs(a); !Equal(got, denseOf(2, 1, 3, 6), 0) {
		t.Errorf("RowMaxs = %v", got)
	}
	if SumSq(a) != 91 {
		t.Errorf("SumSq = %v", SumSq(a))
	}
	b := denseOf(2, 3, 1, 1, 1, 1, 1, 1)
	if DotProduct(a, b) != 21 {
		t.Errorf("DotProduct = %v", DotProduct(a, b))
	}
}

func TestAggregatesSparseImplicitZero(t *testing.T) {
	s := denseOf(2, 2, 0, 5, 0, -3).ToSparse()
	if Agg(MinAgg, s) != -3 {
		t.Errorf("sparse min = %v", Agg(MinAgg, s))
	}
	if Agg(MaxAgg, s) != 5 {
		t.Errorf("sparse max = %v", Agg(MaxAgg, s))
	}
	pos := denseOf(2, 2, 0, 5, 0, 3).ToSparse()
	// Implicit zeros must participate in min.
	if Agg(MinAgg, pos) != 0 {
		t.Errorf("sparse min with implicit zeros = %v, want 0", Agg(MinAgg, pos))
	}
	if Sum(s) != 2 {
		t.Errorf("sparse sum = %v", Sum(s))
	}
}

func TestTranspose(t *testing.T) {
	a := denseOf(2, 3, 1, 2, 3, 4, 5, 6)
	want := denseOf(3, 2, 1, 4, 2, 5, 3, 6)
	if got := Transpose(a); !Equal(got, want, 0) {
		t.Errorf("dense transpose: %v", got)
	}
	s := a.ToSparse()
	if got := Transpose(s); !Equal(got.ToDense(), want, 0) {
		t.Errorf("sparse transpose: %v", got)
	}
	if got := Transpose(Transpose(s)); !Equal(got.ToDense(), a, 0) {
		t.Error("double transpose not identity")
	}
}

func TestCBindRBindSlice(t *testing.T) {
	a := denseOf(2, 2, 1, 2, 3, 4)
	b := denseOf(2, 1, 9, 8)
	cb := CBind(a, b)
	if !Equal(cb.ToDense(), denseOf(2, 3, 1, 2, 9, 3, 4, 8), 0) {
		t.Errorf("CBind = %v", cb)
	}
	rb := RBind(a, denseOf(1, 2, 7, 7))
	if !Equal(rb.ToDense(), denseOf(3, 2, 1, 2, 3, 4, 7, 7), 0) {
		t.Errorf("RBind = %v", rb)
	}
	sl := Slice(cb, 0, 2, 1, 3)
	if !Equal(sl.ToDense(), denseOf(2, 2, 2, 9, 4, 8), 0) {
		t.Errorf("Slice = %v", sl)
	}
}

func TestDiag(t *testing.T) {
	v := denseOf(3, 1, 1, 0, 3)
	d := Diag(v)
	if d.Rows() != 3 || d.Cols() != 3 || d.At(0, 0) != 1 || d.At(2, 2) != 3 || d.At(1, 1) != 0 || d.At(0, 1) != 0 {
		t.Errorf("Diag(v) = %v", d)
	}
	back := Diag(d)
	if !Equal(back.ToDense(), v, 0) {
		t.Errorf("Diag(Diag(v)) = %v", back)
	}
}

func TestSeq(t *testing.T) {
	s := Seq(1, 5, 1)
	if s.Rows() != 5 || s.At(0, 0) != 1 || s.At(4, 0) != 5 {
		t.Errorf("Seq(1,5,1) = %v", s)
	}
	s = Seq(10, 2, -4)
	if s.Rows() != 3 || s.At(2, 0) != 2 {
		t.Errorf("Seq(10,2,-4) = %v", s)
	}
}

func TestTable(t *testing.T) {
	// y has 3 classes; Y = table(seq(1,n), y) is the n x k indicator matrix.
	y := denseOf(5, 1, 1, 3, 2, 3, 1)
	yIdx := Seq(1, 5, 1)
	Y := Table(yIdx, y)
	if Y.Rows() != 5 || Y.Cols() != 3 {
		t.Fatalf("Table dims = %dx%d, want 5x3", Y.Rows(), Y.Cols())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if int(y.At(i, 0)) == j+1 {
				want = 1
			}
			if Y.At(i, j) != want {
				t.Fatalf("Y[%d,%d] = %v, want %v", i, j, Y.At(i, j), want)
			}
		}
	}
}

func TestSolve(t *testing.T) {
	// A = t(X) X, b = t(X) y with known beta.
	x := Random(50, 4, 1.0, -1, 1, 11)
	beta := denseOf(4, 1, 1, -2, 3, 0.5)
	yv := Mul(x, beta)
	a := Mul(Transpose(x), x)
	b := Mul(Transpose(x), yv)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !Equal(got, beta, 1e-8) {
		t.Errorf("Solve = %v, want %v", got, beta)
	}
}

func TestSolveSingular(t *testing.T) {
	a := denseOf(2, 2, 1, 2, 2, 4)
	if _, err := Solve(a, denseOf(2, 1, 1, 2)); err == nil {
		t.Error("expected singular-system error")
	}
	if _, err := Solve(NewDense(2, 3), NewDense(2, 1)); err == nil {
		t.Error("expected non-square error")
	}
	if _, err := Solve(NewDense(2, 2), NewDense(3, 1)); err == nil {
		t.Error("expected RHS mismatch error")
	}
}

func TestEstimateSizes(t *testing.T) {
	if DenseSize(1000, 1000) != 8_000_000 {
		t.Errorf("DenseSize = %v", DenseSize(1000, 1000))
	}
	// Sparse cheaper below threshold.
	d := EstimateSize(1_000_000, 1000, 0.01)
	if d >= DenseSize(1_000_000, 1000) {
		t.Errorf("sparse estimate %v not cheaper than dense", d)
	}
	// Column vectors always dense.
	if EstimateSize(1000, 1, 0.01) != DenseSize(1000, 1) {
		t.Error("vectors should be estimated dense")
	}
	// Dense data estimated dense.
	if EstimateSize(100, 100, 1.0) != DenseSize(100, 100) {
		t.Error("dense estimate wrong")
	}
	if EstimateSize(0, 10, 1) != 0 {
		t.Error("empty estimate should be 0")
	}
}

func TestMulSparsity(t *testing.T) {
	if got := MulSparsity(1, 1, 100); got != 1 {
		t.Errorf("dense x dense sparsity = %v", got)
	}
	got := MulSparsity(0.01, 0.01, 1000)
	want := 1 - math.Pow(1-0.0001, 1000)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("MulSparsity = %v, want %v", got, want)
	}
	if MulSparsity(0, 0.5, 10) != 0 {
		t.Error("zero sparsity should stay zero")
	}
	// Saturation for large k.
	if MulSparsity(0.1, 0.1, 1_000_000) != 1 {
		t.Error("large k should saturate to 1")
	}
}

func TestInMemorySize(t *testing.T) {
	d := NewDense(10, 10)
	if d.InMemorySize() != 800 {
		t.Errorf("dense InMemorySize = %v", d.InMemorySize())
	}
	s := NewSparse(10, 10)
	s.Set(0, 0, 1)
	if s.InMemorySize() != 12+80 {
		t.Errorf("sparse InMemorySize = %v", s.InMemorySize())
	}
}

func TestRandomProperties(t *testing.T) {
	m := Random(100, 20, 0.1, -1, 1, 1)
	if m.Format() != SparseCSR {
		t.Error("sparsity 0.1 should produce sparse matrix")
	}
	sp := m.Sparsity()
	if sp < 0.05 || sp > 0.2 {
		t.Errorf("observed sparsity %v far from 0.1", sp)
	}
	d := Random(50, 10, 1.0, 0, 1, 2)
	if d.Format() != Dense || d.NNZ() != 500 {
		t.Error("dense random wrong")
	}
	// Determinism.
	if !Equal(Random(10, 10, 0.5, 0, 1, 3).ToDense(), Random(10, 10, 0.5, 0, 1, 3).ToDense(), 0) {
		t.Error("Random not deterministic for equal seeds")
	}
	l := RandomLabels(100, 3, 4)
	for i := 0; i < 100; i++ {
		if v := l.At(i, 0); v < 1 || v > 3 || v != math.Trunc(v) {
			t.Fatalf("label %v out of range", v)
		}
	}
}

// Property: (A B)^T == B^T A^T across random shapes and formats.
func TestTransposeMulProperty(t *testing.T) {
	f := func(seed int64, n8, k8, m8 uint8, sparseA, sparseB bool) bool {
		n, k, m := int(n8%12)+1, int(k8%12)+1, int(m8%12)+1
		sa, sb := 1.0, 1.0
		if sparseA {
			sa = 0.2
		}
		if sparseB {
			sb = 0.2
		}
		a := Random(n, k, sa, -1, 1, seed)
		b := Random(k, m, sb, -1, 1, seed+1)
		lhs := Transpose(Mul(a, b)).ToDense()
		rhs := Mul(Transpose(b), Transpose(a)).ToDense()
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sum(A + B) == Sum(A) + Sum(B) for same-shaped matrices.
func TestSumLinearityProperty(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n, m := int(n8%20)+1, int(m8%20)+1
		a := Random(n, m, 0.7, -5, 5, seed)
		b := Random(n, m, 0.7, -5, 5, seed+7)
		return math.Abs(Sum(EW(Add, a, b))-(Sum(a)+Sum(b))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sparse and dense representations agree on every kernel output.
func TestFormatAgreementProperty(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n, m := int(n8%15)+2, int(m8%15)+2
		d := Random(n, m, 0.3, -2, 2, seed).ToDense()
		s := d.ToSparse()
		if !Equal(RowSums(d), RowSums(s), 1e-12) {
			return false
		}
		if !Equal(ColSums(d), ColSums(s), 1e-12) {
			return false
		}
		if math.Abs(Sum(d)-Sum(s)) > 1e-12 {
			return false
		}
		return Equal(Transpose(d), Transpose(s).ToDense(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
