package matrix

// csr is a compressed sparse row representation: rowPtr has rows+1 entries;
// colIdx/vals hold the column indices and values of each row's non-zeros in
// ascending column order.
type csr struct {
	nrows, ncols int
	rowPtr       []int64
	colIdx       []int
	vals         []float64
}

func newCSR(rows, cols int) *csr {
	return &csr{nrows: rows, ncols: cols, rowPtr: make([]int64, rows+1)}
}

func (s *csr) nnz() int64 { return int64(len(s.vals)) }

func (s *csr) clone() *csr {
	c := &csr{
		nrows:  s.nrows,
		ncols:  s.ncols,
		rowPtr: make([]int64, len(s.rowPtr)),
		colIdx: make([]int, len(s.colIdx)),
		vals:   make([]float64, len(s.vals)),
	}
	copy(c.rowPtr, s.rowPtr)
	copy(c.colIdx, s.colIdx)
	copy(c.vals, s.vals)
	return c
}

// appendCell adds a non-zero during in-order construction: cells must be
// appended with non-decreasing row index and, within a row, ascending column
// index. finish() must be called once construction completes.
func (s *csr) appendCell(i, j int, v float64) {
	if v == 0 {
		return
	}
	s.colIdx = append(s.colIdx, j)
	s.vals = append(s.vals, v)
	s.rowPtr[i+1]++
}

// finish converts per-row counts accumulated by appendCell into prefix sums.
func (s *csr) finish() {
	for i := 1; i < len(s.rowPtr); i++ {
		s.rowPtr[i] += s.rowPtr[i-1]
	}
}

func (s *csr) at(i, j int) float64 {
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	// Binary search within the row.
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.colIdx[mid] == j:
			return s.vals[mid]
		case s.colIdx[mid] < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// set updates or inserts a cell; insertion shifts the tail and is O(nnz).
func (s *csr) set(i, j int, v float64) {
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	pos := lo
	for pos < hi && s.colIdx[pos] < j {
		pos++
	}
	if pos < hi && s.colIdx[pos] == j {
		if v == 0 {
			// Delete the entry.
			s.colIdx = append(s.colIdx[:pos], s.colIdx[pos+1:]...)
			s.vals = append(s.vals[:pos], s.vals[pos+1:]...)
			for r := i + 1; r < len(s.rowPtr); r++ {
				s.rowPtr[r]--
			}
			return
		}
		s.vals[pos] = v
		return
	}
	if v == 0 {
		return
	}
	s.colIdx = append(s.colIdx, 0)
	copy(s.colIdx[pos+1:], s.colIdx[pos:])
	s.colIdx[pos] = j
	s.vals = append(s.vals, 0)
	copy(s.vals[pos+1:], s.vals[pos:])
	s.vals[pos] = v
	for r := i + 1; r < len(s.rowPtr); r++ {
		s.rowPtr[r]++
	}
}

// each calls fn for every stored non-zero in row-major order.
func (s *csr) each(fn func(i, j int, v float64)) {
	for i := 0; i < s.nrows; i++ {
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			fn(i, s.colIdx[p], s.vals[p])
		}
	}
}

// eachRow calls fn for every stored non-zero of row i.
func (s *csr) eachRow(i int, fn func(j int, v float64)) {
	for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
		fn(s.colIdx[p], s.vals[p])
	}
}
