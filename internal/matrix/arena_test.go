package matrix

import (
	"runtime"
	"testing"
)

// withArena enables output-buffer pooling for one test and restores the
// previous state afterwards.
func withArena(t *testing.T, on bool) {
	t.Helper()
	prev := ArenaEnabled()
	EnableArena(on)
	t.Cleanup(func() { EnableArena(prev) })
}

// TestArenaByteIdentical: the determinism contract extends to the arena —
// recycled (and re-zeroed) buffers at any parallelism produce exactly the
// bits of a fresh allocation at parallelism 1.
func TestArenaByteIdentical(t *testing.T) {
	a := dn(97, 83, 1)
	b := dn(83, 61, 2)
	x := dn(120, 17, 3)
	v := dn(17, 1, 4)
	want := runAt(1, func() *Matrix { return Mul(a, b) })
	wantT := runAt(1, func() *Matrix { return TSMM(x) })
	wantC := runAt(1, func() *Matrix { return MulChainMVV(x, v, nil) })

	withArena(t, true)
	for _, workers := range []int{1, 4} {
		// Cycle buffers through the pools first so later iterations draw
		// dirty recycled storage rather than fresh zeroed allocations.
		for warm := 0; warm < 3; warm++ {
			Recycle(runAt(workers, func() *Matrix { return Mul(a, b) }))
			Recycle(runAt(workers, func() *Matrix { return TSMM(x) }))
			Recycle(runAt(workers, func() *Matrix { return MulChainMVV(x, v, nil) }))
		}
		sameBits(t, "mulDD arena", runAt(workers, func() *Matrix { return Mul(a, b) }), want)
		sameBits(t, "tsmm arena", runAt(workers, func() *Matrix { return TSMM(x) }), wantT)
		sameBits(t, "mmchain arena", runAt(workers, func() *Matrix { return MulChainMVV(x, v, nil) }), wantC)
	}
}

// TestArenaRecycledBuffersZeroed: NewDense must hand out all-zero storage
// even when it comes from a recycled buffer full of old values.
func TestArenaRecycledBuffersZeroed(t *testing.T) {
	withArena(t, true)
	m := NewDense(30, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			m.Set(i, j, 7)
		}
	}
	Recycle(m)
	fresh := NewDense(30, 30)
	for i, v := range fresh.dense {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

// TestArenaRecycleSafety: recycle must ignore nil, sparse, and disabled
// cases, and recycling must invalidate the matrix so reuse fails fast.
func TestArenaRecycleSafety(t *testing.T) {
	Recycle(nil)
	s := NewSparse(4, 4)
	Recycle(s)
	if s.rows != 4 {
		t.Error("sparse matrix mutated by Recycle")
	}
	withArena(t, false)
	m := NewDense(4, 4)
	Recycle(m)
	if m.dense == nil {
		t.Error("Recycle stole a buffer while disabled")
	}
	withArena(t, true)
	m = NewDense(4, 4)
	Recycle(m)
	if m.dense != nil || m.rows != 0 {
		t.Error("Recycle left the matrix alive")
	}

	gets, hits, recycles := ArenaStats()
	if gets < 0 || hits > gets || recycles < 0 {
		t.Errorf("inconsistent arena stats: gets=%d hits=%d recycles=%d", gets, hits, recycles)
	}
}

// TestArenaReducesAllocs: a steady-state multiply loop that recycles its
// output must allocate less — fewer mallocs and far fewer bytes — than the
// same loop without the arena.
func TestArenaReducesAllocs(t *testing.T) {
	a := dn(64, 64, 5)
	b := dn(64, 64, 6)
	withWorkers(t, 1)

	allocBytes := func(f func()) uint64 {
		var m1, m2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m1)
		for i := 0; i < 50; i++ {
			f()
		}
		runtime.ReadMemStats(&m2)
		return m2.TotalAlloc - m1.TotalAlloc
	}

	withArena(t, false)
	coldAllocs := testing.AllocsPerRun(50, func() { _ = Mul(a, b) })
	coldBytes := allocBytes(func() { _ = Mul(a, b) })

	withArena(t, true)
	Recycle(Mul(a, b)) // prime the pool
	warmAllocs := testing.AllocsPerRun(50, func() { Recycle(Mul(a, b)) })
	warmBytes := allocBytes(func() { Recycle(Mul(a, b)) })

	if warmAllocs >= coldAllocs {
		t.Errorf("arena did not reduce allocations: %v allocs/op with arena vs %v without", warmAllocs, coldAllocs)
	}
	if warmBytes >= coldBytes/2 {
		t.Errorf("arena did not reduce bytes: %d with arena vs %d without", warmBytes, coldBytes)
	}
}

// TestParRangePanicChunkAccounting pins the executed-chunk fix: a panic
// abandons the remaining chunks, and the pool counters must report only the
// chunks that actually ran, not the planned count.
func TestParRangePanicChunkAccounting(t *testing.T) {
	withWorkers(t, 4)
	const n = 256
	_, before, _ := PoolStats()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic not propagated")
			}
		}()
		parRange(n, 1, func(lo, hi int) {
			if lo == n/2 {
				panic("boom")
			}
		})
	}()
	_, after, _ := PoolStats()
	executed := after - before
	if executed >= n {
		t.Errorf("counted %d chunks, but the panic abandoned the range (planned %d)", executed, n)
	}
	if executed < 0 {
		t.Errorf("negative chunk delta %d", executed)
	}
}
