package matrix

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The scratch arena recycles dense float64 buffers through size-classed
// sync.Pools so hot kernels stop allocating (and re-faulting) a fresh
// rows*cols slice per invocation. Buffers are zeroed on checkout, so a
// pooled NewDense is indistinguishable from a fresh allocation and results
// stay byte-identical with the arena on or off, at any parallelism.
//
// Two tiers:
//
//   - Internal scratch (getFloats/putFloats) is always pooled: the buffers
//     never escape the kernel that borrowed them (MulChainMVV's dot vector,
//     mulSS's dense accumulator), so recycling is unconditionally safe.
//   - Output buffers flow through the arena only when EnableArena(true) was
//     called: NewDense then draws from the pools, and callers that know a
//     matrix is dead (benchmark loops, interpreter temporaries) return its
//     storage with Recycle. Using a matrix after recycling it is a
//     use-after-free bug on the caller, which is why this tier is opt-in.

const (
	// arenaMinBits/arenaMaxBits bound the pooled size classes: buffers of
	// 2^6..2^24 floats (512 B .. 128 MB). Outside the range the arena
	// falls through to plain make.
	arenaMinBits = 6
	arenaMaxBits = 24
)

var (
	arenaOn    atomic.Bool
	arenaPools [arenaMaxBits + 1]sync.Pool

	statArenaGets     atomic.Int64 // pooled checkouts (hit or miss)
	statArenaHits     atomic.Int64 // checkouts served from a pool
	statArenaRecycles atomic.Int64 // buffers returned
)

// arenaBuf boxes a pooled slice. The boxes themselves cycle through
// bufHeaderPool so a steady-state get/put pair performs zero allocations —
// putting a bare slice into a sync.Pool would box it on every call.
type arenaBuf struct{ s []float64 }

var bufHeaderPool = sync.Pool{New: func() interface{} { return new(arenaBuf) }}

// EnableArena switches output-buffer pooling on or off. Internal scratch is
// always pooled; this gates only NewDense drawing from the arena and Recycle
// accepting buffers. Results are independent of this setting.
func EnableArena(on bool) { arenaOn.Store(on) }

// ArenaEnabled reports whether output-buffer pooling is on.
func ArenaEnabled() bool { return arenaOn.Load() }

// ArenaStats returns cumulative arena counters: checkouts, checkouts served
// from a pool, and buffers returned.
func ArenaStats() (gets, hits, recycles int64) {
	return statArenaGets.Load(), statArenaHits.Load(), statArenaRecycles.Load()
}

// arenaClass returns the size-class index for n floats, or -1 when n is
// outside the pooled range.
func arenaClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < arenaMinBits {
		c = arenaMinBits
	}
	if c > arenaMaxBits {
		return -1
	}
	return c
}

// getFloats returns a zeroed slice of n floats, drawn from the arena when
// the size class is pooled.
func getFloats(n int) []float64 {
	c := arenaClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	statArenaGets.Add(1)
	if v := arenaPools[c].Get(); v != nil {
		ab := v.(*arenaBuf)
		s := ab.s[:n]
		ab.s = nil
		bufHeaderPool.Put(ab)
		statArenaHits.Add(1)
		clear(s)
		return s
	}
	return make([]float64, n, 1<<c)
}

// putFloats returns a buffer to its pool. Only buffers whose capacity is an
// exact class size are accepted (anything else came from plain make).
func putFloats(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if b < arenaMinBits || b > arenaMaxBits {
		return
	}
	ab := bufHeaderPool.Get().(*arenaBuf)
	ab.s = s[:0]
	arenaPools[b].Put(ab)
	statArenaRecycles.Add(1)
}

// Recycle returns a dense matrix's storage to the arena. The caller asserts
// the matrix (and any alias of its data) is dead; using it afterwards reads
// another kernel's buffer. No-op when the arena is disabled, for sparse
// matrices, and for nil.
func Recycle(m *Matrix) {
	if m == nil || m.sp != nil || m.dense == nil || !arenaOn.Load() {
		return
	}
	putFloats(m.dense)
	m.dense = nil
	m.rows, m.cols = 0, 0
}
