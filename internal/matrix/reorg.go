package matrix

import "fmt"

// Transpose returns t(a).
func Transpose(a *Matrix) *Matrix {
	if a.sp != nil {
		out := newCSR(a.cols, a.rows)
		// Count entries per output row (input column).
		counts := make([]int64, a.cols+1)
		for _, j := range a.sp.colIdx {
			counts[j+1]++
		}
		for i := 1; i <= a.cols; i++ {
			counts[i] += counts[i-1]
		}
		out.rowPtr = counts
		out.colIdx = make([]int, len(a.sp.colIdx))
		out.vals = make([]float64, len(a.sp.vals))
		next := make([]int64, a.cols)
		copy(next, counts[:a.cols])
		a.sp.each(func(i, j int, v float64) {
			p := next[j]
			out.colIdx[p] = i
			out.vals[p] = v
			next[j]++
		})
		return &Matrix{rows: a.cols, cols: a.rows, sp: out}
	}
	out := NewDense(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.dense[j*a.rows+i] = a.dense[i*a.cols+j]
		}
	}
	return out
}

// CBind concatenates matrices column-wise (DML's append).
func CBind(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic(fmt.Sprintf("matrix: cbind row mismatch %d vs %d", a.rows, b.rows))
	}
	out := NewDense(a.rows, a.cols+b.cols)
	ad, bd := a.ToDense(), b.ToDense()
	for i := 0; i < a.rows; i++ {
		copy(out.dense[i*out.cols:], ad.dense[i*a.cols:(i+1)*a.cols])
		copy(out.dense[i*out.cols+a.cols:], bd.dense[i*b.cols:(i+1)*b.cols])
	}
	return out.Compact()
}

// RBind concatenates matrices row-wise.
func RBind(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("matrix: rbind col mismatch %d vs %d", a.cols, b.cols))
	}
	out := NewDense(a.rows+b.rows, a.cols)
	ad, bd := a.ToDense(), b.ToDense()
	copy(out.dense, ad.dense)
	copy(out.dense[a.rows*a.cols:], bd.dense)
	return out.Compact()
}

// Slice returns the submatrix a[r0:r1, c0:c1] with half-open, 0-based
// bounds (callers translate DML's 1-based inclusive indexing).
func Slice(a *Matrix, r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || c0 < 0 || r1 > a.rows || c1 > a.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: slice [%d:%d,%d:%d] out of %dx%d", r0, r1, c0, c1, a.rows, a.cols))
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			out.dense[(i-r0)*out.cols+(j-c0)] = a.At(i, j)
		}
	}
	return out.Compact()
}

// Diag builds a diagonal matrix from a column vector, or extracts the
// diagonal of a square matrix as a column vector (R/DML semantics).
func Diag(a *Matrix) *Matrix {
	if a.cols == 1 {
		n := a.rows
		out := NewSparse(n, n)
		for i := 0; i < n; i++ {
			if v := a.At(i, 0); v != 0 {
				out.sp.appendCell(i, i, v)
			}
		}
		out.sp.finish()
		return out
	}
	n := a.rows
	if a.cols < n {
		n = a.cols
	}
	out := NewDense(n, 1)
	for i := 0; i < n; i++ {
		out.dense[i] = a.At(i, i)
	}
	return out
}

// Seq returns the column vector (from, from+incr, ..., to) (DML's seq).
func Seq(from, to, incr float64) *Matrix {
	if incr == 0 {
		panic("matrix: seq increment must be non-zero")
	}
	n := int((to-from)/incr) + 1
	if n < 0 {
		n = 0
	}
	out := NewDense(n, 1)
	v := from
	for i := 0; i < n; i++ {
		out.dense[i] = v
		v += incr
	}
	return out
}

// Table computes the contingency table of two column vectors of equal
// length: out[a[i], b[i]] += 1 with 1-based category values, as used by the
// multinomial logistic regression indicator-matrix construction
// Y = table(seq(1,n), y). Output dimensions are the maximum observed
// categories (data dependent, hence unknown at compile time).
func Table(a, b *Matrix) *Matrix {
	if a.cols != 1 || b.cols != 1 || a.rows != b.rows {
		panic(fmt.Sprintf("matrix: table requires equal-length column vectors, got %dx%d and %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	var maxR, maxC int
	for i := 0; i < a.rows; i++ {
		r, c := int(a.At(i, 0)), int(b.At(i, 0))
		if r < 1 || c < 1 {
			panic(fmt.Sprintf("matrix: table categories must be >=1, got (%d,%d) at row %d", r, c, i))
		}
		if r > maxR {
			maxR = r
		}
		if c > maxC {
			maxC = c
		}
	}
	out := NewDense(maxR, maxC)
	for i := 0; i < a.rows; i++ {
		r, c := int(a.At(i, 0))-1, int(b.At(i, 0))-1
		out.dense[r*maxC+c]++
	}
	return out.Compact()
}
