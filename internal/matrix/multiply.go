package matrix

import "fmt"

// Mul computes the matrix product a %*% b. It dispatches on the operand
// representations: dense-dense uses a cache-friendly ikj loop, sparse-dense
// iterates stored non-zeros, and sparse-sparse accumulates per output row.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: mul dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	switch {
	case a.sp == nil && b.sp == nil:
		return mulDD(a, b)
	case a.sp != nil && b.sp == nil:
		return mulSD(a, b)
	case a.sp == nil && b.sp != nil:
		// Densify the right side row-wise on the fly: b is sparse, compute
		// c = a * b via the transpose trick on b's stored entries.
		return mulDS(a, b)
	default:
		return mulSS(a, b)
	}
}

func mulDD(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	n, k, m := a.rows, a.cols, b.cols
	for i := 0; i < n; i++ {
		ci := c.dense[i*m : (i+1)*m]
		ai := a.dense[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.dense[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

func mulSD(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	for i := 0; i < a.rows; i++ {
		ci := c.dense[i*m : (i+1)*m]
		a.sp.eachRow(i, func(p int, av float64) {
			bp := b.dense[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				ci[j] += av * bp[j]
			}
		})
	}
	return c
}

func mulDS(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	// For each stored b[p][j], add a[:,p]*v into c[:,j].
	b.sp.each(func(p, j int, v float64) {
		for i := 0; i < a.rows; i++ {
			c.dense[i*m+j] += a.dense[i*a.cols+p] * v
		}
	})
	return c
}

func mulSS(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	for i := 0; i < a.rows; i++ {
		ci := c.dense[i*m : (i+1)*m]
		a.sp.eachRow(i, func(p int, av float64) {
			b.sp.eachRow(p, func(j int, bv float64) {
				ci[j] += av * bv
			})
		})
	}
	return c.Compact()
}

// TSMM computes the transpose-self matrix multiply t(x) %*% x, a dedicated
// kernel exploited by the compiler for pattern t(X)%*%X (only the upper
// triangle is computed and mirrored).
func TSMM(x *Matrix) *Matrix {
	k := x.cols
	c := NewDense(k, k)
	if x.sp != nil {
		for i := 0; i < x.rows; i++ {
			x.sp.eachRow(i, func(j1 int, v1 float64) {
				x.sp.eachRow(i, func(j2 int, v2 float64) {
					if j2 >= j1 {
						c.dense[j1*k+j2] += v1 * v2
					}
				})
			})
		}
	} else {
		for i := 0; i < x.rows; i++ {
			xi := x.dense[i*k : (i+1)*k]
			for j1 := 0; j1 < k; j1++ {
				v1 := xi[j1]
				if v1 == 0 {
					continue
				}
				cj := c.dense[j1*k : (j1+1)*k]
				for j2 := j1; j2 < k; j2++ {
					cj[j2] += v1 * xi[j2]
				}
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			c.dense[j*k+i] = c.dense[i*k+j]
		}
	}
	return c
}

// MulChainMVV computes t(X) %*% (X %*% v) without materializing the large
// intermediate, corresponding to SystemML's MapMMChain physical operator.
// If w is non-nil it computes t(X) %*% (w * (X %*% v)) (the weighted chain
// pattern of logistic-regression gradients).
func MulChainMVV(x, v, w *Matrix) *Matrix {
	if x.cols != v.rows || v.cols != 1 {
		panic(fmt.Sprintf("matrix: mmchain dimension mismatch %dx%d vs %dx%d", x.rows, x.cols, v.rows, v.cols))
	}
	out := NewDense(x.cols, 1)
	if x.sp != nil {
		for i := 0; i < x.rows; i++ {
			var dot float64
			x.sp.eachRow(i, func(j int, xv float64) { dot += xv * v.dense[j] })
			if w != nil {
				dot *= w.At(i, 0)
			}
			if dot == 0 {
				continue
			}
			x.sp.eachRow(i, func(j int, xv float64) { out.dense[j] += xv * dot })
		}
		return out
	}
	k := x.cols
	for i := 0; i < x.rows; i++ {
		xi := x.dense[i*k : (i+1)*k]
		var dot float64
		for j := 0; j < k; j++ {
			dot += xi[j] * v.dense[j]
		}
		if w != nil {
			dot *= w.At(i, 0)
		}
		if dot == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			out.dense[j] += xi[j] * dot
		}
	}
	return out
}
