package matrix

import "fmt"

// Partition grains for the multiply kernels. Grains depend only on the
// problem shape (never on the worker count) so partition boundaries — and
// with them the floating-point accumulation order — are fixed.
const (
	mulRowGrain = 8  // output rows per chunk for row-partitioned multiplies
	dsRowGrain  = 32 // rows per chunk for mulDS (each chunk rescans b's nnz)

	// Cache-blocking tiles for mulDD: the inner loops sweep a mulKTile x
	// mulJTile panel of b (256 KB) so it stays L2-resident while being
	// reused across a whole row chunk, instead of streaming all of b once
	// per output row. Tile sizes depend only on constants, and per-cell
	// accumulation order stays ascending-p, so tiling is byte-identical to
	// the untiled ikj loop at any parallelism.
	mulKTile = 64  // inner-dimension rows of b per tile
	mulJTile = 512 // output columns per tile
)

// Mul computes the matrix product a %*% b. It dispatches on the operand
// representations: dense-dense uses a cache-friendly ikj loop, sparse-dense
// iterates stored non-zeros, and sparse-sparse accumulates per output row.
// All four dispatches are row-partitioned across the shared worker pool;
// every output row is produced by exactly one worker in the sequential
// accumulation order, so results are byte-identical for any parallelism.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: mul dimension mismatch %dx%d %%*%% %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	switch {
	case a.sp == nil && b.sp == nil:
		return mulDD(a, b)
	case a.sp != nil && b.sp == nil:
		return mulSD(a, b)
	case a.sp == nil && b.sp != nil:
		// Densify the right side row-wise on the fly: b is sparse, compute
		// c = a * b via the transpose trick on b's stored entries.
		return mulDS(a, b)
	default:
		return mulSS(a, b)
	}
}

func mulDD(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	n, k, m := a.rows, a.cols, b.cols
	parRange(n, mulRowGrain, func(lo, hi int) {
		// Tiled ikj: for every output cell c[i][j] the contributions still
		// arrive in ascending-p order (tiles are visited in order, p ascends
		// within a tile, and exactly one j-tile contains j), so the result
		// is bit-for-bit the untiled loop's.
		for j0 := 0; j0 < m; j0 += mulJTile {
			j1 := j0 + mulJTile
			if j1 > m {
				j1 = m
			}
			for p0 := 0; p0 < k; p0 += mulKTile {
				p1 := p0 + mulKTile
				if p1 > k {
					p1 = k
				}
				for i := lo; i < hi; i++ {
					ci := c.dense[i*m+j0 : i*m+j1]
					ai := a.dense[i*k : (i+1)*k]
					for p := p0; p < p1; p++ {
						av := ai[p]
						if av == 0 {
							continue
						}
						bp := b.dense[p*m+j0 : p*m+j1]
						for j, bv := range bp {
							ci[j] += av * bv
						}
					}
				}
			}
		}
	})
	return c
}

func mulSD(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	parRange(a.rows, mulRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.dense[i*m : (i+1)*m]
			a.sp.eachRow(i, func(p int, av float64) {
				bp := b.dense[p*m : (p+1)*m]
				for j := 0; j < m; j++ {
					ci[j] += av * bp[j]
				}
			})
		}
	})
	return c
}

func mulDS(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	// For each stored b[p][j], add a[:,p]*v into c[:,j]. Partitioned over
	// a's rows: every chunk rescans b's non-zeros but updates only its own
	// row range, preserving the per-cell accumulation order.
	parRange(a.rows, dsRowGrain, func(lo, hi int) {
		b.sp.each(func(p, j int, v float64) {
			for i := lo; i < hi; i++ {
				c.dense[i*m+j] += a.dense[i*a.cols+p] * v
			}
		})
	})
	return c
}

func mulSS(a, b *Matrix) *Matrix {
	c := NewDense(a.rows, b.cols)
	m := b.cols
	parRange(a.rows, mulRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.dense[i*m : (i+1)*m]
			a.sp.eachRow(i, func(p int, av float64) {
				b.sp.eachRow(p, func(j int, bv float64) {
					ci[j] += av * bv
				})
			})
		}
	})
	out := c.Compact()
	if out != c {
		// Compact copied into a CSR; the dense accumulator is dead scratch.
		putFloats(c.dense)
	}
	return out
}

// TSMM computes the transpose-self matrix multiply t(x) %*% x, a dedicated
// kernel exploited by the compiler for pattern t(X)%*%X (only the upper
// triangle is computed and mirrored). The upper triangle is partitioned by
// output row j1; each worker scans x's rows in ascending order so every
// cell accumulates in the sequential order.
func TSMM(x *Matrix) *Matrix {
	k := x.cols
	c := NewDense(k, k)
	if x.sp != nil {
		// Sparse rows are rescanned per chunk; cap the chunk count so the
		// rescan overhead stays bounded.
		parRange(k, chunkGrain(k, 16), func(lo, hi int) {
			for i := 0; i < x.rows; i++ {
				x.sp.eachRow(i, func(j1 int, v1 float64) {
					if j1 < lo || j1 >= hi {
						return
					}
					x.sp.eachRow(i, func(j2 int, v2 float64) {
						if j2 >= j1 {
							c.dense[j1*k+j2] += v1 * v2
						}
					})
				})
			}
		})
	} else {
		parRange(k, mulRowGrain, func(lo, hi int) {
			for i := 0; i < x.rows; i++ {
				xi := x.dense[i*k : (i+1)*k]
				for j1 := lo; j1 < hi; j1++ {
					v1 := xi[j1]
					if v1 == 0 {
						continue
					}
					cj := c.dense[j1*k : (j1+1)*k]
					for j2 := j1; j2 < k; j2++ {
						cj[j2] += v1 * xi[j2]
					}
				}
			}
		})
	}
	// Mirror the upper triangle.
	parRange(k, chunkGrain(k, 16), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < k; j++ {
				c.dense[j*k+i] = c.dense[i*k+j]
			}
		}
	})
	return c
}

// MulChainMVV computes t(X) %*% (X %*% v) without materializing the large
// intermediate, corresponding to SystemML's MapMMChain physical operator.
// If w is non-nil it computes t(X) %*% (w * (X %*% v)) (the weighted chain
// pattern of logistic-regression gradients). Parallel execution runs two
// passes: per-row dot products (row-partitioned), then the output
// accumulation partitioned by output index, scanning rows in ascending
// order — both passes reproduce the sequential accumulation order exactly.
func MulChainMVV(x, v, w *Matrix) *Matrix {
	if x.cols != v.rows || v.cols != 1 {
		panic(fmt.Sprintf("matrix: mmchain dimension mismatch %dx%d vs %dx%d", x.rows, x.cols, v.rows, v.cols))
	}
	k := x.cols
	out := NewDense(k, 1)
	dots := getFloats(x.rows) // scratch: never escapes, returned below
	defer putFloats(dots)
	if x.sp != nil {
		parRange(x.rows, mulRowGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var dot float64
				x.sp.eachRow(i, func(j int, xv float64) { dot += xv * v.dense[j] })
				if w != nil {
					dot *= w.At(i, 0)
				}
				dots[i] = dot
			}
		})
		parRange(k, chunkGrain(k, 16), func(lo, hi int) {
			for i := 0; i < x.rows; i++ {
				dot := dots[i]
				if dot == 0 {
					continue
				}
				x.sp.eachRow(i, func(j int, xv float64) {
					if j >= lo && j < hi {
						out.dense[j] += xv * dot
					}
				})
			}
		})
		return out
	}
	parRange(x.rows, mulRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.dense[i*k : (i+1)*k]
			var dot float64
			for j := 0; j < k; j++ {
				dot += xi[j] * v.dense[j]
			}
			if w != nil {
				dot *= w.At(i, 0)
			}
			dots[i] = dot
		}
	})
	parRange(k, chunkGrain(k, 16), func(lo, hi int) {
		for i := 0; i < x.rows; i++ {
			dot := dots[i]
			if dot == 0 {
				continue
			}
			xi := x.dense[i*k : (i+1)*k]
			for j := lo; j < hi; j++ {
				out.dense[j] += xi[j] * dot
			}
		}
	})
	return out
}
