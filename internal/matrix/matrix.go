// Package matrix implements the in-memory matrix runtime underlying the
// declarative ML system: dense (row-major) and sparse (CSR) matrices with
// the linear-algebra and statistical kernels required by DML programs, plus
// the size/sparsity arithmetic shared with the compiler's memory estimator.
package matrix

import (
	"fmt"
	"math"
)

// SparsityThreshold is the nnz ratio below which matrices are stored and
// estimated in sparse format. SystemML uses a similar heuristic combined
// with a minimum column count.
const SparsityThreshold = 0.4

// Format identifies the physical representation of a matrix.
type Format int

// Physical matrix formats.
const (
	Dense Format = iota
	SparseCSR
)

func (f Format) String() string {
	if f == SparseCSR {
		return "sparse"
	}
	return "dense"
}

// Matrix is a two-dimensional double-precision matrix in either dense
// row-major or sparse CSR representation. The zero value is an empty 0x0
// dense matrix.
type Matrix struct {
	rows, cols int
	dense      []float64 // len rows*cols when format==Dense
	sp         *csr      // non-nil when format==SparseCSR
}

// NewDense returns a zero-initialized dense rows x cols matrix. With the
// arena enabled (EnableArena) the storage may come from a recycled buffer;
// either way it is fully zeroed.
func NewDense(rows, cols int) *Matrix {
	checkDims(rows, cols)
	if arenaOn.Load() {
		return &Matrix{rows: rows, cols: cols, dense: getFloats(rows * cols)}
	}
	return &Matrix{rows: rows, cols: cols, dense: make([]float64, rows*cols)}
}

// NewDenseData wraps the given row-major data (not copied) as a dense
// matrix. It panics if len(data) != rows*cols.
func NewDenseData(rows, cols int, data []float64) *Matrix {
	checkDims(rows, cols)
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, dense: data}
}

// NewSparse returns an empty sparse rows x cols matrix.
func NewSparse(rows, cols int) *Matrix {
	checkDims(rows, cols)
	return &Matrix{rows: rows, cols: cols, sp: newCSR(rows, cols)}
}

// Filled returns a dense matrix with every cell set to v.
func Filled(rows, cols int, v float64) *Matrix {
	m := NewDense(rows, cols)
	for i := range m.dense {
		m.dense[i] = v
	}
	return m
}

func checkDims(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Format returns the physical representation of the matrix.
func (m *Matrix) Format() Format {
	if m.sp != nil {
		return SparseCSR
	}
	return Dense
}

// At returns the cell (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	if m.sp != nil {
		return m.sp.at(i, j)
	}
	return m.dense[i*m.cols+j]
}

// Set assigns the cell (i, j). Setting cells of a sparse matrix is intended
// for construction in row order; random-order sets are supported but slow.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	if m.sp != nil {
		m.sp.set(i, j, v)
		return
	}
	m.dense[i*m.cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// NNZ returns the number of non-zero cells.
func (m *Matrix) NNZ() int64 {
	if m.sp != nil {
		return m.sp.nnz()
	}
	var n int64
	for _, v := range m.dense {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns nnz / (rows*cols); 1.0 for empty matrices.
func (m *Matrix) Sparsity() float64 {
	cells := int64(m.rows) * int64(m.cols)
	if cells == 0 {
		return 1.0
	}
	return float64(m.NNZ()) / float64(cells)
}

// Clone returns a deep copy preserving the representation.
func (m *Matrix) Clone() *Matrix {
	if m.sp != nil {
		return &Matrix{rows: m.rows, cols: m.cols, sp: m.sp.clone()}
	}
	d := make([]float64, len(m.dense))
	copy(d, m.dense)
	return &Matrix{rows: m.rows, cols: m.cols, dense: d}
}

// ToDense returns a dense copy of the matrix (or the receiver if already
// dense).
func (m *Matrix) ToDense() *Matrix {
	if m.sp == nil {
		return m
	}
	out := NewDense(m.rows, m.cols)
	m.sp.each(func(i, j int, v float64) {
		out.dense[i*m.cols+j] = v
	})
	return out
}

// ToSparse returns a CSR copy of the matrix (or the receiver if already
// sparse).
func (m *Matrix) ToSparse() *Matrix {
	if m.sp != nil {
		return m
	}
	out := newCSR(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if v := m.dense[i*m.cols+j]; v != 0 {
				out.appendCell(i, j, v)
			}
		}
	}
	out.finish()
	return &Matrix{rows: m.rows, cols: m.cols, sp: out}
}

// Compact converts the matrix to its preferred representation based on the
// actual sparsity (PreferSparse: below SparsityThreshold and CSR actually
// smaller — the same predicate the memory estimator costs).
func (m *Matrix) Compact() *Matrix {
	if PreferSparse(int64(m.rows), int64(m.cols), m.Sparsity()) {
		return m.ToSparse()
	}
	return m.ToDense()
}

// Equal reports whether two matrices have identical dimensions and cells
// within the given absolute tolerance.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices fully and large matrices as a summary.
func (m *Matrix) String() string {
	if int64(m.rows)*int64(m.cols) > 64 {
		return fmt.Sprintf("Matrix(%dx%d, %s, nnz=%d)", m.rows, m.cols, m.Format(), m.NNZ())
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(i, j))
		}
	}
	return s + "]"
}
