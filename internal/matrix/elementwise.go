package matrix

import (
	"fmt"
	"math"
)

// BinaryOp identifies an elementwise binary operation.
type BinaryOp int

// Elementwise binary operations.
const (
	Add BinaryOp = iota
	Sub
	MulEW
	Div
	Pow
	Min2
	Max2
	Less
	LessEq
	Greater
	GreaterEq
	EqualOp
	NotEqual
	And
	Or
)

func (op BinaryOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case MulEW:
		return "*"
	case Div:
		return "/"
	case Pow:
		return "^"
	case Min2:
		return "min"
	case Max2:
		return "max"
	case Less:
		return "<"
	case LessEq:
		return "<="
	case Greater:
		return ">"
	case GreaterEq:
		return ">="
	case EqualOp:
		return "=="
	case NotEqual:
		return "!="
	case And:
		return "&"
	case Or:
		return "|"
	}
	return "?"
}

// Apply evaluates the operation on a pair of scalars.
func (op BinaryOp) Apply(a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case MulEW:
		return a * b
	case Div:
		return a / b
	case Pow:
		return math.Pow(a, b)
	case Min2:
		return math.Min(a, b)
	case Max2:
		return math.Max(a, b)
	case Less:
		return b2f(a < b)
	case LessEq:
		return b2f(a <= b)
	case Greater:
		return b2f(a > b)
	case GreaterEq:
		return b2f(a >= b)
	case EqualOp:
		return b2f(a == b)
	case NotEqual:
		return b2f(a != b)
	case And:
		return b2f(a != 0 && b != 0)
	case Or:
		return b2f(a != 0 || b != 0)
	}
	panic(fmt.Sprintf("matrix: unknown binary op %d", op))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ewFlatGrain is the cells-per-chunk grain for flat elementwise maps.
const ewFlatGrain = 4096

// EW computes the elementwise operation c = a op b with R-style broadcast:
// operands must have equal dimensions, or one may be a column vector
// matching the other's rows, or a row vector matching its columns, or 1x1.
// Both paths are pure per-cell maps, partitioned across the worker pool.
func EW(op BinaryOp, a, b *Matrix) *Matrix {
	rows, cols := broadcastDims(a, b)
	out := NewDense(rows, cols)
	// Fast path: equal-dim dense-dense.
	if a.sp == nil && b.sp == nil && a.rows == b.rows && a.cols == b.cols && a.rows == rows {
		parRange(len(out.dense), ewFlatGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.dense[i] = op.Apply(a.dense[i], b.dense[i])
			}
		})
		return out.Compact()
	}
	parRange(rows, chunkGrain(rows, 64), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			for j := 0; j < cols; j++ {
				out.dense[i*cols+j] = op.Apply(bcAt(a, i, j), bcAt(b, i, j))
			}
		}
	})
	return out.Compact()
}

// EWScalarRight computes a op s for scalar s.
func EWScalarRight(op BinaryOp, a *Matrix, s float64) *Matrix {
	// Sparse-safe ops preserve zeros (0 op s == 0): multiplication always,
	// and others only when the identity holds for this s.
	if a.sp != nil && op == MulEW {
		out := &Matrix{rows: a.rows, cols: a.cols, sp: a.sp.clone()}
		parRange(len(out.sp.vals), ewFlatGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.sp.vals[i] *= s
			}
		})
		return out
	}
	out := NewDense(a.rows, a.cols)
	if a.sp != nil {
		z := op.Apply(0, s)
		parRange(len(out.dense), ewFlatGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.dense[i] = z
			}
		})
		parRange(a.rows, chunkGrain(a.rows, 64), func(rlo, rhi int) {
			for i := rlo; i < rhi; i++ {
				a.sp.eachRow(i, func(j int, v float64) { out.dense[i*a.cols+j] = op.Apply(v, s) })
			}
		})
		return out.Compact()
	}
	parRange(len(a.dense), ewFlatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.dense[i] = op.Apply(a.dense[i], s)
		}
	})
	return out.Compact()
}

// EWScalarLeft computes s op a for scalar s.
func EWScalarLeft(op BinaryOp, s float64, a *Matrix) *Matrix {
	out := NewDense(a.rows, a.cols)
	if a.sp != nil {
		z := op.Apply(s, 0)
		parRange(len(out.dense), ewFlatGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.dense[i] = z
			}
		})
		parRange(a.rows, chunkGrain(a.rows, 64), func(rlo, rhi int) {
			for i := rlo; i < rhi; i++ {
				a.sp.eachRow(i, func(j int, v float64) { out.dense[i*a.cols+j] = op.Apply(s, v) })
			}
		})
		return out.Compact()
	}
	parRange(len(a.dense), ewFlatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.dense[i] = op.Apply(s, a.dense[i])
		}
	})
	return out.Compact()
}

func broadcastDims(a, b *Matrix) (int, int) {
	rows, cols := a.rows, a.cols
	if b.rows > rows {
		rows = b.rows
	}
	if b.cols > cols {
		cols = b.cols
	}
	check := func(m *Matrix) {
		rOK := m.rows == rows || m.rows == 1
		cOK := m.cols == cols || m.cols == 1
		if !rOK || !cOK {
			panic(fmt.Sprintf("matrix: broadcast mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
		}
	}
	check(a)
	check(b)
	return rows, cols
}

func bcAt(m *Matrix, i, j int) float64 {
	if m.rows == 1 {
		i = 0
	}
	if m.cols == 1 {
		j = 0
	}
	return m.At(i, j)
}

// UnaryOp identifies an elementwise unary operation.
type UnaryOp int

// Elementwise unary operations.
const (
	Sqrt UnaryOp = iota
	Abs
	Exp
	Log
	Round
	Floor
	Ceil
	Neg
	Not
	Sign
	Sq // x^2, produced by the sum(x^2) rewrite
)

func (op UnaryOp) String() string {
	switch op {
	case Sqrt:
		return "sqrt"
	case Abs:
		return "abs"
	case Exp:
		return "exp"
	case Log:
		return "log"
	case Round:
		return "round"
	case Floor:
		return "floor"
	case Ceil:
		return "ceil"
	case Neg:
		return "-"
	case Not:
		return "!"
	case Sign:
		return "sign"
	case Sq:
		return "sq"
	}
	return "?"
}

// Apply evaluates the unary operation on a scalar.
func (op UnaryOp) Apply(v float64) float64 {
	switch op {
	case Sqrt:
		return math.Sqrt(v)
	case Abs:
		return math.Abs(v)
	case Exp:
		return math.Exp(v)
	case Log:
		return math.Log(v)
	case Round:
		return math.Round(v)
	case Floor:
		return math.Floor(v)
	case Ceil:
		return math.Ceil(v)
	case Neg:
		return -v
	case Not:
		return b2f(v == 0)
	case Sign:
		if v > 0 {
			return 1
		} else if v < 0 {
			return -1
		}
		return 0
	case Sq:
		return v * v
	}
	panic(fmt.Sprintf("matrix: unknown unary op %d", op))
}

// sparseSafe reports whether op(0) == 0, allowing sparse outputs to skip
// stored zeros.
func (op UnaryOp) sparseSafe() bool {
	switch op {
	case Sqrt, Abs, Round, Floor, Ceil, Neg, Sign, Sq:
		return true
	}
	return false
}

// Unary computes the elementwise unary operation.
func Unary(op UnaryOp, a *Matrix) *Matrix {
	if a.sp != nil && op.sparseSafe() {
		out := &Matrix{rows: a.rows, cols: a.cols, sp: a.sp.clone()}
		parRange(len(out.sp.vals), ewFlatGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.sp.vals[i] = op.Apply(out.sp.vals[i])
			}
		})
		return out
	}
	d := a.ToDense()
	out := NewDense(a.rows, a.cols)
	parRange(len(d.dense), ewFlatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.dense[i] = op.Apply(d.dense[i])
		}
	})
	return out.Compact()
}

// PPred computes the predicate matrix ppred(a, s, op): cell-wise comparison
// against a scalar producing a 0/1 matrix (DML builtin).
func PPred(a *Matrix, s float64, op BinaryOp) *Matrix {
	return EWScalarRight(op, a, s)
}
