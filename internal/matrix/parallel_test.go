package matrix

import (
	"math"
	"testing"

	"elasticml/internal/obs"
)

// withWorkers sets the kernel degree of parallelism for one test and
// restores the previous value afterwards.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(prev) })
}

// runAt evaluates f under the given worker count and restores the old one.
func runAt(workers int, f func() *Matrix) *Matrix {
	prev := Parallelism()
	SetParallelism(workers)
	defer SetParallelism(prev)
	return f()
}

// sameBits asserts the two matrices are byte-identical: same shape, same
// representation, and bitwise-equal payloads (NOT approximate equality —
// the deterministic reduction contract promises the exact float64 bits the
// sequential loop produces, for any worker count).
func sameBits(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.rows != want.rows || got.cols != want.cols {
		t.Fatalf("%s: dims %dx%d, want %dx%d", name, got.rows, got.cols, want.rows, want.cols)
	}
	if (got.sp == nil) != (want.sp == nil) {
		t.Fatalf("%s: format %v, want %v", name, got.Format(), want.Format())
	}
	if got.sp == nil {
		for i, v := range got.dense {
			if math.Float64bits(v) != math.Float64bits(want.dense[i]) {
				t.Fatalf("%s: dense[%d] = %x, want %x", name, i, math.Float64bits(v), math.Float64bits(want.dense[i]))
			}
		}
		return
	}
	if len(got.sp.colIdx) != len(want.sp.colIdx) {
		t.Fatalf("%s: nnz %d, want %d", name, len(got.sp.colIdx), len(want.sp.colIdx))
	}
	for i, p := range got.sp.rowPtr {
		if p != want.sp.rowPtr[i] {
			t.Fatalf("%s: rowPtr[%d] = %d, want %d", name, i, p, want.sp.rowPtr[i])
		}
	}
	for i, c := range got.sp.colIdx {
		if c != want.sp.colIdx[i] {
			t.Fatalf("%s: colIdx[%d] = %d, want %d", name, i, c, want.sp.colIdx[i])
		}
	}
	for i, v := range got.sp.vals {
		if math.Float64bits(v) != math.Float64bits(want.sp.vals[i]) {
			t.Fatalf("%s: vals[%d] = %x, want %x", name, i, math.Float64bits(v), math.Float64bits(want.sp.vals[i]))
		}
	}
}

// dn builds a fully dense random operand; sp builds a forced-CSR sparse one.
func dn(r, c int, seed int64) *Matrix {
	if r == 0 || c == 0 {
		return NewDense(r, c)
	}
	return Random(r, c, 1.0, -1, 1, seed).ToDense()
}

func sprnd(r, c int, seed int64) *Matrix {
	if r == 0 || c == 0 {
		return NewSparse(r, c)
	}
	return Random(r, c, 0.2, -1, 1, seed).ToSparse()
}

// parallelKernelCases enumerates every parallelized kernel over dense,
// sparse, empty, 1-row, and 1-col operands. Each case is a closure so the
// same inputs are re-evaluated under different worker counts.
func parallelKernelCases() map[string]func() *Matrix {
	cases := map[string]func() *Matrix{}

	// Mul: all four density dispatches, plus degenerate shapes.
	type dims struct{ m, k, n int }
	for _, d := range []dims{{33, 17, 21}, {1, 17, 21}, {33, 17, 1}, {7, 1, 5}, {0, 4, 3}, {4, 3, 0}} {
		d := d
		cases[spfName("mul_dd", d.m, d.k, d.n)] = func() *Matrix { return Mul(dn(d.m, d.k, 1), dn(d.k, d.n, 2)) }
		cases[spfName("mul_sd", d.m, d.k, d.n)] = func() *Matrix { return Mul(sprnd(d.m, d.k, 3), dn(d.k, d.n, 4)) }
		cases[spfName("mul_ds", d.m, d.k, d.n)] = func() *Matrix { return Mul(dn(d.m, d.k, 5), sprnd(d.k, d.n, 6)) }
		cases[spfName("mul_ss", d.m, d.k, d.n)] = func() *Matrix { return Mul(sprnd(d.m, d.k, 7), sprnd(d.k, d.n, 8)) }
	}

	// Single-operand kernels over the shape/density grid.
	type shaped struct {
		tag string
		mk  func() *Matrix
	}
	operands := []shaped{
		{"dense", func() *Matrix { return dn(29, 13, 11) }},
		{"sparse", func() *Matrix { return sprnd(29, 13, 12) }},
		{"empty", func() *Matrix { return NewDense(0, 0) }},
		{"row1", func() *Matrix { return dn(1, 13, 13) }},
		{"col1", func() *Matrix { return sprnd(29, 1, 14) }},
	}
	for _, op := range operands {
		op := op
		cases["rowsums_"+op.tag] = func() *Matrix { return RowSums(op.mk()) }
		cases["colsums_"+op.tag] = func() *Matrix { return ColSums(op.mk()) }
		cases["rowmaxs_"+op.tag] = func() *Matrix { return RowMaxs(op.mk()) }
		cases["unary_sqrt_"+op.tag] = func() *Matrix { return Unary(Sqrt, Unary(Abs, op.mk())) }
		cases["unary_exp_"+op.tag] = func() *Matrix { return Unary(Exp, op.mk()) }
		cases["ewsr_mul_"+op.tag] = func() *Matrix { return EWScalarRight(MulEW, op.mk(), 1.75) }
		cases["ewsr_add_"+op.tag] = func() *Matrix { return EWScalarRight(Add, op.mk(), -0.5) }
		cases["ewsl_div_"+op.tag] = func() *Matrix { return EWScalarLeft(Div, 2.0, EWScalarRight(Add, op.mk(), 3)) }
		cases["ew_add_"+op.tag] = func() *Matrix {
			a := op.mk()
			return EW(Add, a, EWScalarRight(MulEW, a.ToDense(), 0.25))
		}
	}

	// EW broadcast paths: matrix (+) row vector / col vector / 1x1.
	cases["ew_bcast_row"] = func() *Matrix { return EW(Sub, dn(23, 11, 15), dn(1, 11, 16)) }
	cases["ew_bcast_col"] = func() *Matrix { return EW(MulEW, dn(23, 11, 17), dn(23, 1, 18)) }
	cases["ew_bcast_scalar"] = func() *Matrix { return EW(Add, sprnd(23, 11, 19), Filled(1, 1, 0.5)) }

	// TSMM and MMChain, dense and sparse, with and without weights.
	cases["tsmm_dense"] = func() *Matrix { return TSMM(dn(37, 11, 20)) }
	cases["tsmm_sparse"] = func() *Matrix { return TSMM(sprnd(37, 11, 21)) }
	cases["tsmm_col1"] = func() *Matrix { return TSMM(dn(37, 1, 22)) }
	cases["mmchain_dense"] = func() *Matrix { return MulChainMVV(dn(37, 11, 23), dn(11, 1, 24), nil) }
	cases["mmchain_sparse"] = func() *Matrix { return MulChainMVV(sprnd(37, 11, 25), dn(11, 1, 26), nil) }
	cases["mmchain_weighted"] = func() *Matrix { return MulChainMVV(dn(37, 11, 27), dn(11, 1, 28), dn(37, 1, 29)) }
	return cases
}

func spfName(base string, m, k, n int) string {
	return base + "_" + itoa(m) + "x" + itoa(k) + "x" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestParallelKernelsMatchSequential cross-checks every parallelized kernel
// against its sequential counterpart (worker count 1 takes the exact
// original loop path in parRange) and asserts byte-identical results for
// worker counts 1, 2, and 7 — the deterministic-reduction contract.
func TestParallelKernelsMatchSequential(t *testing.T) {
	for name, f := range parallelKernelCases() {
		ref := runAt(1, f)
		for _, w := range []int{2, 7} {
			got := runAt(w, f)
			sameBits(t, name+"@"+itoa(w), got, ref)
		}
	}
}

// TestParallelKernelsStressRepeat re-runs a compute-heavy subset many times
// under high worker counts so the race detector sees real pool contention.
func TestParallelKernelsStressRepeat(t *testing.T) {
	withWorkers(t, 8)
	a := dn(64, 48, 31)
	b := sprnd(48, 52, 32)
	ref := runAt(1, func() *Matrix { return Mul(a, b) })
	for i := 0; i < 10; i++ {
		sameBits(t, "mul_stress", Mul(a, b), ref)
		sameBits(t, "tsmm_stress", runAt(8, func() *Matrix { return TSMM(a) }), runAt(1, func() *Matrix { return TSMM(a) }))
	}
}

// TestNestedParallelKernels exercises kernels invoked from inside pool
// workers (nested parRange must not deadlock: submission is non-blocking
// and the caller always participates).
func TestNestedParallelKernels(t *testing.T) {
	withWorkers(t, 4)
	a := dn(40, 16, 41)
	b := dn(16, 8, 42)
	ref := runAt(1, func() *Matrix { return Mul(a, b) })
	results := make([]*Matrix, 8)
	parRange(len(results), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = Mul(a, b)
		}
	})
	for i, r := range results {
		sameBits(t, "nested"+itoa(i), r, ref)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(0)
	if got := Parallelism(); got != 1 {
		t.Errorf("SetParallelism(0) -> %d, want 1", got)
	}
	SetParallelism(-3)
	if got := Parallelism(); got != 1 {
		t.Errorf("SetParallelism(-3) -> %d, want 1", got)
	}
	SetParallelism(1 << 20)
	if got := Parallelism(); got != maxParallelism() {
		t.Errorf("SetParallelism(huge) -> %d, want cap %d", got, maxParallelism())
	}
}

// TestParRangePanicPropagates: a panic inside a parallel chunk must
// resurface on the calling goroutine (rt recovers it into a KernelError).
func TestParRangePanicPropagates(t *testing.T) {
	withWorkers(t, 4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in parallel chunk was swallowed")
		}
	}()
	parRange(256, 1, func(lo, hi int) {
		if lo >= 128 {
			panic("boom")
		}
	})
	t.Fatal("unreachable")
}

func TestPoolStatsAndMetrics(t *testing.T) {
	withWorkers(t, 4)
	m := obs.NewMetrics()
	SetMetrics(m)
	defer SetMetrics(nil)
	k0, c0, _ := PoolStats()
	a := dn(64, 32, 51)
	_ = Mul(a, dn(32, 24, 52))
	k1, c1, _ := PoolStats()
	if k1 <= k0 {
		t.Errorf("pool kernel counter did not advance: %d -> %d", k0, k1)
	}
	if c1 <= c0 {
		t.Errorf("pool chunk counter did not advance: %d -> %d", c0, c1)
	}
	if got := m.Counter("matrix.pool.kernels"); got <= 0 {
		t.Errorf("metrics counter matrix.pool.kernels = %d, want > 0", got)
	}
}
