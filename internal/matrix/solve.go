package matrix

import (
	"fmt"
	"math"
)

// Solve returns x with A x = b using Gaussian elimination with partial
// pivoting; A must be square and b a matching column-vector (or multi-RHS)
// matrix. This backs the DML builtin solve() used by direct-solve linear
// regression (A = t(X)%*%X, b = t(X)%*%y).
func Solve(a, b *Matrix) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("matrix: solve requires square A, got %dx%d", a.rows, a.cols)
	}
	if b.rows != n {
		return nil, fmt.Errorf("matrix: solve RHS rows %d != %d", b.rows, n)
	}
	// Work on dense copies.
	lu := a.ToDense().Clone()
	x := b.ToDense().Clone()
	m := x.cols
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pval := col, math.Abs(lu.dense[col*n+col])
		for r := col + 1; r < n; r++ {
			if av := math.Abs(lu.dense[r*n+col]); av > pval {
				piv, pval = r, av
			}
		}
		if pval < 1e-12 {
			return nil, fmt.Errorf("matrix: singular system at column %d", col)
		}
		if piv != col {
			swapRows(lu.dense, n, piv, col)
			swapRows(x.dense, m, piv, col)
		}
		d := lu.dense[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.dense[r*n+col] / d
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				lu.dense[r*n+c] -= f * lu.dense[col*n+c]
			}
			for c := 0; c < m; c++ {
				x.dense[r*m+c] -= f * x.dense[col*m+c]
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		d := lu.dense[col*n+col]
		for c := 0; c < m; c++ {
			s := x.dense[col*m+c]
			for k := col + 1; k < n; k++ {
				s -= lu.dense[col*n+k] * x.dense[k*m+c]
			}
			x.dense[col*m+c] = s / d
		}
	}
	return x, nil
}

func swapRows(d []float64, stride, r1, r2 int) {
	for c := 0; c < stride; c++ {
		d[r1*stride+c], d[r2*stride+c] = d[r2*stride+c], d[r1*stride+c]
	}
}
