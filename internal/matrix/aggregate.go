package matrix

import (
	"fmt"
	"math"
)

// AggOp identifies a full or partial aggregation.
type AggOp int

// Aggregation operations.
const (
	SumAgg AggOp = iota
	MinAgg
	MaxAgg
	MeanAgg
	Trace
)

func (op AggOp) String() string {
	switch op {
	case SumAgg:
		return "sum"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	case MeanAgg:
		return "mean"
	case Trace:
		return "trace"
	}
	return "?"
}

// Sum returns the sum of all cells.
func Sum(a *Matrix) float64 {
	var s float64
	if a.sp != nil {
		for _, v := range a.sp.vals {
			s += v
		}
		return s
	}
	for _, v := range a.dense {
		s += v
	}
	return s
}

// Agg computes a full aggregate to a scalar.
func Agg(op AggOp, a *Matrix) float64 {
	switch op {
	case SumAgg:
		return Sum(a)
	case MeanAgg:
		cells := float64(a.rows) * float64(a.cols)
		if cells == 0 {
			return math.NaN()
		}
		return Sum(a) / cells
	case MinAgg, MaxAgg:
		if a.rows == 0 || a.cols == 0 {
			return math.NaN()
		}
		best := a.At(0, 0)
		visit := func(v float64) {
			if op == MinAgg && v < best || op == MaxAgg && v > best {
				best = v
			}
		}
		if a.sp != nil {
			if a.sp.nnz() < int64(a.rows)*int64(a.cols) {
				visit(0) // implicit zeros participate
			}
			for _, v := range a.sp.vals {
				visit(v)
			}
		} else {
			for _, v := range a.dense {
				visit(v)
			}
		}
		return best
	case Trace:
		n := a.rows
		if a.cols < n {
			n = a.cols
		}
		var s float64
		for i := 0; i < n; i++ {
			s += a.At(i, i)
		}
		return s
	}
	panic(fmt.Sprintf("matrix: unknown aggregate %d", op))
}

// aggRowGrain is the rows-per-chunk grain for row-partitioned aggregates.
const aggRowGrain = 64

// RowSums returns the rows x 1 vector of per-row sums. Rows are partitioned
// across the worker pool; each row's sum is accumulated in the sequential
// order, so results are byte-identical for any parallelism.
func RowSums(a *Matrix) *Matrix {
	out := NewDense(a.rows, 1)
	if a.sp != nil {
		parRange(a.rows, aggRowGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a.sp.eachRow(i, func(_ int, v float64) { out.dense[i] += v })
			}
		})
		return out
	}
	parRange(a.rows, aggRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for j := 0; j < a.cols; j++ {
				s += a.dense[i*a.cols+j]
			}
			out.dense[i] = s
		}
	})
	return out
}

// ColSums returns the 1 x cols vector of per-column sums. The dense path is
// partitioned by column range: every worker scans rows in ascending order,
// so each column accumulates in the sequential order. The sparse path stays
// sequential — a column partition would rescan all stored non-zeros per
// chunk for an O(nnz) memory-bound pass.
func ColSums(a *Matrix) *Matrix {
	out := NewDense(1, a.cols)
	if a.sp != nil {
		a.sp.each(func(_, j int, v float64) { out.dense[j] += v })
		return out
	}
	parRange(a.cols, chunkGrain(a.cols, 64), func(clo, chi int) {
		for i := 0; i < a.rows; i++ {
			ri := a.dense[i*a.cols:]
			for j := clo; j < chi; j++ {
				out.dense[j] += ri[j]
			}
		}
	})
	return out
}

// RowMaxs returns the rows x 1 vector of per-row maxima.
func RowMaxs(a *Matrix) *Matrix {
	out := NewDense(a.rows, 1)
	d := a.ToDense()
	parRange(a.rows, aggRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best := math.Inf(-1)
			for j := 0; j < a.cols; j++ {
				if v := d.dense[i*a.cols+j]; v > best {
					best = v
				}
			}
			out.dense[i] = best
		}
	})
	return out
}

// SumSq returns sum(a^2), the tertiary-aggregate pattern used by several
// convergence checks.
func SumSq(a *Matrix) float64 {
	var s float64
	if a.sp != nil {
		for _, v := range a.sp.vals {
			s += v * v
		}
		return s
	}
	for _, v := range a.dense {
		s += v * v
	}
	return s
}

// DotProduct returns sum(a * b) for equally-sized matrices, the
// tertiary-aggregate physical operator for patterns like sum(v1*v2).
func DotProduct(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: dot dimension mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	var s float64
	if a.sp != nil {
		a.sp.each(func(i, j int, v float64) { s += v * b.At(i, j) })
		return s
	}
	if b.sp != nil {
		b.sp.each(func(i, j int, v float64) { s += v * a.dense[i*a.cols+j] })
		return s
	}
	for i, v := range a.dense {
		s += v * b.dense[i]
	}
	return s
}
