package matrix

import (
	"testing"

	"elasticml/internal/conf"
)

// TestSizeOverflowSaturates: estimates for absurdly large matrices must
// saturate at MaxInt64 bytes instead of wrapping to negative values (a
// negative "size" would pass every memory-budget comparison and admit
// plans that can never run).
func TestSizeOverflowSaturates(t *testing.T) {
	const huge = int64(3_000_000_000) // 3e9 x 3e9 dense = 7.2e19 B > MaxInt64
	if got := DenseSize(huge, huge); got != maxSizeBytes {
		t.Errorf("DenseSize(huge) = %v, want saturation at %v", got, maxSizeBytes)
	}
	if got := SparseSize(huge, huge, 1.0); got != maxSizeBytes {
		t.Errorf("SparseSize(huge, 1.0) = %v, want saturation at %v", got, maxSizeBytes)
	}
	if got := EstimateSize(huge, huge, 1.0); got <= 0 {
		t.Errorf("EstimateSize(huge) = %v, must stay positive", got)
	}
	// A huge but representable sparse estimate must not saturate.
	if got := SparseSize(huge, huge, 1e-12); got <= 0 || got == maxSizeBytes {
		t.Errorf("SparseSize(huge, 1e-12) = %v, want finite positive", got)
	}
}

func TestSizeNonPositiveDims(t *testing.T) {
	for _, f := range []func() conf.Bytes{
		func() conf.Bytes { return DenseSize(0, 5) },
		func() conf.Bytes { return DenseSize(5, -1) },
		func() conf.Bytes { return SparseSize(-2, 5, 0.1) },
		func() conf.Bytes { return EstimateSize(0, 0, 0.5) },
	} {
		if got := f(); got != 0 {
			t.Errorf("size of empty/invalid matrix = %v, want 0", got)
		}
	}
}

// TestEstimateMatchesRuntimeRepresentation: the optimizer's EstimateSize
// must pick the same representation (and therefore the same footprint)
// that the runtime's Compact actually materializes — the two previously
// disagreed for skinny matrices where CSR is under the sparsity threshold
// but larger than dense.
func TestEstimateMatchesRuntimeRepresentation(t *testing.T) {
	cases := []struct {
		rows, cols int
		sparsity   float64
	}{
		{10, 2, 0.35},   // under threshold but CSR bigger than dense
		{100, 100, 0.1}, // genuinely sparse
		{50, 50, 0.9},   // dense
		{1000, 1, 0.01}, // column vector: CSR never smaller
		{1, 64, 0.05},   // row vector
	}
	for _, tc := range cases {
		m := NewDense(tc.rows, tc.cols)
		nnz := int(tc.sparsity * float64(tc.rows*tc.cols))
		placed := 0
		for i := 0; i < tc.rows && placed < nnz; i++ {
			for j := 0; j < tc.cols && placed < nnz; j++ {
				m.Set(i, j, float64(placed+1))
				placed++
			}
		}
		c := m.Compact()
		est := EstimateSize(int64(tc.rows), int64(tc.cols), c.Sparsity())
		if got := c.InMemorySize(); got != est {
			t.Errorf("%dx%d s=%.2f: runtime %v (format %v) vs estimate %v",
				tc.rows, tc.cols, c.Sparsity(), got, c.Format(), est)
		}
		wantSparse := PreferSparse(int64(tc.rows), int64(tc.cols), c.Sparsity())
		if (c.Format() == SparseCSR) != wantSparse {
			t.Errorf("%dx%d s=%.2f: Compact chose %v, PreferSparse says sparse=%v",
				tc.rows, tc.cols, c.Sparsity(), c.Format(), wantSparse)
		}
	}
}

// TestPreferSparseRequiresSmaller: the predicate must demand both the
// sparsity threshold AND an actual byte win.
func TestPreferSparseRequiresSmaller(t *testing.T) {
	if PreferSparse(10, 2, 0.35) {
		t.Error("PreferSparse(10x2, 0.35): CSR is 164B vs 160B dense, must prefer dense")
	}
	if PreferSparse(1000, 1, 0.01) {
		t.Error("PreferSparse(nx1): CSR is never smaller for column vectors")
	}
	if !PreferSparse(100, 100, 0.1) {
		t.Error("PreferSparse(100x100, 0.1): CSR is 4x smaller, must prefer sparse")
	}
	if PreferSparse(100, 100, 0.5) {
		t.Error("PreferSparse above threshold must prefer dense")
	}
}
