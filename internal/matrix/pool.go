package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"

	"elasticml/internal/obs"
)

// The CP matrix runtime executes hot kernels on a shared, bounded worker
// pool (SystemML's multi-threaded CP backend). Work is split by fixed
// row/column partition boundaries that depend only on the problem size,
// never on the worker count, and every output cell is produced by exactly
// one partition in the same floating-point accumulation order as the
// sequential loops. Results are therefore byte-identical for any degree of
// parallelism; the knob only changes wall-clock time, which keeps the
// costing model's compute/(cores·peak) assumption honest.

// maxParallelism bounds the configurable degree of parallelism: beyond a
// small multiple of the machine's cores, extra workers only add scheduling
// overhead.
func maxParallelism() int { return 4 * runtime.GOMAXPROCS(0) }

var (
	poolOnce sync.Once
	poolCh   chan func()
	poolSize int

	// dop is the configured degree of parallelism for subsequent kernel
	// invocations (1 = sequential, the default).
	dop atomic.Int64

	// poolMetrics optionally receives pool counters (see SetMetrics).
	poolMetrics atomic.Pointer[obs.Metrics]

	statKernels atomic.Int64 // parallel kernel invocations
	statChunks  atomic.Int64 // partition chunks executed to completion
	statStolen  atomic.Int64 // chunks executed by pool workers (not the caller)
)

func init() { dop.Store(1) }

// ensurePool lazily starts the shared worker goroutines. The pool is
// bounded at GOMAXPROCS workers (at least two, so concurrency is exercised
// even on single-core machines); per-kernel parallelism on top of it is
// limited by SetParallelism.
func ensurePool() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		if poolSize < 2 {
			poolSize = 2
		}
		poolCh = make(chan func())
		for i := 0; i < poolSize; i++ {
			go func() {
				for task := range poolCh {
					task()
				}
			}()
		}
	})
}

// SetParallelism sets the degree of parallelism used by subsequent kernel
// invocations. Values below 1 select 1 (sequential); values above 4x
// GOMAXPROCS are clamped. Results are independent of this setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if m := maxParallelism(); n > m {
		n = m
	}
	dop.Store(int64(n))
}

// Parallelism returns the configured degree of parallelism.
func Parallelism() int { return int(dop.Load()) }

// SetMetrics wires the pool's counters into an obs registry: every parallel
// kernel invocation adds to matrix.pool.kernels, matrix.pool.chunks, and
// matrix.pool.stolen (chunks executed by pool workers rather than the
// calling goroutine). Pass nil to detach.
func SetMetrics(m *obs.Metrics) { poolMetrics.Store(m) }

// PoolStats returns the cumulative pool counters: parallel kernel
// invocations, partition chunks dispatched, and chunks stolen by pool
// workers.
func PoolStats() (kernels, chunks, stolen int64) {
	return statKernels.Load(), statChunks.Load(), statStolen.Load()
}

// chunkGrain returns a partition grain for n items that yields at most
// maxChunks chunks. It depends only on the problem size, keeping partition
// boundaries (and hence reduction order) fixed across worker counts.
func chunkGrain(n, maxChunks int) int {
	g := (n + maxChunks - 1) / maxChunks
	if g < 1 {
		g = 1
	}
	return g
}

// parRange runs fn over the half-open range [0, n) split into fixed chunks
// of the given grain. With parallelism 1 (or a single chunk) it degenerates
// to fn(0, n) — the exact sequential loop. Otherwise up to Parallelism()
// goroutines (the caller plus pool workers) pull chunks from a shared
// counter; fn must write only cells owned by its chunk. Panics inside fn
// are re-raised on the calling goroutine after all workers settle, so the
// interpreter's panic recovery keeps working for parallel kernels.
func parRange(n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	d := Parallelism()
	if d <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	helpers := d - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	ensurePool()

	var next, stolen, executed atomic.Int64
	var panicMu sync.Mutex
	var panicVal any
	run := func(helper bool) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				panicMu.Unlock()
				next.Store(int64(chunks)) // abandon remaining chunks
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			executed.Add(1)
			if helper {
				stolen.Add(1)
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		task := func() {
			defer wg.Done()
			run(true)
		}
		select {
		case poolCh <- task:
		default:
			// Pool saturated (e.g. nested parallelism): the caller picks
			// up the chunks itself instead of blocking on a worker.
			wg.Done()
		}
	}
	run(false)
	wg.Wait()

	// Count only chunks that ran to completion: a panic abandons the rest
	// of the range, and reporting the planned chunk count would overstate
	// the work actually performed.
	statKernels.Add(1)
	statChunks.Add(executed.Load())
	statStolen.Add(stolen.Load())
	if m := poolMetrics.Load(); m != nil {
		m.Add("matrix.pool.kernels", 1)
		m.Add("matrix.pool.chunks", executed.Load())
		m.Add("matrix.pool.stolen", stolen.Load())
	}
	if panicVal != nil {
		panic(panicVal)
	}
}
