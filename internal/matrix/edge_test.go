package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDegenerateShapes(t *testing.T) {
	// 1x1 matrices flow through every kernel.
	one := NewDenseData(1, 1, []float64{3})
	if got := Mul(one, one).At(0, 0); got != 9 {
		t.Errorf("1x1 mul = %v", got)
	}
	if got := Transpose(one).At(0, 0); got != 3 {
		t.Errorf("1x1 transpose = %v", got)
	}
	if Sum(one) != 3 || SumSq(one) != 9 {
		t.Error("1x1 aggregates wrong")
	}
	// Zero-row and zero-column matrices.
	empty := NewDense(0, 5)
	if empty.NNZ() != 0 {
		t.Error("empty nnz")
	}
	if got := RowSums(empty); got.Rows() != 0 || got.Cols() != 1 {
		t.Errorf("RowSums of empty = %dx%d", got.Rows(), got.Cols())
	}
	if !math.IsNaN(Agg(MinAgg, empty)) {
		t.Error("min of empty should be NaN")
	}
	if empty.Sparsity() != 1.0 {
		t.Error("empty sparsity should default to 1")
	}
	// Vector TSMM.
	v := NewDenseData(3, 1, []float64{1, 2, 3})
	if got := TSMM(v).At(0, 0); got != 14 {
		t.Errorf("vector TSMM = %v", got)
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative dims")
		}
	}()
	NewDense(-1, 3)
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(5, 5, 1) },
		func() { Slice(m, 0, 3, 0, 1) },
		func() { NewDenseData(2, 2, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSeqEdge(t *testing.T) {
	if s := Seq(5, 1, 1); s.Rows() != 0 {
		t.Errorf("ascending seq over descending range = %d rows", s.Rows())
	}
	if s := Seq(2, 2, 1); s.Rows() != 1 || s.At(0, 0) != 2 {
		t.Errorf("single-point seq wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("seq with zero increment should panic")
		}
	}()
	Seq(1, 5, 0)
}

func TestBroadcastMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected broadcast mismatch panic")
		}
	}()
	EW(Add, NewDense(2, 3), NewDense(3, 2))
}

// Property: TSMM output is symmetric positive semidefinite-ish
// (symmetry and non-negative diagonal).
func TestTSMMSymmetryProperty(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n, m := int(n8%20)+1, int(m8%8)+1
		x := Random(n, m, 0.6, -3, 3, seed)
		g := TSMM(x)
		for i := 0; i < m; i++ {
			if g.At(i, i) < -1e-12 {
				return false
			}
			for j := i + 1; j < m; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: solving a well-conditioned random SPD system reproduces the
// planted solution.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%8) + 2
		x := Random(4*n, n, 1.0, -1, 1, seed)
		a := TSMM(x)
		// Ridge for conditioning.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		want := Random(n, 1, 1.0, -2, 2, seed+1)
		b := Mul(a, want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Equal(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CBind then Slice recovers the left operand.
func TestCBindSliceInverseProperty(t *testing.T) {
	f := func(seed int64, n8, m8, k8 uint8) bool {
		n, m, k := int(n8%10)+1, int(m8%10)+1, int(k8%10)+1
		a := Random(n, m, 0.7, -1, 1, seed)
		b := Random(n, k, 0.7, -1, 1, seed+1)
		c := CBind(a, b)
		return Equal(Slice(c, 0, n, 0, m).ToDense(), a.ToDense(), 0) &&
			Equal(Slice(c, 0, n, m, m+k).ToDense(), b.ToDense(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MulChain equals the unfused composition on random inputs,
// including sparse and weighted variants.
func TestMulChainEquivalenceProperty(t *testing.T) {
	f := func(seed int64, n8, m8 uint8, sparse, weighted bool) bool {
		n, m := int(n8%25)+2, int(m8%8)+1
		sp := 1.0
		if sparse {
			sp = 0.3
		}
		x := Random(n, m, sp, -1, 1, seed)
		v := Random(m, 1, 1.0, -1, 1, seed+1)
		var w *Matrix
		if weighted {
			w = Random(n, 1, 1.0, 0, 1, seed+2)
		}
		got := MulChainMVV(x, v, w)
		inner := Mul(x, v)
		if w != nil {
			inner = EW(MulEW, w, inner)
		}
		want := Mul(Transpose(x), inner).ToDense()
		return Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
