package matrix

import (
	"math"

	"elasticml/internal/conf"
)

// The estimator mirrors the compiler's worst-case memory estimation
// (paper §2.1 / Appendix B): in-memory size of a matrix given dimensions
// and sparsity, for dense and CSR representations. These formulas are
// shared by the HOP memory estimator and the buffer pool.

// denseCellBytes is the per-cell cost of a dense double matrix.
const denseCellBytes = 8

// sparseCellBytes is the per-non-zero cost of a CSR matrix (8B value + 4B
// column index) excluding the row-pointer array.
const sparseCellBytes = 12

// sparseRowBytes is the per-row overhead of CSR (row pointer).
const sparseRowBytes = 8

// maxSizeBytes is the saturation ceiling for size estimates: worst-case
// propagated dimensions (e.g. 1e9 x 1e9 HOP estimates) overflow int64 cell
// counts, and a wrapped-negative size would defeat every memory budget
// comparison. Estimates clamp here instead.
const maxSizeBytes = conf.Bytes(math.MaxInt64)

// PreferSparse reports whether a rows x cols matrix with the given sparsity
// is stored in CSR: below the sparsity threshold and only when CSR is
// actually smaller than dense. The size comparison subsumes the historic
// cols > 1 guard (for an n x 1 vector the per-row pointer overhead always
// makes CSR larger) and is shared by Compact and EstimateSize so the
// estimator costs exactly the representation the runtime picks.
func PreferSparse(rows, cols int64, sparsity float64) bool {
	return sparsity < SparsityThreshold && SparseSize(rows, cols, sparsity) < DenseSize(rows, cols)
}

// EstimateSize returns the in-memory size of a rows x cols matrix with the
// given sparsity, choosing dense or sparse representation exactly as the
// runtime would (PreferSparse).
func EstimateSize(rows, cols int64, sparsity float64) conf.Bytes {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	if PreferSparse(rows, cols, sparsity) {
		return SparseSize(rows, cols, sparsity)
	}
	return DenseSize(rows, cols)
}

// DenseSize returns the in-memory size of a dense rows x cols matrix,
// saturating at maxSizeBytes instead of wrapping negative.
func DenseSize(rows, cols int64) conf.Bytes {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	if b := float64(rows) * float64(cols) * denseCellBytes; b >= float64(maxSizeBytes) {
		return maxSizeBytes
	}
	return conf.Bytes(rows * cols * denseCellBytes)
}

// SparseSize returns the in-memory size of a CSR rows x cols matrix with
// the given sparsity, saturating at maxSizeBytes instead of wrapping
// negative.
func SparseSize(rows, cols int64, sparsity float64) conf.Bytes {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	// Round the reconstructed non-zero count up: sparsity arrives as
	// nnz/cells and the float product can land just below the integer it
	// came from (e.g. 190 * (56/190) = 55.999...), and a worst-case
	// estimate truncated below the true footprint is an estimate-soundness
	// violation the verify auditor rightly flags.
	nnz := math.Ceil(float64(rows) * float64(cols) * sparsity)
	if b := nnz*sparseCellBytes + float64(rows)*sparseRowBytes; b >= float64(maxSizeBytes) {
		return maxSizeBytes
	}
	return conf.Bytes(nnz*sparseCellBytes) + conf.Bytes(rows*sparseRowBytes)
}

// InMemorySize returns the actual in-memory footprint of the matrix.
func (m *Matrix) InMemorySize() conf.Bytes {
	if m.sp != nil {
		return conf.Bytes(m.sp.nnz()*sparseCellBytes) + conf.Bytes(int64(m.rows)*sparseRowBytes)
	}
	return conf.Bytes(int64(len(m.dense)) * denseCellBytes)
}

// MulSparsity estimates the output sparsity of a matrix multiply with input
// sparsities s1, s2 over common dimension k, using the standard
// no-cancellation independence assumption 1 - (1 - s1*s2)^k.
func MulSparsity(s1, s2 float64, k int64) float64 {
	if s1 >= 1 && s2 >= 1 {
		return 1
	}
	p := s1 * s2
	if p <= 0 {
		return 0
	}
	// 1-(1-p)^k without overflow for large k: use expm1/log1p.
	if float64(k)*p > 32 {
		return 1
	}
	est := 1.0
	q := 1 - p
	for i := int64(0); i < k && est > 1e-12; i++ {
		est *= q
		if k > 64 {
			// Closed form is fine for large k.
			break
		}
	}
	if k > 64 {
		return 1 - pow(q, k)
	}
	return 1 - est
}

func pow(q float64, k int64) float64 {
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= q
		}
		q *= q
		k >>= 1
	}
	return r
}
