package fault

import (
	"sync"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Plan{
		{TaskFailureProb: -0.1},
		{TaskFailureProb: 1.1},
		{StragglerProb: 0.5, StragglerFactor: 0.5},
		{NodeFailures: []NodeFailure{{Node: -1, At: 10}}},
		{NodeFailures: []NodeFailure{{Node: 0, At: -1}}},
		{HDFSReadErrorProb: 2},
		{ContainerKillProb: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
		if _, err := NewInjector(p); err == nil {
			t.Errorf("plan %d: NewInjector accepted invalid plan", i)
		}
	}
	good := Plan{Seed: 1, TaskFailureProb: 0.1, StragglerProb: 0.05, StragglerFactor: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan must be disabled")
	}
	if !(Plan{TaskFailureProb: 0.01}).Enabled() {
		t.Error("task failures should enable the plan")
	}
	if !(Plan{NodeFailures: []NodeFailure{{Node: 0, At: 5}}}).Enabled() {
		t.Error("node failures should enable the plan")
	}
}

// TestSameSeedSameSequence: two injectors with identical plans sample the
// byte-identical fault sequence (the seed-determinism contract).
func TestSameSeedSameSequence(t *testing.T) {
	plan := Plan{
		Seed:              42,
		TaskFailureProb:   0.2,
		StragglerProb:     0.1,
		StragglerFactor:   4,
		HDFSReadErrorProb: 0.05,
		ContainerKillProb: 0.15,
	}
	a, b := MustInjector(plan), MustInjector(plan)
	for i := 0; i < 5000; i++ {
		if a.TaskFails() != b.TaskFails() {
			t.Fatalf("task draw %d diverged", i)
		}
		fa, oa := a.Straggles()
		fb, ob := b.Straggles()
		if fa != fb || oa != ob {
			t.Fatalf("straggler draw %d diverged", i)
		}
		if a.HDFSReadFails() != b.HDFSReadFails() {
			t.Fatalf("hdfs draw %d diverged", i)
		}
		if a.ContainerKilled() != b.ContainerKilled() {
			t.Fatalf("kill draw %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestIndependentStreams: enabling an additional fault category must not
// change the sampled sequence of an existing one.
func TestIndependentStreams(t *testing.T) {
	base := MustInjector(Plan{Seed: 7, TaskFailureProb: 0.3})
	mixed := MustInjector(Plan{Seed: 7, TaskFailureProb: 0.3, HDFSReadErrorProb: 0.5, ContainerKillProb: 0.5})
	for i := 0; i < 2000; i++ {
		mixed.HDFSReadFails() // interleave other draws
		mixed.ContainerKilled()
		if base.TaskFails() != mixed.TaskFails() {
			t.Fatalf("task stream perturbed at draw %d", i)
		}
	}
}

func TestNodeFailureDelivery(t *testing.T) {
	in := MustInjector(Plan{NodeFailures: []NodeFailure{
		{Node: 2, At: 50}, {Node: 0, At: 10}, {Node: 1, At: 10},
	}})
	if got := in.NodeFailuresThrough(5); len(got) != 0 {
		t.Errorf("premature delivery: %v", got)
	}
	got := in.NodeFailuresThrough(10)
	if len(got) != 2 || got[0].Node != 0 || got[1].Node != 1 {
		t.Errorf("t=10 delivery = %v", got)
	}
	// Delivered exactly once.
	if again := in.NodeFailuresThrough(10); len(again) != 0 {
		t.Errorf("redelivered: %v", again)
	}
	if in.PendingNodeFailures() != 1 {
		t.Errorf("pending = %d", in.PendingNodeFailures())
	}
	if got := in.NodeFailuresThrough(1e9); len(got) != 1 || got[0].Node != 2 {
		t.Errorf("final delivery = %v", got)
	}
	if s := in.Stats(); s.NodeFailures != 3 {
		t.Errorf("stats.NodeFailures = %d", s.NodeFailures)
	}
}

func TestProbabilitiesRoughlyHonored(t *testing.T) {
	in := MustInjector(Plan{Seed: 9, TaskFailureProb: 0.25})
	fails := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.TaskFails() {
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("injected failure rate %.3f far from 0.25", rate)
	}
}

// TestConcurrentSampling hammers one injector from many goroutines; run
// with -race. Totals stay consistent even though interleaving varies.
func TestConcurrentSampling(t *testing.T) {
	in := MustInjector(Plan{
		Seed: 3, TaskFailureProb: 0.5, StragglerProb: 0.5, StragglerFactor: 2,
		HDFSReadErrorProb: 0.5, ContainerKillProb: 0.5,
		NodeFailures: []NodeFailure{{Node: 0, At: 1}, {Node: 1, At: 2}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.TaskFails()
				in.Straggles()
				in.HDFSReadFails()
				in.ContainerKilled()
				in.NodeFailuresThrough(float64(i))
				in.Stats()
			}
		}()
	}
	wg.Wait()
	if s := in.Stats(); s.NodeFailures != 2 {
		t.Errorf("node failures delivered %d times", s.NodeFailures)
	}
}
