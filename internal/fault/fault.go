// Package fault provides seeded, deterministic fault injection for the
// simulated cluster stack. An injection Plan declares what goes wrong —
// node failures at fixed simulated times, per-attempt task failure and
// straggler probabilities, transient HDFS read errors, and container kills
// — and an Injector samples it with per-category random streams so that
// two runs with the same seed inject the identical fault sequence, and
// enabling one fault class never perturbs the sampling of another.
//
// The injector is consumed by the YARN simulator (node loss, container
// kills), the MR task-attempt model (task failures, stragglers), the
// simulated DFS (transient read errors), and the interpreter (delivery of
// node failures at simulated-time boundaries).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// NodeFailure schedules the loss of one worker node at a simulated time.
type NodeFailure struct {
	// Node is the failing node's index.
	Node int
	// At is the simulated time of the failure in seconds.
	At float64
}

// Plan declares the faults to inject into one simulated run. The zero
// value injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw; runs with equal seeds and
	// plans inject identical fault sequences.
	Seed int64
	// NodeFailures lists scheduled node losses.
	NodeFailures []NodeFailure
	// TaskFailureProb is the probability that one MR task *attempt* fails
	// and must be re-executed.
	TaskFailureProb float64
	// StragglerProb is the probability that an MR task straggles.
	StragglerProb float64
	// StragglerFactor is the slowdown of a straggling task (>= 1; a value
	// of 4 means the task runs 4x slower than its siblings).
	StragglerFactor float64
	// HDFSReadErrorProb is the probability that one DFS read attempt
	// fails transiently (retryable).
	HDFSReadErrorProb float64
	// ContainerKillProb is the probability that a running application
	// container is killed before completing (preemption, OOM kill).
	ContainerKillProb float64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return len(p.NodeFailures) > 0 || p.TaskFailureProb > 0 || p.StragglerProb > 0 ||
		p.HDFSReadErrorProb > 0 || p.ContainerKillProb > 0
}

// Validate reports plans that cannot be injected sensibly.
func (p Plan) Validate() error {
	for name, prob := range map[string]float64{
		"task failure":    p.TaskFailureProb,
		"straggler":       p.StragglerProb,
		"hdfs read error": p.HDFSReadErrorProb,
		"container kill":  p.ContainerKillProb,
	} {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", name, prob)
		}
	}
	if p.StragglerProb > 0 && p.StragglerFactor < 1 {
		return fmt.Errorf("fault: straggler factor %g < 1", p.StragglerFactor)
	}
	for _, nf := range p.NodeFailures {
		if nf.Node < 0 {
			return fmt.Errorf("fault: negative node index %d", nf.Node)
		}
		if nf.At < 0 {
			return fmt.Errorf("fault: negative failure time %g", nf.At)
		}
	}
	return nil
}

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	NodeFailures   int
	TaskFailures   int
	Stragglers     int
	HDFSErrors     int
	ContainerKills int
}

// Injector samples a Plan deterministically. It is safe for concurrent
// use; under concurrency the per-call results stay race-free but the
// interleaving (and thus which caller sees which draw) is scheduling
// dependent, so deterministic experiments sample from a single goroutine.
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	pending []NodeFailure // sorted by At, not yet delivered
	stats   Stats
	// Independent streams per fault category keep the sampled sequence of
	// one category invariant under changes to another.
	taskRNG, stragRNG, hdfsRNG, killRNG *rand.Rand
}

// NewInjector validates the plan and returns a fresh injector for it.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pending := append([]NodeFailure(nil), p.NodeFailures...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].At < pending[j].At })
	return &Injector{
		plan:     p,
		pending:  pending,
		taskRNG:  rand.New(rand.NewSource(p.Seed ^ 0x7461736b)), // "task"
		stragRNG: rand.New(rand.NewSource(p.Seed ^ 0x73747261)), // "stra"
		hdfsRNG:  rand.New(rand.NewSource(p.Seed ^ 0x68646673)), // "hdfs"
		killRNG:  rand.New(rand.NewSource(p.Seed ^ 0x6b696c6c)), // "kill"
	}, nil
}

// MustInjector is NewInjector for statically known-good plans (tests,
// examples); it panics on an invalid plan.
func MustInjector(p Plan) *Injector {
	in, err := NewInjector(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the injection plan.
func (in *Injector) Plan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// TaskFaultsEnabled reports whether task-level faults (failures or
// stragglers) can fire, letting hot paths skip the fault model entirely.
func (in *Injector) TaskFaultsEnabled() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plan.TaskFailureProb > 0 || in.plan.StragglerProb > 0
}

// NodeFailuresThrough delivers (once) every scheduled node failure with
// At <= now, in time order.
func (in *Injector) NodeFailuresThrough(now float64) []NodeFailure {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for n < len(in.pending) && in.pending[n].At <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	due := in.pending[:n:n]
	in.pending = in.pending[n:]
	in.stats.NodeFailures += n
	return due
}

// PendingNodeFailures returns the count of not-yet-delivered node
// failures.
func (in *Injector) PendingNodeFailures() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.pending)
}

// TaskFails samples whether one task attempt fails.
func (in *Injector) TaskFails() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.TaskFailureProb <= 0 {
		return false
	}
	if in.taskRNG.Float64() >= in.plan.TaskFailureProb {
		return false
	}
	in.stats.TaskFailures++
	return true
}

// Straggles samples whether one task straggles, returning the slowdown
// factor when it does.
func (in *Injector) Straggles() (float64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.StragglerProb <= 0 {
		return 1, false
	}
	if in.stragRNG.Float64() >= in.plan.StragglerProb {
		return 1, false
	}
	in.stats.Stragglers++
	return in.plan.StragglerFactor, true
}

// HDFSReadFails samples whether one DFS read attempt fails transiently.
// The signature matches hdfs.FS.SetReadFault.
func (in *Injector) HDFSReadFails() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.HDFSReadErrorProb <= 0 {
		return false
	}
	if in.hdfsRNG.Float64() >= in.plan.HDFSReadErrorProb {
		return false
	}
	in.stats.HDFSErrors++
	return true
}

// ContainerKilled samples whether a running container is killed.
func (in *Injector) ContainerKilled() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.ContainerKillProb <= 0 {
		return false
	}
	if in.killRNG.Float64() >= in.plan.ContainerKillProb {
		return false
	}
	in.stats.ContainerKills++
	return true
}
