package fault

import (
	"reflect"
	"testing"
)

func TestChaosPlanEnabled(t *testing.T) {
	if (ChaosPlan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	cases := []ChaosPlan{
		{Groups: []GroupFailure{{Nodes: []int{0, 1}, At: 5}}},
		{Flaps: []Flap{{Node: 0, At: 5, RestoreAfter: 10}}},
		{SlowNodes: []SlowNode{{Node: 0, At: 5, Factor: 2}}},
		{Storm: &Storm{Start: 1, MeanGap: 5, Failures: 3}},
	}
	for i, p := range cases {
		if !p.Enabled() {
			t.Errorf("case %d: plan not enabled", i)
		}
	}
	if (ChaosPlan{Storm: &Storm{Start: 1, MeanGap: 5}}).Enabled() {
		t.Error("zero-failure storm reports enabled")
	}
}

func TestChaosPlanValidate(t *testing.T) {
	good := ChaosPlan{
		Groups:    []GroupFailure{{Nodes: []int{0, 1}, At: 5, RestoreAfter: 20}},
		Flaps:     []Flap{{Node: 2, At: 10, RestoreAfter: 5}},
		SlowNodes: []SlowNode{{Node: 1, At: 3, Factor: 4, Duration: 15}},
		Storm:     &Storm{Start: 20, MeanGap: 8, Failures: 2, Recover: 10},
	}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []ChaosPlan{
		{Groups: []GroupFailure{{Nodes: nil, At: 5}}},
		{Groups: []GroupFailure{{Nodes: []int{0, 0}, At: 5}}},
		{Groups: []GroupFailure{{Nodes: []int{7}, At: 5}}},
		{Groups: []GroupFailure{{Nodes: []int{0}, At: -1}}},
		{Flaps: []Flap{{Node: 0, At: 5, RestoreAfter: 0}}},
		{Flaps: []Flap{{Node: -1, At: 5, RestoreAfter: 1}}},
		{SlowNodes: []SlowNode{{Node: 0, At: 5, Factor: 0.5}}},
		{SlowNodes: []SlowNode{{Node: 0, At: -5, Factor: 2}}},
		{Storm: &Storm{Start: 5, MeanGap: 0, Failures: 2}},
		{Storm: &Storm{Start: -5, MeanGap: 1, Failures: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(3); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

// TestChaosEventsDeterministic: expansion is a pure function of the plan
// and node count — two expansions are deeply equal, and a different seed
// moves the storm.
func TestChaosEventsDeterministic(t *testing.T) {
	p := ChaosPlan{
		Seed:  7,
		Flaps: []Flap{{Node: 1, At: 10, RestoreAfter: 5}},
		Storm: &Storm{Start: 20, MeanGap: 6, Failures: 4, Recover: 9},
	}
	a, b := p.Events(4), p.Events(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan expanded differently:\n%v\n%v", a, b)
	}
	q := p
	q.Seed = 8
	c := q.Events(4)
	if reflect.DeepEqual(a, c) {
		t.Error("different storm seeds produced identical schedules")
	}
}

// TestChaosEventsShape: the expansion covers every declared regime with
// sorted delivery times and paired down/up events.
func TestChaosEventsShape(t *testing.T) {
	p := ChaosPlan{
		Seed:      42,
		Groups:    []GroupFailure{{Nodes: []int{2, 0}, At: 5, RestoreAfter: 30}},
		Flaps:     []Flap{{Node: 1, At: 12, RestoreAfter: 6}},
		SlowNodes: []SlowNode{{Node: 3, At: 8, Factor: 3, Duration: 10}},
		Storm:     &Storm{Start: 25, MeanGap: 5, Failures: 3, Recover: 7},
	}
	evs := p.Events(4)
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not time-sorted: %v after %v", evs[i], evs[i-1])
		}
	}
	downs, ups, slows, fasts := 0, 0, 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case NodeDown:
			downs++
			for _, n := range ev.Nodes {
				if n < 0 || n >= 4 {
					t.Errorf("down event targets node %d of 4", n)
				}
			}
		case NodeUp:
			ups++
		case NodeSlow:
			slows++
			if ev.Factor != 3 {
				t.Errorf("slow factor %g, want 3", ev.Factor)
			}
		case NodeFast:
			fasts++
		}
	}
	// 1 group + 1 flap + 3 storm downs; each paired with an up.
	if downs != 5 || ups != 5 {
		t.Errorf("want 5 downs / 5 ups, got %d / %d", downs, ups)
	}
	if slows != 1 || fasts != 1 {
		t.Errorf("want 1 slow / 1 fast, got %d / %d", slows, fasts)
	}
	// The group's nodes come out sorted regardless of declaration order.
	if got := evs[0].Nodes; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("group nodes %v, want [0 2]", got)
	}
	if evs[0].Cause != "group" {
		t.Errorf("group cause %q", evs[0].Cause)
	}
}
