package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file is the chaos layer: correlated and time-structured failure
// regimes beyond the independent single-node losses of Plan. A ChaosPlan
// declares rack-scoped group failures, transient flaps that return capacity
// after a deterministic delay, straggler nodes that slow instead of die,
// and seeded failure storms with exponential inter-arrival times. Expansion
// to a concrete event schedule is a pure function of (plan, node count), so
// two runs with the same plan observe the identical chaos sequence.

// NodeEventKind classifies one expanded chaos event.
type NodeEventKind int

// Chaos event kinds, in delivery order within one timestamp.
const (
	// NodeDown removes the event's nodes (correlated when len > 1).
	NodeDown NodeEventKind = iota
	// NodeUp restores previously failed nodes with full capacity.
	NodeUp
	// NodeSlow multiplies the node's execution time by Factor.
	NodeSlow
	// NodeFast ends a NodeSlow episode (the node runs at full speed again).
	NodeFast
)

func (k NodeEventKind) String() string {
	switch k {
	case NodeDown:
		return "down"
	case NodeUp:
		return "up"
	case NodeSlow:
		return "slow"
	case NodeFast:
		return "fast"
	}
	return fmt.Sprintf("NodeEventKind(%d)", int(k))
}

// NodeEvent is one expanded chaos event at a simulated time. Down/Up events
// may cover several nodes (a correlated group); Slow/Fast always cover one.
type NodeEvent struct {
	Kind NodeEventKind
	// At is the simulated delivery time in seconds.
	At float64
	// Nodes lists the affected node indices (len > 1 = correlated group).
	Nodes []int
	// Factor is the execution slowdown of a NodeSlow event (>= 1).
	Factor float64
	// Cause labels the regime that produced the event ("fail", "group",
	// "flap", "storm", "slow") for traces and reports.
	Cause string
}

// GroupFailure is a rack-scoped correlated loss: all nodes of the group
// fail at the same simulated instant. RestoreAfter > 0 returns the whole
// group after that many seconds (a transient rack switch outage);
// RestoreAfter == 0 is a permanent loss.
type GroupFailure struct {
	Nodes        []int
	At           float64
	RestoreAfter float64
}

// Flap is a transient single-node failure: the node fails at At and
// re-registers with full (empty) capacity at At+RestoreAfter.
type Flap struct {
	Node         int
	At           float64
	RestoreAfter float64
}

// SlowNode is a straggler node: from At on, everything resident on the node
// runs Factor times slower. Duration > 0 bounds the episode; Duration == 0
// slows the node for the rest of the run.
type SlowNode struct {
	Node     int
	At       float64
	Factor   float64
	Duration float64
}

// Storm is a failure storm: Failures node losses starting at Start with
// exponential inter-arrival gaps of mean MeanGap seconds, victims drawn
// from the cluster by a seeded RNG. Recover > 0 makes every storm loss
// transient (the victim returns after Recover seconds), which is the
// capacity-oscillation regime elastic recovery is designed for.
type Storm struct {
	Start    float64
	MeanGap  float64
	Failures int
	Recover  float64
}

// ChaosPlan declares the correlated chaos injected into one workload run.
// The zero value injects nothing.
type ChaosPlan struct {
	// Seed drives the storm's victim and inter-arrival draws.
	Seed int64
	// Groups lists rack-scoped correlated failures.
	Groups []GroupFailure
	// Flaps lists transient single-node failures.
	Flaps []Flap
	// SlowNodes lists straggler-node episodes.
	SlowNodes []SlowNode
	// Storm, when non-nil, adds a seeded failure storm.
	Storm *Storm
}

// Enabled reports whether the plan injects any chaos at all.
func (p ChaosPlan) Enabled() bool {
	return len(p.Groups) > 0 || len(p.Flaps) > 0 || len(p.SlowNodes) > 0 ||
		(p.Storm != nil && p.Storm.Failures > 0)
}

// Validate reports plans that cannot be expanded against a cluster of the
// given node count.
func (p ChaosPlan) Validate(nodes int) error {
	checkNode := func(what string, n int) error {
		if n < 0 || n >= nodes {
			return fmt.Errorf("fault: %s targets node %d of %d", what, n, nodes)
		}
		return nil
	}
	for _, g := range p.Groups {
		if len(g.Nodes) == 0 {
			return fmt.Errorf("fault: empty group failure at %g", g.At)
		}
		if g.At < 0 || g.RestoreAfter < 0 {
			return fmt.Errorf("fault: group failure with negative time (at %g, restore %g)", g.At, g.RestoreAfter)
		}
		seen := map[int]bool{}
		for _, n := range g.Nodes {
			if err := checkNode("group failure", n); err != nil {
				return err
			}
			if seen[n] {
				return fmt.Errorf("fault: group failure lists node %d twice", n)
			}
			seen[n] = true
		}
	}
	for _, f := range p.Flaps {
		if err := checkNode("flap", f.Node); err != nil {
			return err
		}
		if f.At < 0 {
			return fmt.Errorf("fault: flap at negative time %g", f.At)
		}
		if f.RestoreAfter <= 0 {
			return fmt.Errorf("fault: flap of node %d must restore after > 0s, got %g", f.Node, f.RestoreAfter)
		}
	}
	for _, s := range p.SlowNodes {
		if err := checkNode("slow node", s.Node); err != nil {
			return err
		}
		if s.At < 0 || s.Duration < 0 {
			return fmt.Errorf("fault: slow node %d with negative time (at %g, duration %g)", s.Node, s.At, s.Duration)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: slow node %d factor %g < 1", s.Node, s.Factor)
		}
	}
	if st := p.Storm; st != nil && st.Failures > 0 {
		if st.Start < 0 || st.Recover < 0 {
			return fmt.Errorf("fault: storm with negative time (start %g, recover %g)", st.Start, st.Recover)
		}
		if st.MeanGap <= 0 {
			return fmt.Errorf("fault: storm mean gap %g <= 0", st.MeanGap)
		}
		if nodes < 1 {
			return fmt.Errorf("fault: storm over an empty cluster")
		}
	}
	return nil
}

// Events expands the plan into the concrete chaos schedule for a cluster of
// the given node count: a time-sorted event list that is a pure function of
// the plan (storm draws use the plan seed only). Ties preserve declaration
// order: groups, flaps, slow nodes, then storm losses.
func (p ChaosPlan) Events(nodes int) []NodeEvent {
	var evs []NodeEvent
	for _, g := range p.Groups {
		ns := append([]int(nil), g.Nodes...)
		sort.Ints(ns)
		evs = append(evs, NodeEvent{Kind: NodeDown, At: g.At, Nodes: ns, Cause: "group"})
		if g.RestoreAfter > 0 {
			evs = append(evs, NodeEvent{Kind: NodeUp, At: g.At + g.RestoreAfter, Nodes: ns, Cause: "group"})
		}
	}
	for _, f := range p.Flaps {
		evs = append(evs, NodeEvent{Kind: NodeDown, At: f.At, Nodes: []int{f.Node}, Cause: "flap"})
		evs = append(evs, NodeEvent{Kind: NodeUp, At: f.At + f.RestoreAfter, Nodes: []int{f.Node}, Cause: "flap"})
	}
	for _, s := range p.SlowNodes {
		evs = append(evs, NodeEvent{Kind: NodeSlow, At: s.At, Nodes: []int{s.Node}, Factor: s.Factor, Cause: "slow"})
		if s.Duration > 0 {
			evs = append(evs, NodeEvent{Kind: NodeFast, At: s.At + s.Duration, Nodes: []int{s.Node}, Cause: "slow"})
		}
	}
	if st := p.Storm; st != nil && st.Failures > 0 && nodes > 0 {
		rng := rand.New(rand.NewSource(p.Seed ^ 0x73746f726d)) // "storm"
		at := st.Start
		for i := 0; i < st.Failures; i++ {
			if i > 0 {
				// Exponential inter-arrival, rounded to milliseconds so
				// reports print stably.
				at += math.Round(rng.ExpFloat64()*st.MeanGap*1000) / 1000
			}
			victim := rng.Intn(nodes)
			evs = append(evs, NodeEvent{Kind: NodeDown, At: at, Nodes: []int{victim}, Cause: "storm"})
			if st.Recover > 0 {
				evs = append(evs, NodeEvent{Kind: NodeUp, At: at + st.Recover, Nodes: []int{victim}, Cause: "storm"})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}
